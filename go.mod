module spotless

go 1.22
