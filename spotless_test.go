package spotless_test

import (
	"sync"
	"testing"
	"time"

	"spotless"
)

// apiSource feeds batches through the public API.
type apiSource struct {
	mu      sync.Mutex
	pending []*spotless.Batch
}

func (s *apiSource) Next(instance int32, now time.Duration) *spotless.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil
	}
	b := s.pending[0]
	s.pending = s.pending[1:]
	return b
}

func (s *apiSource) add(b *spotless.Batch) {
	s.mu.Lock()
	s.pending = append(s.pending, b)
	s.mu.Unlock()
}

// TestPublicAPICluster exercises the package-level facade end to end:
// submit a write batch, await the f+1 confirmation, read it back, verify
// the ledger.
func TestPublicAPICluster(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time integration test")
	}
	src := &apiSource{}
	done := make(chan spotless.Digest, 8)
	cl, err := spotless.NewCluster(spotless.Config{
		N: 4, Instances: 1, Source: src,
		OnBatchCommitted: func(d spotless.Digest) { done <- d },
		ViewTimeout:      100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if cl.N() != 4 || cl.F() != 1 || cl.M() != 1 {
		t.Fatalf("cluster shape: n=%d f=%d m=%d", cl.N(), cl.F(), cl.M())
	}

	batch := spotless.NewBatch([]spotless.Transaction{
		{Client: spotless.ClientIDBase, Seq: 1, Op: spotless.OpWrite, Key: 7, Value: []byte("value-7")},
	})
	src.add(batch)
	select {
	case d := <-done:
		if d != batch.ID {
			t.Fatalf("committed %s, submitted %s", d.Short(), batch.ID.Short())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("batch did not commit")
	}
	deadline := time.Now().Add(10 * time.Second)
	for r := 0; r < cl.N(); r++ {
		for string(cl.Read(r, 7)) != "value-7" {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never observed the write", r)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := cl.VerifyLedger(r); err != nil {
			t.Fatalf("replica %d ledger: %v", r, err)
		}
		if cl.LedgerHeight(r) == 0 {
			t.Fatalf("replica %d has an empty ledger", r)
		}
	}
}
