// Quickstart: spin up a 4-replica SpotLess cluster in-process (real ed25519
// signatures, HMAC channels, YCSB execution, blockchain ledgers), submit a
// stream of client batches, and watch them commit with f+1 confirmations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"spotless/internal/runtime"
	"spotless/internal/types"
	"spotless/internal/ycsb"
)

// stream is a minimal closed-loop batch source: it refills as batches
// complete, mimicking the client model of §5.
type stream struct {
	mu      sync.Mutex
	pending []*types.Batch
	wl      *ycsb.Workload
}

func (s *stream) Next(instance int32, now time.Duration) *types.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil
	}
	b := s.pending[0]
	s.pending = s.pending[1:]
	return b
}

func (s *stream) refill() {
	s.mu.Lock()
	s.pending = append(s.pending, s.wl.NextBatch(10))
	s.mu.Unlock()
}

func main() {
	const target = 25
	src := &stream{wl: ycsb.NewWorkload(1, types.ClientIDBase, 10000, 32)}
	for i := 0; i < 8; i++ {
		src.refill()
	}

	done := make(chan types.Digest, 64)
	cluster, err := runtime.NewCluster(runtime.ClusterConfig{
		N:         4,
		Instances: 2, // two concurrent chained instances (§4)
		Source:    src,
		OnDone:    func(id types.Digest) { done <- id },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	fmt.Printf("SpotLess cluster up: n=%d f=%d instances=%d\n", cluster.N, cluster.F, cluster.M)
	start := time.Now()
	for completed := 0; completed < target; {
		select {
		case id := <-done:
			completed++
			src.refill()
			fmt.Printf("  batch %s committed and executed on f+1 replicas (%d/%d)\n",
				id.Short(), completed, target)
		case <-time.After(30 * time.Second):
			log.Fatal("timed out waiting for commits")
		}
	}
	fmt.Printf("completed %d batches (%d txns) in %s\n", target, target*10, time.Since(start).Round(time.Millisecond))

	for i, ex := range cluster.Execs {
		if err := ex.Ledger().Verify(); err != nil {
			log.Fatalf("replica %d ledger verification failed: %v", i, err)
		}
	}
	h := cluster.Execs[0].Ledger().Height()
	fmt.Printf("all ledgers verified (replica 0 height: %d blocks)\n", h)
}
