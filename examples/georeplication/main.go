// georeplication: runs SpotLess across 1–4 simulated WAN regions (Oregon,
// N. Virginia, London, Zurich — the deployment of §6.3) and shows how
// geo-distribution squeezes throughput while larger batches claw it back
// (Figure 14(c,d)), then re-runs the 4-region deployment under digest
// ordering (-dissem) at growing batch sizes: with payload fan-out off the
// consensus critical path, throughput holds as batches grow 100x while
// inline ordering degrades. A final table constrains per-node egress
// bandwidth and turns on erasure-coded dissemination (-dissem-code):
// certificates over coded chunks cut the origin's push bytes per batch to
// a fraction of the full push at the same committed throughput.
//
//	go run ./examples/georeplication
package main

import (
	"fmt"
	"time"

	"spotless/internal/bench"
)

func main() {
	const n = 16
	fmt.Println("Asymmetric one-way WAN delay matrix (ms, §6.3):")
	fmt.Printf("%-14s", "")
	for _, r := range bench.RegionNames {
		fmt.Printf("%14s", r)
	}
	fmt.Println()
	for i, row := range bench.WANDelayMs() {
		fmt.Printf("%-14s", bench.RegionNames[i])
		for _, d := range row {
			fmt.Printf("%14.2f", d)
		}
		fmt.Println()
	}

	fmt.Printf("\nSpotLess across WAN regions, n=%d\n\n", n)
	fmt.Printf("%-10s %16s %16s\n", "regions", "batch=100", "batch=400")
	for regions := 1; regions <= 4; regions++ {
		var cells []string
		for _, batch := range []int{100, 400} {
			res := bench.Run(bench.Options{
				Protocol: bench.SpotLess, N: n,
				BatchSize: batch, RegionCount: regions,
				Measure: 500 * time.Millisecond,
			})
			cells = append(cells, fmt.Sprintf("%10.1f ktxn/s", res.Throughput/1000))
		}
		fmt.Printf("%-10d %16s %16s\n", regions, cells[0], cells[1])
	}
	fmt.Println("\nLarger batches amortize the WAN round trips — the paper's")
	fmt.Println("conclusion from Figure 14(c) vs 14(d).")

	// Digest ordering over the same 4-region matrix: the cluster is tuned
	// at the 100-txn baseline (TuneBatchSize), then the workload's payloads
	// grow 10x and 100x. The 1200 Mbps egress model keeps payload
	// serialization — not RTT alone — on the critical path.
	fmt.Printf("\nDigest vs inline ordering, 4 regions, n=%d, tuned at batch=100\n\n", n)
	fmt.Printf("%-12s %16s %16s\n", "batch size", "inline", "digest")
	for _, batch := range []int{100, 1000, 10000} {
		var cells []string
		for _, dis := range []bool{false, true} {
			res := bench.Run(bench.Options{
				Protocol: bench.SpotLess, N: n,
				BatchSize: batch, RegionCount: 4,
				Dissem: dis, TuneBatchSize: 100,
				BandwidthMbps: 1200, Outstanding: 128,
				Measure: 500 * time.Millisecond,
			})
			cells = append(cells, fmt.Sprintf("%10.1f ktxn/s", res.Throughput/1000))
		}
		fmt.Printf("%-12d %16s %16s\n", batch, cells[0], cells[1])
	}
	fmt.Println("\nConsensus messages stay control-sized under digest ordering, so")
	fmt.Println("the baseline-tuned timers keep holding as payloads grow.")

	// Coded vs full-push dissemination over the same 4-region matrix with
	// per-node egress squeezed to 400 Mbps: the origin sends each peer one
	// erasure-coded chunk (k data + parity, one per peer) instead of the
	// whole payload, and the availability certificate proves any k chunks
	// reconstruct it.
	fmt.Printf("\nCoded vs full-push dissemination, 4 regions, n=%d, 400 Mbps/node, k=%d\n\n",
		n, bench.CodedK)
	fmt.Printf("%-12s %-12s %12s %16s %14s\n", "batch size", "arm", "ktxn/s", "push KB/batch", "egress ratio")
	for _, batch := range []int{1000, 10000} {
		var full, coded bench.Result
		for _, k := range []int{0, bench.CodedK} {
			res := bench.Run(bench.Options{
				Protocol: bench.SpotLess, N: n, Instances: 4,
				BatchSize: batch, RegionCount: 4,
				Dissem: true, DissemCode: k, TuneBatchSize: 100,
				BandwidthMbps: 400, Outstanding: 16,
				Measure: 500 * time.Millisecond,
			})
			if k == 0 {
				full = res
			} else {
				coded = res
			}
		}
		ratio := 0.0
		if full.PushBytesPerBatch > 0 {
			ratio = coded.PushBytesPerBatch / full.PushBytesPerBatch
		}
		fmt.Printf("%-12d %-12s %12.1f %16.0f %14s\n", batch, "full push",
			full.Throughput/1000, full.PushBytesPerBatch/1024, "1.00")
		fmt.Printf("%-12d %-12s %12.1f %16.0f %14.2f\n", batch, fmt.Sprintf("coded k=%d", bench.CodedK),
			coded.Throughput/1000, coded.PushBytesPerBatch/1024, ratio)
	}
	fmt.Println("\nThe full push sends every peer the whole payload ((n-1)·|B| origin")
	fmt.Println("bytes); coding sends each peer one chunk (~(n-1)/k·|B| plus the")
	fmt.Println("chunk-hash commitment), and the saved egress is bandwidth the")
	fmt.Println("origin's next batches can use.")
}
