// georeplication: runs SpotLess across 1–4 simulated WAN regions (Oregon,
// N. Virginia, London, Zurich — the deployment of §6.3) and shows how
// geo-distribution squeezes throughput while larger batches claw it back
// (Figure 14(c,d)).
//
//	go run ./examples/georeplication
package main

import (
	"fmt"
	"time"

	"spotless/internal/bench"
)

func main() {
	const n = 16
	fmt.Printf("SpotLess across WAN regions, n=%d\n\n", n)
	fmt.Printf("%-10s %16s %16s\n", "regions", "batch=100", "batch=400")
	for regions := 1; regions <= 4; regions++ {
		var cells []string
		for _, batch := range []int{100, 400} {
			res := bench.Run(bench.Options{
				Protocol: bench.SpotLess, N: n,
				BatchSize: batch, RegionCount: regions,
				Measure: 500 * time.Millisecond,
			})
			cells = append(cells, fmt.Sprintf("%10.1f ktxn/s", res.Throughput/1000))
		}
		fmt.Printf("%-10d %16s %16s\n", regions, cells[0], cells[1])
	}
	fmt.Println("\nLarger batches amortize the WAN round trips — the paper's")
	fmt.Println("conclusion from Figure 14(c) vs 14(d).")
}
