// kvstore: a replicated key-value store built on the SpotLess public API —
// the YCSB-style application the paper's evaluation runs (§6). Writes go
// through consensus; the example then proves all replicas converged to the
// same table state and that reads observe committed writes.
//
//	go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"spotless/internal/runtime"
	"spotless/internal/types"
)

// kvSource feeds explicit write batches (our "application requests") to the
// cluster.
type kvSource struct {
	mu      sync.Mutex
	pending []*types.Batch
}

func (s *kvSource) Next(instance int32, now time.Duration) *types.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil
	}
	b := s.pending[0]
	s.pending = s.pending[1:]
	return b
}

func (s *kvSource) put(kvs map[uint64]string) types.Digest {
	txns := make([]types.Transaction, 0, len(kvs))
	seq := uint64(time.Now().UnixNano())
	for k, v := range kvs {
		txns = append(txns, types.Transaction{
			Client: types.ClientIDBase, Seq: seq, Op: types.OpWrite,
			Key: k, Value: []byte(v),
		})
		seq++
	}
	b := &types.Batch{ID: types.ComputeBatchID(txns), Txns: txns}
	s.mu.Lock()
	s.pending = append(s.pending, b)
	s.mu.Unlock()
	return b.ID
}

func key(s string) uint64 {
	var b [8]byte
	copy(b[:], s)
	return binary.LittleEndian.Uint64(b[:])
}

func main() {
	src := &kvSource{}
	completed := make(chan types.Digest, 16)
	cluster, err := runtime.NewCluster(runtime.ClusterConfig{
		N: 4, Instances: 1, Source: src,
		OnDone: func(id types.Digest) { completed <- id },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	writes := map[uint64]string{
		key("alice"): "llama farm",
		key("bob"):   "beekeeping",
		key("carol"): "cartography",
	}
	id := src.put(writes)
	fmt.Printf("submitted batch %s with %d writes\n", id.Short(), len(writes))

	select {
	case got := <-completed:
		fmt.Printf("batch %s confirmed by f+1=%d replicas\n", got.Short(), cluster.F+1)
	case <-time.After(30 * time.Second):
		log.Fatal("timed out waiting for the write batch")
	}

	// Reads go to any replica's state machine. f+1 replicas answered
	// already; the rest execute the same order momentarily — poll briefly.
	deadline := time.Now().Add(15 * time.Second)
	for k, want := range writes {
		for r := 0; r < cluster.N; r++ {
			for {
				got := string(cluster.Execs[r].Store().Read(k))
				if got == want {
					break
				}
				if time.Now().After(deadline) {
					log.Fatalf("replica %d diverged: key %d = %q, want %q", r, k, got, want)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
	fmt.Printf("all %d replicas agree on all %d keys\n", cluster.N, len(writes))
	fmt.Printf("provenance: replica 0 ledger height %d, verified: %v\n",
		cluster.Execs[0].Ledger().Height(), cluster.Execs[0].Ledger().Verify() == nil)
}
