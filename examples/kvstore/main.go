// kvstore: a replicated key-value store built on the SpotLess public API —
// the YCSB-style application the paper's evaluation runs (§6). Writes go
// through consensus; the example proves all replicas converged to the same
// table state and that reads observe committed writes. It then walks the
// operator kill-and-rejoin path: one replica is killed, loses its state,
// restarts empty, rejoins via checkpoint state transfer, and serves newly
// committed writes again (see README "Operating a cluster").
//
//	go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"spotless/internal/runtime"
	"spotless/internal/types"
)

// kvSource feeds explicit write batches (our "application requests") to the
// cluster.
type kvSource struct {
	mu      sync.Mutex
	pending []*types.Batch
}

func (s *kvSource) Next(instance int32, now time.Duration) *types.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil
	}
	b := s.pending[0]
	s.pending = s.pending[1:]
	return b
}

func (s *kvSource) put(kvs map[uint64]string) types.Digest {
	txns := make([]types.Transaction, 0, len(kvs))
	seq := uint64(time.Now().UnixNano())
	for k, v := range kvs {
		txns = append(txns, types.Transaction{
			Client: types.ClientIDBase, Seq: seq, Op: types.OpWrite,
			Key: k, Value: []byte(v),
		})
		seq++
	}
	b := &types.Batch{ID: types.ComputeBatchID(txns), Txns: txns}
	s.mu.Lock()
	s.pending = append(s.pending, b)
	s.mu.Unlock()
	return b.ID
}

func key(s string) uint64 {
	var b [8]byte
	copy(b[:], s)
	return binary.LittleEndian.Uint64(b[:])
}

func main() {
	src := &kvSource{}
	completed := make(chan types.Digest, 64)
	cluster, err := runtime.NewCluster(runtime.ClusterConfig{
		N: 4, Instances: 1, Source: src,
		// Checkpoint every 4 delivered batches: keeps the demo's stable
		// frontier close behind the writes so the rejoin below is quick.
		CheckpointInterval: 4,
		OnDone:             func(id types.Digest) { completed <- id },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	writes := map[uint64]string{
		key("alice"): "llama farm",
		key("bob"):   "beekeeping",
		key("carol"): "cartography",
	}
	id := src.put(writes)
	fmt.Printf("submitted batch %s with %d writes\n", id.Short(), len(writes))

	select {
	case got := <-completed:
		fmt.Printf("batch %s confirmed by f+1=%d replicas\n", got.Short(), cluster.F+1)
	case <-time.After(30 * time.Second):
		log.Fatal("timed out waiting for the write batch")
	}

	// Reads go to any replica's state machine. f+1 replicas answered
	// already; the rest execute the same order momentarily — poll briefly.
	deadline := time.Now().Add(15 * time.Second)
	for k, want := range writes {
		for r := 0; r < cluster.N; r++ {
			for {
				got := string(cluster.Execs[r].Store().Read(k))
				if got == want {
					break
				}
				if time.Now().After(deadline) {
					log.Fatalf("replica %d diverged: key %d = %q, want %q", r, k, got, want)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
	fmt.Printf("all %d replicas agree on all %d keys\n", cluster.N, len(writes))
	fmt.Printf("provenance: replica 0 ledger height %d, verified: %v\n",
		cluster.Execs[0].Ledger().Height(), cluster.Execs[0].Ledger().Verify() == nil)

	// --- Act 2: kill-and-rejoin via checkpoint state transfer ---
	const victim = 3
	fmt.Printf("\nkilling replica %d (it loses its table and ledger)\n", victim)
	cluster.Kill(victim)

	// commit submits a write batch and awaits f+1 confirmations,
	// retransmitting on timeout as the paper's clients do (§5) — a batch
	// pulled by a replica that is still catching up would otherwise be
	// proposed in a stale view and dropped.
	commit := func(kvs map[uint64]string, what string) {
		// Retransmitted attempts carry distinct batch IDs (fresh seqs), so a
		// timed-out attempt can complete later and leave its token in the
		// channel; confirmations are matched against this call's own IDs or
		// a later commit would return on the stale token before its write
		// has f+1 confirmations.
		ids := make(map[types.Digest]bool)
		for attempt := 0; attempt < 15; attempt++ {
			ids[src.put(kvs)] = true
			timeout := time.After(2 * time.Second)
		wait:
			for {
				select {
				case got := <-completed:
					if ids[got] {
						return
					}
				case <-timeout:
					break wait
				}
			}
		}
		log.Fatalf("timed out waiting for %s", what)
	}
	// The remaining n−f replicas keep committing; cross a few checkpoint
	// boundaries so a stable checkpoint exists beyond the victim's state.
	for i := 0; i < 8; i++ {
		commit(map[uint64]string{key("tick"): fmt.Sprintf("beat-%d", i)}, "outage write")
	}
	fmt.Printf("cluster committed 8 batches during the outage (f+1 confirmations throughout)\n")

	fmt.Printf("restarting replica %d with empty state\n", victim)
	if err := cluster.Restart(victim); err != nil {
		log.Fatal(err)
	}
	// Keep traffic flowing; the rejoiner hears checkpoint attestations,
	// fetches the stable state, and re-enters the rotation.
	deadline = time.Now().Add(60 * time.Second)
	for cluster.Replicas[victim].StableHeight() == 0 {
		commit(map[uint64]string{key("tick"): "rejoining"}, "rejoin write")
		if time.Now().After(deadline) {
			log.Fatal("replica never installed a stable checkpoint")
		}
	}
	fmt.Printf("replica %d installed the stable checkpoint at height %d\n",
		victim, cluster.Replicas[victim].StableHeight())
	deadline = time.Now().Add(30 * time.Second) // re-arm: the wait above may have consumed it

	// A fresh write must now reach the rejoined replica's state machine.
	commit(map[uint64]string{key("dave"): "drystone walls"}, "post-rejoin write")
	for {
		if got := string(cluster.Execs[victim].Store().Read(key("dave"))); got == "drystone walls" {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("rejoined replica never executed the post-rejoin write")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cluster.Execs[victim].Ledger().Verify(); err != nil {
		log.Fatalf("rejoined replica's ledger does not verify: %v", err)
	}
	snap := cluster.Execs[victim].Ledger().Snapshot()
	fmt.Printf("replica %d rejoined: ledger resumed at height %d, height now %d, chain verified\n",
		victim, snap.Height, cluster.Execs[victim].Ledger().Height())
}
