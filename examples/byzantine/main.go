// byzantine: demonstrates SpotLess's resilience machinery on the simulator:
// a keep-in-the-dark attack (A2 of §6.3) leaves f replicas without
// proposals, and the victims recover through the f+1 Sync echo and the
// Ask-recovery mechanism of §3.3 — throughput barely moves, which is the
// finding of Figure 11.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"time"

	"spotless/internal/bench"
	"spotless/internal/core"
)

func main() {
	const n = 16
	f := (n - 1) / 3

	fmt.Printf("SpotLess, n=%d, f=%d — keep-in-the-dark attack (A2)\n\n", n, f)
	fmt.Printf("%-28s %12s %12s\n", "scenario", "ktxn/s", "avg latency")
	for _, sc := range []struct {
		name     string
		failures int
		attack   core.AttackMode
	}{
		{"honest cluster", 0, core.AttackNone},
		{"1 attacker (A2 dark)", 1, core.AttackDark},
		{"f attackers (A2 dark)", f, core.AttackDark},
		{"f attackers (A3 equivocate)", f, core.AttackEquivocate},
		{"f attackers (A4 subvert)", f, core.AttackSubvert},
		{"f crashed (A1)", f, core.AttackNone},
	} {
		res := bench.Run(bench.Options{
			Protocol: bench.SpotLess, N: n,
			Failures: sc.failures, Attack: sc.attack,
			Measure: 500 * time.Millisecond,
		})
		fmt.Printf("%-28s %12.1f %12s\n", sc.name,
			res.Throughput/1000, res.AvgLatency.Round(time.Millisecond))
	}
	fmt.Println("\nVictims detect the failure, echo f+1 Sync claims, and fetch")
	fmt.Println("withheld proposals via Ask — only crash faults (A1) cost real")
	fmt.Println("throughput, because timeouts are then the only way forward (§6.4).")
}
