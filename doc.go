// Package spotless is a from-scratch Go reproduction of "SpotLess:
// Concurrent Rotational Consensus Made Practical through Rapid View
// Synchronization" (Kang, Rahnama, Hellings, Sadoghi — ICDE 2024).
//
// SpotLess is a Byzantine fault-tolerant consensus protocol that combines a
// chained rotational design (the primary changes every view; recovery needs
// information about a single round only) with Rapid View Synchronization —
// an always-on, low-cost view-synchronization and state-recovery path that
// replaces the classic view-change protocol — and a concurrent consensus
// architecture running m ≤ n chained instances in parallel.
//
// # Layout
//
// The stack is layered: shared vocabulary (internal/types) and cryptography
// (internal/crypto) at the bottom; the substrate-neutral protocol
// environment (internal/protocol) in the middle; three interchangeable
// substrates above it (internal/simnet, internal/runtime,
// internal/transport); and the five consensus protocols on top
// (internal/core is SpotLess; internal/pbft, internal/rcc,
// internal/hotstuff, internal/narwhal are the §6.2 baselines).
// internal/ycsb and internal/ledger provide execution and provenance;
// internal/bench and internal/loadgen reconstruct the paper's evaluation.
// The full layer diagram and a mechanism-by-mechanism paper-to-code map
// live in docs/ARCHITECTURE.md.
//
// # Verification pipeline
//
// Protocol state machines are serialized per shard and never verify
// signatures inline: protocols declare signature work up front
// (protocol.IngressVerifier) and substrates run the checks off the event
// loop, so state machines consume only pre-verified messages.
// State-dependent checks (SpotLess's lazily verified certificates, §3.4)
// go through Context.VerifyAsync under the stale-tag discipline documented
// in internal/protocol.
//
// # Instance-parallel core
//
// The SpotLess replica implements protocol.ShardedProtocol: each of its m
// concurrent consensus instances is an independent shard, and the
// cross-instance total order, batch dedup, checkpointing, and execution
// live on one serialized ordering stage. Substrates configured with
// instance workers (runtime.NodeConfig.Workers, the -instance-workers
// flag, simnet.Config.InstanceWorkers) dispatch the shards concurrently —
// per-instance mailboxes and goroutines on the runtime, per-lane modelled
// cores on the simulator; the default remains the classic single event
// loop. The threading model is documented in docs/ARCHITECTURE.md.
//
// # Safe view resolution
//
// The commit rule follows the paper's Lemma 3.4 quorum-intersection
// argument, re-derived in internal/core/resolution.go: each view advances
// through an explicit resolution state machine (proposed → claimed →
// resolved{batch|∅} → committed), a proposal is certified by n−f claims in
// its own view, locks rise only to parents of certified proposals, rule A3
// unlocks only over a certified parent, and a proposal commits only when
// all three links of its consecutive view triple are certified. Resolving
// a view as ∅ demands a full n−f ∅-claim quorum — the intersection
// evidence that no conflicting tip can certify in that view. The seeded
// adversary drill (internal/simnet/adversary.go, spotless-bench
// -safety-drill) replays targeted message schedules deterministically and
// checks ledgers block-for-block; core.Config.UnsafeLegacyResolution
// retains the pre-derivation rules solely as the drill's negative control.
//
// # Checkpointing and state transfer
//
// Every K delivered batches replicas exchange signed checkpoints; n−f
// matching attestations form a stable frontier behind which consensus
// state and ledger blocks are garbage-collected, and a replica that
// crashed or fell behind the frontier rejoins by fetching the stable
// checkpoint (types.FetchState / types.StateChunk) instead of replaying
// pruned views. See internal/core/checkpoint.go and docs/ARCHITECTURE.md.
//
// # Entry points
//
// Cluster (this package) embeds a ready-to-use in-process deployment;
// cmd/spotless-replica and cmd/spotless-client deploy over TCP;
// cmd/spotless-bench regenerates every figure; the examples directory walks
// through typical uses. See README.md and docs/ARCHITECTURE.md.
package spotless
