// Package spotless is a from-scratch Go reproduction of "SpotLess:
// Concurrent Rotational Consensus Made Practical through Rapid View
// Synchronization" (Kang, Rahnama, Hellings, Sadoghi — ICDE 2024).
//
// SpotLess is a Byzantine fault-tolerant consensus protocol that combines a
// chained rotational design (the primary changes every view; recovery needs
// information about a single round only) with Rapid View Synchronization —
// an always-on, low-cost view-synchronization and state-recovery path that
// replaces the classic view-change protocol — and a concurrent consensus
// architecture running m ≤ n chained instances in parallel.
//
// # Layout
//
//   - internal/core — the SpotLess protocol (§3–§5 of the paper)
//   - internal/pbft, internal/rcc, internal/hotstuff, internal/narwhal —
//     the four baselines of the evaluation (§6.2)
//   - internal/simnet — deterministic discrete-event network/CPU simulator
//     (the evaluation substrate; see DESIGN.md for the substitution notes)
//   - internal/runtime, internal/transport — real-time in-process and TCP
//     deployments with ed25519/HMAC cryptography
//   - internal/ycsb, internal/ledger — the YCSB execution substrate and the
//     hash-chained provenance ledger of Apache ResilientDB (§6.1)
//   - internal/bench — one experiment per table and figure of §6.3
//
// # Entry points
//
// Cluster (this package) embeds a ready-to-use in-process deployment;
// cmd/spotless-replica and cmd/spotless-client deploy over TCP;
// cmd/spotless-bench regenerates every figure; the examples directory walks
// through typical uses. See README.md, DESIGN.md, and EXPERIMENTS.md.
package spotless
