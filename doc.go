// Package spotless is a from-scratch Go reproduction of "SpotLess:
// Concurrent Rotational Consensus Made Practical through Rapid View
// Synchronization" (Kang, Rahnama, Hellings, Sadoghi — ICDE 2024).
//
// SpotLess is a Byzantine fault-tolerant consensus protocol that combines a
// chained rotational design (the primary changes every view; recovery needs
// information about a single round only) with Rapid View Synchronization —
// an always-on, low-cost view-synchronization and state-recovery path that
// replaces the classic view-change protocol — and a concurrent consensus
// architecture running m ≤ n chained instances in parallel.
//
// # Layout
//
// The stack is layered: shared vocabulary and cryptography at the bottom,
// the substrate-neutral protocol environment in the middle, three
// interchangeable substrates above it, and the five consensus protocols on
// top.
//
//		types ──► crypto                      vocabulary; providers + Verifier
//		   │         │                        (worker-pool / simulated multi-core)
//		   ▼         ▼
//		      protocol                        Context, Protocol, TimerTag,
//		   │                                  VerifyJob / IngressVerifier /
//		   ▼                                  VerifyConsumer
//		{ simnet │ runtime │ transport }      the three substrates
//		   │
//		   ▼
//		{ core │ hotstuff │ pbft │ rcc │ narwhal }   the five protocols
//
//	  - internal/core — the SpotLess protocol (§3–§5 of the paper)
//	  - internal/pbft, internal/rcc, internal/hotstuff, internal/narwhal —
//	    the four baselines of the evaluation (§6.2)
//	  - internal/simnet — deterministic discrete-event network/CPU simulator
//	    (the evaluation substrate; see DESIGN.md for the substitution notes)
//	  - internal/runtime, internal/transport — real-time in-process and TCP
//	    deployments with ed25519/HMAC cryptography
//	  - internal/ycsb, internal/ledger — the YCSB execution substrate and the
//	    hash-chained provenance ledger of Apache ResilientDB (§6.1)
//	  - internal/bench — one experiment per table and figure of §6.3
//
// # Verification pipeline
//
// Protocol state machines are single-threaded and never verify signatures
// inline. Instead each protocol declares its signature work up front
// (protocol.IngressVerifier): the substrate runs the declared checks off
// the event loop — internal/runtime on a bounded worker pool
// (crypto.PoolVerifier) before posting to the node loop, internal/transport
// with MACs on the connection reader goroutines and signature batches on
// the shared pool, and internal/simnet as modelled parallel CPU work
// charged across CostModel.Cores virtual cores — and drops messages that
// fail, so state machines consume only pre-verified messages. State-
// dependent checks that cannot be declared at ingress (SpotLess's lazily
// verified embedded certificates, §3.4) go through Context.VerifyAsync,
// whose completion is delivered back to the event loop under the
// stale-timer-style discipline documented in internal/protocol.
//
// # Entry points
//
// Cluster (this package) embeds a ready-to-use in-process deployment;
// cmd/spotless-replica and cmd/spotless-client deploy over TCP;
// cmd/spotless-bench regenerates every figure; the examples directory walks
// through typical uses. See README.md, DESIGN.md, and EXPERIMENTS.md.
package spotless
