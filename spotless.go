package spotless

import (
	"time"

	"spotless/internal/core"
	"spotless/internal/runtime"
	"spotless/internal/types"
)

// Re-exported fundamental types: the minimal vocabulary needed to submit
// transactions and consume results through the public API.
type (
	// NodeID identifies a replica or client.
	NodeID = types.NodeID
	// Digest identifies batches, proposals, and ledger entries.
	Digest = types.Digest
	// Transaction is a single client request.
	Transaction = types.Transaction
	// Batch groups transactions into one consensus payload.
	Batch = types.Batch
	// Commit is a globally ordered decision handed to execution.
	Commit = types.Commit
)

// Operation kinds for transactions.
const (
	OpRead  = types.OpRead
	OpWrite = types.OpWrite
)

// ClientIDBase is the first client identifier (replica ids are below it).
const ClientIDBase = types.ClientIDBase

// Config parameterizes an in-process SpotLess cluster.
type Config struct {
	// N is the number of replicas (n ≥ 4; tolerates f = ⌊(n−1)/3⌋ faults).
	N int
	// Instances is the number of concurrent chained instances m (§4);
	// 0 means one instance.
	Instances int
	// Source supplies client batches to proposing primaries; see
	// runtime.BatchSource.
	Source runtime.BatchSource
	// OnBatchCommitted fires once f+1 replicas executed a batch and sent
	// matching Informs (§5).
	OnBatchCommitted func(Digest)
	// ViewTimeout overrides the initial tR/tA timers (0: default).
	ViewTimeout time.Duration
}

// Cluster is a running in-process SpotLess deployment with real
// cryptography, YCSB execution, and per-replica provenance ledgers.
type Cluster struct {
	inner *runtime.Cluster
}

// NewCluster starts an n-replica SpotLess cluster in-process.
func NewCluster(cfg Config) (*Cluster, error) {
	rcfg := runtime.ClusterConfig{
		N:         cfg.N,
		Instances: cfg.Instances,
		Source:    cfg.Source,
		OnDone:    cfg.OnBatchCommitted,
	}
	if cfg.ViewTimeout > 0 {
		rcfg.Tune = func(i int, c *core.Config) {
			c.InitialRecordingTimeout = cfg.ViewTimeout
			c.InitialCertifyTimeout = cfg.ViewTimeout
			c.MinTimeout = cfg.ViewTimeout / 8
		}
	}
	inner, err := runtime.NewCluster(rcfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// N returns the cluster size; F the tolerated failures; M the instances.
func (c *Cluster) N() int { return c.inner.N }

// F returns the tolerated number of Byzantine replicas.
func (c *Cluster) F() int { return c.inner.F }

// M returns the number of concurrent consensus instances.
func (c *Cluster) M() int { return c.inner.M }

// Read returns the value of a key at the given replica's state machine.
func (c *Cluster) Read(replica int, key uint64) []byte {
	return c.inner.Execs[replica].Store().Read(key)
}

// LedgerHeight returns the replica's blockchain-ledger height.
func (c *Cluster) LedgerHeight(replica int) uint64 {
	return c.inner.Execs[replica].Ledger().Height()
}

// VerifyLedger re-validates the replica's hash chain.
func (c *Cluster) VerifyLedger(replica int) error {
	return c.inner.Execs[replica].Ledger().Verify()
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() { c.inner.Stop() }

// NewBatch assembles a batch from transactions, computing its digest.
func NewBatch(txns []Transaction) *Batch {
	return &Batch{ID: types.ComputeBatchID(txns), Txns: txns}
}
