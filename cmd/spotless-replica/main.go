// Command spotless-replica runs one SpotLess replica over TCP — the
// multi-process deployment path ("local processes" evaluation). Replicas
// accept client Requests, assign them to instances by digest (§5), execute
// committed batches against a YCSB table, append to the blockchain ledger,
// and Inform clients.
//
// Example 4-replica cluster on one machine:
//
//	for i in 0 1 2 3; do
//	  spotless-replica -id $i -n 4 -instances 4 \
//	    -peers 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003 &
//	done
//	spotless-client -n 4 -peers ... -batches 100
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"spotless/internal/core"
	"spotless/internal/crypto"
	"spotless/internal/dissem"
	"spotless/internal/ledger"
	"spotless/internal/metrics"
	"spotless/internal/runtime"
	"spotless/internal/transport"
	"spotless/internal/types"
	"spotless/internal/wal"
	"spotless/internal/ycsb"
)

// requestQueue assigns incoming client batches to instances by digest
// (§5: instance i proposes transactions with digest d ≡ i mod m). Under
// digest ordering (-dissem) the sharding changes: every batch this replica
// receives goes on its own dissemination lane — the dissemination layer
// pulls that lane, certifies availability, and only then do instances pick
// the digest up for proposing.
type requestQueue struct {
	mu     sync.Mutex
	m      int
	lane   int32 // ≥ 0: dissemination mode, all batches on this lane
	queues [][]*types.Batch
}

func newRequestQueue(m int, lane int32) *requestQueue {
	return &requestQueue{m: m, lane: lane, queues: make([][]*types.Batch, m)}
}

func (q *requestQueue) Add(b *types.Batch) {
	if b == nil {
		return
	}
	inst := q.lane
	if inst < 0 {
		inst = int32(b.ID[0]) % int32(q.m)
	}
	q.mu.Lock()
	q.queues[inst] = append(q.queues[inst], b)
	q.mu.Unlock()
}

func (q *requestQueue) Next(instance int32, now time.Duration) *types.Batch {
	q.mu.Lock()
	defer q.mu.Unlock()
	if int(instance) >= q.m || len(q.queues[instance]) == 0 {
		return nil
	}
	b := q.queues[instance][0]
	q.queues[instance] = q.queues[instance][1:]
	return b
}

func main() {
	var (
		id        = flag.Int("id", 0, "replica identifier (0..n-1)")
		n         = flag.Int("n", 4, "number of replicas")
		instances = flag.Int("instances", 0, "concurrent instances (default n)")
		peersFlag = flag.String("peers", "", "comma-separated id=host:port for all replicas")
		secret    = flag.String("secret", "spotless-demo", "cluster secret (deterministic PKI)")
		records   = flag.Uint64("records", 100000, "YCSB table size")
		timeout   = flag.Duration("timeout", 150*time.Millisecond, "initial view timeout")
		stats     = flag.Duration("stats", 5*time.Second, "stats reporting interval")
		ckptEvery = flag.Int("checkpoint-interval", 128, "checkpoint/GC/state-transfer interval in delivered batches (0 disables)")
		fetchCap  = flag.Int("checkpoint-fetch-cap", 512, "max ledger blocks per state-transfer chunk")
		idleWait  = flag.Duration("idle-backoff", 25*time.Millisecond, "pace view entry when no client batches are pending (0 disables; keep below -timeout)")
		instWkrs  = flag.Int("instance-workers", 0, "event-loop goroutines hosting the m consensus instances (plus one ordering stage); 0 sizes adaptively to min(m, GOMAXPROCS), 1 keeps the classic single loop")
		useDissem = flag.Bool("dissem", false, "digest ordering: disseminate client batches with availability certificates, consensus orders digests only")
		dissemK   = flag.Int("dissem-code", 0, "erasure-coded dissemination: split each batch into k data chunks (plus n-1-k parity), one chunk per peer — origin egress drops to ~(n-1)/k of the payload; 0 keeps the full push; requires -dissem; clamped to n-2f")
		pacemaker = flag.String("pacemaker", "", "view-synchronizer arm: spotless (adaptive, default), relay (linear escalation), doubling (exponential backoff)")
		metrAddr  = flag.String("metrics-addr", "", "serve the plain-text /metrics endpoint on this address (e.g. 127.0.0.1:9090; empty disables)")
		dataDir   = flag.String("data-dir", "", "durable WAL-backed ledger directory: appends and checkpoint manifests persist here, and a restart (even kill -9) replays the chain and resumes from the stable checkpoint (empty keeps the ledger in memory)")
		fsyncPol  = flag.String("fsync", "percommit", "WAL durability policy: percommit (fsync every append), batched (group fsyncs), off (page cache only)")
	)
	flag.Parse()
	if _, err := core.PacemakerByName(*pacemaker); err != nil {
		log.Fatalf("spotless-replica: %v", err)
	}

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		log.Fatalf("spotless-replica: %v", err)
	}
	if len(peers) != *n {
		log.Fatalf("spotless-replica: -peers lists %d replicas, -n is %d", len(peers), *n)
	}
	m := *instances
	if m == 0 {
		m = *n
	}
	self := types.NodeID(*id)
	listen, ok := peers[self]
	if !ok {
		log.Fatalf("spotless-replica: own id %d missing from -peers", *id)
	}

	ids := make([]types.NodeID, 0, *n+1)
	for i := 0; i < *n; i++ {
		ids = append(ids, types.NodeID(i))
	}
	ids = append(ids, types.ClientIDBase)
	ring := crypto.NewKeyring([]byte(*secret), ids)
	prov, err := ring.Provider(self)
	if err != nil {
		log.Fatal(err)
	}

	tr := transport.New(transport.Config{ID: self, Listen: listen, Peers: peers, Crypto: prov})
	var queue *requestQueue
	if *useDissem {
		// One lane per origin replica; this replica only fills (and pulls)
		// its own.
		queue = newRequestQueue(*n, int32(*id))
	} else {
		queue = newRequestQueue(m, -1)
	}
	store := ycsb.NewStore(*records, 64)
	lg := ledger.New()
	var durable *wal.Store
	var resume *core.ResumeState
	var snapData []byte
	if *dataDir != "" {
		pol, err := wal.ParseFsyncPolicy(*fsyncPol)
		if err != nil {
			log.Fatalf("spotless-replica: %v", err)
		}
		lg, durable, resume, snapData, err = runtime.OpenDurable(*dataDir, wal.Config{Fsync: pol, Logf: log.Printf})
		if err != nil {
			log.Fatalf("spotless-replica: open %s: %v", *dataDir, err)
		}
		if h, _ := lg.Head(); h > 0 {
			log.Printf("wal: replayed chain to height %d from %s", h, *dataDir)
		}
	}
	exec := runtime.NewReplicaExecutor(self, store, lg, tr, types.ClientIDBase)
	if durable != nil {
		exec.BindDurable(durable)
	}

	node := runtime.NewNode(runtime.NodeConfig{
		ID: self, N: *n, F: (*n - 1) / 3,
		Transport: tr, Crypto: prov, Source: queue,
		Executor: exec,
		// The transport screens inbound signatures on its reader
		// goroutines + the shared pool (SetIngress below); the node must
		// not verify a second time.
		PreVerified: true,
		// Instance-parallel core: shard the m instances over this many
		// event-loop goroutines behind the serialized ordering stage.
		Workers: runtime.AutoWorkers(*instWkrs, m),
	})
	// Client Requests arrive through the same transport; intercept them
	// before protocol dispatch. A retransmitted request whose batch already
	// executed is answered from the reply cache (§5): the delivery layer
	// deduplicates re-proposals, so it would never Inform again.
	tr.Register(self, func(from types.NodeID, msg types.Message) {
		if req, ok := msg.(*types.Request); ok {
			if req.Batch != nil {
				if results, done := exec.Reply(req.Batch.ID); done {
					tr.Send(self, from, &types.Inform{Replica: self, BatchID: req.Batch.ID, Results: results})
					return
				}
			}
			queue.Add(req.Batch)
			return
		}
		node.Inject(from, msg)
	})

	cfg := core.DefaultConfig(*n, m)
	cfg.InitialRecordingTimeout = *timeout
	cfg.InitialCertifyTimeout = *timeout
	cfg.MinTimeout = *timeout / 8
	// Idle pacing (ROADMAP PR 2 discovery): without it an idle cluster burns
	// thousands of no-op views per second; with it, view entry waits up to
	// the backoff for a client batch before proposing the no-op filler.
	cfg.IdleBackoff = *idleWait
	cfg.Pacemaker = *pacemaker
	if *ckptEvery > 0 {
		// Checkpoint + GC + state transfer: bounds memory in long runs and
		// lets a restarted replica rejoin from the stable checkpoint (the
		// operator kill-and-rejoin path; see README).
		cfg.CheckpointInterval = *ckptEvery
		cfg.CheckpointFetchCap = *fetchCap
		cfg.Host = exec
	}
	if *useDissem {
		cfg.Dissem = dissem.New(dissem.Config{N: *n, F: (*n - 1) / 3, CodeK: *dissemK})
	} else if *dissemK > 0 {
		log.Fatalf("spotless-replica: -dissem-code requires -dissem")
	}
	if err := runtime.ApplyResume(resume, snapData, &cfg, prov, exec); err != nil {
		log.Printf("wal: resume state rejected (%v); rejoining over the network", err)
	} else if cfg.Resume != nil {
		// Distinguish the restored-table restart from the forward-replay
		// fallback: the latter serves initial values for cold keys until
		// state transfer or fresh writes cover them, and an operator chasing
		// stale reads needs to see which of the two happened.
		if cfg.Resume.SnapshotHeight != 0 {
			log.Printf("wal: resuming from stable checkpoint at height %d (execution snapshot restored, table attested)",
				cfg.Resume.Cert.Height)
		} else {
			log.Printf("wal: resuming from stable checkpoint at height %d (NO execution snapshot — cold keys serve initial values until overwritten)",
				cfg.Resume.Cert.Height)
		}
	}
	rep := core.New(node, cfg)
	node.SetProtocol(rep)
	// Verification pipeline: MAC checks on the transport readers, declared
	// signature checks on the node's worker pool, before the event loop.
	tr.SetIngress(rep, node.Verifier())

	if *metrAddr != "" {
		// The source re-resolves through closures so the endpoint stays
		// correct if the consensus stack is ever rebuilt in-process.
		src := metrics.Source{
			Replica:   func() *core.Replica { return rep },
			Transport: func() *transport.TCP { return tr },
		}
		if layer := cfg.Dissem; layer != nil {
			src.Dissem = func() *dissem.Layer { return layer }
		}
		if durable != nil {
			src.WAL = func() *wal.Store { return durable }
		}
		ln, err := metrics.Serve(*metrAddr, src)
		if err != nil {
			log.Fatalf("spotless-replica: metrics listener: %v", err)
		}
		defer ln.Close()
		log.Printf("metrics on http://%s/metrics", ln.Addr())
	}

	if err := tr.Start(); err != nil {
		log.Fatal(err)
	}
	node.Start()
	log.Printf("spotless-replica %d up: n=%d m=%d workers=%d dissem=%v listen=%s",
		*id, *n, m, runtime.AutoWorkers(*instWkrs, m), *useDissem, listen)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*stats)
	defer tick.Stop()
	var lastApplied uint64
	for {
		select {
		case <-tick.C:
			applied := store.Applied()
			rate := float64(applied-lastApplied) / stats.Seconds()
			lastApplied = applied
			log.Printf("executed=%d (%.0f txn/s) ledger-height=%d", applied, rate, lg.Height())
		case <-stop:
			node.Stop()
			tr.Close()
			if durable != nil {
				if err := durable.Close(); err != nil {
					log.Printf("wal close FAILED: %v", err)
				}
			}
			if err := lg.Verify(); err != nil {
				log.Printf("ledger verification FAILED: %v", err)
				os.Exit(1)
			}
			if serr := lg.StoreErr(); serr != nil {
				log.Printf("ledger persistence degraded: %v", serr)
			}
			fmt.Printf("replica %d: clean shutdown, ledger verified at height %d\n", *id, lg.Height())
			return
		}
	}
}

func parsePeers(s string) (map[types.NodeID]string, error) {
	peers := make(map[types.NodeID]string)
	if s == "" {
		return nil, fmt.Errorf("missing -peers")
	}
	for _, part := range splitComma(s) {
		var id int
		var addr string
		if _, err := fmt.Sscanf(part, "%d=%s", &id, &addr); err != nil {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		peers[types.NodeID(id)] = addr
	}
	return peers, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
