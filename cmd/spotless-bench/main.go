// Command spotless-bench regenerates the tables and figures of the paper's
// evaluation section (§6.3) on the discrete-event simulator.
//
// Usage:
//
//	spotless-bench -list
//	spotless-bench -run fig7a            # one figure at paper scale
//	spotless-bench -run all -quick       # every figure at CI scale (n ≤ 32)
//	spotless-bench -run fig7a,fig13      # a selection
//	spotless-bench -soak 5               # chaos bake-off: profiles × pacemakers
//	spotless-bench -soak 5 -pacemaker relay -soak-profiles partitions
//
// Output is aligned text tables (one per figure panel).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spotless/internal/bench"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		run        = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		quick      = flag.Bool("quick", false, "CI-sized sweeps (n ≤ 32) instead of paper scale (n = 128)")
		baseline   = flag.String("baseline", "", "write the perf baseline (instance-parallel + dissemination sweeps, core-loop allocs) as JSON to this file and exit")
		trajectory = flag.String("trajectory", "", "re-run the digest-ordering sweep and exit non-zero if ktxn/s regressed >20% against this committed baseline JSON")

		safetyDrill  = flag.Int("safety-drill", 0, "run the seeded adversary safety drill over this many seeds (n=4, m=4; ledger diff with a block-level dump on divergence) and exit non-zero on any fork")
		safetySeed   = flag.Int64("safety-seed-base", 1, "first adversary seed of the -safety-drill sweep")
		safetyOld    = flag.Bool("safety-legacy", false, "point the -safety-drill at the pre-refactor resolution rules (negative control: divergence is the expected outcome)")
		safetyDissem = flag.Bool("safety-dissem", false, "run the -safety-drill under digest ordering (internal/dissem)")
		safetyCode   = flag.Int("safety-dissem-code", 0, "run the -safety-dissem drill with erasure-coded dissemination using this many data chunks (0 = full push; implies -safety-dissem)")
		safetyPace   = flag.String("safety-pacemaker", "", "view-synchronizer arm for the -safety-drill (spotless, relay, doubling; empty = spotless)")

		powercut = flag.Bool("powercut", false, "run the power-cut drill on the real runtime (kill -9 a durable replica under load, restart, meter the rejoin) against a memory-only control, and exit non-zero unless the durable replica restored its execution snapshot, answered every pre-checkpoint-key read correctly at restart with zero blocks replayed below the snapshot anchor, and transferred strictly less than the control")

		crashSoak     = flag.Int("crashsoak", 0, "run the crash/disk-fault chaos soak on the real runtime over this many seeds (kill -9 + snapshot/segment faults between checkpoints, restart, compare every table byte-for-byte with a never-crashed control) and exit non-zero on any divergence")
		crashSoakSeed = flag.Int64("crashsoak-seed-base", 1, "first seed of the -crashsoak sweep")

		soak      = flag.Int("soak", 0, "run the seeded soak/chaos bake-off over this many seeds per (fault profile × pacemaker arm) cell — time-to-resync p50/p99 and commits-lost-per-fault on simulator virtual time — and exit non-zero on any divergence")
		soakSeed  = flag.Int64("soak-seed-base", 1, "first chaos seed of the -soak sweep")
		soakPace  = flag.String("pacemaker", "", "comma-separated view-synchronizer arms for the -soak sweep (empty = all of spotless, relay, doubling)")
		soakFault = flag.String("soak-profiles", "", "comma-separated fault profiles for the -soak sweep (empty = partitions, gray, skew)")
	)
	flag.Parse()

	if *powercut {
		start := time.Now()
		o := bench.PowerCutOptions{}.WithDefaults()
		warm, cold, err := bench.RunPowerCut(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "powercut: %v\n", err)
			os.Exit(2)
		}
		t := bench.PowerCutTable(warm, cold, o)
		fmt.Println(t.String())
		fmt.Printf("(powercut completed in %s)\n", time.Since(start).Round(time.Millisecond))
		if warm.Replayed == 0 {
			fmt.Fprintln(os.Stderr, "POWERCUT FAILED: durable replica replayed nothing from local disk")
			os.Exit(1)
		}
		if warm.ChunkBlocks >= cold.ChunkBlocks {
			fmt.Fprintf(os.Stderr, "POWERCUT FAILED: durable rejoin transferred %d blocks, control transferred %d — suffix fetch did not engage\n",
				warm.ChunkBlocks, cold.ChunkBlocks)
			os.Exit(1)
		}
		if !warm.SnapRestored {
			fmt.Fprintln(os.Stderr, "POWERCUT FAILED: durable replica did not restore its execution snapshot at restart")
			os.Exit(1)
		}
		if warm.PreKeys == 0 {
			fmt.Fprintln(os.Stderr, "POWERCUT FAILED: the stable cut held no pre-checkpoint keys to attest")
			os.Exit(1)
		}
		if warm.PreKeyMisses != 0 {
			fmt.Fprintf(os.Stderr, "POWERCUT FAILED: restarted replica answered %d of %d pre-checkpoint-key reads wrongly\n",
				warm.PreKeyMisses, warm.PreKeys)
			os.Exit(1)
		}
		if warm.BelowAnchor != 0 {
			fmt.Fprintf(os.Stderr, "POWERCUT FAILED: restart replayed %d blocks below the snapshot anchor\n", warm.BelowAnchor)
			os.Exit(1)
		}
		return
	}

	if *crashSoak > 0 {
		start := time.Now()
		res, err := bench.RunCrashSoak(bench.CrashSoakOptions{Seeds: *crashSoak, SeedBase: *crashSoakSeed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashsoak: %v\n", err)
			os.Exit(2)
		}
		t := bench.CrashSoakTable(res)
		fmt.Println(t.String())
		fmt.Printf("(crashsoak completed in %s)\n", time.Since(start).Round(time.Millisecond))
		if res.Divergent > 0 {
			fmt.Fprintf(os.Stderr, "CRASHSOAK FAILED: %d of %d seeds diverged from the never-crashed control\n",
				res.Divergent, len(res.Seeds))
			for _, s := range res.Seeds {
				if s.Diverged {
					fmt.Fprintf(os.Stderr, "seed %d (%v):\n%s", s.Seed, s.Faults, s.Report)
				}
			}
			os.Exit(1)
		}
		if res.Restored == 0 || res.Fallbacks+res.Quarantined == 0 {
			fmt.Fprintln(os.Stderr, "CRASHSOAK FAILED: the sweep did not exercise both recovery paths (clean restore AND corruption fallback)")
			os.Exit(1)
		}
		return
	}

	if *soak > 0 {
		start := time.Now()
		o := bench.SoakOptions{Seeds: *soak, SeedBase: *soakSeed}
		if *soakPace != "" {
			o.Pacemakers = splitList(*soakPace)
		}
		if *soakFault != "" {
			o.Profiles = splitList(*soakFault)
		}
		res, err := bench.RunSoak(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(res.String())
		fmt.Printf("(soak completed in %s)\n", time.Since(start).Round(time.Millisecond))
		if len(res.Divergences()) > 0 {
			os.Exit(1) // chaos must degrade liveness, never safety
		}
		return
	}

	if *safetyDrill > 0 {
		start := time.Now()
		res := bench.RunSafetyDrill(bench.SafetyDrillOptions{
			Seeds: *safetyDrill, SeedBase: *safetySeed, Legacy: *safetyOld,
			Dissem: *safetyDissem || *safetyCode > 0, DissemCode: *safetyCode,
			Pacemaker: *safetyPace,
		})
		fmt.Print(res.String())
		fmt.Printf("(drill completed in %s)\n", time.Since(start).Round(time.Millisecond))
		if !*safetyOld && len(res.Divergent) > 0 {
			os.Exit(1) // strict rules must never fork
		}
		if *safetyOld && len(res.Divergent) == 0 {
			fmt.Println("note: the legacy sweep found no fork in this seed range; try -safety-seed-base 8")
		}
		return
	}

	if *list {
		for _, f := range bench.Figures {
			fmt.Printf("%-8s %s\n", f.ID, f.Title)
		}
		return
	}

	if *baseline != "" {
		start := time.Now()
		rep, err := bench.CollectBaseline()
		if err != nil {
			fmt.Fprintf(os.Stderr, "baseline collection failed: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteFile(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		fmt.Printf("baseline written to %s (%d sim + %d runtime + %d dissemination points, core loop %.0f allocs/op, %s)\n",
			*baseline, len(rep.SimInstanceParallel), len(rep.RuntimeInstanceParallel),
			len(rep.Dissemination), rep.CoreLoop.AllocsPerOp, time.Since(start).Round(time.Millisecond))
		return
	}

	if *trajectory != "" {
		start := time.Now()
		rep, err := bench.ReadBaselineFile(*trajectory)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reading %s: %v\n", *trajectory, err)
			os.Exit(1)
		}
		if err := bench.CheckTrajectory(rep); err != nil {
			fmt.Fprintf(os.Stderr, "TRAJECTORY CHECK FAILED against %s:\n%v\n", *trajectory, err)
			os.Exit(1)
		}
		fmt.Printf("trajectory ok: digest ordering within %.0f%% of %s (%s)\n",
			bench.TrajectoryTolerance*100, *trajectory, time.Since(start).Round(time.Millisecond))
		return
	}

	var selected []bench.Figure
	if *run == "all" {
		selected = bench.Figures
	} else {
		for _, id := range strings.Split(*run, ",") {
			f := bench.FigureByID(strings.TrimSpace(id))
			if f == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			selected = append(selected, *f)
		}
	}

	runFigures(selected, *quick)
}

// splitList parses a comma-separated flag value, dropping blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func runFigures(selected []bench.Figure, quick bool) {
	for _, f := range selected {
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", f.ID, f.Title)
		for _, t := range f.Run(quick) {
			fmt.Println(t.String())
		}
		fmt.Printf("(%s completed in %s)\n\n", f.ID, time.Since(start).Round(time.Millisecond))
	}
}
