// Command spotless-client drives a spotless-replica cluster: it submits
// YCSB batches, collects f+1 matching Informs per batch (§5), retries
// unanswered requests against the next replica with a doubled timeout, and
// reports throughput and latency.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/transport"
	"spotless/internal/types"
	"spotless/internal/ycsb"
)

type pending struct {
	batch     *types.Batch
	submitted time.Time
	replica   int
	timeout   time.Duration
	informs   map[types.NodeID]bool
	done      bool
}

func main() {
	var (
		n         = flag.Int("n", 4, "number of replicas")
		peersFlag = flag.String("peers", "", "comma-separated id=host:port for all replicas")
		secret    = flag.String("secret", "spotless-demo", "cluster secret")
		batches   = flag.Int("batches", 100, "total batches to complete")
		batchSize = flag.Int("batch", 100, "transactions per batch")
		inflight  = flag.Int("inflight", 16, "outstanding batches")
		timeout   = flag.Duration("timeout", 2*time.Second, "initial client timer t_C")
	)
	flag.Parse()

	peers := make(map[types.NodeID]string)
	var id int
	var addr string
	rest := *peersFlag
	for rest != "" {
		next := rest
		if i := indexByte(rest, ','); i >= 0 {
			next, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if _, err := fmt.Sscanf(next, "%d=%s", &id, &addr); err != nil {
			log.Fatalf("bad -peers element %q", next)
		}
		peers[types.NodeID(id)] = addr
	}
	if len(peers) != *n {
		log.Fatalf("-peers lists %d replicas, -n is %d", len(peers), *n)
	}
	f := (*n - 1) / 3

	ids := make([]types.NodeID, 0, *n+1)
	for i := 0; i < *n; i++ {
		ids = append(ids, types.NodeID(i))
	}
	ids = append(ids, types.ClientIDBase)
	ring := crypto.NewKeyring([]byte(*secret), ids)
	prov, err := ring.Provider(types.ClientIDBase)
	if err != nil {
		log.Fatal(err)
	}

	var (
		mu        sync.Mutex
		inFlight  = map[types.Digest]*pending{}
		latencies []time.Duration
		completed int
		doneCh    = make(chan struct{}, 1)
	)

	tr := transport.New(transport.Config{ID: types.ClientIDBase, Peers: peers, Crypto: prov})
	tr.Register(types.ClientIDBase, func(from types.NodeID, msg types.Message) {
		inf, ok := msg.(*types.Inform)
		if !ok {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		p := inFlight[inf.BatchID]
		if p == nil || p.done {
			return
		}
		p.informs[inf.Replica] = true
		if len(p.informs) >= f+1 {
			p.done = true
			delete(inFlight, inf.BatchID)
			latencies = append(latencies, time.Since(p.submitted))
			completed++
			select {
			case doneCh <- struct{}{}:
			default:
			}
		}
	})
	if err := tr.Start(); err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	wl := ycsb.NewWorkload(time.Now().UnixNano(), types.ClientIDBase, 100000, 33)
	submit := func(p *pending) {
		// §5: send to one replica; rotation guarantees some non-faulty
		// primary eventually proposes it.
		to := types.NodeID(p.replica % *n)
		tr.Send(types.ClientIDBase, to, &types.Request{Batch: p.batch})
	}
	newBatch := func() {
		b := wl.NextBatch(*batchSize)
		p := &pending{batch: b, submitted: time.Now(), timeout: *timeout, informs: map[types.NodeID]bool{}}
		mu.Lock()
		inFlight[b.ID] = p
		mu.Unlock()
		submit(p)
	}

	start := time.Now()
	issued := 0
	for ; issued < *inflight && issued < *batches; issued++ {
		newBatch()
	}
	retry := time.NewTicker(100 * time.Millisecond)
	defer retry.Stop()
	for {
		mu.Lock()
		doneCount := completed
		mu.Unlock()
		if doneCount >= *batches {
			break
		}
		select {
		case <-doneCh:
			if issued < *batches {
				newBatch()
				issued++
			}
		case <-retry.C:
			// Client timer t_C: resend to the next replica with doubled
			// timeout (§5).
			mu.Lock()
			for _, p := range inFlight {
				if time.Since(p.submitted) > p.timeout {
					p.replica++
					p.timeout *= 2
					submit(p)
				}
			}
			mu.Unlock()
		}
	}
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	txns := *batches * *batchSize
	fmt.Printf("completed %d batches (%d txns) in %s\n", *batches, txns, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f txn/s\n", float64(txns)/elapsed.Seconds())
	if len(latencies) > 0 {
		fmt.Printf("latency avg=%s p50=%s p99=%s\n",
			(sum / time.Duration(len(latencies))).Round(time.Microsecond),
			latencies[len(latencies)/2].Round(time.Microsecond),
			latencies[len(latencies)*99/100].Round(time.Microsecond))
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
