// Package spotless_test hosts one testing.B benchmark per reproduced table
// and figure (deliverable (d)). Benchmarks run the CI-scale (quick) variant
// of each experiment so `go test -bench=.` finishes in minutes; the
// paper-scale sweeps are produced by `go run ./cmd/spotless-bench`.
//
// Each benchmark reports the headline throughput of its figure via
// b.ReportMetric (ktxn/s of the flagship configuration) in addition to the
// usual ns/op.
package spotless_test

import (
	"strconv"
	"testing"

	"spotless/internal/bench"
)

// runFigure executes a figure's quick variant b.N times and reports the
// first numeric cell of the last row as the headline metric.
func runFigure(b *testing.B, id string) {
	fig := bench.FigureByID(id)
	if fig == nil {
		b.Fatalf("unknown figure %s", id)
	}
	var tables []bench.Table
	for i := 0; i < b.N; i++ {
		tables = fig.Run(true)
	}
	if metric, ok := headline(tables); ok {
		b.ReportMetric(metric, "ktxn/s")
	}
}

func headline(tables []bench.Table) (float64, bool) {
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		return 0, false
	}
	rows := tables[0].Rows
	last := rows[len(rows)-1]
	for _, cell := range last[1:] {
		if v, err := strconv.ParseFloat(cell, 64); err == nil {
			return v, true
		}
	}
	return 0, false
}

func BenchmarkFig1MessageComplexity(b *testing.B)   { runFigure(b, "fig1") }
func BenchmarkFig7aScalability(b *testing.B)        { runFigure(b, "fig7a") }
func BenchmarkFig7bBatching(b *testing.B)           { runFigure(b, "fig7b") }
func BenchmarkFig7cThroughputLatency(b *testing.B)  { runFigure(b, "fig7c") }
func BenchmarkFig7dTxnSize(b *testing.B)            { runFigure(b, "fig7d") }
func BenchmarkFig7eFailures(b *testing.B)           { runFigure(b, "fig7e") }
func BenchmarkFig7fFailureRatio(b *testing.B)       { runFigure(b, "fig7f") }
func BenchmarkFig8SpotLessFailures(b *testing.B)    { runFigure(b, "fig8") }
func BenchmarkFig9LatencyFailures(b *testing.B)     { runFigure(b, "fig9") }
func BenchmarkFig10ParallelProcessing(b *testing.B) { runFigure(b, "fig10") }
func BenchmarkFig11Byzantine(b *testing.B)          { runFigure(b, "fig11") }
func BenchmarkFig12Timeline(b *testing.B)           { runFigure(b, "fig12") }
func BenchmarkFig13Instances(b *testing.B)          { runFigure(b, "fig13") }
func BenchmarkFig14aCores(b *testing.B)             { runFigure(b, "fig14a") }
func BenchmarkFig14bBandwidth(b *testing.B)         { runFigure(b, "fig14b") }
func BenchmarkFig14cdRegions(b *testing.B)          { runFigure(b, "fig14cd") }
func BenchmarkFig15SingleInstance(b *testing.B)     { runFigure(b, "fig15") }

// BenchmarkSpotLessHeadline is the flagship single point: SpotLess at the
// quick scale with defaults (paper: Figure 7(a) right edge).
func BenchmarkSpotLessHeadline(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		res := bench.Run(bench.Options{Protocol: bench.SpotLess, N: 32})
		tput = res.Throughput
	}
	b.ReportMetric(tput/1000, "ktxn/s")
}

// BenchmarkAblations regenerates the design-choice ablation tables:
// geo fast path, message buffering, and QC-verification cost.
func BenchmarkAblations(b *testing.B) { runFigure(b, "ablation") }
