package core

import (
	"testing"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// fakeContext drives a single replica deterministically for white-box tests
// of the instance state machine.
type fakeContext struct {
	id      types.NodeID
	n, f    int
	now     time.Duration
	prov    crypto.Provider
	sent    []types.Message
	commits []types.Commit
	timers  []protocol.TimerTag
	verifs  []fakeVerify // queued VerifyAsync completions (delivered by flushVerify)
}

type fakeVerify struct {
	tag protocol.TimerTag
	ok  bool
}

func newFakeContext(id types.NodeID, n int) *fakeContext {
	fc := &fakeContext{id: id, n: n, f: (n - 1) / 3}
	fc.prov = crypto.NewSimProvider(id, crypto.CostModel{}, nil)
	return fc
}

func (c *fakeContext) ID() types.NodeID   { return c.id }
func (c *fakeContext) N() int             { return c.n }
func (c *fakeContext) F() int             { return c.f }
func (c *fakeContext) Now() time.Duration { return c.now }
func (c *fakeContext) Send(to types.NodeID, m types.Message) {
	c.sent = append(c.sent, m)
}
func (c *fakeContext) Broadcast(m types.Message) { c.sent = append(c.sent, m) }
func (c *fakeContext) SetTimer(d time.Duration, tag protocol.TimerTag) {
	c.timers = append(c.timers, tag)
}
func (c *fakeContext) Crypto() crypto.Provider      { return c.prov }
func (c *fakeContext) Deliver(cm types.Commit)      { c.commits = append(c.commits, cm) }
func (c *fakeContext) NextBatch(int32) *types.Batch { return nil }
func (c *fakeContext) Logf(string, ...any)          {}

// VerifyAsync computes the verdict immediately but queues the completion,
// honouring the non-reentrancy of the contract; tests deliver it with
// flushVerify.
func (c *fakeContext) VerifyAsync(job protocol.VerifyJob) {
	ok := crypto.VerifyChecks(c.prov, job.Checks, job.Quorum)
	c.verifs = append(c.verifs, fakeVerify{tag: job.Tag, ok: ok})
}

// flushVerify delivers queued verification completions to the replica, as
// the substrates do after the issuing handler returned.
func flushVerify(r *Replica, ctx *fakeContext) {
	for len(ctx.verifs) > 0 {
		v := ctx.verifs[0]
		ctx.verifs = ctx.verifs[1:]
		r.HandleVerified(v.tag, v.ok)
	}
}

// provFor returns a signing provider for another (simulated) replica.
func provFor(id types.NodeID) crypto.Provider {
	return crypto.NewSimProvider(id, crypto.CostModel{}, nil)
}

// buildProposal constructs a signed proposal extending the given parent.
func buildProposal(inst int32, v types.View, parent types.Justification, primary types.NodeID) *types.Propose {
	batch := &types.Batch{ID: types.ComputeBatchID(nil), NoOp: true}
	p := &types.Propose{Instance: inst, View: v, Batch: batch, Parent: parent}
	d := p.Digest()
	p.Sig = provFor(primary).Sign(d[:])
	return p
}

// syncFor constructs a signed Sync claiming the given proposal.
func syncFor(inst int32, from types.NodeID, v types.View, d types.Digest, cp []types.CPEntry) *types.Sync {
	claim := types.Claim{View: v, Digest: d}
	return &types.Sync{Instance: inst, View: v, Claim: claim, CP: cp,
		Sig: provFor(from).Sign(types.ClaimBytes(inst, claim))}
}

// harness: replica 0 of n=4 with one instance; primary of view v is
// replica (v mod 4).
func newTestReplica() (*Replica, *fakeContext) {
	ctx := newFakeContext(0, 4)
	cfg := DefaultConfig(4, 1)
	r := New(ctx, cfg)
	r.Start()
	return r, ctx
}

// driveView makes replica 0 observe a full successful view v for the given
// proposal: the proposal plus n−f matching Syncs from other replicas.
func driveView(r *Replica, p *types.Propose) {
	r.HandleMessage(p.Sig.Signer, p)
	d := p.Digest()
	for _, from := range []types.NodeID{1, 2, 3} {
		r.HandleMessage(from, syncFor(0, from, p.View, d, nil))
	}
}

// TestChainedCommitThreeConsecutiveViews: a proposal commits exactly when
// its two successors occupy the next two consecutive views (u = w+1 = v+2,
// Definition 3.3) — the heart of Example 3.6.
func TestChainedCommitThreeConsecutiveViews(t *testing.T) {
	r, ctx := newTestReplica()
	in := r.Instance(0)

	p1 := buildProposal(0, 1, types.Justification{Kind: types.JustGenesis}, 1)
	driveView(r, p1)
	if !in.props[p1.Digest()].condPrepared {
		t.Fatal("P1 not conditionally prepared after n−f matching claims")
	}
	p2 := buildProposal(0, 2, types.Justification{Kind: types.JustClaim, ParentView: 1, ParentDigest: p1.Digest()}, 2)
	driveView(r, p2)
	if !in.props[p1.Digest()].condCommitted {
		t.Fatal("P1 not conditionally committed after child prepared")
	}
	if in.props[p1.Digest()].committed {
		t.Fatal("P1 committed after only two views — Example 3.6 violation")
	}
	p3 := buildProposal(0, 3, types.Justification{Kind: types.JustClaim, ParentView: 2, ParentDigest: p2.Digest()}, 3)
	driveView(r, p3)
	if !in.props[p1.Digest()].committed {
		t.Fatal("P1 not committed after three consecutive views")
	}
	if len(ctx.commits) != 0 {
		// p1..p3 are no-ops; they advance frontiers without delivery.
		t.Fatalf("no-op proposals must not be delivered, got %d", len(ctx.commits))
	}
}

// TestCommitSkipsNonConsecutiveViews: a gap between views (failed view)
// defers the commit until a later consecutive triple forms, which then
// commits the whole ancestor chain.
func TestCommitSkipsNonConsecutiveViews(t *testing.T) {
	r, _ := newTestReplica()
	in := r.Instance(0)

	p1 := buildProposal(0, 1, types.Justification{Kind: types.JustGenesis}, 1)
	driveView(r, p1)
	// View 2 fails: n−f empty claims advance the view without a proposal.
	for _, from := range []types.NodeID{1, 2, 3} {
		claim := types.Claim{View: 2, Empty: true}
		r.HandleMessage(from, &types.Sync{Instance: 0, View: 2, Claim: claim,
			Sig: provFor(from).Sign(types.ClaimBytes(0, claim))})
	}
	if got := in.CurrentView(); got != 3 {
		t.Fatalf("view after failed view 2: got %d want 3", got)
	}
	// Views 3, 4, 5 succeed on a chain extending P1.
	p3 := buildProposal(0, 3, types.Justification{Kind: types.JustClaim, ParentView: 1, ParentDigest: p1.Digest()}, 3)
	driveView(r, p3)
	p4 := buildProposal(0, 4, types.Justification{Kind: types.JustClaim, ParentView: 3, ParentDigest: p3.Digest()}, 0)
	// Replica 0 is the primary of view 4; feed only the backups' syncs.
	d4 := p4.Digest()
	r.HandleMessage(0, p4)
	for _, from := range []types.NodeID{1, 2, 3} {
		r.HandleMessage(from, syncFor(0, from, 4, d4, nil))
	}
	if in.props[p1.Digest()].committed {
		t.Fatal("P1 must not commit: views 1,3,4 are not consecutive")
	}
	p5 := buildProposal(0, 5, types.Justification{Kind: types.JustClaim, ParentView: 4, ParentDigest: p4.Digest()}, 1)
	driveView(r, p5)
	if !in.props[p3.Digest()].committed || !in.props[p1.Digest()].committed {
		t.Fatal("the 3,4,5 triple must commit P3 and its ancestor P1")
	}
}

// TestSafetyRuleRejectsForkBelowLock: once locked, a replica refuses
// proposals extending a branch that bypasses the lock (rule A2/A3).
func TestSafetyRuleRejectsForkBelowLock(t *testing.T) {
	r, ctx := newTestReplica()
	in := r.Instance(0)

	p1 := buildProposal(0, 1, types.Justification{Kind: types.JustGenesis}, 1)
	driveView(r, p1)
	p2 := buildProposal(0, 2, types.Justification{Kind: types.JustClaim, ParentView: 1, ParentDigest: p1.Digest()}, 2)
	driveView(r, p2)
	p3 := buildProposal(0, 3, types.Justification{Kind: types.JustClaim, ParentView: 2, ParentDigest: p2.Digest()}, 3)
	driveView(r, p3)
	if got := in.LockView(); got != 2 {
		t.Fatalf("lock view: got %d want 2", got)
	}
	// A forged proposal at the current view extending genesis (bypassing
	// the lock) must not be accepted: no Sync may be emitted for it.
	sentBefore := len(ctx.sent)
	forged := buildProposal(0, 4, types.Justification{Kind: types.JustGenesis}, 0)
	r.HandleMessage(0, forged)
	for _, m := range ctx.sent[sentBefore:] {
		if s, ok := m.(*types.Sync); ok && !s.Claim.Empty && s.Claim.Digest == forged.Digest() {
			t.Fatal("replica voted for a proposal violating the safety rule A2")
		}
	}
}

// TestCPSetCarriesCondPrepared: Sync messages list conditionally prepared
// proposals with view ≥ lock view (§3.3).
func TestCPSetCarriesCondPrepared(t *testing.T) {
	r, ctx := newTestReplica()
	p1 := buildProposal(0, 1, types.Justification{Kind: types.JustGenesis}, 1)
	driveView(r, p1)
	p2 := buildProposal(0, 2, types.Justification{Kind: types.JustClaim, ParentView: 1, ParentDigest: p1.Digest()}, 2)
	// Deliver only the proposal: replica 0 accepts and broadcasts its Sync.
	r.HandleMessage(2, p2)
	var last *types.Sync
	for _, m := range ctx.sent {
		if s, ok := m.(*types.Sync); ok && s.View == 2 {
			last = s
		}
	}
	if last == nil {
		t.Fatal("no Sync broadcast for view 2")
	}
	found := false
	for _, e := range last.CP {
		if e.Digest == p1.Digest() && e.View == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("CP set %+v misses conditionally prepared P1", last.CP)
	}
}

// TestWeakQuorumAsksThenClaims: f+1 matching claims for an unknown proposal
// make a replica fetch the payload via Ask — but never echo a claim it
// cannot check against the acceptance rules. The seed echoed on the f+1
// backing alone, which let a locked replica complete a claim quorum for a
// chain conflicting with its own lock (the fork-commit path closed by the
// Lemma 3.4 re-derivation; see resolution.go). Once the payload arrives,
// the claim follows through the ordinary acceptance path, and liveness is
// restored one Ask round-trip later.
func TestWeakQuorumAsksThenClaims(t *testing.T) {
	r, ctx := newTestReplica()
	p1 := buildProposal(0, 1, types.Justification{Kind: types.JustGenesis}, 1)
	d := p1.Digest()
	// Replica 0 never receives P1 — only f+1 = 2 matching claims.
	r.HandleMessage(1, syncFor(0, 1, 1, d, nil))
	r.HandleMessage(2, syncFor(0, 2, 1, d, nil))
	scan := func() (echoed, asked bool) {
		for _, m := range ctx.sent {
			switch s := m.(type) {
			case *types.Sync:
				if s.View == 1 && !s.Claim.Empty && s.Claim.Digest == d {
					echoed = true
				}
			case *types.Ask:
				if s.Claim.Digest == d {
					asked = true
				}
			}
		}
		return
	}
	echoed, asked := scan()
	if echoed {
		t.Error("replica echoed a claim for a proposal it cannot check")
	}
	if !asked {
		t.Error("replica did not Ask for the unknown proposal")
	}
	// The Ask is answered: the payload arrives and the replica claims it
	// through tryAccept (rules A1/ACV/A2 all hold against genesis).
	r.HandleMessage(1, p1)
	if echoed, _ = scan(); !echoed {
		t.Error("replica did not claim the proposal after its payload arrived")
	}
	// A third claim completes n−f = 3: the proposal certifies, becomes
	// conditionally prepared, and the view advances.
	r.HandleMessage(3, syncFor(0, 3, 1, d, nil))
	if !r.Instance(0).props[d].condPrepared {
		t.Error("claim-backed proposal not conditionally prepared at n−f")
	}
	if got := r.Instance(0).CurrentView(); got != 2 {
		t.Errorf("view after quorum: got %d want 2", got)
	}
}

// TestAskServesRecordedProposal: replicas answer Ask with the recorded
// Propose message (§3.3).
func TestAskServesRecordedProposal(t *testing.T) {
	r, ctx := newTestReplica()
	p1 := buildProposal(0, 1, types.Justification{Kind: types.JustGenesis}, 1)
	r.HandleMessage(1, p1)
	sentBefore := len(ctx.sent)
	r.HandleMessage(3, &types.Ask{Instance: 0, View: 1, Claim: types.Claim{View: 1, Digest: p1.Digest()}})
	served := false
	for _, m := range ctx.sent[sentBefore:] {
		if pp, ok := m.(*types.Propose); ok && pp.Digest() == p1.Digest() {
			served = true
		}
	}
	if !served {
		t.Fatal("recorded proposal not forwarded in response to Ask")
	}
}

// TestCatchUpSkipsToHigherView: f+1 Syncs of a much higher view make a
// lagging replica jump, broadcasting Υ-flagged empty syncs for the gap
// (Figure 4, lines 12–15).
func TestCatchUpSkipsToHigherView(t *testing.T) {
	r, ctx := newTestReplica()
	for _, from := range []types.NodeID{1, 2} {
		claim := types.Claim{View: 9, Empty: true}
		r.HandleMessage(from, &types.Sync{Instance: 0, View: 9, Claim: claim,
			Sig: provFor(from).Sign(types.ClaimBytes(0, claim))})
	}
	if got := r.Instance(0).CurrentView(); got != 9 {
		t.Fatalf("lagging replica should jump to view 9, got %d", got)
	}
	retrans := 0
	for _, m := range ctx.sent {
		if s, ok := m.(*types.Sync); ok && s.Retransmit {
			retrans++
		}
	}
	if retrans == 0 {
		t.Fatal("catch-up must broadcast Υ-flagged syncs for skipped views")
	}
}

// TestCertificateConditionallyPrepares: a valid embedded certificate
// conditionally prepares an unprepared parent on the spot (§3.3), while a
// bogus certificate does not.
func TestCertificateConditionallyPrepares(t *testing.T) {
	r, ctx := newTestReplica()
	in := r.Instance(0)

	// Build P1 and a genuine certificate from 3 signed claims — but never
	// show P1's view-1 quorum to replica 0 directly.
	p1 := buildProposal(0, 1, types.Justification{Kind: types.JustGenesis}, 1)
	r.HandleMessage(1, p1) // recorded, voted; no quorum follows
	d1 := p1.Digest()
	claim := types.Claim{View: 1, Digest: d1}
	var cert []types.Signature
	for _, from := range []types.NodeID{1, 2, 3} {
		cert = append(cert, provFor(from).Sign(types.ClaimBytes(0, claim)))
	}
	// Jump replica 0 to view 2 via empty claims is impossible without a
	// quorum; instead feed view-2 proposal carrying the certificate after
	// advancing via n−f view-1 empty claims from others... Simpler: the
	// proposal arrives for the current view of a replica that timed out.
	// Here replica 0 is still in view 1; drive it to view 2 with n−f
	// matching claims for P1 unseen by it: use empty claims.
	for _, from := range []types.NodeID{1, 2, 3} {
		ec := types.Claim{View: 1, Empty: true}
		r.HandleMessage(from, &types.Sync{Instance: 0, View: 1, Claim: ec,
			Sig: provFor(from).Sign(types.ClaimBytes(0, ec))})
	}
	if in.CurrentView() != 2 {
		t.Fatalf("setup: want view 2, got %d", in.CurrentView())
	}
	if in.props[d1].condPrepared {
		t.Fatal("setup: P1 must not be conditionally prepared yet")
	}
	p2 := buildProposal(0, 2, types.Justification{Kind: types.JustCert, ParentView: 1, ParentDigest: d1, Cert: cert}, 2)
	r.HandleMessage(2, p2)
	// Certificate verification is asynchronous: the proposal is buffered
	// until the fanned-out batch job completes.
	if in.props[d1].condPrepared {
		t.Fatal("parent conditionally prepared before the cert job completed")
	}
	flushVerify(r, ctx)
	if !in.props[d1].condPrepared {
		t.Fatal("valid certificate must conditionally prepare the parent (S4)")
	}
	voted := false
	for _, m := range ctx.sent {
		if s, ok := m.(*types.Sync); ok && s.View == 2 && !s.Claim.Empty && s.Claim.Digest == p2.Digest() {
			voted = true
		}
	}
	if !voted {
		t.Fatal("replica must vote for a certificate-justified proposal")
	}
}

// TestBogusCertificateRejected: certificates with forged or duplicate
// signatures do not conditionally prepare the parent.
func TestBogusCertificateRejected(t *testing.T) {
	r, ctx := newTestReplica()
	in := r.Instance(0)
	p1 := buildProposal(0, 1, types.Justification{Kind: types.JustGenesis}, 1)
	d1 := p1.Digest()
	// Advance replica 0 past view 1 with empty claims.
	for _, from := range []types.NodeID{1, 2, 3} {
		ec := types.Claim{View: 1, Empty: true}
		r.HandleMessage(from, &types.Sync{Instance: 0, View: 1, Claim: ec,
			Sig: provFor(from).Sign(types.ClaimBytes(0, ec))})
	}
	// Certificate of three copies of ONE valid signature (duplicates).
	one := provFor(1).Sign(types.ClaimBytes(0, types.Claim{View: 1, Digest: d1}))
	cert := []types.Signature{one, one, one}
	p2 := buildProposal(0, 2, types.Justification{Kind: types.JustCert, ParentView: 1, ParentDigest: d1, Cert: cert}, 2)
	r.HandleMessage(2, p2)
	flushVerify(r, ctx)
	if p, ok := in.props[d1]; ok && p.condPrepared {
		t.Fatal("duplicate-signature certificate accepted")
	}
}

// TestOneClaimPerView: a replica never emits two different claims for one
// view, even when a second acceptable proposal arrives (Theorem 3.2's
// premise).
func TestOneClaimPerView(t *testing.T) {
	r, ctx := newTestReplica()
	p1 := buildProposal(0, 1, types.Justification{Kind: types.JustGenesis}, 1)
	r.HandleMessage(1, p1)
	alt := buildProposal(0, 1, types.Justification{Kind: types.JustGenesis}, 1)
	alt.Batch = &types.Batch{ID: types.Digest{42}}
	d := alt.Digest()
	alt.Sig = provFor(1).Sign(d[:])
	r.HandleMessage(1, alt)
	claims := 0
	for _, m := range ctx.sent {
		if s, ok := m.(*types.Sync); ok && s.View == 1 {
			claims++
		}
	}
	if claims != 1 {
		t.Fatalf("replica emitted %d claims for view 1, want exactly 1", claims)
	}
}

// TestAdaptiveTimeoutEpsilonAndHalving: consecutive timeouts add ε;
// fast arrivals halve, both clamped (§3.5).
func TestAdaptiveTimeoutEpsilonAndHalving(t *testing.T) {
	ctx := newFakeContext(0, 4)
	cfg := DefaultConfig(4, 1)
	cfg.InitialRecordingTimeout = 40 * time.Millisecond
	cfg.Epsilon = 10 * time.Millisecond
	cfg.MinTimeout = 10 * time.Millisecond
	r := New(ctx, cfg)
	r.Start()
	in := r.Instance(0)
	base, _ := in.pm.Timeouts()
	// Two consecutive recording timeouts in consecutive views.
	r.HandleTimer(protocol.TimerTag{Kind: protocol.TimerRecording, Instance: 0, View: 1})
	for _, from := range []types.NodeID{1, 2, 3} {
		ec := types.Claim{View: 1, Empty: true}
		r.HandleMessage(from, &types.Sync{Instance: 0, View: 1, Claim: ec,
			Sig: provFor(from).Sign(types.ClaimBytes(0, ec))})
	}
	r.HandleTimer(protocol.TimerTag{Kind: protocol.TimerRecording, Instance: 0, View: 2})
	if tR, _ := in.pm.Timeouts(); tR != base+cfg.Epsilon {
		t.Fatalf("consecutive timeout must add ε: got %v want %v", tR, base+cfg.Epsilon)
	}
	// A proposal arriving instantly (well under tR/2) halves the timeout.
	for _, from := range []types.NodeID{1, 2, 3} {
		ec := types.Claim{View: 2, Empty: true}
		r.HandleMessage(from, &types.Sync{Instance: 0, View: 2, Claim: ec,
			Sig: provFor(from).Sign(types.ClaimBytes(0, ec))})
	}
	cur, _ := in.pm.Timeouts()
	p3 := buildProposal(0, 3, types.Justification{Kind: types.JustGenesis}, 3)
	r.HandleMessage(3, p3)
	if tR, _ := in.pm.Timeouts(); tR != cur/2 {
		t.Fatalf("fast arrival must halve tR: got %v want %v", tR, cur/2)
	}
}

// TestResolutionPhasesAndLockChokePoint: the per-view resolution state
// machine advances proposed → claimed → resolved{batch|∅} → committed, and
// the lock rises exactly at the certification choke point (raiseLock): to
// the parent of a certified proposal, never on a bare claim.
func TestResolutionPhasesAndLockChokePoint(t *testing.T) {
	r, _ := newTestReplica()
	in := r.Instance(0)

	p1 := buildProposal(0, 1, types.Justification{Kind: types.JustGenesis}, 1)
	r.HandleMessage(1, p1)
	// Proposal recorded and claimed by us; no quorum yet.
	if got := resPhase(in.ResolutionPhase(1)); got != resClaimed {
		t.Fatalf("view 1 phase after own claim: got %d want resClaimed", got)
	}
	if got := in.LockView(); got != 0 {
		t.Fatalf("lock must not rise on a bare claim, got view %d", got)
	}
	for _, from := range []types.NodeID{2, 3} {
		r.HandleMessage(from, syncFor(0, from, 1, p1.Digest(), nil))
	}
	// Certified: the view resolved to P1; the lock rises to P1's parent
	// (genesis — no visible change yet).
	if got := resPhase(in.ResolutionPhase(1)); got != resResolvedBatch {
		t.Fatalf("view 1 phase after the claim quorum: got %d want resResolvedBatch", got)
	}
	p2 := buildProposal(0, 2, types.Justification{Kind: types.JustClaim, ParentView: 1, ParentDigest: p1.Digest()}, 2)
	r.HandleMessage(2, p2)
	if got := in.LockView(); got != 0 {
		t.Fatalf("lock rose on an uncertified view-2 claim, got view %d", got)
	}
	driveView(r, p2) // completes the view-2 quorum (dup-proof)
	if got := in.LockView(); got != 1 {
		t.Fatalf("lock after view 2 certified: got view %d want 1 (parent of the certified proposal)", got)
	}
	// A failed view resolves ∅ only on the full n−f ∅-quorum.
	for _, from := range []types.NodeID{1, 2} {
		ec := types.Claim{View: 3, Empty: true}
		r.HandleMessage(from, &types.Sync{Instance: 0, View: 3, Claim: ec,
			Sig: provFor(from).Sign(types.ClaimBytes(0, ec))})
	}
	if got := resPhase(in.ResolutionPhase(3)); got == resResolvedEmpty {
		t.Fatal("view 3 resolved ∅ on only f+1 ∅-claims")
	}
	ec := types.Claim{View: 3, Empty: true}
	r.HandleMessage(3, &types.Sync{Instance: 0, View: 3, Claim: ec,
		Sig: provFor(3).Sign(types.ClaimBytes(0, ec))})
	if got := resPhase(in.ResolutionPhase(3)); got != resResolvedEmpty {
		t.Fatalf("view 3 phase after the ∅-quorum: got %d want resResolvedEmpty", got)
	}
	// Views 4, 5, 6 certify a consecutive triple: view 4 commits.
	p4 := buildProposal(0, 4, types.Justification{Kind: types.JustClaim, ParentView: 2, ParentDigest: p2.Digest()}, 0)
	r.HandleMessage(0, p4)
	for _, from := range []types.NodeID{1, 2, 3} {
		r.HandleMessage(from, syncFor(0, from, 4, p4.Digest(), nil))
	}
	p5 := buildProposal(0, 5, types.Justification{Kind: types.JustClaim, ParentView: 4, ParentDigest: p4.Digest()}, 1)
	driveView(r, p5)
	p6 := buildProposal(0, 6, types.Justification{Kind: types.JustClaim, ParentView: 5, ParentDigest: p5.Digest()}, 2)
	driveView(r, p6)
	if got := resPhase(in.ResolutionPhase(4)); got != resCommitted {
		t.Fatalf("view 4 phase after its triple: got %d want resCommitted", got)
	}
	if !in.props[p4.Digest()].committed {
		t.Fatal("the 4,5,6 triple must commit P4")
	}
}

// TestPrimaryRotation: id(P_{i,v}) = (i+v) mod n (Figure 5).
func TestPrimaryRotation(t *testing.T) {
	for _, tc := range []struct {
		inst int32
		v    types.View
		n    int
		want types.NodeID
	}{
		{0, 0, 4, 0}, {1, 0, 4, 1}, {3, 1, 4, 0}, {0, 2, 4, 2}, {2, 2, 4, 0},
		{5, 7, 16, 12}, {10, 100, 128, 110},
	} {
		if got := PrimaryOf(tc.inst, tc.v, tc.n); got != tc.want {
			t.Errorf("PrimaryOf(%d,%d,%d) = %d, want %d", tc.inst, tc.v, tc.n, got, tc.want)
		}
	}
}
