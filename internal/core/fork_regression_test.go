package core_test

import (
	"testing"

	"spotless/internal/core"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// This file pins the A3 fork-commit path (ROADMAP PR 4 discovery) as a
// deterministic message schedule: under the seed's view-resolution rules
// (Config.UnsafeLegacyResolution) a replica that holds n−f claim quorums
// for a chain P1 ← P2 ← P3 abandons it for a conflicting branch whose links
// never gathered any claim quorum — rule A3 unlocked on a merely
// conditionally prepared parent — and finally COMMITS the conflicting
// branch, delivering a batch the canonical chain skips. Under the strict
// rules (the Lemma 3.4 re-derivation in resolution.go) the same schedule is
// refused at the first unsound vote.
//
// The schedule models one Byzantine peer (replica 1: crafted CP sets and
// claims for the conflicting branch) plus message delay/loss toward the
// replica under test — within the f = 1 fault budget of n = 4.

// forkHarness drives replica 0 of an n=4 cluster through the fork schedule.
type forkHarness struct {
	t   *testing.T
	r   *core.Replica
	ctx *stubContext
}

func newForkHarness(t *testing.T, legacy bool) *forkHarness {
	ctx := newStubContext(0, 4)
	cfg := core.DefaultConfig(4, 1)
	cfg.UnsafeLegacyResolution = legacy
	r := core.New(ctx, cfg)
	r.Start()
	return &forkHarness{t: t, r: r, ctx: ctx}
}

func (h *forkHarness) propose(v types.View, batchSeed byte, parentView types.View, parentDigest types.Digest) *types.Propose {
	kind := types.JustClaim
	if parentView == 0 {
		kind = types.JustGenesis
	}
	p := &types.Propose{
		Instance: 0, View: v,
		Batch:  &types.Batch{ID: types.Digest{batchSeed}},
		Parent: types.Justification{Kind: kind, ParentView: parentView, ParentDigest: parentDigest},
	}
	p.Sig = types.Signature{Signer: core.PrimaryOf(0, v, 4)}
	return p
}

func (h *forkHarness) sync(from types.NodeID, v types.View, claim types.Claim, cp []types.CPEntry) {
	h.r.HandleMessage(from, &types.Sync{Instance: 0, View: v, Claim: claim, CP: cp,
		Sig: types.Signature{Signer: from}})
}

func (h *forkHarness) claimedDigest(v types.View, d types.Digest) bool {
	for _, m := range h.ctx.sent {
		if s, ok := m.(*types.Sync); ok && s.View == v && !s.Claim.Empty && s.Claim.Digest == d {
			return true
		}
	}
	return false
}

// ownProposalAt returns the digest of the proposal replica 0 itself
// broadcast for view v (it is the primary of views ≡ 0 mod 4).
func (h *forkHarness) ownProposalAt(v types.View) (types.Digest, bool) {
	for _, m := range h.ctx.sent {
		if p, ok := m.(*types.Propose); ok && p.View == v {
			return p.Digest(), true
		}
	}
	return types.Digest{}, false
}

// runForkSchedule drives the schedule up to the conflicting vote and
// returns the digest of the conflicting proposal X7.
func (h *forkHarness) runForkSchedule() (x7 *types.Propose, jBatch, xBatch types.Digest) {
	in := h.r.Instance(0)

	// Views 1–3: the canonical chain P1 ← P2 ← P3, every link certified
	// (n−f = 3 claims). The triple commits P1; the lock reaches P2.
	p1 := h.propose(1, 0xA1, 0, types.Digest{})
	h.r.HandleMessage(1, p1)
	for _, from := range []types.NodeID{1, 2} {
		h.sync(from, 1, types.Claim{View: 1, Digest: p1.Digest()}, nil)
	}
	p2 := h.propose(2, 0xA2, 1, p1.Digest())
	h.r.HandleMessage(2, p2)
	for _, from := range []types.NodeID{1, 2} {
		h.sync(from, 2, types.Claim{View: 2, Digest: p2.Digest()}, nil)
	}
	p3 := h.propose(3, 0xA3, 2, p2.Digest())
	h.r.HandleMessage(3, p3)
	for _, from := range []types.NodeID{1, 2} {
		h.sync(from, 3, types.Claim{View: 3, Digest: p3.Digest()}, nil)
	}
	if got := in.CurrentView(); got != 4 {
		h.t.Fatalf("setup: want view 4 after the certified chain, got %d", got)
	}
	if got := in.LastCommittedView(); got != 1 {
		h.t.Fatalf("setup: the 1,2,3 triple must commit P1, lastCommit at %d", got)
	}
	if got := in.LockView(); got != 2 {
		h.t.Fatalf("setup: lock must sit on P2, got view %d", got)
	}

	// View 4 resolves ∅ at replica 0: its own no-op proposal (it is the
	// primary) reaches nobody, and 1, 2, 3 claim ∅.
	for _, from := range []types.NodeID{1, 2, 3} {
		h.sync(from, 4, types.Claim{View: 4, Empty: true}, nil)
	}
	if got := in.CurrentView(); got != 5 {
		h.t.Fatalf("setup: want view 5 after the ∅-quorum, got %d", got)
	}

	// View 5: the conflicting branch root J5 extends P1, bypassing the
	// certified P2 ← P3 — replica 0 rightly refuses to claim it (A2 and A3
	// both fail: the parent sits below the lock). But crafted CP sets from
	// 2 and 3 conditionally prepare it (f+1 endorsements, one honest
	// endorser of evidence at most), and the view resolves ∅.
	j5 := h.propose(5, 0xB5, 1, p1.Digest())
	h.r.HandleMessage(1, j5)
	cp5 := []types.CPEntry{{View: 5, Digest: j5.Digest()}}
	h.sync(1, 5, types.Claim{View: 5, Digest: j5.Digest()}, cp5)
	h.sync(2, 5, types.Claim{View: 5, Empty: true}, cp5)
	h.sync(3, 5, types.Claim{View: 5, Empty: true}, cp5)
	if h.claimedDigest(5, j5.Digest()) {
		h.t.Fatal("replica claimed J5 although its parent bypasses the lock")
	}
	// Recording timeout: replica 0 claims ∅, completing the view-5 quorum.
	h.r.HandleTimer(protocol.TimerTag{Kind: protocol.TimerRecording, Instance: 0, View: 5})
	// View 6 resolves ∅ too.
	for _, from := range []types.NodeID{1, 2, 3} {
		h.sync(from, 6, types.Claim{View: 6, Empty: true}, nil)
	}
	if got := in.CurrentView(); got != 7 {
		h.t.Fatalf("setup: want view 7, got %d", got)
	}

	// View 7: X7 extends J5 — a parent above the lock (view 5 > 2) that is
	// conditionally prepared but holds NO claim quorum. This is the A3
	// decision point: the bare view comparison accepts, the strict rule
	// demands certification and refuses.
	x7p := h.propose(7, 0xB7, 5, j5.Digest())
	h.r.HandleMessage(3, x7p)
	return x7p, j5.Batch.ID, x7p.Batch.ID
}

// TestLegacyA3ForksLedger: under the seed rules the schedule walks all the
// way to a fork commit — the replica votes for the conflicting branch,
// helps certify it, and delivers the branch's batch while its own certified
// chain P2 ← P3 is silently abandoned. This is the regression pin for the
// pre-refactor behaviour (the safety drill's negative control).
func TestLegacyA3ForksLedger(t *testing.T) {
	h := newForkHarness(t, true)
	in := h.r.Instance(0)
	x7, jBatch, xBatch := h.runForkSchedule()

	if !h.claimedDigest(7, x7.Digest()) {
		t.Fatal("legacy rules must claim X7 (bare A3: parent view above the lock)")
	}
	// Peers 1 and 2 claim X7 as well: certified, view 8 opens. Replica 0
	// is the view-8 primary and extends the branch with its own no-op.
	for _, from := range []types.NodeID{1, 2} {
		h.sync(from, 7, types.Claim{View: 7, Digest: x7.Digest()}, nil)
	}
	if got := in.CurrentView(); got != 8 {
		t.Fatalf("want view 8 after X7 certifies, got %d", got)
	}
	p8, ok := h.ownProposalAt(8)
	if !ok {
		t.Fatal("replica 0 (primary of view 8) did not propose on the conflicting branch")
	}
	for _, from := range []types.NodeID{1, 2} {
		h.sync(from, 8, types.Claim{View: 8, Digest: p8}, nil)
	}
	// View 9: the branch tip X9 completes the consecutive triple 7,8,9.
	x9 := h.propose(9, 0xB9, 8, p8)
	h.r.HandleMessage(1, x9)
	for _, from := range []types.NodeID{1, 2} {
		h.sync(from, 9, types.Claim{View: 9, Digest: x9.Digest()}, nil)
	}

	// The fork committed: the conflicting branch delivered its batches
	// while the certified P2 ← P3 chain is gone from the ledger.
	var delivered []types.Digest
	for _, c := range h.ctx.commits {
		delivered = append(delivered, c.Batch.ID)
	}
	wantForked := []types.Digest{{0xA1}, jBatch, xBatch}
	if len(delivered) < len(wantForked) {
		t.Fatalf("legacy schedule delivered %d batches, want the forked chain %v", len(delivered), wantForked)
	}
	for i, want := range wantForked {
		if delivered[i] != want {
			t.Fatalf("legacy delivery %d: got %x want %x", i, delivered[i][:4], want[:4])
		}
	}
	// The abandoned chain held real claim quorums at this very replica —
	// another correct replica may have committed it (views 2 and 3 resolved
	// to P2/P3, not ∅): ledgers diverge block-for-block from height 1.
	if delivered[1] == (types.Digest{0xA2}) {
		t.Fatal("schedule no longer forks: P2 delivered second")
	}
}

// TestStrictA3RefusesUncertifiedBranch: the same schedule under the strict
// rules stops at the A3 decision point — X7's parent holds no claim quorum,
// so the replica never votes for the conflicting branch and never delivers
// anything beyond the canonical P1.
func TestStrictA3RefusesUncertifiedBranch(t *testing.T) {
	h := newForkHarness(t, false)
	x7, jBatch, _ := h.runForkSchedule()

	if h.claimedDigest(7, x7.Digest()) {
		t.Fatal("strict A3 must refuse X7: its parent is conditionally prepared but holds no claim quorum")
	}
	// Even with two peers claiming X7, replica 0 abstains; the branch can
	// reach at most 2 < n−f claims here and never certifies or commits.
	for _, from := range []types.NodeID{1, 2} {
		h.sync(from, 7, types.Claim{View: 7, Digest: x7.Digest()}, nil)
	}
	if h.claimedDigest(7, x7.Digest()) {
		t.Fatal("strict rules echoed the conflicting claim")
	}
	for _, c := range h.ctx.commits {
		if c.Batch.ID == jBatch {
			t.Fatal("strict rules delivered the conflicting branch's batch")
		}
	}
	if got := len(h.ctx.commits); got != 1 {
		t.Fatalf("strict rules delivered %d batches, want exactly the canonical P1", got)
	}
}
