package core

import (
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// This file implements the ordering stage: the single-threaded owner of all
// cross-instance state (§4.1, Figure 6). Instances commit proposals on
// their own shards and hand them off through Replica.onCommitted; the
// ordering stage merges them into the deterministic (view, instance) total
// order and feeds the execution layer (and, through checkpoint.go, the
// checkpoint manager). Under a sharding substrate the stage runs as its own
// serialized shard (protocol.OrderingShard); under the classic single event
// loop its methods run inline and nothing changes.
//
// The merge structure is a min-heap over per-instance ring buffers: each
// instance's committed-but-unordered proposals queue in chain order (views
// strictly ascending), and the heap tracks the queue heads keyed by
// (view, instance). One delivery is O(log m) instead of the former O(m)
// min-scan per delivered proposal, and ring slots are zeroed on pop — the
// previous queues[best][1:] reslice kept delivered batches reachable
// through the backing array for as long as the queue stayed non-empty.

// commitRing is a growable FIFO ring buffer of committed proposals awaiting
// global ordering. Views are pushed in strictly ascending order (enforced
// by the per-instance frontier guard), so the front is always the
// instance's smallest unordered view.
type commitRing struct {
	buf  []orderedCommit
	head int
	n    int
}

func (q *commitRing) empty() bool { return q.n == 0 }

func (q *commitRing) front() *orderedCommit { return &q.buf[q.head] }

func (q *commitRing) push(oc orderedCommit) {
	if q.n == len(q.buf) {
		grown := make([]orderedCommit, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = oc
	q.n++
}

func (q *commitRing) pop() orderedCommit {
	oc := q.buf[q.head]
	q.buf[q.head] = orderedCommit{} // release the batch for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return oc
}

// ordering is the cross-instance total-order state. All fields are owned by
// the ordering shard.
type ordering struct {
	// frontiers is the highest committed view handed off per instance;
	// minFrontier caches their minimum (the order horizon: a queued commit
	// may deliver once every instance passed its view) and minCount how
	// many instances sit exactly at it, so the O(m) re-scan runs only when
	// the last minimum holder advances.
	frontiers   []types.View
	minFrontier types.View
	minCount    int

	rings []commitRing
	heap  []int32 // instances with non-empty rings, keyed by front view

	// seenBatch deduplicates re-proposed batches over a bounded window
	// (reset at checkpoint cuts; see deliver and maybeCheckpoint).
	seenBatch map[types.Digest]bool
}

func newOrdering(m int) ordering {
	return ordering{
		frontiers: make([]types.View, m),
		minCount:  m,
		rings:     make([]commitRing, m),
		heap:      make([]int32, 0, m),
		seenBatch: make(map[types.Digest]bool),
	}
}

func (o *ordering) advanceFrontier(inst int32, v types.View) {
	old := o.frontiers[inst]
	o.frontiers[inst] = v
	if old == o.minFrontier {
		if o.minCount--; o.minCount == 0 {
			o.recomputeMin()
		}
	}
}

func (o *ordering) recomputeMin() {
	o.minFrontier = o.frontiers[0]
	for _, f := range o.frontiers[1:] {
		if f < o.minFrontier {
			o.minFrontier = f
		}
	}
	o.minCount = 0
	for _, f := range o.frontiers {
		if f == o.minFrontier {
			o.minCount++
		}
	}
}

// --- the head heap (manual binary heap over instance ids) ---

func (o *ordering) headLess(a, b int32) bool {
	va, vb := o.rings[a].front().view, o.rings[b].front().view
	if va != vb {
		return va < vb
	}
	return a < b
}

func (o *ordering) heapPush(inst int32) {
	o.heap = append(o.heap, inst)
	i := len(o.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !o.headLess(o.heap[i], o.heap[p]) {
			break
		}
		o.heap[i], o.heap[p] = o.heap[p], o.heap[i]
		i = p
	}
}

// heapFixTop restores heap order after the top's key changed (its ring
// popped) or removes it when its ring drained.
func (o *ordering) heapFixTop() {
	last := len(o.heap) - 1
	if o.rings[o.heap[0]].empty() {
		o.heap[0] = o.heap[last]
		o.heap = o.heap[:last]
		last--
	}
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l <= last && o.headLess(o.heap[l], o.heap[sm]) {
			sm = l
		}
		if r <= last && o.headLess(o.heap[r], o.heap[sm]) {
			sm = r
		}
		if sm == i {
			return
		}
		o.heap[i], o.heap[sm] = o.heap[sm], o.heap[i]
		i = sm
	}
}

// rebuildHeap reindexes every non-empty ring (used after a state install
// dropped arbitrary queue prefixes).
func (o *ordering) rebuildHeap() {
	o.heap = o.heap[:0]
	for i := range o.rings {
		if !o.rings[i].empty() {
			o.heapPush(int32(i))
		}
	}
}

// --- replica-side ordering entry points ---

// onCommitted receives a committed proposal from an instance in chain order
// and hands it to the ordering stage — a cross-shard post under a sharding
// substrate, an inline call under a serializing one (branched explicitly so
// the serialized hot path allocates no closure).
func (r *Replica) onCommitted(inst int32, oc orderedCommit) {
	if r.poster == nil {
		r.orderCommit(inst, oc)
		return
	}
	r.poster.PostShard(protocol.OrderingShard, func() { r.orderCommit(inst, oc) })
}

// InjectCommit is a benchmark/measurement hook: it hands one committed
// proposal to the ordering stage exactly as an instance shard would (the
// frontier guard and the total-order drain apply). Drive it like any other
// protocol event — serialized with the ordering stage.
func (r *Replica) InjectCommit(inst int32, view types.View, batch *types.Batch, dig types.Digest) {
	r.onCommitted(inst, orderedCommit{view: view, batch: batch, dig: dig})
}

// orderCommit runs on the ordering shard: it applies the per-instance
// frontier guard, queues the commit, and drains the global total order.
func (r *Replica) orderCommit(inst int32, oc orderedCommit) {
	if oc.view <= r.ord.frontiers[inst] {
		// Below the handoff frontier: a non-monotonic instance handoff, or
		// a commit that raced a checkpoint install covering it.
		r.ctx.Logf("spotless: instance %d delivered non-monotonic view %d ≤ %d", inst, oc.view, r.ord.frontiers[inst])
		return
	}
	wasEmpty := r.ord.rings[inst].empty()
	r.ord.rings[inst].push(oc)
	if wasEmpty {
		r.ord.heapPush(inst)
	}
	r.ord.advanceFrontier(inst, oc.view)
	r.drain()
}

// drain executes the total order: repeatedly deliver the smallest
// (view, instance) committed proposal whose view every instance has passed.
// Under digest ordering the head must first resolve to its payload; an
// unresolved head parks the drain (total order is head-of-line) until the
// dissemination layer's notify re-posts it.
func (r *Replica) drain() {
	o := &r.ord
	for len(o.heap) > 0 {
		top := o.heap[0]
		front := o.rings[top].front()
		if front.view > o.minFrontier {
			return
		}
		if !r.resolvePayload(front) {
			return // backfill in flight; onDigestReady resumes the drain
		}
		oc := o.rings[top].pop()
		o.heapFixTop()
		r.deliver(top, oc)
	}
}

// resolvePayload substitutes a digest-ordered head's full payload from the
// dissemination store (proposals carry only a batch stub in digest mode; a
// Byzantine primary may inline arbitrary transactions, so the store is
// authoritative for EVERY non-noop batch). Reports false when the payload is
// still missing — possible only on a replica that missed dissemination,
// since the claim gate guarantees the committed digest is certified and
// therefore backfillable from f+1 correct holders.
func (r *Replica) resolvePayload(oc *orderedCommit) bool {
	l := r.cfg.Dissem
	if l == nil || oc.batch == nil || oc.batch.NoOp {
		return true
	}
	if r.ord.seenBatch[oc.batch.ID] {
		// Already delivered inside the dedup window: deliver() discards the
		// duplicate without its payload. Parking here instead would wedge
		// the whole total order behind a backfill of a payload every correct
		// replica may have evicted — a replayed BatchCert of an old digest
		// would otherwise stall delivery forever just short of the dedup
		// check that discards it.
		return true
	}
	if full := l.Payload(oc.batch.ID); full != nil {
		oc.batch = full
		return true
	}
	r.awaitDigest(protocol.OrderingShard, oc.batch.ID)
	if full := l.Payload(oc.batch.ID); full != nil { // raced the arrival
		r.unawaitDigest(protocol.OrderingShard, oc.batch.ID)
		oc.batch = full
		return true
	}
	l.Backfill(oc.batch.ID, -1)
	return false
}

func (r *Replica) deliver(inst int32, oc orderedCommit) {
	if oc.batch == nil || oc.batch.NoOp {
		r.NoOps++
		return
	}
	if r.ord.seenBatch[oc.batch.ID] {
		return // duplicate proposal of the same batch (Byzantine primary)
	}
	r.ord.seenBatch[oc.batch.ID] = true
	if len(r.ord.seenBatch) > 1<<17 {
		r.ord.seenBatch = make(map[types.Digest]bool) // bounded dedup window
	}
	// Note the window semantics under checkpointing: the map also restarts
	// at every checkpoint cut (maybeCheckpoint/installState), narrowing
	// dedup to roughly one interval. The reset point sits at the same
	// position of the executed sequence on every correct replica — and a
	// rejoiner starts with the same empty window — so dedup decisions, and
	// therefore delivered heights, stay identical cluster-wide; a batch
	// replayed across a cut executes again *consistently* (at-least-once
	// across cuts), which is the trade-off for a transferable window. The
	// executor reply cache keeps answering client retransmissions either
	// way.
	// Checkpoint accounting covers exactly the executed sequence (deduped
	// non-noops): it is what the ledger chains and what all correct
	// replicas observe identically. The raw drain interleave is NOT hashed
	// — transiently forked no-op proposals can commit at some replicas and
	// not others (they never carry client batches, so execution and
	// ledgers are unaffected), and hashing them would split attestations.
	r.noteDrained(inst, oc)
	r.Delivered++
	r.deliveredMirror.Store(r.Delivered)
	r.ctx.Deliver(types.Commit{Instance: inst, View: oc.view, Batch: oc.batch, Proposal: oc.dig})
	if r.cfg.Dissem != nil {
		r.cfg.Dissem.Delivered(oc.batch.ID, r.Delivered)
	}
	r.maybeCheckpoint()
}
