package core

import (
	"testing"

	"spotless/internal/protocol"
	"spotless/internal/types"
)

// newCkptReplica builds a whitebox replica with the checkpoint subsystem
// enabled (no StateHost: protocol-state checkpoints only, as on the
// simulator).
func newCkptReplica(interval int) (*Replica, *fakeContext) {
	ctx := newFakeContext(0, 4)
	cfg := DefaultConfig(4, 1)
	cfg.CheckpointInterval = interval
	r := New(ctx, cfg)
	r.Start()
	return r, ctx
}

// buildChunk constructs a structurally valid StateChunk for height h whose
// certificate carries signatures by the given ids.
func buildChunk(h uint64, signers []types.NodeID) *types.StateChunk {
	anchors := []types.Anchor{{}}
	var exec, resume types.Digest
	stateHash := types.CheckpointStateHash(h, exec, resume, anchors)
	cert := types.CheckpointCert{Height: h, StateHash: stateHash}
	for _, id := range signers {
		cert.Sigs = append(cert.Sigs, provFor(id).Sign(types.CheckpointBytes(h, stateHash)))
	}
	return &types.StateChunk{Cert: cert, ExecHash: exec, LedgerResume: resume, Anchors: anchors}
}

// TestStateChunkRejectsNonReplicaSigners: clients share the keyring, so a
// compromised client key produces signatures that verify — a state-transfer
// certificate counting such signers toward the n−f quorum would let f
// replica keys plus stolen client keys forge a checkpoint. The chunk screen
// must drop certificates with out-of-range signers before verification,
// mirroring the Checkpoint ingress screen.
func TestStateChunkRejectsNonReplicaSigners(t *testing.T) {
	r, ctx := newCkptReplica(8)
	r.ckpt.fetching = true

	forged := buildChunk(8, []types.NodeID{1, 2, types.ClientIDBase})
	r.HandleMessage(1, forged)
	if r.ckpt.pending != nil || len(ctx.verifs) != 0 {
		t.Fatal("chunk whose certificate includes a non-replica signer reached verification")
	}

	// An all-replica certificate passes the screen, verifies, and installs.
	r.HandleMessage(1, buildChunk(8, []types.NodeID{1, 2, 3}))
	if r.ckpt.pending == nil {
		t.Fatal("valid chunk not queued for certificate verification")
	}
	flushVerify(r, ctx)
	if r.Delivered != 8 || r.StableHeight() != 8 {
		t.Fatalf("valid chunk not installed: delivered=%d stable=%d", r.Delivered, r.StableHeight())
	}
}

// TestFetchTimerKeepsPendingVerification: the fetch retry timer firing while
// a chunk's certificate verification is still on the pool must not discard
// the chunk — onCkptVerified would find no pending chunk, orphan the valid
// verdict, and waste the whole fetch round. The latch stays held and the
// timer re-arms instead.
func TestFetchTimerKeepsPendingVerification(t *testing.T) {
	r, ctx := newCkptReplica(8)
	r.ckpt.fetching = true
	r.ckpt.fetchSeq = 1

	r.HandleMessage(1, buildChunk(8, []types.NodeID{1, 2, 3}))
	if r.ckpt.pending == nil {
		t.Fatal("setup: chunk not pending verification")
	}
	timersBefore := len(ctx.timers)
	r.HandleTimer(protocol.TimerTag{Kind: protocol.TimerStateFetch, Instance: -1, Seq: 1})
	if r.ckpt.pending == nil {
		t.Fatal("fetch timer discarded a chunk whose verification is in flight")
	}
	rearmed := false
	for _, tag := range ctx.timers[timersBefore:] {
		if tag.Kind == protocol.TimerStateFetch && tag.Seq == 1 {
			rearmed = true
		}
	}
	if !rearmed {
		t.Fatal("fetch timer not re-armed while verification is outstanding")
	}
	flushVerify(r, ctx)
	if r.Delivered != 8 || r.StableHeight() != 8 {
		t.Fatalf("verified chunk not installed after the timer fired: delivered=%d stable=%d",
			r.Delivered, r.StableHeight())
	}
}
