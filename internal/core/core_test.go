package core_test

import (
	"testing"
	"time"

	"spotless/internal/core"
	"spotless/internal/loadgen"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

// cluster wires n SpotLess replicas with m instances onto a fresh simulator
// with a closed-loop load source.
type cluster struct {
	sim      *simnet.Simulation
	replicas []*core.Replica
	src      *loadgen.Source
	col      *loadgen.Collector
	n, f, m  int
}

func newCluster(t testing.TB, n, m int, mutate func(i int, cfg *core.Config), simMutate func(*simnet.Config)) *cluster {
	t.Helper()
	scfg := simnet.DefaultConfig(n)
	scfg.BaseHandlerCost = time.Microsecond // fast virtual CPU for tests
	if simMutate != nil {
		simMutate(&scfg)
	}
	sim := simnet.New(scfg)
	src := loadgen.NewSource(m, 8, loadgen.DefaultWorkload(10))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, (n-1)/3, 0)
	sim.SetProtocol(simnet.ClientNode, col)
	c := &cluster{sim: sim, src: src, col: col, n: n, f: (n - 1) / 3, m: m}
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(n, m)
		cfg.InitialRecordingTimeout = 20 * time.Millisecond
		cfg.InitialCertifyTimeout = 20 * time.Millisecond
		if mutate != nil {
			mutate(i, &cfg)
		}
		r := core.New(sim.Context(types.NodeID(i)), cfg)
		c.replicas = append(c.replicas, r)
		sim.SetProtocol(types.NodeID(i), r)
	}
	sim.Start()
	return c
}

func (c *cluster) run(d time.Duration) { c.sim.Run(d) }

// TestNormalCaseCommit: a failure-free cluster commits batches and all
// replicas deliver the same count.
func TestNormalCaseCommit(t *testing.T) {
	c := newCluster(t, 4, 1, nil, nil)
	c.run(2 * time.Second)
	if c.replicas[0].Delivered == 0 {
		t.Fatalf("no batches delivered after 2s of virtual time")
	}
	for i, r := range c.replicas {
		if r.Delivered == 0 {
			t.Errorf("replica %d delivered nothing", i)
		}
	}
	if c.col.TxnsDone == 0 {
		t.Fatalf("client observed no completed transactions")
	}
}

// TestConcurrentInstancesCommit: m = n instances all make progress and the
// total order is executed.
func TestConcurrentInstancesCommit(t *testing.T) {
	c := newCluster(t, 4, 4, nil, nil)
	c.run(2 * time.Second)
	if c.col.TxnsDone == 0 {
		t.Fatalf("client observed no completed transactions with 4 instances")
	}
	for i := int32(0); i < 4; i++ {
		if c.replicas[0].Instance(i).LastCommittedView() == 0 {
			t.Errorf("instance %d committed nothing", i)
		}
	}
}

// TestViewsAdvance: views rotate continuously in the normal case.
func TestViewsAdvance(t *testing.T) {
	c := newCluster(t, 4, 1, nil, nil)
	c.run(time.Second)
	v := c.replicas[0].Instance(0).CurrentView()
	if v < 10 {
		t.Fatalf("expected many views after 1s, got %d", v)
	}
}

// TestNonResponsivePrimaryRecovery: with one downed replica the protocol
// keeps committing (views with the faulty primary time out, §3.4).
func TestNonResponsivePrimaryRecovery(t *testing.T) {
	c := newCluster(t, 4, 1, nil, nil)
	c.sim.SetDown(3, true)
	c.run(4 * time.Second)
	if c.col.TxnsDone == 0 {
		t.Fatalf("no progress with one non-responsive replica")
	}
	v := c.replicas[0].Instance(0).CurrentView()
	if v < 8 {
		t.Fatalf("views did not advance past faulty primaries: view=%d", v)
	}
}
