package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Replica is one SpotLess replica hosting m concurrent chained consensus
// instances (§4.1). It implements protocol.Protocol and can therefore run on
// the simulator, the in-process runtime, or the TCP transport.
type Replica struct {
	ctx   protocol.Context
	cfg   Config
	insts []*Instance

	// Total-order layer (§4.1, Figure 6): committed proposals are ordered
	// by (view, instance); execution of view v waits until every instance
	// passed view v.
	frontiers []types.View      // highest delivered committed view per instance
	queues    [][]orderedCommit // committed, not yet globally ordered
	seenBatch map[types.Digest]bool

	// ckpt is the checkpoint + state-transfer manager (see checkpoint.go);
	// inert unless Config.CheckpointInterval > 0.
	ckpt ckptState

	// Stats exposed for tests and the harness.
	Delivered uint64 // globally ordered non-noop batches
	NoOps     uint64
}

type orderedCommit struct {
	view  types.View
	batch *types.Batch
	dig   types.Digest
}

// New creates a SpotLess replica bound to its environment context.
func New(ctx protocol.Context, cfg Config) *Replica {
	if cfg.N == 0 {
		cfg = DefaultConfig(ctx.N(), 1)
	}
	if cfg.Instances < 1 {
		cfg.Instances = 1
	}
	r := &Replica{
		ctx:       ctx,
		cfg:       cfg,
		frontiers: make([]types.View, cfg.Instances),
		queues:    make([][]orderedCommit, cfg.Instances),
		seenBatch: make(map[types.Digest]bool),
		ckpt: ckptState{
			anchors: make([]types.Anchor, cfg.Instances),
			tallies: make(map[uint64]map[types.NodeID]attest),
			newest:  make(map[types.NodeID]attest),
			local:   make(map[uint64]localCkpt),
		},
	}
	r.insts = make([]*Instance, cfg.Instances)
	for i := range r.insts {
		r.insts[i] = newInstance(r, int32(i))
	}
	return r
}

// Instance exposes instance state to tests.
func (r *Replica) Instance(i int32) *Instance { return r.insts[i] }

// CurrentView returns the view of instance i (testing/inspection).
func (in *Instance) CurrentView() types.View { return in.view }

// Lock returns the view of the instance's locked proposal (testing).
func (in *Instance) LockView() types.View { return in.lock.view }

// LastCommittedView returns the highest committed view of the instance.
func (in *Instance) LastCommittedView() types.View { return in.lastCommit.view }

// Start implements protocol.Protocol: all instances enter view 1.
func (r *Replica) Start() {
	for _, in := range r.insts {
		in.start()
	}
}

// HandleMessage implements protocol.Protocol, dispatching by instance.
func (r *Replica) HandleMessage(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *types.Propose:
		if in := r.instance(m.Instance); in != nil {
			in.onPropose(m)
		}
	case *types.Sync:
		if in := r.instance(m.Instance); in != nil {
			in.onSync(from, m)
		}
	case *types.Ask:
		if in := r.instance(m.Instance); in != nil {
			in.onAsk(from, m)
		}
	case *types.Checkpoint:
		r.onCheckpoint(from, m)
	case *types.FetchState:
		r.onFetchState(from, m)
	case *types.StateChunk:
		r.onStateChunk(from, m)
	}
}

// HandleTimer implements protocol.Protocol.
func (r *Replica) HandleTimer(tag protocol.TimerTag) {
	if tag.Kind == protocol.TimerStateFetch {
		r.onFetchTimer(tag)
		return
	}
	if in := r.instance(tag.Instance); in != nil {
		in.onTimer(tag)
	}
}

// IngressJob implements protocol.IngressVerifier. A Propose must carry a
// valid primary signature before it enters the state machine (check S1);
// the substrate runs the check off the event loop. Sync signatures are
// certificate material verified lazily by receivers that need them (§3.4),
// and Ask carries no signature — so SpotLess's all-to-all fast path stays
// MAC-priced, the asymmetry the paper's evaluation rests on. Embedded
// certificates (Propose.Parent.Cert) are likewise not screened here: they
// matter only on the recovery path, where the instance fans them out as one
// VerifyAsync batch job.
func (r *Replica) IngressJob(from types.NodeID, msg types.Message) (protocol.VerifyJob, bool) {
	switch m := msg.(type) {
	case *types.Propose:
		if m.Batch == nil {
			return protocol.VerifyJob{}, false
		}
		// Stateless pre-guards mirroring the loop's own cheap drops: bogus
		// instances and signers that are not the view's primary never reach
		// (or pay for) verification. The stateful flooding window (view too
		// far ahead) still costs one pooled check per junk proposal.
		if m.Instance < 0 || int(m.Instance) >= r.cfg.Instances ||
			m.Sig.Signer != PrimaryOf(m.Instance, m.View, r.cfg.N) {
			return protocol.VerifyJob{}, false
		}
		d := m.Digest()
		return protocol.VerifyJob{
			Checks: []crypto.Check{{Sig: m.Sig, Msg: d[:]}},
			Quorum: 1,
		}, true
	case *types.Checkpoint:
		// Attestations are tallied by signer; the signature must bind the
		// signer to (height, state hash) before the tally sees it, and the
		// signer must be a replica — clients share the keyring, and a
		// compromised client's signature must not count toward the f+1
		// lagging-detection threshold. (An empty infeasible job drops the
		// message.) The StateChunk certificate is not screened here: it is
		// verified as one fanned-out VerifyAsync batch on the recovery
		// path only.
		if m.Sig.Signer < 0 || int(m.Sig.Signer) >= r.cfg.N {
			return protocol.VerifyJob{Quorum: 1}, true
		}
		return protocol.VerifyJob{
			Checks: []crypto.Check{{Sig: m.Sig, Msg: types.CheckpointBytes(m.Height, m.StateHash)}},
			Quorum: 1,
		}, true
	}
	return protocol.VerifyJob{}, false
}

// HandleVerified implements protocol.VerifyConsumer, routing asynchronous
// certificate-verification completions to their instance (Instance ≥ 0) or
// to the checkpoint manager (Instance −1: state-transfer certificates).
func (r *Replica) HandleVerified(tag protocol.TimerTag, ok bool) {
	if tag.Instance < 0 {
		r.onCkptVerified(tag, ok)
		return
	}
	if in := r.instance(tag.Instance); in != nil {
		in.onVerified(tag, ok)
	}
}

var (
	_ protocol.Protocol        = (*Replica)(nil)
	_ protocol.IngressVerifier = (*Replica)(nil)
	_ protocol.VerifyConsumer  = (*Replica)(nil)
)

func (r *Replica) instance(i int32) *Instance {
	if i < 0 || int(i) >= len(r.insts) {
		return nil
	}
	return r.insts[i]
}

func (r *Replica) isAccomplice(id types.NodeID) bool {
	return r.cfg.Behavior.Accomplices[id]
}

// noopBatch builds the no-op filler of §5 so idle instances do not block the
// execution of busy ones.
func (r *Replica) noopBatch(instance int32, v types.View) *types.Batch {
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(instance))
	binary.LittleEndian.PutUint64(buf[4:], uint64(v))
	id := sha256.Sum256(buf[:])
	return &types.Batch{ID: id, NoOp: true}
}

// onCommitted receives committed proposals from an instance in chain order
// and applies the global (view, instance) total order of §4.1 before
// delivering to the execution layer.
func (r *Replica) onCommitted(inst int32, p *proposal) {
	if p.view <= r.frontiers[inst] {
		r.ctx.Logf("spotless: instance %d delivered non-monotonic view %d ≤ %d", inst, p.view, r.frontiers[inst])
		return
	}
	r.queues[inst] = append(r.queues[inst], orderedCommit{view: p.view, batch: p.batch, dig: p.digest})
	r.frontiers[inst] = p.view
	r.drain()
}

// drain executes the total order: repeatedly deliver the smallest
// (view, instance) committed proposal whose view every instance has passed.
func (r *Replica) drain() {
	for {
		minF := r.frontiers[0]
		for _, f := range r.frontiers[1:] {
			if f < minF {
				minF = f
			}
		}
		best := -1
		var bestView types.View
		for i := range r.queues {
			if len(r.queues[i]) == 0 {
				continue
			}
			v := r.queues[i][0].view
			if v > minF {
				continue
			}
			if best == -1 || v < bestView {
				best = i
				bestView = v
			}
		}
		if best == -1 {
			return
		}
		oc := r.queues[best][0]
		r.queues[best] = r.queues[best][1:]
		r.deliver(int32(best), oc)
	}
}

func (r *Replica) deliver(inst int32, oc orderedCommit) {
	if oc.batch == nil || oc.batch.NoOp {
		r.NoOps++
		return
	}
	if r.seenBatch[oc.batch.ID] {
		return // duplicate proposal of the same batch (Byzantine primary)
	}
	r.seenBatch[oc.batch.ID] = true
	if len(r.seenBatch) > 1<<17 {
		r.seenBatch = make(map[types.Digest]bool) // bounded dedup window
	}
	// Note the window semantics under checkpointing: the map also restarts
	// at every checkpoint cut (maybeCheckpoint/installState), narrowing
	// dedup to roughly one interval. The reset point sits at the same
	// position of the executed sequence on every correct replica — and a
	// rejoiner starts with the same empty window — so dedup decisions, and
	// therefore delivered heights, stay identical cluster-wide; a batch
	// replayed across a cut executes again *consistently* (at-least-once
	// across cuts), which is the trade-off for a transferable window. The
	// executor reply cache keeps answering client retransmissions either
	// way.
	// Checkpoint accounting covers exactly the executed sequence (deduped
	// non-noops): it is what the ledger chains and what all correct
	// replicas observe identically. The raw drain interleave is NOT hashed
	// — transiently forked no-op proposals can commit at some replicas and
	// not others (they never carry client batches, so execution and
	// ledgers are unaffected), and hashing them would split attestations.
	r.noteDrained(inst, oc)
	r.Delivered++
	r.ctx.Deliver(types.Commit{Instance: inst, View: oc.view, Batch: oc.batch, Proposal: oc.dig})
	r.maybeCheckpoint()
}

// String describes the replica (debugging).
func (r *Replica) String() string {
	return fmt.Sprintf("spotless-replica{id=%d m=%d}", r.ctx.ID(), len(r.insts))
}
