package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/dissem"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Replica is one SpotLess replica hosting m concurrent chained consensus
// instances (§4.1). It implements protocol.Protocol and can therefore run on
// the simulator, the in-process runtime, or the TCP transport.
//
// It also implements protocol.ShardedProtocol: each instance is one shard
// (all its proposals, views, syncs, and certificate jobs are strictly
// shard-local), and the cross-instance state — the total-order merge of
// ordering.go plus the checkpoint manager of checkpoint.go — lives on the
// serialized ordering stage. On a sharding substrate the instances run
// concurrently and hand commits to the ordering stage through the bound
// ShardPoster; on a serializing substrate every handoff runs inline and
// the replica behaves exactly as the single-event-loop original.
type Replica struct {
	ctx   protocol.Context
	cfg   Config
	insts []*Instance

	// poster routes cross-shard handoffs when a sharding substrate bound
	// one (BindShards); nil means every event is already serialized and
	// handoffs run inline.
	poster protocol.ShardPoster

	// ord is the total-order layer (§4.1, Figure 6): committed proposals
	// are ordered by (view, instance); execution of view v waits until
	// every instance passed view v. Ordering-shard state (see ordering.go).
	ord ordering

	// ckpt is the checkpoint + state-transfer manager (see checkpoint.go);
	// inert unless Config.CheckpointInterval > 0. Ordering-shard state.
	ckpt ckptState

	// Digest-ordering waiters (Config.Dissem only): shards blocked on a
	// batch digest — an instance waiting for the availability certificate
	// before claiming, or the ordering stage waiting for the payload before
	// delivering. The dissemination layer's notify callback (which may fire
	// from any shard or ingress goroutine) collects the registered shards
	// and posts their retries; the map therefore has its own lock rather
	// than riding any one shard.
	dwMu     sync.Mutex
	dWaiters map[types.Digest]map[int32]struct{}
	dwTicks  int // dissemination timer ticks since the last waiter flush (ordering shard)

	// resumed marks a replica rehydrated from a persisted checkpoint
	// (Config.Resume): Start re-installs the stable anchors on every
	// instance shard so each re-enters the rotation from its anchor.
	resumed bool

	// Stats exposed for tests and the harness. Written on the ordering
	// stage; concurrent readers (operator polling a live sharded node) use
	// DeliveredCount instead of the plain fields.
	Delivered uint64 // globally ordered non-noop batches
	NoOps     uint64

	deliveredMirror atomic.Uint64

	// Resync instrumentation (soak harness + /metrics): a resync is a
	// catch-up jump (f+1 replicas proved higher views exist) or a
	// state-transfer install that advanced an instance past views it never
	// ran. Written on instance shards, read from anywhere.
	resyncs          atomic.Uint64
	lastResyncNanos  atomic.Int64
	totalResyncNanos atomic.Int64
}

type orderedCommit struct {
	view  types.View
	batch *types.Batch
	dig   types.Digest
}

// New creates a SpotLess replica bound to its environment context.
func New(ctx protocol.Context, cfg Config) *Replica {
	if cfg.N == 0 {
		cfg = DefaultConfig(ctx.N(), 1)
	}
	if cfg.Instances < 1 {
		cfg.Instances = 1
	}
	r := &Replica{
		ctx: ctx,
		cfg: cfg,
		ord: newOrdering(cfg.Instances),
		ckpt: ckptState{
			anchors: make([]types.Anchor, cfg.Instances),
			tallies: make(map[uint64]map[types.NodeID]attest),
			newest:  make(map[types.NodeID]attest),
			local:   make(map[uint64]localCkpt),
		},
	}
	r.insts = make([]*Instance, cfg.Instances)
	for i := range r.insts {
		r.insts[i] = newInstance(r, int32(i))
	}
	if cfg.Dissem != nil {
		r.dWaiters = make(map[types.Digest]map[int32]struct{})
		cfg.Dissem.Bind(ctx, r.onDigestReady)
	}
	if cfg.Resume != nil && r.ckptEnabled() {
		r.applyResume(cfg.Resume)
	}
	return r
}

// Instance exposes instance state to tests.
func (r *Replica) Instance(i int32) *Instance { return r.insts[i] }

// CurrentView returns the view of instance i. Safe to call from outside
// the event loops (operator polling, live tests); it reads an atomic
// mirror updated at every view entry.
func (in *Instance) CurrentView() types.View { return types.View(in.viewMirror.Load()) }

// Lock returns the view of the instance's locked proposal (testing).
func (in *Instance) LockView() types.View { return in.lock.view }

// LastCommittedView returns the highest committed view of the instance.
func (in *Instance) LastCommittedView() types.View { return in.lastCommit.view }

// Start implements protocol.Protocol: all instances enter view 1 — each on
// its own shard when a sharding substrate bound a poster.
func (r *Replica) Start() {
	if r.cfg.Dissem != nil {
		r.post(protocol.OrderingShard, r.cfg.Dissem.Start)
	}
	for _, in := range r.insts {
		in := in
		r.post(in.id, in.start)
	}
	if r.resumed {
		// Re-enter the rotation from the persisted anchors: posts to the
		// same shard are ordered, so each installAnchor runs after start.
		for i, in := range r.insts {
			in, a := in, r.ckpt.stableAnch[i]
			r.post(in.id, func() { in.installAnchor(a) })
		}
	}
}

// --- protocol.ShardedProtocol ---

// ShardCount implements protocol.ShardedProtocol: one shard per instance.
func (r *Replica) ShardCount() int { return r.cfg.Instances }

// InstanceOf implements protocol.ShardedProtocol, mapping per-instance
// protocol messages to their shard and everything else — checkpoint
// attestations, state transfer, and malformed instance ids (dropped by the
// nil-instance guard wherever they run) — to the ordering stage. Stateless:
// it reads only construction-time configuration.
func (r *Replica) InstanceOf(msg types.Message) int32 {
	var inst int32
	switch m := msg.(type) {
	case *types.Propose:
		inst = m.Instance
	case *types.Sync:
		inst = m.Instance
	case *types.Ask:
		inst = m.Instance
	default:
		return protocol.OrderingShard
	}
	if inst < 0 || int(inst) >= r.cfg.Instances {
		return protocol.OrderingShard
	}
	return inst
}

// BindShards implements protocol.ShardedProtocol: cross-shard handoffs run
// through post from now on.
func (r *Replica) BindShards(p protocol.ShardPoster) { r.poster = p }

// post schedules fn serialized with the given shard's events: through the
// bound poster on a sharding substrate, inline when every event is already
// serialized (the classic single event loop, the simulator's default model,
// and direct-drive tests).
func (r *Replica) post(shard int32, fn func()) {
	if r.poster != nil {
		r.poster.PostShard(shard, fn)
		return
	}
	fn()
}

// DissemLayer exposes the bound dissemination layer (nil without digest
// ordering) so harnesses and metrics exporters can read its counters.
func (r *Replica) DissemLayer() *dissem.Layer { return r.cfg.Dissem }

// DeliveredCount reports the globally ordered non-noop batch count. Safe to
// call from outside the event loops (operator polling, benchmarks).
func (r *Replica) DeliveredCount() uint64 { return r.deliveredMirror.Load() }

// noteResync records one resync event (instance-shard callers).
func (r *Replica) noteResync(stalled time.Duration) {
	r.resyncs.Add(1)
	r.lastResyncNanos.Store(int64(stalled))
	r.totalResyncNanos.Add(int64(stalled))
}

// Resyncs reports how many catch-up jumps and state-transfer advances this
// replica performed. Safe from outside the event loops.
func (r *Replica) Resyncs() uint64 { return r.resyncs.Load() }

// LastResync reports how long the replica had been stalled when its most
// recent resync fired (0 when none happened). Safe from outside the loops.
func (r *Replica) LastResync() time.Duration { return time.Duration(r.lastResyncNanos.Load()) }

// TotalResyncStall sums the stall durations across all resyncs. Safe from
// outside the event loops.
func (r *Replica) TotalResyncStall() time.Duration {
	return time.Duration(r.totalResyncNanos.Load())
}

// HandleMessage implements protocol.Protocol, dispatching by instance.
func (r *Replica) HandleMessage(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *types.Propose:
		if in := r.instance(m.Instance); in != nil {
			in.onPropose(m)
		}
	case *types.Sync:
		if in := r.instance(m.Instance); in != nil {
			in.onSync(from, m)
		}
	case *types.Ask:
		if in := r.instance(m.Instance); in != nil {
			in.onAsk(from, m)
		}
	case *types.Checkpoint:
		r.onCheckpoint(from, m)
	case *types.FetchState:
		r.onFetchState(from, m)
	case *types.StateChunk:
		r.onStateChunk(from, m)
	case *types.BatchDigest, *types.BatchAck, *types.BatchCert, *types.BatchChunk:
		// Dissemination traffic runs on the ordering shard (InstanceOf's
		// default); a replica without the layer drops it.
		if r.cfg.Dissem != nil {
			r.cfg.Dissem.OnMessage(from, msg)
		}
	}
}

// HandleTimer implements protocol.Protocol.
func (r *Replica) HandleTimer(tag protocol.TimerTag) {
	if tag.Kind == protocol.TimerStateFetch {
		r.onFetchTimer(tag)
		return
	}
	if tag.Kind == dissem.TimerKind {
		if r.cfg.Dissem != nil {
			r.cfg.Dissem.OnTimer()
			if r.dwTicks++; r.dwTicks >= dwFlushTicks {
				r.dwTicks = 0
				r.flushDigestWaiters()
			}
		}
		return
	}
	if in := r.instance(tag.Instance); in != nil {
		in.onTimer(tag)
	}
}

// IngressJob implements protocol.IngressVerifier. A Propose must carry a
// valid primary signature before it enters the state machine (check S1);
// the substrate runs the check off the event loop. Sync signatures are
// certificate material verified lazily by receivers that need them (§3.4),
// and Ask carries no signature — so SpotLess's all-to-all fast path stays
// MAC-priced, the asymmetry the paper's evaluation rests on. Embedded
// certificates (Propose.Parent.Cert) are likewise not screened here: they
// matter only on the recovery path, where the instance fans them out as one
// VerifyAsync batch job.
func (r *Replica) IngressJob(from types.NodeID, msg types.Message) (protocol.VerifyJob, bool) {
	switch m := msg.(type) {
	case *types.Propose:
		if m.Batch == nil {
			return protocol.VerifyJob{}, false
		}
		// Stateless pre-guards mirroring the loop's own cheap drops: bogus
		// instances and signers that are not the view's primary never reach
		// (or pay for) verification. The stateful flooding window (view too
		// far ahead) still costs one pooled check per junk proposal.
		if m.Instance < 0 || int(m.Instance) >= r.cfg.Instances ||
			m.Sig.Signer != PrimaryOf(m.Instance, m.View, r.cfg.N) {
			return protocol.VerifyJob{}, false
		}
		d := m.Digest()
		return protocol.VerifyJob{
			Checks: []crypto.Check{{Sig: m.Sig, Msg: d[:]}},
			Quorum: 1,
		}, true
	case *types.Checkpoint:
		// Attestations are tallied by signer; the signature must bind the
		// signer to (height, state hash) before the tally sees it, and the
		// signer must be a replica — clients share the keyring, and a
		// compromised client's signature must not count toward the f+1
		// lagging-detection threshold. (An empty infeasible job drops the
		// message.) The StateChunk certificate is not screened here: it is
		// verified as one fanned-out VerifyAsync batch on the recovery
		// path only.
		if m.Sig.Signer < 0 || int(m.Sig.Signer) >= r.cfg.N {
			return protocol.VerifyJob{Quorum: 1}, true
		}
		return protocol.VerifyJob{
			Checks: []crypto.Check{{Sig: m.Sig, Msg: types.CheckpointBytes(m.Height, m.StateHash)}},
			Quorum: 1,
		}, true
	case *types.BatchDigest, *types.BatchAck, *types.BatchCert, *types.BatchChunk:
		if r.cfg.Dissem == nil {
			// No layer bound: drop at ingress (an empty infeasible job).
			return protocol.VerifyJob{Quorum: 1}, true
		}
		return r.cfg.Dissem.IngressJob(from, msg)
	}
	return protocol.VerifyJob{}, false
}

// HandleVerified implements protocol.VerifyConsumer, routing asynchronous
// certificate-verification completions to their instance (Instance ≥ 0) or
// to the checkpoint manager (Instance −1: state-transfer certificates).
func (r *Replica) HandleVerified(tag protocol.TimerTag, ok bool) {
	if tag.Instance < 0 {
		r.onCkptVerified(tag, ok)
		return
	}
	if in := r.instance(tag.Instance); in != nil {
		in.onVerified(tag, ok)
	}
}

var (
	_ protocol.Protocol        = (*Replica)(nil)
	_ protocol.ShardedProtocol = (*Replica)(nil)
	_ protocol.IngressVerifier = (*Replica)(nil)
	_ protocol.VerifyConsumer  = (*Replica)(nil)
)

func (r *Replica) instance(i int32) *Instance {
	if i < 0 || int(i) >= len(r.insts) {
		return nil
	}
	return r.insts[i]
}

func (r *Replica) isAccomplice(id types.NodeID) bool {
	return r.cfg.Behavior.Accomplices[id]
}

// awaitDigest registers the given shard (an instance id, or
// protocol.OrderingShard for the delivery path) as blocked on a batch
// digest's certificate or payload. The caller MUST re-check the dissemination
// layer after registering — a notify that fired between the check and the
// registration would otherwise be lost for good — and unregister
// (unawaitDigest) when that re-check succeeds, since the notify that would
// have deleted the entry has already fired.
func (r *Replica) awaitDigest(shard int32, id types.Digest) {
	r.dwMu.Lock()
	w := r.dWaiters[id]
	if w == nil {
		w = make(map[int32]struct{}, 2)
		r.dWaiters[id] = w
	}
	w[shard] = struct{}{}
	r.dwMu.Unlock()
}

// unawaitDigest drops one shard's registration (idempotent — the notify may
// have deleted it concurrently).
func (r *Replica) unawaitDigest(shard int32, id types.Digest) {
	r.dwMu.Lock()
	if w := r.dWaiters[id]; w != nil {
		delete(w, shard)
		if len(w) == 0 {
			delete(r.dWaiters, id)
		}
	}
	r.dwMu.Unlock()
}

// dwFlushTicks paces flushDigestWaiters off the dissemination pump timer:
// 256 ticks ≈ 1.3s at the default 5ms PumpInterval.
const dwFlushTicks = 256

// flushDigestWaiters clears the waiter table and re-posts every registered
// shard's retry. Waiters normally leave through onDigestReady or the
// callers' post-re-check unregister; what accumulates beyond that is
// garbage no notify will ever fire for — digests referenced by a Byzantine
// proposal that never certify, abandoned when the instance's view moved on.
// Re-posting is always safe and makes the flush self-cleaning: a shard that
// still needs its digest re-evaluates and re-registers (and, as a bonus,
// re-backfills a parked delivery even if a notify was lost), while an
// abandoned wait simply disappears.
func (r *Replica) flushDigestWaiters() {
	r.dwMu.Lock()
	stale := r.dWaiters
	if len(stale) == 0 {
		r.dwMu.Unlock()
		return
	}
	r.dWaiters = make(map[types.Digest]map[int32]struct{})
	r.dwMu.Unlock()
	seen := make(map[int32]struct{})
	shards := make([]int32, 0, len(seen))
	for _, w := range stale {
		for s := range w {
			if _, dup := seen[s]; !dup {
				seen[s] = struct{}{}
				shards = append(shards, s)
			}
		}
	}
	// Deterministic post order: map iteration order must not leak into the
	// event schedule (the simnet drills replay by seed).
	sort.Slice(shards, func(i, j int) bool { return shards[i] < shards[j] })
	for _, shard := range shards {
		if shard == protocol.OrderingShard {
			r.post(protocol.OrderingShard, r.drain)
			continue
		}
		if in := r.instance(shard); in != nil {
			in := in
			r.post(shard, func() {
				in.retryPending()
				in.checkTransitions()
			})
		}
	}
}

// onDigestReady is the dissemination layer's notify callback: a digest
// gained its certificate or payload. It may fire from any shard (or an
// ingress goroutine), so it only collects the registered waiters and posts
// their retries onto the owning shards.
func (r *Replica) onDigestReady(id types.Digest) {
	r.dwMu.Lock()
	w := r.dWaiters[id]
	delete(r.dWaiters, id)
	r.dwMu.Unlock()
	for shard := range w {
		if shard == protocol.OrderingShard {
			r.post(protocol.OrderingShard, r.drain)
			continue
		}
		if in := r.instance(shard); in != nil {
			r.post(shard, func() {
				in.retryPending()
				in.checkTransitions()
			})
		}
	}
}

// noopBatch builds the no-op filler of §5 so idle instances do not block the
// execution of busy ones.
func (r *Replica) noopBatch(instance int32, v types.View) *types.Batch {
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(instance))
	binary.LittleEndian.PutUint64(buf[4:], uint64(v))
	id := sha256.Sum256(buf[:])
	return &types.Batch{ID: id, NoOp: true}
}

// String describes the replica (debugging).
func (r *Replica) String() string {
	return fmt.Sprintf("spotless-replica{id=%d m=%d}", r.ctx.ID(), len(r.insts))
}
