package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"spotless/internal/core"
	"spotless/internal/crypto"
	"spotless/internal/loadgen"
	"spotless/internal/protocol"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

// deliveryLog records the global delivery order observed by each replica.
type deliveryLog struct {
	perNode map[types.NodeID][]types.Digest
}

func newDeliveryLog() *deliveryLog {
	return &deliveryLog{perNode: make(map[types.NodeID][]types.Digest)}
}

func (l *deliveryLog) hook(node types.NodeID, c types.Commit) {
	if c.Batch != nil {
		l.perNode[node] = append(l.perNode[node], c.Batch.ID)
	}
}

// checkPrefixConsistency verifies every pair of replicas delivered
// prefix-consistent sequences (non-divergence across the total order).
func (l *deliveryLog) checkPrefixConsistency() error {
	var longest []types.Digest
	var owner types.NodeID
	for id, seq := range l.perNode {
		if len(seq) > len(longest) {
			longest, owner = seq, id
		}
	}
	for id, seq := range l.perNode {
		for i := range seq {
			if seq[i] != longest[i] {
				return fmt.Errorf("divergence at position %d: replica %d vs replica %d", i, id, owner)
			}
		}
	}
	return nil
}

// scenario is a randomized adversarial schedule for the property test.
type scenario struct {
	Seed      int64
	N         byte // 4..10 replicas
	Instances byte // 1..4
	Faults    byte // 0..f non-responsive
	Attack    byte // 0..3 → none/dark/equivocate/subvert
	DropPair  byte // lossy directed link selector
	Loss      byte // packet loss percentage 0..20
}

func (s scenario) normalize() (n, m, faults int, attack core.AttackMode, loss float64) {
	n = 4 + int(s.N)%7
	f := (n - 1) / 3
	m = 1 + int(s.Instances)%3
	faults = int(s.Faults) % (f + 1)
	attack = core.AttackMode(s.Attack % 4)
	loss = float64(s.Loss%21) / 100
	return
}

// runScenario executes a randomized schedule and returns the delivery log
// plus the completed-batch count.
func runScenario(s scenario) (*deliveryLog, uint64) {
	n, m, faults, attack, loss := s.normalize()
	f := (n - 1) / 3

	scfg := simnet.DefaultConfig(n)
	scfg.Seed = s.Seed
	scfg.BaseHandlerCost = time.Microsecond
	scfg.LossRate = loss
	sim := simnet.New(scfg)
	log := newDeliveryLog()
	sim.SetDeliverHook(log.hook)

	src := loadgen.NewSource(m, 4, loadgen.DefaultWorkload(5))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, f, 0)
	col.MeasureEnd = time.Hour
	sim.SetProtocol(simnet.ClientNode, col)

	faulty := make(map[types.NodeID]bool)
	for i := 0; i < faults; i++ {
		faulty[types.NodeID(n-1-i)] = true
	}
	victims := make(map[types.NodeID]bool)
	for i := 0; i < f; i++ {
		victims[types.NodeID(i)] = true
	}
	for i := 0; i < n; i++ {
		id := types.NodeID(i)
		cfg := core.DefaultConfig(n, m)
		cfg.InitialRecordingTimeout = 20 * time.Millisecond
		cfg.InitialCertifyTimeout = 20 * time.Millisecond
		cfg.MinTimeout = 5 * time.Millisecond
		if faulty[id] && attack != core.AttackNone {
			cfg.Behavior = core.Behavior{Mode: attack, Victims: victims, Accomplices: faulty}
		}
		sim.SetProtocol(id, core.New(sim.Context(id), cfg))
	}
	// Crash-fault flavor: attack==none downs the faulty replicas mid-run.
	if attack == core.AttackNone {
		for id := range faulty {
			fid := id
			sim.Schedule(200*time.Millisecond, func() { sim.SetDown(fid, true) })
		}
	}
	// A flaky directed link between two non-faulty replicas.
	a := types.NodeID(int(s.DropPair) % n)
	b := types.NodeID((int(s.DropPair) + 1) % n)
	sim.Schedule(100*time.Millisecond, func() { sim.BlockLink(a, b, true) })
	sim.Schedule(600*time.Millisecond, func() { sim.BlockLink(a, b, false) })

	sim.Start()
	sim.Run(1500 * time.Millisecond)
	return log, col.BatchesDone
}

// TestPropertySafetyUnderRandomSchedules: across randomized clusters,
// faults, attacks, loss, and partitions, no two replicas ever deliver
// diverging orders (Theorem 3.5 lifted to the total order of §4.1).
func TestPropertySafetyUnderRandomSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	cfg := &quick.Config{
		MaxCount: 12,
		Rand:     rand.New(rand.NewSource(99)),
	}
	prop := func(s scenario) bool {
		log, _ := runScenario(s)
		if err := log.checkPrefixConsistency(); err != nil {
			t.Logf("scenario %+v: %v", s, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLivenessFailureFree: failure-free random clusters always
// complete client batches (termination + service under synchrony).
func TestPropertyLivenessFailureFree(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	cfg := &quick.Config{MaxCount: 6, Rand: rand.New(rand.NewSource(7))}
	prop := func(seed int64, nRaw byte) bool {
		s := scenario{Seed: seed, N: nRaw, Instances: 1, Faults: 0, Attack: 0, Loss: 0}
		_, done := runScenario(s)
		return done > 0
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAttackSafetyAndLiveness: each attack mode at full strength (f
// attackers) preserves both safety and progress on a 7-replica cluster.
func TestAttackSafetyAndLiveness(t *testing.T) {
	for ai, name := range []string{"A1-crash", "A2-dark", "A3-equivocate", "A4-subvert"} {
		ai, name := ai, name
		t.Run(name, func(t *testing.T) {
			s := scenario{Seed: int64(1000 + ai), N: 3 /*→ n=7*/, Instances: 1, Faults: 2, Attack: byte(ai)}
			log, done := runScenario(s)
			if err := log.checkPrefixConsistency(); err != nil {
				t.Fatalf("safety violated under %s: %v", name, err)
			}
			if done == 0 {
				t.Fatalf("no progress under %s", name)
			}
		})
	}
}

// --- tightened commit-trigger regression (PR 2 ROADMAP discovery) ---

// stubContext drives one replica deterministically through HandleMessage,
// recording sends and deliveries. Unlike the simulator it lets the test
// craft the exact adversarial message schedule that reproduced the
// fork-committed no-op deviation.
type stubContext struct {
	id      types.NodeID
	n       int
	prov    crypto.Provider
	commits []types.Commit
	sent    []types.Message // every Send/Broadcast payload, in order
}

func newStubContext(id types.NodeID, n int) *stubContext {
	return &stubContext{id: id, n: n, prov: crypto.NewSimProvider(id, crypto.CostModel{}, nil)}
}

func (c *stubContext) ID() types.NodeID   { return c.id }
func (c *stubContext) N() int             { return c.n }
func (c *stubContext) F() int             { return (c.n - 1) / 3 }
func (c *stubContext) Now() time.Duration { return 0 }
func (c *stubContext) Send(_ types.NodeID, m types.Message) {
	c.sent = append(c.sent, m)
}
func (c *stubContext) Broadcast(m types.Message)                 { c.sent = append(c.sent, m) }
func (c *stubContext) SetTimer(time.Duration, protocol.TimerTag) {}
func (c *stubContext) VerifyAsync(protocol.VerifyJob)            {}
func (c *stubContext) Crypto() crypto.Provider                   { return c.prov }
func (c *stubContext) Deliver(cm types.Commit)                   { c.commits = append(c.commits, cm) }
func (c *stubContext) NextBatch(int32) *types.Batch              { return nil }
func (c *stubContext) Logf(string, ...any)                       {}

// TestCommitRequiresTipClaimQuorum: a three-consecutive chain whose tip is
// only conditionally prepared through the f+1 CP adoption must NOT commit
// the grandparent — that is the transient-fork deviation from the paper's
// safety argument — while the commit must still fire the moment the tip
// gathers its n−f claim quorum.
func TestCommitRequiresTipClaimQuorum(t *testing.T) {
	const n = 7 // f = 2, quorum = 5, weak = 3
	ctx := newStubContext(0, n)
	cfg := core.DefaultConfig(n, 1)
	r := core.New(ctx, cfg)
	r.Start()

	sign := func(id types.NodeID) types.Signature { return types.Signature{Signer: id} }
	propose := func(v types.View, batchSeed byte, parent types.Justification) *types.Propose {
		p := &types.Propose{
			Instance: 0, View: v,
			Batch:  &types.Batch{ID: types.Digest{batchSeed}},
			Parent: parent,
		}
		p.Sig = sign(types.NodeID(uint64(v) % n)) // PrimaryOf(0, v, n)
		return p
	}
	sync := func(from types.NodeID, v types.View, claim types.Claim, cp []types.CPEntry) {
		r.HandleMessage(from, &types.Sync{Instance: 0, View: v, Claim: claim, CP: cp, Sig: sign(from)})
	}
	claimOf := func(v types.View, d types.Digest) types.Claim { return types.Claim{View: v, Digest: d} }

	// Views 1 and 2 proceed normally: full claim quorums (own claim + 4).
	p1 := propose(1, 1, types.Justification{Kind: types.JustGenesis})
	d1 := p1.Digest()
	r.HandleMessage(1, p1)
	for _, from := range []types.NodeID{1, 2, 3, 4} {
		sync(from, 1, claimOf(1, d1), nil)
	}
	p2 := propose(2, 2, types.Justification{Kind: types.JustClaim, ParentView: 1, ParentDigest: d1})
	d2 := p2.Digest()
	r.HandleMessage(2, p2)
	for _, from := range []types.NodeID{1, 2, 3, 4} {
		sync(from, 2, claimOf(2, d2), nil)
	}
	if got := r.Instance(0).CurrentView(); got != 3 {
		t.Fatalf("setup: expected view 3, at %d", got)
	}

	// View 3: the tip P3 is accepted (own claim) and then conditionally
	// prepared through f+1 CP endorsements — claims from 1, 2 plus a CP-only
	// endorsement from 4 — which is NOT an n−f claim quorum (3 claims < 5).
	p3 := propose(3, 3, types.Justification{Kind: types.JustClaim, ParentView: 2, ParentDigest: d2})
	d3 := p3.Digest()
	r.HandleMessage(3, p3)
	cp3 := []types.CPEntry{{View: 3, Digest: d3}}
	sync(1, 3, claimOf(3, d3), cp3)
	sync(2, 3, claimOf(3, d3), cp3)
	sync(4, 3, types.Claim{View: 3, Empty: true}, cp3)

	if got := r.Instance(0).LastCommittedView(); got != 0 {
		t.Fatalf("CP-adopted tip committed its grandparent: lastCommit view %d (the pre-tightening deviation)", got)
	}
	if len(ctx.commits) != 0 {
		t.Fatalf("delivered %d commits without a tip claim quorum", len(ctx.commits))
	}

	// Completing the claim quorum (own + 1, 2, 3, 5 = 5) must commit P1 —
	// the late-quorum path re-triggers the commit rule on an already
	// conditionally prepared tip.
	sync(3, 3, claimOf(3, d3), nil)
	sync(5, 3, claimOf(3, d3), nil)

	if got := r.Instance(0).LastCommittedView(); got != 1 {
		t.Fatalf("claim quorum on the tip did not commit the grandparent: lastCommit view %d", got)
	}
	if len(ctx.commits) != 1 || ctx.commits[0].Batch.ID != p1.Batch.ID {
		t.Fatalf("expected exactly P1's batch delivered, got %d commits", len(ctx.commits))
	}
}

// TestTotalOrderAcrossInstances: with m instances the (view, instance)
// order is identical on every replica.
func TestTotalOrderAcrossInstances(t *testing.T) {
	s := scenario{Seed: 5, N: 0 /*→ n=4*/, Instances: 3 /*→ m=4? (1+3%3)=1*/}
	// Force m = 4 via direct run.
	n, m := 4, 4
	scfg := simnet.DefaultConfig(n)
	scfg.BaseHandlerCost = time.Microsecond
	sim := simnet.New(scfg)
	log := newDeliveryLog()
	sim.SetDeliverHook(log.hook)
	src := loadgen.NewSource(m, 4, loadgen.DefaultWorkload(5))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, 1, 0)
	col.MeasureEnd = time.Hour
	sim.SetProtocol(simnet.ClientNode, col)
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(n, m)
		cfg.InitialRecordingTimeout = 20 * time.Millisecond
		cfg.InitialCertifyTimeout = 20 * time.Millisecond
		sim.SetProtocol(types.NodeID(i), core.New(sim.Context(types.NodeID(i)), cfg))
	}
	sim.Start()
	sim.Run(time.Second)
	_ = s
	if col.BatchesDone == 0 {
		t.Fatal("no batches completed")
	}
	if err := log.checkPrefixConsistency(); err != nil {
		t.Fatal(err)
	}
	if len(log.perNode[0]) < 8 {
		t.Fatalf("replica 0 delivered too little: %d", len(log.perNode[0]))
	}
}

// TestInstanceParallelTotalOrder: the simulator's instance-parallel model
// (per-shard lanes + cross-shard posts) preserves the cluster-wide
// (view, instance) total order and keeps committing — the virtual-time
// counterpart of the runtime's sharded-dispatch race tests.
func TestInstanceParallelTotalOrder(t *testing.T) {
	n, m := 4, 4
	scfg := simnet.DefaultConfig(n)
	scfg.BaseHandlerCost = time.Microsecond
	scfg.InstanceWorkers = m
	sim := simnet.New(scfg)
	log := newDeliveryLog()
	sim.SetDeliverHook(log.hook)
	src := loadgen.NewSource(m, 4, loadgen.DefaultWorkload(5))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, 1, 0)
	col.MeasureEnd = time.Hour
	sim.SetProtocol(simnet.ClientNode, col)
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(n, m)
		cfg.InitialRecordingTimeout = 20 * time.Millisecond
		cfg.InitialCertifyTimeout = 20 * time.Millisecond
		sim.SetProtocol(types.NodeID(i), core.New(sim.Context(types.NodeID(i)), cfg))
	}
	sim.Start()
	sim.Run(time.Second)
	if col.BatchesDone == 0 {
		t.Fatal("no batches completed under the instance-parallel model")
	}
	if err := log.checkPrefixConsistency(); err != nil {
		t.Fatal(err)
	}
	if len(log.perNode[0]) < 8 {
		t.Fatalf("replica 0 delivered too little: %d", len(log.perNode[0]))
	}
}
