package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"spotless/internal/core"
	"spotless/internal/loadgen"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

// deliveryLog records the global delivery order observed by each replica.
type deliveryLog struct {
	perNode map[types.NodeID][]types.Digest
}

func newDeliveryLog() *deliveryLog {
	return &deliveryLog{perNode: make(map[types.NodeID][]types.Digest)}
}

func (l *deliveryLog) hook(node types.NodeID, c types.Commit) {
	if c.Batch != nil {
		l.perNode[node] = append(l.perNode[node], c.Batch.ID)
	}
}

// checkPrefixConsistency verifies every pair of replicas delivered
// prefix-consistent sequences (non-divergence across the total order).
func (l *deliveryLog) checkPrefixConsistency() error {
	var longest []types.Digest
	var owner types.NodeID
	for id, seq := range l.perNode {
		if len(seq) > len(longest) {
			longest, owner = seq, id
		}
	}
	for id, seq := range l.perNode {
		for i := range seq {
			if seq[i] != longest[i] {
				return fmt.Errorf("divergence at position %d: replica %d vs replica %d", i, id, owner)
			}
		}
	}
	return nil
}

// scenario is a randomized adversarial schedule for the property test.
type scenario struct {
	Seed      int64
	N         byte // 4..10 replicas
	Instances byte // 1..4
	Faults    byte // 0..f non-responsive
	Attack    byte // 0..3 → none/dark/equivocate/subvert
	DropPair  byte // lossy directed link selector
	Loss      byte // packet loss percentage 0..20
}

func (s scenario) normalize() (n, m, faults int, attack core.AttackMode, loss float64) {
	n = 4 + int(s.N)%7
	f := (n - 1) / 3
	m = 1 + int(s.Instances)%3
	faults = int(s.Faults) % (f + 1)
	attack = core.AttackMode(s.Attack % 4)
	loss = float64(s.Loss%21) / 100
	return
}

// runScenario executes a randomized schedule and returns the delivery log
// plus the completed-batch count.
func runScenario(s scenario) (*deliveryLog, uint64) {
	n, m, faults, attack, loss := s.normalize()
	f := (n - 1) / 3

	scfg := simnet.DefaultConfig(n)
	scfg.Seed = s.Seed
	scfg.BaseHandlerCost = time.Microsecond
	scfg.LossRate = loss
	sim := simnet.New(scfg)
	log := newDeliveryLog()
	sim.SetDeliverHook(log.hook)

	src := loadgen.NewSource(m, 4, loadgen.DefaultWorkload(5))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, f, 0)
	col.MeasureEnd = time.Hour
	sim.SetProtocol(simnet.ClientNode, col)

	faulty := make(map[types.NodeID]bool)
	for i := 0; i < faults; i++ {
		faulty[types.NodeID(n-1-i)] = true
	}
	victims := make(map[types.NodeID]bool)
	for i := 0; i < f; i++ {
		victims[types.NodeID(i)] = true
	}
	for i := 0; i < n; i++ {
		id := types.NodeID(i)
		cfg := core.DefaultConfig(n, m)
		cfg.InitialRecordingTimeout = 20 * time.Millisecond
		cfg.InitialCertifyTimeout = 20 * time.Millisecond
		cfg.MinTimeout = 5 * time.Millisecond
		if faulty[id] && attack != core.AttackNone {
			cfg.Behavior = core.Behavior{Mode: attack, Victims: victims, Accomplices: faulty}
		}
		sim.SetProtocol(id, core.New(sim.Context(id), cfg))
	}
	// Crash-fault flavor: attack==none downs the faulty replicas mid-run.
	if attack == core.AttackNone {
		for id := range faulty {
			fid := id
			sim.Schedule(200*time.Millisecond, func() { sim.SetDown(fid, true) })
		}
	}
	// A flaky directed link between two non-faulty replicas.
	a := types.NodeID(int(s.DropPair) % n)
	b := types.NodeID((int(s.DropPair) + 1) % n)
	sim.Schedule(100*time.Millisecond, func() { sim.BlockLink(a, b, true) })
	sim.Schedule(600*time.Millisecond, func() { sim.BlockLink(a, b, false) })

	sim.Start()
	sim.Run(1500 * time.Millisecond)
	return log, col.BatchesDone
}

// TestPropertySafetyUnderRandomSchedules: across randomized clusters,
// faults, attacks, loss, and partitions, no two replicas ever deliver
// diverging orders (Theorem 3.5 lifted to the total order of §4.1).
func TestPropertySafetyUnderRandomSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	cfg := &quick.Config{
		MaxCount: 12,
		Rand:     rand.New(rand.NewSource(99)),
	}
	prop := func(s scenario) bool {
		log, _ := runScenario(s)
		if err := log.checkPrefixConsistency(); err != nil {
			t.Logf("scenario %+v: %v", s, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLivenessFailureFree: failure-free random clusters always
// complete client batches (termination + service under synchrony).
func TestPropertyLivenessFailureFree(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	cfg := &quick.Config{MaxCount: 6, Rand: rand.New(rand.NewSource(7))}
	prop := func(seed int64, nRaw byte) bool {
		s := scenario{Seed: seed, N: nRaw, Instances: 1, Faults: 0, Attack: 0, Loss: 0}
		_, done := runScenario(s)
		return done > 0
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAttackSafetyAndLiveness: each attack mode at full strength (f
// attackers) preserves both safety and progress on a 7-replica cluster.
func TestAttackSafetyAndLiveness(t *testing.T) {
	for ai, name := range []string{"A1-crash", "A2-dark", "A3-equivocate", "A4-subvert"} {
		ai, name := ai, name
		t.Run(name, func(t *testing.T) {
			s := scenario{Seed: int64(1000 + ai), N: 3 /*→ n=7*/, Instances: 1, Faults: 2, Attack: byte(ai)}
			log, done := runScenario(s)
			if err := log.checkPrefixConsistency(); err != nil {
				t.Fatalf("safety violated under %s: %v", name, err)
			}
			if done == 0 {
				t.Fatalf("no progress under %s", name)
			}
		})
	}
}

// TestTotalOrderAcrossInstances: with m instances the (view, instance)
// order is identical on every replica.
func TestTotalOrderAcrossInstances(t *testing.T) {
	s := scenario{Seed: 5, N: 0 /*→ n=4*/, Instances: 3 /*→ m=4? (1+3%3)=1*/}
	// Force m = 4 via direct run.
	n, m := 4, 4
	scfg := simnet.DefaultConfig(n)
	scfg.BaseHandlerCost = time.Microsecond
	sim := simnet.New(scfg)
	log := newDeliveryLog()
	sim.SetDeliverHook(log.hook)
	src := loadgen.NewSource(m, 4, loadgen.DefaultWorkload(5))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, 1, 0)
	col.MeasureEnd = time.Hour
	sim.SetProtocol(simnet.ClientNode, col)
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(n, m)
		cfg.InitialRecordingTimeout = 20 * time.Millisecond
		cfg.InitialCertifyTimeout = 20 * time.Millisecond
		sim.SetProtocol(types.NodeID(i), core.New(sim.Context(types.NodeID(i)), cfg))
	}
	sim.Start()
	sim.Run(time.Second)
	_ = s
	if col.BatchesDone == 0 {
		t.Fatal("no batches completed")
	}
	if err := log.checkPrefixConsistency(); err != nil {
		t.Fatal(err)
	}
	if len(log.perNode[0]) < 8 {
		t.Fatalf("replica 0 delivered too little: %d", len(log.perNode[0]))
	}
}
