package core_test

import (
	"testing"
	"time"

	"spotless/internal/core"
	"spotless/internal/loadgen"
	"spotless/internal/protocol"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

// TestCheckpointStabilizesAndGCs: a healthy cluster with checkpointing
// enabled stabilizes checkpoints and keeps making progress.
func TestCheckpointStabilizesAndGCs(t *testing.T) {
	c := newCluster(t, 4, 2, func(i int, cfg *core.Config) {
		cfg.CheckpointInterval = 8
	}, nil)
	c.run(2 * time.Second)
	for i, r := range c.replicas {
		if r.Delivered == 0 {
			t.Fatalf("replica %d delivered nothing", i)
		}
		if r.StableHeight() == 0 {
			t.Errorf("replica %d never stabilized a checkpoint (delivered %d)", i, r.Delivered)
		}
		if r.StableHeight()%8 != 0 {
			t.Errorf("replica %d stable height %d not interval-aligned", i, r.StableHeight())
		}
	}
}

// TestCheckpointBoundsStateFootprint is the memory-bound regression: with
// the fixed retention window widened out of the way, per-instance
// proposal/view bookkeeping grows with the number of views passed when
// checkpointing is disabled, and stays O(K) when enabled — the subsystem's
// core claim.
func TestCheckpointBoundsStateFootprint(t *testing.T) {
	measure := func(interval int) (props, views int) {
		c := newCluster(t, 4, 1, func(i int, cfg *core.Config) {
			cfg.CheckpointInterval = interval
			cfg.RetentionViews = 1 << 30 // neutralize the fallback pruner
		}, nil)
		c.run(3 * time.Second)
		return c.replicas[0].StateFootprint()
	}
	offProps, offViews := measure(0)
	onProps, onViews := measure(8)
	t.Logf("checkpointing off: %d proposals / %d views; on (K=8): %d / %d",
		offProps, offViews, onProps, onViews)
	// Without checkpoints the maps track every view ever passed.
	if offProps < 4*onProps || offViews < 4*onViews {
		t.Fatalf("expected unbounded growth without checkpoints: off=%d/%d on=%d/%d",
			offProps, offViews, onProps, onViews)
	}
	// With checkpoints the footprint is O(K) — a small multiple of the
	// interval (stabilization lag + in-flight views), not O(views passed).
	const bound = 256 // generous: K=8 plus pipeline and quorum lag
	if onProps > bound || onViews > bound {
		t.Fatalf("footprint with checkpointing not bounded: %d proposals / %d views > %d",
			onProps, onViews, bound)
	}
}

// TestCrashRecoveryViaStateTransfer is the kill-and-rejoin scenario: a
// replica crashes mid-run, loses all in-memory state, and restarts while
// the survivors keep committing under a bounded retention policy. The
// rejoiner cannot rebuild the pruned chain by Asks; it must fetch the
// stable checkpoint, install it, and then commit new batches.
func TestCrashRecoveryViaStateTransfer(t *testing.T) {
	const (
		n, m   = 4, 2
		victim = types.NodeID(3)
	)
	tune := func(cfg *core.Config) {
		cfg.InitialRecordingTimeout = 20 * time.Millisecond
		cfg.InitialCertifyTimeout = 20 * time.Millisecond
		cfg.CheckpointInterval = 8
	}
	c := newCluster(t, n, m, func(i int, cfg *core.Config) { tune(cfg) }, nil)

	c.run(500 * time.Millisecond)
	c.sim.SetDown(victim, true)
	c.run(1500 * time.Millisecond)

	var revived *core.Replica
	c.sim.Schedule(c.sim.Now(), func() {
		c.sim.Restart(victim, func(ctx protocol.Context) protocol.Protocol {
			cfg := core.DefaultConfig(n, m)
			tune(&cfg)
			revived = core.New(ctx, cfg)
			c.replicas[victim] = revived
			return revived
		})
	})
	c.run(3500 * time.Millisecond)

	if revived == nil {
		t.Fatal("restart hook never ran")
	}
	if revived.StableHeight() == 0 {
		t.Fatalf("revived replica never installed a stable checkpoint (delivered %d, peers at %d)",
			revived.Delivered, c.replicas[0].Delivered)
	}
	mark := revived.Delivered
	if mark == 0 {
		t.Fatal("revived replica delivered nothing after state transfer")
	}
	// It must now be an active participant: new batches keep committing.
	c.run(4500 * time.Millisecond)
	if revived.Delivered <= mark {
		t.Fatalf("revived replica stalled after install: delivered %d then %d", mark, revived.Delivered)
	}
	// And it must have caught up to the pack, not merely limp along.
	healthy := c.replicas[0].Delivered
	if revived.Delivered+uint64(4*8) < healthy {
		t.Fatalf("revived replica lags: %d vs healthy %d", revived.Delivered, healthy)
	}
}

// cappedSource stops the load after a fixed number of issued batches,
// idling the cluster: noop views keep spinning, but nothing is delivered
// and no new checkpoint is ever cut.
type cappedSource struct {
	inner simnet.BatchSource
	left  int
}

func (s *cappedSource) Next(instance int32, now time.Duration) *types.Batch {
	if s.left <= 0 {
		return nil
	}
	b := s.inner.Next(instance, now)
	if b != nil {
		s.left--
	}
	return b
}

// TestIdleClusterRejoin: a replica restarted into an idle cluster — every
// client batch long delivered, so no new checkpoint cut (and hence no fresh
// attestation broadcast) will ever happen — must still discover the stable
// frontier and install it. Regression: detection used to depend entirely on
// hearing cut-time Checkpoint broadcasts, which were never retransmitted;
// peers silently dropped the rejoiner's pre-gcFloor Syncs, the
// pre-checkpoint chain payloads were GC'd, and the rejoiner wedged until
// new client traffic produced the next cut. The retransmission-heartbeat
// re-advertisement closes this.
func TestIdleClusterRejoin(t *testing.T) {
	const (
		n, m   = 4, 2
		victim = types.NodeID(3)
	)
	// With m = 2, the victim is the view-1 primary of no instance, so the
	// restarted replica emits nothing below the veterans' GC floor before
	// rapid view synchronization pulls it to the live views: the heartbeat
	// is its only detection path.
	tune := func(cfg *core.Config) {
		cfg.InitialRecordingTimeout = 20 * time.Millisecond
		cfg.InitialCertifyTimeout = 20 * time.Millisecond
		cfg.CheckpointInterval = 8
	}
	scfg := simnet.DefaultConfig(n)
	scfg.BaseHandlerCost = time.Microsecond
	sim := simnet.New(scfg)
	src := loadgen.NewSource(m, 8, loadgen.DefaultWorkload(10))
	sim.SetBatchSource(&cappedSource{inner: src, left: 48})
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, (n-1)/3, 0)
	sim.SetProtocol(simnet.ClientNode, col)
	replicas := make([]*core.Replica, n)
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(n, m)
		tune(&cfg)
		replicas[i] = core.New(sim.Context(types.NodeID(i)), cfg)
		sim.SetProtocol(types.NodeID(i), replicas[i])
	}
	sim.Start()

	sim.Run(2 * time.Second)
	if replicas[0].StableHeight() == 0 {
		t.Fatal("setup: veterans never stabilized a checkpoint before the idle phase")
	}
	idleDelivered := replicas[0].Delivered
	sim.SetDown(victim, true)
	sim.Run(200 * time.Millisecond)

	var revived *core.Replica
	sim.Schedule(sim.Now(), func() {
		sim.Restart(victim, func(ctx protocol.Context) protocol.Protocol {
			cfg := core.DefaultConfig(n, m)
			tune(&cfg)
			revived = core.New(ctx, cfg)
			return revived
		})
	})
	sim.Run(3 * time.Second)

	if revived == nil {
		t.Fatal("restart hook never ran")
	}
	if replicas[0].Delivered != idleDelivered {
		t.Fatalf("scenario not idle: veterans delivered %d then %d",
			idleDelivered, replicas[0].Delivered)
	}
	if revived.StableHeight() == 0 {
		t.Fatalf("replica restarted into an idle cluster never installed the stable checkpoint (delivered %d, veterans stable at %d)",
			revived.Delivered, replicas[0].StableHeight())
	}
	if got, want := revived.StableHeight(), replicas[0].StableHeight(); got != want {
		t.Fatalf("revived stable height %d, veterans at %d", got, want)
	}
}
