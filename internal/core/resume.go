package core

import (
	"errors"
	"fmt"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// This file implements the crash-restart path of the checkpoint subsystem:
// a replica that persisted a stable checkpoint certificate (internal/wal's
// manifest) rehydrates consensus from it at construction instead of
// rejoining as an amnesiac. The restart sequence mirrors installState —
// delivery frontier at the certificate height, anchors as per-instance
// resume points, a synthesized own attestation — except the ledger blocks
// come from local segments (replayed and re-verified by ledger.Restore)
// rather than a network chunk, and only the suffix past the local head is
// ever fetched.

// ResumeState is the locally persisted stable checkpoint a restarting
// replica resumes from. It carries exactly the StateChunk fields that are
// protocol state; the ledger blocks ride separately through the execution
// layer's restart path.
type ResumeState struct {
	Cert     types.CheckpointCert
	ExecHash types.Digest
	Resume   types.Digest // chain-resume hash at the certified height
	Anchors  []types.Anchor

	// SnapshotHeight/SnapshotExec record the binding of the execution
	// snapshot the restart path restored into its table, if any — zero when
	// the table starts empty and rebuilds by forward-replay. Set by the
	// execution layer after it decoded the recovered snapshot; VerifyResume
	// re-checks the binding against the certificate (defense in depth on top
	// of the WAL's recovery-time verification) so a mismatched table is
	// caught before the replica advertises its head.
	SnapshotHeight uint64
	SnapshotExec   types.Digest
}

// VerifyResume validates a persisted resume state against a configuration
// before it is trusted: structural shape, the state-hash preimage, and —
// synchronously, this is boot time — every certificate signature. A resume
// that fails here must be discarded (start fresh and rejoin over the
// network); installing unverified local state would let a tampered disk
// teleport a replica onto a forged frontier.
func VerifyResume(res *ResumeState, cfg Config, prov crypto.Provider) error {
	if res == nil {
		return errors.New("core: nil resume state")
	}
	if cfg.CheckpointInterval <= 0 {
		return errors.New("core: resume requires checkpointing enabled")
	}
	h := res.Cert.Height
	if h == 0 {
		return errors.New("core: resume certificate at height 0")
	}
	if h%uint64(cfg.CheckpointInterval) != 0 {
		return fmt.Errorf("core: resume height %d not aligned to interval %d", h, cfg.CheckpointInterval)
	}
	if len(res.Anchors) != cfg.Instances {
		return fmt.Errorf("core: resume carries %d anchors, config has %d instances", len(res.Anchors), cfg.Instances)
	}
	q := protocol.Quorum(cfg.N, cfg.F)
	if len(res.Cert.Sigs) < q || crypto.DistinctSigners(res.Cert.Sigs) < q {
		return fmt.Errorf("core: resume certificate has %d signers, quorum is %d", crypto.DistinctSigners(res.Cert.Sigs), q)
	}
	for _, sig := range res.Cert.Sigs {
		if sig.Signer < 0 || int(sig.Signer) >= cfg.N {
			return fmt.Errorf("core: resume certificate signed by non-replica %d", sig.Signer)
		}
	}
	if types.CheckpointStateHash(h, res.ExecHash, res.Resume, res.Anchors) != res.Cert.StateHash {
		return errors.New("core: resume preimage does not match the attested state hash")
	}
	claim := types.CheckpointBytes(h, res.Cert.StateHash)
	for _, sig := range res.Cert.Sigs {
		if err := prov.Verify(sig, claim); err != nil {
			return fmt.Errorf("core: resume certificate signature (replica %d): %w", sig.Signer, err)
		}
	}
	if res.SnapshotHeight != 0 {
		// A restored table must be the exact state the certificate attests:
		// same cut, same execution hash (which the preimage check above just
		// tied to the certificate). A snapshot from any other cut silently
		// serving reads would be an unattested table.
		if res.SnapshotHeight != h {
			return fmt.Errorf("core: restored snapshot at height %d, certificate at %d", res.SnapshotHeight, h)
		}
		if res.SnapshotExec != res.ExecHash {
			return errors.New("core: restored snapshot exec hash does not match the certificate preimage")
		}
	}
	return nil
}

// applyResume rehydrates ordering-stage state from a verified resume at
// construction time (before Start, so no posts are needed): the delivery
// frontier jumps to the certified cut, the stable checkpoint and execution
// hash are restored, an own attestation is synthesized (the replica holds
// exactly the attested state — its ledger was re-verified against the
// certificate by the restart path), and the per-instance frontiers advance
// to the anchors. Start then posts installAnchor per instance so each
// shard re-enters the rotation from its anchor.
func (r *Replica) applyResume(res *ResumeState) {
	h := res.Cert.Height
	r.Delivered = h
	r.deliveredMirror.Store(h)
	r.ckpt.execHash = res.ExecHash
	copy(r.ckpt.anchors, res.Anchors)
	r.ckpt.stable = res.Cert
	r.ckpt.stableExec = res.ExecHash
	r.ckpt.stableResume = res.Resume
	r.ckpt.stableAnch = append([]types.Anchor(nil), res.Anchors...)
	r.ckpt.stableMirror.Store(h)
	r.ckpt.own = &types.Checkpoint{Height: h, StateHash: res.Cert.StateHash,
		Sig: r.ctx.Crypto().Sign(types.CheckpointBytes(h, res.Cert.StateHash))}
	// The batch-dedup window restarts at every cut cluster-wide (see
	// maybeCheckpoint); starting empty matches the veterans' window at this
	// cut, and deliveries above it are re-earned through consensus.
	for i, a := range res.Anchors {
		if a.View > r.ord.frontiers[i] {
			r.ord.frontiers[i] = a.View
		}
	}
	r.ord.recomputeMin()
	if r.cfg.Dissem != nil {
		r.cfg.Dissem.GCToFrontier(h)
	}
	r.resumed = true
	if res.SnapshotHeight != 0 {
		r.ctx.Logf("resumed from persisted checkpoint at height %d (execution snapshot restored)", h)
	} else {
		r.ctx.Logf("resumed from persisted checkpoint at height %d (no execution snapshot; table rebuilds by forward-replay)", h)
	}
}
