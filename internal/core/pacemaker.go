package core

import (
	"fmt"
	"time"

	"spotless/internal/types"
)

// Pacemaker is the view-synchronizer policy extracted from the instance
// state machine: it decides how long each RVS state waits (the tR/tA
// timers of §3.5) and how an idle primary paces its proposal, while the
// instance keeps the mechanics (arming timers, claiming ∅ on expiry,
// entering views). The split exists so the paper's adaptive synchronizer
// can be compared against alternatives — Cogsworth-style relay and
// Lumiere-style doubling (PAPERS.md) — under the same resolution machine
// and the same soak harness (bench.RunSoak), without any arm being able to
// touch safety-critical state.
//
// Every method runs on the owning instance's shard; implementations need no
// locking. Durations handed back are armed verbatim by the instance, so an
// implementation must respect Config.MinTimeout/MaxTimeout itself (the
// contract test suite pins this, along with the invariants the PR 3/PR 5
// guards depend on: timers re-arm after every fire, paced proposals stay
// inside the recording window, view entry is monotone).
type Pacemaker interface {
	// EnterView yields the recording timeout tR to arm when the instance
	// enters view v (state ST1: waiting for an acceptable proposal).
	EnterView(v types.View) time.Duration
	// EnterCertify yields the certify timeout tA to arm on the ST2 → ST3
	// transition (waiting for n−f matching claims).
	EnterCertify(v types.View) time.Duration
	// ProposalAccepted reports progress: the awaited view-v proposal was
	// accepted `waited` after view entry.
	ProposalAccepted(v types.View, waited time.Duration)
	// ViewCertified reports progress: view v resolved with a claim quorum
	// `waited` after the certify timer was armed.
	ViewCertified(v types.View, waited time.Duration)
	// RecordingExpired reports the recording timer firing in view v (the
	// instance claims ∅ and moves to ST2).
	RecordingExpired(v types.View)
	// CertifyExpired reports the certify timer firing in view v (the
	// instance abandons the view).
	CertifyExpired(v types.View)
	// IdleDelay yields the pacing delay for a primary with no client batch
	// in view v: 0 proposes the no-op filler immediately, a positive delay
	// re-checks the queue on a TimerPropose. The delay must stay at or
	// below half the armed recording timeout, or backups claim(∅) before
	// the paced proposal lands (see propose).
	IdleDelay(v types.View) time.Duration
	// Timeouts exposes the current (tR, tA) pair for metrics and tests.
	Timeouts() (tR, tA time.Duration)
}

// PacemakerFactory builds one Pacemaker per instance shard.
type PacemakerFactory func(instance int32, cfg Config) Pacemaker

// PacemakerArms lists the built-in bake-off arms in display order.
var PacemakerArms = []string{"spotless", "relay", "doubling"}

// PacemakerByName resolves a bake-off arm by name ("" selects the paper's
// adaptive synchronizer).
func PacemakerByName(name string) (PacemakerFactory, error) {
	switch name {
	case "", "spotless":
		return func(_ int32, cfg Config) Pacemaker { return newSpotlessPacemaker(cfg) }, nil
	case "relay":
		return func(_ int32, cfg Config) Pacemaker { return newRelayPacemaker(cfg) }, nil
	case "doubling":
		return func(_ int32, cfg Config) Pacemaker { return newDoublingPacemaker(cfg) }, nil
	}
	return nil, fmt.Errorf("unknown pacemaker %q (have %v)", name, PacemakerArms)
}

// newPacemaker resolves the configured arm for one instance. Config errors
// are programmer errors at this layer; the cmd binaries validate the
// operator flag through PacemakerByName before construction.
func (r *Replica) newPacemaker(instance int32) Pacemaker {
	if r.cfg.PacemakerFactory != nil {
		return r.cfg.PacemakerFactory(instance, r.cfg)
	}
	f, err := PacemakerByName(r.cfg.Pacemaker)
	if err != nil {
		panic(err)
	}
	return f(instance, r.cfg)
}

// idlePacing caps the configured idle backoff at half the current recording
// timeout: the adaptive timers can shrink below the configured backoff, and
// a wait outliving tR would let every backup claim(∅) before the paced
// proposal goes out. All arms share the cap — it is a liveness envelope,
// not a policy choice.
func idlePacing(cfg Config, tR time.Duration) time.Duration {
	d := cfg.IdleBackoff
	if d <= 0 {
		return 0
	}
	if tR/2 < d {
		d = tR / 2
	}
	return d
}

// ---------------------------------------------------------------------------
// spotless: the paper's adaptive synchronizer (§3.5)
// ---------------------------------------------------------------------------

// spotlessPacemaker reproduces the instance's original welded-in logic
// bit-for-bit: halve a timer when the awaited event arrives within half the
// timeout, add ε after timeouts in consecutive views, clamp to
// [MinTimeout, MaxTimeout].
type spotlessPacemaker struct {
	cfg    Config
	tR, tA time.Duration
	// Sentinels: a first timeout at view 1 is not "consecutive".
	lastExpiredR types.View
	lastExpiredA types.View
}

func newSpotlessPacemaker(cfg Config) *spotlessPacemaker {
	return &spotlessPacemaker{
		cfg:          cfg,
		tR:           cfg.InitialRecordingTimeout,
		tA:           cfg.InitialCertifyTimeout,
		lastExpiredR: ^types.View(0) - 1,
		lastExpiredA: ^types.View(0) - 1,
	}
}

func (p *spotlessPacemaker) EnterView(types.View) time.Duration    { return p.tR }
func (p *spotlessPacemaker) EnterCertify(types.View) time.Duration { return p.tA }

func (p *spotlessPacemaker) ProposalAccepted(_ types.View, waited time.Duration) {
	// Halve tR when the awaited proposal arrived within half the timeout.
	if waited < p.tR/2 {
		p.tR = clampTimeout(p.tR/2, p.cfg)
	}
}

func (p *spotlessPacemaker) ViewCertified(_ types.View, waited time.Duration) {
	if waited < p.tA/2 {
		p.tA = clampTimeout(p.tA/2, p.cfg)
	}
}

func (p *spotlessPacemaker) RecordingExpired(v types.View) {
	if p.lastExpiredR+1 == v {
		p.tR = clampTimeout(p.tR+p.cfg.Epsilon, p.cfg)
	}
	p.lastExpiredR = v
}

func (p *spotlessPacemaker) CertifyExpired(v types.View) {
	if p.lastExpiredA+1 == v {
		p.tA = clampTimeout(p.tA+p.cfg.Epsilon, p.cfg)
	}
	p.lastExpiredA = v
}

func (p *spotlessPacemaker) IdleDelay(types.View) time.Duration {
	return idlePacing(p.cfg, p.tR)
}

func (p *spotlessPacemaker) Timeouts() (time.Duration, time.Duration) { return p.tR, p.tA }

// ---------------------------------------------------------------------------
// relay: Cogsworth-style linear escalation
// ---------------------------------------------------------------------------

// relayPacemaker models Cogsworth's pacemaker shape (PAPERS.md): instead of
// growing timeouts geometrically, Cogsworth relays view-change traffic
// through successive leaders and keeps the base timeout flat, escalating
// only linearly while a view genuinely fails to form. SpotLess's Sync
// retransmission heartbeat plays the relay role here, so the arm reduces to
// the timeout policy: tR = base + k·ε after k consecutive expiries, reset
// to base on any progress. Recovers instantly after isolated glitches but
// ramps slowly under long asynchrony.
type relayPacemaker struct {
	cfg            Config
	tR, tA         time.Duration
	failsR, failsA int
}

func newRelayPacemaker(cfg Config) *relayPacemaker {
	return &relayPacemaker{
		cfg: cfg,
		tR:  cfg.InitialRecordingTimeout,
		tA:  cfg.InitialCertifyTimeout,
	}
}

func (p *relayPacemaker) EnterView(types.View) time.Duration    { return p.tR }
func (p *relayPacemaker) EnterCertify(types.View) time.Duration { return p.tA }

func (p *relayPacemaker) ProposalAccepted(types.View, time.Duration) {
	p.failsR = 0
	p.tR = clampTimeout(p.cfg.InitialRecordingTimeout, p.cfg)
}

func (p *relayPacemaker) ViewCertified(types.View, time.Duration) {
	p.failsA = 0
	p.tA = clampTimeout(p.cfg.InitialCertifyTimeout, p.cfg)
}

func (p *relayPacemaker) RecordingExpired(types.View) {
	p.failsR++
	p.tR = clampTimeout(p.cfg.InitialRecordingTimeout+time.Duration(p.failsR)*p.cfg.Epsilon, p.cfg)
}

func (p *relayPacemaker) CertifyExpired(types.View) {
	p.failsA++
	p.tA = clampTimeout(p.cfg.InitialCertifyTimeout+time.Duration(p.failsA)*p.cfg.Epsilon, p.cfg)
}

func (p *relayPacemaker) IdleDelay(types.View) time.Duration {
	return idlePacing(p.cfg, p.tR)
}

func (p *relayPacemaker) Timeouts() (time.Duration, time.Duration) { return p.tR, p.tA }

// ---------------------------------------------------------------------------
// doubling: Lumiere-style exponential backoff
// ---------------------------------------------------------------------------

// doublingPacemaker models the Lumiere/classic-BFT view-doubling shape
// (PAPERS.md): every expiry doubles the timer (clamped at MaxTimeout),
// any progress snaps it back to the initial value. Reaches a
// GST-compatible timeout in O(log Δ) failed views — faster than relay
// under long asynchrony — but over-waits after isolated glitches and
// never adapts below the configured initial value on fast networks.
type doublingPacemaker struct {
	cfg    Config
	tR, tA time.Duration
}

func newDoublingPacemaker(cfg Config) *doublingPacemaker {
	return &doublingPacemaker{
		cfg: cfg,
		tR:  cfg.InitialRecordingTimeout,
		tA:  cfg.InitialCertifyTimeout,
	}
}

func (p *doublingPacemaker) EnterView(types.View) time.Duration    { return p.tR }
func (p *doublingPacemaker) EnterCertify(types.View) time.Duration { return p.tA }

func (p *doublingPacemaker) ProposalAccepted(types.View, time.Duration) {
	p.tR = clampTimeout(p.cfg.InitialRecordingTimeout, p.cfg)
}

func (p *doublingPacemaker) ViewCertified(types.View, time.Duration) {
	p.tA = clampTimeout(p.cfg.InitialCertifyTimeout, p.cfg)
}

func (p *doublingPacemaker) RecordingExpired(types.View) {
	p.tR = clampTimeout(2*p.tR, p.cfg)
}

func (p *doublingPacemaker) CertifyExpired(types.View) {
	p.tA = clampTimeout(2*p.tA, p.cfg)
}

func (p *doublingPacemaker) IdleDelay(types.View) time.Duration {
	return idlePacing(p.cfg, p.tR)
}

func (p *doublingPacemaker) Timeouts() (time.Duration, time.Duration) { return p.tR, p.tA }
