package core

import (
	"testing"

	"spotless/internal/dissem"
	"spotless/internal/types"
)

// newDissemReplica is the whitebox harness of the digest-ordering claim
// gate: replica 0 of n=4 with one instance and a bound dissemination layer.
func newDissemReplica() (*Replica, *fakeContext) {
	ctx := newFakeContext(0, 4)
	cfg := DefaultConfig(4, 1)
	cfg.Dissem = dissem.New(dissem.Config{N: 4, F: 1})
	r := New(ctx, cfg)
	r.Start()
	return r, ctx
}

// dissemBatch builds a payload batch with a valid content-derived ID.
func dissemBatch(seq uint64) *types.Batch {
	b := &types.Batch{
		Txns:      []types.Transaction{{Client: types.ClientIDBase, Seq: seq, Op: types.OpWrite, Key: seq, Value: []byte("v")}},
		Submitted: 1,
	}
	b.ID = types.ComputeBatchID(b.Txns)
	return b
}

// scanDissem reports whether a claim for the proposal and a backfill pull
// for the batch went out.
func scanDissem(ctx *fakeContext, propDigest, batchID types.Digest) (claimed, pulled bool) {
	for _, m := range ctx.sent {
		switch s := m.(type) {
		case *types.Sync:
			if !s.Claim.Empty && s.Claim.Digest == propDigest {
				claimed = true
			}
		case *types.BatchDigest:
			if s.Pull && s.Batch != nil && s.Batch.ID == batchID {
				pulled = true
			}
		}
	}
	return
}

// TestDigestProposalRefusesUncertified: under digest ordering a proposal
// referencing a digest without an availability certificate is never
// claimed — the replica backfills (the Ask analog of the dissemination
// layer) and claims only once the certificate arrives. An uncertified
// digest therefore can never gather n−f claims, so it can never commit —
// the certified-batch check folded into the PR 5 resolution rules.
func TestDigestProposalRefusesUncertified(t *testing.T) {
	r, ctx := newDissemReplica()

	full := dissemBatch(1)
	// The proposal carries the digest-mode stub: ID only, no payload.
	stub := &types.Batch{ID: full.ID, Submitted: full.Submitted}
	p := &types.Propose{Instance: 0, View: 1, Batch: stub, Parent: types.Justification{Kind: types.JustGenesis}}
	d := p.Digest()
	p.Sig = provFor(1).Sign(d[:])

	r.HandleMessage(1, p)
	claimed, pulled := scanDissem(ctx, d, full.ID)
	if claimed {
		t.Fatal("replica claimed a proposal whose digest has no availability certificate")
	}
	if !pulled {
		t.Fatal("replica did not backfill the unknown digest")
	}

	// The certificate arrives (ingress-verified n−f ack signatures): the
	// buffered proposal must now be re-evaluated and claimed.
	ack := types.AckBytes(full.ID)
	cert := &types.BatchCert{BatchID: full.ID, Sigs: []types.Signature{
		provFor(1).Sign(ack), provFor(2).Sign(ack), provFor(3).Sign(ack),
	}}
	r.HandleMessage(1, cert)
	if claimed, _ = scanDissem(ctx, d, full.ID); !claimed {
		t.Fatal("replica did not claim the proposal after its digest certified")
	}
}

// TestInlinePayloadRefusesUncertifiedDigest: a Byzantine primary cannot
// bypass the certificate gate by inlining the full payload in its proposal
// — the gate binds to the digest, not to whatever bytes rode the wire.
func TestInlinePayloadRefusesUncertifiedDigest(t *testing.T) {
	r, ctx := newDissemReplica()

	full := dissemBatch(2)
	p := &types.Propose{Instance: 0, View: 1, Batch: full, Parent: types.Justification{Kind: types.JustGenesis}}
	d := p.Digest()
	p.Sig = provFor(1).Sign(d[:])

	r.HandleMessage(1, p)
	if claimed, _ := scanDissem(ctx, d, full.ID); claimed {
		t.Fatal("inline payload bypassed the availability-certificate gate")
	}
}
