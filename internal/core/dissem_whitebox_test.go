package core

import (
	"testing"

	"spotless/internal/dissem"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// newDissemReplica is the whitebox harness of the digest-ordering claim
// gate: replica 0 of n=4 with one instance and a bound dissemination layer.
func newDissemReplica() (*Replica, *fakeContext) {
	ctx := newFakeContext(0, 4)
	cfg := DefaultConfig(4, 1)
	cfg.Dissem = dissem.New(dissem.Config{N: 4, F: 1})
	r := New(ctx, cfg)
	r.Start()
	return r, ctx
}

// dissemBatch builds a payload batch with a valid content-derived ID.
func dissemBatch(seq uint64) *types.Batch {
	b := &types.Batch{
		Txns:      []types.Transaction{{Client: types.ClientIDBase, Seq: seq, Op: types.OpWrite, Key: seq, Value: []byte("v")}},
		Submitted: 1,
	}
	b.ID = types.ComputeBatchID(b.Txns)
	return b
}

// scanDissem reports whether a claim for the proposal and a backfill pull
// for the batch went out.
func scanDissem(ctx *fakeContext, propDigest, batchID types.Digest) (claimed, pulled bool) {
	for _, m := range ctx.sent {
		switch s := m.(type) {
		case *types.Sync:
			if !s.Claim.Empty && s.Claim.Digest == propDigest {
				claimed = true
			}
		case *types.BatchDigest:
			if s.Pull && s.Batch != nil && s.Batch.ID == batchID {
				pulled = true
			}
		}
	}
	return
}

// TestDigestProposalRefusesUncertified: under digest ordering a proposal
// referencing a digest without an availability certificate is never
// claimed — the replica backfills (the Ask analog of the dissemination
// layer) and claims only once the certificate arrives. An uncertified
// digest therefore can never gather n−f claims, so it can never commit —
// the certified-batch check folded into the PR 5 resolution rules.
func TestDigestProposalRefusesUncertified(t *testing.T) {
	r, ctx := newDissemReplica()

	full := dissemBatch(1)
	// The proposal carries the digest-mode stub: ID only, no payload.
	stub := &types.Batch{ID: full.ID, Submitted: full.Submitted}
	p := &types.Propose{Instance: 0, View: 1, Batch: stub, Parent: types.Justification{Kind: types.JustGenesis}}
	d := p.Digest()
	p.Sig = provFor(1).Sign(d[:])

	r.HandleMessage(1, p)
	claimed, pulled := scanDissem(ctx, d, full.ID)
	if claimed {
		t.Fatal("replica claimed a proposal whose digest has no availability certificate")
	}
	if !pulled {
		t.Fatal("replica did not backfill the unknown digest")
	}

	// The certificate arrives (ingress-verified n−f ack signatures): the
	// buffered proposal must now be re-evaluated and claimed.
	ack := types.AckBytes(full.ID)
	cert := &types.BatchCert{BatchID: full.ID, Sigs: []types.Signature{
		provFor(1).Sign(ack), provFor(2).Sign(ack), provFor(3).Sign(ack),
	}}
	r.HandleMessage(1, cert)
	if claimed, _ = scanDissem(ctx, d, full.ID); !claimed {
		t.Fatal("replica did not claim the proposal after its digest certified")
	}
}

// certFor assembles an ingress-shaped availability certificate for a batch.
func certFor(id types.Digest) *types.BatchCert {
	ack := types.AckBytes(id)
	return &types.BatchCert{BatchID: id, Sigs: []types.Signature{
		provFor(1).Sign(ack), provFor(2).Sign(ack), provFor(3).Sign(ack),
	}}
}

// TestOrderedDigestRefusedByClaimGate: a proposal re-referencing a digest
// the replica already delivered is never claimed — a replayed certificate
// of an old batch (whose payload every correct replica may have evicted)
// must not be able to commit again and wedge delivery on an impossible
// backfill.
func TestOrderedDigestRefusedByClaimGate(t *testing.T) {
	r, ctx := newDissemReplica()

	full := dissemBatch(3)
	r.HandleMessage(1, &types.BatchDigest{Origin: 1, Batch: full})
	r.HandleMessage(1, certFor(full.ID))
	r.cfg.Dissem.Delivered(full.ID, 1)

	stub := &types.Batch{ID: full.ID, Submitted: full.Submitted}
	p := &types.Propose{Instance: 0, View: 1, Batch: stub, Parent: types.Justification{Kind: types.JustGenesis}}
	d := p.Digest()
	p.Sig = provFor(1).Sign(d[:])
	r.HandleMessage(1, p)
	if claimed, _ := scanDissem(ctx, d, full.ID); claimed {
		t.Fatal("replica claimed a proposal re-referencing an already-delivered digest")
	}
}

// TestSeenBatchDupSkipsResolution: a committed duplicate of a batch inside
// the dedup window is popped and discarded WITHOUT resolving its payload —
// parking the drain on a backfill there would stall total-order delivery
// behind a payload that may no longer exist anywhere.
func TestSeenBatchDupSkipsResolution(t *testing.T) {
	r, ctx := newDissemReplica()

	full := dissemBatch(4)
	r.ord.seenBatch[full.ID] = true // delivered earlier in the window
	stub := &types.Batch{ID: full.ID, Submitted: full.Submitted}
	r.InjectCommit(0, 1, stub, types.Digest{0xd0})

	if len(r.ord.heap) != 0 {
		t.Fatal("drain parked on the duplicate instead of discarding it")
	}
	if r.Delivered != 0 {
		t.Fatal("duplicate batch delivered twice")
	}
	if _, pulled := scanDissem(ctx, types.Digest{0xd0}, full.ID); pulled {
		t.Fatal("drain backfilled a payload it does not need")
	}
}

// TestDigestWaiterFlushGC: waiter registrations that no notify will ever
// fire for (a garbage digest from a Byzantine proposal, abandoned by its
// instance) are garbage-collected by the periodic flush, while genuinely
// pending waits re-register themselves through the re-posted retry.
func TestDigestWaiterFlushGC(t *testing.T) {
	r, _ := newDissemReplica()

	// Abandoned wait: no pending proposal references this digest, so the
	// re-posted retry re-registers nothing.
	r.awaitDigest(0, types.Digest{0xab})
	r.awaitDigest(protocol.OrderingShard, types.Digest{0xcd})
	r.flushDigestWaiters()
	r.dwMu.Lock()
	left := len(r.dWaiters)
	r.dwMu.Unlock()
	if left != 0 {
		t.Fatalf("%d abandoned waiter entries survived the flush, want 0", left)
	}

	// Live wait: an uncertified proposal is still buffered, so the flush's
	// retry re-evaluates it and re-registers the waiter.
	full := dissemBatch(5)
	stub := &types.Batch{ID: full.ID, Submitted: full.Submitted}
	p := &types.Propose{Instance: 0, View: 1, Batch: stub, Parent: types.Justification{Kind: types.JustGenesis}}
	d := p.Digest()
	p.Sig = provFor(1).Sign(d[:])
	r.HandleMessage(1, p)
	r.flushDigestWaiters()
	r.dwMu.Lock()
	_, live := r.dWaiters[full.ID]
	r.dwMu.Unlock()
	if !live {
		t.Fatal("flush dropped a genuinely pending digest wait")
	}
}

// TestInlinePayloadRefusesUncertifiedDigest: a Byzantine primary cannot
// bypass the certificate gate by inlining the full payload in its proposal
// — the gate binds to the digest, not to whatever bytes rode the wire.
func TestInlinePayloadRefusesUncertifiedDigest(t *testing.T) {
	r, ctx := newDissemReplica()

	full := dissemBatch(2)
	p := &types.Propose{Instance: 0, View: 1, Batch: full, Parent: types.Justification{Kind: types.JustGenesis}}
	d := p.Digest()
	p.Sig = provFor(1).Sign(d[:])

	r.HandleMessage(1, p)
	if claimed, _ := scanDissem(ctx, d, full.ID); claimed {
		t.Fatal("inline payload bypassed the availability-certificate gate")
	}
}
