package core

import (
	"spotless/internal/types"
)

// This file is the per-view resolution state machine and the lock/commit
// choke point of one SpotLess instance — the re-derivation of §3.3's
// acceptance and locking rules against Lemma 3.4 and Theorem 3.5.
//
// # The safety argument, re-derived
//
// Call a proposal P *certified* when n−f distinct replicas claimed P in P's
// own view (proposal.claimQuorum: a local claim tally, n−f collected sync
// votes, or a verified embedded certificate — all three are the same
// quorum). Certification is the only evidence tier strong enough to carry
// quorum intersection: two certified proposals of one view would need
// 2(n−f) claims among n replicas, forcing ≥ n−2f ≥ f+1 double-claimers —
// impossible with ≤ f faults and one claim per view (Theorem 3.2's
// premise). The same intersection makes an n−f ∅-quorum and a certified
// proposal of one view mutually exclusive: resolving a view as ∅ requires
// exactly the evidence that no conflicting tip can hold an n−f claim
// quorum in that view.
//
// Commit (Definition 3.3, tightened): P commits when its view triple
// P ← C ← T occupies three consecutive views v, v+1, v+2 and ALL THREE
// links are certified. Lemma 3.4 then reads: any conflicting quorum must
// intersect one of the triple's three claim quorums in an honest replica.
//
// For that honest replica to actually block the conflict, its vote rules
// must remember the triple. Three rules close the loop (Theorem 3.5):
//
//   - ACV (consecutive-view vote rule): claiming a proposal whose parent
//     sits in the directly preceding view — the only shape a commit triple
//     can have — requires the parent to be certified locally. The steady
//     state pays nothing: a replica enters view v+1 through view v's claim
//     quorum, which is exactly the parent's certification.
//   - Lock rule (the single choke point, raiseLock): the lock rises only
//     to the PARENT of a certified proposal (plus checkpoint anchors,
//     which carry their own n−f certificate). An honest claimant of the
//     triple's tip T certified C (ACV), so it locked C's parent P before
//     its claim could complete any conflicting quorum. Locks stay bounded
//     by the globally highest certified view, so a primary extending the
//     highest certified proposal always satisfies A3 at every honest
//     replica — the liveness escape never closes.
//   - A3 (liveness rule, strengthened): abandoning the locked chain
//     requires a CERTIFIED parent in a view above the lock. The pre-refactor
//     rule accepted any conditionally prepared parent (f+1 CP endorsements
//     guarantee a single honest endorser, not a quorum), which let honest
//     replicas complete claim quorums for chains conflicting with a
//     committed triple — the fork-commit path of the PR 4 ROADMAP
//     discovery. Config.UnsafeLegacyResolution retains that rule as the
//     safety drill's negative control.
//
// With these rules, walk any conflicting proposal X certified at the
// minimal view u > v: u cannot fall inside the triple (intersection), so
// u > v+2 and X's quorum intersects T's in an honest r with lock ≥ P.
// A2 would place the lock inside X's ancestry (making X extend P);
// A3 would need a certified parent above lock.view and below u, which
// minimality forces onto P's branch. Either way X extends P — no
// conflicting certification, hence no conflicting commit, exists.

// Per-view resolution phases (the explicit state machine the view
// bookkeeping advances through; phases only move forward).
type resPhase uint8

const (
	// resOpen: no known proposal recorded for the view yet.
	resOpen resPhase = iota
	// resProposed: a known, well-formed proposal was recorded (S1–S2).
	resProposed
	// resClaimed: this replica issued its one claim for the view — for a
	// proposal digest or for ∅.
	resClaimed
	// resResolvedBatch: some proposal of the view is certified (n−f claim
	// quorum in the view). By quorum intersection this excludes resResolvedEmpty.
	resResolvedBatch
	// resResolvedEmpty: n−f distinct ∅-claims — the quorum-intersection
	// evidence that no proposal of this view can be certified.
	resResolvedEmpty
	// resCommitted: the view's certified proposal committed (three
	// consecutive certified views on its chain).
	resCommitted
)

// phaseRank orders phases for the monotone advance; the two resolved
// outcomes share a rank because they are mutually exclusive, not ordered.
func phaseRank(p resPhase) int {
	switch p {
	case resResolvedBatch, resResolvedEmpty:
		return 3
	case resCommitted:
		return 4
	default:
		return int(p)
	}
}

// advancePhase moves a view's resolution phase forward; backward moves are
// ignored (late messages re-derive already-passed milestones). A view that
// resolved ∅ and later shows a certified proposal (or vice versa) proves
// more than f faults — logged, never adopted silently.
func (in *Instance) advancePhase(v types.View, next resPhase) {
	s := in.vs(v)
	cur := s.phase
	if phaseRank(next) <= phaseRank(cur) {
		return
	}
	if (cur == resResolvedEmpty && next == resResolvedBatch) ||
		(cur == resResolvedBatch && next == resResolvedEmpty) {
		in.r.ctx.Logf("spotless: instance %d view %d resolved both ∅ and a certified proposal — more than f faulty replicas", in.id, v)
		return
	}
	if next == resCommitted && cur == resResolvedEmpty {
		in.r.ctx.Logf("spotless: instance %d view %d committed after resolving ∅ — more than f faulty replicas", in.id, v)
	}
	s.phase = next
}

// raiseLock is the single point where Plock rises (§3.3, re-derived): to
// the parent of a proposal that just certified, or to a stable-checkpoint
// anchor (installAnchor/gcToAnchor — the checkpoint certificate stands in
// for the per-view quorums). Locks are monotone in view.
func (in *Instance) raiseLock(p *proposal) {
	if p == nil || p.view <= in.lock.view {
		return
	}
	in.lock = p
}

// certify records that p holds an n−f claim quorum in its own view — the
// certification event every safety-relevant transition hangs off:
//
//   - the view resolves to p (resResolvedBatch),
//   - the lock rises to p's parent (deferred to linkKnown for placeholders),
//   - the commit rule re-fires for every certified tip whose triple p may
//     have completed,
//   - a buffered proposal waiting on p's certification (ACV / A3) retries.
//
// Under UnsafeLegacyResolution the lock instead rises through the
// conditionally-committed path in deriveStates, as the seed did.
func (in *Instance) certify(p *proposal) {
	if p.claimQuorum || p == in.genesis {
		return
	}
	p.claimQuorum = true
	in.advancePhase(p.view, resResolvedBatch)
	if !in.r.cfg.UnsafeLegacyResolution {
		if p.parent != nil {
			in.raiseLock(p.parent)
		}
		in.certTips = append(in.certTips, p)
		in.maybeCommitChains()
	} else {
		in.maybeCommitChain(p)
	}
	in.retryPending()
}

// resolveEmpty records the ∅-resolution of view v: n−f distinct ∅-claims.
// This is the only place a view is decided batch-less, and it demands the
// full quorum — the intersection evidence that no conflicting tip can hold
// an n−f claim quorum in v (see the file comment). Callers advance the view
// themselves; a view that merely times out (tA) advances UNRESOLVED and may
// still resolve either way through late Syncs.
func (in *Instance) resolveEmpty(v types.View) {
	in.advancePhase(v, resResolvedEmpty)
}

// maybeCommitChains re-evaluates the commit rule for every certified,
// not-yet-committed tip. Certifications complete in any order (a late Sync
// can certify the triple's middle or base after its tip), so each
// certification event re-checks all live tips; the slice stays small — one
// entry per certified view awaiting its triple.
func (in *Instance) maybeCommitChains() {
	keep := in.certTips[:0]
	for _, p := range in.certTips {
		in.maybeCommitChain(p)
		if !p.committed && p.view >= in.gcFloor {
			keep = append(keep, p)
		}
	}
	// Zero the dropped tail so committed proposals are collectable.
	for i := len(keep); i < len(in.certTips); i++ {
		in.certTips[i] = nil
	}
	in.certTips = keep
}

// ResolutionPhase reports the resolution phase of a view (testing).
func (in *Instance) ResolutionPhase(v types.View) uint8 {
	if s, ok := in.views[v]; ok {
		return uint8(s.phase)
	}
	return uint8(resOpen)
}
