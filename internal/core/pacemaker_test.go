package core

import (
	"testing"
	"time"

	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Pacemaker contract suite: every bake-off arm must uphold the invariants
// the resolution machine (and the PR 3/PR 5 guards) depend on, so a new
// synchronizer cannot silently violate them:
//
//  1. a timeout always re-arms after firing (the view machine never goes
//     timerless),
//  2. the MinTimeout floor and MaxTimeout ceiling hold under any event
//     sequence,
//  3. paced proposals never fire after the replica's own claim(∅),
//  4. view entry is monotone.
//
// 1–2 are policy-level (driven against the Pacemaker interface directly);
// 3–4 are instance-level (driven through the state machine with each arm
// installed), since the guards live in the instance.

func forEachArm(t *testing.T, cfg Config, fn func(t *testing.T, arm string, pm Pacemaker)) {
	for _, arm := range PacemakerArms {
		arm := arm
		t.Run(arm, func(t *testing.T) {
			factory, err := PacemakerByName(arm)
			if err != nil {
				t.Fatal(err)
			}
			fn(t, arm, factory(0, cfg))
		})
	}
}

// TestPacemakerContractRearmAndBounds: after any expiry/progress sequence,
// the durations an arm hands back stay inside [MinTimeout, MaxTimeout] —
// positive, so the instance always re-arms a live timer.
func TestPacemakerContractRearmAndBounds(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	cfg.InitialRecordingTimeout = 40 * time.Millisecond
	cfg.InitialCertifyTimeout = 40 * time.Millisecond
	cfg.Epsilon = 7 * time.Millisecond
	cfg.MinTimeout = 10 * time.Millisecond
	cfg.MaxTimeout = 200 * time.Millisecond
	forEachArm(t, cfg, func(t *testing.T, arm string, pm Pacemaker) {
		check := func(v types.View, phase string) {
			tR := pm.EnterView(v)
			tA := pm.EnterCertify(v)
			for name, d := range map[string]time.Duration{"tR": tR, "tA": tA} {
				if d < cfg.MinTimeout || d > cfg.MaxTimeout {
					t.Fatalf("%s after %s at view %d: %v outside [%v, %v]", name, phase, v, d, cfg.MinTimeout, cfg.MaxTimeout)
				}
			}
		}
		v := types.View(1)
		// A long run of consecutive expiries: growth must cap at MaxTimeout
		// and the re-arm value must stay positive throughout.
		for i := 0; i < 100; i++ {
			pm.RecordingExpired(v)
			pm.CertifyExpired(v)
			check(v+1, "expiry")
			v++
		}
		// A long run of instant progress: shrink/reset must floor at
		// MinTimeout.
		for i := 0; i < 100; i++ {
			pm.ProposalAccepted(v, 0)
			pm.ViewCertified(v, 0)
			check(v+1, "progress")
			v++
		}
		// Alternating failure and progress keeps both inside the clamp.
		for i := 0; i < 100; i++ {
			if i%2 == 0 {
				pm.RecordingExpired(v)
			} else {
				pm.ProposalAccepted(v, time.Millisecond)
			}
			check(v+1, "alternation")
			v++
		}
	})
}

// TestPacemakerContractIdleDelay: pacing is off exactly when IdleBackoff is
// zero, and a paced delay never exceeds the configured backoff nor half
// the recording timeout the arm would arm next — the landing-window
// invariant that keeps a paced proposal inside the recording window.
func TestPacemakerContractIdleDelay(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	cfg.MinTimeout = 4 * time.Millisecond
	forEachArm(t, cfg, func(t *testing.T, arm string, pm Pacemaker) {
		if d := pm.IdleDelay(1); d != 0 {
			t.Fatalf("IdleDelay with IdleBackoff=0: got %v want 0", d)
		}
	})
	cfg.IdleBackoff = 25 * time.Millisecond
	forEachArm(t, cfg, func(t *testing.T, arm string, pm Pacemaker) {
		v := types.View(1)
		// Walk the recording timeout down (spotless halves, others reset)
		// and up (expiries) — the cap must track it the whole way.
		for i := 0; i < 50; i++ {
			if i%3 == 2 {
				pm.RecordingExpired(v)
			} else {
				pm.ProposalAccepted(v, 0)
			}
			v++
			d := pm.IdleDelay(v)
			if d <= 0 {
				t.Fatalf("IdleDelay must stay positive while IdleBackoff > 0, got %v", d)
			}
			if d > cfg.IdleBackoff {
				t.Fatalf("IdleDelay %v exceeds configured backoff %v", d, cfg.IdleBackoff)
			}
			if tR := pm.EnterView(v); d > tR/2 {
				t.Fatalf("IdleDelay %v exceeds tR/2 = %v — paced proposal would land outside the recording window", d, tR/2)
			}
		}
	})
}

// pacemakerTestReplica builds the standard 4-replica harness with the given
// arm installed.
func pacemakerTestReplica(t *testing.T, arm string, tune func(*Config)) (*Replica, *fakeContext) {
	ctx := newFakeContext(0, 4)
	cfg := DefaultConfig(4, 1)
	cfg.Pacemaker = arm
	if tune != nil {
		tune(&cfg)
	}
	r := New(ctx, cfg)
	r.Start()
	return r, ctx
}

// emptyQuorum feeds n−f empty claims for view v from the other replicas.
func emptyQuorum(r *Replica, v types.View) {
	for _, from := range []types.NodeID{1, 2, 3} {
		claim := types.Claim{View: v, Empty: true}
		r.HandleMessage(from, &types.Sync{Instance: 0, View: v, Claim: claim,
			Sig: provFor(from).Sign(types.ClaimBytes(0, claim))})
	}
}

// TestPacemakerContractTimerRearms: after a recording timer fires and the
// view resolves ∅, entering the next view arms a fresh recording timer —
// under every arm (invariant 1, instance-level).
func TestPacemakerContractTimerRearms(t *testing.T) {
	for _, arm := range PacemakerArms {
		arm := arm
		t.Run(arm, func(t *testing.T) {
			r, ctx := pacemakerTestReplica(t, arm, nil)
			in := r.Instance(0)
			for v := types.View(1); v <= 5; v++ {
				ctx.timers = nil
				r.HandleTimer(protocol.TimerTag{Kind: protocol.TimerRecording, Instance: 0, View: v})
				emptyQuorum(r, v)
				if got := in.CurrentView(); got != v+1 {
					t.Fatalf("view after ∅ resolution of %d: got %d want %d", v, got, v+1)
				}
				rearmed := false
				for _, tag := range ctx.timers {
					if tag.Kind == protocol.TimerRecording && tag.View == v+1 {
						rearmed = true
					}
				}
				if !rearmed {
					t.Fatalf("no recording timer armed for view %d after the view-%d timer fired", v+1, v)
				}
			}
		})
	}
}

// TestPacemakerContractMonotoneView: view entry never goes backwards — a
// catch-up jump moves forward, and stale timers or old-view messages never
// re-enter a left view (invariant 4).
func TestPacemakerContractMonotoneView(t *testing.T) {
	for _, arm := range PacemakerArms {
		arm := arm
		t.Run(arm, func(t *testing.T) {
			r, _ := pacemakerTestReplica(t, arm, nil)
			in := r.Instance(0)
			// f+1 replicas prove view 10 exists: catch-up jump.
			for _, from := range []types.NodeID{1, 2} {
				claim := types.Claim{View: 10, Empty: true}
				r.HandleMessage(from, &types.Sync{Instance: 0, View: 10, Claim: claim,
					Sig: provFor(from).Sign(types.ClaimBytes(0, claim))})
			}
			if got := in.CurrentView(); got != 10 {
				t.Fatalf("catch-up jump: got view %d want 10", got)
			}
			if r.Resyncs() == 0 {
				t.Fatal("catch-up jump did not count as a resync")
			}
			// Stale events from views long left must not move the view back.
			r.HandleTimer(protocol.TimerTag{Kind: protocol.TimerRecording, Instance: 0, View: 2})
			r.HandleTimer(protocol.TimerTag{Kind: protocol.TimerCertifying, Instance: 0, View: 3})
			p := buildProposal(0, 4, types.Justification{Kind: types.JustGenesis}, 0)
			r.HandleMessage(0, p)
			if got := in.CurrentView(); got != 10 {
				t.Fatalf("stale events moved the view to %d — entry must be monotone", got)
			}
		})
	}
}

// TestPacemakerContractNoProposeAfterOwnClaim: a paced (idle-backoff)
// proposal timer that fires after the replica already claimed ∅ in that
// view must not propose — the claim is a promise not to accept a late
// proposal, and a post-claim proposal would burn a client batch on a view
// nobody can vote for (invariant 3).
func TestPacemakerContractNoProposeAfterOwnClaim(t *testing.T) {
	for _, arm := range PacemakerArms {
		arm := arm
		t.Run(arm, func(t *testing.T) {
			r, ctx := pacemakerTestReplica(t, arm, func(cfg *Config) {
				cfg.IdleBackoff = 5 * time.Millisecond
			})
			in := r.Instance(0)
			// Advance to view 4 — the first view where replica 0 is primary
			// — via ∅ resolutions.
			for v := types.View(1); v <= 3; v++ {
				r.HandleTimer(protocol.TimerTag{Kind: protocol.TimerRecording, Instance: 0, View: v})
				emptyQuorum(r, v)
			}
			if got := in.CurrentView(); got != 4 {
				t.Fatalf("setup: got view %d want 4", got)
			}
			// Entering view 4 as an idle primary paced the proposal.
			paced := false
			for _, tag := range ctx.timers {
				if tag.Kind == protocol.TimerPropose && tag.View == 4 {
					paced = true
				}
			}
			if !paced {
				t.Fatal("idle primary did not pace its proposal")
			}
			// The recording timer fires first: we claim(∅) for view 4.
			r.HandleTimer(protocol.TimerTag{Kind: protocol.TimerRecording, Instance: 0, View: 4})
			if in.vs(4).ownSync == nil {
				t.Fatal("setup: recording expiry did not claim ∅")
			}
			// The paced proposal timer fires after the claim: no proposal.
			ctx.sent = nil
			r.HandleTimer(protocol.TimerTag{Kind: protocol.TimerPropose, Instance: 0, View: 4})
			for _, m := range ctx.sent {
				if p, ok := m.(*types.Propose); ok && p.View == 4 {
					t.Fatal("paced proposal fired after own claim(∅)")
				}
			}
			if in.proposedView >= 4 {
				t.Fatal("proposedView advanced after own claim(∅)")
			}
		})
	}
}
