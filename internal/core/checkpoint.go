package core

import (
	"encoding/binary"
	"sort"
	"sync/atomic"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// This file implements the checkpoint + garbage-collection + state-transfer
// subsystem. Rapid View Synchronization (§3.4) recovers a replica that
// missed a view from the matching Sync/Ask exchange but never lets anyone
// forget: every proposal and vote map is retained to serve future Asks, so
// a long-running replica grows without bound and a crashed replica can
// never catch up once peers prune. Checkpointing closes both gaps:
//
//   - every K globally delivered batches each replica broadcasts a signed
//     Checkpoint attesting (height, state hash); n−f matching attestations
//     make the checkpoint stable, and replicas then garbage-collect
//     consensus state at or below the stable per-instance anchors and
//     truncate the durable ledger (Config.Host);
//   - a replica that learns of attestations a full interval beyond its own
//     progress fetches the checkpoint (FetchState → StateChunk), verifies
//     the embedded certificate off the event loop, installs the anchors as
//     its new delivery frontier, and re-enters the CRR rotation from there
//     — the crash/recovery and lagging-replica path.
//
// The attested state hash covers the rolling execution hash over the
// globally ordered deliveries, the execution layer's durable-state digest
// (the ledger chain-resume hash), and the per-instance anchors of the cut,
// all of which are deterministic across correct replicas because the total
// order of §4.1 is.

// attest is one checkpoint attestation (the signed state hash; for the
// newest-per-signer map, also the height).
type attest struct {
	height uint64
	hash   types.Digest
	sig    types.Signature
}

// localCkpt is a snapshot this replica itself took, kept until a matching
// quorum stabilizes it (or a newer one supersedes it).
type localCkpt struct {
	stateHash   types.Digest
	execHash    types.Digest
	stateDigest types.Digest
	anchors     []types.Anchor
}

// ckptState is the replica-level checkpoint manager.
type ckptState struct {
	execHash types.Digest   // rolling hash over globally drained proposals
	anchors  []types.Anchor // last drained (view, proposal) per instance

	// tallies retains one attestation per signer for every height this
	// replica can still stabilize: interval-aligned heights in
	// (stable, stable + maxLocalCkpts·K]. The window makes the structure
	// flood-proof (at most maxLocalCkpts heights × n signers, regardless
	// of what a Byzantine replica signs) while keeping votes for a height
	// until it is stabilized or superseded — so stabilization stays live
	// under arbitrary (window-bounded) delivery skew: a replica reaching
	// height h long after its peers still finds their h attestations.
	tallies map[uint64]map[types.NodeID]attest
	// newest tracks each signer's newest attestation (any height): the
	// lagging-replica detector, O(n).
	newest map[types.NodeID]attest
	local  map[uint64]localCkpt // own snapshots awaiting stabilization

	stable       types.CheckpointCert
	stableExec   types.Digest
	stableResume types.Digest
	stableAnch   []types.Anchor
	stableMirror atomic.Uint64 // stable height for off-loop readers

	fetching bool
	fetchSeq uint64            // correlates the retry timer
	chunkSeq uint64            // correlates the chunk-cert VerifyAsync job
	pending  *types.StateChunk // chunk awaiting certificate verification

	// own is this replica's newest attestation — signed at cut time, or
	// synthesized after a state install — re-advertised on the heartbeat
	// when the attestation flow quiesces (see readvertiseCheckpoint).
	own        *types.Checkpoint
	advertised uint64 // own.Height observed at the previous heartbeat tick
}

// maxLocalCkpts bounds the unstabilized own-snapshot map.
const maxLocalCkpts = 64

// ckptEnabled reports whether the subsystem is active.
func (r *Replica) ckptEnabled() bool { return r.cfg.CheckpointInterval > 0 }

// noteDrained folds one executed delivery (deduped, non-noop — the
// sequence all correct replicas execute identically) into the rolling
// execution hash and the per-instance anchors. Anchors therefore name each
// instance's last *executed* proposal: everything above them — including
// the no-op chain segments between anchors and the live views — is what
// garbage collection retains, so a rejoiner resuming at the anchors can
// backfill the chain by Asks.
func (r *Replica) noteDrained(inst int32, oc orderedCommit) {
	if !r.ckptEnabled() {
		return
	}
	var buf [32 + 4 + 32]byte
	copy(buf[0:], r.ckpt.execHash[:])
	binary.LittleEndian.PutUint32(buf[32:], uint32(inst))
	copy(buf[36:], oc.dig[:])
	r.ckpt.execHash = crypto.Digest(buf[:])
	r.ckpt.anchors[inst] = types.Anchor{View: oc.view, Digest: oc.dig}
}

// maybeCheckpoint takes and broadcasts a checkpoint when the delivered
// height crossed an interval boundary. Called after every non-noop global
// delivery, on the event loop.
func (r *Replica) maybeCheckpoint() {
	if !r.ckptEnabled() {
		return
	}
	k := uint64(r.cfg.CheckpointInterval)
	h := r.Delivered
	if h == 0 || h%k != 0 || h <= r.ckpt.stable.Height {
		return
	}
	if _, dup := r.ckpt.local[h]; dup {
		return
	}
	var stateDigest types.Digest
	if r.cfg.Host != nil {
		// The exec hash rides along so the host can capture its execution
		// snapshot at this exact cut, bound to the attestation-to-be.
		stateDigest = r.cfg.Host.StateDigest(h, r.ckpt.execHash)
	}
	anchors := append([]types.Anchor(nil), r.ckpt.anchors...)
	stateHash := types.CheckpointStateHash(h, r.ckpt.execHash, stateDigest, anchors)
	if len(r.ckpt.local) >= maxLocalCkpts {
		r.pruneLocal()
	}
	r.ckpt.local[h] = localCkpt{stateHash: stateHash, execHash: r.ckpt.execHash, stateDigest: stateDigest, anchors: anchors}
	// Restart the batch-dedup window at the cut. The cut sits at the same
	// position of the global delivery sequence on every correct replica, so
	// dedup decisions stay identical cluster-wide — and a replica that
	// later installs this checkpoint starts with the same (empty) window,
	// keeping its delivered heights aligned with the veterans'.
	r.ord.seenBatch = make(map[types.Digest]bool)
	msg := &types.Checkpoint{Height: h, StateHash: stateHash,
		Sig: r.ctx.Crypto().Sign(types.CheckpointBytes(h, stateHash))}
	r.ckpt.own = msg
	r.ctx.Broadcast(msg)
	// Count our own attestation, and re-check the quorum: peers ahead of us
	// may have attested this height before we reached it.
	r.onCheckpoint(r.ctx.ID(), msg)
}

// pruneLocal evicts the oldest unstabilized local snapshot (guard for
// pathological configurations where checkpoints never stabilize).
func (r *Replica) pruneLocal() {
	var lowest uint64
	first := true
	for h := range r.ckpt.local {
		if first || h < lowest {
			lowest, first = h, false
		}
	}
	if !first {
		delete(r.ckpt.local, lowest)
	}
}

// onCheckpoint records one attestation. Signatures were verified by the
// ingress pipeline (Replica.IngressJob); the stabilization tally is bounded
// to the window of heights this replica can still stabilize, and the
// newest-per-signer map (any height) drives lagging-replica detection.
func (r *Replica) onCheckpoint(_ types.NodeID, msg *types.Checkpoint) {
	if !r.ckptEnabled() || msg.Height <= r.ckpt.stable.Height {
		return
	}
	if msg.Sig.Signer < 0 || int(msg.Sig.Signer) >= r.cfg.N {
		return // only replicas attest (the ingress screen also drops these)
	}
	k := uint64(r.cfg.CheckpointInterval)
	if msg.Height%k != 0 {
		return // heights are interval-aligned cluster-wide
	}
	a := attest{height: msg.Height, hash: msg.StateHash, sig: msg.Sig}
	if prev, seen := r.ckpt.newest[msg.Sig.Signer]; !seen || msg.Height > prev.height {
		r.ckpt.newest[msg.Sig.Signer] = a
	}
	if msg.Height <= r.ckpt.stable.Height+maxLocalCkpts*k {
		t := r.ckpt.tallies[msg.Height]
		if t == nil {
			t = make(map[types.NodeID]attest)
			r.ckpt.tallies[msg.Height] = t
		}
		if _, dup := t[msg.Sig.Signer]; !dup {
			t[msg.Sig.Signer] = a
			r.checkCkptQuorum(msg.Height)
		}
	}
	r.maybeFetchState()
}

// checkCkptQuorum stabilizes a checkpoint once n−f signers' newest
// attestations name the height with the state hash this replica itself
// computed there.
func (r *Replica) checkCkptQuorum(h uint64) {
	local, ok := r.ckpt.local[h]
	if !ok {
		return
	}
	t := r.ckpt.tallies[h]
	q := protocol.Quorum(r.cfg.N, r.cfg.F)
	// Deterministic signer order, so the assembled certificate does not
	// depend on map iteration (simulation determinism).
	ids := make([]types.NodeID, 0, len(t))
	for id := range t {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	cert := types.CheckpointCert{Height: h, StateHash: local.stateHash}
	for _, id := range ids {
		if a := t[id]; a.hash == local.stateHash {
			cert.Sigs = append(cert.Sigs, a.sig)
			if len(cert.Sigs) == q {
				r.stabilize(cert, local.execHash, local.stateDigest, local.anchors)
				return
			}
		}
	}
}

// stabilize records a new stable checkpoint and garbage-collects behind it:
// per-instance consensus state below the anchors, durable ledger blocks
// below the height, and superseded local snapshots.
func (r *Replica) stabilize(cert types.CheckpointCert, execHash, resume types.Digest, anchors []types.Anchor) {
	r.ckpt.stable = cert
	r.ckpt.stableExec = execHash
	r.ckpt.stableResume = resume
	r.ckpt.stableAnch = anchors
	r.ckpt.stableMirror.Store(cert.Height)
	for h := range r.ckpt.local {
		if h <= cert.Height {
			delete(r.ckpt.local, h)
		}
	}
	for h := range r.ckpt.tallies {
		if h <= cert.Height {
			delete(r.ckpt.tallies, h)
		}
	}
	for i, in := range r.insts {
		in, a := in, anchors[i]
		r.post(in.id, func() { in.gcToAnchor(a) })
	}
	if r.cfg.Host != nil {
		// Persist before truncating: the manifest must name the certificate
		// before the pre-checkpoint segments become deletable, or a crash in
		// between leaves a chain rooted above its last persisted cert.
		r.cfg.Host.PersistCheckpoint(cert, execHash, resume, anchors)
		r.cfg.Host.TruncateBelow(cert.Height)
	}
	if r.cfg.Dissem != nil {
		// Frontier-driven payload GC: batches delivered at or below the
		// stable height can never be re-proposed or backfilled again.
		r.cfg.Dissem.GCToFrontier(cert.Height)
	}
	r.ctx.Logf("checkpoint stable at height %d (%d instances GC'd)", cert.Height, len(r.insts))
}

// maybeFetchState triggers state transfer when f+1 distinct replicas (at
// least one of them correct) attest checkpoints at least one full interval
// beyond this replica's own progress — the signature of having crashed or
// fallen off the retained window.
func (r *Replica) maybeFetchState() {
	if r.ckpt.fetching {
		return
	}
	w := protocol.Weak(r.cfg.F)
	if len(r.ckpt.newest) < w {
		return
	}
	// The (f+1)-th largest newest-attested height is vouched for by f+1
	// distinct replicas: at least one correct replica really delivered
	// that far.
	hs := make([]uint64, 0, len(r.ckpt.newest))
	for _, a := range r.ckpt.newest {
		hs = append(hs, a.height)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] > hs[j] })
	target := hs[w-1]
	if target < r.Delivered+uint64(r.cfg.CheckpointInterval) {
		return
	}
	r.ckpt.fetching = true
	// Deterministic recipients: the f+1 lowest-id vouchers (at least one is
	// correct and stable at or beyond the target).
	ids := make([]types.NodeID, 0, len(r.ckpt.newest))
	for id, a := range r.ckpt.newest {
		if a.height >= target && id != r.ctx.ID() {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	req := &types.FetchState{Have: r.Delivered}
	if r.cfg.Host != nil {
		// Advertise the retained chain head: a server that finds it on its
		// own chain serves only the missing suffix — the O(suffix) rejoin
		// path for a replica that replayed its chain from local disk. Hosts
		// execute application state, so ask for the attested table snapshot
		// too; pure-ordering substrates skip the table bytes.
		req.Head, req.HeadHash = r.cfg.Host.Head()
		req.WantSnapshot = true
	}
	for i, id := range ids {
		if i >= w {
			break
		}
		r.ctx.Send(id, req)
	}
	// Re-arm: if no verifiable chunk arrives, clear the latch and retry on
	// the next attestation (stale-timer discipline, keyed by fetchSeq).
	r.ckpt.fetchSeq++
	r.ctx.SetTimer(2*r.cfg.RetransmitInterval,
		protocol.TimerTag{Kind: protocol.TimerStateFetch, Instance: -1, Seq: r.ckpt.fetchSeq})
}

// onFetchTimer clears a fetch latch that never resolved (or resolved into
// an install that left us still behind) and immediately re-evaluates from
// the retained attestation histories: the cluster may have gone idle after
// our fetch, never to attest again, while the servers' stable frontier —
// and the GC horizon below which their proposals are gone — moved past the
// checkpoint we installed.
func (r *Replica) onFetchTimer(tag protocol.TimerTag) {
	if tag.Seq != r.ckpt.fetchSeq {
		return // a newer fetch owns the latch
	}
	if r.ckpt.pending != nil {
		// A chunk's certificate verification is still on the pool: clearing
		// the latch now would orphan the verdict (onCkptVerified would find
		// no pending chunk) and waste the whole fetch round. Keep the latch
		// and check back after another interval.
		r.ctx.SetTimer(2*r.cfg.RetransmitInterval,
			protocol.TimerTag{Kind: protocol.TimerStateFetch, Instance: -1, Seq: r.ckpt.fetchSeq})
		return
	}
	r.ckpt.fetching = false
	r.maybeFetchState()
}

// readvertiseCheckpoint re-broadcasts this replica's newest checkpoint
// attestation once the attestation flow quiesces. Attestations are normally
// broadcast exactly once, at cut time — so a replica restarted into an idle
// cluster (no new deliveries, hence no new cuts) would never hear one: its
// pre-gcFloor Syncs are silently dropped, the pre-checkpoint chain payloads
// are GC'd, and it would stay wedged until new client traffic produced the
// next checkpoint. Piggybacked on instance 0's retransmission heartbeat and
// skipped while cuts outpace heartbeats (a busy cluster's natural
// attestation flow already reaches everyone), it costs one small broadcast
// per replica per interval only when the cluster idles — exactly when a
// rejoiner has no other way to discover the stable frontier.
func (r *Replica) readvertiseCheckpoint() {
	if !r.ckptEnabled() || r.ckpt.own == nil {
		return
	}
	if r.ckpt.own.Height != r.ckpt.advertised {
		r.ckpt.advertised = r.ckpt.own.Height
		return // a fresh cut advertised itself since the last tick
	}
	r.ctx.Broadcast(r.ckpt.own)
}

// onFetchState serves a state-transfer request from the stable checkpoint.
// Blocks are served from the stable height; a segment longer than the
// configured cap is cut short — the requester rebuilds the remainder
// through ordinary consensus re-delivery, which GC keeps possible above
// the stable frontier.
func (r *Replica) onFetchState(from types.NodeID, msg *types.FetchState) {
	if !r.ckptEnabled() || r.ckpt.stable.Height == 0 || msg.Have >= r.ckpt.stable.Height {
		return
	}
	chunk := &types.StateChunk{
		Cert:         r.ckpt.stable,
		ExecHash:     r.ckpt.stableExec,
		LedgerResume: r.ckpt.stableResume,
		Anchors:      r.ckpt.stableAnch,
	}
	if r.cfg.Host != nil {
		limit := r.cfg.CheckpointFetchCap
		if limit <= 0 {
			limit = 512
		}
		// Serve from the requester's own chain head when it lies on ours
		// (hash-checked): it replayed the prefix from local disk, so only
		// the missing suffix travels. Anything else — no local chain, a
		// pruned head, a diverged head — gets the full retained segment
		// from the stable height.
		serveFrom := r.ckpt.stable.Height
		if msg.Head > serveFrom {
			if hh, ok := r.cfg.Host.BlockHash(msg.Head - 1); ok && hh == msg.HeadHash {
				serveFrom = msg.Head
			}
		}
		chunk.Blocks = r.cfg.Host.FetchBlocks(serveFrom, limit)
		if msg.WantSnapshot {
			// The stable execution snapshot rides in the same chunk so the
			// requester installs table and checkpoint atomically (a separate
			// fetch could land after post-cut re-deliveries and clobber
			// them). The requester re-verifies the envelope binding against
			// the certificate before touching its table.
			chunk.Snapshot = r.cfg.Host.StateSnapshot(r.ckpt.stable.Height)
		}
	}
	r.ctx.Send(from, chunk)
}

// onStateChunk validates a state-transfer response structurally, then hands
// the certificate's n−f signatures to the verification pipeline as one
// batch job; installation resumes in onCkptVerified. Chunks are accepted
// only while this replica itself has a fetch outstanding: an unsolicited
// chunk must not teleport a healthy replica over batches it would have
// executed itself.
func (r *Replica) onStateChunk(from types.NodeID, msg *types.StateChunk) {
	if !r.ckptEnabled() || !r.ckpt.fetching || r.ckpt.pending != nil ||
		msg.Cert.Height <= r.Delivered {
		return
	}
	q := protocol.Quorum(r.cfg.N, r.cfg.F)
	if len(msg.Anchors) != r.cfg.Instances || len(msg.Cert.Sigs) < q ||
		crypto.DistinctSigners(msg.Cert.Sigs) < q {
		return
	}
	for _, sig := range msg.Cert.Sigs {
		if sig.Signer < 0 || int(sig.Signer) >= r.cfg.N {
			// Only replicas attest: clients share the keyring, so a
			// compromised client key would otherwise verify and count toward
			// the n−f quorum (the Checkpoint ingress screen drops such
			// signers for the same reason).
			return
		}
	}
	want := types.CheckpointStateHash(msg.Cert.Height, msg.ExecHash, msg.LedgerResume, msg.Anchors)
	if want != msg.Cert.StateHash {
		return // preimage does not match the attested hash
	}
	r.ckpt.pending = msg
	r.ckpt.chunkSeq++
	claim := types.CheckpointBytes(msg.Cert.Height, msg.Cert.StateHash)
	checks := make([]crypto.Check, len(msg.Cert.Sigs))
	for i, sig := range msg.Cert.Sigs {
		checks[i] = crypto.Check{Sig: sig, Msg: claim}
	}
	r.ctx.VerifyAsync(protocol.VerifyJob{
		Tag:    protocol.TimerTag{Kind: protocol.TimerVerify, Instance: -1, Seq: r.ckpt.chunkSeq},
		Checks: checks,
		Quorum: q,
	})
}

// onCkptVerified consumes the chunk-certificate verification verdict.
func (r *Replica) onCkptVerified(tag protocol.TimerTag, ok bool) {
	if tag.Seq != r.ckpt.chunkSeq || r.ckpt.pending == nil {
		return // stale completion
	}
	chunk := r.ckpt.pending
	r.ckpt.pending = nil
	r.ckpt.fetching = false
	if !ok {
		return // forged certificate; the next attestation re-triggers a fetch
	}
	r.installState(chunk)
}

// installState adopts a verified stable checkpoint: the delivery frontier
// jumps to the checkpoint cut, every instance resumes its chain from its
// anchor, the execution layer re-roots its ledger on the transferred
// segment, and consensus state behind the anchors is dropped. Deliveries
// above the cut are then re-earned through ordinary consensus: instances
// backfill the chain (askChainGap) and re-deliver in the global order, and
// the execution layer skips re-appending heights it already imported.
func (r *Replica) installState(chunk *types.StateChunk) {
	h := chunk.Cert.Height
	if h <= r.Delivered {
		return
	}
	// Re-root the durable state first — and abort the whole install if the
	// execution layer rejects the segment (tampered blocks): committing the
	// protocol to the checkpoint while the ledger stayed behind would
	// desync the two permanently. The fetch latch is already clear, so the
	// next attestation simply re-triggers a fetch (from other vouchers).
	if r.cfg.Host != nil {
		if err := r.cfg.Host.InstallState(chunk); err != nil {
			r.ctx.Logf("state install at height %d rejected: %v", h, err)
			return
		}
	}
	r.Delivered = h
	r.deliveredMirror.Store(h)
	r.ckpt.execHash = chunk.ExecHash
	copy(r.ckpt.anchors, chunk.Anchors)
	r.ckpt.stable = chunk.Cert
	r.ckpt.stableExec = chunk.ExecHash
	r.ckpt.stableResume = chunk.LedgerResume
	r.ckpt.stableAnch = append([]types.Anchor(nil), chunk.Anchors...)
	r.ckpt.stableMirror.Store(h)
	// Attest the installed checkpoint ourselves: this replica now holds
	// exactly the state the verified certificate describes. Without an own
	// attestation, a replica that rejoined and then idled could never
	// re-advertise the frontier to the next rejoiner.
	r.ckpt.own = &types.Checkpoint{Height: h, StateHash: chunk.Cert.StateHash,
		Sig: r.ctx.Crypto().Sign(types.CheckpointBytes(h, chunk.Cert.StateHash))}
	for th := range r.ckpt.tallies {
		if th <= h {
			delete(r.ckpt.tallies, th)
		}
	}
	// The dedup window restarts at every checkpoint cut cluster-wide (see
	// maybeCheckpoint); starting empty here matches the veterans exactly.
	r.ord.seenBatch = make(map[types.Digest]bool)
	if r.cfg.Dissem != nil {
		r.cfg.Dissem.GCToFrontier(h)
	}
	// Advance every frontier and drop queued commits the checkpoint covers
	// before any instance resumes delivering, so a drain triggered by one
	// instance's install cannot re-deliver another's pre-checkpoint tail.
	// (Queues are view-ascending, so covered commits form a prefix.)
	for i, a := range chunk.Anchors {
		if a.View > r.ord.frontiers[i] {
			r.ord.frontiers[i] = a.View
		}
		for !r.ord.rings[i].empty() && r.ord.rings[i].front().view <= a.View {
			r.ord.rings[i].pop()
		}
	}
	r.ord.recomputeMin()
	r.ord.rebuildHeap()
	for i, a := range chunk.Anchors {
		in, a := r.insts[i], a
		r.post(in.id, func() { in.installAnchor(a) })
	}
	r.ctx.Logf("installed stable checkpoint at height %d", h)
	r.drain()
}

// StableHeight reports the height of the replica's stable checkpoint. It is
// safe to call from outside the event loop (tests, operator polling).
func (r *Replica) StableHeight() uint64 { return r.ckpt.stableMirror.Load() }

// StateFootprint sums retained consensus bookkeeping across instances: the
// proposal-map and view-map entry counts the checkpoint GC bounds. It reads
// instance-shard state directly and is therefore only safe while events are
// serialized (the simulator between Run calls, or a stopped runtime node).
func (r *Replica) StateFootprint() (props, views int) {
	for _, in := range r.insts {
		props += len(in.props)
		views += len(in.views)
	}
	return props, views
}
