// Package core implements SpotLess (§3–§5 of the paper): the chained
// rotational consensus instance with Rapid View Synchronization, and the
// concurrent consensus architecture that runs m instances in parallel with a
// deterministic total order across them. On top of the paper's protocol it
// adds the checkpoint + garbage-collection + state-transfer subsystem
// (checkpoint.go): periodic signed checkpoints bound the per-view state RVS
// would otherwise retain forever, and let crashed or lagging replicas
// rejoin from the stable frontier instead of replaying pruned views. See
// docs/ARCHITECTURE.md for the paper-to-code map.
package core

import (
	"time"

	"spotless/internal/dissem"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Config parameterizes a SpotLess replica.
type Config struct {
	N         int // number of replicas (n > 3f)
	F         int // failure bound
	Instances int // m concurrent instances, 1 ≤ m ≤ n (§4.1)

	// InitialRecordingTimeout is the starting value of tR (state ST1: wait
	// for an acceptable proposal).
	InitialRecordingTimeout time.Duration
	// InitialCertifyTimeout is the starting value of tA (state ST3: wait
	// for n−f matching claims).
	InitialCertifyTimeout time.Duration
	// Epsilon is the additive timeout increase applied after consecutive
	// timeouts of the same timer in consecutive views (§3.5).
	Epsilon time.Duration
	// MinTimeout / MaxTimeout clamp the adaptive timers.
	MinTimeout time.Duration
	MaxTimeout time.Duration
	// RetransmitInterval drives the periodic retransmission of §3.5 for
	// replicas stuck waiting on replies.
	RetransmitInterval time.Duration

	// RetentionViews bounds per-view bookkeeping kept behind the committed
	// frontier when checkpointing is disabled (older state is pruned on a
	// fixed window). With CheckpointInterval > 0 the stable checkpoint
	// frontier drives garbage collection instead.
	RetentionViews int
	// CheckpointInterval enables the checkpoint + garbage-collection +
	// state-transfer subsystem: every K globally delivered batches the
	// replica broadcasts a signed checkpoint attestation; n−f matching
	// attestations make the checkpoint stable, after which state at or
	// below the stable frontier is dropped and lagging replicas recover via
	// FetchState/StateChunk instead of per-view Asks. 0 disables the
	// subsystem (the seed behaviour). All replicas must agree on K.
	CheckpointInterval int
	// CheckpointFetchCap bounds the ledger blocks carried per StateChunk
	// (default 512). Blocks beyond the cap are not re-fetched: the
	// requester rebuilds them through ordinary consensus re-delivery, which
	// GC keeps possible above the stable frontier.
	CheckpointFetchCap int
	// Host integrates the execution layer's durable state with the
	// checkpoint subsystem (ledger truncation, block serving, state
	// install). Optional: nil models a substrate without durable state
	// (e.g. the simulator), where checkpoints cover protocol state only.
	Host StateHost
	// Resume rehydrates the replica from a locally persisted stable
	// checkpoint (the WAL restart path): the delivery frontier, execution
	// hash, anchors, and stable certificate are adopted at construction, and
	// every instance re-enters the rotation from its anchor at Start — so a
	// restarted replica needs only the missing suffix from the network, not
	// a full state transfer. Callers validate it first (VerifyResume);
	// nil starts from genesis. Requires CheckpointInterval > 0.
	Resume *ResumeState
	// PendingWindow bounds how far ahead of the current view proposals are
	// buffered (flooding guard).
	PendingWindow int
	// CatchupWindow caps how many skipped views receive explicit
	// Sync(u, claim(∅), CP, Υ) catch-up messages in one jump.
	CatchupWindow int

	// IdleBackoff paces view entry when the cluster is idle: a primary whose
	// NextBatch comes back empty delays its proposal by up to IdleBackoff
	// (re-checking on a TimerPropose timer, and proposing immediately if a
	// batch arrived in the meantime) instead of issuing the §5 no-op filler
	// at once. Without pacing, TCP/runtime deployments burn thousands of
	// no-op views per second while idle, saturating small hosts and starving
	// real-batch commits after a crash (ROADMAP PR 2 discovery). 0 disables
	// pacing — the simulator's figures rely on unpaced views, and loaded
	// clusters are unaffected either way since a pending batch always
	// proposes immediately. Keep IdleBackoff below the recording timeout tR,
	// or backups will claim(∅) before the paced proposal arrives.
	IdleBackoff time.Duration

	// Pacemaker selects the view-synchronizer arm by name: "spotless" (the
	// default — the paper's §3.5 adaptive timers), "relay" (Cogsworth-style
	// linear escalation with reset-on-progress), or "doubling"
	// (Lumiere-style exponential backoff). See pacemaker.go and the
	// bench.RunSoak bake-off. Unknown names panic at construction; the cmd
	// binaries validate through PacemakerByName first.
	Pacemaker string
	// PacemakerFactory overrides Pacemaker with a custom constructor (one
	// call per instance shard). Tests use it to inject fixed-policy or
	// instrumented pacemakers; nil resolves Pacemaker by name.
	PacemakerFactory PacemakerFactory

	// UnsafeLegacyResolution restores the seed's view-resolution rules —
	// bare A3 (any conditionally prepared parent above the lock unlocks),
	// the unknown-claim echo, the tip-only commit quorum, and the
	// conditionally-committed lock raise — which together admit the
	// fork-commit path the Lemma 3.4 re-derivation closes (resolution.go):
	// one replica can commit a real-batch proposal at a view another
	// replica resolves as ∅, diverging the ledgers. UNSAFE; retained
	// solely as the deterministic safety drill's negative control
	// (bench.RunSafetyDrill, TestLegacyA3ForksLedger) so the closed
	// deviation stays demonstrable. Never set it in a deployment.
	UnsafeLegacyResolution bool

	// Dissem enables digest ordering: proposals reference batch digests
	// disseminated ahead of consensus by the given layer (internal/dissem)
	// instead of inlining payloads, so consensus traffic stays constant-size
	// as batches grow. The replica binds the layer at construction, gates
	// claims on the availability certificate (an uncertified digest can
	// never be claimed, and therefore never commits), and resolves digests
	// back to payloads at delivery. nil keeps the seed's inline-payload
	// ordering. The layer must be freshly constructed per replica.
	Dissem *dissem.Layer

	// FastPath enables the geo-scale optimization of §6.1: the primary of
	// view v+1 broadcasts its proposal optimistically as soon as it accepts
	// the view-v proposal, without waiting for the 2f+1 votes. Acceptance
	// rule A1 still gates voting at the backups, so safety is unaffected;
	// the optimistic proposal overlaps one WAN round trip.
	FastPath bool

	// Behavior configures Byzantine behaviour for evaluation (§6.3).
	Behavior Behavior
}

// StateHost is the execution-layer integration surface of the checkpoint
// subsystem. The runtime's replica executor implements it over the
// blockchain ledger; substrates without durable state leave Config.Host nil.
// All methods are invoked on the replica's ordering stage — the single
// event loop when instance workers are disabled — and therefore never race
// Context.Deliver, which the ordering stage also owns.
type StateHost interface {
	// StateDigest returns the digest of the durable state after height
	// delivered batches (the ledger's chain-resume hash); it is folded into
	// the checkpoint attestation so divergent execution is detected at
	// checkpoint time. The rolling execution hash at the cut is passed along
	// so the host can capture an execution snapshot bound to the exact
	// (height, execHash) pair the attestation will cover — the table content
	// at this instant is precisely the first `height` delivered batches.
	StateDigest(height uint64, execHash types.Digest) types.Digest
	// TruncateBelow garbage-collects durable state below the stable height.
	TruncateBelow(height uint64)
	// FetchBlocks returns up to max retained ledger blocks from the given
	// height, serving state-transfer chunks.
	FetchBlocks(from uint64, max int) []types.BlockRecord
	// Head reports the retained chain head: the next height the ledger
	// would append and the hash it chains from. Sent with FetchState so a
	// server can serve only the suffix the requester is missing.
	Head() (uint64, types.Digest)
	// BlockHash returns the hash of the retained block at the given height
	// (ok=false when pruned or beyond the head). A state-transfer server
	// uses it to check that a requester's claimed head lies on this chain
	// before serving a suffix instead of the full retained segment.
	BlockHash(height uint64) (types.Digest, bool)
	// InstallState adopts a verified stable checkpoint on a lagging
	// replica: re-root (or extend — see the runtime executor's keep-chain
	// and suffix paths) the ledger at the certificate height using the
	// chunk's chain-resume hash and ingest the transferred blocks.
	InstallState(chunk *types.StateChunk) error
	// PersistCheckpoint records stable-checkpoint metadata in durable
	// storage (the WAL manifest) so a restarted replica can resume from it.
	// Called on every stabilization; a host without durable storage may
	// no-op. The host also promotes its pending execution snapshot for
	// cert.Height (captured at StateDigest time) to stable here, persisting
	// it after the manifest so recovery never finds a snapshot the manifest
	// cannot vouch for.
	PersistCheckpoint(cert types.CheckpointCert, execHash, resume types.Digest, anchors []types.Anchor)
	// StateSnapshot returns the execution snapshot captured at the stable
	// checkpoint height (the ycsb envelope bytes), or nil if none is
	// retained. Served inside StateChunk replies when the requester set
	// WantSnapshot, so a far-behind rejoiner installs the attested table
	// instead of replaying from genesis.
	StateSnapshot(height uint64) []byte
}

// DefaultConfig returns a configuration for n replicas with m instances.
func DefaultConfig(n, m int) Config {
	return Config{
		N:                       n,
		F:                       (n - 1) / 3,
		Instances:               m,
		InitialRecordingTimeout: 40 * time.Millisecond,
		InitialCertifyTimeout:   40 * time.Millisecond,
		Epsilon:                 5 * time.Millisecond,
		MinTimeout:              2 * time.Millisecond,
		MaxTimeout:              4 * time.Second,
		RetransmitInterval:      120 * time.Millisecond,
		RetentionViews:          256,
		PendingWindow:           64,
		CatchupWindow:           32,
	}
}

// AttackMode aliases the shared attack taxonomy of the evaluation (§6.3,
// Figure 11); see internal/protocol.
type AttackMode = protocol.AttackMode

// Attack modes re-exported for API convenience.
const (
	AttackNone       = protocol.AttackNone
	AttackDark       = protocol.AttackDark
	AttackEquivocate = protocol.AttackEquivocate
	AttackSubvert    = protocol.AttackSubvert
)

// Behavior aliases the shared Byzantine-behaviour configuration.
type Behavior = protocol.Behavior

// PrimaryOf returns the primary of instance i in view v:
// id(P_{i,v}) = (i + v) mod n (§4.1, Figure 5).
func PrimaryOf(instance int32, v types.View, n int) types.NodeID {
	return types.NodeID((uint64(instance) + uint64(v)) % uint64(n))
}
