// Package core implements SpotLess (§3–§5 of the paper): the chained
// rotational consensus instance with Rapid View Synchronization, and the
// concurrent consensus architecture that runs m instances in parallel with a
// deterministic total order across them.
package core

import (
	"time"

	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Config parameterizes a SpotLess replica.
type Config struct {
	N         int // number of replicas (n > 3f)
	F         int // failure bound
	Instances int // m concurrent instances, 1 ≤ m ≤ n (§4.1)

	// InitialRecordingTimeout is the starting value of tR (state ST1: wait
	// for an acceptable proposal).
	InitialRecordingTimeout time.Duration
	// InitialCertifyTimeout is the starting value of tA (state ST3: wait
	// for n−f matching claims).
	InitialCertifyTimeout time.Duration
	// Epsilon is the additive timeout increase applied after consecutive
	// timeouts of the same timer in consecutive views (§3.5).
	Epsilon time.Duration
	// MinTimeout / MaxTimeout clamp the adaptive timers.
	MinTimeout time.Duration
	MaxTimeout time.Duration
	// RetransmitInterval drives the periodic retransmission of §3.5 for
	// replicas stuck waiting on replies.
	RetransmitInterval time.Duration

	// RetentionViews bounds per-view bookkeeping kept behind the committed
	// frontier (older state is pruned; production deployments would anchor
	// this to checkpoints).
	RetentionViews int
	// PendingWindow bounds how far ahead of the current view proposals are
	// buffered (flooding guard).
	PendingWindow int
	// CatchupWindow caps how many skipped views receive explicit
	// Sync(u, claim(∅), CP, Υ) catch-up messages in one jump.
	CatchupWindow int

	// FastPath enables the geo-scale optimization of §6.1: the primary of
	// view v+1 broadcasts its proposal optimistically as soon as it accepts
	// the view-v proposal, without waiting for the 2f+1 votes. Acceptance
	// rule A1 still gates voting at the backups, so safety is unaffected;
	// the optimistic proposal overlaps one WAN round trip.
	FastPath bool

	// Behavior configures Byzantine behaviour for evaluation (§6.3).
	Behavior Behavior
}

// DefaultConfig returns a configuration for n replicas with m instances.
func DefaultConfig(n, m int) Config {
	return Config{
		N:                       n,
		F:                       (n - 1) / 3,
		Instances:               m,
		InitialRecordingTimeout: 40 * time.Millisecond,
		InitialCertifyTimeout:   40 * time.Millisecond,
		Epsilon:                 5 * time.Millisecond,
		MinTimeout:              2 * time.Millisecond,
		MaxTimeout:              4 * time.Second,
		RetransmitInterval:      120 * time.Millisecond,
		RetentionViews:          256,
		PendingWindow:           64,
		CatchupWindow:           32,
	}
}

// AttackMode aliases the shared attack taxonomy of the evaluation (§6.3,
// Figure 11); see internal/protocol.
type AttackMode = protocol.AttackMode

// Attack modes re-exported for API convenience.
const (
	AttackNone       = protocol.AttackNone
	AttackDark       = protocol.AttackDark
	AttackEquivocate = protocol.AttackEquivocate
	AttackSubvert    = protocol.AttackSubvert
)

// Behavior aliases the shared Byzantine-behaviour configuration.
type Behavior = protocol.Behavior

// PrimaryOf returns the primary of instance i in view v:
// id(P_{i,v}) = (i + v) mod n (§4.1, Figure 5).
func PrimaryOf(instance int32, v types.View, n int) types.NodeID {
	return types.NodeID((uint64(instance) + uint64(v)) % uint64(n))
}
