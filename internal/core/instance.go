package core

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Replica-local per-view protocol states (§3.4, RVS).
const (
	stRecording  = iota // ST1: waiting for an acceptable proposal (timer tR)
	stSyncing           // ST2: waiting for n−f Sync messages (no timer)
	stCertifying        // ST3: waiting for n−f matching claims (timer tA)
)

// proposal is the replica-local bookkeeping for one proposal of one
// instance, keyed by digest. A proposal may exist as a digest-only
// placeholder (known == false) learned from claims or CP entries before the
// full Propose message arrives via the Ask-recovery mechanism.
type proposal struct {
	digest       types.Digest
	view         types.View
	batch        *types.Batch
	parentView   types.View
	parentDigest types.Digest
	parent       *proposal
	msg          *types.Propose // original message, kept to serve Ask requests

	known         bool // full content recorded (S1–S4 checked)
	condPrepared  bool
	condCommitted bool
	committed     bool
	delivered     bool
	// claimQuorum records that n−f distinct replicas claimed this proposal
	// in its own view — the evidence tier above the f+1 conditional-prepare
	// adoption. Established by the local claim tally, by n−f collected sync
	// votes, or by a verified embedded certificate; the commit rule requires
	// it of the three-consecutive chain's tip (see maybeCommitChain).
	claimQuorum bool

	// Async certificate verification (the recovery path of §3.4): at most
	// one cert job is in flight per proposal, and a rejected certificate
	// is remembered by fingerprint so the same junk is not re-verified —
	// while a *different* cert for the same parent (say, from the next
	// honest primary) still gets its chance.
	certInFlight   bool
	certRejectedFP uint64

	// syncVotes collects claim signatures from Sync messages claiming this
	// proposal in its own view — the raw material of cert(P) (E1).
	syncVotes map[types.NodeID]types.Signature
	// cpVotes collects distinct senders whose CP sets contain this proposal
	// (the f+1 conditional-prepare rule and the n−f extension rule E2).
	cpVotes map[types.NodeID]struct{}
}

// viewState is the per-view message bookkeeping of one instance.
type viewState struct {
	syncs       map[types.NodeID]*types.Sync
	claimCounts map[types.Digest]int
	emptyCount  int
	ownSync     *types.Sync // our single claim in this view (Υ retransmission)
	accepted    *proposal   // the proposal we claimed, if any
	pending     *types.Propose
	echoed      bool
	asked       bool
	// phase is the view's resolution phase (see resolution.go): the
	// explicit proposed → claimed → resolved{batch|∅} → committed ladder
	// every safety-relevant transition is recorded against.
	phase resPhase
}

// Instance is one chained consensus instance of SpotLess (§3). All methods
// run on the replica's single event loop.
type Instance struct {
	r  *Replica
	id int32

	view      types.View
	state     int
	viewStart time.Duration
	// viewMirror mirrors view for off-loop readers (CurrentView): operator
	// polling and tests observe a live replica without racing the shard.
	viewMirror atomic.Uint64

	genesis *proposal
	props   map[types.Digest]*proposal
	views   map[types.View]*viewState

	// lock is Plock (§3.3). Re-derived against Lemma 3.4 (resolution.go):
	// it rises only through raiseLock — to the parent of a certified
	// proposal, or to a checkpoint anchor. Under UnsafeLegacyResolution it
	// instead follows the seed's conditionally-committed rule.
	lock        *proposal
	certHead    *proposal // highest proposal with n−f collected sync votes (E1)
	cpHead      *proposal // highest proposal with n−f CP endorsements (E2)
	lastCommit  *proposal // highest committed proposal
	lastDeliver types.View

	cpList []*proposal // conditionally prepared proposals (CP set source)
	// certTips holds certified proposals whose commit triple has not
	// completed; every certification event re-evaluates them (the triple's
	// links can certify in any order — see maybeCommitChains).
	certTips []*proposal

	// pm owns the adaptive-timer policy (§3.5) behind the Pacemaker
	// interface; certStart anchors the elapsed-time feedback it receives.
	pm        Pacemaker
	certStart time.Duration

	lastProgressView types.View // for periodic retransmission
	proposedView     types.View // highest view we already proposed (fast path)
	idleWait         types.View // highest view with a pending idle-backoff timer
	lastGapAsk       time.Duration
	// lastGapAsk rate-limits chain-gap Asks (state-transfer catch-up);
	// chainServeAt rate-limits ancestor-chain Ask service per requester.
	chainServeAt map[types.NodeID]time.Duration
	// gcFloor is the view below which checkpoint GC retired all state;
	// messages referencing older views are dropped rather than allowed to
	// regrow placeholders the GC just collected.
	gcFloor types.View

	// Outstanding VerifyAsync certificate jobs, keyed by the correlation
	// sequence carried in TimerTag.Seq (stale-completion discipline:
	// completions for unknown sequences are ignored).
	verifySeq uint64
	certJobs  map[uint64]certJob
}

// certJob is the state an async certificate verification resolves against.
type certJob struct {
	parent *proposal
	view   types.View // parent view per the justification
	fp     uint64     // fingerprint of the cert under verification
}

// certFingerprint identifies one embedded certificate (signers + signature
// bytes), so rejections can be remembered per cert rather than per parent.
func certFingerprint(cert []types.Signature) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, sig := range cert {
		binary.LittleEndian.PutUint32(b[:], uint32(sig.Signer))
		h.Write(b[:])
		h.Write(sig.Bytes)
	}
	return h.Sum64()
}

func newInstance(r *Replica, id int32) *Instance {
	g := &proposal{known: true, condPrepared: true, condCommitted: true, committed: true, delivered: true, claimQuorum: true}
	inst := &Instance{
		r:          r,
		id:         id,
		genesis:    g,
		props:      map[types.Digest]*proposal{g.digest: g},
		views:      make(map[types.View]*viewState),
		lock:       g,
		certHead:   g,
		cpHead:     g,
		lastCommit: g,
		certJobs:   make(map[uint64]certJob),
		pm:         r.newPacemaker(id),
		// A fresh (or restarted) replica's first chain-gap Ask must not be
		// rate-limited by the zero timestamp.
		lastGapAsk:   -r.cfg.RetransmitInterval,
		chainServeAt: make(map[types.NodeID]time.Duration),
	}
	return inst
}

func (in *Instance) vs(v types.View) *viewState {
	s, ok := in.views[v]
	if !ok {
		s = &viewState{
			syncs:       make(map[types.NodeID]*types.Sync),
			claimCounts: make(map[types.Digest]int),
		}
		in.views[v] = s
	}
	return s
}

func (in *Instance) quorum() int { return protocol.Quorum(in.r.cfg.N, in.r.cfg.F) }
func (in *Instance) weak() int   { return protocol.Weak(in.r.cfg.F) }

func (in *Instance) primaryOf(v types.View) types.NodeID {
	return PrimaryOf(in.id, v, in.r.cfg.N)
}

// getOrCreate returns the bookkeeping entry for a proposal digest, creating
// a placeholder when first referenced by a claim or CP entry.
func (in *Instance) getOrCreate(d types.Digest, v types.View) *proposal {
	if d.IsZero() {
		return in.genesis
	}
	p, ok := in.props[d]
	if !ok {
		p = &proposal{digest: d, view: v, syncVotes: make(map[types.NodeID]types.Signature), cpVotes: make(map[types.NodeID]struct{})}
		in.props[d] = p
	}
	return p
}

// ---------------------------------------------------------------------------
// View lifecycle
// ---------------------------------------------------------------------------

func (in *Instance) start() {
	// Periodic retransmission heartbeat (§3.5), re-armed on every expiry.
	in.r.ctx.SetTimer(in.r.cfg.RetransmitInterval, protocol.TimerTag{Kind: protocol.TimerRetransmit, Instance: in.id})
	in.enterView(1)
}

func (in *Instance) enterView(v types.View) {
	in.view = v
	in.viewMirror.Store(uint64(v))
	in.state = stRecording
	in.viewStart = in.r.ctx.Now()
	in.r.ctx.SetTimer(in.pm.EnterView(v), protocol.TimerTag{Kind: protocol.TimerRecording, Instance: in.id, View: v})
	if in.primaryOf(v) == in.r.ctx.ID() {
		in.propose(v)
	}
	s := in.vs(v)
	if s.pending != nil {
		p := s.pending
		s.pending = nil
		in.onPropose(p)
	}
	in.checkTransitions()
	if v%64 == 0 {
		in.prune()
	}
}

// propose implements the primary role (Figure 3, lines 12–14): pick the
// highest extendable proposal, wrap the next client batch, broadcast the
// Propose together with the matching Sync (Remark 3.1).
func (in *Instance) propose(v types.View) {
	if in.proposedView >= v {
		return // already proposed optimistically (fast path, §6.1)
	}
	batch := in.nextProposalBatch()
	if batch == nil {
		// Idle pacing: with no client batch pending, delay the no-op filler
		// by the pacemaker's IdleDelay instead of letting idle views spin
		// unboundedly. The timer re-invokes propose; a batch that arrived
		// meanwhile proposes then, and the no-op goes out only when the wait
		// expires with the queue still empty (idleWait marks the view already
		// waited for). Every arm caps the wait at tR/2 (see idlePacing): a
		// wait that outlives tR would let every backup (and ourselves)
		// claim(∅) before the paced proposal ever goes out — liveness would
		// then ride on client retransmissions. At tR/2 the proposal always
		// lands within the recording window, and the tR-halving rule cannot
		// shrink tR below twice the wait, so pacing self-stabilizes instead
		// of oscillating.
		if delay := in.pm.IdleDelay(v); delay > 0 && in.idleWait < v {
			in.idleWait = v
			in.r.ctx.SetTimer(delay,
				protocol.TimerTag{Kind: protocol.TimerPropose, Instance: in.id, View: v})
			return
		}
		batch = in.r.noopBatch(in.id, v)
	}
	in.proposedView = v
	_, just := in.highestExtendable(v)
	msg := &types.Propose{Instance: in.id, View: v, Batch: batch, Parent: just}
	d := msg.Digest()
	msg.Sig = in.r.ctx.Crypto().Sign(d[:])

	switch in.r.cfg.Behavior.Mode {
	case AttackDark:
		// A2: withhold the proposal from the victim set.
		for i := 0; i < in.r.cfg.N; i++ {
			id := types.NodeID(i)
			if id == in.r.ctx.ID() || in.r.cfg.Behavior.Victims[id] {
				continue
			}
			in.r.ctx.Send(id, msg)
		}
	case AttackEquivocate:
		// A3: conflicting proposals to disjoint halves.
		alt := &types.Propose{Instance: in.id, View: v, Batch: in.r.noopBatch(in.id, v), Parent: just}
		ad := alt.Digest()
		alt.Sig = in.r.ctx.Crypto().Sign(ad[:])
		for i := 0; i < in.r.cfg.N; i++ {
			id := types.NodeID(i)
			if id == in.r.ctx.ID() {
				continue
			}
			if in.r.cfg.Behavior.Victims[id] {
				in.r.ctx.Send(id, alt)
			} else {
				in.r.ctx.Send(id, msg)
			}
		}
	default:
		in.r.ctx.Broadcast(msg)
	}
	// Process our own proposal locally (records it and emits our Sync).
	in.onPropose(msg)
}

// nextProposalBatch pulls the batch for the next proposal. Under digest
// ordering it pops the replica's own next certified batch and proposes a
// payload-free stub — the digest reference that keeps consensus traffic
// constant-size; the delivery path resolves it back through the
// dissemination store. Without the layer it is the seed's direct source
// pull (inline payloads).
func (in *Instance) nextProposalBatch() *types.Batch {
	l := in.r.cfg.Dissem
	if l == nil {
		return in.r.ctx.NextBatch(in.id)
	}
	b := l.NextCertified()
	if b == nil {
		return nil
	}
	return &types.Batch{ID: b.ID, Submitted: b.Submitted}
}

// highestExtendable implements Figure 3 lines 5–11: backtrack to the highest
// proposal that is extendable under E1 (certificate) or E2 (n−f CP
// endorsements). The certificate is assembled from collected Sync
// signatures; per §3.4 signatures are verified lazily by receivers that need
// them, keeping the fast path MAC-priced.
func (in *Instance) highestExtendable(v types.View) (*proposal, types.Justification) {
	best := in.certHead
	useCert := true
	if in.cpHead != nil && in.cpHead.view > best.view {
		best = in.cpHead
		useCert = false
	}
	if best == in.genesis {
		return best, types.Justification{Kind: types.JustGenesis}
	}
	just := types.Justification{ParentView: best.view, ParentDigest: best.digest}
	if useCert && len(best.syncVotes) >= in.quorum() {
		just.Kind = types.JustCert
		just.Cert = make([]types.Signature, 0, in.quorum())
		for _, sig := range best.syncVotes {
			just.Cert = append(just.Cert, sig)
			if len(just.Cert) == in.quorum() {
				break
			}
		}
	} else {
		just.Kind = types.JustClaim
	}
	return best, just
}

// ---------------------------------------------------------------------------
// Propose handling (backup role, Figure 3 lines 15–17; checks S1–S4, A1–A3)
// ---------------------------------------------------------------------------

func (in *Instance) onPropose(msg *types.Propose) {
	v := msg.View
	if msg.Batch == nil { // S2: malformed
		return
	}
	if v < in.gcFloor {
		return // below the checkpoint GC floor: nobody correct needs it
	}
	if v > in.view+types.View(in.r.cfg.PendingWindow) {
		return // flooding guard
	}
	d := msg.Digest()
	// S1: the proposal must carry the primary's signature. Its validity was
	// established by the verification pipeline before the message entered
	// the event loop (Replica.IngressJob); only the cheap identity check
	// remains here.
	if msg.Sig.Signer != in.primaryOf(v) {
		return
	}
	p := in.getOrCreate(d, v)
	if !p.known {
		p.known = true
		p.view = v
		p.batch = msg.Batch
		p.parentView = msg.Parent.ParentView
		p.parentDigest = msg.Parent.ParentDigest
		p.msg = msg
		if msg.Parent.Kind == types.JustGenesis {
			p.parent = in.genesis
		} else {
			p.parent = in.getOrCreate(msg.Parent.ParentDigest, msg.Parent.ParentView)
		}
		in.advancePhase(v, resProposed)
		in.linkKnown(p)
	}
	// S3: only proposals for the current view are voted on now; buffer ahead.
	if v > in.view {
		in.vs(v).pending = msg
		return
	}
	if v < in.view {
		return // recorded for Ask service only
	}
	in.tryAccept(p, msg)
}

// tryAccept applies S4 and the acceptance rules A1–A3 and, on success,
// broadcasts our Sync claim for the proposal. Proposals whose evidence may
// still arrive — an unprepared or uncertified parent — are buffered and
// retried when the evidence lands (condPrepare/certify → retryPending);
// an embedded certificate is fanned out for asynchronous verification.
func (in *Instance) tryAccept(p *proposal, msg *types.Propose) {
	s := in.vs(p.view)
	if s.ownSync != nil {
		return // one claim per view
	}
	if p.parent == nil {
		return // parent severed by checkpoint GC: a fork below the stable frontier
	}
	ok, wait := in.claimable(p)
	if !ok {
		if wait {
			s.pending = msg
			if msg.Parent.Kind == types.JustCert {
				in.requestCertVerify(p.parent, msg.Parent)
			}
		}
		return
	}
	if in.r.cfg.Behavior.Mode == AttackSubvert && !in.r.isAccomplice(msg.Sig.Signer) {
		return // A4: subvert non-faulty primaries by withholding votes
	}
	s.accepted = p
	in.sendSync(p.view, types.Claim{View: p.view, Digest: p.digest}, false)
	// Progress feedback (§3.5): the spotless arm halves tR when the awaited
	// proposal arrived within half the timeout; other arms reset their ramp.
	in.pm.ProposalAccepted(p.view, in.r.ctx.Now()-in.viewStart)
	// Geo fast path (§6.1): as the next view's primary, propose extending P
	// optimistically before its vote quorum completes. Backups still gate
	// their votes on A1, so a failed parent only costs this one proposal.
	if in.r.cfg.FastPath && p.view == in.view &&
		in.primaryOf(p.view+1) == in.r.ctx.ID() && in.proposedView <= p.view {
		in.proposeFast(p.view+1, p)
	}
	in.checkTransitions()
}

// proposeFast issues the optimistic fast-path proposal for view v extending
// the just-accepted parent (claim-justified; receivers rely on their own
// conditional-prepare state per rule A1).
func (in *Instance) proposeFast(v types.View, parent *proposal) {
	batch := in.nextProposalBatch()
	if batch == nil {
		if in.r.cfg.IdleBackoff > 0 {
			// Idle pacing: skip the optimistic no-op; the ordinary paced
			// propose path handles view v when we enter it.
			return
		}
		batch = in.r.noopBatch(in.id, v)
	}
	in.proposedView = v
	just := types.Justification{Kind: types.JustClaim, ParentView: parent.view, ParentDigest: parent.digest}
	msg := &types.Propose{Instance: in.id, View: v, Batch: batch, Parent: just}
	d := msg.Digest()
	msg.Sig = in.r.ctx.Crypto().Sign(d[:])
	in.r.ctx.Broadcast(msg)
	in.onPropose(msg) // buffers as pending until we enter view v
}

// claimable evaluates the acceptance rules for a proposal p against its
// parent (which must be linked). ok reports whether p may be claimed now;
// wait reports that the blocking evidence may still arrive — the caller
// buffers p and retryPending re-evaluates when it does.
//
// Strict mode (the Lemma 3.4 re-derivation, see resolution.go):
//
//	S4': the declared parent view must match the parent we hold — a
//	     justification lying about its parent's view could otherwise dodge
//	     the consecutive-view rule that feeds the commit triple.
//	A1:  the parent is conditionally prepared (unchanged: the adoption
//	     ladder of §3.3 carries liveness, not commit safety).
//	ACV: a parent in the directly preceding view must be certified —
//	     claims on commit-triple shapes must carry quorum evidence.
//	A2:  Plock ∈ {parent} ∪ precedes(parent) (unchanged), or
//	A3:  the parent is certified in a view above Plock (strengthened from
//	     the seed's bare view comparison).
//
// UnsafeLegacyResolution restores the seed rules: A1 plus (A2 ∨ bare A3).
func (in *Instance) claimable(p *proposal) (ok, wait bool) {
	parent := p.parent
	if parent == nil {
		return false, false
	}
	// Digest ordering (ACD): a non-noop proposal is claimable only when its
	// batch digest holds an availability certificate — the n−f ack quorum
	// proving the payload is retrievable at delivery. The gate binds to the
	// digest, not the wire payload, so a Byzantine primary inlining
	// transactions buys nothing. With ≤ f faulty replicas, an uncertified
	// digest can never gather the n−f claims a commit triple needs. The
	// certificate may still be in flight: register for the layer's notify,
	// re-check (closing the register/notify race), and backfill from the
	// proposal's primary; retryPending re-evaluates when it lands.
	if l := in.r.cfg.Dissem; l != nil && p.batch != nil && !p.batch.NoOp {
		if l.Ordered(p.batch.ID) {
			// Already delivered: a replayed certificate must not make an old
			// digest claimable again — its payload may be evicted on every
			// correct replica, so a commit would wedge delivery on an
			// impossible backfill. Refuse outright (no evidence is pending);
			// the view resolves without it.
			return false, false
		}
		if !l.Certified(p.batch.ID) {
			in.r.awaitDigest(in.id, p.batch.ID)
			if !l.Certified(p.batch.ID) {
				l.Backfill(p.batch.ID, in.primaryOf(p.view))
				return false, true
			}
			in.r.unawaitDigest(in.id, p.batch.ID)
		}
	}
	if in.r.cfg.UnsafeLegacyResolution {
		if !parent.condPrepared {
			return false, true // A1 may be satisfied later (CP votes, cert)
		}
		return in.lockCompatible(parent) || parent.view > in.lock.view, false
	}
	// S4': declared-parent consistency. A mismatch can also mean the claim
	// that first referenced the parent carried a stale view; the parent's
	// payload corrects it (linkKnown → retryPending).
	if parent != in.genesis && parent.view != p.parentView {
		return false, true
	}
	if !parent.condPrepared {
		return false, true // A1 may be satisfied later (CP votes, cert)
	}
	// ACV: consecutive-view claims require a certified parent. The steady
	// state satisfies it for free — entering view v+1 through view v's
	// claim quorum is exactly the parent's certification.
	if p.view == parent.view+1 && !parent.claimQuorum {
		return false, true
	}
	if in.lockCompatible(parent) { // A2
		return true, false
	}
	if parent.view > in.lock.view { // A3: certified parent above the lock
		if parent.claimQuorum {
			return true, false
		}
		return false, true // certification may still arrive
	}
	return false, false
}

// lockCompatible checks A2: Plock ∈ {parent} ∪ precedes(parent).
func (in *Instance) lockCompatible(parent *proposal) bool {
	for q := parent; q != nil; q = q.parent {
		if q == in.lock {
			return true
		}
		if q.view < in.lock.view {
			break
		}
		if !q.known {
			break
		}
	}
	return false
}

// requestCertVerify schedules verification of an embedded certificate —
// n−f signatures over the parent claim — as one asynchronous batch job
// (only the recovery path needs it, §3.4). At most one job per parent is in
// flight, and a parent whose certificate was rejected is not re-verified:
// Byzantine primaries cannot starve the pipeline, and the CP-vote path
// still conditionally prepares the parent when f+1 honest endorsements
// arrive.
func (in *Instance) requestCertVerify(parent *proposal, j types.Justification) {
	if parent.certInFlight || len(j.Cert) < in.quorum() ||
		crypto.DistinctSigners(j.Cert) < in.quorum() {
		return
	}
	fp := certFingerprint(j.Cert)
	if fp != 0 && fp == parent.certRejectedFP {
		return // this exact cert already failed; don't re-verify it
	}
	parent.certInFlight = true
	in.verifySeq++
	in.certJobs[in.verifySeq] = certJob{parent: parent, view: j.ParentView, fp: fp}
	claim := types.ClaimBytes(in.id, types.Claim{View: j.ParentView, Digest: j.ParentDigest})
	checks := make([]crypto.Check, len(j.Cert))
	for i, sig := range j.Cert {
		checks[i] = crypto.Check{Sig: sig, Msg: claim}
	}
	in.r.ctx.VerifyAsync(protocol.VerifyJob{
		Tag:    protocol.TimerTag{Kind: protocol.TimerVerify, Instance: in.id, Seq: in.verifySeq},
		Checks: checks,
		Quorum: in.quorum(),
	})
}

// onVerified consumes an async certificate-verification completion.
// Stale-completion discipline: sequences not in certJobs (pruned, or
// already resolved through another path) are ignored.
func (in *Instance) onVerified(tag protocol.TimerTag, ok bool) {
	job, present := in.certJobs[tag.Seq]
	if !present {
		return
	}
	delete(in.certJobs, tag.Seq)
	job.parent.certInFlight = false
	if !ok {
		job.parent.certRejectedFP = job.fp
		// A different proposal (with a different, possibly valid cert) may
		// have been buffered while this job was in flight — retry it now
		// rather than waiting for retransmission.
		in.retryPending()
		return
	}
	if !job.parent.condPrepared {
		job.parent.view = job.view
		in.condPrepare(job.parent) // retries the buffered proposal
	} else {
		in.retryPending()
	}
	// A valid certificate is n−f signed claims for the parent in its own
	// view: exactly the certification the commit rule and the strengthened
	// A3/ACV acceptance rules require.
	in.certify(job.parent)
}

// sendSync broadcasts our Sync for view v with the given claim and records
// it locally (we count our own vote; Remark 3.1).
func (in *Instance) sendSync(v types.View, claim types.Claim, retransmit bool) {
	cp := in.buildCP()
	sig := in.r.ctx.Crypto().Sign(types.ClaimBytes(in.id, claim))
	msg := &types.Sync{Instance: in.id, View: v, Claim: claim, CP: cp, Retransmit: retransmit, Sig: sig}
	s := in.vs(v)
	s.ownSync = msg
	in.advancePhase(v, resClaimed)

	if in.r.cfg.Behavior.Mode == AttackEquivocate && !claim.Empty {
		// A3: conflicting concurring votes — empty claim to the victims.
		altClaim := types.Claim{View: v, Empty: true}
		alt := &types.Sync{Instance: in.id, View: v, Claim: altClaim, CP: cp,
			Sig: in.r.ctx.Crypto().Sign(types.ClaimBytes(in.id, altClaim))}
		for i := 0; i < in.r.cfg.N; i++ {
			id := types.NodeID(i)
			if id == in.r.ctx.ID() {
				continue
			}
			if in.r.cfg.Behavior.Victims[id] {
				in.r.ctx.Send(id, alt)
			} else {
				in.r.ctx.Send(id, msg)
			}
		}
	} else {
		in.r.ctx.Broadcast(msg)
	}
	if v >= in.view {
		in.recordSync(in.r.ctx.ID(), msg)
	}
	if in.state == stRecording && v == in.view {
		in.state = stSyncing
	}
}

// buildCP assembles the CP set: views and digests of all conditionally
// prepared proposals with view ≥ v_lock (§3.3).
func (in *Instance) buildCP() []types.CPEntry {
	out := make([]types.CPEntry, 0, 4)
	keep := in.cpList[:0]
	for _, p := range in.cpList {
		if p.view < in.lock.view || !p.condPrepared {
			continue
		}
		keep = append(keep, p)
		out = append(out, types.CPEntry{View: p.view, Digest: p.digest})
	}
	in.cpList = keep
	return out
}

// ---------------------------------------------------------------------------
// Sync handling (Figure 3 lines 20–28, Figure 4)
// ---------------------------------------------------------------------------

func (in *Instance) onSync(from types.NodeID, msg *types.Sync) {
	v := msg.View
	if v > in.view+types.View(4*in.r.cfg.PendingWindow) {
		return // flooding guard: implausibly far future
	}
	// Υ: retransmit our view-v Sync to a replica trying to catch up (§3.4).
	if msg.Retransmit {
		if s, ok := in.views[v]; ok && s.ownSync != nil && from != in.r.ctx.ID() {
			in.r.ctx.Send(from, s.ownSync)
		}
	}
	in.recordSync(from, msg)
}

// recordSync ingests one Sync message: dedups per (view, sender), updates
// claim tallies, CP endorsements, and certificate material, then evaluates
// all RVS transitions.
func (in *Instance) recordSync(from types.NodeID, msg *types.Sync) {
	v := msg.View
	if v < in.gcFloor {
		return // the view's state was retired by checkpoint GC
	}
	s := in.vs(v)
	if _, dup := s.syncs[from]; !dup {
		s.syncs[from] = msg
		// A claim is evidence only for its own view: a Sync of view v
		// carrying a claim for some other view must not enter view v's
		// tallies — a flood of mismatched claims could otherwise resolve a
		// view (∅ or batch) with evidence that belongs to neither.
		if msg.Claim.Empty {
			if msg.Claim.View == v {
				s.emptyCount++
			}
		} else if msg.Claim.View == v {
			s.claimCounts[msg.Claim.Digest]++
			p := in.getOrCreate(msg.Claim.Digest, msg.Claim.View)
			// Only sender-bound signatures become certificate material:
			// a relayed third-party signature would later assemble into
			// a cert short of distinct signers (§3.4). A nil vote map
			// marks a proposal pruned past retention (prune/gcToAnchor):
			// votes for it no longer matter, and must not be recorded —
			// a lagging replica's Sync can reference arbitrarily old
			// proposals.
			if msg.Claim.View == p.view && msg.Sig.Signer == from && p.syncVotes != nil {
				p.syncVotes[from] = msg.Sig
				if len(p.syncVotes) >= in.quorum() {
					if p.view > in.certHead.view {
						in.certHead = p
					}
					in.certify(p)
				}
			}
			// n−f distinct claims in the proposal's own view certify it —
			// the quorum the commit rule requires of every triple link.
			if p.view == v && s.claimCounts[msg.Claim.Digest] >= in.quorum() {
				in.certify(p)
			}
		}
		// CP endorsements: f+1 distinct endorsers conditionally prepare the
		// proposal (Figure 3, lines 22–23); n−f make it extendable (E2).
		for _, e := range msg.CP {
			if e.View < in.gcFloor {
				continue // retired by checkpoint GC; do not regrow
			}
			p := in.getOrCreate(e.Digest, e.View)
			if p.cpVotes == nil {
				continue // pruned past retention (see above)
			}
			p.cpVotes[from] = struct{}{}
			if len(p.cpVotes) >= in.weak() && !p.condPrepared {
				in.condPrepare(p)
			}
			if len(p.cpVotes) >= in.quorum() && p.view > in.cpHead.view {
				in.cpHead = p
			}
		}
		// Rapid view synchronization: f+1 replicas at view ≥ w > v let us
		// jump to w (Figure 4, lines 12–15). One view of skew is normal
		// pipelining (the quorum path absorbs it); jump only when genuinely
		// behind, which keeps steady-state traffic at the n² of Figure 1.
		if v > in.view+1 && len(s.syncs) >= in.weak() {
			in.catchUpTo(v)
			return
		}
	}
	in.checkTransitions()
}

// catchUpTo jumps to view w after f+1 replicas proved views ≥ w exist,
// broadcasting Sync(u, claim(∅), CP, Υ) for the skipped views so peers both
// count us and retransmit what we missed.
func (in *Instance) catchUpTo(w types.View) {
	lo := in.view
	if w-lo > types.View(in.r.cfg.CatchupWindow) {
		lo = w - types.View(in.r.cfg.CatchupWindow)
	}
	for u := lo; u < w; u++ {
		if in.vs(u).ownSync == nil {
			in.sendSync(u, types.Claim{View: u, Empty: true}, true)
		}
	}
	// A catch-up jump is a resync event: record how long the instance sat in
	// the view it fell behind at (soak instrumentation + /metrics).
	in.r.noteResync(in.r.ctx.Now() - in.viewStart)
	in.enterView(w)
}

// checkTransitions evaluates every state transition enabled by the current
// view's tallies (Figure 4).
func (in *Instance) checkTransitions() {
	v := in.view
	s := in.vs(v)
	q := in.quorum()

	// f+1 matching claims: echo the claim and fetch the payload via Ask
	// (restoration of liveness, §3.3). The echo passes through the same
	// acceptance rules as a direct claim: a claim we cannot check — the
	// proposal is unknown, or its parent lacks the required evidence —
	// is never echoed, only fetched; the claim follows through tryAccept
	// once the payload arrives. The seed echoed unknown claims on the f+1
	// backing alone, which let a locked replica complete a claim quorum
	// for a chain conflicting with its own lock (the fork-commit path);
	// UnsafeLegacyResolution retains that behaviour for the safety drill.
	if s.ownSync == nil && !s.echoed {
		for _, d := range in.weakClaims(s) {
			p := in.getOrCreate(d, v)
			if p.view != v {
				continue // a claim naming an out-of-view digest is not a view-v claim
			}
			if in.echoAcceptable(p) {
				s.echoed = true
				in.sendSync(v, types.Claim{View: v, Digest: d}, false)
				if !p.known {
					in.askFor(p, v)
				}
				break
			}
			if !p.known && !s.asked {
				s.asked = true
				in.askFor(p, v)
			}
		}
	}

	// ST2 → ST3: n−f Sync messages of the current view.
	if in.state == stSyncing && len(s.syncs) >= q {
		in.state = stCertifying
		in.certStart = in.r.ctx.Now()
		in.r.ctx.SetTimer(in.pm.EnterCertify(v), protocol.TimerTag{Kind: protocol.TimerCertifying, Instance: in.id, View: v})
	}

	// n−f matching claims: the view resolves to the certified proposal;
	// conditionally prepare it and advance (lines 10–11).
	for d, c := range s.claimCounts {
		if c >= q {
			p := in.getOrCreate(d, v)
			if p.view != v {
				continue
			}
			in.certify(p)
			if !p.condPrepared {
				in.condPrepare(p)
			}
			if !p.known && !s.asked {
				s.asked = true
				in.askFor(p, v)
			}
			if in.state == stCertifying {
				in.pm.ViewCertified(v, in.r.ctx.Now()-in.certStart)
			}
			if in.view == v {
				in.enterView(v + 1)
			}
			return
		}
	}
	// n−f matching empty claims: the view resolved ∅ for everyone — the
	// quorum-intersection evidence that no conflicting tip can certify in
	// this view (resolution.go) — and the instance advances.
	if s.emptyCount >= q && in.view == v {
		in.resolveEmpty(v)
		in.enterView(v + 1)
	}
}

// weakClaims returns the digests holding ≥ f+1 claims in deterministic
// order (count descending, then digest bytes): claim tallies live in a map,
// and iterating it on a message-emitting path would make the echo choice —
// and therefore the whole simulation — nondeterministic under equivocation.
func (in *Instance) weakClaims(s *viewState) []types.Digest {
	out := make([]types.Digest, 0, 2)
	for d, c := range s.claimCounts {
		if c >= in.weak() {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if ci, cj := s.claimCounts[out[i]], s.claimCounts[out[j]]; ci != cj {
			return ci > cj
		}
		return string(out[i][:]) < string(out[j][:])
	})
	return out
}

// echoAcceptable applies the acceptance rules to a claim-backed proposal.
// Strict mode echoes only claims it can fully check; the legacy mode trusts
// the f+1 backing for unknown proposals (§3.3's original reading — unsound,
// see checkTransitions).
func (in *Instance) echoAcceptable(p *proposal) bool {
	if in.r.cfg.Behavior.Mode == AttackSubvert {
		return false
	}
	if in.r.cfg.UnsafeLegacyResolution {
		if !p.known {
			return true
		}
		ok, _ := in.claimable(p)
		return ok
	}
	if !p.known || p.parent == nil {
		return false
	}
	ok, _ := in.claimable(p)
	return ok
}

// askFor requests the full proposal behind a claim from up to f+1 replicas
// that vouched for it. Voucher sets live in maps; targets are sorted so the
// same state always asks the same peers (simulation determinism).
func (in *Instance) askFor(p *proposal, v types.View) {
	ask := &types.Ask{Instance: in.id, View: v, Claim: types.Claim{View: p.view, Digest: p.digest}}
	self := in.r.ctx.ID()
	targets := make([]types.NodeID, 0, 2*in.weak())
	if s, ok := in.views[p.view]; ok {
		for from, m := range s.syncs {
			if !m.Claim.Empty && m.Claim.Digest == p.digest && from != self {
				targets = append(targets, from)
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	vouchers := len(targets)
	if vouchers < in.weak() {
		cps := make([]types.NodeID, 0, len(p.cpVotes))
		for from := range p.cpVotes {
			if from != self {
				cps = append(cps, from)
			}
		}
		sort.Slice(cps, func(i, j int) bool { return cps[i] < cps[j] })
		targets = append(targets, cps...)
	}
	sent := 0
	seen := make(map[types.NodeID]bool, len(targets))
	for _, from := range targets {
		if seen[from] {
			continue
		}
		seen[from] = true
		in.r.ctx.Send(from, ask)
		if sent++; sent >= in.weak() {
			return
		}
	}
}

func (in *Instance) onAsk(from types.NodeID, msg *types.Ask) {
	p, ok := in.props[msg.Claim.Digest]
	if !ok || !p.known || p.msg == nil {
		return
	}
	in.r.ctx.Send(from, p.msg)
	if !in.r.ckptEnabled() {
		return
	}
	// Recovery aid (checkpoint deployments): a replica backfilling a
	// committed-chain gap after a state-transfer install needs the whole
	// ancestor chain, and discovers parent digests only as payloads arrive
	// — serving one link per Ask round trip would cost a rate-limited
	// round per missing link. Serve the retained ancestor chain along with
	// the requested proposal, bounded by the catch-up window and, against
	// bandwidth-amplification abuse (every Ask would otherwise cost up to
	// CatchupWindow full batches), rate-limited per requester.
	now := in.r.ctx.Now()
	if last, ok := in.chainServeAt[from]; ok && now-last < in.r.cfg.RetransmitInterval {
		return
	}
	in.chainServeAt[from] = now
	sent := 0
	for q := p.parent; q != nil && q.known && q.msg != nil; q = q.parent {
		in.r.ctx.Send(from, q.msg)
		if sent++; sent >= in.r.cfg.CatchupWindow {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Proposal state progression (Definition 3.3)
// ---------------------------------------------------------------------------

// condPrepare marks a proposal conditionally prepared and derives the
// downstream states: its parent becomes conditionally committed (and
// possibly the new lock), and a three-consecutive-view chain commits the
// grandparent (§3.2).
func (in *Instance) condPrepare(p *proposal) {
	if p.condPrepared {
		return
	}
	p.condPrepared = true
	in.cpList = append(in.cpList, p)
	if p.known {
		in.deriveStates(p)
	}
	in.retryPending()
}

// linkKnown is called when a placeholder proposal gains its payload; it
// resolves deferred state implications and unblocks pending accepts. A
// certified placeholder's lock raise and commit evaluation were deferred
// until its parent link became known — they run now.
func (in *Instance) linkKnown(p *proposal) {
	if p.condPrepared {
		in.deriveStates(p)
	}
	if p.claimQuorum && !in.r.cfg.UnsafeLegacyResolution {
		if p.parent != nil {
			in.raiseLock(p.parent)
		}
		in.maybeCommitChains()
	}
	// Commit propagation across a healed chain link: if p was committed
	// while still a placeholder, the commit walk stopped at its nil parent
	// pointer and p's ancestors stayed unmarked. Extend the commitment now
	// that the ancestry is known — without this, the delivery walk reads
	// the uncommitted ancestors as ∅-resolved gaps and permanently skips
	// their batches on this replica alone: the block-for-block ledger
	// divergence of the PR 4 ROADMAP discovery (the drill's seed-8 shape;
	// legacy mode reproduces it, which is what the drill's negative
	// control pins).
	if !in.r.cfg.UnsafeLegacyResolution &&
		p.committed && p.parent != nil && !p.parent.committed {
		in.commit(p.parent)
	}
	in.retryPending()
	in.maybeDeliver()
}

// retryPending re-attempts acceptance of a buffered current-view proposal
// whose A1 precondition may have become true.
func (in *Instance) retryPending() {
	s, ok := in.views[in.view]
	if !ok || s.pending == nil || s.ownSync != nil {
		return
	}
	msg := s.pending
	s.pending = nil
	in.tryAccept(in.getOrCreate(msg.Digest(), msg.View), msg)
}

func (in *Instance) deriveStates(p *proposal) {
	parent := p.parent
	if parent == nil {
		return
	}
	if !parent.condPrepared {
		// A1 guaranteed the primary's quorum saw it; adopt transitively
		// (Lemma 3.4: n−2f non-faulty replicas conditionally prepared it).
		in.condPrepare(parent)
	}
	if parent != in.genesis && !parent.condCommitted {
		parent.condCommitted = true
		// The seed raised Plock here — on conditional commitment, whose
		// evidence floor is a single honest endorser. Strict resolution
		// raises the lock only at the certification choke point
		// (resolution.go); the conditionally-committed label itself
		// remains the CP-set and state-progression marker of §3.3.
		if in.r.cfg.UnsafeLegacyResolution {
			in.raiseLock(parent)
		}
	}
	if in.r.cfg.UnsafeLegacyResolution {
		in.maybeCommitChain(p)
	} else {
		in.maybeCommitChains()
	}
	in.maybeDeliver()
}

// maybeCommitChain applies the commit rule with p as the chain tip:
// u = w+1 = v+2 (three consecutive views, Definition 3.3). Strict
// resolution requires ALL THREE links of the triple to be certified — the
// three quorums Lemma 3.4's intersection argument stands on — and the
// declared parent views to match the links we hold (a justification lying
// about its parent's view must not assemble a triple). The legacy rule —
// the PR 4 state, kept as the safety drill's negative control — asks a
// claim quorum of the tip only, leaving the middle and base links on
// conditional-prepare evidence that one honest endorser can carry.
func (in *Instance) maybeCommitChain(p *proposal) {
	if !p.claimQuorum || !p.condPrepared || !p.known {
		return
	}
	parent := p.parent
	if parent == nil || !parent.known {
		return
	}
	gp := parent.parent
	if gp == nil || p.view != parent.view+1 || parent.view != gp.view+1 {
		return
	}
	if !in.r.cfg.UnsafeLegacyResolution {
		if !parent.claimQuorum || !gp.claimQuorum {
			return // the triple's quorums are not complete yet
		}
		if p.parentView != parent.view || parent.parentView != gp.view {
			return // declared links disagree with the chain we hold
		}
	}
	in.commit(gp)
}

// commit finalizes a proposal and its entire ancestor chain.
func (in *Instance) commit(p *proposal) {
	if p.committed {
		return
	}
	// Collect the uncommitted ancestor chain (ascending views).
	var chain []*proposal
	for q := p; q != nil && !q.committed; q = q.parent {
		chain = append(chain, q)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		chain[i].committed = true
		in.advancePhase(chain[i].view, resCommitted)
		if chain[i].view > in.lastCommit.view {
			in.lastCommit = chain[i]
		}
	}
	in.maybeDeliver()
}

// maybeDeliver hands committed proposals to the replica's total-order layer
// in chain order, head-of-line blocking on proposals whose payload is still
// being fetched (Ask).
func (in *Instance) maybeDeliver() {
	// Walk from the last delivered view upward along the committed chain.
	for {
		next, blocked := in.nextCommittedAfter(in.lastDeliver)
		if next == nil || !next.known {
			if blocked == nil && next != nil && !next.known {
				blocked = next
			}
			in.askChainGap(blocked)
			return
		}
		next.delivered = true
		in.lastDeliver = next.view
		// Hand off by value: the ordering stage must not share the mutable
		// proposal bookkeeping (prune may nil fields later), only the
		// immutable batch and identifiers.
		in.r.onCommitted(in.id, orderedCommit{view: next.view, batch: next.batch, dig: next.digest})
	}
}

// nextCommittedAfter finds the lowest committed, undelivered proposal with
// view > v by walking down from the committed head. blocked reports the
// chain link whose payload is still missing when continuity cannot be
// certified yet.
func (in *Instance) nextCommittedAfter(v types.View) (candidate, blocked *proposal) {
	for q := in.lastCommit; q != nil && q.view > v; q = q.parent {
		if q.committed && !q.delivered {
			candidate = q
		}
		if !q.known {
			return nil, q // cannot certify chain continuity yet
		}
		if !q.committed && !in.r.cfg.UnsafeLegacyResolution {
			// An uncommitted link below the committed head: commitment has
			// not propagated down this part of the chain yet (a healed
			// placeholder link; linkKnown is about to extend it). A view
			// counts as ∅-resolved only when the committed chain itself
			// jumps over it — never because a chain member is still
			// catching up, which would skip its batch for good.
			return nil, q
		}
	}
	return candidate, nil
}

// askChainGap fetches the payload of a committed-chain link this replica
// never recorded. After a checkpoint install the chain between the anchor
// and the present was learned from claims only, and head-of-line delivery
// blocks until the payloads arrive — but the per-view Sync records that
// would normally name vouchers are gone, so after asking any recorded
// vouchers we fall back to a deterministic f+1 peer set (every correct
// replica that delivered past the gap still retains it above the stable
// frontier). Rate-limited to one gap per retransmission interval; inert
// when checkpointing is disabled, preserving the seed behaviour.
func (in *Instance) askChainGap(p *proposal) {
	if p == nil || p.known || !in.r.ckptEnabled() {
		return
	}
	now := in.r.ctx.Now()
	if now-in.lastGapAsk < in.r.cfg.RetransmitInterval {
		return
	}
	in.lastGapAsk = now
	in.askFor(p, in.view)
	ask := &types.Ask{Instance: in.id, View: in.view, Claim: types.Claim{View: p.view, Digest: p.digest}}
	self := in.r.ctx.ID()
	for i, sent := 0, 0; i < in.r.cfg.N && sent < in.weak(); i++ {
		id := types.NodeID((int(self) + 1 + i) % in.r.cfg.N)
		if id == self {
			continue
		}
		in.r.ctx.Send(id, ask)
		sent++
	}
}

// ---------------------------------------------------------------------------
// Checkpoint integration (see checkpoint.go)
// ---------------------------------------------------------------------------

// installAnchor adopts a stable-checkpoint anchor as this instance's new
// delivery frontier: the anchor proposal is recorded as decided (the
// checkpoint certificate stands in for the per-view quorums that decided
// it), state behind it is collected, and the instance re-enters the
// rotation in the view after the anchor.
func (in *Instance) installAnchor(a types.Anchor) {
	if a.View == 0 {
		return // the instance had delivered nothing at the checkpoint cut
	}
	p := in.getOrCreate(a.Digest, a.View)
	p.view = a.View
	p.known = true
	p.condPrepared, p.condCommitted = true, true
	p.committed, p.delivered = true, true
	p.claimQuorum = true // the checkpoint certificate stands in for the quorums
	if in.lastDeliver < a.View {
		in.lastDeliver = a.View
	}
	in.gcToAnchor(a)
	if in.view <= a.View {
		// State transfer advanced the instance past views it never ran — the
		// heavyweight resync path (a restarted or long-partitioned replica).
		in.r.noteResync(in.r.ctx.Now() - in.viewStart)
		in.enterView(a.View + 1)
	} else {
		in.retryPending()
		in.maybeDeliver()
	}
}

// gcToAnchor garbage-collects consensus state behind a stable-checkpoint
// anchor: view bookkeeping and proposals strictly below the anchor view are
// dropped, chain links into the pruned region are severed (so the
// historical proposal chain becomes collectable rather than pinned by
// parent pointers), and the lock/head references are raised to the anchor
// when they point below it — the anchor is committed, so locking on it is
// always safe.
func (in *Instance) gcToAnchor(a types.Anchor) {
	if a.View == 0 {
		return
	}
	anchor := in.getOrCreate(a.Digest, a.View)
	if in.gcFloor < a.View {
		in.gcFloor = a.View
	}
	if in.lock.view < a.View {
		// The checkpoint certificate stands in for the per-view quorums:
		// the anchor is committed, so locking on it is grounded evidence.
		in.raiseLock(anchor)
	}
	if in.certHead.view < a.View {
		in.certHead = anchor
	}
	if in.cpHead.view < a.View {
		in.cpHead = anchor
	}
	if in.lastCommit.view < a.View {
		in.lastCommit = anchor
	}
	horizon := a.View
	for v := range in.views {
		if v < horizon {
			delete(in.views, v)
		}
	}
	for d, p := range in.props {
		if p == in.genesis || p == anchor {
			continue
		}
		if p.view < horizon {
			delete(in.props, d)
			continue
		}
		if p.parent != nil && p.parent != in.genesis && p.parent != anchor && p.parent.view < horizon {
			p.parent = nil // sever links into the pruned region
		}
	}
	// The anchor's own parent link would otherwise pin the entire
	// pre-checkpoint chain (and every retained batch) in the heap even
	// after the map entries are gone. All walks stop at the anchor — it is
	// committed and delivered — so severing is safe.
	if anchor.parent != nil && anchor.parent != in.genesis {
		anchor.parent = nil
	}
	keep := in.cpList[:0]
	for _, p := range in.cpList {
		if p.view >= horizon {
			keep = append(keep, p)
		}
	}
	in.cpList = keep
	tips := in.certTips[:0]
	for _, p := range in.certTips {
		if p.view >= horizon && !p.committed {
			tips = append(tips, p)
		}
	}
	for i := len(tips); i < len(in.certTips); i++ {
		in.certTips[i] = nil
	}
	in.certTips = tips
}

// ---------------------------------------------------------------------------
// Timers (§3.5)
// ---------------------------------------------------------------------------

func (in *Instance) onTimer(tag protocol.TimerTag) {
	switch tag.Kind {
	case protocol.TimerRecording:
		if tag.View != in.view || in.state != stRecording {
			return
		}
		// Failure in view v: claim(∅) (Figure 3, lines 18–19).
		in.pm.RecordingExpired(tag.View)
		if in.vs(tag.View).ownSync == nil {
			in.sendSync(tag.View, types.Claim{View: tag.View, Empty: true}, false)
		}
		in.state = stSyncing
		in.checkTransitions()
	case protocol.TimerCertifying:
		if tag.View != in.view || in.state != stCertifying {
			return
		}
		in.pm.CertifyExpired(tag.View)
		in.enterView(tag.View + 1)
	case protocol.TimerPropose:
		// Idle-backoff expiry: if this view still awaits our proposal, issue
		// it now — NextBatch may have a batch by now; otherwise the no-op
		// goes out (idleWait stops propose from re-arming for this view).
		// Stale-timer discipline: views we left (catch-up jumps, empty-claim
		// advances) are ignored, and so is a view we already claimed in —
		// proposing after our own claim(∅) would consume a client batch into
		// a proposal nobody can vote for.
		if tag.View != in.view || in.proposedView >= tag.View ||
			in.primaryOf(tag.View) != in.r.ctx.ID() ||
			in.vs(tag.View).ownSync != nil {
			return
		}
		in.propose(tag.View)
	case protocol.TimerRetransmit:
		// Periodic retransmission while stuck (§3.5): after two heartbeats
		// with no view progress and our claim already out (Syncing or
		// Certifying), rebroadcast our Sync with Υ so peers resend theirs.
		// The recording path is covered by tR; a fresh view never needs it.
		if in.view == in.lastProgressView && in.state != stRecording {
			s := in.vs(in.view)
			if s.ownSync != nil {
				re := *s.ownSync
				re.Retransmit = true
				in.r.ctx.Broadcast(&re)
			}
		}
		in.lastProgressView = in.view
		// Replica-level piggyback (once per heartbeat, not per instance):
		// re-advertise the newest checkpoint attestation when the cluster
		// idles, so a restarted replica can still discover the stable
		// frontier (see readvertiseCheckpoint — ordering-shard state, hence
		// the post).
		if in.id == 0 {
			in.r.post(protocol.OrderingShard, in.r.readvertiseCheckpoint)
		}
		in.r.ctx.SetTimer(in.r.cfg.RetransmitInterval, protocol.TimerTag{Kind: protocol.TimerRetransmit, Instance: in.id})
	}
}

func clampTimeout(d time.Duration, cfg Config) time.Duration {
	if d < cfg.MinTimeout {
		return cfg.MinTimeout
	}
	if d > cfg.MaxTimeout {
		return cfg.MaxTimeout
	}
	return d
}

// pruneEmergencyProps is the per-instance footprint at which the prune
// backstop opens under checkpointing (see prune).
const pruneEmergencyProps = 1 << 16

// prune discards bookkeeping behind the committed frontier (retention
// window), bounding memory in long runs. With checkpointing enabled the
// stable frontier drives GC instead (gcToAnchor), and the GC contract is
// that everything above the stable frontier stays Ask-servable — views
// advance thousands of times faster than deliveries under no-op spin, so
// a view-anchored window here would destroy payloads peers still need and
// turn transient chain holes permanent. prune therefore acts only as an
// emergency valve for a wedged stable frontier (replicas disagreeing on
// the interval, state divergence): it stays closed until the per-instance
// footprint exceeds a hard cap, then reclaims behind a widened window.
func (in *Instance) prune() {
	window := types.View(in.r.cfg.RetentionViews)
	if in.r.ckptEnabled() {
		if len(in.props) < pruneEmergencyProps && len(in.views) < pruneEmergencyProps {
			return
		}
		window *= 4
	}
	if in.lastDeliver < window {
		return
	}
	horizon := in.lastDeliver - window
	for v := range in.views {
		if v < horizon {
			delete(in.views, v)
		}
	}
	for d, p := range in.props {
		if p.view < horizon && p.delivered {
			p.batch = nil
			p.msg = nil
			p.syncVotes = nil
			p.cpVotes = nil
			if p.view+window < horizon {
				delete(in.props, d)
			}
		}
	}
}
