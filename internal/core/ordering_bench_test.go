package core_test

import (
	"testing"

	"spotless/internal/core"
	"spotless/internal/types"
)

// sinkContext is a stubContext whose deliveries are counted, not retained,
// so the benchmark measures the ordering structures rather than a test
// slice's growth.
type sinkContext struct {
	stubContext
	delivered int
}

func (c *sinkContext) Deliver(types.Commit) { c.delivered++ }

// BenchmarkOrderingDrain measures the ordering stage's merge: m instances
// hand off committed proposals round-robin and every one drains through the
// (view, instance) total order. This is the allocation budget BENCH_PR4.json
// tracks for the core loop — the min-heap over ring buffers replaced the
// O(m) min-scan and the leaky queue reslice of the seed.
func BenchmarkOrderingDrain(b *testing.B) {
	const m = 8
	ctx := &sinkContext{stubContext: *newStubContext(0, 4)}
	cfg := core.DefaultConfig(4, m)
	r := core.New(ctx, cfg)

	batches := make([]types.Batch, b.N)
	for i := range batches {
		batches[i].ID[8] = byte(i)
		batches[i].ID[9] = byte(i >> 8)
		batches[i].ID[10] = byte(i >> 16)
	}
	b.ReportAllocs()
	b.ResetTimer()
	view := types.View(0)
	for i := 0; i < b.N; i++ {
		if i%m == 0 {
			view++
		}
		r.InjectCommit(int32(i%m), view, &batches[i], batches[i].ID)
	}
	if ctx.delivered == 0 && b.N > m {
		b.Fatal("ordering stage delivered nothing")
	}
}
