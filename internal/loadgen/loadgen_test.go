package loadgen

import (
	"testing"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// fakeCtx satisfies protocol.Context for driving the collector directly.
type fakeCtx struct{ now time.Duration }

func (c *fakeCtx) ID() types.NodeID                          { return types.ClientIDBase }
func (c *fakeCtx) N() int                                    { return 4 }
func (c *fakeCtx) F() int                                    { return 1 }
func (c *fakeCtx) Now() time.Duration                        { return c.now }
func (c *fakeCtx) Send(types.NodeID, types.Message)          {}
func (c *fakeCtx) Broadcast(types.Message)                   {}
func (c *fakeCtx) SetTimer(time.Duration, protocol.TimerTag) {}
func (c *fakeCtx) VerifyAsync(protocol.VerifyJob)            {}
func (c *fakeCtx) Crypto() crypto.Provider                   { return nil }
func (c *fakeCtx) Deliver(types.Commit)                      {}
func (c *fakeCtx) NextBatch(int32) *types.Batch              { return nil }
func (c *fakeCtx) Logf(string, ...any)                       {}

// TestClosedLoopCredits: the source hands out at most `limit` batches per
// instance until completions return credits.
func TestClosedLoopCredits(t *testing.T) {
	src := NewSource(2, 3, DefaultWorkload(5))
	var got []*types.Batch
	for i := 0; i < 5; i++ {
		if b := src.Next(0, 0); b != nil {
			got = append(got, b)
		}
	}
	if len(got) != 3 {
		t.Fatalf("source issued %d batches, want limit=3", len(got))
	}
	// Completion returns a credit: a fresh batch becomes available.
	if _, ok := src.release(got[0].ID, time.Second); !ok {
		t.Fatal("release failed for an issued batch")
	}
	if b := src.Next(0, time.Second); b == nil {
		t.Fatal("no batch available after credit return")
	} else if b.Submitted != time.Second {
		t.Fatalf("refilled batch submitted at %v, want 1s", b.Submitted)
	}
	// Unknown ids do not mint credits.
	if _, ok := src.release(types.Digest{0xff}, 0); ok {
		t.Fatal("release succeeded for unknown batch")
	}
}

// TestSourceIndependentInstances: credits are per instance.
func TestSourceIndependentInstances(t *testing.T) {
	src := NewSource(2, 1, DefaultWorkload(5))
	b0 := src.Next(0, 0)
	b1 := src.Next(1, 0)
	if b0 == nil || b1 == nil {
		t.Fatal("each instance must have its own credit")
	}
	if src.Next(0, 0) != nil || src.Next(1, 0) != nil {
		t.Fatal("limits not enforced per instance")
	}
}

// TestCollectorFPlusOne: a batch completes on exactly f+1 distinct Informs,
// duplicates do not count, and latency uses the submit timestamp.
func TestCollectorFPlusOne(t *testing.T) {
	ctx := &fakeCtx{}
	src := NewSource(1, 1, DefaultWorkload(5))
	col := NewCollector(ctx, src, 1, 0)
	col.MeasureEnd = time.Hour

	b := src.Next(0, 0)
	inform := func(replica types.NodeID) {
		col.HandleMessage(replica, &types.Inform{Replica: replica, BatchID: b.ID})
	}
	ctx.now = 100 * time.Millisecond
	inform(2)
	inform(2) // duplicate replica: ignored
	if col.BatchesDone != 0 {
		t.Fatal("completed with a single distinct Inform (f+1 = 2)")
	}
	ctx.now = 150 * time.Millisecond
	inform(3)
	if col.BatchesDone != 1 || col.TxnsDone != 5 {
		t.Fatalf("batches=%d txns=%d after f+1 informs", col.BatchesDone, col.TxnsDone)
	}
	avg, p50, p99 := col.Latency()
	if avg != 150*time.Millisecond || p50 != avg || p99 != avg {
		t.Fatalf("latency %v/%v/%v, want 150ms", avg, p50, p99)
	}
	if col.Throughput() <= 0 && col.MeasureEnd != 0 {
		_ = col // throughput needs a finite window; covered by bench tests
	}
}

// TestCollectorTimeline: completions land in the right buckets.
func TestCollectorTimeline(t *testing.T) {
	ctx := &fakeCtx{}
	src := NewSource(1, 2, DefaultWorkload(5))
	col := NewCollector(ctx, src, 0, 100*time.Millisecond) // f = 0: 1 inform
	col.MeasureEnd = time.Hour
	b1 := src.Next(0, 0)
	b2 := src.Next(0, 0)
	ctx.now = 50 * time.Millisecond
	col.HandleMessage(1, &types.Inform{Replica: 1, BatchID: b1.ID})
	ctx.now = 250 * time.Millisecond
	col.HandleMessage(1, &types.Inform{Replica: 1, BatchID: b2.ID})
	tl := col.Timeline()
	if len(tl) != 2 {
		t.Fatalf("timeline buckets: %d, want 2", len(tl))
	}
	if tl[0].At != 0 || tl[0].Txns != 5 || tl[1].At != 200*time.Millisecond {
		t.Fatalf("timeline: %+v", tl)
	}
}
