// Package loadgen provides the closed-loop client model of the evaluation
// (§5, §6.3): batch sources feeding the proposing primaries, and a collector
// that plays the aggregate client — awaiting f+1 matching Informs per batch,
// recording latency, throughput, and timelines.
package loadgen

import (
	"math/rand"
	"sort"
	"time"

	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Workload parameterizes generated transactions (YCSB-style, §6: 90% writes
// over a 500k-record table).
type Workload struct {
	BatchSize  int     // transactions per batch (paper default 100)
	TxnValueSz int     // written payload bytes per transaction
	WriteRatio float64 // fraction of write transactions (paper: 0.9)
	Records    uint64  // key space (paper: 500k)
	Seed       int64
}

// DefaultWorkload mirrors §6's workload at the given batch size.
func DefaultWorkload(batchSize int) Workload {
	return Workload{BatchSize: batchSize, TxnValueSz: 33, WriteRatio: 0.9, Records: 500000, Seed: 7}
}

type batchMeta struct {
	instance  int32
	submitted time.Duration
	txns      int
}

// Source is a closed-loop batch source: every instance has a budget of
// `limit` outstanding batches; a fresh batch is queued the moment a previous
// one completes (f+1 Informs), emulating the paper's "client batches per
// primary" load knob (Figure 10).
type Source struct {
	wl      Workload
	m       int
	limit   int
	queues  [][]*types.Batch
	meta    map[types.Digest]*batchMeta
	rng     *rand.Rand
	nextSeq uint64
	// Issued counts batches handed to primaries (testing).
	Issued uint64
}

// NewSource creates a source for m instances with `limit` outstanding
// batches per instance, pre-filled at time zero.
func NewSource(m, limit int, wl Workload) *Source {
	s := &Source{
		wl:     wl,
		m:      m,
		limit:  limit,
		queues: make([][]*types.Batch, m),
		meta:   make(map[types.Digest]*batchMeta),
		rng:    rand.New(rand.NewSource(wl.Seed)),
	}
	for i := 0; i < m; i++ {
		for j := 0; j < limit; j++ {
			s.enqueue(int32(i), 0)
		}
	}
	return s
}

func (s *Source) enqueue(instance int32, now time.Duration) {
	txns := make([]types.Transaction, s.wl.BatchSize)
	for i := range txns {
		op := OpForRatio(s.rng.Float64(), s.wl.WriteRatio)
		var val []byte
		if op == types.OpWrite {
			val = make([]byte, s.wl.TxnValueSz)
		}
		txns[i] = types.Transaction{
			Client: types.ClientIDBase + types.NodeID(instance),
			Seq:    s.nextSeq,
			Op:     op,
			Key:    uint64(s.rng.Int63()) % s.wl.Records,
			Value:  val,
		}
		s.nextSeq++
	}
	b := &types.Batch{ID: types.ComputeBatchID(txns), Txns: txns, Submitted: now}
	s.queues[instance] = append(s.queues[instance], b)
	s.meta[b.ID] = &batchMeta{instance: instance, submitted: now, txns: len(txns)}
}

// OpForRatio maps a uniform sample to a YCSB operation.
func OpForRatio(u, writeRatio float64) byte {
	if u < writeRatio {
		return types.OpWrite
	}
	return types.OpRead
}

// Next implements simnet.BatchSource.
func (s *Source) Next(instance int32, now time.Duration) *types.Batch {
	if int(instance) >= s.m || len(s.queues[instance]) == 0 {
		return nil
	}
	b := s.queues[instance][0]
	s.queues[instance] = s.queues[instance][1:]
	s.Issued++
	return b
}

// release returns the credit of a completed batch, producing a fresh one.
func (s *Source) release(id types.Digest, now time.Duration) (meta *batchMeta, ok bool) {
	m, ok := s.meta[id]
	if !ok {
		return nil, false
	}
	delete(s.meta, id)
	s.enqueue(m.instance, now)
	return m, true
}

// BatchMeta is the completion record of a released batch, for harnesses
// that drive the closed loop themselves (the runtime TCP benchmark).
type BatchMeta struct {
	Instance  int32
	Submitted time.Duration
	Txns      int
}

// Release completes one batch and replenishes its instance's credit — the
// exported counterpart of the Collector's internal step. Not safe for
// concurrent use; callers serialize (the Collector runs on the client
// node's event loop, the runtime bench under its client mutex).
func (s *Source) Release(id types.Digest, now time.Duration) (BatchMeta, bool) {
	m, ok := s.release(id, now)
	if !ok {
		return BatchMeta{}, false
	}
	return BatchMeta{Instance: m.instance, Submitted: m.submitted, Txns: m.txns}, true
}

// TimelinePoint is one bucket of the throughput timeline (Figure 12).
type TimelinePoint struct {
	At   time.Duration
	Txns uint64
}

// Collector is the aggregate client: it runs as the simulator's client node,
// counts f+1 matching Informs per batch, and accumulates the metrics the
// figures report.
type Collector struct {
	ctx    protocol.Context
	src    *Source
	f      int
	bucket time.Duration

	informs map[types.Digest]map[types.NodeID]bool

	MeasureStart time.Duration
	MeasureEnd   time.Duration

	TxnsDone    uint64 // completed txns inside the measurement window
	BatchesDone uint64
	latencies   []time.Duration
	timeline    map[int64]uint64
}

// NewCollector builds the client collector. bucket > 0 enables timeline
// accumulation.
func NewCollector(ctx protocol.Context, src *Source, f int, bucket time.Duration) *Collector {
	return &Collector{
		ctx:      ctx,
		src:      src,
		f:        f,
		bucket:   bucket,
		informs:  make(map[types.Digest]map[types.NodeID]bool),
		timeline: make(map[int64]uint64),
	}
}

// Start implements protocol.Protocol.
func (c *Collector) Start() {}

// HandleTimer implements protocol.Protocol.
func (c *Collector) HandleTimer(protocol.TimerTag) {}

// HandleMessage implements protocol.Protocol: counts Informs.
func (c *Collector) HandleMessage(from types.NodeID, msg types.Message) {
	inf, ok := msg.(*types.Inform)
	if !ok {
		return
	}
	set := c.informs[inf.BatchID]
	if set == nil {
		set = make(map[types.NodeID]bool, c.f+1)
		c.informs[inf.BatchID] = set
	}
	if set[inf.Replica] {
		return
	}
	set[inf.Replica] = true
	if len(set) != c.f+1 {
		return
	}
	// f+1 matching Informs: the batch is complete (§5).
	now := c.ctx.Now()
	meta, ok := c.src.release(inf.BatchID, now)
	delete(c.informs, inf.BatchID)
	if !ok {
		return
	}
	if now >= c.MeasureStart && (c.MeasureEnd == 0 || now < c.MeasureEnd) {
		c.TxnsDone += uint64(meta.txns)
		c.BatchesDone++
		c.latencies = append(c.latencies, now-meta.submitted)
	}
	if c.bucket > 0 {
		c.timeline[int64(now/c.bucket)] += uint64(meta.txns)
	}
}

// Throughput returns completed txn/s over the measurement window.
func (c *Collector) Throughput() float64 {
	win := c.MeasureEnd - c.MeasureStart
	if win <= 0 {
		return 0
	}
	return float64(c.TxnsDone) / win.Seconds()
}

// Latency returns (avg, p50, p99) over the measurement window.
func (c *Collector) Latency() (avg, p50, p99 time.Duration) {
	if len(c.latencies) == 0 {
		return 0, 0, 0
	}
	ls := append([]time.Duration(nil), c.latencies...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	var sum time.Duration
	for _, l := range ls {
		sum += l
	}
	avg = sum / time.Duration(len(ls))
	p50 = ls[len(ls)/2]
	p99 = ls[(len(ls)*99)/100]
	return avg, p50, p99
}

// Timeline returns the throughput timeline in bucket order.
func (c *Collector) Timeline() []TimelinePoint {
	if c.bucket == 0 {
		return nil
	}
	keys := make([]int64, 0, len(c.timeline))
	for k := range c.timeline {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]TimelinePoint, len(keys))
	for i, k := range keys {
		out[i] = TimelinePoint{At: time.Duration(k) * c.bucket, Txns: c.timeline[k]}
	}
	return out
}
