package metrics

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spotless/internal/core"
	"spotless/internal/dissem"
	"spotless/internal/simnet"
	"spotless/internal/types"
	"spotless/internal/wal"
	"spotless/internal/ycsb"
)

func scrape(t *testing.T, h http.Handler) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

// TestHandlerExposition: the endpoint renders one view row per instance
// plus the delivery/resync/checkpoint gauges, and appends the dissem
// counters exactly when a layer is bound.
func TestHandlerExposition(t *testing.T) {
	sim := simnet.New(simnet.DefaultConfig(4))
	cfg := core.DefaultConfig(4, 2)
	r := core.New(sim.Context(0), cfg)

	code, body := scrape(t, Handler(Source{Replica: func() *core.Replica { return r }}))
	if code != http.StatusOK {
		t.Fatalf("scrape status %d", code)
	}
	for _, want := range []string{
		"spotless_view{instance=\"0\"} ",
		"spotless_view{instance=\"1\"} ",
		"spotless_delivered_total 0\n",
		"spotless_stable_height 0\n",
		"spotless_resyncs_total 0\n",
		"spotless_last_resync_seconds 0\n",
		"spotless_resync_stall_seconds_total 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "spotless_dissem_") {
		t.Errorf("dissem rows exported without a dissemination layer:\n%s", body)
	}

	layer := dissem.New(dissem.Config{N: 4, F: 1})
	_, body = scrape(t, Handler(Source{
		Replica: func() *core.Replica { return r },
		Dissem:  func() *dissem.Layer { return layer },
	}))
	for _, want := range []string{
		"spotless_dissem_disseminated_total 0\n",
		"spotless_dissem_certs_built_total 0\n",
		"spotless_dissem_certs_seen_total 0\n",
		"spotless_dissem_backfills_total 0\n",
		"spotless_dissem_served_total 0\n",
		"spotless_dissem_requeued_total 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestHandlerWalSnapshotRows: binding a durable store adds the wal_* rows,
// including the execution-snapshot counters — written/restored/bytes plus
// the corruption signature (quarantined, restore fallbacks) an operator
// alerts on.
func TestHandlerWalSnapshotRows(t *testing.T) {
	sim := simnet.New(simnet.DefaultConfig(4))
	r := core.New(sim.Context(0), core.DefaultConfig(4, 2))
	fsys := wal.NewMemFS()
	st, _, err := wal.Open("data", wal.Config{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	exec := types.Digest{0xE7}
	store := ycsb.NewStore(16, 8)
	blob := store.Snapshot(64, exec)
	cert := types.CheckpointCert{Height: 64, StateHash: types.Digest{1},
		Sigs: []types.Signature{{Signer: 0, Bytes: []byte{1}}}}
	if err := st.SetCheckpoint(cert, exec, types.Digest{2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot(64, blob); err != nil {
		t.Fatal(err)
	}
	st.NoteSnapshotRestored(len(blob))
	st.NoteRestoreFallback()

	_, body := scrape(t, Handler(Source{
		Replica: func() *core.Replica { return r },
		WAL:     func() *wal.Store { return st },
	}))
	for _, want := range []string{
		"spotless_wal_segments ",
		"spotless_wal_snapshot_written_total 1\n",
		"spotless_wal_snapshot_restored_total 1\n",
		fmt.Sprintf("spotless_wal_snapshot_bytes %d\n", len(blob)),
		"spotless_wal_snapshot_quarantined_total 0\n",
		"spotless_wal_snapshot_restore_fallbacks_total 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestHandlerNoReplica: an unbound (or nil-resolving) source scrapes as
// 503 — a misconfigured exporter must be visible, not silently empty.
func TestHandlerNoReplica(t *testing.T) {
	if code, _ := scrape(t, Handler(Source{})); code != http.StatusServiceUnavailable {
		t.Fatalf("nil source: status %d, want 503", code)
	}
	if code, _ := scrape(t, Handler(Source{Replica: func() *core.Replica { return nil }})); code != http.StatusServiceUnavailable {
		t.Fatalf("nil replica: status %d, want 503", code)
	}
}
