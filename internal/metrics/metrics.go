// Package metrics exposes a replica's operational counters as a minimal
// plain-text /metrics endpoint (Prometheus text exposition, no client
// library). The rows answer the operator questions the soak harness
// quantifies offline: what view is each instance in, how many resyncs has
// this replica been through, how long did the last one stall it, and is
// the dissemination layer backfilling payloads it should have received
// first-hand.
//
// Every value read here is an atomic mirror maintained by the owning
// event loop (core.Instance.CurrentView, core.Replica.Resyncs, ...), so a
// scrape never touches loop-private state and never blocks consensus.
package metrics

import (
	"fmt"
	"net"
	"net/http"

	"spotless/internal/core"
	"spotless/internal/dissem"
	"spotless/internal/transport"
	"spotless/internal/wal"
)

// Source resolves the live objects a scrape reads. These are getter
// functions, not pointers: a crash-restart (runtime.Cluster.Restart, or
// an operator bouncing spotless-replica's consensus stack) replaces the
// replica object, and a scrape must always see the current incarnation's
// counters — a captured pointer would keep exporting the dead one.
type Source struct {
	// Replica yields the consensus replica (required; nil yields a scrape
	// error so a misconfigured exporter is visible, not silently empty).
	Replica func() *core.Replica
	// Dissem yields the digest-ordering layer, or nil when the replica
	// runs without dissemination — the dissem_* rows are omitted then.
	Dissem func() *dissem.Layer
	// WAL yields the durable ledger store, or nil when ledgers are
	// memory-only — the wal_* durability rows are omitted then.
	WAL func() *wal.Store
	// Transport yields the TCP transport, or nil on the simulator — the
	// net_* byte counters corroborate the coded-dissemination egress claim
	// against what actually hit the wire.
	Transport func() *transport.TCP
}

// Handler serves the text exposition for src.
func Handler(src Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var r *core.Replica
		if src.Replica != nil {
			r = src.Replica()
		}
		if r == nil {
			http.Error(w, "metrics: no replica bound", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for i := 0; i < r.ShardCount(); i++ {
			fmt.Fprintf(w, "spotless_view{instance=\"%d\"} %d\n", i, r.Instance(int32(i)).CurrentView())
		}
		fmt.Fprintf(w, "spotless_delivered_total %d\n", r.DeliveredCount())
		fmt.Fprintf(w, "spotless_stable_height %d\n", r.StableHeight())
		fmt.Fprintf(w, "spotless_resyncs_total %d\n", r.Resyncs())
		fmt.Fprintf(w, "spotless_last_resync_seconds %g\n", r.LastResync().Seconds())
		fmt.Fprintf(w, "spotless_resync_stall_seconds_total %g\n", r.TotalResyncStall().Seconds())
		if src.Dissem != nil {
			if l := src.Dissem(); l != nil {
				st := l.Stats()
				fmt.Fprintf(w, "spotless_dissem_disseminated_total %d\n", st.Disseminated)
				fmt.Fprintf(w, "spotless_dissem_certs_built_total %d\n", st.CertsBuilt)
				fmt.Fprintf(w, "spotless_dissem_certs_seen_total %d\n", st.CertsSeen)
				fmt.Fprintf(w, "spotless_dissem_backfills_total %d\n", st.Backfills)
				fmt.Fprintf(w, "spotless_dissem_served_total %d\n", st.Served)
				fmt.Fprintf(w, "spotless_dissem_requeued_total %d\n", st.Requeued)
				// Coding rows: zero in full-push mode, live under -dissem-code.
				// pushed_bytes is origin egress (the paper's headline metric),
				// served_bytes the backfill-serving side of the same wire cost.
				fmt.Fprintf(w, "spotless_dissem_pushed_bytes_total %d\n", st.PushedBytes)
				fmt.Fprintf(w, "spotless_dissem_served_bytes_total %d\n", st.ServedBytes)
				fmt.Fprintf(w, "spotless_dissem_chunks_sent_total %d\n", st.ChunksSent)
				fmt.Fprintf(w, "spotless_dissem_chunks_received_total %d\n", st.ChunksReceived)
				fmt.Fprintf(w, "spotless_dissem_chunk_rejects_total %d\n", st.ChunkRejects)
				fmt.Fprintf(w, "spotless_dissem_chunk_pulls_total %d\n", st.ChunkPulls)
				fmt.Fprintf(w, "spotless_dissem_reconstructions_total %d\n", st.Reconstructions)
				fmt.Fprintf(w, "spotless_dissem_reconstruct_failures_total %d\n", st.ReconstructFails)
			}
		}
		if src.Transport != nil {
			if tr := src.Transport(); tr != nil {
				ts := tr.Stats()
				fmt.Fprintf(w, "spotless_net_bytes_out_total %d\n", ts.BytesOut)
				fmt.Fprintf(w, "spotless_net_bytes_in_total %d\n", ts.BytesIn)
			}
		}
		if src.WAL != nil {
			if st := src.WAL(); st != nil {
				ws := st.Stats()
				fmt.Fprintf(w, "spotless_wal_segments %d\n", ws.Segments)
				fmt.Fprintf(w, "spotless_wal_bytes_on_disk %d\n", ws.BytesOnDisk)
				fmt.Fprintf(w, "spotless_wal_head_height %d\n", ws.Head)
				fmt.Fprintf(w, "spotless_wal_appends_total %d\n", ws.Appended)
				fmt.Fprintf(w, "spotless_wal_fsyncs_total %d\n", ws.Syncs)
				fmt.Fprintf(w, "spotless_wal_last_fsync_seconds %g\n", ws.LastFsync.Seconds())
				fmt.Fprintf(w, "spotless_wal_replayed_blocks %d\n", ws.Replayed)
				fmt.Fprintf(w, "spotless_wal_recovery_truncations_total %d\n", ws.Truncations)
				failed := 0
				if ws.Failed {
					failed = 1
				}
				fmt.Fprintf(w, "spotless_wal_failed %d\n", failed)
				fmt.Fprintf(w, "spotless_wal_snapshot_written_total %d\n", ws.SnapshotsWritten)
				fmt.Fprintf(w, "spotless_wal_snapshot_restored_total %d\n", ws.SnapshotsRestored)
				fmt.Fprintf(w, "spotless_wal_snapshot_bytes %d\n", ws.SnapshotBytes)
				fmt.Fprintf(w, "spotless_wal_snapshot_quarantined_total %d\n", ws.SnapshotsQuarantined)
				fmt.Fprintf(w, "spotless_wal_snapshot_restore_fallbacks_total %d\n", ws.RestoreFallbacks)
			}
		}
	})
}

// Serve binds addr and serves /metrics in the background, returning the
// listener (its Addr carries the resolved port for addr ":0"; Close stops
// the server). Serving errors after a successful bind are ignored — the
// endpoint is diagnostic, never load-bearing for consensus.
func Serve(addr string, src Source) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(src))
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
