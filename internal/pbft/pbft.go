// Package pbft implements the Practical Byzantine Fault Tolerance baseline
// of §6.2: a heavily pipelined, MAC-authenticated, out-of-order
// primary-backup protocol. RCC (internal/rcc) runs many instances of it
// concurrently.
//
// The implementation covers the full normal case (preprepare / prepare /
// commit with out-of-order slots) and a crash-fault view change that rotates
// a non-responsive primary. Byzantine-equivocation-proof view changes are
// out of scope for this baseline (the evaluation only subjects Pbft to
// non-responsive failures, as in the paper).
package pbft

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Config parameterizes a Pbft instance.
type Config struct {
	N, F int
	// Instance tags all messages (RCC runs many Pbft instances).
	Instance int32
	// PrimaryBase: the primary of pview p is (PrimaryBase + p) mod n. RCC
	// fixes one primary per instance by using PrimaryBase = instance.
	PrimaryBase types.NodeID
	// Window is the out-of-order pipeline depth (§6.1).
	Window int
	// ProgressTimeout triggers a view change when no slot is delivered
	// while the pipeline is non-empty.
	ProgressTimeout time.Duration
	// ProposeRetry re-polls the batch source when it ran dry.
	ProposeRetry time.Duration
}

// DefaultConfig returns the tuned baseline configuration.
func DefaultConfig(n int) Config {
	return Config{
		N:      n,
		F:      (n - 1) / 3,
		Window: 64,
		// The watchdog must sit above the worst-case slot latency, which
		// grows with the all-to-all phases' serialization at scale.
		ProgressTimeout: 150*time.Millisecond + time.Duration(n)*3*time.Millisecond,
		ProposeRetry:    2 * time.Millisecond,
	}
}

type slot struct {
	batch      *types.Batch
	digest     types.Digest
	prepares   map[types.NodeID]bool
	commits    map[types.NodeID]bool
	sentCommit bool
	committed  bool
}

// Replica is one Pbft replica (for one instance).
type Replica struct {
	ctx protocol.Context
	cfg Config

	pview    types.View
	seqHead  uint64 // next sequence the primary will propose
	lowWater uint64 // next sequence to deliver
	slots    map[uint64]*slot

	vcVotes map[types.View]map[types.NodeID]uint64

	lastDelivered uint64
	lastProgress  time.Duration
	suspended     bool // RCC suspension: drop all instance work

	// OnDeliver overrides delivery (RCC total ordering); nil delivers
	// directly to ctx.Deliver with View = sequence.
	OnDeliver func(seq uint64, batch *types.Batch, digest types.Digest)

	// Delivered counts slots delivered in order (testing).
	Delivered uint64
}

// New creates a Pbft replica.
func New(ctx protocol.Context, cfg Config) *Replica {
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	return &Replica{
		ctx:     ctx,
		cfg:     cfg,
		slots:   make(map[uint64]*slot),
		vcVotes: make(map[types.View]map[types.NodeID]uint64),
	}
}

func (r *Replica) primary() types.NodeID {
	return types.NodeID((uint64(r.cfg.PrimaryBase) + uint64(r.pview)) % uint64(r.cfg.N))
}

func (r *Replica) isPrimary() bool { return r.primary() == r.ctx.ID() }

func (r *Replica) quorum() int { return 2*r.cfg.F + 1 }

func (r *Replica) slot(seq uint64) *slot {
	s, ok := r.slots[seq]
	if !ok {
		s = &slot{prepares: make(map[types.NodeID]bool), commits: make(map[types.NodeID]bool)}
		r.slots[seq] = s
	}
	return s
}

// Start implements protocol.Protocol.
func (r *Replica) Start() {
	r.lastProgress = r.ctx.Now()
	if r.isPrimary() {
		r.fillPipeline()
	}
	r.ctx.SetTimer(r.cfg.ProgressTimeout, protocol.TimerTag{Kind: protocol.TimerPbft, Instance: r.cfg.Instance})
}

// Suspend pauses/resumes the instance (RCC exponential-backoff penalty).
func (r *Replica) Suspend(on bool) {
	r.suspended = on
	if !on {
		r.lastProgress = r.ctx.Now()
		if r.isPrimary() {
			r.fillPipeline()
		}
	}
}

// LowWater exposes the delivery frontier (RCC gating and tests).
func (r *Replica) LowWater() uint64 { return r.lowWater }

// fillPipeline keeps Window slots in flight (out-of-order processing, §4).
func (r *Replica) fillPipeline() {
	if r.suspended || !r.isPrimary() {
		return
	}
	proposed := false
	for r.seqHead < r.lowWater+uint64(r.cfg.Window) {
		batch := r.ctx.NextBatch(r.cfg.Instance)
		if batch == nil {
			if !proposed {
				r.ctx.SetTimer(r.cfg.ProposeRetry, protocol.TimerTag{Kind: protocol.TimerPropose, Instance: r.cfg.Instance})
			}
			return
		}
		proposed = true
		pp := &types.PrePrepare{Instance: r.cfg.Instance, PView: r.pview, Seq: r.seqHead, Batch: batch}
		r.seqHead++
		r.ctx.Broadcast(pp)
		r.onPrePrepare(r.ctx.ID(), pp)
	}
}

// IngressJob implements protocol.IngressVerifier. Pbft is the paper's
// MAC-authenticated baseline (§6.2): none of its messages carry digital
// signatures, so the declaration is empty and authentication happens
// entirely at the transport layer — pairwise MACs checked on reader
// goroutines (TCP) or charged at delivery (simulation). Declaring that
// explicitly keeps all five protocols uniform for the substrates' ingress
// pipeline.
func (r *Replica) IngressJob(from types.NodeID, msg types.Message) (protocol.VerifyJob, bool) {
	return protocol.VerifyJob{}, false
}

var (
	_ protocol.Protocol        = (*Replica)(nil)
	_ protocol.IngressVerifier = (*Replica)(nil)
)

// HandleMessage implements protocol.Protocol.
func (r *Replica) HandleMessage(from types.NodeID, msg types.Message) {
	if r.suspended {
		return
	}
	switch m := msg.(type) {
	case *types.PrePrepare:
		r.onPrePrepare(from, m)
	case *types.Prepare:
		r.onPrepare(from, m)
	case *types.PbftCommit:
		r.onCommit(from, m)
	case *types.ViewChange:
		r.onViewChange(from, m)
	case *types.NewPView:
		r.onNewPView(from, m)
	}
}

func (r *Replica) onPrePrepare(from types.NodeID, m *types.PrePrepare) {
	if m.PView != r.pview || from != r.primary() || m.Batch == nil {
		return
	}
	if m.Seq < r.lowWater || m.Seq >= r.lowWater+uint64(4*r.cfg.Window) {
		return
	}
	s := r.slot(m.Seq)
	if s.batch != nil && s.digest != m.Batch.ID {
		return // conflicting payload for a retained slot: keep the first
	}
	if s.batch == nil {
		s.batch = m.Batch
		s.digest = m.Batch.ID
	}
	// A primary proposing is progress; the watchdog must not count idle
	// pipeline time against it.
	r.lastProgress = r.ctx.Now()
	if s.prepares[r.ctx.ID()] {
		return // already prepared this slot in this view
	}
	p := &types.Prepare{Instance: r.cfg.Instance, PView: m.PView, Seq: m.Seq, Digest: s.digest}
	r.ctx.Broadcast(p)
	r.onPrepare(r.ctx.ID(), p)
}

func (r *Replica) onPrepare(from types.NodeID, m *types.Prepare) {
	if m.PView != r.pview {
		return
	}
	s := r.slot(m.Seq)
	if s.prepares[from] {
		return
	}
	s.prepares[from] = true
	if len(s.prepares) >= r.quorum() && s.batch != nil && !s.sentCommit {
		s.sentCommit = true
		c := &types.PbftCommit{Instance: r.cfg.Instance, PView: m.PView, Seq: m.Seq, Digest: s.digest}
		r.ctx.Broadcast(c)
		r.onCommit(r.ctx.ID(), c)
	}
}

func (r *Replica) onCommit(from types.NodeID, m *types.PbftCommit) {
	if m.PView != r.pview {
		return
	}
	s := r.slot(m.Seq)
	if s.commits[from] {
		return
	}
	s.commits[from] = true
	if len(s.commits) >= r.quorum() && s.batch != nil && !s.committed {
		s.committed = true
		r.drain()
	}
}

// drain delivers committed slots in sequence order and refills the pipeline.
func (r *Replica) drain() {
	for {
		s, ok := r.slots[r.lowWater]
		if !ok || !s.committed {
			break
		}
		seq := r.lowWater
		delete(r.slots, seq)
		r.lowWater++
		r.Delivered++
		r.lastProgress = r.ctx.Now()
		if r.OnDeliver != nil {
			r.OnDeliver(seq, s.batch, s.digest)
		} else {
			r.ctx.Deliver(types.Commit{Instance: r.cfg.Instance, View: types.View(seq), Batch: s.batch, Proposal: s.digest})
		}
	}
	r.fillPipeline()
}

// HandleTimer implements protocol.Protocol.
func (r *Replica) HandleTimer(tag protocol.TimerTag) {
	if r.suspended {
		return
	}
	switch tag.Kind {
	case protocol.TimerPropose:
		r.fillPipeline()
	case protocol.TimerPbft:
		// Progress watchdog: a stuck pipeline with an alive backlog means
		// the primary failed — demand a view change.
		stuck := len(r.slots) > 0 && r.ctx.Now()-r.lastProgress > r.cfg.ProgressTimeout
		if stuck && !r.isPrimary() {
			vc := &types.ViewChange{Instance: r.cfg.Instance, NewPView: r.pview + 1, LastSeq: r.lowWater}
			r.ctx.Broadcast(vc)
			r.onViewChange(r.ctx.ID(), vc)
		}
		r.ctx.SetTimer(r.cfg.ProgressTimeout, protocol.TimerTag{Kind: protocol.TimerPbft, Instance: r.cfg.Instance})
	}
}

func (r *Replica) onViewChange(from types.NodeID, m *types.ViewChange) {
	if m.NewPView <= r.pview {
		return
	}
	votes := r.vcVotes[m.NewPView]
	if votes == nil {
		votes = make(map[types.NodeID]uint64)
		r.vcVotes[m.NewPView] = votes
	}
	votes[from] = m.LastSeq
	if len(votes) < r.quorum() {
		return
	}
	// Install the new view; the new primary restarts the pipeline from the
	// highest reported low-water mark (crash-fault recovery).
	start := r.lowWater
	for _, s := range votes {
		if s > start {
			start = s
		}
	}
	r.installView(m.NewPView, start)
	if r.isPrimary() {
		np := &types.NewPView{Instance: r.cfg.Instance, PView: r.pview, StartSeq: start}
		r.ctx.Broadcast(np)
		r.fillPipeline()
	}
}

func (r *Replica) onNewPView(from types.NodeID, m *types.NewPView) {
	if m.PView < r.pview {
		return
	}
	if from != types.NodeID((uint64(r.cfg.PrimaryBase)+uint64(m.PView))%uint64(r.cfg.N)) {
		return
	}
	r.installView(m.PView, m.StartSeq)
}

func (r *Replica) installView(v types.View, start uint64) {
	if v < r.pview {
		return
	}
	r.pview = v
	if start > r.lowWater {
		r.lowWater = start
		r.seqHead = start
	}
	if r.seqHead < r.lowWater {
		r.seqHead = r.lowWater
	}
	// In-flight slots restart in the new view: votes of the old view are
	// void, every replica re-prepares its retained payloads, and the new
	// primary re-proposes them so no client batch is lost across a view
	// change.
	for seq, s := range r.slots {
		if seq < r.lowWater {
			delete(r.slots, seq)
			continue
		}
		s.prepares = make(map[types.NodeID]bool)
		s.commits = make(map[types.NodeID]bool)
		s.sentCommit = false
		if s.batch != nil && !s.committed {
			p := &types.Prepare{Instance: r.cfg.Instance, PView: r.pview, Seq: seq, Digest: s.digest}
			r.ctx.Broadcast(p)
			r.onPrepare(r.ctx.ID(), p)
		}
	}
	if r.isPrimary() {
		for seq := r.lowWater; seq < r.seqHead; seq++ {
			s, ok := r.slots[seq]
			batch := (*types.Batch)(nil)
			if ok && s.batch != nil {
				batch = s.batch
				s.batch = nil // re-adopted via onPrePrepare below
				s.digest = types.Digest{}
			} else {
				batch = noopBatch(r.cfg.Instance, r.pview, seq)
			}
			pp := &types.PrePrepare{Instance: r.cfg.Instance, PView: r.pview, Seq: seq, Batch: batch}
			r.ctx.Broadcast(pp)
			r.onPrePrepare(r.ctx.ID(), pp)
		}
	}
	for pv := range r.vcVotes {
		if pv <= r.pview {
			delete(r.vcVotes, pv)
		}
	}
	r.lastProgress = r.ctx.Now()
}

// noopBatch fills a slot whose payload was lost with the crashed primary;
// the execution layer skips no-ops, and the client's retry resubmits the
// original request (§5 of the SpotLess paper's client model).
func noopBatch(instance int32, pview types.View, seq uint64) *types.Batch {
	var buf [20]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(instance))
	binary.LittleEndian.PutUint64(buf[4:], uint64(pview))
	binary.LittleEndian.PutUint64(buf[12:], seq)
	return &types.Batch{ID: sha256.Sum256(buf[:]), NoOp: true}
}

// DebugString summarizes replica state (calibration probes).
func (r *Replica) DebugString() string {
	out := fmt.Sprintf("pview=%d lw=%d head=%d slots=%d", r.pview, r.lowWater, r.seqHead, len(r.slots))
	if s, ok := r.slots[r.lowWater]; ok {
		out += fmt.Sprintf(" slot%d{batch=%v prep=%d com=%d committed=%v}",
			r.lowWater, s.batch != nil, len(s.prepares), len(s.commits), s.committed)
	}
	return out
}
