package pbft

import (
	"testing"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// fakeCtx drives one Pbft replica deterministically.
type fakeCtx struct {
	id      types.NodeID
	n, f    int
	now     time.Duration
	sent    []types.Message
	commits []types.Commit
	batches []*types.Batch
}

func (c *fakeCtx) ID() types.NodeID   { return c.id }
func (c *fakeCtx) N() int             { return c.n }
func (c *fakeCtx) F() int             { return c.f }
func (c *fakeCtx) Now() time.Duration { return c.now }
func (c *fakeCtx) Send(to types.NodeID, m types.Message) {
	c.sent = append(c.sent, m)
}
func (c *fakeCtx) Broadcast(m types.Message)                 { c.sent = append(c.sent, m) }
func (c *fakeCtx) SetTimer(time.Duration, protocol.TimerTag) {}
func (c *fakeCtx) VerifyAsync(protocol.VerifyJob)            {}
func (c *fakeCtx) Crypto() crypto.Provider {
	return crypto.NewSimProvider(c.id, crypto.CostModel{}, nil)
}
func (c *fakeCtx) Deliver(cm types.Commit) { c.commits = append(c.commits, cm) }
func (c *fakeCtx) Logf(string, ...any)     {}
func (c *fakeCtx) NextBatch(int32) *types.Batch {
	if len(c.batches) == 0 {
		return nil
	}
	b := c.batches[0]
	c.batches = c.batches[1:]
	return b
}

func mkBatch(tag byte) *types.Batch {
	txns := []types.Transaction{{Client: types.ClientIDBase, Seq: uint64(tag), Op: types.OpWrite, Key: uint64(tag)}}
	return &types.Batch{ID: types.ComputeBatchID(txns), Txns: txns}
}

// newBackup builds replica 1 of a 4-replica Pbft group (primary is 0).
func newBackup() (*Replica, *fakeCtx) {
	ctx := &fakeCtx{id: 1, n: 4, f: 1}
	r := New(ctx, DefaultConfig(4))
	r.Start()
	return r, ctx
}

// drive commits slot seq at a backup: preprepare from the primary plus
// prepares and commits from the two other replicas (own messages counted
// internally).
func drive(r *Replica, seq uint64, b *types.Batch) {
	r.HandleMessage(0, &types.PrePrepare{Seq: seq, Batch: b})
	for _, from := range []types.NodeID{0, 2} {
		r.HandleMessage(from, &types.Prepare{Seq: seq, Digest: b.ID})
	}
	for _, from := range []types.NodeID{0, 2} {
		r.HandleMessage(from, &types.PbftCommit{Seq: seq, Digest: b.ID})
	}
}

// TestPbftThreePhaseCommit: a slot delivers after preprepare, 2f+1
// prepares, and 2f+1 commits.
func TestPbftThreePhaseCommit(t *testing.T) {
	r, ctx := newBackup()
	b := mkBatch(1)
	drive(r, 0, b)
	if len(ctx.commits) != 1 || ctx.commits[0].Batch.ID != b.ID {
		t.Fatalf("commits: %+v", ctx.commits)
	}
	if r.LowWater() != 1 {
		t.Fatalf("low water: %d", r.LowWater())
	}
}

// TestPbftInOrderDelivery: out-of-order committed slots deliver in sequence
// order only.
func TestPbftInOrderDelivery(t *testing.T) {
	r, ctx := newBackup()
	b0, b1 := mkBatch(1), mkBatch(2)
	drive(r, 1, b1) // slot 1 commits first
	if len(ctx.commits) != 0 {
		t.Fatal("slot 1 delivered before slot 0")
	}
	drive(r, 0, b0)
	if len(ctx.commits) != 2 {
		t.Fatalf("commits after gap fill: %d", len(ctx.commits))
	}
	if ctx.commits[0].Batch.ID != b0.ID || ctx.commits[1].Batch.ID != b1.ID {
		t.Fatal("delivery order violated")
	}
}

// TestPbftRejectsForeignPreprepare: preprepares not from the current
// primary are ignored.
func TestPbftRejectsForeignPreprepare(t *testing.T) {
	r, ctx := newBackup()
	b := mkBatch(3)
	r.HandleMessage(2, &types.PrePrepare{Seq: 0, Batch: b}) // not the primary
	for _, from := range []types.NodeID{0, 2, 3} {
		r.HandleMessage(from, &types.Prepare{Seq: 0, Digest: b.ID})
		r.HandleMessage(from, &types.PbftCommit{Seq: 0, Digest: b.ID})
	}
	if len(ctx.commits) != 0 {
		t.Fatal("slot committed from a foreign preprepare")
	}
}

// TestPbftDuplicateVotesIgnored: repeated prepares from one replica count
// once.
func TestPbftDuplicateVotesIgnored(t *testing.T) {
	r, ctx := newBackup()
	b := mkBatch(4)
	r.HandleMessage(0, &types.PrePrepare{Seq: 0, Batch: b})
	for i := 0; i < 5; i++ {
		r.HandleMessage(2, &types.Prepare{Seq: 0, Digest: b.ID})
	}
	for i := 0; i < 5; i++ {
		r.HandleMessage(2, &types.PbftCommit{Seq: 0, Digest: b.ID})
	}
	if len(ctx.commits) != 0 {
		t.Fatal("duplicate votes reached quorum")
	}
}

// TestPbftViewChangeQuorum: 2f+1 ViewChange messages rotate the primary and
// the new primary announces the new view.
func TestPbftViewChangeQuorum(t *testing.T) {
	ctx := &fakeCtx{id: 1, n: 4, f: 1, batches: []*types.Batch{mkBatch(9)}}
	r := New(ctx, DefaultConfig(4))
	r.Start()
	// Replica 1 is the primary of pview 1: on quorum it must announce.
	for _, from := range []types.NodeID{0, 2, 3} {
		r.HandleMessage(from, &types.ViewChange{NewPView: 1, LastSeq: 0})
	}
	var announced bool
	for _, m := range ctx.sent {
		if np, ok := m.(*types.NewPView); ok && np.PView == 1 {
			announced = true
		}
	}
	if !announced {
		t.Fatal("new primary did not announce the view change")
	}
	if !r.isPrimary() {
		t.Fatal("replica 1 should be primary of pview 1")
	}
}

// TestPbftSuspendStopsWork: a suspended instance ignores traffic (RCC
// penalty) and resumes afterward.
func TestPbftSuspendStopsWork(t *testing.T) {
	r, ctx := newBackup()
	r.Suspend(true)
	drive(r, 0, mkBatch(5))
	if len(ctx.commits) != 0 {
		t.Fatal("suspended instance committed")
	}
	r.Suspend(false)
	drive(r, 0, mkBatch(6))
	if len(ctx.commits) != 1 {
		t.Fatal("resumed instance did not commit")
	}
}

// TestPbftWindowBound: the primary keeps at most Window slots in flight.
func TestPbftWindowBound(t *testing.T) {
	batches := make([]*types.Batch, 32)
	for i := range batches {
		batches[i] = mkBatch(byte(i))
	}
	ctx := &fakeCtx{id: 0, n: 4, f: 1, batches: batches}
	cfg := DefaultConfig(4)
	cfg.Window = 4
	r := New(ctx, cfg)
	r.Start()
	pps := 0
	for _, m := range ctx.sent {
		if _, ok := m.(*types.PrePrepare); ok {
			pps++
		}
	}
	if pps != 4 {
		t.Fatalf("primary proposed %d slots, window is 4", pps)
	}
	_ = r
}
