package pbft_test

import (
	"testing"
	"time"

	"spotless/internal/loadgen"
	"spotless/internal/pbft"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

func newCluster(t testing.TB, n int) (*simnet.Simulation, []*pbft.Replica, *loadgen.Collector) {
	t.Helper()
	scfg := simnet.DefaultConfig(n)
	scfg.BaseHandlerCost = time.Microsecond
	sim := simnet.New(scfg)
	src := loadgen.NewSource(1, 4, loadgen.DefaultWorkload(10))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, (n-1)/3, 0)
	sim.SetProtocol(simnet.ClientNode, col)
	var reps []*pbft.Replica
	for i := 0; i < n; i++ {
		r := pbft.New(sim.Context(types.NodeID(i)), pbft.DefaultConfig(n))
		reps = append(reps, r)
		sim.SetProtocol(types.NodeID(i), r)
	}
	sim.Start()
	return sim, reps, col
}

// TestPbftNormalCase: slots commit in order under load.
func TestPbftNormalCase(t *testing.T) {
	sim, reps, col := newCluster(t, 4)
	sim.Run(500 * time.Millisecond)
	if col.TxnsDone == 0 {
		t.Fatalf("no transactions completed")
	}
	for i, r := range reps {
		if r.Delivered == 0 {
			t.Errorf("replica %d delivered nothing", i)
		}
	}
}

// TestPbftBackupFailure: quorums survive f non-responsive backups.
func TestPbftBackupFailure(t *testing.T) {
	sim, _, col := newCluster(t, 4)
	sim.SetDown(3, true) // backup (primary is replica 0)
	sim.Run(500 * time.Millisecond)
	if col.TxnsDone == 0 {
		t.Fatalf("no progress with one failed backup")
	}
}

// TestPbftViewChange: a crashed primary is rotated out and progress resumes.
func TestPbftViewChange(t *testing.T) {
	sim, reps, col := newCluster(t, 4)
	sim.Run(300 * time.Millisecond)
	before := col.TxnsDone
	if before == 0 {
		t.Fatalf("no progress before failure")
	}
	sim.SetDown(0, true) // primary of pview 0
	sim.Run(3 * time.Second)
	if col.TxnsDone <= before {
		t.Fatalf("no progress after primary failure: before=%d after=%d", before, col.TxnsDone)
	}
	for i := 1; i < 4; i++ {
		_ = reps[i]
	}
}
