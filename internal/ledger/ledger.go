// Package ledger implements the immutable blockchain ledger of Apache
// ResilientDB (§6.1): an append-only, hash-chained record of every executed
// batch together with the consensus proof reference, providing strong data
// provenance.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sync"

	"spotless/internal/types"
)

// Block is one ledger entry.
type Block struct {
	Height   uint64
	Prev     types.Digest // hash of the previous block
	Instance int32
	View     types.View
	BatchID  types.Digest
	Proposal types.Digest // digest of the committing proposal (the proof ref)
	Results  types.Digest // execution-result digest
	Hash     types.Digest
}

func (b *Block) computeHash() types.Digest {
	var buf [8 + 32 + 4 + 8 + 32 + 32 + 32]byte
	binary.LittleEndian.PutUint64(buf[0:], b.Height)
	copy(buf[8:], b.Prev[:])
	binary.LittleEndian.PutUint32(buf[40:], uint32(b.Instance))
	binary.LittleEndian.PutUint64(buf[44:], uint64(b.View))
	copy(buf[52:], b.BatchID[:])
	copy(buf[84:], b.Proposal[:])
	copy(buf[116:], b.Results[:])
	return sha256.Sum256(buf[:])
}

// Ledger is an append-only hash chain.
type Ledger struct {
	mu     sync.RWMutex
	blocks []Block
}

// New creates an empty ledger.
func New() *Ledger { return &Ledger{} }

// Append adds a block for an executed batch and returns it.
func (l *Ledger) Append(c types.Commit, results types.Digest) Block {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := Block{
		Height:   uint64(len(l.blocks)),
		Instance: c.Instance,
		View:     c.View,
		Proposal: c.Proposal,
		Results:  results,
	}
	if c.Batch != nil {
		b.BatchID = c.Batch.ID
	}
	if len(l.blocks) > 0 {
		b.Prev = l.blocks[len(l.blocks)-1].Hash
	}
	b.Hash = b.computeHash()
	l.blocks = append(l.blocks, b)
	return b
}

// Height returns the number of blocks.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.blocks))
}

// Block returns the block at the given height.
func (l *Ledger) Block(h uint64) (Block, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if h >= uint64(len(l.blocks)) {
		return Block{}, false
	}
	return l.blocks[h], true
}

// Errors returned by Verify.
var (
	ErrBrokenChain = errors.New("ledger: previous-hash mismatch")
	ErrBadHash     = errors.New("ledger: block hash mismatch")
)

// Verify re-hashes the chain and checks every link.
func (l *Ledger) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var prev types.Digest
	for i := range l.blocks {
		b := &l.blocks[i]
		if b.Prev != prev {
			return ErrBrokenChain
		}
		if b.computeHash() != b.Hash {
			return ErrBadHash
		}
		prev = b.Hash
	}
	return nil
}
