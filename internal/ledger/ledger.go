// Package ledger implements the blockchain ledger of Apache ResilientDB
// (§6.1): an append-only, hash-chained record of every executed batch
// together with the consensus proof reference, providing strong data
// provenance. The chain is checkpoint-aware: Truncate prunes blocks behind a
// stable checkpoint while retaining a verifiable chain-resume hash, Snapshot
// describes the resume point, and AppendRecord ingests blocks received via
// state transfer — so a rejoining replica rebuilds a chain whose links still
// verify from the checkpoint onward.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"spotless/internal/types"
)

// Block is one ledger entry. It aliases types.BlockRecord so state-transfer
// chunks can carry ledger segments without a dependency cycle.
type Block = types.BlockRecord

func computeHash(b *Block) types.Digest {
	var buf [8 + 32 + 4 + 8 + 32 + 32 + 32]byte
	binary.LittleEndian.PutUint64(buf[0:], b.Height)
	copy(buf[8:], b.Prev[:])
	binary.LittleEndian.PutUint32(buf[40:], uint32(b.Instance))
	binary.LittleEndian.PutUint64(buf[44:], uint64(b.View))
	copy(buf[52:], b.BatchID[:])
	copy(buf[84:], b.Proposal[:])
	copy(buf[116:], b.Results[:])
	return sha256.Sum256(buf[:])
}

// Snapshot describes a ledger's resume point: every block below Height is
// pruned, and Resume is the hash of the last pruned block — the value the
// first retained block's Prev link must match for the chain to verify.
type Snapshot struct {
	Height uint64
	Resume types.Digest
}

// Store is a durable mirror of the ledger's mutations (internal/wal is the
// production implementation). Every chain-shape change — append, truncate,
// rollback, reset — persists through it, so a crashed replica replays its
// chain from local disk instead of re-fetching it over the network. Methods
// are invoked under the ledger's lock on the ordering stage.
type Store interface {
	AppendBlock(b Block) error
	Truncate(below uint64, resume types.Digest) error
	Rollback(from uint64) error
	Reset(s Snapshot) error
}

// Ledger is a hash chain, append-only above its truncation point.
type Ledger struct {
	mu     sync.RWMutex
	base   uint64       // height of blocks[0]
	resume types.Digest // hash of block base−1 (zero at genesis)
	blocks []Block

	store    Store // optional durable mirror
	storeErr error // sticky: first persistence failure stops mirroring
}

// Bind attaches a durable store. Later mutations mirror through it; on the
// first store error the ledger stops persisting (a gap mid-chain would
// poison every later record — the surviving on-disk prefix stays valid) and
// reports it via StoreErr. The in-memory chain is never affected.
func (l *Ledger) Bind(st Store) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.store = st
}

// StoreErr reports the sticky durable-store failure, if any.
func (l *Ledger) StoreErr() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.storeErr
}

// persistLocked mirrors one mutation to the bound store (mu held).
func (l *Ledger) persistLocked(op func(Store) error) {
	if l.store == nil || l.storeErr != nil {
		return
	}
	if err := op(l.store); err != nil {
		l.storeErr = err
	}
}

// New creates an empty ledger rooted at genesis.
func New() *Ledger { return &Ledger{} }

// NewAt creates an empty ledger resuming at a snapshot point, as a rejoining
// replica does after adopting a stable checkpoint.
func NewAt(s Snapshot) *Ledger { return &Ledger{base: s.Height, resume: s.Resume} }

// Reset discards every retained block and re-roots the ledger at a snapshot
// point — the state-transfer install path on a rejoining replica, whose own
// (shorter) chain prefix is superseded by the stable checkpoint.
func (l *Ledger) Reset(s Snapshot) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base = s.Height
	l.resume = s.Resume
	l.blocks = nil
	l.persistLocked(func(st Store) error { return st.Reset(s) })
}

// Append adds a block for an executed batch and returns it.
func (l *Ledger) Append(c types.Commit, results types.Digest) Block {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := Block{
		Height:   l.base + uint64(len(l.blocks)),
		Instance: c.Instance,
		View:     c.View,
		Proposal: c.Proposal,
		Results:  results,
	}
	if c.Batch != nil {
		b.BatchID = c.Batch.ID
	}
	if len(l.blocks) > 0 {
		b.Prev = l.blocks[len(l.blocks)-1].Hash
	} else {
		b.Prev = l.resume
	}
	b.Hash = computeHash(&b)
	l.blocks = append(l.blocks, b)
	l.persistLocked(func(st Store) error { return st.AppendBlock(b) })
	return b
}

// Height returns the next height to be appended (total blocks ever chained).
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base + uint64(len(l.blocks))
}

// Block returns the block at the given height; ok is false when the height
// is beyond the chain or behind the truncation point.
func (l *Ledger) Block(h uint64) (Block, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if h < l.base || h >= l.base+uint64(len(l.blocks)) {
		return Block{}, false
	}
	return l.blocks[h-l.base], true
}

// Blocks returns up to max retained blocks starting at height from (ordered,
// possibly empty). State transfer serves chunks with it.
func (l *Ledger) Blocks(from uint64, max int) []types.BlockRecord {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if from < l.base {
		from = l.base
	}
	end := l.base + uint64(len(l.blocks))
	if from >= end {
		return nil
	}
	n := end - from
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]types.BlockRecord, n)
	copy(out, l.blocks[from-l.base:from-l.base+n])
	return out
}

// Snapshot returns the current resume point (the truncation frontier).
func (l *Ledger) Snapshot() Snapshot {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return Snapshot{Height: l.base, Resume: l.resume}
}

// Errors returned by Verify, Truncate, and AppendRecord.
var (
	ErrBrokenChain = errors.New("ledger: previous-hash mismatch")
	ErrBadHash     = errors.New("ledger: block hash mismatch")
	ErrGap         = errors.New("ledger: non-contiguous height")
)

// Truncate prunes every block below the given height, keeping the pruned
// frontier's hash as the chain-resume point. Truncating at or below the
// current base is a no-op; truncating beyond the chain head is an error.
func (l *Ledger) Truncate(below uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if below <= l.base {
		return nil
	}
	if below > l.base+uint64(len(l.blocks)) {
		return fmt.Errorf("%w: truncate %d beyond height %d", ErrGap, below, l.base+uint64(len(l.blocks)))
	}
	keep := below - l.base
	l.resume = l.blocks[keep-1].Hash
	l.blocks = append([]Block(nil), l.blocks[keep:]...)
	l.base = below
	l.persistLocked(func(st Store) error { return st.Truncate(below, l.resume) })
	return nil
}

// Rollback discards every block at or above the given height — the
// state-transfer install path when the consensus replay contradicts an
// imported (unattested) segment suffix. Rolling back below the base is
// rejected: blocks behind the truncation point are final. from == base is
// allowed — the first imported block sits exactly at the base and is
// attested only through its resume link, so the replay must be able to
// discard it too.
func (l *Ledger) Rollback(from uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		return fmt.Errorf("%w: rollback %d below base %d", ErrGap, from, l.base)
	}
	if from >= l.base+uint64(len(l.blocks)) {
		return nil
	}
	l.blocks = l.blocks[:from-l.base]
	l.persistLocked(func(st Store) error { return st.Rollback(from) })
	return nil
}

// AppendRecord ingests one block received via state transfer, verifying its
// hash and its link to the current head before chaining it.
func (l *Ledger) AppendRecord(b types.BlockRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b.Height != l.base+uint64(len(l.blocks)) {
		return fmt.Errorf("%w: got %d, want %d", ErrGap, b.Height, l.base+uint64(len(l.blocks)))
	}
	want := l.resume
	if len(l.blocks) > 0 {
		want = l.blocks[len(l.blocks)-1].Hash
	}
	if b.Prev != want {
		return ErrBrokenChain
	}
	if computeHash(&b) != b.Hash {
		return ErrBadHash
	}
	l.blocks = append(l.blocks, b)
	l.persistLocked(func(st Store) error { return st.AppendBlock(b) })
	return nil
}

// Head returns the next height to be appended together with the hash the
// next block will chain from (the last block's hash, or the resume hash
// when no blocks are retained) — the requester's position in a suffix
// state-transfer fetch.
func (l *Ledger) Head() (uint64, types.Digest) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.blocks) > 0 {
		return l.base + uint64(len(l.blocks)), l.blocks[len(l.blocks)-1].Hash
	}
	return l.base, l.resume
}

// Restore rebuilds a ledger from a durable store's recovery output: the
// snapshot and the replayed block records. Every record is re-verified
// (hash and chain link); at the first broken link the on-disk tail is
// rolled back to match the verified prefix and the remainder is dropped —
// a restored replica never serves records it cannot vouch for. The store
// is bound to the returned ledger, so later mutations persist through it.
// The returned count is the number of blocks kept; err (non-fatal) reports
// a replay cut short.
func Restore(s Snapshot, blocks []Block, st Store) (*Ledger, int, error) {
	l := NewAt(s)
	var replayErr error
	for i := range blocks {
		if err := l.AppendRecord(blocks[i]); err != nil {
			replayErr = fmt.Errorf("replayed block %d: %w", blocks[i].Height, err)
			if st != nil {
				if rbErr := st.Rollback(l.base + uint64(len(l.blocks))); rbErr != nil {
					replayErr = fmt.Errorf("%v (disk rollback failed: %v)", replayErr, rbErr)
				}
			}
			break
		}
	}
	l.Bind(st)
	return l, len(l.blocks), replayErr
}

// Verify re-hashes the retained chain and checks every link from the resume
// point onward.
func (l *Ledger) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	prev := l.resume
	for i := range l.blocks {
		b := &l.blocks[i]
		if b.Prev != prev {
			return ErrBrokenChain
		}
		if computeHash(b) != b.Hash {
			return ErrBadHash
		}
		prev = b.Hash
	}
	return nil
}
