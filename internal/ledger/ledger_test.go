package ledger

import (
	"testing"
	"testing/quick"

	"spotless/internal/types"
)

func commitFor(i byte) types.Commit {
	return types.Commit{
		Instance: int32(i % 4),
		View:     types.View(i),
		Batch:    &types.Batch{ID: types.Digest{i}},
		Proposal: types.Digest{i, i},
	}
}

// TestAppendAndVerify: a chain of appends verifies and reports heights.
func TestAppendAndVerify(t *testing.T) {
	l := New()
	for i := byte(0); i < 10; i++ {
		b := l.Append(commitFor(i), types.Digest{0xee, i})
		if b.Height != uint64(i) {
			t.Fatalf("height: got %d want %d", b.Height, i)
		}
	}
	if l.Height() != 10 {
		t.Fatalf("ledger height %d", l.Height())
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	blk, ok := l.Block(5)
	if !ok || blk.View != 5 {
		t.Fatalf("block 5: %+v ok=%v", blk, ok)
	}
	if _, ok := l.Block(99); ok {
		t.Fatal("out-of-range block returned")
	}
}

// TestChainLinkage: each block's Prev equals the predecessor's Hash.
func TestChainLinkage(t *testing.T) {
	l := New()
	for i := byte(0); i < 5; i++ {
		l.Append(commitFor(i), types.Digest{})
	}
	for h := uint64(1); h < 5; h++ {
		cur, _ := l.Block(h)
		prev, _ := l.Block(h - 1)
		if cur.Prev != prev.Hash {
			t.Fatalf("broken linkage at height %d", h)
		}
	}
}

// TestTamperDetection: modifying any block breaks verification.
func TestTamperDetection(t *testing.T) {
	l := New()
	for i := byte(0); i < 6; i++ {
		l.Append(commitFor(i), types.Digest{})
	}
	l.blocks[3].View = 999 // tamper
	if err := l.Verify(); err == nil {
		t.Fatal("tampered ledger verified")
	}
	l.blocks[3].Hash = computeHash(&l.blocks[3]) // fix hash, break link
	if err := l.Verify(); err == nil {
		t.Fatal("re-hashed tampered block still verified (link must break)")
	}
}

// TestTruncateKeepsVerifiableResume: pruning behind a checkpoint keeps the
// chain verifiable via the resume hash, preserves retained blocks, and
// refuses truncation beyond the head.
func TestTruncateKeepsVerifiableResume(t *testing.T) {
	l := New()
	for i := byte(0); i < 10; i++ {
		l.Append(commitFor(i), types.Digest{0xee, i})
	}
	pruned, _ := l.Block(3) // last block below the cut
	if err := l.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("truncated ledger must still verify: %v", err)
	}
	if snap := l.Snapshot(); snap.Height != 4 || snap.Resume != pruned.Hash {
		t.Fatalf("snapshot %+v, want height 4 resume %x", snap, pruned.Hash[:4])
	}
	if _, ok := l.Block(3); ok {
		t.Fatal("pruned block still accessible")
	}
	if b, ok := l.Block(4); !ok || b.Prev != pruned.Hash {
		t.Fatalf("first retained block broken: %+v ok=%v", b, ok)
	}
	if l.Height() != 10 {
		t.Fatalf("height changed by truncation: %d", l.Height())
	}
	// Idempotent / no-op below base; error beyond head.
	if err := l.Truncate(2); err != nil {
		t.Fatalf("truncate below base must be a no-op: %v", err)
	}
	if err := l.Truncate(99); err == nil {
		t.Fatal("truncate beyond head must fail")
	}
	// Appends continue the chain across the truncation point.
	l.Append(commitFor(10), types.Digest{})
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestResumeFromSnapshotAndImport: a fresh ledger seeded from a snapshot
// ingests transferred blocks, verifies every link, and rejects gaps, broken
// links, and tampered blocks — the rejoining replica's exact code path.
func TestResumeFromSnapshotAndImport(t *testing.T) {
	src := New()
	for i := byte(0); i < 8; i++ {
		src.Append(commitFor(i), types.Digest{0xab, i})
	}
	if err := src.Truncate(5); err != nil {
		t.Fatal(err)
	}
	chunk := src.Blocks(0, 0) // from clamps to base; 0 = no cap
	if len(chunk) != 3 || chunk[0].Height != 5 {
		t.Fatalf("served segment wrong: len=%d first=%d", len(chunk), chunk[0].Height)
	}

	dst := NewAt(Snapshot{Height: 5, Resume: chunk[0].Prev})
	for _, b := range chunk {
		if err := dst.AppendRecord(b); err != nil {
			t.Fatalf("import height %d: %v", b.Height, err)
		}
	}
	if err := dst.Verify(); err != nil {
		t.Fatal(err)
	}
	if dst.Height() != src.Height() {
		t.Fatalf("resumed height %d, want %d", dst.Height(), src.Height())
	}
	// Native appends continue seamlessly after the import.
	dst.Append(commitFor(8), types.Digest{})
	if err := dst.Verify(); err != nil {
		t.Fatal(err)
	}

	// Rejections: gap, broken link, bad hash.
	far := chunk[2]
	far.Height += 5
	if err := NewAt(Snapshot{Height: 5, Resume: chunk[0].Prev}).AppendRecord(far); err == nil {
		t.Fatal("gap accepted")
	}
	bad := chunk[0]
	bad.Prev = types.Digest{0xff}
	if err := NewAt(Snapshot{Height: 5, Resume: chunk[0].Prev}).AppendRecord(bad); err == nil {
		t.Fatal("broken link accepted")
	}
	forged := chunk[0]
	forged.Results = types.Digest{0x66}
	if err := NewAt(Snapshot{Height: 5, Resume: chunk[0].Prev}).AppendRecord(forged); err == nil {
		t.Fatal("tampered block accepted")
	}
}

// TestRollbackBounds: a contradicted import suffix can be rolled back from
// the base upward (the first imported block is attested only through its
// resume link), but never below the base.
func TestRollbackBounds(t *testing.T) {
	src := New()
	for i := byte(0); i < 6; i++ {
		src.Append(commitFor(i), types.Digest{})
	}
	if err := src.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if err := src.Rollback(2); err == nil {
		t.Fatal("rollback below base accepted")
	}
	if err := src.Rollback(3); err != nil { // from == base: the whole import
		t.Fatal(err)
	}
	if src.Height() != 3 {
		t.Fatalf("height after full rollback: %d, want 3", src.Height())
	}
	// The chain resumes correctly after re-appending.
	src.Append(commitFor(9), types.Digest{})
	if err := src.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestBlocksWindow: the serving helper respects from/max bounds.
func TestBlocksWindow(t *testing.T) {
	l := New()
	for i := byte(0); i < 6; i++ {
		l.Append(commitFor(i), types.Digest{})
	}
	if got := l.Blocks(2, 3); len(got) != 3 || got[0].Height != 2 || got[2].Height != 4 {
		t.Fatalf("window wrong: %+v", got)
	}
	if got := l.Blocks(6, 10); got != nil {
		t.Fatalf("past-head window must be empty, got %d", len(got))
	}
}

// TestLedgerProperty: any sequence of commits produces a verifiable chain
// whose height equals the number of appends (testing/quick).
func TestLedgerProperty(t *testing.T) {
	prop := func(views []uint16) bool {
		l := New()
		for _, v := range views {
			l.Append(types.Commit{View: types.View(v), Batch: &types.Batch{ID: types.Digest{byte(v)}}}, types.Digest{})
		}
		return l.Height() == uint64(len(views)) && l.Verify() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
