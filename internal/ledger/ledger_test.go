package ledger

import (
	"testing"
	"testing/quick"

	"spotless/internal/types"
)

func commitFor(i byte) types.Commit {
	return types.Commit{
		Instance: int32(i % 4),
		View:     types.View(i),
		Batch:    &types.Batch{ID: types.Digest{i}},
		Proposal: types.Digest{i, i},
	}
}

// TestAppendAndVerify: a chain of appends verifies and reports heights.
func TestAppendAndVerify(t *testing.T) {
	l := New()
	for i := byte(0); i < 10; i++ {
		b := l.Append(commitFor(i), types.Digest{0xee, i})
		if b.Height != uint64(i) {
			t.Fatalf("height: got %d want %d", b.Height, i)
		}
	}
	if l.Height() != 10 {
		t.Fatalf("ledger height %d", l.Height())
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	blk, ok := l.Block(5)
	if !ok || blk.View != 5 {
		t.Fatalf("block 5: %+v ok=%v", blk, ok)
	}
	if _, ok := l.Block(99); ok {
		t.Fatal("out-of-range block returned")
	}
}

// TestChainLinkage: each block's Prev equals the predecessor's Hash.
func TestChainLinkage(t *testing.T) {
	l := New()
	for i := byte(0); i < 5; i++ {
		l.Append(commitFor(i), types.Digest{})
	}
	for h := uint64(1); h < 5; h++ {
		cur, _ := l.Block(h)
		prev, _ := l.Block(h - 1)
		if cur.Prev != prev.Hash {
			t.Fatalf("broken linkage at height %d", h)
		}
	}
}

// TestTamperDetection: modifying any block breaks verification.
func TestTamperDetection(t *testing.T) {
	l := New()
	for i := byte(0); i < 6; i++ {
		l.Append(commitFor(i), types.Digest{})
	}
	l.blocks[3].View = 999 // tamper
	if err := l.Verify(); err == nil {
		t.Fatal("tampered ledger verified")
	}
	l.blocks[3].Hash = l.blocks[3].computeHash() // fix hash, break link
	if err := l.Verify(); err == nil {
		t.Fatal("re-hashed tampered block still verified (link must break)")
	}
}

// TestLedgerProperty: any sequence of commits produces a verifiable chain
// whose height equals the number of appends (testing/quick).
func TestLedgerProperty(t *testing.T) {
	prop := func(views []uint16) bool {
		l := New()
		for _, v := range views {
			l.Append(types.Commit{View: types.View(v), Batch: &types.Batch{ID: types.Digest{byte(v)}}}, types.Digest{})
		}
		return l.Height() == uint64(len(views)) && l.Verify() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
