package rcc_test

import (
	"testing"
	"time"

	"spotless/internal/loadgen"
	"spotless/internal/rcc"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

func newCluster(t testing.TB, n, m int) (*simnet.Simulation, []*rcc.Replica, *loadgen.Collector) {
	t.Helper()
	scfg := simnet.DefaultConfig(n)
	scfg.BaseHandlerCost = time.Microsecond
	sim := simnet.New(scfg)
	src := loadgen.NewSource(m, 4, loadgen.DefaultWorkload(10))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, (n-1)/3, 0)
	sim.SetProtocol(simnet.ClientNode, col)
	var reps []*rcc.Replica
	for i := 0; i < n; i++ {
		r := rcc.New(sim.Context(types.NodeID(i)), rcc.DefaultConfig(n, m))
		reps = append(reps, r)
		sim.SetProtocol(types.NodeID(i), r)
	}
	sim.Start()
	return sim, reps, col
}

// TestRCCNormalCase: all m instances decide and the round order executes.
func TestRCCNormalCase(t *testing.T) {
	sim, reps, col := newCluster(t, 4, 4)
	sim.Run(400 * time.Millisecond)
	if col.TxnsDone == 0 {
		t.Fatalf("no transactions completed")
	}
	for i, r := range reps {
		if r.Delivered == 0 {
			t.Errorf("replica %d delivered nothing", i)
		}
	}
}

// TestRCCInstanceSuspension: a failed primary's instance is suspended after
// complaints and the remaining instances keep the system live.
func TestRCCInstanceSuspension(t *testing.T) {
	sim, _, col := newCluster(t, 4, 4)
	sim.Run(300 * time.Millisecond)
	before := col.TxnsDone
	if before == 0 {
		t.Fatalf("no progress before failure")
	}
	sim.SetDown(1, true) // primary of instance 1
	// Recovery spans complaint collection plus the suspension penalty;
	// -short trims the tail past the first post-suspension deliveries.
	window := 3 * time.Second
	if testing.Short() {
		window = 1500 * time.Millisecond
	}
	sim.Run(window)
	if col.TxnsDone <= before {
		t.Fatalf("no progress after instance-primary failure: before=%d after=%d", before, col.TxnsDone)
	}
}
