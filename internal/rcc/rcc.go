// Package rcc implements the RCC baseline of §6.2: Resilient Concurrent
// Consensus (Gupta et al., ICDE 2021). RCC turns Pbft into a concurrent
// consensus protocol by running m instances — each with a fixed, distinct
// primary — and ordering decisions round-robin across instances. Failed
// primaries are detected by complaints and their instances are suspended
// for an exponentially increasing penalty, which produces the throughput
// oscillations of Figure 12.
package rcc

import (
	"fmt"
	"time"

	"spotless/internal/pbft"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Config parameterizes an RCC replica.
type Config struct {
	N, F      int
	Instances int
	// Window is the per-instance out-of-order depth.
	Window int
	// DetectInterval is the failure-detector period.
	DetectInterval time.Duration
	// BasePenalty is the first suspension length; it doubles per repeated
	// failure of the same instance ("exponentially increasing number of
	// rounds", §1).
	BasePenalty time.Duration
}

// DefaultConfig returns the tuned baseline configuration.
func DefaultConfig(n, m int) Config {
	return Config{
		N:              n,
		F:              (n - 1) / 3,
		Instances:      m,
		Window:         64,
		DetectInterval: 150 * time.Millisecond,
		BasePenalty:    500 * time.Millisecond,
	}
}

type instanceState struct {
	pb         *pbft.Replica
	queue      []queued
	lastSeen   uint64 // delivery frontier at the previous detector tick
	stallTicks int    // consecutive detector ticks without progress
	suspended  bool
	resumeAt   time.Duration
	graceUntil time.Duration // no complaints right after a resume
	penalty    time.Duration
	complaints map[uint64]map[types.NodeID]bool // epoch -> senders
	epoch      uint64
}

type queued struct {
	seq    uint64
	batch  *types.Batch
	digest types.Digest
}

// Replica is one RCC replica coordinating m Pbft instances.
type Replica struct {
	ctx  protocol.Context
	cfg  Config
	inst []*instanceState

	// Delivered counts globally ordered batches (testing).
	Delivered uint64
}

const timerDetect = 101

// New creates an RCC replica.
func New(ctx protocol.Context, cfg Config) *Replica {
	if cfg.Instances < 1 {
		cfg.Instances = 1
	}
	r := &Replica{ctx: ctx, cfg: cfg}
	for i := 0; i < cfg.Instances; i++ {
		pcfg := pbft.Config{
			N:               cfg.N,
			F:               cfg.F,
			Instance:        int32(i),
			PrimaryBase:     types.NodeID(i), // fixed primary per instance
			Window:          cfg.Window,
			ProgressTimeout: cfg.DetectInterval,
			ProposeRetry:    2 * time.Millisecond,
		}
		is := &instanceState{
			pb:         pbft.New(ctx, pcfg),
			complaints: make(map[uint64]map[types.NodeID]bool),
			penalty:    cfg.BasePenalty,
		}
		idx := i
		is.pb.OnDeliver = func(seq uint64, batch *types.Batch, digest types.Digest) {
			r.onDeliver(idx, seq, batch, digest)
		}
		r.inst = append(r.inst, is)
	}
	return r
}

// Start implements protocol.Protocol.
func (r *Replica) Start() {
	for _, is := range r.inst {
		is.pb.Start()
	}
	r.ctx.SetTimer(r.cfg.DetectInterval, protocol.TimerTag{Kind: timerDetect})
}

// HandleMessage implements protocol.Protocol.
func (r *Replica) HandleMessage(from types.NodeID, msg types.Message) {
	if c, ok := msg.(*types.Complaint); ok {
		r.onComplaint(from, c)
		return
	}
	if i, ok := instanceOf(msg); ok && int(i) < len(r.inst) {
		r.inst[i].pb.HandleMessage(from, msg)
	}
}

// IngressJob implements protocol.IngressVerifier. RCC inherits Pbft's
// MAC-only authentication: neither Complaints nor the per-instance Pbft
// traffic carry digital signatures, so there is nothing to fan out to the
// verification pipeline (authentication is transport-level, like pbft).
func (r *Replica) IngressJob(from types.NodeID, msg types.Message) (protocol.VerifyJob, bool) {
	return protocol.VerifyJob{}, false
}

var (
	_ protocol.Protocol        = (*Replica)(nil)
	_ protocol.IngressVerifier = (*Replica)(nil)
)

func instanceOf(msg types.Message) (int32, bool) {
	switch m := msg.(type) {
	case *types.PrePrepare:
		return m.Instance, true
	case *types.Prepare:
		return m.Instance, true
	case *types.PbftCommit:
		return m.Instance, true
	case *types.ViewChange:
		return m.Instance, true
	case *types.NewPView:
		return m.Instance, true
	}
	return 0, false
}

// HandleTimer implements protocol.Protocol.
func (r *Replica) HandleTimer(tag protocol.TimerTag) {
	if tag.Kind == timerDetect {
		r.detect()
		r.ctx.SetTimer(r.cfg.DetectInterval, protocol.TimerTag{Kind: timerDetect})
		return
	}
	if int(tag.Instance) < len(r.inst) {
		r.inst[tag.Instance].pb.HandleTimer(tag)
	}
}

// detect is RCC's failure detector: an instance whose frontier stalls for
// consecutive ticks while the pack pulls far ahead draws a complaint;
// resumption re-arms detection (after a grace period) with a doubled
// penalty. The thresholds are deliberately conservative: a transient lag
// must not trigger the exponential penalty, or healthy instances cascade
// into suspension at scale.
func (r *Replica) detect() {
	stallGap := uint64(2*r.cfg.Window + 8)
	now := r.ctx.Now()
	var maxLW uint64
	for _, is := range r.inst {
		if lw := is.pb.LowWater(); lw > maxLW {
			maxLW = lw
		}
	}
	for i, is := range r.inst {
		lw := is.pb.LowWater()
		if is.suspended {
			if now >= is.resumeAt {
				is.suspended = false
				is.pb.Suspend(false)
				is.lastSeen = is.pb.LowWater()
				is.stallTicks = 0
				is.graceUntil = now + 4*r.cfg.DetectInterval
			}
			continue
		}
		if lw == is.lastSeen && maxLW >= lw+stallGap && now >= is.graceUntil {
			is.stallTicks++
			if is.stallTicks >= 2 {
				c := &types.Complaint{Instance: int32(i), Round: is.epoch}
				r.ctx.Broadcast(c)
				r.onComplaint(r.ctx.ID(), c)
			}
		} else if lw != is.lastSeen {
			is.stallTicks = 0
		}
		is.lastSeen = lw
	}
	r.drain()
}

func (r *Replica) onComplaint(from types.NodeID, m *types.Complaint) {
	if int(m.Instance) >= len(r.inst) {
		return
	}
	is := r.inst[m.Instance]
	if is.suspended || m.Round != is.epoch {
		return
	}
	set := is.complaints[m.Round]
	if set == nil {
		set = make(map[types.NodeID]bool)
		is.complaints[m.Round] = set
	}
	if set[from] {
		return
	}
	set[from] = true
	if len(set) < 2*r.cfg.F+1 {
		return
	}
	// Quorum of complaints: suspend the instance for the current penalty
	// and double it for the next failure.
	delete(is.complaints, m.Round)
	is.epoch++
	is.suspended = true
	is.resumeAt = r.ctx.Now() + is.penalty
	is.penalty *= 2
	is.pb.Suspend(true)
	r.drain()
}

// onDeliver funnels per-instance commits into the cross-instance round-robin
// total order.
func (r *Replica) onDeliver(idx int, seq uint64, batch *types.Batch, digest types.Digest) {
	is := r.inst[idx]
	is.queue = append(is.queue, queued{seq: seq, batch: batch, digest: digest})
	r.drain()
}

// drain executes the cross-instance total order: decision (seq, inst) runs
// once every live instance has decided through seq (round-based ordering,
// §4.1 of the RCC paper); suspended instances neither block nor wait.
func (r *Replica) drain() {
	for {
		minF := ^uint64(0)
		for _, is := range r.inst {
			if is.suspended {
				continue
			}
			if lw := is.pb.LowWater(); lw < minF {
				minF = lw
			}
		}
		best := -1
		var bestSeq uint64
		for i, is := range r.inst {
			if len(is.queue) == 0 {
				continue
			}
			q := is.queue[0]
			if !is.suspended && q.seq >= minF {
				continue // wait for slower live instances (round gate)
			}
			if best == -1 || q.seq < bestSeq {
				best = i
				bestSeq = q.seq
			}
		}
		if best == -1 {
			return
		}
		is := r.inst[best]
		q := is.queue[0]
		is.queue = is.queue[1:]
		r.Delivered++
		r.ctx.Deliver(types.Commit{Instance: int32(best), View: types.View(q.seq), Batch: q.batch, Proposal: q.digest})
	}
}

// DebugString summarizes instance progress (calibration probes).
func (r *Replica) DebugString() string {
	suspended, minLW, maxLW, qsum := 0, ^uint64(0), uint64(0), 0
	for _, is := range r.inst {
		if is.suspended {
			suspended++
		}
		lw := is.pb.LowWater()
		if lw < minLW {
			minLW = lw
		}
		if lw > maxLW {
			maxLW = lw
		}
		qsum += len(is.queue)
	}
	// Include the slowest instance's pbft state.
	slow := 0
	for i, is := range r.inst {
		if is.pb.LowWater() == minLW {
			slow = i
			break
		}
	}
	return fmt.Sprintf("delivered=%d suspended=%d lw=[%d..%d] queued=%d slow=inst%d{%s}",
		r.Delivered, suspended, minLW, maxLW, qsum, slow, r.inst[slow].pb.DebugString())
}
