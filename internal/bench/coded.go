package bench

import (
	"fmt"
	"time"
)

// This file is the erasure-coded dissemination experiment (ISSUE 10): at
// n=16 under the asymmetric WAN delay matrix with constrained per-node
// egress bandwidth, compare coded dissemination (one RS chunk per peer,
// certificates over the chunk commitment) against the full-payload push.
// The claim under test: origin egress per delivered batch drops from
// (n−1)·|B| to ~(n−1)/k·|B| while committed throughput holds — the
// bandwidth the full push burns on redundant payload copies was the
// binding resource.

func init() {
	Figures = append(Figures, Figure{
		ID:    "dissem-coded",
		Title: "Erasure-coded dissemination: origin egress and throughput, coded vs full push (n=16, WAN)",
		Run:   CodedFigure,
	})
}

// CodedPoint is one batch-size point: the same WAN cluster and load run
// with full-push dissemination (k=0 control) and with coded dissemination.
type CodedPoint struct {
	BatchSize int
	K         int
	Full      Result // full-payload push (control)
	Coded     Result // erasure-coded chunks
}

// EgressRatio is coded origin-push bytes per delivered batch over the full
// push's — the headline number of the experiment (0 when the control
// delivered nothing).
func (p CodedPoint) EgressRatio() float64 {
	if p.Full.PushBytesPerBatch == 0 {
		return 0
	}
	return p.Coded.PushBytesPerBatch / p.Full.PushBytesPerBatch
}

// CodedSweepSizes is the default sweep. Batches of 1000+ txns are the
// regime the coding targets: below that the per-chunk commitment overhead
// (m hashes per message) eats the savings.
var CodedSweepSizes = []int{1000, 10000}

// CodedK is the sweep's data-chunk count. At n=16 (f=5) the certificate
// guarantees any k ≤ n−2f = 6 reconstructs; k=4 keeps a 1.5x safety margin
// while already cutting origin egress below 0.3x.
const CodedK = 4

// CodedSweep runs the coded-vs-full comparison at the given batch sizes
// (nil selects CodedSweepSizes).
func CodedSweep(sizes []int) []CodedPoint {
	if sizes == nil {
		sizes = CodedSweepSizes
	}
	out := make([]CodedPoint, 0, len(sizes))
	for _, bs := range sizes {
		out = append(out, CodedPoint{
			BatchSize: bs,
			K:         CodedK,
			Full:      Run(codedOpts(bs, 0)),
			Coded:     Run(codedOpts(bs, CodedK)),
		})
	}
	return out
}

// codedOpts is the sweep's shared configuration: a 16-replica cluster
// spread over the paper's four WAN regions, per-node egress constrained to
// 400 Mbps so payload fan-out (not CPU) is the contended resource. Both
// arms differ only in DissemCode.
//
// Outstanding is 32, deeper than the PR 6 dissemination sweep: coded
// delivery adds a chunk-pull round trip between certificate and
// reconstruction, and the closed loop must keep enough batches in flight
// to hide that WAN RTT or the coded arm measures its pipeline depth
// instead of the bandwidth it frees (the full-push arm runs the same
// window, so the comparison stays apples-to-apples).
//
// Instances stays at 4 (not the SpotLess default m=n): digest ordering
// moves payloads off the consensus critical path, so consensus parallelism
// beyond a handful of instances adds events without adding committed
// payload — and the experiment is about dissemination bandwidth, not
// instance scaling.
func codedOpts(batchSize, k int) Options {
	o := Options{
		Protocol:      SpotLess,
		N:             16,
		Instances:     4,
		BatchSize:     batchSize,
		Dissem:        true,
		DissemCode:    k,
		TuneBatchSize: 100,
		BandwidthMbps: 400,
		RegionCount:   4,
		Outstanding:   32,
	}
	o.Measure = 1500 * time.Millisecond
	if quickTrim {
		o.Measure = 400 * time.Millisecond
	}
	return o
}

// CodedFigure regenerates the dissem-coded table.
func CodedFigure(quick bool) []Table {
	sizes := CodedSweepSizes
	if quick {
		sizes = []int{1000}
	}
	t := &Table{ID: "dissem-coded",
		Title:   fmt.Sprintf("coded vs full-push dissemination (SpotLess, n=16, 4 WAN regions, 400 Mbps/node, k=%d)", CodedK),
		Headers: []string{"batch", "arm", "ktxn/s", "avg latency ms", "push KB/batch", "egress ratio", "reconstructions", "poisoned"}}
	for _, p := range CodedSweep(sizes) {
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("%d", p.BatchSize), "full push",
				ktps(p.Full.Throughput), lat(p.Full.AvgLatency),
				fmt.Sprintf("%.0f", p.Full.PushBytesPerBatch/1024), "1.00", "—", "—"},
			[]string{fmt.Sprintf("%d", p.BatchSize), fmt.Sprintf("coded k=%d", p.K),
				ktps(p.Coded.Throughput), lat(p.Coded.AvgLatency),
				fmt.Sprintf("%.0f", p.Coded.PushBytesPerBatch/1024),
				fmt.Sprintf("%.2f", p.EgressRatio()),
				fmt.Sprintf("%d", p.Coded.Reconstructions),
				fmt.Sprintf("%d", p.Coded.ReconstructFails)},
		)
	}
	return []Table{*t}
}
