package bench

import (
	"testing"
	"time"
)

// TestProbeScale bisects SpotLess throughput across n (calibration probe).
func TestProbeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, n := range []int{8, 16, 32, 64} {
		start := time.Now()
		res := Run(Options{Protocol: SpotLess, N: n,
			Warmup: 150 * time.Millisecond, Measure: 300 * time.Millisecond})
		t.Logf("SpotLess n=%3d: %8.0f txn/s, lat=%10s, msgs/batch=%8.1f (wall %s)",
			n, res.Throughput, res.AvgLatency, res.MsgsPerBatch, time.Since(start).Round(time.Millisecond))
	}
}
