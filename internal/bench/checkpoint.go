package bench

import (
	"fmt"
	"time"

	"spotless/internal/core"
)

func init() {
	Figures = append(Figures, Figure{
		ID:    "ablation-checkpoint",
		Title: "Ablation: checkpointing — steady-state memory bound and crash/recovery via state transfer",
		Run:   CheckpointAblation,
	})
}

// CheckpointAblation benchmarks the checkpoint + GC + state-transfer
// subsystem along its two claims:
//
//   - bounded memory: with checkpointing disabled (and the fixed retention
//     window widened out of the way) per-instance proposal/view bookkeeping
//     grows with the number of views passed; with checkpointing every K
//     heights it stays O(K), at no throughput cost;
//   - crash recovery: a replica killed mid-run and revived with empty state
//     can only re-enter the rotation through the stable checkpoint — under
//     a bounded retention window alone it never rebuilds the pruned chain,
//     while with checkpointing it installs the stable state and commits new
//     batches within a bounded delay.
func CheckpointAblation(quick bool) []Table {
	n := 32
	if quick {
		n = 16
	}
	var out []Table

	// --- steady-state retained consensus state ---
	t1 := &Table{ID: "ablation-checkpoint", Title: fmt.Sprintf("retained consensus state after a long run, SpotLess, n=%d", n),
		Headers: []string{"variant", "max proposals", "max view states", "ktxn/s"}}
	for _, interval := range []int{0, 64} {
		res := Run(Options{Protocol: SpotLess, N: n,
			CheckpointInterval: interval,
			RetentionViews:     1 << 30, // disable the fixed-window fallback: expose raw growth
			Measure:            800 * time.Millisecond,
		})
		name := "no checkpoints (state grows with views)"
		if interval > 0 {
			name = fmt.Sprintf("checkpoint every %d heights (state O(K))", interval)
		}
		t1.Rows = append(t1.Rows, []string{name,
			fmt.Sprintf("%d", res.StateProposals), fmt.Sprintf("%d", res.StateViews),
			ktps(res.Throughput)})
	}
	out = append(out, *t1)

	// --- kill-and-rejoin ---
	// One replica crashes at 300 ms and restarts with empty state at 600 ms.
	// Both variants bound memory: the baseline by a fixed retention window
	// (views outside it are pruned, so the rejoiner's Asks go unanswered),
	// the checkpoint variant by GC at the stable frontier plus state
	// transfer for anyone behind it.
	t2 := &Table{ID: "ablation-rejoin", Title: fmt.Sprintf("kill-and-rejoin, SpotLess, n=%d, crash@300ms revive@600ms", n),
		Headers: []string{"variant", "recovery after revival", "ktxn/s during fault"}}
	for _, interval := range []int{0, 16} {
		o := Options{Protocol: SpotLess, N: n,
			CheckpointInterval: interval,
			Failures:           1,
			FailAt:             300 * time.Millisecond,
			ReviveAt:           600 * time.Millisecond,
			Attack:             core.AttackNone,
			Warmup:             250 * time.Millisecond,
			Measure:            600 * time.Millisecond,
		}
		if interval == 0 {
			o.RetentionViews = 16 // bounded memory without checkpoints
		}
		res := Run(o)
		name := fmt.Sprintf("retention window only (%d views)", o.RetentionViews)
		rec := "not recovered (chain pruned)"
		if interval > 0 {
			name = fmt.Sprintf("checkpoint every %d heights + state transfer", interval)
		}
		if res.ReviveRecovery > 0 {
			rec = lat(res.ReviveRecovery) + " ms"
		}
		t2.Rows = append(t2.Rows, []string{name, rec, ktps(res.Throughput)})
	}
	out = append(out, *t2)
	return out
}
