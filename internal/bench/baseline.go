package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"spotless/internal/core"
	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// This file produces the committed perf baseline (BENCH_PR6.json): commit
// throughput and delivery latency of the instance-parallel core on both
// substrates, the digest-vs-inline dissemination sweep, and the allocation
// budget of the ordering stage's hot loop — the numbers future PRs regress
// against.

// BaselinePoint is one (m × workers) measurement.
type BaselinePoint struct {
	M            int     `json:"m"`
	Workers      int     `json:"workers"`
	KTxnPerSec   float64 `json:"ktxn_per_sec"`
	AvgLatencyMs float64 `json:"avg_latency_ms"`
	P50LatencyMs float64 `json:"p50_latency_ms,omitempty"`
	P99LatencyMs float64 `json:"p99_latency_ms,omitempty"`
	Batches      uint64  `json:"batches"`

	// TCP saturation counters (runtime points only; see transport.Stats).
	QueueSheds     uint64 `json:"queue_sheds,omitempty"`
	IngressDrops   uint64 `json:"ingress_drops,omitempty"`
	EncodeFailures uint64 `json:"encode_failures,omitempty"`
	MACRejections  uint64 `json:"mac_rejections,omitempty"`
	DecodeFailures uint64 `json:"decode_failures,omitempty"`
}

// CoreLoopStats is the ordering-stage microbenchmark: one committed
// proposal handed off and drained through the (view, instance) total order.
type CoreLoopStats struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	Instances   int     `json:"instances"`
}

// DissemArm is one ordering mode's measurement at a dissemination sweep
// point.
type DissemArm struct {
	KTxnPerSec   float64 `json:"ktxn_per_sec"`
	AvgLatencyMs float64 `json:"avg_latency_ms"`
	P50LatencyMs float64 `json:"p50_latency_ms"`
	P99LatencyMs float64 `json:"p99_latency_ms"`
	Batches      uint64  `json:"batches"`
}

// DissemBaselinePoint records both arms of the digest-vs-inline sweep at
// one batch size. Both arms run on simulator virtual time, so the points
// are deterministic and host-shape independent.
type DissemBaselinePoint struct {
	BatchSize int       `json:"batch_size"`
	Inline    DissemArm `json:"inline"`
	Digest    DissemArm `json:"digest"`
}

// CodedArm is one arm (full push or coded) of a coded-dissemination
// baseline point.
type CodedArm struct {
	KTxnPerSec       float64 `json:"ktxn_per_sec"`
	AvgLatencyMs     float64 `json:"avg_latency_ms"`
	PushKBPerBatch   float64 `json:"push_kb_per_batch"`
	Batches          uint64  `json:"batches"`
	Reconstructions  uint64  `json:"reconstructions,omitempty"`
	ReconstructFails uint64  `json:"reconstruct_fails,omitempty"`
}

// CodedBaselinePoint records the coded-vs-full comparison at one batch size
// (ISSUE 10): same n=16 WAN cluster and load, the arms differing only in
// DissemCode. EgressRatio is the headline number — coded origin push bytes
// per delivered batch over the full push's.
type CodedBaselinePoint struct {
	BatchSize   int      `json:"batch_size"`
	K           int      `json:"k"`
	Full        CodedArm `json:"full"`
	Coded       CodedArm `json:"coded"`
	EgressRatio float64  `json:"egress_ratio"`
}

// BaselineReport is the schema of the committed baseline (BENCH_PR10.json;
// v2 reports like BENCH_PR6.json parse identically with an empty coded
// section).
type BaselineReport struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated_by"`
	Host      struct {
		GOOS      string `json:"goos"`
		GOARCH    string `json:"goarch"`
		NumCPU    int    `json:"num_cpu"`
		GoVersion string `json:"go_version"`
	} `json:"host"`
	// Simulator points: virtual time on modelled cores (one core per
	// lane), deterministic and host-independent. workers=1 is the seed's
	// single event loop.
	SimInstanceParallel []BaselinePoint `json:"sim_instance_parallel"`
	// Runtime points: wall-clock over TCP loopback with real crypto and
	// execution; scale with the host's core count.
	RuntimeInstanceParallel []BaselinePoint `json:"runtime_instance_parallel"`
	// Dissemination sweep (ISSUE 6): digest ordering vs inline-payload
	// ordering at 1x/10x/100x the paper's batch size, on the simulator.
	Dissemination []DissemBaselinePoint `json:"dissemination"`
	// Coded dissemination sweep (ISSUE 10): erasure-coded chunks vs full
	// push at n=16 under the WAN delay matrix with constrained bandwidth,
	// on the simulator.
	CodedDissemination []CodedBaselinePoint `json:"coded_dissemination,omitempty"`
	CoreLoop           CoreLoopStats        `json:"core_loop"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func simPoint(res Result) BaselinePoint {
	return BaselinePoint{
		M: res.Instances, Workers: res.InstanceWorkers,
		KTxnPerSec:   res.Throughput / 1000,
		AvgLatencyMs: ms(res.AvgLatency),
		P50LatencyMs: ms(res.P50Latency),
		P99LatencyMs: ms(res.P99Latency),
		Batches:      res.Batches,
	}
}

func dissemArm(res Result) DissemArm {
	return DissemArm{
		KTxnPerSec:   res.Throughput / 1000,
		AvgLatencyMs: ms(res.AvgLatency),
		P50LatencyMs: ms(res.P50Latency),
		P99LatencyMs: ms(res.P99Latency),
		Batches:      res.Batches,
	}
}

func codedArm(res Result) CodedArm {
	return CodedArm{
		KTxnPerSec:       res.Throughput / 1000,
		AvgLatencyMs:     ms(res.AvgLatency),
		PushKBPerBatch:   res.PushBytesPerBatch / 1024,
		Batches:          res.Batches,
		Reconstructions:  res.Reconstructions,
		ReconstructFails: res.ReconstructFails,
	}
}

func codedBaselinePoint(p CodedPoint) CodedBaselinePoint {
	return CodedBaselinePoint{
		BatchSize:   p.BatchSize,
		K:           p.K,
		Full:        codedArm(p.Full),
		Coded:       codedArm(p.Coded),
		EgressRatio: p.EgressRatio(),
	}
}

// CollectBaseline measures every baseline point. The runtime sweep takes a
// few wall-clock seconds per point.
func CollectBaseline() (BaselineReport, error) {
	var rep BaselineReport
	rep.Schema = "spotless-bench-baseline/v3"
	rep.Generated = "spotless-bench -baseline"
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GoVersion = runtime.Version()

	for _, m := range []int{2, 8} {
		for _, w := range []int{1, 2, 8} {
			if w > m {
				continue
			}
			rep.SimInstanceParallel = append(rep.SimInstanceParallel, simPoint(Run(InstParOptions(8, m, w))))
		}
	}
	for _, w := range []int{1, 8} {
		res, err := RunRuntime(RuntimeOptions{
			N: 4, Instances: 8, InstanceWorkers: w,
			Warmup: time.Second, Measure: 3 * time.Second,
		})
		if err != nil {
			return rep, err
		}
		p := simPoint(res)
		p.QueueSheds = res.NetQueueSheds
		p.IngressDrops = res.NetIngressDrops
		p.EncodeFailures = res.NetEncodeFailures
		p.MACRejections = res.NetMACRejections
		p.DecodeFailures = res.NetDecodeFailures
		rep.RuntimeInstanceParallel = append(rep.RuntimeInstanceParallel, p)
	}
	for _, p := range DissemSweep(nil) {
		rep.Dissemination = append(rep.Dissemination, DissemBaselinePoint{
			BatchSize: p.BatchSize,
			Inline:    dissemArm(p.Inline),
			Digest:    dissemArm(p.Digest),
		})
	}
	for _, p := range CodedSweep(nil) {
		rep.CodedDissemination = append(rep.CodedDissemination, codedBaselinePoint(p))
	}
	rep.CoreLoop = measureCoreLoop()
	return rep, nil
}

// ReadBaselineFile parses a committed baseline report.
func ReadBaselineFile(path string) (BaselineReport, error) {
	var rep BaselineReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(data, &rep)
}

// TrajectoryTolerance is the regression budget of the CI trajectory check:
// a fresh digest-arm measurement may fall at most this fraction below the
// committed baseline before the check fails.
const TrajectoryTolerance = 0.20

// CheckTrajectory re-measures the digest-ordering arm at the committed
// batch sizes and reports an error if its throughput regressed more than
// TrajectoryTolerance below the committed baseline. Both sides of the
// comparison are simulator virtual time on modelled cores, so the check is
// host-shape independent (the committed runtime points are informational
// only and never compared here).
func CheckTrajectory(committed BaselineReport) error {
	if len(committed.Dissemination) == 0 {
		return fmt.Errorf("baseline has no dissemination sweep (schema %q)", committed.Schema)
	}
	var regressions []string
	for _, want := range committed.Dissemination {
		got := dissemArm(Run(dissemOpts(want.BatchSize, true)))
		floor := want.Digest.KTxnPerSec * (1 - TrajectoryTolerance)
		if got.KTxnPerSec < floor {
			regressions = append(regressions, fmt.Sprintf(
				"batch=%d: digest %.1f ktxn/s < floor %.1f (committed %.1f)",
				want.BatchSize, got.KTxnPerSec, floor, want.Digest.KTxnPerSec))
		}
	}
	// Coded section (v3 baselines): re-run both arms and hold the two
	// acceptance bounds — coded throughput within the tolerance of its
	// committed value, and the egress ratio at or below the hard bound.
	// The full-push arm (k=0 control) is additionally held to the same
	// throughput floor as the digest arm above, so coding cannot regress
	// the path it leaves untouched.
	for _, want := range committed.CodedDissemination {
		full := Run(codedOpts(want.BatchSize, 0))
		coded := Run(codedOpts(want.BatchSize, want.K))
		if floor := want.Full.KTxnPerSec * (1 - TrajectoryTolerance); full.Throughput/1000 < floor {
			regressions = append(regressions, fmt.Sprintf(
				"batch=%d: full-push control %.1f ktxn/s < floor %.1f (committed %.1f)",
				want.BatchSize, full.Throughput/1000, floor, want.Full.KTxnPerSec))
		}
		if floor := want.Coded.KTxnPerSec * (1 - TrajectoryTolerance); coded.Throughput/1000 < floor {
			regressions = append(regressions, fmt.Sprintf(
				"batch=%d: coded k=%d %.1f ktxn/s < floor %.1f (committed %.1f)",
				want.BatchSize, want.K, coded.Throughput/1000, floor, want.Coded.KTxnPerSec))
		}
		ratio := 0.0
		if full.PushBytesPerBatch > 0 {
			ratio = coded.PushBytesPerBatch / full.PushBytesPerBatch
		}
		if ratio == 0 || ratio > CodedEgressBound {
			regressions = append(regressions, fmt.Sprintf(
				"batch=%d: coded egress ratio %.2f exceeds the %.2f bound (committed %.2f)",
				want.BatchSize, ratio, CodedEgressBound, want.EgressRatio))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("dissemination trajectory regressed >%.0f%%:\n  %s",
			TrajectoryTolerance*100, strings.Join(regressions, "\n  "))
	}
	return nil
}

// CodedEgressBound is the acceptance ceiling on the coded-vs-full origin
// egress ratio at k=4, n=16 (the ideal is k/… ≈ 0.25 plus commitment
// overhead; 0.35 leaves room for the overhead without letting the saving
// erode silently).
const CodedEgressBound = 0.35

// WriteFile writes the report as indented JSON.
func (r BaselineReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// baselineCtx is the minimal protocol.Context for driving the ordering
// stage directly (no network, no timers, deliveries discarded).
type baselineCtx struct{ prov crypto.Provider }

func (c *baselineCtx) ID() types.NodeID                          { return 0 }
func (c *baselineCtx) N() int                                    { return 4 }
func (c *baselineCtx) F() int                                    { return 1 }
func (c *baselineCtx) Now() time.Duration                        { return 0 }
func (c *baselineCtx) Send(types.NodeID, types.Message)          {}
func (c *baselineCtx) Broadcast(types.Message)                   {}
func (c *baselineCtx) SetTimer(time.Duration, protocol.TimerTag) {}
func (c *baselineCtx) VerifyAsync(protocol.VerifyJob)            {}
func (c *baselineCtx) Crypto() crypto.Provider                   { return c.prov }
func (c *baselineCtx) Deliver(types.Commit)                      {}
func (c *baselineCtx) NextBatch(int32) *types.Batch              { return nil }
func (c *baselineCtx) Logf(string, ...any)                       {}

// measureCoreLoop mirrors core's BenchmarkOrderingDrain for the committed
// baseline: m instances hand off committed proposals round-robin, each
// drained through the total order (the min-heap over ring buffers).
func measureCoreLoop() CoreLoopStats {
	const m = 8
	const ops = 200000
	ctx := &baselineCtx{prov: crypto.NewSimProvider(0, crypto.CostModel{}, nil)}
	batches := make([]types.Batch, ops)
	for i := range batches {
		batches[i].ID[8] = byte(i)
		batches[i].ID[9] = byte(i >> 8)
		batches[i].ID[10] = byte(i >> 16)
	}
	run := func(r *core.Replica) func() {
		i := 0
		view := types.View(0)
		return func() {
			if i%m == 0 {
				view++
			}
			r.InjectCommit(int32(i%m), view, &batches[i], batches[i].ID)
			i++
		}
	}
	allocs := testing.AllocsPerRun(ops-1, run(core.New(ctx, core.DefaultConfig(4, m))))

	step := run(core.New(ctx, core.DefaultConfig(4, m)))
	startAt := time.Now()
	for i := 0; i < ops; i++ {
		step()
	}
	elapsed := time.Since(startAt)
	return CoreLoopStats{
		AllocsPerOp: allocs,
		NsPerOp:     float64(elapsed.Nanoseconds()) / ops,
		Instances:   m,
	}
}
