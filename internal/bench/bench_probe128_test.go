package bench

import (
	"testing"
	"time"
)

// TestProbe128 measures wall cost and shape at the paper's headline scale.
// Skipped in -short mode: it is a calibration probe, not a correctness test.
func TestProbe128(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, p := range AllProtocols {
		start := time.Now()
		res := Run(Options{Protocol: p, N: 128,
			Warmup: 100 * time.Millisecond, Measure: 250 * time.Millisecond})
		t.Logf("%-10s n=128: %8.0f txn/s, lat=%10s, msgs/batch=%7.1f  (wall %s)",
			p, res.Throughput, res.AvgLatency, res.MsgsPerBatch, time.Since(start).Round(time.Millisecond))
	}
}
