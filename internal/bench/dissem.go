package bench

import "time"

// This file is the dissemination experiment (ISSUE 6): grow the batch size
// 10–100x and compare digest ordering (internal/dissem) against the seed's
// inline-payload ordering. The claim under test is the Mandator/Narwhal
// separation argument: once payload fan-out leaves the consensus critical
// path, committed throughput in ktxn/s stays roughly flat as payloads grow,
// while the inline arm degrades — consensus messages queue behind payload
// bytes, timers fire, and view progress collapses.

// DissemPoint is one batch-size point of the sweep: the same workload run
// through both ordering modes.
type DissemPoint struct {
	BatchSize int
	Inline    Result
	Digest    Result
}

// DissemSweepSizes is the default sweep: the paper's 100-txn batch, then
// 10x and 100x.
var DissemSweepSizes = []int{100, 1000, 10000}

// DissemSweep runs the digest-vs-inline comparison at the given batch
// sizes (nil selects DissemSweepSizes) on the calibrated 4-replica LAN
// model.
func DissemSweep(sizes []int) []DissemPoint {
	if sizes == nil {
		sizes = DissemSweepSizes
	}
	out := make([]DissemPoint, 0, len(sizes))
	for _, bs := range sizes {
		out = append(out, DissemPoint{
			BatchSize: bs,
			Inline:    Run(dissemOpts(bs, false)),
			Digest:    Run(dissemOpts(bs, true)),
		})
	}
	return out
}

// dissemOpts is the sweep's shared configuration: both arms run the exact
// same cluster and load shape, only the ordering mode differs.
//
//   - TuneBatchSize pins the timer auto-tuning at the 100-txn baseline:
//     the cluster was tuned once, then the workload's payloads grew. The
//     inline arm then collapses at 100x — proposals serialize longer than
//     the recording timeout, every view resolves ∅, and re-proposals amplify
//     the overload — while digest ordering's control-sized proposals keep
//     landing inside the window.
//   - The 1200 Mbps egress model makes payload serialization (not CPU) the
//     contended resource, the WAN-scale regime the issue targets.
//   - Outstanding 128 keeps the closed loop deep enough to saturate the
//     dissemination pipeline (push → ack → cert → proposal slot adds ~2
//     one-way delays of depth over inline ordering).
func dissemOpts(batchSize int, dissem bool) Options {
	o := Options{
		Protocol:      SpotLess,
		N:             4,
		BatchSize:     batchSize,
		Dissem:        dissem,
		TuneBatchSize: 100,
		BandwidthMbps: 1200,
		Outstanding:   128,
	}
	// Hold the measurement window long enough that even the degraded
	// inline arm at 100x commits a statistically meaningful batch count.
	o.Measure = 1500 * time.Millisecond
	if quickTrim {
		o.Measure = 400 * time.Millisecond
	}
	return o
}
