package bench

import (
	"strings"
	"testing"
)

// TestSafetyDrillStrictSweep: across a sweep of seeded adversary schedules
// (targeted delay/drop/partition rules plus periodic equivocation), honest
// ledgers never diverge block-for-block under the strict resolution rules —
// the Lemma 3.4 acceptance criterion, scaled for CI. The full bar
// (≥ 50 seeds) runs outside -short and via `spotless-bench -safety-drill`.
func TestSafetyDrillStrictSweep(t *testing.T) {
	seeds := 16
	if testing.Short() {
		seeds = 4
	}
	res := RunSafetyDrill(SafetyDrillOptions{Seeds: seeds})
	if len(res.Divergent) != 0 {
		for _, d := range res.Divergent {
			t.Log(d.Report)
		}
		t.Fatalf("%d of %d adversary seeds diverged under the strict resolution rules", len(res.Divergent), seeds)
	}
	if res.Delivered == 0 {
		t.Fatal("the drill delivered nothing — the adversary profiles wedged every seed")
	}
}

// TestSafetyDrillLegacyReproducesFork: the same harness pointed at the
// pre-refactor resolution rules reproduces the PR 4 ROADMAP divergence
// deterministically — seed 8 forks on every run, on any host (one replica's
// ledger permanently skips real batches another replica delivered). This is
// the negative control proving the drill can see the deviation the
// refactor closed; TestLegacyA3ForksLedger in internal/core pins the
// message-level A3 path.
func TestSafetyDrillLegacyReproducesFork(t *testing.T) {
	o := SafetyDrillOptions{Seeds: 1, SeedBase: 8}
	o.Legacy = true
	legacy := RunSafetyDrill(o)
	if len(legacy.Divergent) == 0 {
		t.Fatal("legacy rules no longer fork on seed 8 — the negative control lost its deviation")
	}
	if !strings.Contains(legacy.Divergent[0].Report, "diverge") {
		t.Fatalf("divergence report is not readable: %q", legacy.Divergent[0].Report)
	}
	o.Legacy = false
	if strict := RunSafetyDrill(o); len(strict.Divergent) != 0 {
		t.Fatalf("strict rules diverge on the legacy repro seed:\n%s", strict.Divergent[0].Report)
	}
}
