package bench

import (
	"testing"
	"time"
)

// TestDissemCommits is the dissemination smoke: a digest-ordering cluster
// on the simulator commits real batches and the latency pipeline reports
// sane tails.
func TestDissemCommits(t *testing.T) {
	o := dissemOpts(100, true)
	o.Measure = 200 * time.Millisecond
	res := Run(o)
	if res.Batches == 0 {
		t.Fatalf("digest ordering committed no batches: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("no throughput under digest ordering: %+v", res)
	}
	if res.P50Latency <= 0 || res.P99Latency < res.P50Latency {
		t.Fatalf("implausible latency tails: p50=%v p99=%v", res.P50Latency, res.P99Latency)
	}
}

// BenchmarkDissem is the CI smoke handle (1 iteration in CI): one digest
// ordering point at the paper's batch size.
func BenchmarkDissem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Run(dissemOpts(100, true))
		if res.Batches == 0 {
			b.Fatal("no batches committed")
		}
		b.ReportMetric(res.Throughput/1000, "ktxn/s")
	}
}
