package bench

import (
	"fmt"
	"strings"
	"time"

	"spotless/internal/core"
)

// Table is one regenerated table/figure panel.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Figure couples an experiment id with its runner. quick scales the sweep
// down (n ≤ 32) for CI-sized runs; full reproduces the paper's parameters.
type Figure struct {
	ID    string
	Title string
	Run   func(quick bool) []Table
}

// Figures indexes every reproduced table and figure plus the ablations.
var Figures = []Figure{
	{"fig1", "Figure 1: measured communication cost per consensus decision", Fig1Complexity},
	{"fig7a", "Figure 7(a): scalability — throughput vs number of replicas", Fig7aScalability},
	{"fig7b", "Figure 7(b): batching — throughput vs batch size", Fig7bBatching},
	{"fig7c", "Figure 7(c): throughput vs latency (load sweep)", Fig7cThroughputLatency},
	{"fig7d", "Figure 7(d): throughput vs transaction size", Fig7dTxnSize},
	{"fig7e", "Figure 7(e): impact of failures (count)", Fig7eFailures},
	{"fig7f", "Figure 7(f): impact of failures (ratio of f)", Fig7fFailureRatio},
	{"fig8", "Figure 8: SpotLess under failures across cluster sizes", Fig8SpotLessFailures},
	{"fig9", "Figure 9: throughput-latency with failures (SpotLess vs RCC)", Fig9LatencyFailures},
	{"fig10", "Figure 10: parallel transaction processing (client batches per primary)", Fig10Parallel},
	{"fig11", "Figure 11: Byzantine attacks A1–A4", Fig11Byzantine},
	{"fig12", "Figure 12: real-time throughput timeline around failures", Fig12Timeline},
	{"fig13", "Figure 13: throughput vs number of concurrent instances", Fig13Instances},
	{"fig14a", "Figure 14(a): impact of computing power (CPU cores)", Fig14aCores},
	{"fig14b", "Figure 14(b): impact of network bandwidth", Fig14bBandwidth},
	{"fig14cd", "Figure 14(c,d): impact of geo-distribution (regions)", Fig14cdRegions},
	{"fig15", "Figure 15: single-instance SpotLess vs HotStuff under attacks", Fig15SingleInstance},
}

// FigureByID returns the figure with the given id, or nil.
func FigureByID(id string) *Figure {
	for i := range Figures {
		if Figures[i].ID == id {
			return &Figures[i]
		}
	}
	return nil
}

func fullScale(quick bool) int {
	if quick {
		return 32
	}
	return 128
}

func ktps(v float64) string { return fmt.Sprintf("%.1f", v/1000) }

func lat(d time.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()*1000) }

// Fig1Complexity measures protocol messages per consensus decision and
// compares them against the analytical costs of Figure 1.
func Fig1Complexity(quick bool) []Table {
	n := 32
	if quick {
		n = 16
	}
	f := (n - 1) / 3
	analytic := map[Protocol]string{
		SpotLess:  fmt.Sprintf("n^2 = %d", n*n),
		Pbft:      fmt.Sprintf("2n^2 = %d", 2*n*n),
		RCC:       fmt.Sprintf("2n^2 = %d", 2*n*n),
		HotStuff:  fmt.Sprintf("2n = %d", 2*n),
		NarwhalHS: fmt.Sprintf("~(2n+2f+1) = %d", 2*n+2*f+1),
	}
	t := &Table{ID: "fig1", Title: fmt.Sprintf("messages per decision at n=%d (measured vs analytical)", n),
		Headers: []string{"protocol", "measured msgs/decision", "analytical (Figure 1)"}}
	for _, p := range AllProtocols {
		res := Run(Options{Protocol: p, N: n})
		t.Rows = append(t.Rows, []string{string(p), fmt.Sprintf("%.0f", res.MsgsPerBatch), analytic[p]})
	}
	return []Table{*t}
}

// Fig7aScalability: throughput vs n for all protocols.
func Fig7aScalability(quick bool) []Table {
	ns := []int{4, 16, 32, 64, 96, 128}
	if quick {
		ns = []int{4, 16, 32}
	}
	t := &Table{ID: "fig7a", Title: "throughput (ktxn/s) vs number of replicas, batch=100",
		Headers: append([]string{"n"}, protoHeaders()...)}
	for _, n := range ns {
		row := []string{fmt.Sprint(n)}
		for _, p := range AllProtocols {
			res := Run(Options{Protocol: p, N: n})
			row = append(row, ktps(res.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{*t}
}

// Fig7bBatching: throughput vs batch size at full scale.
func Fig7bBatching(quick bool) []Table {
	n := fullScale(quick)
	sizes := []int{10, 50, 100, 200, 400}
	t := &Table{ID: "fig7b", Title: fmt.Sprintf("throughput (ktxn/s) vs batch size, n=%d", n),
		Headers: append([]string{"batch"}, protoHeaders()...)}
	for _, bs := range sizes {
		row := []string{fmt.Sprint(bs)}
		for _, p := range AllProtocols {
			res := Run(Options{Protocol: p, N: n, BatchSize: bs})
			row = append(row, ktps(res.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{*t}
}

// Fig7cThroughputLatency: latency as a function of throughput, produced by
// sweeping the closed-loop load.
func Fig7cThroughputLatency(quick bool) []Table {
	n := fullScale(quick)
	t := &Table{ID: "fig7c", Title: fmt.Sprintf("latency (ms) vs throughput (ktxn/s), n=%d, load sweep", n),
		Headers: []string{"protocol", "load", "ktxn/s", "avg ms", "p99 ms"}}
	for _, p := range AllProtocols {
		for _, mult := range []int{1, 2, 4, 8} {
			o := Options{Protocol: p, N: n}
			o.Outstanding = defaultOutstanding(p) * mult / 4
			if o.Outstanding < 1 {
				o.Outstanding = 1
			}
			res := Run(o)
			t.Rows = append(t.Rows, []string{string(p), fmt.Sprint(o.Outstanding),
				ktps(res.Throughput), lat(res.AvgLatency), lat(res.P99Latency)})
		}
	}
	return []Table{*t}
}

func defaultOutstanding(p Protocol) int {
	switch p {
	case Pbft, HotStuff:
		return 128
	case NarwhalHS:
		return 32
	default:
		return 8
	}
}

func protoHeaders() []string {
	out := make([]string, len(AllProtocols))
	for i, p := range AllProtocols {
		out[i] = string(p)
	}
	return out
}

// Fig7dTxnSize: throughput vs per-transaction wire size.
func Fig7dTxnSize(quick bool) []Table {
	n := fullScale(quick)
	sizes := []int{48, 200, 400, 800, 1600}
	t := &Table{ID: "fig7d", Title: fmt.Sprintf("throughput (ktxn/s) vs transaction size (B), n=%d", n),
		Headers: append([]string{"txn B"}, protoHeaders()...)}
	for _, sz := range sizes {
		val := sz - 15 // wire overhead per txn
		if val < 1 {
			val = 1
		}
		row := []string{fmt.Sprint(sz)}
		for _, p := range AllProtocols {
			res := Run(Options{Protocol: p, N: n, TxnValueSz: val})
			row = append(row, ktps(res.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{*t}
}

// Fig7eFailures: throughput vs number of non-responsive replicas.
func Fig7eFailures(quick bool) []Table {
	n := fullScale(quick)
	counts := []int{0, 1, 2, 4, 8, 10}
	if quick {
		counts = []int{0, 1, 2}
	}
	t := &Table{ID: "fig7e", Title: fmt.Sprintf("throughput (ktxn/s) vs non-responsive replicas, n=%d", n),
		Headers: append([]string{"failures"}, protoHeaders()...)}
	for _, g := range counts {
		row := []string{fmt.Sprint(g)}
		for _, p := range AllProtocols {
			res := Run(Options{Protocol: p, N: n, Failures: g})
			row = append(row, ktps(res.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{*t}
}

// Fig7fFailureRatio: throughput vs failure ratio (out of f).
func Fig7fFailureRatio(quick bool) []Table {
	n := fullScale(quick)
	f := (n - 1) / 3
	ratios := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	if quick {
		ratios = []float64{0, 0.5, 1.0}
	}
	t := &Table{ID: "fig7f", Title: fmt.Sprintf("throughput (ktxn/s) vs failure ratio (of f=%d), n=%d", f, n),
		Headers: append([]string{"ratio"}, protoHeaders()...)}
	for _, r := range ratios {
		g := int(r * float64(f))
		row := []string{fmt.Sprintf("%.1f", r)}
		for _, p := range AllProtocols {
			res := Run(Options{Protocol: p, N: n, Failures: g})
			row = append(row, ktps(res.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{*t}
}

// Fig8SpotLessFailures: SpotLess under failures across cluster sizes.
func Fig8SpotLessFailures(quick bool) []Table {
	ns := []int{32, 64, 96, 128}
	counts := []int{0, 1, 2, 4, 8, 10}
	if quick {
		ns = []int{16, 32}
		counts = []int{0, 1, 2}
	}
	t1 := &Table{ID: "fig8-count", Title: "SpotLess throughput (ktxn/s) vs failure count",
		Headers: []string{"failures"}}
	for _, n := range ns {
		t1.Headers = append(t1.Headers, fmt.Sprintf("n=%d", n))
	}
	for _, g := range counts {
		row := []string{fmt.Sprint(g)}
		for _, n := range ns {
			res := Run(Options{Protocol: SpotLess, N: n, Failures: g})
			row = append(row, ktps(res.Throughput))
		}
		t1.Rows = append(t1.Rows, row)
	}
	ratios := []float64{0, 0.5, 1.0}
	t2 := &Table{ID: "fig8-ratio", Title: "SpotLess throughput (ktxn/s) vs failure ratio (of f)",
		Headers: t1.Headers}
	t2.Headers = append([]string{"ratio"}, t1.Headers[1:]...)
	for _, r := range ratios {
		row := []string{fmt.Sprintf("%.1f", r)}
		for _, n := range ns {
			g := int(r * float64((n-1)/3))
			res := Run(Options{Protocol: SpotLess, N: n, Failures: g})
			row = append(row, ktps(res.Throughput))
		}
		t2.Rows = append(t2.Rows, row)
	}
	return []Table{*t1, *t2}
}

// Fig9LatencyFailures: throughput-latency with 1 and f failures.
func Fig9LatencyFailures(quick bool) []Table {
	n := fullScale(quick)
	f := (n - 1) / 3
	var out []Table
	for _, g := range []int{1, f} {
		t := &Table{ID: fmt.Sprintf("fig9-%df", g),
			Title:   fmt.Sprintf("latency vs throughput with %d failures, n=%d", g, n),
			Headers: []string{"protocol", "load", "ktxn/s", "avg ms"}}
		for _, p := range []Protocol{SpotLess, RCC} {
			for _, mult := range []int{1, 2, 4} {
				o := Options{Protocol: p, N: n, Failures: g, Outstanding: defaultOutstanding(p) * mult / 2}
				if o.Outstanding < 1 {
					o.Outstanding = 1
				}
				res := Run(o)
				t.Rows = append(t.Rows, []string{string(p), fmt.Sprint(o.Outstanding),
					ktps(res.Throughput), lat(res.AvgLatency)})
			}
		}
		out = append(out, *t)
	}
	return out
}

// Fig10Parallel: throughput and latency as a function of the number of
// client batches each primary receives (the paper sweeps 12–200; our
// closed-loop equivalent sweeps outstanding batches per instance).
func Fig10Parallel(quick bool) []Table {
	n := fullScale(quick)
	f := (n - 1) / 3
	loads := []int{1, 2, 4, 8, 16}
	t := &Table{ID: "fig10", Title: fmt.Sprintf("SpotLess/RCC vs client batches per primary, n=%d (0/1/f failures)", n),
		Headers: []string{"protocol", "failures", "load", "ktxn/s", "avg ms"}}
	for _, p := range []Protocol{SpotLess, RCC} {
		for _, g := range []int{0, 1, f} {
			for _, l := range loads {
				res := Run(Options{Protocol: p, N: n, Failures: g, Outstanding: l})
				t.Rows = append(t.Rows, []string{string(p), fmt.Sprint(g), fmt.Sprint(l),
					ktps(res.Throughput), lat(res.AvgLatency)})
			}
		}
	}
	return []Table{*t}
}

// Fig11Byzantine: SpotLess under attacks A1–A4, with RCC under A1 for
// comparison.
func Fig11Byzantine(quick bool) []Table {
	n := fullScale(quick)
	f := (n - 1) / 3
	counts := []int{0, 1, 2, 4, 8, 10}
	if quick {
		counts = []int{0, 1, 2}
	}
	attacks := []struct {
		name string
		mode core.AttackMode
	}{
		{"A1", core.AttackNone}, // A1 = non-responsive (substrate-injected)
		{"A2", core.AttackDark},
		{"A3", core.AttackEquivocate},
		{"A4", core.AttackSubvert},
	}
	t := &Table{ID: "fig11", Title: fmt.Sprintf("throughput (ktxn/s) under Byzantine attacks, n=%d", n),
		Headers: []string{"failures", "SPL-A1", "SPL-A2", "SPL-A3", "SPL-A4", "RCC-A1"}}
	for _, g := range counts {
		row := []string{fmt.Sprint(g)}
		for _, a := range attacks {
			res := Run(Options{Protocol: SpotLess, N: n, Failures: g, Attack: a.mode})
			row = append(row, ktps(res.Throughput))
		}
		res := Run(Options{Protocol: RCC, N: n, Failures: g})
		row = append(row, ktps(res.Throughput))
		t.Rows = append(t.Rows, row)
	}
	_ = f
	return []Table{*t}
}

// Fig12Timeline: real-time throughput around a failure injection. The paper
// runs 140 s at n=128; we run a scaled window at n=32 (quick: n=16), with
// failures injected after the warmup — the shapes (SpotLess stability vs
// RCC suspension oscillation) are scale-independent.
func Fig12Timeline(quick bool) []Table {
	n := 32
	if quick {
		n = 16
	}
	f := (n - 1) / 3
	bucket := 250 * time.Millisecond
	var out []Table
	for _, p := range []Protocol{SpotLess, RCC} {
		for _, g := range []int{1, f} {
			o := Options{Protocol: p, N: n, Failures: g,
				Warmup: 500 * time.Millisecond, FailAt: time.Second,
				Measure: 6 * time.Second, TimelineBucket: bucket}
			res := Run(o)
			t := &Table{ID: fmt.Sprintf("fig12-%s-%d", p, g),
				Title:   fmt.Sprintf("%s timeline, %d failures at t=1s, n=%d", p, g, n),
				Headers: []string{"t (s)", "ktxn/s"}}
			for _, pt := range res.Timeline {
				t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", pt.At.Seconds()),
					ktps(float64(pt.Txns) / bucket.Seconds())})
			}
			out = append(out, *t)
		}
	}
	return out
}

// Fig13Instances: throughput vs number of concurrent instances.
func Fig13Instances(quick bool) []Table {
	var out []Table
	ns := []int{64, 128}
	if quick {
		ns = []int{16}
	}
	for _, n := range ns {
		ms := []int{1, n / 8, n / 4, n / 2, n}
		t := &Table{ID: fmt.Sprintf("fig13-n%d", n),
			Title:   fmt.Sprintf("throughput (ktxn/s) vs concurrent instances, n=%d", n),
			Headers: []string{"instances", "SpotLess", "RCC"}}
		for _, m := range ms {
			if m < 1 {
				continue
			}
			r1 := Run(Options{Protocol: SpotLess, N: n, Instances: m})
			r2 := Run(Options{Protocol: RCC, N: n, Instances: m})
			t.Rows = append(t.Rows, []string{fmt.Sprint(m), ktps(r1.Throughput), ktps(r2.Throughput)})
		}
		out = append(out, *t)
	}
	return out
}

// Fig14aCores: throughput vs CPU cores per replica.
func Fig14aCores(quick bool) []Table {
	n := fullScale(quick)
	t := &Table{ID: "fig14a", Title: fmt.Sprintf("throughput (ktxn/s) vs CPU cores, n=%d", n),
		Headers: append([]string{"cores"}, protoHeaders()...)}
	for _, c := range []int{4, 8, 16, 32} {
		row := []string{fmt.Sprint(c)}
		for _, p := range AllProtocols {
			res := Run(Options{Protocol: p, N: n, Cores: c})
			row = append(row, ktps(res.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{*t}
}

// Fig14bBandwidth: throughput vs egress bandwidth.
func Fig14bBandwidth(quick bool) []Table {
	n := fullScale(quick)
	t := &Table{ID: "fig14b", Title: fmt.Sprintf("throughput (ktxn/s) vs bandwidth (Mbit/s), n=%d", n),
		Headers: append([]string{"Mbit/s"}, protoHeaders()...)}
	for _, bw := range []float64{500, 1000, 2000, 3000, 4000} {
		row := []string{fmt.Sprint(bw)}
		for _, p := range AllProtocols {
			res := Run(Options{Protocol: p, N: n, BandwidthMbps: bw})
			row = append(row, ktps(res.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{*t}
}

// Fig14cdRegions: throughput vs number of WAN regions at two batch sizes.
func Fig14cdRegions(quick bool) []Table {
	n := fullScale(quick)
	var out []Table
	for _, bs := range []int{100, 400} {
		t := &Table{ID: fmt.Sprintf("fig14cd-b%d", bs),
			Title:   fmt.Sprintf("throughput (ktxn/s) vs regions, batch=%d, n=%d", bs, n),
			Headers: append([]string{"regions"}, protoHeaders()...)}
		for _, k := range []int{1, 2, 3, 4} {
			row := []string{fmt.Sprint(k)}
			for _, p := range AllProtocols {
				res := Run(Options{Protocol: p, N: n, BatchSize: bs, RegionCount: k})
				row = append(row, ktps(res.Throughput))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, *t)
	}
	return out
}

// Fig15SingleInstance: single-instance SpotLess vs HotStuff under the four
// attacks, ratio-of-f sweep.
func Fig15SingleInstance(quick bool) []Table {
	n := fullScale(quick)
	f := (n - 1) / 3
	ratios := []float64{0, 0.33, 0.66, 1.0}
	attacks := []struct {
		name string
		mode core.AttackMode
	}{
		{"A1", core.AttackNone},
		{"A2", core.AttackDark},
		{"A3", core.AttackEquivocate},
		{"A4", core.AttackSubvert},
	}
	var out []Table
	for _, p := range []Protocol{SpotLess, HotStuff} {
		t := &Table{ID: fmt.Sprintf("fig15-%s", p),
			Title:   fmt.Sprintf("single-instance %s throughput (ktxn/s) under attacks, n=%d", p, n),
			Headers: []string{"ratio", "A1", "A2", "A3", "A4"}}
		for _, r := range ratios {
			g := int(r * float64(f))
			row := []string{fmt.Sprintf("%.2f", r)}
			for _, a := range attacks {
				res := Run(Options{Protocol: p, N: n, Instances: 1, Failures: g, Attack: a.mode})
				row = append(row, ktps(res.Throughput))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, *t)
	}
	return out
}
