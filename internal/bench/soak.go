package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"spotless/internal/core"
	"spotless/internal/loadgen"
	"spotless/internal/protocol"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

// This file is the soak/chaos harness — the measurement side of the
// view-synchronizer bake-off. Where the safety drill answers "did we
// fork?", the soak answers "how fast did we heal?": each seeded run
// installs one chaos profile (simnet.InstallChaos — churning partitions,
// gray failures, timer skew) and measures, per fault episode, the
// time-to-resync (fault heal → first post-heal commit observed by every
// replica) and the commits-lost spread (how far apart replica ledgers were
// at the moment of heal). The sweep crosses fault profiles with pacemaker
// arms (core.PacemakerArms), so the paper's adaptive synchronizer is
// measured head-to-head against the Cogsworth-style relay and
// Lumiere-style doubling alternatives under identical fault schedules:
// everything is seeded, so a (profile, arm, seed) cell reproduces
// bit-for-bit on any host.

// SoakOptions parameterizes one bake-off sweep.
type SoakOptions struct {
	N         int   // replicas (default 4)
	Instances int   // m concurrent instances (default 4)
	Seeds     int   // seeds per (profile × pacemaker) cell (default 5)
	SeedBase  int64 // first seed (default 1)
	BatchSize int   // txns per client batch (default 5)
	// Duration is the virtual time per seed (default 3s). Chaos episodes
	// are planned inside [300ms, Duration−500ms]; the tail measures the
	// last resync.
	Duration time.Duration

	// Profiles and Pacemakers select the sweep axes; defaults are the
	// non-mixed chaos profiles × all built-in arms.
	Profiles   []string
	Pacemakers []string
}

// FaultOutcome is the measured result of one fault episode.
type FaultOutcome struct {
	Seed   int64
	Record simnet.FaultRecord
	// Resync is heal → first post-heal commit: the slowest victim's first
	// delivery after the fault healed (the resolution machine re-engaging —
	// catch-up jump, backfill, re-delivery). Healed reports whether every
	// victim delivered again before the run ended.
	Resync time.Duration
	Healed bool
	// Lost is the commits-lost-per-fault spread: how many commits the
	// most-advanced replica held over the least-advanced one at heal time.
	Lost int
}

// SoakCell aggregates one (profile × pacemaker) cell of the sweep.
type SoakCell struct {
	Profile   string
	Pacemaker string
	Faults    int
	Unhealed  int
	ResyncP50 time.Duration
	ResyncP99 time.Duration
	LostMean  float64
	Blocks    uint64 // delivered blocks across seeds (per replica average)
	Divergent []Divergence
	Outcomes  []FaultOutcome
}

// SoakResult is the full sweep.
type SoakResult struct {
	Options SoakOptions
	Cells   []SoakCell
}

// runSoakSeed executes one (profile, pacemaker, seed) run and measures its
// fault episodes.
func runSoakSeed(o SoakOptions, profile, arm string, seed int64) ([]FaultOutcome, [][]SlotRecord, uint64, error) {
	n, m := o.N, o.Instances
	f := (n - 1) / 3

	scfg := simnet.DefaultConfig(n)
	scfg.Seed = seed
	scfg.BaseHandlerCost = time.Microsecond
	sim := simnet.New(scfg)

	mkCfg := func() core.Config {
		cfg := core.DefaultConfig(n, m)
		cfg.InitialRecordingTimeout = 20 * time.Millisecond
		cfg.InitialCertifyTimeout = 20 * time.Millisecond
		cfg.MinTimeout = 5 * time.Millisecond
		cfg.Pacemaker = arm
		// Checkpointing on: the soak's faults leave replicas hundreds of
		// commits behind, and state transfer is the designed recovery path
		// for that (one-proposal-per-Ask backfill alone never drains it).
		cfg.CheckpointInterval = 128
		return cfg
	}
	plan, err := sim.InstallChaos(simnet.ChaosConfig{
		Profile: profile,
		Seed:    seed,
		N:       n,
		Start:   300 * time.Millisecond,
		End:     o.Duration - 500*time.Millisecond,
		// Crash episodes rebuild the victim amnesiac, with the same
		// constructor used at setup; it rejoins through state transfer.
		Restart: func(id types.NodeID) {
			sim.Restart(id, func(ctx protocol.Context) protocol.Protocol {
				return core.New(ctx, mkCfg())
			})
		},
	})
	if err != nil {
		return nil, nil, 0, err
	}

	ledgers := make([][]SlotRecord, n)
	times := make([][]time.Duration, n) // per-replica commit timestamps, ascending
	sim.SetDeliverHook(func(node types.NodeID, c types.Commit) {
		if int(node) < n && c.Batch != nil {
			ledgers[node] = append(ledgers[node], SlotRecord{Instance: c.Instance, View: c.View, Batch: c.Batch.ID})
			times[node] = append(times[node], sim.Now())
		}
	})

	wl := loadgen.DefaultWorkload(o.BatchSize)
	wl.Seed = seed
	src := loadgen.NewSource(m, 4, wl)
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, f, 0)
	col.MeasureEnd = time.Hour
	sim.SetProtocol(simnet.ClientNode, col)

	for i := 0; i < n; i++ {
		id := types.NodeID(i)
		sim.SetProtocol(id, core.New(sim.Context(id), mkCfg()))
	}
	sim.Start()
	sim.Run(o.Duration)

	outcomes := make([]FaultOutcome, 0, len(plan))
	for _, rec := range plan {
		outcomes = append(outcomes, measureFault(rec, times, seed))
	}
	var blocks uint64
	for _, l := range ledgers {
		blocks += uint64(len(l))
	}
	return outcomes, ledgers, blocks, nil
}

// measureFault derives one episode's outcome from the per-replica commit
// timelines. The commit-frontier spread at heal time (most-advanced minus
// least-advanced replica) is the commits-lost-per-fault figure: how much
// ledger the victims missed while faulted. Time-to-resync is heal → the
// slowest victim's first delivery after the heal — the latency of the
// resolution machine re-engaging (catch-up jump, Ask backfill,
// re-delivery), measurable even while a long backlog is still draining.
func measureFault(rec simnet.FaultRecord, times [][]time.Duration, seed int64) FaultOutcome {
	out := FaultOutcome{Seed: seed, Record: rec}
	atHeal := make([]int, len(times))
	maxAt, minAt := 0, int(^uint(0)>>1)
	for i, ts := range times {
		atHeal[i] = sort.Search(len(ts), func(j int) bool { return ts[j] > rec.Heal })
		if atHeal[i] > maxAt {
			maxAt = atHeal[i]
		}
		if atHeal[i] < minAt {
			minAt = atHeal[i]
		}
	}
	out.Lost = maxAt - minAt
	var resyncAt time.Duration
	for _, v := range rec.Victims {
		ts := times[v]
		i := atHeal[v]
		if i >= len(ts) {
			return out // the victim never delivered again before run end
		}
		if ts[i] > resyncAt {
			resyncAt = ts[i]
		}
	}
	out.Healed = true
	out.Resync = resyncAt - rec.Heal
	return out
}

// RunSoak sweeps Profiles × Pacemakers × Seeds and aggregates per-cell
// resync percentiles, loss means, and divergence checks.
func RunSoak(o SoakOptions) (SoakResult, error) {
	if o.N == 0 {
		o.N = 4
	}
	if o.Instances == 0 {
		o.Instances = 4
	}
	if o.Seeds == 0 {
		o.Seeds = 5
	}
	if o.SeedBase == 0 {
		o.SeedBase = 1
	}
	if o.BatchSize == 0 {
		o.BatchSize = 5
	}
	if o.Duration == 0 {
		o.Duration = 3 * time.Second
	}
	if len(o.Profiles) == 0 {
		o.Profiles = []string{simnet.ProfilePartitions, simnet.ProfileGray, simnet.ProfileSkew}
	}
	if len(o.Pacemakers) == 0 {
		o.Pacemakers = core.PacemakerArms
	}
	for _, arm := range o.Pacemakers {
		if _, err := core.PacemakerByName(arm); err != nil {
			return SoakResult{}, err
		}
	}

	res := SoakResult{Options: o}
	for _, profile := range o.Profiles {
		for _, arm := range o.Pacemakers {
			cell := SoakCell{Profile: profile, Pacemaker: arm}
			for i := 0; i < o.Seeds; i++ {
				seed := o.SeedBase + int64(i)
				outcomes, ledgers, blocks, err := runSoakSeed(o, profile, arm, seed)
				if err != nil {
					return SoakResult{}, err
				}
				cell.Outcomes = append(cell.Outcomes, outcomes...)
				cell.Blocks += blocks / uint64(o.N)
				if d, div := diffLedgersSparse(seed, ledgers); div {
					cell.Divergent = append(cell.Divergent, d)
				}
			}
			var resyncs []time.Duration
			var lost int
			for _, out := range cell.Outcomes {
				cell.Faults++
				lost += out.Lost
				if out.Healed {
					resyncs = append(resyncs, out.Resync)
				} else {
					cell.Unhealed++
				}
			}
			sort.Slice(resyncs, func(i, j int) bool { return resyncs[i] < resyncs[j] })
			cell.ResyncP50 = percentileDur(resyncs, 0.50)
			cell.ResyncP99 = percentileDur(resyncs, 0.99)
			if cell.Faults > 0 {
				cell.LostMean = float64(lost) / float64(cell.Faults)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// diffLedgersSparse checks fork-freedom across ledgers that may carry
// state-transfer holes: a rejoiner that installed a checkpoint skipped the
// covered blocks, so position-based prefix comparison (diffLedgers) would
// flag the hole as divergence. Delivery order is ascending in
// (view, instance) on every correct replica, so agreement reduces to: any
// two replicas that both delivered a slot delivered the same batch there.
func diffLedgersSparse(seed int64, ledgers [][]SlotRecord) (Divergence, bool) {
	type slotKey struct {
		inst int32
		view types.View
	}
	ref := make(map[slotKey]types.Digest)
	refOwner := make(map[slotKey]int)
	for i, l := range ledgers {
		for p, rec := range l {
			k := slotKey{rec.Instance, rec.View}
			if prev, ok := ref[k]; ok {
				if prev != rec.Batch {
					return Divergence{
						Seed: seed, Position: p,
						Report: fmt.Sprintf("seed %d: replicas %d and %d delivered different batches at inst=%d view=%d (%x vs %x)\n",
							seed, refOwner[k], i, rec.Instance, rec.View, prev[:6], rec.Batch[:6]),
					}, true
				}
				continue
			}
			ref[k] = rec.Batch
			refOwner[k] = i
		}
	}
	return Divergence{}, false
}

// percentileDur reads the q-quantile of an ascending slice (nearest rank).
func percentileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Divergences flattens every diverging seed across cells.
func (r SoakResult) Divergences() []Divergence {
	var all []Divergence
	for _, c := range r.Cells {
		all = append(all, c.Divergent...)
	}
	return all
}

// Table renders the per-(profile × pacemaker) bake-off table.
func (r SoakResult) Table() Table {
	t := Table{
		ID:    "soak-bakeoff",
		Title: fmt.Sprintf("time-to-resync per fault profile × pacemaker (n=%d m=%d, %d seeds/cell, %s virtual each)", r.Options.N, r.Options.Instances, r.Options.Seeds, r.Options.Duration),
		Headers: []string{"profile", "pacemaker", "faults", "unhealed",
			"resync p50", "resync p99", "lost/fault", "blocks", "diverged"},
	}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			c.Profile, c.Pacemaker,
			fmt.Sprintf("%d", c.Faults),
			fmt.Sprintf("%d", c.Unhealed),
			fmtDurMs(c.ResyncP50),
			fmtDurMs(c.ResyncP99),
			fmt.Sprintf("%.1f", c.LostMean),
			fmt.Sprintf("%d", c.Blocks),
			fmt.Sprintf("%d", len(c.Divergent)),
		})
	}
	return t
}

func fmtDurMs(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// String renders the table plus any divergence reports (the -soak CLI
// output).
func (r SoakResult) String() string {
	var sb strings.Builder
	t := r.Table()
	sb.WriteString(t.String())
	for _, d := range r.Divergences() {
		sb.WriteString(d.Report)
	}
	return sb.String()
}
