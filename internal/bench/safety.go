package bench

import (
	"fmt"
	"strings"
	"time"

	"spotless/internal/core"
	"spotless/internal/dissem"
	"spotless/internal/loadgen"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

// This file is the safety drill: a seeded adversary sweep that checks
// ledger agreement block-for-block. Each seed derives a deterministic
// schedule profile (simnet.RandomAdversary: targeted message delay, drop,
// and partition per pair/instance/view/kind, optionally composed with
// protocol-level equivocation) and replays bit-for-bit on any host — the
// PR 4 divergence recipe (~1-in-10 `-race` runs at n=4, m=4) as an
// always-reproducible drill instead of a flake. Pointed at the legacy
// resolution rules (SafetyDrillOptions.Legacy) the same harness is the
// negative control for the A3 fork-commit path the Lemma 3.4 re-derivation
// closed; see core/resolution.go and TestLegacyA3ForksLedger for the
// message-level pin.

// SafetyDrillOptions parameterizes one sweep.
type SafetyDrillOptions struct {
	N         int // replicas (default 4)
	Instances int // m concurrent instances (default 4)
	Seeds     int // distinct adversary seeds (default 50)
	SeedBase  int64
	BatchSize int           // txns per client batch (default 5)
	Duration  time.Duration // virtual time per seed (default 1.5s)

	// Pacemaker selects the view-synchronizer arm every replica runs
	// ("" = spotless; see core.PacemakerArms) — the bake-off's safety leg:
	// the divergence bar must hold under every arm.
	Pacemaker string

	// Dissem runs the drill under digest ordering: batches travel through
	// the dissemination layer, instances propose certified digests only,
	// and the same block-for-block agreement must hold.
	Dissem bool
	// DissemCode runs the Dissem drill with erasure-coded dissemination
	// (dissem.Config.CodeK): payloads travel as chunks, delivery
	// reconstructs, and agreement must still hold block-for-block — under
	// the scheduler adversary AND the equivocating-origin composition.
	DissemCode int
	// Legacy runs the seed's unsafe view-resolution rules
	// (core.Config.UnsafeLegacyResolution) — the negative control.
	Legacy bool
	// NoEquivocation disables the protocol-level Byzantine composition
	// (by default every third seed makes one replica equivocate).
	NoEquivocation bool
}

// SlotRecord is one delivered block in a replica's ledger order.
type SlotRecord struct {
	Instance int32
	View     types.View
	Batch    types.Digest
}

// Divergence reports one diverging seed with a readable block-level dump.
type Divergence struct {
	Seed     int64
	Position int // first ledger position where two replicas disagree
	Report   string
}

// SafetyDrillResult summarizes a sweep.
type SafetyDrillResult struct {
	Options   SafetyDrillOptions
	Seeds     []int64
	Divergent []Divergence
	Delivered uint64 // blocks delivered across all seeds and replicas
	Idle      int    // seeds whose adversary prevented any delivery
}

// runSafetySeed executes one seeded drill and returns the per-replica
// delivered sequences.
func runSafetySeed(o SafetyDrillOptions, seed int64) ([][]SlotRecord, uint64) {
	n, m := o.N, o.Instances
	f := (n - 1) / 3

	scfg := simnet.DefaultConfig(n)
	scfg.Seed = seed
	scfg.BaseHandlerCost = time.Microsecond
	sim := simnet.New(scfg)
	sim.SetAdversary(simnet.RandomAdversary(seed, n, m))

	ledgers := make([][]SlotRecord, n)
	sim.SetDeliverHook(func(node types.NodeID, c types.Commit) {
		if int(node) < n && c.Batch != nil {
			ledgers[node] = append(ledgers[node], SlotRecord{Instance: c.Instance, View: c.View, Batch: c.Batch.ID})
		}
	})

	wl := loadgen.DefaultWorkload(o.BatchSize)
	wl.Seed = seed
	streams := m
	if o.Dissem {
		streams = n // one dissemination lane per origin replica
	}
	src := loadgen.NewSource(streams, 4, wl)
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, f, 0)
	col.MeasureEnd = time.Hour
	sim.SetProtocol(simnet.ClientNode, col)

	// Byzantine composition: every third seed makes the last replica
	// equivocate (conflicting proposals and claims toward f victims) on
	// top of the scheduler rules — the content-level half of the
	// adversary layer.
	equivocator := !o.NoEquivocation && seed%3 == 0
	victims := make(map[types.NodeID]bool, f)
	for i := 0; i < f; i++ {
		victims[types.NodeID(i)] = true
	}
	for i := 0; i < n; i++ {
		id := types.NodeID(i)
		cfg := core.DefaultConfig(n, m)
		cfg.InitialRecordingTimeout = 20 * time.Millisecond
		cfg.InitialCertifyTimeout = 20 * time.Millisecond
		cfg.MinTimeout = 5 * time.Millisecond
		cfg.Pacemaker = o.Pacemaker
		cfg.UnsafeLegacyResolution = o.Legacy
		if o.Dissem {
			cfg.Dissem = dissem.New(dissem.Config{N: n, F: f, CodeK: o.DissemCode})
		}
		if equivocator && i == n-1 {
			cfg.Behavior = core.Behavior{Mode: core.AttackEquivocate, Victims: victims}
		}
		sim.SetProtocol(id, core.New(sim.Context(id), cfg))
	}
	sim.Start()
	sim.Run(o.Duration)
	return ledgers, col.BatchesDone
}

// diffLedgers finds the first position where any replica's delivered
// sequence disagrees with the longest one, honest replicas only (the
// equivocator's own ledger is not part of the safety claim when it is the
// configured fault).
func diffLedgers(ledgers [][]SlotRecord, skip int) (pos int, a, b int, diverged bool) {
	longest := 0
	for i := range ledgers {
		if i == skip {
			continue
		}
		if len(ledgers[i]) > len(ledgers[longest]) || longest == skip {
			longest = i
		}
	}
	for i := range ledgers {
		if i == skip || i == longest {
			continue
		}
		for p := range ledgers[i] {
			if ledgers[i][p] != ledgers[longest][p] {
				return p, i, longest, true
			}
		}
	}
	return 0, 0, 0, false
}

// dumpDivergence renders a readable block-level report around the fork.
func dumpDivergence(seed int64, pos, a, b int, ledgers [][]SlotRecord) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed %d: ledgers diverge at position %d (replica %d vs %d)\n", seed, pos, a, b)
	lo := pos - 2
	if lo < 0 {
		lo = 0
	}
	for _, r := range []int{a, b} {
		fmt.Fprintf(&sb, "  replica %d (%d blocks):\n", r, len(ledgers[r]))
		for p := lo; p <= pos+2 && p < len(ledgers[r]); p++ {
			marker := " "
			if p == pos {
				marker = ">"
			}
			rec := ledgers[r][p]
			fmt.Fprintf(&sb, "   %s [%3d] inst=%d view=%-4d batch=%x\n", marker, p, rec.Instance, rec.View, rec.Batch[:6])
		}
	}
	return sb.String()
}

// RunSafetyDrill sweeps Seeds distinct adversary schedules and reports
// every seed whose honest ledgers diverged block-for-block.
func RunSafetyDrill(o SafetyDrillOptions) SafetyDrillResult {
	if o.N == 0 {
		o.N = 4
	}
	if o.Instances == 0 {
		o.Instances = 4
	}
	if o.Seeds == 0 {
		o.Seeds = 50
	}
	if o.SeedBase == 0 {
		o.SeedBase = 1
	}
	if o.BatchSize == 0 {
		o.BatchSize = 5
	}
	if o.Duration == 0 {
		o.Duration = 1500 * time.Millisecond
	}
	res := SafetyDrillResult{Options: o}
	for i := 0; i < o.Seeds; i++ {
		seed := o.SeedBase + int64(i)
		res.Seeds = append(res.Seeds, seed)
		ledgers, done := runSafetySeed(o, seed)
		for _, l := range ledgers {
			res.Delivered += uint64(len(l))
		}
		if done == 0 {
			res.Idle++
		}
		skip := -1
		if !o.NoEquivocation && seed%3 == 0 {
			skip = o.N - 1 // the equivocator is the configured fault
		}
		if pos, a, b, div := diffLedgers(ledgers, skip); div {
			res.Divergent = append(res.Divergent, Divergence{
				Seed: seed, Position: pos,
				Report: dumpDivergence(seed, pos, a, b, ledgers),
			})
		}
	}
	return res
}

// String renders the sweep summary (the -safety-drill CLI output).
func (r SafetyDrillResult) String() string {
	var sb strings.Builder
	mode := "strict"
	if r.Options.Legacy {
		mode = "LEGACY (negative control)"
	}
	if r.Options.Dissem {
		mode += " + digest ordering"
		if r.Options.DissemCode > 0 {
			mode += fmt.Sprintf(" (coded k=%d)", r.Options.DissemCode)
		}
	}
	if r.Options.Pacemaker != "" && r.Options.Pacemaker != "spotless" {
		mode += " + " + r.Options.Pacemaker + " pacemaker"
	}
	fmt.Fprintf(&sb, "safety drill: %d seeds, n=%d m=%d, %s rules — %d divergent, %d blocks delivered, %d idle seeds\n",
		len(r.Seeds), r.Options.N, r.Options.Instances, mode, len(r.Divergent), r.Delivered, r.Idle)
	for _, d := range r.Divergent {
		sb.WriteString(d.Report)
	}
	return sb.String()
}
