package bench

import (
	"testing"
	"time"

	"spotless/internal/loadgen"
	"spotless/internal/narwhal"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

// TestProbeNarwhal128 inspects Narwhal-HS internals at n=128 (calibration).
func TestProbeNarwhal128(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	n := 128
	scfg := simnet.DefaultConfig(n)
	sim := simnet.New(scfg)
	src := loadgen.NewSource(n, 8, loadgen.DefaultWorkload(100))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, (n-1)/3, 0)
	col.MeasureStart = 0
	col.MeasureEnd = 4 * time.Second
	sim.SetProtocol(simnet.ClientNode, col)
	var reps []*narwhal.Replica
	for i := 0; i < n; i++ {
		r := narwhal.New(sim.Context(types.NodeID(i)), narwhal.DefaultConfig(n))
		reps = append(reps, r)
		sim.SetProtocol(types.NodeID(i), r)
	}
	sim.Start()
	for _, at := range []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second} {
		sim.Run(at)
		t.Logf("t=%-6s txns=%7d  r0: %s", at, col.TxnsDone, reps[0].DebugString())
	}
}
