package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"spotless/internal/runtime"
	"spotless/internal/types"
	"spotless/internal/wal"
	"spotless/internal/ycsb"
)

// This file is the crash/disk-fault chaos soak: the durability proof for
// execution snapshots. Each seeded run drives a live durable cluster, then
// repeatedly kill-9s a victim under load, injects a disk fault from a
// seeded menu — bit flips and truncations on the snapshot file at rest,
// snapshot loss, segment corruption, fsync failures at snapshot-write time,
// a power cut dropping unsynced bytes — and restarts it. The invariant: at
// quiescence every replica's YCSB table byte-matches the never-crashed
// control replica, cold keys included. Restores, forward-replay fallbacks,
// and quarantines are tallied so the run also shows WHICH recovery path
// each fault exercised — a soak where every fault healed through the clean
// path would prove much less.

// CrashSoakOptions parameterizes the soak.
type CrashSoakOptions struct {
	Seeds    int   // seeded runs (default 20)
	SeedBase int64 // first seed of the sweep (default 1)
	Episodes int   // kill/fault/restart episodes per seed (default 2)
	// CheckpointInterval is the stable-frontier stride (default 8: several
	// checkpoints — and snapshots — per episode).
	CheckpointInterval int
	Records            uint64 // YCSB table size (default 256; snapshots stay small)
}

// WithDefaults resolves zero values.
func (o CrashSoakOptions) WithDefaults() CrashSoakOptions {
	if o.Seeds == 0 {
		o.Seeds = 20
	}
	if o.SeedBase == 0 {
		o.SeedBase = 1
	}
	if o.Episodes == 0 {
		o.Episodes = 2
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 8
	}
	if o.Records == 0 {
		o.Records = 256
	}
	return o
}

// Crash-soak disk-fault kinds. "none" is the pure kill-9; the rest corrupt
// or destroy durable state while (or just before) the victim is down.
const (
	faultNone         = "none"
	faultSnapFlip     = "snap-flip"     // one bit flipped in the snapshot body
	faultSnapTruncate = "snap-truncate" // snapshot tail torn at rest
	faultSnapRemove   = "snap-remove"   // snapshot lost, manifest intact
	faultSegFlip      = "segment-flip"  // ledger segment bit flip
	faultSyncFail     = "sync-fail"     // disk rejects fsyncs at snapshot-write time
	faultPowerCut     = "power-cut"     // machine loses power: unsynced bytes gone
)

var crashFaults = []string{faultNone, faultSnapFlip, faultSnapTruncate,
	faultSnapRemove, faultSegFlip, faultSyncFail, faultPowerCut}

// CrashSoakSeed is one seeded run's outcome.
type CrashSoakSeed struct {
	Seed        int64
	Faults      []string // fault kind per episode, in order
	Restored    uint64   // snapshot restores across all victim restarts
	Fallbacks   int      // forward-replay fallbacks (loss/corruption signature)
	Quarantined int      // snapshot files renamed aside
	Converge    time.Duration
	Diverged    bool
	Report      string
}

// CrashSoakResult aggregates the soak.
type CrashSoakResult struct {
	Options     CrashSoakOptions
	Seeds       []CrashSoakSeed
	Divergent   int
	Restored    uint64
	Fallbacks   int
	Quarantined int
}

// RunCrashSoak sweeps the seeds.
func RunCrashSoak(o CrashSoakOptions) (CrashSoakResult, error) {
	o = o.WithDefaults()
	res := CrashSoakResult{Options: o}
	for seed := o.SeedBase; seed < o.SeedBase+int64(o.Seeds); seed++ {
		sr, err := runCrashSeed(o, seed)
		if err != nil {
			return res, fmt.Errorf("crashsoak seed %d: %w", seed, err)
		}
		res.Seeds = append(res.Seeds, sr)
		if sr.Diverged {
			res.Divergent++
		}
		res.Restored += sr.Restored
		res.Fallbacks += sr.Fallbacks
		res.Quarantined += sr.Quarantined
	}
	return res, nil
}

// snapStats is the snapshot slice of one replica's WAL counters.
type snapStats struct {
	restored    uint64
	fallbacks   int
	quarantined int
}

func snapStatsOf(st *wal.Store) snapStats {
	s := st.Stats()
	return snapStats{restored: s.SnapshotsRestored, fallbacks: s.RestoreFallbacks,
		quarantined: s.SnapshotsQuarantined}
}

func runCrashSeed(o CrashSoakOptions, seed int64) (CrashSoakSeed, error) {
	sr := CrashSoakSeed{Seed: seed}
	rng := rand.New(rand.NewSource(seed))
	const n = 4
	fss := make([]*wal.MemFS, n)
	for i := range fss {
		fss[i] = wal.NewMemFS()
	}
	src := newCrashSource(seed, 600)
	done := make(chan struct{}, 4096)
	cl, err := runtime.NewCluster(runtime.ClusterConfig{
		N: n, Instances: 1, Source: src,
		Records:            o.Records,
		CheckpointInterval: o.CheckpointInterval,
		DataDir:            "crashsoak",
		FSFor:              func(i int) wal.FS { return fss[i] },
		OnDone: func(types.Digest) {
			select {
			case done <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		return sr, err
	}
	defer cl.Stop()

	await := func(k int, what string) error {
		deadline := time.After(60 * time.Second)
		for i := 0; i < k; i++ {
			select {
			case <-done:
			case <-deadline:
				return fmt.Errorf("timed out waiting for %s (%d/%d batches)", what, i, k)
			}
		}
		return nil
	}
	if err := await(o.CheckpointInterval+4, "warmup commits"); err != nil {
		return sr, err
	}
	// Pace the run so the frontier advances predictably relative to kills
	// and rejoins (the powercut drill's rationale).
	src.SetPace(3 * time.Millisecond)

	start := time.Now()
	for ep := 0; ep < o.Episodes; ep++ {
		// Victims are drawn from [1, n): replica 0 is the never-crashed
		// control every table is compared against.
		victim := 1 + rng.Intn(n-1)
		fault := crashFaults[rng.Intn(len(crashFaults))]
		sr.Faults = append(sr.Faults, fmt.Sprintf("r%d:%s", victim, fault))
		dir := fmt.Sprintf("crashsoak/r%d", victim)

		// Wait until the victim has persisted a snapshot (so the fault has
		// something to corrupt).
		deadline := time.Now().Add(60 * time.Second)
		for cl.Stores[victim].Stats().SnapshotsWritten == 0 {
			if time.Now().After(deadline) {
				return sr, errors.New("victim never persisted a snapshot")
			}
			select {
			case <-done:
			case <-time.After(5 * time.Millisecond):
			}
		}
		if fault == faultSyncFail {
			// Disk starts rejecting fsyncs while the victim is still up: the
			// next checkpoint's snapshot save (and any append sync) fails
			// live, then the process dies.
			fss[victim].FailSyncs(errors.New("crashsoak: injected fsync EIO"))
			_ = await(o.CheckpointInterval+2, "sync-fail window")
		}
		cl.Kill(victim)
		injectAtRest(fss[victim], dir, fault, rng)
		// Outage spans ≥2 checkpoint strides so the cluster's stable frontier
		// passes the victim's resume cut — its rejoin then runs through state
		// transfer, whose chunk carries the healing snapshot.
		if err := await(2*o.CheckpointInterval+4, "outage commits"); err != nil {
			return sr, err
		}
		fss[victim].FailSyncs(nil) // the transient disk error clears
		if err := cl.Restart(victim); err != nil {
			return sr, err
		}
		// Restart opened a fresh WAL store whose counters start at zero, so
		// its stats right now are exactly what recovery did — no delta against
		// the pre-kill instance (whose counters died with it).
		post := snapStatsOf(cl.Stores[victim])
		sr.Restored += post.restored
		sr.Fallbacks += post.fallbacks
		sr.Quarantined += post.quarantined
		// Let the victim rejoin before the next episode picks a new victim.
		deadline = time.Now().Add(60 * time.Second)
		for cl.Replicas[victim].StableHeight() < cl.Replicas[0].StableHeight() {
			if time.Now().After(deadline) {
				return sr, fmt.Errorf("victim %d never rejoined after %s", victim, fault)
			}
			select {
			case <-done:
			case <-time.After(5 * time.Millisecond):
			}
		}
	}

	// Quiesce: drain the source, let every in-flight commit land, then
	// compare the tables — byte-for-byte, cold keys included.
	src.SetPace(0)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if src.Drained() && tablesConverged(cl) {
			break
		}
		if time.Now().After(deadline) {
			sr.Diverged = true
			sr.Report = divergenceReport(cl)
			sr.Converge = time.Since(start)
			return sr, nil
		}
		select {
		case <-done:
		case <-time.After(10 * time.Millisecond):
		}
	}
	sr.Converge = time.Since(start)
	return sr, nil
}

// injectAtRest applies the episode's disk fault to the dead victim's
// filesystem. Faults that need a live process (sync-fail) were injected
// before the kill; power-cut models the machine, not the disk.
func injectAtRest(fsys *wal.MemFS, dir, fault string, rng *rand.Rand) {
	find := func(prefix string) string {
		names, err := fsys.ReadDir(dir)
		if err != nil {
			return ""
		}
		for _, name := range names {
			if strings.HasPrefix(name, prefix) {
				return dir + "/" + name
			}
		}
		return ""
	}
	switch fault {
	case faultSnapFlip:
		if p := find("snap-"); p != "" {
			fsys.FlipBit(p, rng.Int63n(fsys.Size(p)), uint(rng.Intn(8)))
		}
	case faultSnapTruncate:
		if p := find("snap-"); p != "" {
			fsys.TruncateFile(p, fsys.Size(p)/2)
		}
	case faultSnapRemove:
		if p := find("snap-"); p != "" {
			_ = fsys.Remove(p)
		}
	case faultSegFlip:
		if p := find("seg-"); p != "" {
			fsys.FlipBit(p, rng.Int63n(fsys.Size(p)), uint(rng.Intn(8)))
		}
	case faultPowerCut:
		fsys.Crash()
	}
}

// tablesConverged reports whether every replica's table byte-matches the
// control (replica 0): same applied count, same record fingerprint.
func tablesConverged(cl *runtime.Cluster) bool {
	want := cl.Execs[0].Store().Fingerprint()
	applied := cl.Execs[0].Store().Applied()
	for i := 1; i < len(cl.Execs); i++ {
		if cl.Execs[i].Store().Applied() != applied ||
			cl.Execs[i].Store().Fingerprint() != want {
			return false
		}
	}
	return true
}

// divergenceReport renders which replicas and keys disagree with the
// control — the forensic dump a failed soak leaves behind.
func divergenceReport(cl *runtime.Cluster) string {
	var b strings.Builder
	control := cl.Execs[0].Store().Dump()
	fmt.Fprintf(&b, "control applied=%d records=%d\n", cl.Execs[0].Store().Applied(), len(control))
	for i := 1; i < len(cl.Execs); i++ {
		st := cl.Execs[i].Store()
		if st.Fingerprint() == cl.Execs[0].Store().Fingerprint() && st.Applied() == cl.Execs[0].Store().Applied() {
			continue
		}
		dump := st.Dump()
		fmt.Fprintf(&b, "replica %d applied=%d records=%d; first mismatches:", i, st.Applied(), len(dump))
		shown := 0
		for k, v := range control {
			if shown >= 5 {
				break
			}
			if string(dump[k]) != string(v) {
				fmt.Fprintf(&b, " key %d (%d vs %d bytes)", k, len(dump[k]), len(v))
				shown++
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// crashSource is the soak's seeded, paceable FIFO batch source.
type crashSource struct {
	pcSource
}

func newCrashSource(seed int64, batches int) *crashSource {
	wl := ycsb.NewWorkload(seed, types.ClientIDBase, 1000, 16)
	s := &crashSource{}
	for j := 0; j < batches; j++ {
		s.q = append(s.q, wl.NextBatch(5))
	}
	return s
}

// Drained reports whether every queued batch has been handed out.
func (s *crashSource) Drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.q) == 0
}

// CrashSoakTable renders the soak result.
func CrashSoakTable(res CrashSoakResult) Table {
	t := Table{ID: "crashsoak",
		Title: fmt.Sprintf("crash/disk-fault soak: %d seeds × %d kill-9 episodes, checkpoint every %d",
			res.Options.Seeds, res.Options.Episodes, res.Options.CheckpointInterval),
		Headers: []string{"seed", "episodes (victim:fault)", "restored", "fallbacks", "quarantined", "converged", "in"}}
	for _, s := range res.Seeds {
		conv := "yes"
		if s.Diverged {
			conv = "DIVERGED"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s.Seed), strings.Join(s.Faults, " "),
			fmt.Sprintf("%d", s.Restored), fmt.Sprintf("%d", s.Fallbacks),
			fmt.Sprintf("%d", s.Quarantined), conv, lat(s.Converge)})
	}
	t.Rows = append(t.Rows, []string{"total",
		fmt.Sprintf("%d diverged", res.Divergent),
		fmt.Sprintf("%d", res.Restored), fmt.Sprintf("%d", res.Fallbacks),
		fmt.Sprintf("%d", res.Quarantined), "", ""})
	return t
}
