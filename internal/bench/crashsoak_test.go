package bench

import (
	"testing"
)

// TestCrashSoakNoDivergence: the PR's headline invariant as a regression
// bar. Across seeded kill-9/disk-fault/restart schedules, every restarted
// replica's table converges byte-for-byte with the never-crashed control —
// and the sweep must exercise both recovery paths: clean snapshot restores
// AND the corruption signature (fallback or quarantine). A soak that only
// ever saw the happy path proves nothing about the fault matrix.
func TestCrashSoakNoDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time chaos soak")
	}
	res, err := RunCrashSoak(CrashSoakOptions{Seeds: 6, Episodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Seeds {
		if s.Diverged {
			t.Errorf("seed %d diverged after %v:\n%s", s.Seed, s.Faults, s.Report)
		}
	}
	if res.Divergent != 0 {
		t.Fatalf("%d of %d seeds diverged", res.Divergent, len(res.Seeds))
	}
	if res.Restored == 0 {
		t.Fatal("soak never exercised a snapshot restore")
	}
	if res.Fallbacks+res.Quarantined == 0 {
		t.Fatal("soak never exercised the corruption/loss path")
	}
}
