package bench

import (
	"testing"
	"time"
)

// TestVerifyPipelineDeterminism: the verification pipeline preserves the
// simulator's determinism — a fixed seed with serial verification
// (VerifyCores=1, the pre-pipeline model) reproduces bit-identical results,
// and so does the pipelined configuration.
func TestVerifyPipelineDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name  string
		proto Protocol
		cores int
	}{
		{"hotstuff-serial", HotStuff, 1},
		{"hotstuff-pipelined", HotStuff, 16},
		{"spotless-serial", SpotLess, 1},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func() Result {
				return Run(Options{Protocol: tc.proto, N: 4, Seed: 7, VerifyCores: tc.cores,
					BatchSize: 20, Outstanding: 8,
					Warmup: 100 * time.Millisecond, Measure: 200 * time.Millisecond})
			}
			a, b := run(), run()
			if a.Throughput != b.Throughput || a.Batches != b.Batches ||
				a.AvgLatency != b.AvgLatency || a.P99Latency != b.P99Latency {
				t.Fatalf("nondeterministic results:\n  a=%+v txn/s %v batches %v\n  b=%+v txn/s %v batches %v",
					a.Throughput, a.AvgLatency, a.Batches, b.Throughput, b.AvgLatency, b.Batches)
			}
		})
	}
}

// TestVerifyPipelineSpeedup: fanning certificate verification across the
// core pool must lift throughput of a DS-bound configuration (the paper's
// HotStuff port verifies n−f signatures per view on its critical path,
// §6.2). Skipped in -short mode: it simulates a 32-replica cluster.
func TestVerifyPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("DS-bound scale run")
	}
	n := 32
	serial := Run(Options{Protocol: HotStuff, N: n, VerifyCores: 1,
		Measure: 400 * time.Millisecond})
	pooled := Run(Options{Protocol: HotStuff, N: n, VerifyCores: 16,
		Measure: 400 * time.Millisecond})
	t.Logf("HotStuff n=%d: serial %.0f txn/s, pooled %.0f txn/s", n, serial.Throughput, pooled.Throughput)
	if pooled.Throughput < serial.Throughput*1.2 {
		t.Fatalf("verification pipeline gave no DS-bound win: serial=%.0f pooled=%.0f txn/s",
			serial.Throughput, pooled.Throughput)
	}
}
