package bench

import (
	"testing"
	"time"
)

// TestProbeSmall sanity-checks the harness on a small cluster for every
// protocol: each must complete transactions.
func TestProbeSmall(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res := Run(Options{Protocol: p, N: 4, BatchSize: 20, Outstanding: 8,
				Warmup: 100 * time.Millisecond, Measure: 300 * time.Millisecond})
			if res.Throughput == 0 {
				t.Fatalf("%s: zero throughput", p)
			}
			t.Logf("%s: %.0f txn/s, lat=%s, msgs/batch=%.1f", p, res.Throughput, res.AvgLatency, res.MsgsPerBatch)
		})
	}
}
