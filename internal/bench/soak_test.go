package bench

import (
	"testing"
	"time"

	"spotless/internal/simnet"
)

// regressionSoakOptions is the CI soak profile: 20 seeds per fault profile,
// default pacemaker, short virtual runs — sized to stay -short-friendly
// next to the safety drill in the race job.
func regressionSoakOptions() SoakOptions {
	return SoakOptions{
		Seeds:      20,
		Instances:  2,
		Duration:   1500 * time.Millisecond,
		Pacemakers: []string{"spotless"},
	}
}

// TestSoakRegressionDefaultPacemaker: across 20 seeded chaos schedules per
// fault profile, the default pacemaker's honest ledgers never fork and the
// time-to-resync tail stays bounded — the paper's "rapid view
// synchronization" claim as a regression bar. The ceiling has ~60%
// headroom over the measured p99 (370ms virtual at calibration); a
// pacemaker or resolution change that slows post-fault recovery trips it.
func TestSoakRegressionDefaultPacemaker(t *testing.T) {
	o := regressionSoakOptions()
	if testing.Short() {
		o.Seeds = 8
	}
	res, err := RunSoak(o)
	if err != nil {
		t.Fatal(err)
	}
	const resyncCeiling = 600 * time.Millisecond
	for _, c := range res.Cells {
		if len(c.Divergent) != 0 {
			for _, d := range c.Divergent {
				t.Log(d.Report)
			}
			t.Fatalf("%s/%s: %d seeds diverged", c.Profile, c.Pacemaker, len(c.Divergent))
		}
		if c.Faults == 0 {
			t.Fatalf("%s/%s: the chaos plan injected no faults", c.Profile, c.Pacemaker)
		}
		if c.Unhealed*10 > c.Faults {
			t.Fatalf("%s/%s: %d of %d faults never resynced (>10%%)", c.Profile, c.Pacemaker, c.Unhealed, c.Faults)
		}
		if c.ResyncP99 > resyncCeiling {
			t.Fatalf("%s/%s: resync p99 %v exceeds the %v ceiling", c.Profile, c.Pacemaker, c.ResyncP99, resyncCeiling)
		}
	}
}

// TestSoakCrashProfile: across 20 seeded kill-9 schedules, a replica that
// crashes mid-soak (all in-memory consensus state lost) and restarts
// amnesiac rejoins through state transfer without ever forking an honest
// ledger. The resync ceiling is looser than the partition/gray/skew bar:
// an amnesiac victim has to re-fetch the stable checkpoint before its
// first post-heal delivery, not merely re-engage its timers.
func TestSoakCrashProfile(t *testing.T) {
	o := regressionSoakOptions()
	o.Profiles = []string{simnet.ProfileCrash}
	if testing.Short() {
		o.Seeds = 8
	}
	res, err := RunSoak(o)
	if err != nil {
		t.Fatal(err)
	}
	const resyncCeiling = 900 * time.Millisecond
	for _, c := range res.Cells {
		if len(c.Divergent) != 0 {
			for _, d := range c.Divergent {
				t.Log(d.Report)
			}
			t.Fatalf("%s/%s: %d seeds diverged after crash/restart", c.Profile, c.Pacemaker, len(c.Divergent))
		}
		if c.Faults == 0 {
			t.Fatalf("%s/%s: the chaos plan injected no crashes", c.Profile, c.Pacemaker)
		}
		if c.Unhealed*5 > c.Faults {
			t.Fatalf("%s/%s: %d of %d crash victims never delivered again (>20%%)", c.Profile, c.Pacemaker, c.Unhealed, c.Faults)
		}
		if c.ResyncP99 > resyncCeiling {
			t.Fatalf("%s/%s: crash resync p99 %v exceeds the %v ceiling", c.Profile, c.Pacemaker, c.ResyncP99, resyncCeiling)
		}
	}
}

// TestSoakDeterministic: the full bake-off table — every profile × every
// arm — is a pure function of the seed: two sweeps render byte-identical
// tables on any host. This is what makes a soak number quotable.
func TestSoakDeterministic(t *testing.T) {
	o := SoakOptions{Seeds: 1, Instances: 2, Duration: 1200 * time.Millisecond}
	a, err := RunSoak(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(o)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.Table(), b.Table()
	if ta.String() != tb.String() {
		t.Fatalf("soak table not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s", ta.String(), tb.String())
	}
	if len(a.Cells) != 9 {
		t.Fatalf("default sweep must cross 3 profiles × 3 arms, got %d cells", len(a.Cells))
	}
	for _, c := range a.Cells {
		if c.Faults == 0 {
			t.Fatalf("%s/%s: no faults injected", c.Profile, c.Pacemaker)
		}
		if len(c.Divergent) != 0 {
			t.Fatalf("%s/%s: diverged under chaos", c.Profile, c.Pacemaker)
		}
	}
}
