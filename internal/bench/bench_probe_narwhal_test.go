package bench

import (
	"testing"
	"time"
)

// TestProbeNarwhal bisects Narwhal-HS across n (calibration probe).
func TestProbeNarwhal(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, n := range []int{16, 32, 64, 128} {
		start := time.Now()
		res := Run(Options{Protocol: NarwhalHS, N: n,
			Measure: 500 * time.Millisecond})
		t.Logf("Narwhal n=%3d: %8.0f txn/s, lat=%10s (wall %s)",
			n, res.Throughput, res.AvgLatency, time.Since(start).Round(time.Millisecond))
	}
}
