package bench

import (
	"fmt"
	"sync"
	"time"

	"spotless/internal/runtime"
	"spotless/internal/types"
	"spotless/internal/wal"
	"spotless/internal/ycsb"
)

func init() {
	Figures = append(Figures, Figure{
		ID:    "ablation-powercut",
		Title: "Ablation: durable WAL — power-cut rejoin transfers the missing suffix, not the retained chain",
		Run:   PowerCutFigure,
	})
}

// PowerCutOptions parameterizes the power-cut drill. The interesting regime
// is a crash landing well after the last checkpoint: the victim then holds a
// long committed tail above the stable frontier, which a durable replica
// replays from local disk while a memory-only one must re-download it.
type PowerCutOptions struct {
	CheckpointInterval int // stable-frontier stride (default 32)
	Warmup             int // committed batches before the cut (default 40)
	Outage             int // committed batches while the victim is down (default 6)
}

// WithDefaults resolves the zero values. The defaults place the cut a few
// commits past a stabilized checkpoint and keep the outage well inside the
// next stride, so the victim's replayed head stays at or above the stable
// frontier while it rejoins — the regime where local disk replaces network
// transfer entirely.
func (o PowerCutOptions) WithDefaults() PowerCutOptions {
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 32
	}
	if o.Warmup == 0 {
		o.Warmup = 40
	}
	if o.Outage == 0 {
		o.Outage = 6
	}
	return o
}

// PowerCutArm is one arm of the drill: a replica kill-9'd under load and
// restarted, with every byte to or from it metered until it has rejoined.
type PowerCutArm struct {
	Durable      bool
	Replayed     int           // ledger blocks replayed from local disk at restart
	ChunkBlocks  int           // ledger blocks re-transferred over the network
	ChunkBytes   int           // state-chunk bytes of those transfers
	RejoinBytes  int           // all bytes to/from the victim, restart → rejoined
	Rejoin       time.Duration // restart → caught up with the healthy quorum
	SnapRestored bool          // execution snapshot restored from the WAL at restart
	PreKeys      int           // keys last written before the stable cut (attested state)
	PreKeyMisses int           // of those, reads answered wrongly right after restart
	BelowAnchor  int           // replayed ledger blocks below the snapshot anchor (must be 0)
}

// pcSource is a paced FIFO batch source: it feeds one consensus lane at full
// speed until SetPace installs a minimum spacing between batches. The drill
// paces the tail of the run so the healthy quorum's checkpoint frontier
// advances slowly while the victim's fetch round-trips — the regime a real
// deployment is in, where a process restart is fast relative to the
// checkpoint stride.
type pcSource struct {
	mu   sync.Mutex
	q    []*types.Batch
	pace time.Duration
	last time.Time
}

func newPCSource(batches, size int) *pcSource {
	wl := ycsb.NewWorkload(1, types.ClientIDBase, 1000, 16)
	s := &pcSource{}
	for j := 0; j < batches; j++ {
		s.q = append(s.q, wl.NextBatch(size))
	}
	return s
}

func (s *pcSource) SetPace(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pace = d
}

// Next implements runtime.BatchSource.
func (s *pcSource) Next(instance int32, _ time.Duration) *types.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if instance != 0 || len(s.q) == 0 {
		return nil
	}
	if s.pace > 0 && time.Since(s.last) < s.pace {
		return nil
	}
	s.last = time.Now()
	b := s.q[0]
	s.q = s.q[1:]
	return b
}

// RunPowerCut runs the kill-9-under-load drill twice — once with a durable
// WAL-backed ledger (warm: restart replays local segments and fetches only
// the missing suffix) and once memory-only (cold: restart is empty and
// re-downloads the whole retained chain from the stable height).
func RunPowerCut(o PowerCutOptions) (warm, cold PowerCutArm, err error) {
	o = o.WithDefaults()
	if warm, err = powerCutArm(true, o); err != nil {
		return
	}
	cold, err = powerCutArm(false, o)
	return
}

func powerCutArm(durable bool, o PowerCutOptions) (PowerCutArm, error) {
	arm := PowerCutArm{Durable: durable}
	const victim = 3
	src := newPCSource(o.Warmup+o.Outage+4*o.CheckpointInterval, 5)
	done := make(chan struct{}, 4096)
	cfg := runtime.ClusterConfig{
		N: 4, Instances: 1, Source: src,
		CheckpointInterval: o.CheckpointInterval,
		OnDone: func(types.Digest) {
			select {
			case done <- struct{}{}:
			default:
			}
		},
	}
	if durable {
		cfg.DataDir = "powercut"
		cfg.FS = wal.NewMemFS()
	}
	cl, err := runtime.NewCluster(cfg)
	if err != nil {
		return arm, err
	}
	defer cl.Stop()

	await := func(k int, what string) error {
		deadline := time.After(60 * time.Second)
		for i := 0; i < k; i++ {
			select {
			case <-done:
			case <-deadline:
				return fmt.Errorf("powercut: timed out waiting for %s (%d/%d batches)", what, i, k)
			}
		}
		return nil
	}
	if err := await(o.Warmup, "warmup commits"); err != nil {
		return arm, err
	}
	// Pace the rest of the run: the stable frontier must advance slowly and
	// predictably relative to the kill, the restart, and the rejoin, or the
	// next checkpoint stride races past the victim's replayed head and turns
	// every rejoin into a full re-root regardless of what disk preserved.
	src.SetPace(15 * time.Millisecond)
	// The cut must land after a persisted checkpoint (so the durable arm has
	// something to resume from) with a committed tail above it.
	deadline := time.Now().Add(60 * time.Second)
	for cl.Replicas[victim].StableHeight() == 0 ||
		cl.Execs[victim].Ledger().Height() <= cl.Replicas[victim].StableHeight() {
		if time.Now().After(deadline) {
			return arm, fmt.Errorf("powercut: victim never held a committed tail above a stable checkpoint")
		}
		select {
		case <-done:
		case <-time.After(10 * time.Millisecond):
		}
	}
	cl.Kill(victim)
	// The victim's event loop is stopped: its retained stable snapshot is the
	// attested table at the cut — exactly what a durable restart must serve
	// before replaying a single block above the anchor.
	anchorH, anchorBlob := cl.Execs[victim].StableSnapshot()
	var atCut *ycsb.TableSnapshot
	if anchorBlob != nil {
		if atCut, err = ycsb.DecodeSnapshot(anchorBlob); err != nil {
			return arm, fmt.Errorf("powercut: stable snapshot at the cut does not decode: %v", err)
		}
	}
	if err := await(o.Outage, "outage commits"); err != nil {
		return arm, err
	}
	var mu sync.Mutex
	cl.Transport.SetMeter(func(from, to types.NodeID, msg types.Message) {
		if from != victim && to != victim {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		arm.RejoinBytes += msg.WireSize()
		if sc, ok := msg.(*types.StateChunk); ok && to == victim {
			arm.ChunkBlocks += len(sc.Blocks)
			arm.ChunkBytes += sc.WireSize()
		}
	})
	healthyHeight := cl.Execs[0].Ledger().Height()
	healthyStable := cl.Replicas[0].StableHeight()
	start := time.Now()
	if err := cl.Restart(victim); err != nil {
		return arm, err
	}
	if durable {
		st := cl.Stores[victim].Stats()
		arm.Replayed = st.Replayed
		arm.SnapRestored = st.SnapshotsRestored > 0
		// Forward replay must start at the snapshot anchor, not below it: the
		// restored ledger base sitting under the anchor would mean pre-cut
		// blocks were re-executed instead of served from the attested table.
		if base := cl.Execs[victim].Ledger().Snapshot().Height; base < anchorH {
			arm.BelowAnchor = int(anchorH - base)
		}
	}
	// Read pre-checkpoint keys immediately after restart, before the victim
	// exchanges a single message: whatever answers now is what restart alone
	// produced. Keys whose value in the cut snapshot is workload-sized (not
	// the 64-byte initial payload) were last written before the checkpoint —
	// the attested state a durable restart serves and a cold one cannot.
	if atCut != nil {
		store := cl.Execs[victim].Store()
		for k, v := range atCut.Records {
			if len(v) == 64 {
				continue
			}
			arm.PreKeys++
			if string(store.Read(k)) != string(v) {
				arm.PreKeyMisses++
			}
		}
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		if cl.Replicas[victim].StableHeight() >= healthyStable &&
			cl.Execs[victim].Ledger().Height() >= healthyHeight &&
			cl.Execs[victim].Store().Applied() > 0 {
			break
		}
		if time.Now().After(deadline) {
			return arm, fmt.Errorf("powercut: victim never rejoined (stable=%d/%d ledger=%d/%d)",
				cl.Replicas[victim].StableHeight(), healthyStable,
				cl.Execs[victim].Ledger().Height(), healthyHeight)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Millisecond):
		}
	}
	arm.Rejoin = time.Since(start)
	cl.Transport.SetMeter(nil)
	if err := cl.Execs[victim].Ledger().Verify(); err != nil {
		return arm, fmt.Errorf("powercut: rejoined ledger does not verify: %v", err)
	}
	return arm, nil
}

// PowerCutTable renders the two arms side by side.
func PowerCutTable(warm, cold PowerCutArm, o PowerCutOptions) Table {
	t := Table{ID: "ablation-powercut",
		Title: fmt.Sprintf("power-cut rejoin, n=4, checkpoint every %d, crash %d past the checkpoint, %d-batch outage",
			o.CheckpointInterval, o.Warmup%o.CheckpointInterval, o.Outage),
		Headers: []string{"variant", "snapshot restored", "pre-ckpt keys served", "replayed below anchor", "replayed from disk", "blocks over network", "state bytes", "rejoin bytes", "rejoin ms"}}
	for _, a := range []PowerCutArm{warm, cold} {
		name := "memory-only (O(chain since stable))"
		if a.Durable {
			name = "durable WAL (O(missing suffix))"
		}
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%t", a.SnapRestored),
			fmt.Sprintf("%d/%d", a.PreKeys-a.PreKeyMisses, a.PreKeys),
			fmt.Sprintf("%d", a.BelowAnchor),
			fmt.Sprintf("%d", a.Replayed), fmt.Sprintf("%d", a.ChunkBlocks),
			fmt.Sprintf("%d", a.ChunkBytes), fmt.Sprintf("%d", a.RejoinBytes), lat(a.Rejoin)})
	}
	return t
}

// PowerCutFigure adapts the drill to the figure runner (the drill is
// CI-sized already; quick changes nothing).
func PowerCutFigure(bool) []Table {
	o := PowerCutOptions{}.WithDefaults()
	warm, cold, err := RunPowerCut(o)
	if err != nil {
		return []Table{{ID: "ablation-powercut", Title: "power-cut drill failed",
			Headers: []string{"error"}, Rows: [][]string{{err.Error()}}}}
	}
	return []Table{PowerCutTable(warm, cold, o)}
}
