package bench

import (
	"fmt"
	"time"

	"spotless/internal/simnet"
)

func init() {
	Figures = append(Figures, Figure{
		ID:    "ablation",
		Title: "Ablations: fast path (§6.1), message buffering (§6.1), QC verification (§6.2), verification pipeline",
		Run:   Ablations,
	})
}

// Ablations benchmarks the reproduction's design choices:
//
//   - the geo fast path: the optimistic next-view proposal should cut WAN
//     latency without hurting LAN throughput;
//   - message buffering: removing it explodes per-packet costs;
//   - HotStuff QC verification: the n−f signature checks are the protocol's
//     dominant cost (the paper's explanation for its 3803% gap).
func Ablations(quick bool) []Table {
	n := 32
	if quick {
		n = 16
	}
	var out []Table

	t1 := &Table{ID: "ablation-fastpath", Title: fmt.Sprintf("SpotLess geo fast path, n=%d, 4 regions", n),
		Headers: []string{"variant", "ktxn/s", "avg latency ms"}}
	for _, fp := range []bool{false, true} {
		res := Run(Options{Protocol: SpotLess, N: n, RegionCount: 4, FastPath: fp,
			Measure: 400 * time.Millisecond})
		name := "slow path (wait for votes)"
		if fp {
			name = "fast path (optimistic propose)"
		}
		t1.Rows = append(t1.Rows, []string{name, ktps(res.Throughput), lat(res.AvgLatency)})
	}
	out = append(out, *t1)

	t2 := &Table{ID: "ablation-buffering", Title: fmt.Sprintf("message buffering, SpotLess, n=%d", n),
		Headers: []string{"variant", "ktxn/s", "avg latency ms"}}
	for _, nb := range []bool{false, true} {
		res := Run(Options{Protocol: SpotLess, N: n, NoBuffering: nb,
			Measure: 300 * time.Millisecond})
		name := "buffered (§6.1)"
		if nb {
			name = "unbuffered"
		}
		t2.Rows = append(t2.Rows, []string{name, ktps(res.Throughput), lat(res.AvgLatency)})
	}
	out = append(out, *t2)

	t3 := &Table{ID: "ablation-qcverify", Title: fmt.Sprintf("HotStuff QC verification cost, n=%d", n),
		Headers: []string{"variant", "ktxn/s", "avg latency ms"}}
	for _, skip := range []bool{false, true} {
		res := Run(Options{Protocol: HotStuff, N: n, SkipQCVerify: skip,
			Measure: 400 * time.Millisecond})
		name := "verify n−f signatures (§6.2)"
		if skip {
			name = "free verification (threshold-signature ideal)"
		}
		t3.Rows = append(t3.Rows, []string{name, ktps(res.Throughput), lat(res.AvgLatency)})
	}
	out = append(out, *t3)

	// Verification pipeline: the DS-bound baselines verify n−f-signature
	// certificates on every ingress path; fanning each certificate across
	// the node's cores (instead of serializing it on the event loop) is
	// the before/after this PR's refactor targets. VerifyCores=1 is the
	// serial pre-pipeline model.
	t4 := &Table{ID: "ablation-verify-pipeline",
		Title:   fmt.Sprintf("parallel verification pipeline (DS-bound protocols), n=%d", n),
		Headers: []string{"protocol", "verify cores", "ktxn/s", "avg latency ms"}}
	for _, p := range []Protocol{HotStuff, NarwhalHS} {
		for _, vc := range []int{1, 0} {
			res := Run(Options{Protocol: p, N: n, VerifyCores: vc,
				Measure: 400 * time.Millisecond})
			width := "1 (serial)"
			if vc != 1 {
				width = fmt.Sprintf("%d (pipelined)", simnet.DefaultConfig(n).Cores)
			}
			t4.Rows = append(t4.Rows, []string{string(p), width, ktps(res.Throughput), lat(res.AvgLatency)})
		}
	}
	out = append(out, *t4)
	return out
}
