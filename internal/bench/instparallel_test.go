package bench

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkInstanceParallel reports the commit throughput of the
// instance-parallel core at m=8 across worker counts on the simulator's
// modelled cores (virtual time, deterministic — independent of the CI
// host's core count). workers=1 is the seed's single event loop; workers=8
// gives every instance its own lane behind the serialized ordering stage.
func BenchmarkInstanceParallel(b *testing.B) {
	for _, w := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("m=8/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := Run(InstParOptions(8, 8, w))
				b.ReportMetric(res.Throughput/1000, "ktxn/s")
				b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "lat-ms")
			}
		})
	}
}

// BenchmarkInstanceParallelRuntime measures the real substrate: TCP
// loopback, ed25519/HMAC, YCSB execution, sharded runtime nodes. Wall-clock
// results depend on the host's core count — on a single-core host both arms
// coincide; the simulator benchmark above carries the modelled scaling.
func BenchmarkInstanceParallelRuntime(b *testing.B) {
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("m=8/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunRuntime(RuntimeOptions{
					N: 4, Instances: 8, InstanceWorkers: w,
					Warmup: 500 * time.Millisecond, Measure: time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Throughput/1000, "ktxn/s")
				b.ReportMetric(float64(res.NetQueueSheds), "queue-sheds")
			}
		})
	}
}

// TestInstanceParallelSpeedup enforces the PR's acceptance criterion on the
// simulator's modelled cores: at m=8, eight workers must at least double
// the commit throughput of the single event loop. Deterministic (virtual
// time), so it cannot flake with host load.
func TestInstanceParallelSpeedup(t *testing.T) {
	serial := Run(InstParOptions(8, 8, 1))
	parallel := Run(InstParOptions(8, 8, 8))
	if serial.Throughput <= 0 {
		t.Fatal("single-loop run committed nothing")
	}
	ratio := parallel.Throughput / serial.Throughput
	t.Logf("m=8: workers=1 %.1f ktxn/s, workers=8 %.1f ktxn/s (%.2fx)",
		serial.Throughput/1000, parallel.Throughput/1000, ratio)
	if ratio < 2.0 {
		t.Fatalf("instance-parallel speedup %.2fx < 2x at m=8 (workers 8 vs 1)", ratio)
	}
}
