// Package bench is the evaluation harness: it reconstructs every experiment
// of §6.3 (all panels of Figures 7–15 plus the Figure 1 complexity table) on
// the discrete-event simulator, with one Options struct per data point and
// one exported function per figure, plus ablations for the reproduction's
// own design choices (fast path, buffering, the verification pipeline, and
// the checkpoint/state-transfer subsystem with its kill-and-rejoin
// scenario).
package bench

import (
	"fmt"
	"sort"
	"time"

	"spotless/internal/core"
	"spotless/internal/dissem"
	"spotless/internal/hotstuff"
	"spotless/internal/loadgen"
	"spotless/internal/narwhal"
	"spotless/internal/pbft"
	"spotless/internal/protocol"
	"spotless/internal/rcc"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

// Protocol names the five evaluated consensus protocols.
type Protocol string

// The evaluated protocols (§6.2).
const (
	SpotLess  Protocol = "SpotLess"
	Pbft      Protocol = "Pbft"
	RCC       Protocol = "RCC"
	HotStuff  Protocol = "HotStuff"
	NarwhalHS Protocol = "Narwhal-HS"
)

// AllProtocols lists the protocols in the paper's plotting order.
var AllProtocols = []Protocol{SpotLess, HotStuff, RCC, Pbft, NarwhalHS}

// Options describes one experiment data point.
type Options struct {
	Protocol  Protocol
	N         int
	Instances int // 0: protocol default (n for SpotLess/RCC)

	BatchSize   int // txns per batch (paper default 100)
	TxnValueSz  int // per-txn payload bytes (transaction-size experiment)
	Outstanding int // closed-loop batches per instance (load knob, Fig 10)

	// TuneBatchSize pins the SpotLess timer auto-tuning to a reference
	// batch size instead of BatchSize (0). The dissemination sweep uses it
	// to model the operationally honest scenario: a cluster tuned at the
	// baseline workload whose payloads then grow 10–100x without a retune.
	TuneBatchSize int

	Warmup  time.Duration
	Measure time.Duration
	Seed    int64

	// Resource model overrides (0 = calibrated default).
	Cores         int
	BandwidthMbps float64
	RegionCount   int // ≥2 distributes replicas over WAN regions (Fig 14c,d)

	// VerifyCores bounds the verification pipeline's virtual core pool
	// (crypto.CostModel.Cores). 0 inherits the node core count; 1
	// serializes every signature check on the protocol event loop as the
	// pre-pipeline model did (absolute figures still differ slightly from
	// the seed: deliveries now charge a MAC and batches verify fully).
	VerifyCores int

	// InstanceWorkers > 1 selects the simulator's instance-parallel model
	// (simnet.Config.InstanceWorkers): each replica's m instances execute
	// on per-shard lanes — one modelled core each — behind a serialized
	// ordering lane, mirroring runtime -instance-workers. 1 models the
	// classic single event loop (every handler serialized on one lane);
	// 0 keeps the calibrated aggregate-capacity model.
	InstanceWorkers int

	// Failure / attack injection.
	Failures int             // number of faulty replicas
	FailAt   time.Duration   // when they fail (0: from the start)
	Attack   core.AttackMode // AttackNone ⇒ non-responsive (A1)
	// ReviveAt restarts the downed replicas (Attack == AttackNone only)
	// with fresh, empty state at the given time — the crash/recovery
	// scenario. Recovery is measured into Result.ReviveRecovery.
	ReviveAt time.Duration

	// Checkpoint subsystem knobs (SpotLess; see core.Config).
	CheckpointInterval int // 0 disables (seed behaviour)
	RetentionViews     int // 0 keeps the protocol default window

	TimelineBucket time.Duration // >0 records a throughput timeline (Fig 12)

	// Dissem enables SpotLess digest ordering: payloads are disseminated
	// ahead of consensus by internal/dissem (one stream per ORIGIN replica,
	// like Narwhal-HS), proposals carry constant-size digest references, and
	// delivery resolves them back through the dissemination store.
	Dissem bool

	// DissemCode selects erasure-coded dissemination (dissem.Config.CodeK,
	// requires Dissem): origins push one coded chunk per peer instead of the
	// full payload, cutting origin egress to ~(n−1)/k of the batch. 0 keeps
	// the full push.
	DissemCode int

	// Ablation knobs (design-choice benchmarks; see the ablation-* figures).
	FastPath     bool // SpotLess geo fast path (§6.1)
	NoBuffering  bool // disable ResilientDB-style message buffering (§6.1)
	SkipQCVerify bool // HotStuff without backup-side QC verification

	Debug bool
}

// Result is one measured data point.
type Result struct {
	Options
	Throughput   float64 // completed txn/s
	AvgLatency   time.Duration
	P50Latency   time.Duration
	P99Latency   time.Duration
	Batches      uint64
	MsgsPerBatch float64 // protocol messages sent per decided batch
	Timeline     []loadgen.TimelinePoint

	// Retained consensus bookkeeping at the end of the run, maximum across
	// SpotLess replicas (proposal-map and view-map entries) — the state the
	// checkpoint GC bounds.
	StateProposals int
	StateViews     int
	// ReviveRecovery is the time from ReviveAt until the last revived
	// replica executed its first post-revival batch (0: never recovered).
	ReviveRecovery time.Duration

	// TCP transport saturation counters aggregated across replicas — the
	// drop paths of transport.Stats that would otherwise stay silent
	// during saturated perf runs. Populated by the runtime-substrate
	// harness (RunRuntime); always zero on simulator runs.
	NetEncodes        uint64
	NetEncodeFailures uint64
	NetQueueSheds     uint64
	NetMACRejections  uint64
	NetDecodeFailures uint64
	NetIngressDrops   uint64
	// Endpoint frame volume (transport.Stats.BytesOut/BytesIn summed over
	// replicas; runtime substrate only).
	NetBytesOut uint64
	NetBytesIn  uint64

	// Dissemination egress accounting (Dissem runs only): measurement-window
	// deltas of internal/dissem counters summed over replicas.
	DissemPushedBytes uint64 // origin push egress (full payloads or chunks)
	DissemServedBytes uint64 // backfill-serving egress
	DissemChunkPulls  uint64 // chunk backfill requests (coded mode)
	Reconstructions   uint64 // payloads decoded from k chunks (coded mode)
	ReconstructFails  uint64 // poisoned deliveries (coded mode)
	// PushBytesPerBatch is origin push egress per delivered batch — the
	// quantity the erasure-coding claim is about: full push spends
	// (n−1)·|B| here, coded dissemination ~(n−1)/k·|B| plus commitments.
	PushBytesPerBatch float64
}

// RegionNames are the paper's deployment regions (§6.3), indexed like the
// asymmetric delay matrix.
var RegionNames = []string{"Oregon", "N. Virginia", "London", "Zurich"}

// WANDelayMs exposes the asymmetric one-way delay matrix for display
// (examples/georeplication).
func WANDelayMs() [][]float64 { return oneWayDelayMs }

// oneWayDelayMs is the one-way propagation between the paper's regions
// (Oregon, N. Virginia, London, Zurich), §6.3.
var oneWayDelayMs = [][]float64{
	{0.25, 30, 65, 70},
	{30, 0.25, 38, 43},
	{65, 38, 0.25, 8},
	{70, 43, 8, 0.25},
}

// quickTrim shortens default measurement windows; the repository-level
// benchmarks enable it so `go test -bench=.` stays minutes-scale while
// cmd/spotless-bench keeps the full windows.
var quickTrim bool

// SetQuickTrim toggles shortened measurement windows for CI-sized runs.
func SetQuickTrim(on bool) { quickTrim = on }

// Run executes one experiment point and returns its measurements.
func Run(o Options) Result {
	if o.N == 0 {
		o.N = 4
	}
	if o.BatchSize == 0 {
		o.BatchSize = 100
	}
	if o.TxnValueSz == 0 {
		o.TxnValueSz = 33 // ≈ 48 B/txn on the wire (paper's smallest size)
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	n := o.N
	f := (n - 1) / 3
	m := o.Instances
	if m == 0 {
		switch o.Protocol {
		case SpotLess, RCC:
			m = n
		default:
			m = 1
		}
	}
	// Closed-loop credits per source stream: concurrent protocols spread
	// load over m streams; single-primary protocols need a deep pipeline on
	// their one stream.
	if o.Outstanding == 0 {
		switch o.Protocol {
		case Pbft, HotStuff:
			o.Outstanding = 128
		case NarwhalHS:
			o.Outstanding = 32
		default:
			o.Outstanding = 8
		}
	}
	streams := m
	if o.Protocol == NarwhalHS || (o.Protocol == SpotLess && o.Dissem) {
		streams = n
	}
	if o.Measure == 0 {
		o.Measure = 400 * time.Millisecond
		if quickTrim {
			o.Measure = 150 * time.Millisecond
		}
	}
	if o.Warmup == 0 {
		// The warmup must exceed the closed-loop steady-state latency
		// (outstanding work / execution rate), or the measurement window
		// catches the pipeline still filling.
		est := time.Duration(float64(streams*o.Outstanding*o.BatchSize) / 340000 * 1.5 * float64(time.Second))
		o.Warmup = 200*time.Millisecond + est
		if o.Protocol == NarwhalHS {
			// Narwhal's ramp is dominated by its lane-ordering latency
			// (each worker's batches wait ~n ordering views).
			o.Warmup += time.Duration(n) * 30 * time.Millisecond
		}
	}

	scfg := simnet.DefaultConfig(n)
	scfg.Seed = o.Seed
	scfg.Debug = o.Debug
	if o.Cores > 0 {
		scfg.Cores = o.Cores
	}
	if o.VerifyCores > 0 {
		scfg.Costs.Cores = o.VerifyCores
	}
	scfg.InstanceWorkers = o.InstanceWorkers
	if o.BandwidthMbps > 0 {
		scfg.BandwidthMbps = o.BandwidthMbps
	}
	if o.RegionCount > 1 {
		k := o.RegionCount
		if k > 4 {
			k = 4
		}
		scfg.Regions = make([]int, n)
		for i := range scfg.Regions {
			scfg.Regions[i] = i * k / n
		}
		scfg.RegionDelayMs = oneWayDelayMs
	}
	if o.NoBuffering {
		scfg.BufferBytes = 1
		scfg.BufferDelay = 0
	}
	sim := simnet.New(scfg)

	// Client load: one stream per sourcing instance — or per origin replica
	// when dissemination owns the source.
	sourceStreams := m
	if o.Protocol == NarwhalHS || (o.Protocol == SpotLess && o.Dissem) {
		sourceStreams = n
	}
	wl := loadgen.DefaultWorkload(o.BatchSize)
	wl.TxnValueSz = o.TxnValueSz
	wl.Seed = o.Seed
	src := loadgen.NewSource(sourceStreams, o.Outstanding, wl)
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, f, o.TimelineBucket)
	col.MeasureStart = o.Warmup
	col.MeasureEnd = o.Warmup + o.Measure
	sim.SetProtocol(simnet.ClientNode, col)

	faulty := make(map[types.NodeID]bool, o.Failures)
	for i := 0; i < o.Failures; i++ {
		faulty[types.NodeID(n-1-i)] = true // backups first: Pbft's primary is 0
	}
	victims := make(map[types.NodeID]bool, f)
	for i := 0; i < f; i++ {
		victims[types.NodeID(i)] = true // non-faulty victims for A2/A3
	}

	protos := buildReplica(sim, o, m, faulty, victims)

	// Failure injection.
	if o.Failures > 0 && o.Attack == core.AttackNone {
		at := o.FailAt
		for id := range faulty {
			fid := id
			sim.Schedule(at, func() { sim.SetDown(fid, true) })
		}
	}
	// Crash-recovery: bring the downed replicas back with fresh state and
	// time their first post-revival execution (state-transfer rejoin).
	var reviveDone time.Duration
	if o.ReviveAt > 0 && o.Failures > 0 && o.Attack == core.AttackNone {
		pending := make(map[types.NodeID]bool, len(faulty))
		for id := range faulty {
			pending[id] = true
		}
		sim.SetDeliverHook(func(node types.NodeID, c types.Commit) {
			if pending[node] && sim.Now() >= o.ReviveAt {
				delete(pending, node)
				if len(pending) == 0 {
					reviveDone = sim.Now()
				}
			}
		})
		// Deterministic revival order (map iteration would vary run to run).
		order := make([]types.NodeID, 0, len(faulty))
		for id := range faulty {
			order = append(order, id)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, id := range order {
			fid := id
			sim.Schedule(o.ReviveAt, func() {
				sim.Restart(fid, func(ctx protocol.Context) protocol.Protocol {
					p := buildOne(ctx, o, m, fid, faulty, victims)
					protos[fid] = p
					return p
				})
			})
		}
	}

	sim.Start()
	sim.Run(o.Warmup)
	msgsBefore := sim.Stats().MessagesSent
	dissemBefore := sumDissemStats(protos)
	sim.Run(o.Warmup + o.Measure)
	msgsDuring := sim.Stats().MessagesSent - msgsBefore
	dissemDuring := sumDissemStats(protos)

	// A revived replica may still be mid-recovery when the measurement
	// window closes; run on (metrics are frozen at MeasureEnd) until it
	// recovers or a deadline passes, so ReviveRecovery is observed. Gated
	// exactly like the hook installation above — without a hook,
	// reviveDone can never fire and the loop would burn the full deadline.
	if o.ReviveAt > 0 && o.Failures > 0 && o.Attack == core.AttackNone {
		deadline := o.Warmup + o.Measure + 2*time.Second
		for reviveDone == 0 && sim.Now() < deadline {
			sim.Run(sim.Now() + 50*time.Millisecond)
		}
	}

	res := Result{Options: o, Throughput: col.Throughput(), Batches: col.BatchesDone}
	for _, p := range protos {
		if rep, ok := p.(*core.Replica); ok {
			props, views := rep.StateFootprint()
			if props > res.StateProposals {
				res.StateProposals = props
			}
			if views > res.StateViews {
				res.StateViews = views
			}
		}
	}
	if o.ReviveAt > 0 && reviveDone > 0 {
		res.ReviveRecovery = reviveDone - o.ReviveAt
	}
	res.AvgLatency, res.P50Latency, res.P99Latency = col.Latency()
	if col.BatchesDone > 0 {
		res.MsgsPerBatch = float64(msgsDuring) / float64(col.BatchesDone)
	}
	if o.Dissem {
		res.DissemPushedBytes = dissemDuring.PushedBytes - dissemBefore.PushedBytes
		res.DissemServedBytes = dissemDuring.ServedBytes - dissemBefore.ServedBytes
		res.DissemChunkPulls = dissemDuring.ChunkPulls - dissemBefore.ChunkPulls
		res.Reconstructions = dissemDuring.Reconstructions - dissemBefore.Reconstructions
		res.ReconstructFails = dissemDuring.ReconstructFails - dissemBefore.ReconstructFails
		if col.BatchesDone > 0 {
			res.PushBytesPerBatch = float64(res.DissemPushedBytes) / float64(col.BatchesDone)
		}
	}
	if o.TimelineBucket > 0 {
		// Run past the measurement window so the timeline shows recovery.
		sim.Run(o.Warmup + o.Measure + o.TimelineBucket)
		res.Timeline = col.Timeline()
	}
	return res
}

// sumDissemStats aggregates the dissemination-layer counters across the
// cluster's replicas (zero when the run doesn't use digest ordering).
func sumDissemStats(protos []protocol.Protocol) dissem.Stats {
	var tot dissem.Stats
	for _, p := range protos {
		rep, ok := p.(*core.Replica)
		if !ok || rep.DissemLayer() == nil {
			continue
		}
		s := rep.DissemLayer().Stats()
		tot.PushedBytes += s.PushedBytes
		tot.ServedBytes += s.ServedBytes
		tot.ChunkPulls += s.ChunkPulls
		tot.Reconstructions += s.Reconstructions
		tot.ReconstructFails += s.ReconstructFails
	}
	return tot
}

// buildReplica attaches one protocol replica per node and returns them
// indexed by node id.
func buildReplica(sim *simnet.Simulation, o Options, m int, faulty, victims map[types.NodeID]bool) []protocol.Protocol {
	protos := make([]protocol.Protocol, o.N)
	for i := 0; i < o.N; i++ {
		id := types.NodeID(i)
		p := buildOne(sim.Context(id), o, m, id, faulty, victims)
		protos[i] = p
		sim.SetProtocol(id, p)
	}
	return protos
}

// buildOne constructs the protocol replica hosted at one node — also the
// constructor used when a crashed replica is revived with fresh state.
func buildOne(ctx protocol.Context, o Options, m int, id types.NodeID, faulty, victims map[types.NodeID]bool) protocol.Protocol {
	n := o.N
	switch o.Protocol {
	case SpotLess:
		cfg := core.DefaultConfig(n, m)
		tune := estimateViewCycle(o, m)
		cfg.InitialRecordingTimeout = tune
		cfg.InitialCertifyTimeout = tune
		// The adaptive halving rule (§3.5) must not sink the timers
		// below the real view duration, or spurious ∅-claims cascade.
		cfg.MinTimeout = tune / 2
		cfg.RetransmitInterval = max(300*time.Millisecond, 8*tune)
		cfg.FastPath = o.FastPath
		cfg.CheckpointInterval = o.CheckpointInterval
		if o.RetentionViews > 0 {
			cfg.RetentionViews = o.RetentionViews
		}
		if faulty[id] && o.Attack != core.AttackNone {
			cfg.Behavior = core.Behavior{Mode: o.Attack, Victims: victims, Accomplices: faulty}
		}
		if o.Dissem {
			cfg.Dissem = dissem.New(dissem.Config{N: n, F: cfg.F, CodeK: o.DissemCode})
		}
		return core.New(ctx, cfg)
	case Pbft:
		return pbft.New(ctx, pbft.DefaultConfig(n))
	case RCC:
		cfg := rcc.DefaultConfig(n, m)
		// Bound the aggregate out-of-order burst across instances.
		cfg.Window = 512 / m
		if cfg.Window < 4 {
			cfg.Window = 4
		}
		if cfg.Window > 64 {
			cfg.Window = 64
		}
		return rcc.New(ctx, cfg)
	case HotStuff:
		cfg := hotstuff.DefaultConfig(n)
		cfg.SkipQCVerify = o.SkipQCVerify
		if faulty[id] && o.Attack != core.AttackNone {
			cfg.Behavior = core.Behavior{Mode: o.Attack, Victims: victims, Accomplices: faulty}
		}
		return hotstuff.New(ctx, cfg)
	case NarwhalHS:
		return narwhal.New(ctx, narwhal.DefaultConfig(n))
	default:
		panic(fmt.Sprintf("bench: unknown protocol %q", o.Protocol))
	}
}

// estimateViewCycle predicts the failure-free view-cycle duration so
// SpotLess timeouts can track the "calculated average view duration" the
// paper uses (§6.3). The model sums per-cycle egress serialization, message
// processing on the core pool, and two propagation delays.
func estimateViewCycle(o Options, m int) time.Duration {
	n := o.N
	def := simnet.DefaultConfig(n)
	bw := o.BandwidthMbps
	if bw == 0 {
		bw = def.BandwidthMbps
	}
	cores := o.Cores
	if cores == 0 {
		cores = def.Cores
	}
	tuneBatch := o.BatchSize
	if o.TuneBatchSize > 0 {
		tuneBatch = o.TuneBatchSize
	}
	batchBytes := float64(types.ControlMsgSize + tuneBatch*(types.TxnOverhead+o.TxnValueSz))
	if o.Dissem {
		// Digest ordering: the proposal on the view-cycle critical path is
		// payload-free (a digest plus, at worst, an embedded certificate);
		// payload dissemination overlaps earlier views off the critical
		// path, so timeouts must not scale with batch size.
		batchBytes = float64(types.ControlMsgSize + protocol.Quorum(n, (n-1)/3)*types.SignatureSize)
	}
	bytesPerCycle := float64(m*(n-1))*float64(types.ControlMsgSize+32) +
		float64(n-1)*batchBytes
	ser := bytesPerCycle / (bw * 1e6 / 8)
	cpu := float64(m*n) * def.BaseHandlerCost.Seconds() / float64(cores)
	prop := 0.001 // 2 × ~0.5 ms
	if o.RegionCount > 1 {
		prop = 0.180 // 2 × worst one-way inter-region delay
	}
	d := time.Duration((ser + cpu + prop) * 3 * float64(time.Second))
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}
