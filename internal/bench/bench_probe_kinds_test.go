package bench

import (
	"testing"
	"time"

	"spotless/internal/core"
	"spotless/internal/loadgen"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

// TestProbeKinds breaks down SpotLess message traffic by kind at n=64
// (calibration probe).
func TestProbeKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	n, m := 64, 64
	scfg := simnet.DefaultConfig(n)
	scfg.Debug = true
	sim := simnet.New(scfg)
	src := loadgen.NewSource(m, 64, loadgen.DefaultWorkload(100))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, (n-1)/3, 0)
	col.MeasureStart = 150 * time.Millisecond
	col.MeasureEnd = 450 * time.Millisecond
	sim.SetProtocol(simnet.ClientNode, col)
	var reps []*core.Replica
	o := Options{Protocol: SpotLess, N: n, BatchSize: 100}
	tune := estimateViewCycle(o, m)
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(n, m)
		cfg.InitialRecordingTimeout = tune
		cfg.InitialCertifyTimeout = tune
		cfg.MinTimeout = tune / 2
		cfg.RetransmitInterval = max(300*time.Millisecond, 8*tune)
		r := core.New(sim.Context(types.NodeID(i)), cfg)
		reps = append(reps, r)
		sim.SetProtocol(types.NodeID(i), r)
	}
	sim.Start()
	sim.Run(450 * time.Millisecond)
	t.Logf("tune=%s txns=%d batches=%d", tune, col.TxnsDone, col.BatchesDone)
	t.Logf("views: inst0=%d inst1=%d lock0=%d committed0=%d noops=%d",
		reps[0].Instance(0).CurrentView(), reps[0].Instance(1).CurrentView(),
		reps[0].Instance(0).LockView(), reps[0].Instance(0).LastCommittedView(), reps[0].NoOps)
	st := sim.Stats()
	t.Logf("msgs=%d packets=%d events=%d timers=%d", st.MessagesSent, st.PacketsSent, st.EventsRun, st.TimersFired)
	for k, v := range st.MessagesByKind {
		t.Logf("  %-22s %d", k, v)
	}
}
