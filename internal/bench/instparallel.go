package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"spotless/internal/core"
	"spotless/internal/crypto"
	"spotless/internal/dissem"
	"spotless/internal/ledger"
	"spotless/internal/loadgen"
	"spotless/internal/runtime"
	"spotless/internal/transport"
	"spotless/internal/types"
	"spotless/internal/ycsb"
)

func init() {
	Figures = append(Figures, Figure{
		ID:    "ablation-instance-parallel",
		Title: "Ablation: instance-parallel core — commit throughput vs m × workers",
		Run:   InstanceParallel,
	})
}

// InstParOptions returns the experiment point of the instance-parallel
// sweep: small batches keep consensus costs (not the shared sequential
// execution resource) dominant, so the sweep exposes the event-loop
// bottleneck the sharded core removes.
func InstParOptions(n, m, workers int) Options {
	return Options{
		Protocol:        SpotLess,
		N:               n,
		Instances:       m,
		InstanceWorkers: workers,
		BatchSize:       10,
		Outstanding:     16,
		Measure:         250 * time.Millisecond,
	}
}

// InstanceParallel regenerates the ablation-instance-parallel table:
// commit throughput of the m concurrent instances under the simulator's
// instance-parallel model, sweeping worker lanes. workers=1 models the
// seed's single event loop (every handler of every instance serialized on
// one core); workers=m gives each instance its own lane behind the
// serialized ordering stage, the architecture of the sharded runtime.
func InstanceParallel(quick bool) []Table {
	n := 8
	t := &Table{ID: "ablation-instance-parallel",
		Title:   fmt.Sprintf("instance-parallel core (SpotLess, n=%d, modelled 1 core/lane)", n),
		Headers: []string{"m", "workers", "ktxn/s", "avg latency ms", "speedup vs 1 worker"}}
	for _, m := range []int{2, 8} {
		var base float64
		for _, w := range []int{1, 2, 8} {
			if w > m {
				continue
			}
			res := Run(InstParOptions(n, m, w))
			if w == 1 {
				base = res.Throughput
			}
			speed := "—"
			if w > 1 && base > 0 {
				speed = fmt.Sprintf("%.2fx", res.Throughput/base)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", m), fmt.Sprintf("%d", w),
				ktps(res.Throughput), lat(res.AvgLatency), speed,
			})
		}
	}
	return []Table{*t}
}

// --- real-substrate harness: TCP loopback, sharded runtime nodes ---

// RuntimeOptions describes one instance-parallel experiment on the real
// runtime substrate: n replicas over TCP loopback with real ed25519/HMAC
// crypto, YCSB execution, and ledgers, the m instances sharded over
// InstanceWorkers event-loop goroutines per replica.
type RuntimeOptions struct {
	N               int
	Instances       int
	InstanceWorkers int // 0 sizes adaptively to min(m, GOMAXPROCS)
	BatchSize       int
	Outstanding     int  // closed-loop batches per instance
	Dissem          bool // digest ordering via internal/dissem
	DissemCode      int  // erasure-coded dissemination (requires Dissem)
	Warmup          time.Duration
	Measure         time.Duration
}

// rtClient is the aggregate client of a runtime perf run: it owns the
// closed-loop source (guarded — replicas pull batches from their own
// shards) and completes batches on f+1 matching Informs, timestamping
// completions for the measurement window.
type rtClient struct {
	mu      sync.Mutex
	src     *loadgen.Source
	f       int
	start   time.Time
	informs map[types.Digest]map[types.NodeID]bool
	doneAt  []time.Duration
	lat     []time.Duration
	txns    []int
}

func (c *rtClient) now() time.Duration { return time.Since(c.start) }

// Next implements runtime.BatchSource.
func (c *rtClient) Next(instance int32, _ time.Duration) *types.Batch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.src.Next(instance, c.now())
}

// Receive is the client transport receiver.
func (c *rtClient) Receive(_ types.NodeID, msg types.Message) {
	inf, ok := msg.(*types.Inform)
	if !ok {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	set := c.informs[inf.BatchID]
	if set == nil {
		set = make(map[types.NodeID]bool, c.f+1)
		c.informs[inf.BatchID] = set
	}
	if set[inf.Replica] {
		return
	}
	set[inf.Replica] = true
	if len(set) != c.f+1 {
		return
	}
	delete(c.informs, inf.BatchID)
	now := c.now()
	meta, ok := c.src.Release(inf.BatchID, now)
	if !ok {
		return
	}
	c.doneAt = append(c.doneAt, now)
	c.lat = append(c.lat, now-meta.Submitted)
	c.txns = append(c.txns, meta.Txns)
}

// RunRuntime executes one real-substrate experiment point and returns its
// measurements, including the TCP transport's saturation counters
// (Result.Net*) so sheds and drops during a saturated run are observable
// instead of silent.
func RunRuntime(o RuntimeOptions) (Result, error) {
	if o.N == 0 {
		o.N = 4
	}
	if o.Instances == 0 {
		o.Instances = o.N
	}
	// Adaptive default: one worker per instance, bounded by the host's
	// cores — extra shard goroutines on a smaller host only add scheduler
	// pressure (the BENCH_PR4 loopback regression shape).
	o.InstanceWorkers = runtime.AutoWorkers(o.InstanceWorkers, o.Instances)
	if o.BatchSize == 0 {
		o.BatchSize = 10
	}
	if o.Outstanding == 0 {
		o.Outstanding = 8
	}
	if o.Warmup == 0 {
		o.Warmup = 2 * time.Second
	}
	if o.Measure == 0 {
		o.Measure = 4 * time.Second
	}
	n, f, m := o.N, (o.N-1)/3, o.Instances

	ids := make([]types.NodeID, 0, n+1)
	for i := 0; i < n; i++ {
		ids = append(ids, types.NodeID(i))
	}
	ids = append(ids, types.ClientIDBase)
	ring := crypto.NewKeyring([]byte("bench-instance-parallel"), ids)

	trs := make([]*transport.TCP, n)
	addrs := make(map[types.NodeID]string, n)
	for i := 0; i < n; i++ {
		prov, err := ring.Provider(types.NodeID(i))
		if err != nil {
			return Result{}, err
		}
		tr := transport.New(transport.Config{ID: types.NodeID(i), Listen: "127.0.0.1:0", Crypto: prov})
		if err := tr.Start(); err != nil {
			return Result{}, err
		}
		trs[i] = tr
		addrs[types.NodeID(i)] = tr.Addr()
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	for i := 0; i < n; i++ {
		if err := trs[i].DialPeers(addrs); err != nil {
			return Result{}, err
		}
	}

	wl := loadgen.DefaultWorkload(o.BatchSize)
	wl.Records = 10000
	srcStreams := m
	if o.Dissem {
		srcStreams = n // one lane per origin replica
	}
	client := &rtClient{
		src:     loadgen.NewSource(srcStreams, o.Outstanding, wl),
		f:       f,
		start:   time.Now(),
		informs: make(map[types.Digest]map[types.NodeID]bool),
	}

	nodes := make([]*runtime.Node, n)
	for i := 0; i < n; i++ {
		prov, err := ring.Provider(types.NodeID(i))
		if err != nil {
			return Result{}, err
		}
		exec := runtime.NewReplicaExecutor(types.NodeID(i), ycsb.NewStore(10000, 16), ledger.New(), trs[i], types.ClientIDBase)
		node := runtime.NewNode(runtime.NodeConfig{
			ID: types.NodeID(i), N: n, F: f,
			Transport: trs[i], Crypto: prov, Source: client, Executor: exec,
			PreVerified: true,
			Workers:     o.InstanceWorkers,
		})
		cfg := core.DefaultConfig(n, m)
		cfg.InitialRecordingTimeout = 150 * time.Millisecond
		cfg.InitialCertifyTimeout = 150 * time.Millisecond
		cfg.MinTimeout = 10 * time.Millisecond
		if o.Dissem {
			cfg.Dissem = dissem.New(dissem.Config{N: n, F: f, CodeK: o.DissemCode})
		}
		rep := core.New(node, cfg)
		node.SetProtocol(rep)
		trs[i].SetIngress(rep, node.Verifier())
		nodes[i] = node
	}

	cprov, err := ring.Provider(types.ClientIDBase)
	if err != nil {
		return Result{}, err
	}
	ctr := transport.New(transport.Config{ID: types.ClientIDBase, Peers: addrs, Crypto: cprov})
	ctr.Register(types.ClientIDBase, client.Receive)
	if err := ctr.Start(); err != nil {
		return Result{}, err
	}
	defer ctr.Close()

	for _, nd := range nodes {
		nd.Start()
	}
	time.Sleep(o.Warmup + o.Measure)
	for _, nd := range nodes {
		nd.Stop()
	}

	res := Result{Options: Options{
		Protocol: SpotLess, N: n, Instances: m, InstanceWorkers: o.InstanceWorkers,
		BatchSize: o.BatchSize, Outstanding: o.Outstanding, Dissem: o.Dissem,
		DissemCode: o.DissemCode,
		Warmup:     o.Warmup, Measure: o.Measure,
	}}
	client.mu.Lock()
	var lats []time.Duration
	for i, at := range client.doneAt {
		if at < o.Warmup || at >= o.Warmup+o.Measure {
			continue
		}
		res.Batches++
		res.Throughput += float64(client.txns[i])
		lats = append(lats, client.lat[i])
	}
	client.mu.Unlock()
	res.Throughput /= o.Measure.Seconds()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		res.AvgLatency = sum / time.Duration(len(lats))
		res.P50Latency = lats[len(lats)/2]
		res.P99Latency = lats[(len(lats)*99)/100]
	}
	for _, tr := range trs {
		st := tr.Stats()
		res.NetEncodes += st.Encodes
		res.NetEncodeFailures += st.EncodeFailures
		res.NetQueueSheds += st.QueueSheds
		res.NetMACRejections += st.MACRejections
		res.NetDecodeFailures += st.DecodeFailures
		res.NetIngressDrops += st.IngressDrops
		res.NetBytesOut += st.BytesOut
		res.NetBytesIn += st.BytesIn
	}
	return res, nil
}
