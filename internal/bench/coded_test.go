package bench

import (
	"testing"
	"time"
)

// TestDissemCodedCommits is the coded-dissemination smoke: the n=16 WAN
// cluster under constrained bandwidth commits real batches through coded
// chunks — reconstructions happen, nothing poisons, and the origin-egress
// accounting that the experiment's headline ratio divides is populated.
func TestDissemCodedCommits(t *testing.T) {
	o := codedOpts(1000, CodedK)
	o.Measure = 300 * time.Millisecond
	res := Run(o)
	if res.Batches == 0 {
		t.Fatalf("coded dissemination committed no batches: %+v", res)
	}
	if res.Reconstructions == 0 {
		t.Fatal("no replica reconstructed from chunks — the coded path never engaged")
	}
	if res.ReconstructFails != 0 {
		t.Fatalf("%d reconstructions poisoned under an honest origin", res.ReconstructFails)
	}
	if res.PushBytesPerBatch <= 0 {
		t.Fatalf("origin egress per batch not measured: %+v", res)
	}
}

// TestDissemCodedCutsEgress pins the mechanism at test scale: the same
// cluster and load with coding on pushes strictly fewer origin bytes per
// delivered batch than the full push (the ≤0.35 acceptance bound at k=4
// runs at figure scale; this guards the direction on every CI run).
func TestDissemCodedCutsEgress(t *testing.T) {
	if testing.Short() {
		t.Skip("two n=16 cluster runs; covered by the full suite and the figure")
	}
	// The full-push control commits only a handful of batches per second at
	// this size under constrained bandwidth; the window must catch several.
	measure := 1200 * time.Millisecond
	full := codedOpts(1000, 0)
	full.Measure = measure
	coded := codedOpts(1000, CodedK)
	coded.Measure = measure
	fres, cres := Run(full), Run(coded)
	if fres.Batches == 0 || cres.Batches == 0 {
		t.Fatalf("an arm committed nothing: full=%d coded=%d batches", fres.Batches, cres.Batches)
	}
	if cres.PushBytesPerBatch >= fres.PushBytesPerBatch {
		t.Fatalf("coded origin egress %.0f B/batch not below full push %.0f B/batch",
			cres.PushBytesPerBatch, fres.PushBytesPerBatch)
	}
}

// TestSafetyDrillCodedSweep: the seeded adversary sweep (targeted
// delay/drop/partition plus the equivocating-origin composition every third
// seed) under ERASURE-CODED dissemination — delivery now depends on chunk
// reconstruction, and honest ledgers must still agree block-for-block. The
// full 200-seed bar runs via `spotless-bench -safety-drill 200
// -safety-dissem-code 2`.
func TestSafetyDrillCodedSweep(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	res := RunSafetyDrill(SafetyDrillOptions{Seeds: seeds, Dissem: true, DissemCode: 2})
	if len(res.Divergent) != 0 {
		for _, d := range res.Divergent {
			t.Log(d.Report)
		}
		t.Fatalf("%d of %d adversary seeds diverged under coded dissemination", len(res.Divergent), seeds)
	}
	if res.Delivered == 0 {
		t.Fatal("the coded drill delivered nothing — chunks never reconstructed under chaos")
	}
}

// BenchmarkDissemCoded is the CI smoke handle (1 iteration in CI, matched
// by the same `-bench Dissem` pattern as the full-push smoke): one coded
// point at the experiment's batch size.
func BenchmarkDissemCoded(b *testing.B) {
	o := codedOpts(1000, CodedK)
	o.Measure = 300 * time.Millisecond
	for i := 0; i < b.N; i++ {
		res := Run(o)
		if res.Batches == 0 {
			b.Fatal("no batches committed")
		}
		b.ReportMetric(res.Throughput/1000, "ktxn/s")
		if res.PushBytesPerBatch > 0 {
			b.ReportMetric(res.PushBytesPerBatch/1024, "pushKB/batch")
		}
	}
}
