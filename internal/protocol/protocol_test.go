// Package protocol_test exercises the environment contracts every protocol
// is written against — the stale-timer discipline and the asynchronous
// verification completion contract — against the deterministic simulation
// substrate (the external test package breaks the import cycle).
package protocol_test

import (
	"testing"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

func TestQuorumWeak(t *testing.T) {
	for _, tc := range []struct{ n, f, q, w int }{
		{4, 1, 3, 2}, {7, 2, 5, 3}, {128, 42, 86, 43},
	} {
		if got := protocol.Quorum(tc.n, tc.f); got != tc.q {
			t.Errorf("Quorum(%d,%d) = %d, want %d", tc.n, tc.f, got, tc.q)
		}
		if got := protocol.Weak(tc.f); got != tc.w {
			t.Errorf("Weak(%d) = %d, want %d", tc.f, got, tc.w)
		}
	}
}

// contractProbe is a minimal protocol recording every event the substrate
// delivers, flagging any contract violation it can observe locally.
type contractProbe struct {
	ctx protocol.Context

	onStart func(p *contractProbe)

	inHandler   bool // true while any handler of ours is on the stack
	reentrant   bool // a completion or timer arrived inside another handler
	timers      []protocol.TimerTag
	completions []struct {
		tag protocol.TimerTag
		ok  bool
	}
}

func (p *contractProbe) enter() { p.reentrant = p.reentrant || p.inHandler; p.inHandler = true }
func (p *contractProbe) exit()  { p.inHandler = false }

func (p *contractProbe) Start() {
	p.enter()
	defer p.exit()
	if p.onStart != nil {
		p.onStart(p)
	}
}
func (p *contractProbe) HandleMessage(types.NodeID, types.Message) {}
func (p *contractProbe) HandleTimer(tag protocol.TimerTag) {
	p.enter()
	defer p.exit()
	p.timers = append(p.timers, tag)
}
func (p *contractProbe) HandleVerified(tag protocol.TimerTag, ok bool) {
	p.enter()
	defer p.exit()
	p.completions = append(p.completions, struct {
		tag protocol.TimerTag
		ok  bool
	}{tag, ok})
}

func newProbeSim(onStart func(p *contractProbe)) (*simnet.Simulation, *contractProbe) {
	sim := simnet.New(simnet.DefaultConfig(1))
	probe := &contractProbe{ctx: sim.Context(0), onStart: onStart}
	sim.SetProtocol(0, probe)
	return sim, probe
}

// TestStaleTimerDiscipline: timers are one-shot, delivered verbatim at (or
// after) their deadline, and never cancelled — the substrate redelivers
// whatever the protocol set, and the protocol is responsible for ignoring
// tags that are no longer relevant. The tag must round-trip unmodified, or
// relevance checks (view/instance/seq comparison) would misfire.
func TestStaleTimerDiscipline(t *testing.T) {
	want := []protocol.TimerTag{
		{Kind: protocol.TimerRecording, Instance: 3, View: 7, Seq: 99},
		{Kind: protocol.TimerCertifying, Instance: 3, View: 8},
	}
	sim, probe := newProbeSim(func(p *contractProbe) {
		// Set in reverse deadline order: delivery must sort by deadline.
		p.ctx.SetTimer(2*time.Millisecond, want[1])
		p.ctx.SetTimer(time.Millisecond, want[0])
	})
	sim.Start()
	sim.Run(10 * time.Millisecond)
	if probe.reentrant {
		t.Fatal("timer delivered reentrantly")
	}
	if len(probe.timers) != 2 {
		t.Fatalf("timers fired: %d, want 2 (one-shot, no cancellation)", len(probe.timers))
	}
	for i := range want {
		if probe.timers[i] != want[i] {
			t.Fatalf("timer %d delivered as %+v, want verbatim %+v", i, probe.timers[i], want[i])
		}
	}
}

// TestVerifyAsyncCompletionContract: completions are delivered (a) never
// reentrantly — the issuing handler returns first, (b) exactly once per
// job with the job's verdict, and (c) verbatim, so stale completions can be
// recognized and ignored by tag correlation.
func TestVerifyAsyncCompletionContract(t *testing.T) {
	prov := crypto.NewSimProvider(1, crypto.CostModel{}, nil)
	msg := []byte("payload")
	good := prov.Sign(msg)
	forged := types.Signature{Signer: 1, Bytes: []byte("junk")}

	tagOK := protocol.TimerTag{Kind: protocol.TimerVerify, Instance: 1, Seq: 1}
	tagBad := protocol.TimerTag{Kind: protocol.TimerVerify, Instance: 1, Seq: 2}
	sim, probe := newProbeSim(func(p *contractProbe) {
		p.ctx.VerifyAsync(protocol.VerifyJob{Tag: tagOK,
			Checks: []crypto.Check{{Sig: good, Msg: msg}}})
		p.ctx.VerifyAsync(protocol.VerifyJob{Tag: tagBad,
			Checks: []crypto.Check{{Sig: forged, Msg: msg}}})
		if len(p.completions) != 0 {
			t.Error("completion delivered inside the issuing handler")
		}
	})
	sim.Start()
	sim.Run(10 * time.Millisecond)
	if probe.reentrant {
		t.Fatal("completion delivered reentrantly")
	}
	if len(probe.completions) != 2 {
		t.Fatalf("completions: %d, want exactly 2 (one per job)", len(probe.completions))
	}
	byTag := map[protocol.TimerTag]bool{}
	for _, c := range probe.completions {
		byTag[c.tag] = c.ok
	}
	if ok, present := byTag[tagOK]; !present || !ok {
		t.Fatalf("valid-signature job: present=%v ok=%v, want true/true", present, ok)
	}
	if ok, present := byTag[tagBad]; !present || ok {
		t.Fatalf("forged-signature job: present=%v ok=%v, want true/false", present, ok)
	}
}

// TestVerifyAsyncQuorumSemantics: a job passes with quorum distinct valid
// signers, counts duplicate signers once, and Quorum ≤ 0 demands that every
// check pass.
func TestVerifyAsyncQuorumSemantics(t *testing.T) {
	msg := []byte("claim")
	sig := func(id types.NodeID) types.Signature {
		return crypto.NewSimProvider(id, crypto.CostModel{}, nil).Sign(msg)
	}
	forged := types.Signature{Signer: 9, Bytes: []byte("junk")}
	cases := []struct {
		name   string
		checks []crypto.Check
		quorum int
		want   bool
	}{
		{"quorum-met", []crypto.Check{{Sig: sig(1), Msg: msg}, {Sig: sig(2), Msg: msg}, {Sig: forged, Msg: msg}}, 2, true},
		{"quorum-missed", []crypto.Check{{Sig: sig(1), Msg: msg}, {Sig: forged, Msg: msg}}, 2, false},
		{"duplicates-count-once", []crypto.Check{{Sig: sig(1), Msg: msg}, {Sig: sig(1), Msg: msg}}, 2, false},
		{"all-must-pass", []crypto.Check{{Sig: sig(1), Msg: msg}, {Sig: forged, Msg: msg}}, 0, false},
		{"all-pass", []crypto.Check{{Sig: sig(1), Msg: msg}, {Sig: sig(2), Msg: msg}}, 0, true},
	}
	sim, probe := newProbeSim(func(p *contractProbe) {
		for i, tc := range cases {
			p.ctx.VerifyAsync(protocol.VerifyJob{
				Tag:    protocol.TimerTag{Kind: protocol.TimerVerify, Seq: uint64(i)},
				Checks: tc.checks, Quorum: tc.quorum,
			})
		}
	})
	sim.Start()
	sim.Run(10 * time.Millisecond)
	if len(probe.completions) != len(cases) {
		t.Fatalf("completions: %d, want %d", len(probe.completions), len(cases))
	}
	for _, c := range probe.completions {
		tc := cases[c.tag.Seq]
		if c.ok != tc.want {
			t.Errorf("%s: verdict %v, want %v", tc.name, c.ok, tc.want)
		}
	}
}

// TestShardPosterFIFO: the sharded-dispatch contract on the simulation
// substrate — cross-shard posts of one source execute on the target shard
// in posting order (the ordering stage's monotonic frontier guard depends
// on it), and posts issued inside a handler run as their own events, never
// reentrantly.
func TestShardPosterFIFO(t *testing.T) {
	cfg := simnet.DefaultConfig(2)
	cfg.InstanceWorkers = 2
	sim := simnet.New(cfg)

	p := &shardedProbe{m: 2}
	p.ctx = sim.Context(0)
	sim.SetProtocol(0, p)
	if p.post == nil {
		t.Fatal("substrate did not bind the ShardPoster before Start")
	}
	sim.Start()
	sim.Run(time.Second)

	if p.reentrant {
		t.Fatal("a cross-shard post executed reentrantly inside its posting handler")
	}
	if len(p.order) != 8 {
		t.Fatalf("executed %d posts, want 8", len(p.order))
	}
	for i, got := range p.order {
		if got != i {
			t.Fatalf("posts reordered: position %d ran post %d (order %v)", i, got, p.order)
		}
	}
}

// shardedProbe posts a numbered sequence from its Start handler to the
// ordering shard and records execution order.
type shardedProbe struct {
	ctx       protocol.Context
	m         int
	post      protocol.ShardPoster
	order     []int
	inHandler bool
	reentrant bool
}

func (p *shardedProbe) ShardCount() int                           { return p.m }
func (p *shardedProbe) InstanceOf(types.Message) int32            { return protocol.OrderingShard }
func (p *shardedProbe) BindShards(post protocol.ShardPoster)      { p.post = post }
func (p *shardedProbe) HandleMessage(types.NodeID, types.Message) {}
func (p *shardedProbe) HandleTimer(protocol.TimerTag)             {}
func (p *shardedProbe) Start() {
	p.inHandler = true
	for i := 0; i < 8; i++ {
		i := i
		p.post.PostShard(protocol.OrderingShard, func() {
			if p.inHandler {
				p.reentrant = true
			}
			p.order = append(p.order, i)
		})
	}
	p.inHandler = false
}
