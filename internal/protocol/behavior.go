package protocol

import "spotless/internal/types"

// AttackMode selects the Byzantine behaviours of the evaluation (§6.3,
// Figure 11). A1 (non-responsiveness) is injected by the substrate (a downed
// node), not by protocol logic.
type AttackMode uint8

const (
	// AttackNone is honest behaviour.
	AttackNone AttackMode = iota
	// AttackDark (A2): as primary, keep f non-faulty replicas in the dark
	// by not sending them proposals.
	AttackDark
	// AttackEquivocate (A3): send conflicting proposals/votes: one message
	// to f non-faulty replicas and a different one to the rest.
	AttackEquivocate
	// AttackSubvert (A4): as backup, refuse to participate in consensus on
	// proposals from non-faulty primaries.
	AttackSubvert
)

// Behavior configures a (faulty) replica's deviation from its protocol.
type Behavior struct {
	Mode AttackMode
	// Victims is the set of non-faulty replicas targeted by A2/A3.
	Victims map[types.NodeID]bool
	// Accomplices is the set of faulty replicas; A4 attackers still endorse
	// their proposals.
	Accomplices map[types.NodeID]bool
}
