// Package protocol defines the environment abstraction every consensus
// protocol in this repository is written against. One protocol
// implementation runs unchanged on three substrates:
//
//   - internal/simnet   — deterministic discrete-event simulation (benchmarks)
//   - internal/runtime  — in-process goroutine runtime with real crypto
//   - internal/transport— TCP transport for multi-process deployments
//
// Protocols are single-threaded event-driven state machines: the substrate
// serializes all calls into a protocol instance, so protocol code never
// locks. Protocols that additionally implement ShardedProtocol opt into a
// relaxed, per-shard serialization: substrates may then run events of
// different instance shards concurrently, with cross-shard interaction
// confined to the ShardPoster handoff (see ShardedProtocol).
package protocol

import (
	"time"

	"spotless/internal/crypto"
	"spotless/internal/types"
)

// TimerTag identifies a timer set by a protocol. Substrates deliver expired
// timers back verbatim; protocols ignore tags that are no longer relevant
// (stale-timer discipline), so timers never need cancelling.
type TimerTag struct {
	Kind     int
	Instance int32
	View     types.View
	Seq      uint64
}

// Timer kinds shared across protocols (each protocol may define more).
const (
	TimerRecording  = iota + 1 // SpotLess tR (state ST1)
	TimerCertifying            // SpotLess tA (state ST3)
	TimerRetransmit            // periodic retransmission (§3.5)
	TimerPbft                  // Pbft/RCC request timer
	TimerPacemaker             // HotStuff pacemaker
	TimerPropose               // re-check batch availability when idle
	TimerVerify                // async verification completion (VerifyAsync)
	TimerStateFetch            // state-transfer retry (checkpoint subsystem)
)

// VerifyJob is a batch of signature checks a protocol hands to the
// verification pipeline. The checks of one job are fanned out together (one
// certificate is one job), and the job passes when at least Quorum distinct
// signers verify (Quorum ≤ 0: every check must pass). Tag correlates the
// asynchronous completion back to protocol state; it is unused for ingress
// jobs, whose only outcome is deliver-or-drop.
type VerifyJob struct {
	Tag    TimerTag
	Checks []crypto.Check
	Quorum int
}

// IngressVerifier is implemented by protocols whose messages carry digital
// signatures. IngressJob declares, for one inbound message, the signature
// checks it must pass before it may enter the state machine; the substrate
// runs them off the event loop (worker pool, reader goroutines, or modelled
// parallel cores) and silently drops messages that fail — so HandleMessage
// only ever sees pre-verified messages and never calls Crypto().Verify
// inline.
//
// IngressJob is invoked concurrently with the event loop and therefore must
// be stateless: it may read only construction-time configuration, never
// mutable protocol state. Substrates do not screen a protocol's own
// messages (self-delivery is trusted).
type IngressVerifier interface {
	IngressJob(from types.NodeID, msg types.Message) (VerifyJob, bool)
}

// VerifyConsumer is implemented by protocols that use Context.VerifyAsync.
// The substrate serializes HandleVerified with all other protocol events.
type VerifyConsumer interface {
	// HandleVerified receives the completion of a VerifyAsync job. Like
	// expired timers, completions are delivered verbatim and may be stale:
	// protocols must ignore tags no longer correlated to pending state.
	HandleVerified(tag TimerTag, ok bool)
}

// Context is the substrate-provided environment of one replica.
type Context interface {
	// ID returns this replica's identifier.
	ID() types.NodeID
	// N returns the number of replicas; F the assumed failure bound (n > 3f).
	N() int
	F() int
	// Now returns the substrate clock (virtual in simulation, monotonic
	// elapsed time otherwise).
	Now() time.Duration
	// Send transmits a message to one replica (or to a client for Informs).
	Send(to types.NodeID, msg types.Message)
	// Broadcast transmits a message to every replica except the sender.
	// Per Remark 3.1, self-delivery is eliminated; protocols account for
	// their own contribution locally.
	Broadcast(msg types.Message)
	// SetTimer schedules tag to fire after d. Timers are one-shot.
	SetTimer(d time.Duration, tag TimerTag)
	// VerifyAsync schedules a signature-verification job off the event
	// loop. The substrate later invokes HandleVerified(job.Tag, ok) on the
	// protocol (which must implement VerifyConsumer), subject to the
	// completion-ordering contract:
	//
	//   1. never reentrantly — the handler that issued the job always
	//      returns before its completion is delivered, and the completion
	//      arrives as its own serialized protocol event;
	//   2. exactly once per job — every job completes, even when the
	//      underlying pool sheds load (the job then fails);
	//   3. with no cross-job order guarantee — a later, smaller job may
	//      complete before an earlier, larger one; protocols correlate
	//      completions by Tag, never by position.
	//
	// Stale completions follow the stale-timer discipline above: protocols
	// ignore tags that no longer match pending state, so jobs never need
	// cancelling.
	VerifyAsync(job VerifyJob)
	// Crypto returns this replica's cryptographic provider.
	Crypto() crypto.Provider
	// Deliver hands a decided batch to the execution layer. Protocols call
	// it in total order (§4.1).
	Deliver(c types.Commit)
	// NextBatch pulls the next client batch assigned to the given instance,
	// or nil if none is pending (§5: digest-based instance assignment).
	NextBatch(instance int32) *types.Batch
	// Logf emits a debug log line.
	Logf(format string, args ...any)
}

// Protocol is a consensus protocol instance hosted on one replica.
type Protocol interface {
	// Start is invoked once before any events.
	Start()
	// HandleMessage processes one message from another node.
	HandleMessage(from types.NodeID, msg types.Message)
	// HandleTimer processes one expired timer.
	HandleTimer(tag TimerTag)
}

// OrderingShard is the shard identifier of a sharded protocol's serialized
// cross-instance stage (total ordering, checkpointing, state transfer).
const OrderingShard int32 = -1

// ShardedProtocol is implemented by protocols whose event handling
// partitions into independent per-instance shards plus one serialized
// ordering stage — SpotLess's m concurrent consensus instances merged by
// the deterministic (view, instance) total order (§4.1, Figure 6).
//
// The single-threaded contract above is relaxed per shard: a substrate may
// invoke HandleMessage / HandleTimer / HandleVerified concurrently for
// events belonging to DIFFERENT shards, provided all events of one shard
// stay serialized and FIFO. The protocol in turn guarantees that handling
// an event touches only the state of the shard that owns it; every
// cross-shard interaction goes through the ShardPoster bound with
// BindShards. Substrates that keep the classic single event loop simply
// never call BindShards and nothing changes.
//
// Event-to-shard routing:
//
//   - messages: InstanceOf(msg) names the owning instance shard, or
//     OrderingShard for cross-instance messages (checkpoint attestations,
//     state transfer);
//   - timers and VerifyAsync completions: TimerTag.Instance carries the
//     shard (negative values route to the ordering stage).
type ShardedProtocol interface {
	Protocol
	// ShardCount reports the number of instance shards (m). The ordering
	// stage is one additional, implicit shard.
	ShardCount() int
	// InstanceOf maps an inbound message to the instance shard owning it,
	// or OrderingShard. Like IngressJob it is invoked concurrently with
	// event handling and must be stateless (construction-time
	// configuration only).
	InstanceOf(msg types.Message) int32
	// BindShards is invoked once, before Start, by substrates that will
	// dispatch shards concurrently. The protocol must route every
	// cross-shard handoff (e.g. instance commits feeding the ordering
	// stage) through post from then on. Substrates that serialize all
	// events never call it.
	BindShards(post ShardPoster)
}

// ShardPoster schedules a function to run serialized with the events of
// one shard (an instance id, or OrderingShard). Posts from one shard to
// another are FIFO per (source, target) pair and must never be shed —
// protocols key liveness-critical handoffs (commit delivery, checkpoint
// garbage collection) on them.
type ShardPoster interface {
	PostShard(shard int32, fn func())
}

// Quorum returns the n−f quorum size.
func Quorum(n, f int) int { return n - f }

// Weak returns the f+1 weak-quorum size (at least one non-faulty member).
func Weak(f int) int { return f + 1 }
