// Package protocol defines the environment abstraction every consensus
// protocol in this repository is written against. One protocol
// implementation runs unchanged on three substrates:
//
//   - internal/simnet   — deterministic discrete-event simulation (benchmarks)
//   - internal/runtime  — in-process goroutine runtime with real crypto
//   - internal/transport— TCP transport for multi-process deployments
//
// Protocols are single-threaded event-driven state machines: the substrate
// serializes all calls into a protocol instance, so protocol code never
// locks.
package protocol

import (
	"time"

	"spotless/internal/crypto"
	"spotless/internal/types"
)

// TimerTag identifies a timer set by a protocol. Substrates deliver expired
// timers back verbatim; protocols ignore tags that are no longer relevant
// (stale-timer discipline), so timers never need cancelling.
type TimerTag struct {
	Kind     int
	Instance int32
	View     types.View
	Seq      uint64
}

// Timer kinds shared across protocols (each protocol may define more).
const (
	TimerRecording  = iota + 1 // SpotLess tR (state ST1)
	TimerCertifying            // SpotLess tA (state ST3)
	TimerRetransmit            // periodic retransmission (§3.5)
	TimerPbft                  // Pbft/RCC request timer
	TimerPacemaker             // HotStuff pacemaker
	TimerPropose               // re-check batch availability when idle
)

// Context is the substrate-provided environment of one replica.
type Context interface {
	// ID returns this replica's identifier.
	ID() types.NodeID
	// N returns the number of replicas; F the assumed failure bound (n > 3f).
	N() int
	F() int
	// Now returns the substrate clock (virtual in simulation, monotonic
	// elapsed time otherwise).
	Now() time.Duration
	// Send transmits a message to one replica (or to a client for Informs).
	Send(to types.NodeID, msg types.Message)
	// Broadcast transmits a message to every replica except the sender.
	// Per Remark 3.1, self-delivery is eliminated; protocols account for
	// their own contribution locally.
	Broadcast(msg types.Message)
	// SetTimer schedules tag to fire after d. Timers are one-shot.
	SetTimer(d time.Duration, tag TimerTag)
	// Crypto returns this replica's cryptographic provider.
	Crypto() crypto.Provider
	// Deliver hands a decided batch to the execution layer. Protocols call
	// it in total order (§4.1).
	Deliver(c types.Commit)
	// NextBatch pulls the next client batch assigned to the given instance,
	// or nil if none is pending (§5: digest-based instance assignment).
	NextBatch(instance int32) *types.Batch
	// Logf emits a debug log line.
	Logf(format string, args ...any)
}

// Protocol is a consensus protocol instance hosted on one replica.
type Protocol interface {
	// Start is invoked once before any events.
	Start()
	// HandleMessage processes one message from another node.
	HandleMessage(from types.NodeID, msg types.Message)
	// HandleTimer processes one expired timer.
	HandleTimer(tag TimerTag)
}

// Quorum returns the n−f quorum size.
func Quorum(n, f int) int { return n - f }

// Weak returns the f+1 weak-quorum size (at least one non-faulty member).
func Weak(f int) int { return f + 1 }
