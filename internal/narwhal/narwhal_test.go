package narwhal_test

import (
	"testing"
	"time"

	"spotless/internal/loadgen"
	"spotless/internal/narwhal"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

// TestNarwhalNormalCase: batches are disseminated, certified, ordered, and
// delivered exactly once.
func TestNarwhalNormalCase(t *testing.T) {
	n := 4
	scfg := simnet.DefaultConfig(n)
	scfg.BaseHandlerCost = time.Microsecond
	sim := simnet.New(scfg)
	src := loadgen.NewSource(n, 8, loadgen.DefaultWorkload(10))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, (n-1)/3, 0)
	sim.SetProtocol(simnet.ClientNode, col)
	var reps []*narwhal.Replica
	for i := 0; i < n; i++ {
		r := narwhal.New(sim.Context(types.NodeID(i)), narwhal.DefaultConfig(n))
		reps = append(reps, r)
		sim.SetProtocol(types.NodeID(i), r)
	}
	sim.Start()
	// Dissemination + lane ordering need a fair stretch of virtual time;
	// -short keeps a window that still orders every replica's lane.
	window := 3 * time.Second
	if testing.Short() {
		window = 1200 * time.Millisecond
	}
	sim.Run(window)
	if col.TxnsDone == 0 {
		t.Fatalf("no transactions completed")
	}
	for i, r := range reps {
		if r.Delivered == 0 {
			t.Errorf("replica %d delivered nothing", i)
		}
	}
}
