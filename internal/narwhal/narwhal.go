// Package narwhal implements the Narwhal-HS baseline of §6.2, following the
// paper's own simulation of it: transaction dissemination is decoupled from
// ordering — every replica broadcasts its client batches, collects 2f+1
// signed availability acknowledgements into a certificate, and broadcasts
// the certificate; every replica verifies the 2f+1 signatures per batch
// (the protocol's CPU bottleneck, Figure 14). A chained HotStuff instance
// orders certified batch digests.
package narwhal

import (
	"fmt"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/hotstuff"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Config parameterizes a Narwhal-HS replica.
type Config struct {
	N, F int
	// HS configures the embedded ordering instance.
	HS hotstuff.Config
	// DisseminateRetry re-polls the batch source when it ran dry.
	DisseminateRetry time.Duration
	// MaxRefsPerBlock caps how many certified batches one block orders.
	MaxRefsPerBlock int
	// Window is the per-worker dissemination flow-control window: batches
	// broadcast but not yet ordered. It backpressures batch production to
	// the certificate-verification capacity (the system bottleneck).
	Window int
}

// DefaultConfig returns the tuned baseline configuration.
func DefaultConfig(n int) Config {
	hs := hotstuff.DefaultConfig(n)
	// Certificate verification traffic inflates ordering-view latency well
	// past bare HotStuff's; a higher pacemaker floor avoids spurious
	// timeouts that would break the 3-chain.
	hs.MinTimeout *= 3
	return Config{
		N:                n,
		F:                (n - 1) / 3,
		HS:               hs,
		DisseminateRetry: time.Millisecond,
		MaxRefsPerBlock:  4096,
		Window:           16,
	}
}

type batchState struct {
	batch      *types.Batch
	acks       map[types.NodeID]types.Signature
	mine       bool // we are the disseminating origin
	certified  bool
	ordered    bool
	proposedAt time.Duration // when we last referenced it in our own block
}

const (
	timerDisseminate = 201
	timerRequeue     = 202
)

// Replica is one Narwhal-HS replica: a dissemination worker plus an
// embedded HotStuff orderer.
type Replica struct {
	ctx protocol.Context
	cfg Config
	hs  *hotstuff.Replica

	batches map[types.Digest]*batchState
	// pendingRefs are this replica's own certified batches awaiting a turn
	// as leader (each validator orders its own dissemination lane, as in
	// Narwhal; cross-lane duplication would bloat blocks).
	pendingRefs []types.Digest
	// awaitRefs holds commits whose referenced batch payload has not
	// arrived yet (delivered once dissemination catches up).
	awaitRefs map[types.Digest][]types.Commit
	inflight  int // own batches broadcast but not yet ordered

	// Delivered counts ordered, payload-resolved batches (testing).
	Delivered uint64
}

// New creates a Narwhal-HS replica.
func New(ctx protocol.Context, cfg Config) *Replica {
	r := &Replica{
		ctx:       ctx,
		cfg:       cfg,
		batches:   make(map[types.Digest]*batchState),
		awaitRefs: make(map[types.Digest][]types.Commit),
	}
	hcfg := cfg.HS
	hcfg.N, hcfg.F = cfg.N, cfg.F
	hcfg.Payload = r.payload
	hcfg.OnCommit = r.onCommit
	r.hs = hotstuff.New(ctx, hcfg)
	return r
}

// Start implements protocol.Protocol.
func (r *Replica) Start() {
	r.hs.Start()
	// Stagger worker start to spread the initial certificate-verification
	// burst across the cluster.
	r.ctx.SetTimer(time.Duration(int(r.ctx.ID())%16)*2*time.Millisecond,
		protocol.TimerTag{Kind: timerDisseminate})
	r.ctx.SetTimer(time.Second, protocol.TimerTag{Kind: timerRequeue})
}

// disseminate broadcasts the replica's next client batch; each replica is
// its own dissemination worker (load-balanced bandwidth, §6.2).
func (r *Replica) disseminate() {
	if r.inflight >= r.cfg.Window {
		return // flow control; resumed when an own batch is ordered
	}
	batch := r.ctx.NextBatch(int32(r.ctx.ID()))
	if batch == nil {
		r.ctx.SetTimer(r.cfg.DisseminateRetry, protocol.TimerTag{Kind: timerDisseminate})
		return
	}
	r.inflight++
	st := &batchState{batch: batch, mine: true, acks: make(map[types.NodeID]types.Signature)}
	r.batches[batch.ID] = st
	msg := &types.NarwhalBatch{Origin: r.ctx.ID(), Batch: batch}
	r.ctx.Broadcast(msg)
	// Self-acknowledge.
	r.onAck(r.ctx.ID(), &types.NarwhalAck{Origin: r.ctx.ID(), BatchID: batch.ID,
		Sig: r.ctx.Crypto().Sign(batch.ID[:])})
	// Keep the pipeline full: next batch immediately.
	r.ctx.SetTimer(r.cfg.DisseminateRetry, protocol.TimerTag{Kind: timerDisseminate})
}

// HandleMessage implements protocol.Protocol.
func (r *Replica) HandleMessage(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *types.NarwhalBatch:
		r.onBatch(from, m)
	case *types.NarwhalAck:
		r.onAck(from, m)
	case *types.NarwhalCert:
		r.onCert(from, m)
	default:
		r.hs.HandleMessage(from, msg)
	}
}

// HandleTimer implements protocol.Protocol.
func (r *Replica) HandleTimer(tag protocol.TimerTag) {
	switch tag.Kind {
	case timerDisseminate:
		r.disseminate()
	case timerRequeue:
		r.requeueLost()
		r.ctx.SetTimer(time.Second, protocol.TimerTag{Kind: timerRequeue})
	default:
		r.hs.HandleTimer(tag)
	}
}

// IngressJob implements protocol.IngressVerifier. The 2f+1 certificate
// signatures every replica must check per batch — the protocol's CPU
// bottleneck (§6.4) — fan out as one batch job off the event loop, and each
// availability acknowledgement is checked before it reaches the origin's
// loop. Ordering-layer messages delegate to the embedded HotStuff
// classifier. The state machine below consumes only pre-verified messages.
func (r *Replica) IngressJob(from types.NodeID, msg types.Message) (protocol.VerifyJob, bool) {
	switch m := msg.(type) {
	case *types.NarwhalAck:
		// Acks must be signed by their sender — a replayed third-party
		// signature would verify yet leave the assembled certificate
		// short of distinct signers.
		if m.Origin != r.ctx.ID() || m.Sig.Signer != from {
			return protocol.VerifyJob{}, false // onAck drops misrouted acks unread
		}
		return protocol.VerifyJob{
			Checks: []crypto.Check{{Sig: m.Sig, Msg: m.BatchID[:]}},
			Quorum: 1,
		}, true
	case *types.NarwhalCert:
		if crypto.DistinctSigners(m.Sigs) < 2*r.cfg.F+1 {
			return protocol.VerifyJob{}, false // onCert drops short certs at map cost
		}
		checks := make([]crypto.Check, len(m.Sigs))
		for i, sig := range m.Sigs {
			checks[i] = crypto.Check{Sig: sig, Msg: m.BatchID[:]}
		}
		return protocol.VerifyJob{Checks: checks, Quorum: 2*r.cfg.F + 1}, true
	case *types.NarwhalBatch:
		return protocol.VerifyJob{}, false
	}
	return r.hs.IngressJob(from, msg)
}

var (
	_ protocol.Protocol        = (*Replica)(nil)
	_ protocol.IngressVerifier = (*Replica)(nil)
)

func (r *Replica) onBatch(from types.NodeID, m *types.NarwhalBatch) {
	if m.Batch == nil {
		return
	}
	st, ok := r.batches[m.Batch.ID]
	if !ok {
		st = &batchState{acks: make(map[types.NodeID]types.Signature)}
		r.batches[m.Batch.ID] = st
	}
	if st.batch == nil {
		st.batch = m.Batch
		r.flushAwaiting(m.Batch.ID)
	}
	// Acknowledge availability to the origin with a signature.
	ack := &types.NarwhalAck{Origin: m.Origin, BatchID: m.Batch.ID,
		Sig: r.ctx.Crypto().Sign(m.Batch.ID[:])}
	if m.Origin == r.ctx.ID() {
		r.onAck(r.ctx.ID(), ack)
	} else {
		r.ctx.Send(m.Origin, ack)
	}
}

func (r *Replica) onAck(from types.NodeID, m *types.NarwhalAck) {
	if m.Origin != r.ctx.ID() {
		return
	}
	st, ok := r.batches[m.BatchID]
	if !ok || st.certified {
		return
	}
	if _, dup := st.acks[from]; dup {
		return
	}
	// Ack signatures are pre-verified at ingress and bound to their
	// sender, so every stored ack is valid certificate material with a
	// distinct signer.
	if m.Sig.Signer != from {
		return
	}
	st.acks[from] = m.Sig
	if len(st.acks) != 2*r.cfg.F+1 {
		return
	}
	// Availability certificate complete: broadcast it.
	sigs := make([]types.Signature, 0, len(st.acks))
	for _, s := range st.acks {
		sigs = append(sigs, s)
	}
	cert := &types.NarwhalCert{BatchID: m.BatchID, Sigs: sigs}
	r.ctx.Broadcast(cert)
	r.onCert(r.ctx.ID(), cert)
}

func (r *Replica) onCert(from types.NodeID, m *types.NarwhalCert) {
	st, ok := r.batches[m.BatchID]
	if !ok {
		st = &batchState{acks: make(map[types.NodeID]types.Signature)}
		r.batches[m.BatchID] = st
	}
	if st.certified {
		return
	}
	// The 2f+1 certificate signatures every replica checks — the CPU
	// bottleneck the paper attributes to Narwhal-HS (§6.4) — were verified
	// by the ingress pipeline as one batch job; only the structural
	// distinct-signer count remains on the loop.
	if from != r.ctx.ID() && crypto.DistinctSigners(m.Sigs) < 2*r.cfg.F+1 {
		return
	}
	st.certified = true
	if st.mine {
		r.pendingRefs = append(r.pendingRefs, m.BatchID)
	}
}

// requeueLost re-queues own certified batches whose referencing block was
// lost to a view change (no commit within a generous deadline).
func (r *Replica) requeueLost() {
	for id, st := range r.batches {
		if st.mine && st.certified && !st.ordered && st.proposedAt > 0 &&
			r.ctx.Now()-st.proposedAt > 2*time.Second {
			st.proposedAt = 0
			r.pendingRefs = append(r.pendingRefs, id)
		}
	}
}

// payload supplies the next block's certified-batch references to the
// embedded HotStuff leader.
func (r *Replica) payload(v types.View) (*types.Batch, []types.Digest) {
	nrefs := len(r.pendingRefs)
	if nrefs == 0 {
		return nil, nil
	}
	if nrefs > r.cfg.MaxRefsPerBlock {
		nrefs = r.cfg.MaxRefsPerBlock
	}
	refs := make([]types.Digest, nrefs)
	copy(refs, r.pendingRefs[:nrefs])
	r.pendingRefs = r.pendingRefs[nrefs:]
	now := r.ctx.Now()
	for _, id := range refs {
		if st, ok := r.batches[id]; ok {
			st.proposedAt = now
		}
	}
	return nil, refs
}

// onCommit resolves ordered references to their payloads and delivers.
func (r *Replica) onCommit(c types.Commit, refs []types.Digest) {
	for i, ref := range refs {
		st, ok := r.batches[ref]
		if !ok || st.batch == nil {
			// Payload still in flight: deliver once it arrives.
			r.awaitRefs[ref] = append(r.awaitRefs[ref], types.Commit{View: c.View, Proposal: ref})
			continue
		}
		if st.ordered {
			continue
		}
		st.ordered = true
		r.Delivered++
		r.ctx.Deliver(types.Commit{Instance: int32(i), View: c.View, Batch: st.batch, Proposal: ref})
		r.creditOrigin(st)
	}
}

// creditOrigin returns a flow-control credit when one of our own batches is
// ordered, resuming dissemination.
func (r *Replica) creditOrigin(st *batchState) {
	if !st.mine {
		return
	}
	st.mine = false
	if r.inflight > 0 {
		r.inflight--
	}
	r.disseminate()
}

func (r *Replica) flushAwaiting(id types.Digest) {
	waits, ok := r.awaitRefs[id]
	if !ok {
		return
	}
	delete(r.awaitRefs, id)
	st := r.batches[id]
	for _, c := range waits {
		if st.ordered {
			break
		}
		st.ordered = true
		r.Delivered++
		r.ctx.Deliver(types.Commit{View: c.View, Batch: st.batch, Proposal: id})
		r.creditOrigin(st)
	}
}

// DebugString summarizes internal progress for calibration probes.
func (r *Replica) DebugString() string {
	certified, mineCert := 0, 0
	for _, st := range r.batches {
		if st.certified {
			certified++
			if st.mine || st.proposedAt > 0 {
				mineCert++
			}
		}
	}
	return fmt.Sprintf("view=%d hsDelivered=%d batches=%d certified=%d pendingRefs=%d inflight=%d delivered=%d",
		r.hs.View(), r.hs.Delivered, len(r.batches), certified, len(r.pendingRefs), r.inflight, r.Delivered)
}
