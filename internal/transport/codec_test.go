package transport_test

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/transport"
	"spotless/internal/types"
)

// codecMessages returns one fully populated value of every registered wire
// message type (all 24). Shared by the round-trip table test, the truncation
// test, the fuzz seed corpus, and the benchmarks.
func codecMessages() []types.Message {
	d := func(b byte) types.Digest { return types.Digest{b, b + 1, b + 2} }
	sig := func(id int32, b byte) types.Signature {
		return types.Signature{Signer: types.NodeID(id), Bytes: []byte{b, b, b}}
	}
	batch := &types.Batch{
		ID: d(9),
		Txns: []types.Transaction{
			{Client: types.ClientIDBase, Seq: 7, Op: types.OpWrite, Key: 42, Value: []byte("v")},
			{Client: types.ClientIDBase + 1, Seq: 8, Op: types.OpRead, Key: 43},
		},
		Submitted: 123,
	}
	qc := types.QC{View: 5, Block: d(1), Sigs: []types.Signature{sig(1, 2)}, Genesis: true}

	return []types.Message{
		// SpotLess (§3)
		&types.Propose{Instance: 1, View: 2, Batch: batch,
			Parent: types.Justification{Kind: types.JustCert, ParentView: 1, ParentDigest: d(3),
				Cert: []types.Signature{sig(0, 1), sig(1, 2)}},
			Sig: sig(2, 3)},
		&types.Sync{Instance: 1, View: 2, Claim: types.Claim{View: 2, Digest: d(4)},
			CP: []types.CPEntry{{View: 1, Digest: d(5)}}, Retransmit: true, Sig: sig(3, 4)},
		&types.Ask{Instance: 1, View: 2, Claim: types.Claim{View: 2, Digest: d(4), Empty: true}},
		// Pbft / RCC (§6.2)
		&types.PrePrepare{Instance: 1, PView: 2, Seq: 3, Batch: batch},
		&types.Prepare{Instance: 1, PView: 2, Seq: 3, Digest: d(6)},
		&types.PbftCommit{Instance: 1, PView: 2, Seq: 3, Digest: d(6)},
		&types.ViewChange{Instance: 1, NewPView: 4, LastSeq: 3},
		&types.NewPView{Instance: 1, PView: 4, StartSeq: 5},
		&types.Complaint{Instance: 1, Round: 6},
		// HotStuff / Narwhal-HS (§6.2)
		&types.HSProposal{View: 5, Block: d(1), Parent: d(2), Batch: batch,
			Refs: []types.Digest{d(7)}, Justify: qc},
		&types.HSVote{View: 5, Block: d(1), Sig: sig(1, 5)},
		&types.HSNewView{View: 6, Justify: qc},
		&types.NarwhalBatch{Origin: 2, Batch: batch},
		&types.NarwhalAck{Origin: 2, BatchID: d(9), Sig: sig(2, 6)},
		&types.NarwhalCert{BatchID: d(9), Sigs: []types.Signature{sig(0, 7), sig(1, 8)}},
		// Checkpointing & state transfer
		&types.Checkpoint{Height: 64, StateHash: d(10), Sig: sig(3, 9)},
		&types.FetchState{Have: 12, Head: 66, HeadHash: d(17), WantSnapshot: true},
		&types.StateChunk{
			Cert:         types.CheckpointCert{Height: 64, StateHash: d(10), Sigs: []types.Signature{sig(0, 1), sig(1, 2), sig(2, 3)}},
			ExecHash:     d(11),
			LedgerResume: d(12),
			Anchors:      []types.Anchor{{View: 30, Digest: d(13)}, {View: 29, Digest: d(14)}},
			Blocks: []types.BlockRecord{{Height: 64, Prev: d(12), Instance: 1, View: 30,
				BatchID: d(9), Proposal: d(13), Results: d(15), Hash: d(16)}},
			Snapshot: []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01},
		},
		// Batch dissemination (digest ordering)
		&types.BatchDigest{Origin: 2, Batch: batch, Pull: true},
		&types.BatchAck{Origin: 2, BatchID: d(9), Sig: sig(1, 10)},
		&types.BatchCert{BatchID: d(9), Sigs: []types.Signature{sig(0, 11), sig(1, 12), sig(2, 13)}},
		&types.BatchChunk{Origin: 2, BatchID: d(9), K: 2, DataLen: 7,
			Hashes: []types.Digest{d(1), d(2), d(3)}, Index: 1, Data: []byte{1, 2, 3, 4},
			Sigs: []types.Signature{sig(0, 14), sig(1, 15), sig(2, 16)}},
		// Client traffic
		&types.Request{Batch: batch},
		&types.Inform{Replica: 1, BatchID: d(9), Results: d(15)},
	}
}

// TestCodecRoundTripAllMessages encodes and decodes every registered wire
// message through the binary codec, with every field populated, and requires
// the round trip to be lossless. A new message type added without its codec
// arm fails here at Encode — the easy-to-miss step when introducing messages
// (this supersedes the gob round-trip test of the gob wire era). It also
// requires distinct kind tags, since a duplicated tag would silently decode
// one type as another.
func TestCodecRoundTripAllMessages(t *testing.T) {
	msgs := codecMessages()
	if len(msgs) != 24 {
		t.Fatalf("codec table covers %d message types, want all 24", len(msgs))
	}
	kinds := make(map[types.WireKind]string)
	for _, m := range msgs {
		name := reflect.TypeOf(m).Elem().Name()
		k := types.MessageKind(m)
		if k == types.KindInvalid {
			t.Errorf("%s: not registered with the wire codec", name)
			continue
		}
		if prev, dup := kinds[k]; dup {
			t.Errorf("%s: kind tag %d already used by %s", name, k, prev)
		}
		kinds[k] = name
		payload, err := transport.Encode(m)
		if err != nil {
			t.Errorf("%s: encode failed (missing AppendMessage arm?): %v", name, err)
			continue
		}
		if payload[0] != byte(k) {
			t.Errorf("%s: payload tagged %d, MessageKind says %d", name, payload[0], k)
		}
		got, err := transport.Decode(payload)
		if err != nil {
			t.Errorf("%s: decode failed: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s: round trip not lossless:\n got  %#v\n want %#v", name, got, m)
		}
		if m.WireSize() <= 0 {
			t.Errorf("%s: non-positive modelled wire size %d", name, m.WireSize())
		}
	}
}

// TestCodecRejectsMalformed feeds the decoder every truncation of every
// encoded message, plus trailing garbage and unknown kind tags; all must
// error without panicking, and none may be accepted (a truncated frame that
// decodes successfully would mean a field is not length-checked).
func TestCodecRejectsMalformed(t *testing.T) {
	if _, err := transport.Decode(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := transport.Decode([]byte{0xee}); err == nil {
		t.Error("unknown kind tag accepted")
	}
	for _, m := range codecMessages() {
		name := reflect.TypeOf(m).Elem().Name()
		payload, err := transport.Encode(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		for i := 0; i < len(payload); i++ {
			if _, err := transport.Decode(payload[:i]); err == nil {
				t.Errorf("%s: truncation to %d/%d bytes accepted", name, i, len(payload))
			}
		}
		if _, err := transport.Decode(append(append([]byte(nil), payload...), 0)); err == nil {
			t.Errorf("%s: trailing byte accepted", name)
		}
	}
}

// FuzzDecode hammers the decoder with arbitrary bytes: it must never panic,
// and any accepted payload must re-encode to exactly the bytes it was
// decoded from (the codec is canonical: strict booleans, strict kind ranges,
// full-consumption decoding).
func FuzzDecode(f *testing.F) {
	for _, m := range codecMessages() {
		payload, err := transport.Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
		if len(payload) > 3 {
			f.Add(payload[:len(payload)/2]) // truncation seeds
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := transport.Decode(data)
		if err != nil {
			return
		}
		if msg == nil {
			t.Fatal("Decode returned nil message with nil error")
		}
		re, err := transport.Encode(msg)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzChunkDecode drills the coded-dissemination message specifically: a
// BatchChunk is the one frame whose fields feed straight into erasure-decode
// geometry (K, DataLen, Index, Hashes length), so the corpus seeds every
// shape a peer can legally send — push, blind pull (ChunkAny), certified
// backfill response, degenerate empties — plus mutations. The oracle is the
// codec contract (never panic, accepted bytes re-encode canonically, the
// kind tag survives) and, one layer up, that the strict payload decoder
// never panics on whatever Data the frame smuggled in.
func FuzzChunkDecode(f *testing.F) {
	d := func(b byte) types.Digest { return types.Digest{b, b * 3, b ^ 0x55} }
	chunks := []*types.BatchChunk{
		{Origin: 2, BatchID: d(9), K: 2, DataLen: 100,
			Hashes: []types.Digest{d(1), d(2), d(3)}, Index: 0, Data: make([]byte, 50)},
		{BatchID: d(9), Index: types.ChunkAny, Pull: true},
		{BatchID: d(9), Index: 2, Pull: true},
		{Origin: 1, BatchID: d(8), K: 1, DataLen: 4,
			Hashes: []types.Digest{d(4)}, Index: 0, Data: []byte{1, 2, 3, 4},
			Sigs: []types.Signature{
				{Signer: 0, Bytes: []byte{7}}, {Signer: 1, Bytes: []byte{8}}, {Signer: 2, Bytes: []byte{9}}}},
		{Origin: 3, BatchID: d(7), K: 6, DataLen: 0, Hashes: nil, Index: 0, Data: nil},
	}
	for _, m := range chunks {
		payload, err := transport.Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
		if len(payload) > 3 {
			f.Add(payload[:len(payload)/2])
			mut := bytes.Clone(payload)
			mut[len(mut)/2] ^= 0xFF
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := transport.Decode(data)
		if err != nil {
			return
		}
		re, err := transport.Encode(msg)
		if err != nil {
			t.Fatalf("accepted chunk failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("chunk decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
		if c, ok := msg.(*types.BatchChunk); ok {
			if c.WireSize() < types.ControlMsgSize {
				t.Fatalf("WireSize %d below the control-message floor", c.WireSize())
			}
			// The handler hands Data to the strict batch decoder after the
			// chunk-hash check; the decoder itself must be panic-free on
			// arbitrary bytes regardless.
			_, _ = types.DecodeBatchPayload(c.Data)
		}
	})
}

// TestBcastEncodesOnce asserts the encode-once broadcast invariant: a Bcast
// to n−1 peers performs exactly one payload serialization (Stats.Encodes),
// while every peer still receives the message with a valid per-peer MAC.
func TestBcastEncodesOnce(t *testing.T) {
	const n = 4
	ids := []types.NodeID{0, 1, 2, 3}
	ring := crypto.NewKeyring([]byte("bcast-test"), ids)

	got := make(chan types.NodeID, 16)
	addrs := make(map[types.NodeID]string)
	var rcvs []*transport.TCP
	for i := 1; i < n; i++ {
		id := types.NodeID(i)
		prov, _ := ring.Provider(id)
		tr := transport.New(transport.Config{ID: id, Listen: "127.0.0.1:0", Crypto: prov})
		tr.Register(id, func(from types.NodeID, msg types.Message) {
			if _, ok := msg.(*types.Sync); ok {
				got <- id
			}
		})
		if err := tr.Start(); err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		rcvs = append(rcvs, tr)
		addrs[id] = tr.Addr()
	}
	_ = rcvs

	p0, _ := ring.Provider(0)
	sender := transport.New(transport.Config{ID: 0, Peers: addrs, Crypto: p0})
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	msg := &types.Sync{Instance: 0, View: 9, Claim: types.Claim{View: 9, Digest: types.Digest{7}},
		Sig: types.Signature{Signer: 0, Bytes: []byte("sig")}}
	sender.Bcast(0, []types.NodeID{0, 1, 2, 3}, msg) // self is skipped

	seen := make(map[types.NodeID]bool)
	deadline := time.After(10 * time.Second)
	for len(seen) < n-1 {
		select {
		case id := <-got:
			seen[id] = true
		case <-deadline:
			t.Fatalf("only %d/%d peers received the broadcast", len(seen), n-1)
		}
	}
	st := sender.Stats()
	if st.Encodes != 1 {
		t.Fatalf("broadcast to %d peers performed %d payload serializations, want exactly 1", n-1, st.Encodes)
	}
	if st.EncodeFailures != 0 || st.QueueSheds != 0 {
		t.Fatalf("unexpected failures: %+v", st)
	}
}

// writeRawFrame assembles one wire frame by hand (the documented layout:
// u32 length, u32 sender, u8 MAC length, MAC, payload) — the transport's
// inbound parser is exercised against frames it did not produce.
func writeRawFrame(w io.Writer, from types.NodeID, mac, payload []byte) error {
	hdr := make([]byte, 9)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(4+1+len(mac)+len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(from))
	hdr[8] = byte(len(mac))
	for _, b := range [][]byte{hdr, mac, payload} {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// TestInboundFrameScreening drives the receive path with hand-assembled
// frames: a tampered MAC and an undecodable payload are dropped — and
// counted in Stats — while a well-formed frame is delivered.
func TestInboundFrameScreening(t *testing.T) {
	ring := crypto.NewKeyring([]byte("frame-test"), []types.NodeID{0, 1})
	p0, _ := ring.Provider(0)
	p1, _ := ring.Provider(1)

	got := make(chan types.Message, 4)
	recv := transport.New(transport.Config{ID: 1, Listen: "127.0.0.1:0", Crypto: p1})
	recv.Register(1, func(from types.NodeID, msg types.Message) { got <- msg })
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Hello: magic + owner id 0.
	if _, err := conn.Write([]byte{'S', 'P', 'L', '2', 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}

	good, err := transport.Encode(&types.Ask{Instance: 3, View: 7})
	if err != nil {
		t.Fatal(err)
	}
	junk := []byte{0xee, 0xbb, 0xcc} // unknown kind tag

	// 1: valid payload, tampered MAC.
	badMAC := p0.MAC(1, good)
	badMAC[0] ^= 0xff
	if err := writeRawFrame(conn, 0, badMAC, good); err != nil {
		t.Fatal(err)
	}
	// 2: valid MAC over an undecodable payload.
	if err := writeRawFrame(conn, 0, p0.MAC(1, junk), junk); err != nil {
		t.Fatal(err)
	}
	// 3: well-formed frame.
	if err := writeRawFrame(conn, 0, p0.MAC(1, good), good); err != nil {
		t.Fatal(err)
	}

	select {
	case m := <-got:
		if a, ok := m.(*types.Ask); !ok || a.Instance != 3 || a.View != 7 {
			t.Fatalf("delivered %#v, want the well-formed Ask", m)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("well-formed frame never delivered")
	}
	select {
	case m := <-got:
		t.Fatalf("unexpected extra delivery %#v (forged frames must be dropped)", m)
	case <-time.After(100 * time.Millisecond):
	}
	st := recv.Stats()
	if st.MACRejections != 1 {
		t.Errorf("MACRejections = %d, want 1", st.MACRejections)
	}
	if st.DecodeFailures != 1 {
		t.Errorf("DecodeFailures = %d, want 1", st.DecodeFailures)
	}
}
