package transport_test

import (
	"reflect"
	"testing"

	"spotless/internal/transport"
	"spotless/internal/types"
)

// TestGobRoundTripAllMessages encodes and decodes every registered wire
// message through the transport's envelope, with every field populated, and
// requires the round trip to be lossless. A new message type added without
// its gob.Register call fails here at Encode — the easy-to-miss step when
// introducing messages (this PR's Checkpoint/FetchState/StateChunk were the
// latest additions).
func TestGobRoundTripAllMessages(t *testing.T) {
	d := func(b byte) types.Digest { return types.Digest{b, b + 1, b + 2} }
	sig := func(id int32, b byte) types.Signature {
		return types.Signature{Signer: types.NodeID(id), Bytes: []byte{b, b, b}}
	}
	batch := &types.Batch{
		ID: d(9),
		Txns: []types.Transaction{
			{Client: types.ClientIDBase, Seq: 7, Op: types.OpWrite, Key: 42, Value: []byte("v")},
		},
		Submitted: 123,
	}
	qc := types.QC{View: 5, Block: d(1), Sigs: []types.Signature{sig(1, 2)}, Genesis: true}

	msgs := []types.Message{
		// SpotLess (§3)
		&types.Propose{Instance: 1, View: 2, Batch: batch,
			Parent: types.Justification{Kind: types.JustCert, ParentView: 1, ParentDigest: d(3),
				Cert: []types.Signature{sig(0, 1), sig(1, 2)}},
			Sig: sig(2, 3)},
		&types.Sync{Instance: 1, View: 2, Claim: types.Claim{View: 2, Digest: d(4)},
			CP: []types.CPEntry{{View: 1, Digest: d(5)}}, Retransmit: true, Sig: sig(3, 4)},
		&types.Ask{Instance: 1, View: 2, Claim: types.Claim{View: 2, Digest: d(4), Empty: true}},
		// Pbft / RCC (§6.2)
		&types.PrePrepare{Instance: 1, PView: 2, Seq: 3, Batch: batch},
		&types.Prepare{Instance: 1, PView: 2, Seq: 3, Digest: d(6)},
		&types.PbftCommit{Instance: 1, PView: 2, Seq: 3, Digest: d(6)},
		&types.ViewChange{Instance: 1, NewPView: 4, LastSeq: 3},
		&types.NewPView{Instance: 1, PView: 4, StartSeq: 5},
		&types.Complaint{Instance: 1, Round: 6},
		// HotStuff / Narwhal-HS (§6.2)
		&types.HSProposal{View: 5, Block: d(1), Parent: d(2), Batch: batch,
			Refs: []types.Digest{d(7)}, Justify: qc},
		&types.HSVote{View: 5, Block: d(1), Sig: sig(1, 5)},
		&types.HSNewView{View: 6, Justify: qc},
		&types.NarwhalBatch{Origin: 2, Batch: batch},
		&types.NarwhalAck{Origin: 2, BatchID: d(9), Sig: sig(2, 6)},
		&types.NarwhalCert{BatchID: d(9), Sigs: []types.Signature{sig(0, 7), sig(1, 8)}},
		// Checkpointing & state transfer
		&types.Checkpoint{Height: 64, StateHash: d(10), Sig: sig(3, 9)},
		&types.FetchState{Have: 12},
		&types.StateChunk{
			Cert:         types.CheckpointCert{Height: 64, StateHash: d(10), Sigs: []types.Signature{sig(0, 1), sig(1, 2), sig(2, 3)}},
			ExecHash:     d(11),
			LedgerResume: d(12),
			Anchors:      []types.Anchor{{View: 30, Digest: d(13)}, {View: 29, Digest: d(14)}},
			Blocks: []types.BlockRecord{{Height: 64, Prev: d(12), Instance: 1, View: 30,
				BatchID: d(9), Proposal: d(13), Results: d(15), Hash: d(16)}},
		},
		// Client traffic
		&types.Request{Batch: batch},
		&types.Inform{Replica: 1, BatchID: d(9), Results: d(15)},
	}

	for _, m := range msgs {
		name := reflect.TypeOf(m).Elem().Name()
		payload, err := transport.Encode(m)
		if err != nil {
			t.Errorf("%s: encode failed (missing gob.Register?): %v", name, err)
			continue
		}
		got, err := transport.Decode(payload)
		if err != nil {
			t.Errorf("%s: decode failed: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s: round trip not lossless:\n got  %#v\n want %#v", name, got, m)
		}
		if m.WireSize() <= 0 {
			t.Errorf("%s: non-positive modelled wire size %d", name, m.WireSize())
		}
	}
}
