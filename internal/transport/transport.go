// Package transport is the TCP wire layer for multi-process deployments:
// binary length-delimited frames (the hand-rolled codec of internal/types)
// authenticated with pairwise HMACs (the MAC channel of §2), sync.Pool-backed
// frame buffers, an encode-once broadcast fan-out, per-peer send queues with
// ResilientDB-style write coalescing, and automatic reconnection. Every
// connection opens with a fixed 8-byte hello identifying its owner;
// connections are bidirectional, so clients receive Informs over the
// connections they dialed.
//
// Frame layout (all integers little-endian):
//
//	u32  frame length (bytes after this field; capped at MaxFrameSize)
//	u32  sender id
//	u8   MAC length, then the MAC bytes
//	     payload — one WireKind tag byte + fixed-layout message body
//	     (types.AppendMessage / types.DecodeMessage)
//
// A broadcast serializes its payload exactly once: every peer queue shares
// one pooled, reference-counted buffer and only the per-peer HMAC differs
// (Bcast; threaded from runtime.Node.Broadcast). Drop and failure paths that
// the seed handled with silent returns are counted and exposed via Stats.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// MaxFrameSize bounds one frame in both directions: inbound, a forged
// length prefix can never force a larger allocation; outbound, Send/Bcast
// drop (and count as encode failures) payloads that would exceed it, since
// receivers kill the whole connection on an oversized frame. A full
// StateChunk at the default fetch cap is ~100 KiB; the margin covers large
// batches.
const MaxFrameSize = 16 << 20

// maxPayloadSize is the largest payload that fits a MaxFrameSize frame with
// the sender and MAC header fields.
const maxPayloadSize = MaxFrameSize - 4 - 1 - 255

// helloMagic opens every connection, followed by the owner's u32 id.
var helloMagic = [4]byte{'S', 'P', 'L', '2'}

// Encode serializes a message to its wire payload (kind tag + binary body).
// Hot paths serialize into pooled buffers instead (Send/Bcast); Encode is
// the allocation-per-call convenience form.
func Encode(msg types.Message) ([]byte, error) {
	return types.AppendMessage(nil, msg)
}

// Decode deserializes a wire payload.
func Decode(payload []byte) (types.Message, error) {
	return types.DecodeMessage(payload)
}

// payloadBuf is a pooled, reference-counted frame payload. The encode-once
// broadcast enqueues one buffer on every peer queue with refs preset to the
// fan-out; each writer (or shed path) releases once, and the last release
// returns the buffer to the pool.
type payloadBuf struct {
	b    []byte
	refs atomic.Int32
}

var payloadPool = sync.Pool{New: func() any { return new(payloadBuf) }}

func getPayload() *payloadBuf {
	pb := payloadPool.Get().(*payloadBuf)
	pb.b = pb.b[:0]
	return pb
}

func (pb *payloadBuf) release() {
	if pb.refs.Add(-1) == 0 {
		payloadPool.Put(pb)
	}
}

// frame is one queued wire unit: the shared payload plus its per-peer HMAC.
type frame struct {
	from    types.NodeID
	mac     []byte
	payload *payloadBuf
}

// Stats is a snapshot of the transport's serialization and drop counters.
// Every path that used to fail with a silent return/continue is counted.
type Stats struct {
	// Encodes counts successful payload serializations — exactly one per
	// Send and one per Bcast regardless of fan-out (the encode-once
	// invariant; asserted by TestBcastEncodesOnce).
	Encodes uint64
	// EncodeFailures counts messages dropped because serialization failed
	// (a message type not registered with the codec) or because the payload
	// would exceed MaxFrameSize (receivers drop the connection on oversized
	// frames, so they are never emitted).
	EncodeFailures uint64
	// QueueSheds counts frames dropped on full per-peer send queues (§2
	// asynchronous network model: shed, never block).
	QueueSheds uint64
	// MACRejections counts inbound frames whose HMAC failed verification.
	MACRejections uint64
	// DecodeFailures counts inbound payloads the binary codec rejected,
	// plus malformed frame headers (forged length, MAC length leaving no
	// payload) that tear the connection down.
	DecodeFailures uint64
	// IngressDrops counts decoded messages dropped by the declared ingress
	// signature checks.
	IngressDrops uint64
	// BytesOut counts frame bytes (header, MAC, payload) buffered toward
	// peers; BytesIn counts frame bytes read off connections. Together they
	// are the endpoint's egress/ingress volume, the ground truth behind the
	// coded-dissemination bandwidth claims.
	BytesOut uint64
	BytesIn  uint64
}

// Config parameterizes a TCP transport endpoint.
type Config struct {
	ID     types.NodeID
	Listen string                  // listen address ("" for pure clients)
	Peers  map[types.NodeID]string // addresses this endpoint dials
	Crypto crypto.Provider         // MAC provider (pairwise keys)
	// DialRetry is the reconnect backoff (default 250 ms).
	DialRetry time.Duration
	// QueueDepth bounds each peer's send queue (default 8192).
	QueueDepth int

	// Ingress, when set, screens every decoded inbound message before it
	// reaches the registered receiver: the checks the protocol declares for
	// the message must pass or it is dropped. MAC verification always runs
	// on the connection's reader goroutine (off any event loop); Ingress
	// signature checks run on Verifier — typically the replica's shared
	// worker pool — so certificate batches fan out across cores while the
	// reader pipelines the next frame. Set via SetIngress when the protocol
	// is constructed after the transport.
	Ingress protocol.IngressVerifier
	// Verifier executes Ingress checks (default: serial on the reader).
	Verifier crypto.Verifier
}

// TCP is a runtime.Transport over TCP sockets.
type TCP struct {
	cfg  Config
	mu   sync.RWMutex
	recv func(from types.NodeID, msg types.Message)

	dialed   map[types.NodeID]*peer // peers we dial (from cfg.Peers)
	accepted map[types.NodeID]*peer // inbound-only peers (clients)

	ln   net.Listener
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	connMu sync.Mutex
	conns  []net.Conn // every accepted connection (closed on shutdown)

	// Observability counters (see Stats).
	encodes     atomic.Uint64
	encodeFails atomic.Uint64
	queueSheds  atomic.Uint64
	macRejects  atomic.Uint64
	decodeFails atomic.Uint64
	ingressDrop atomic.Uint64
	bytesOut    atomic.Uint64
	bytesIn     atomic.Uint64
}

type peer struct {
	id    types.NodeID
	addr  string
	queue chan frame

	mu   sync.Mutex
	conn net.Conn
}

func (p *peer) setConn(c net.Conn) {
	p.mu.Lock()
	if p.conn != nil && p.conn != c {
		p.conn.Close()
	}
	p.conn = c
	p.mu.Unlock()
}

// New creates a transport endpoint; call Start to listen and dial.
func New(cfg Config) *TCP {
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 250 * time.Millisecond
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8192
	}
	return &TCP{
		cfg:      cfg,
		dialed:   make(map[types.NodeID]*peer),
		accepted: make(map[types.NodeID]*peer),
		done:     make(chan struct{}),
	}
}

// Register implements runtime.Transport.
func (t *TCP) Register(id types.NodeID, recv func(from types.NodeID, msg types.Message)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = recv
}

// SetIngress installs (or replaces) the ingress screening pipeline — the
// protocol's check classifier and the verifier executing its checks. Call
// before Start; deployments whose protocol is constructed after the
// transport (the usual order) wire it here.
func (t *TCP) SetIngress(iv protocol.IngressVerifier, v crypto.Verifier) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Ingress = iv
	t.cfg.Verifier = v
}

// Stats returns a snapshot of the transport's counters.
func (t *TCP) Stats() Stats {
	return Stats{
		Encodes:        t.encodes.Load(),
		EncodeFailures: t.encodeFails.Load(),
		QueueSheds:     t.queueSheds.Load(),
		MACRejections:  t.macRejects.Load(),
		DecodeFailures: t.decodeFails.Load(),
		IngressDrops:   t.ingressDrop.Load(),
		BytesOut:       t.bytesOut.Load(),
		BytesIn:        t.bytesIn.Load(),
	}
}

// screen applies the declared ingress checks for one inbound message; it
// runs on a connection reader goroutine, after the frame's MAC verified.
func (t *TCP) screen(from types.NodeID, msg types.Message) bool {
	t.mu.RLock()
	iv, v := t.cfg.Ingress, t.cfg.Verifier
	t.mu.RUnlock()
	if iv == nil {
		return true
	}
	job, needed := iv.IngressJob(from, msg)
	if !needed {
		return true
	}
	if v == nil {
		return crypto.VerifyChecks(t.cfg.Crypto, job.Checks, job.Quorum)
	}
	return v.VerifyBatch(job.Checks, job.Quorum)
}

// Start listens (if configured) and dials all peers.
func (t *TCP) Start() error {
	if t.cfg.Listen != "" {
		ln, err := net.Listen("tcp", t.cfg.Listen)
		if err != nil {
			return fmt.Errorf("transport: listen %s: %w", t.cfg.Listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	for id, addr := range t.cfg.Peers {
		if id == t.cfg.ID {
			continue
		}
		p := &peer{id: id, addr: addr, queue: make(chan frame, t.cfg.QueueDepth)}
		t.dialed[id] = p
		t.wg.Add(1)
		go t.dialLoop(p)
	}
	return nil
}

// DialPeers dials additional peers after Start — used when the address map
// is only known once every listener is bound (ephemeral ports).
func (t *TCP) DialPeers(peers map[types.NodeID]string) error {
	for id, addr := range peers {
		if id == t.cfg.ID {
			continue
		}
		t.mu.Lock()
		if _, ok := t.dialed[id]; ok {
			t.mu.Unlock()
			continue
		}
		p := &peer{id: id, addr: addr, queue: make(chan frame, t.cfg.QueueDepth)}
		t.dialed[id] = p
		t.mu.Unlock()
		t.wg.Add(1)
		go t.dialLoop(p)
	}
	return nil
}

// Addr returns the bound listen address (for ephemeral ports in tests).
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Close shuts the transport down.
func (t *TCP) Close() {
	t.once.Do(func() {
		close(t.done)
		if t.ln != nil {
			t.ln.Close()
		}
		t.mu.Lock()
		for _, p := range t.dialed {
			p.setConn(nil)
		}
		for _, p := range t.accepted {
			p.setConn(nil)
		}
		t.mu.Unlock()
		t.connMu.Lock()
		for _, c := range t.conns {
			c.Close()
		}
		t.connMu.Unlock()
	})
	t.wg.Wait()
}

// peerFor resolves a destination to its queue owner.
func (t *TCP) peerFor(to types.NodeID) *peer {
	t.mu.RLock()
	p := t.dialed[to]
	if p == nil {
		p = t.accepted[to]
	}
	t.mu.RUnlock()
	return p
}

// Send implements runtime.Transport: serialize into a pooled buffer, MAC,
// and enqueue on the destination's writer.
func (t *TCP) Send(from, to types.NodeID, msg types.Message) {
	p := t.peerFor(to)
	if p == nil {
		return // destination unknown (e.g. client not connected yet)
	}
	pb := getPayload()
	b, err := types.AppendMessage(pb.b, msg)
	if err != nil || len(b) > maxPayloadSize {
		// Oversized frames would make every receiver tear down the shared
		// connection (readLoop's forged-length guard) and the retrying
		// sender flap the link forever — drop at the source instead.
		t.encodeFails.Add(1)
		pb.b = b
		pb.refs.Store(1)
		pb.release()
		return
	}
	pb.b = b
	t.encodes.Add(1)
	pb.refs.Store(1)
	t.enqueue(p, frame{from: from, mac: t.cfg.Crypto.MAC(to, pb.b), payload: pb})
}

// Bcast is the encode-once broadcast fan-out (runtime.Broadcaster): the
// payload is serialized exactly once, every connected peer's queue shares
// the one pooled buffer, and only the per-peer HMAC is computed per
// destination. Unknown destinations are skipped like Send skips them.
func (t *TCP) Bcast(from types.NodeID, to []types.NodeID, msg types.Message) {
	t.mu.RLock()
	peers := make([]*peer, 0, len(to))
	for _, id := range to {
		if id == t.cfg.ID {
			continue
		}
		p := t.dialed[id]
		if p == nil {
			p = t.accepted[id]
		}
		if p != nil {
			peers = append(peers, p)
		}
	}
	t.mu.RUnlock()
	if len(peers) == 0 {
		return
	}
	pb := getPayload()
	b, err := types.AppendMessage(pb.b, msg)
	if err != nil || len(b) > maxPayloadSize {
		t.encodeFails.Add(1) // see Send: never emit a frame receivers must reject
		pb.b = b
		pb.refs.Store(1)
		pb.release()
		return
	}
	pb.b = b
	t.encodes.Add(1)
	pb.refs.Store(int32(len(peers)))
	for _, p := range peers {
		t.enqueue(p, frame{from: from, mac: t.cfg.Crypto.MAC(p.id, pb.b), payload: pb})
	}
}

// enqueue places a frame on a peer queue, shedding (and releasing the
// payload reference) on overflow per the asynchronous network model (§2).
func (t *TCP) enqueue(p *peer, f frame) {
	select {
	case p.queue <- f:
	default:
		t.queueSheds.Add(1)
		f.payload.release()
	}
}

// dialLoop maintains an outbound connection to one peer: it writes queued
// frames and reads replies over the same socket.
func (t *TCP) dialLoop(p *peer) {
	defer t.wg.Done()
	for {
		select {
		case <-t.done:
			return
		default:
		}
		conn, err := net.Dial("tcp", p.addr)
		if err != nil {
			select {
			case <-time.After(t.cfg.DialRetry):
				continue
			case <-t.done:
				return
			}
		}
		p.setConn(conn)
		w := bufio.NewWriterSize(conn, 128<<10)
		var hb [8]byte
		copy(hb[:4], helloMagic[:])
		binary.LittleEndian.PutUint32(hb[4:], uint32(t.cfg.ID))
		if _, err := w.Write(hb[:]); err != nil || w.Flush() != nil {
			conn.Close()
			continue
		}
		// Read replies concurrently (the replica answers clients over the
		// client's own connection).
		t.wg.Add(1)
		go func(c net.Conn) {
			defer t.wg.Done()
			t.readFrames(c, p.id)
		}(conn)
		t.writeFrames(w, p)
		conn.Close()
	}
}

// writeFrames drains the peer queue until the connection breaks, releasing
// each frame's payload reference after its bytes are buffered.
func (t *TCP) writeFrames(w *bufio.Writer, p *peer) {
	var hdr [4 + 4 + 1]byte
	for {
		select {
		case <-t.done:
			return
		case f := <-p.queue:
			n := 4 + 1 + len(f.mac) + len(f.payload.b)
			binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
			binary.LittleEndian.PutUint32(hdr[4:], uint32(f.from))
			hdr[8] = byte(len(f.mac))
			_, err := w.Write(hdr[:])
			if err == nil {
				_, err = w.Write(f.mac)
			}
			if err == nil {
				_, err = w.Write(f.payload.b)
			}
			f.payload.release()
			if err != nil {
				return
			}
			t.bytesOut.Add(uint64(4 + n)) // length prefix + frame
			// Coalesce writes while the queue has backlog (§6.1 buffering).
			if len(p.queue) == 0 || w.Buffered() > 96<<10 {
				if err := w.Flush(); err != nil {
					return
				}
			}
		}
	}
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		t.connMu.Lock()
		t.conns = append(t.conns, conn)
		t.connMu.Unlock()
		t.wg.Add(1)
		go func(c net.Conn) {
			defer t.wg.Done()
			t.serveInbound(c)
		}(conn)
	}
}

// serveInbound handles one accepted connection: learn the owner, spawn a
// writer for replies, and read frames.
func (t *TCP) serveInbound(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 128<<10)
	var hb [8]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil || [4]byte(hb[:4]) != helloMagic {
		return
	}
	owner := types.NodeID(binary.LittleEndian.Uint32(hb[4:]))
	t.mu.Lock()
	p := t.accepted[owner]
	if _, isDialed := t.dialed[owner]; !isDialed {
		if p == nil {
			p = &peer{id: owner, queue: make(chan frame, t.cfg.QueueDepth)}
			t.accepted[owner] = p
		}
		p.setConn(conn)
		w := bufio.NewWriterSize(conn, 128<<10)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.writeFrames(w, p)
		}()
	}
	t.mu.Unlock()
	t.readLoop(r, owner)
}

// readFrames decodes frames from an established outbound connection.
func (t *TCP) readFrames(conn net.Conn, owner types.NodeID) {
	t.readLoop(bufio.NewReaderSize(conn, 128<<10), owner)
}

// readLoop reads length-delimited frames from one connection. The scratch
// buffer is reused across frames: MAC verification, decoding (which copies
// variable-length fields), and ingress screening all complete before the
// next frame overwrites it. MAC verification stays on this reader goroutine
// — the per-frame HMAC (the §2 MAC channel) never touches the node's event
// loop — and declared signature checks run on the shared verification pool;
// failing messages are counted and dropped before the event loop sees them.
func (t *TCP) readLoop(r *bufio.Reader, owner types.NodeID) {
	var hdr [4]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		if n < 4+1+1 || n > MaxFrameSize {
			t.decodeFails.Add(1)
			return // malformed or forged length: drop the connection
		}
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		t.bytesIn.Add(uint64(4 + n)) // length prefix + frame
		from := types.NodeID(binary.LittleEndian.Uint32(buf[0:]))
		macLen := int(buf[4])
		if 4+1+macLen >= n {
			t.decodeFails.Add(1)
			return // malformed: no payload left
		}
		mac := buf[5 : 5+macLen]
		payload := buf[5+macLen:]
		if from != owner {
			continue // connections speak only for their owner
		}
		if err := t.cfg.Crypto.VerifyMAC(from, payload, mac); err != nil {
			t.macRejects.Add(1)
			continue
		}
		msg, err := types.DecodeMessage(payload)
		if err != nil {
			t.decodeFails.Add(1)
			continue
		}
		if !t.screen(from, msg) {
			t.ingressDrop.Add(1)
			continue
		}
		t.mu.RLock()
		recv := t.recv
		t.mu.RUnlock()
		if recv != nil {
			recv(from, msg)
		}
	}
}
