// Package transport is the TCP wire layer for multi-process deployments:
// gob-encoded, length-delimited frames authenticated with pairwise HMACs
// (the MAC channel of §2), per-peer send queues with ResilientDB-style
// write coalescing, and automatic reconnection. Every connection opens with
// a Hello identifying its owner; connections are bidirectional, so clients
// receive Informs over the connections they dialed.
package transport

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

func init() {
	gob.Register(&types.Propose{})
	gob.Register(&types.Sync{})
	gob.Register(&types.Ask{})
	gob.Register(&types.PrePrepare{})
	gob.Register(&types.Prepare{})
	gob.Register(&types.PbftCommit{})
	gob.Register(&types.ViewChange{})
	gob.Register(&types.NewPView{})
	gob.Register(&types.Complaint{})
	gob.Register(&types.HSProposal{})
	gob.Register(&types.HSVote{})
	gob.Register(&types.HSNewView{})
	gob.Register(&types.NarwhalBatch{})
	gob.Register(&types.NarwhalAck{})
	gob.Register(&types.NarwhalCert{})
	gob.Register(&types.Checkpoint{})
	gob.Register(&types.FetchState{})
	gob.Register(&types.StateChunk{})
	gob.Register(&types.Request{})
	gob.Register(&types.Inform{})
}

// envelope wraps a message so gob can encode the interface value.
type envelope struct {
	Msg types.Message
}

// frame is the wire unit: the gob-encoded envelope plus its HMAC.
type frame struct {
	From    types.NodeID
	Payload []byte
	MAC     []byte
}

// hello opens every connection.
type hello struct {
	ID types.NodeID
}

// Encode serializes a message to its wire payload.
func Encode(msg types.Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{Msg: msg}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserializes a wire payload.
func Decode(payload []byte) (types.Message, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return nil, err
	}
	return env.Msg, nil
}

// Config parameterizes a TCP transport endpoint.
type Config struct {
	ID     types.NodeID
	Listen string                  // listen address ("" for pure clients)
	Peers  map[types.NodeID]string // addresses this endpoint dials
	Crypto crypto.Provider         // MAC provider (pairwise keys)
	// DialRetry is the reconnect backoff (default 250 ms).
	DialRetry time.Duration
	// QueueDepth bounds each peer's send queue (default 8192).
	QueueDepth int

	// Ingress, when set, screens every decoded inbound message before it
	// reaches the registered receiver: the checks the protocol declares for
	// the message must pass or it is dropped. MAC verification always runs
	// on the connection's reader goroutine (off any event loop); Ingress
	// signature checks run on Verifier — typically the replica's shared
	// worker pool — so certificate batches fan out across cores while the
	// reader pipelines the next frame. Set via SetIngress when the protocol
	// is constructed after the transport.
	Ingress protocol.IngressVerifier
	// Verifier executes Ingress checks (default: serial on the reader).
	Verifier crypto.Verifier
}

// TCP is a runtime.Transport over TCP sockets.
type TCP struct {
	cfg  Config
	mu   sync.RWMutex
	recv func(from types.NodeID, msg types.Message)

	dialed   map[types.NodeID]*peer // peers we dial (from cfg.Peers)
	accepted map[types.NodeID]*peer // inbound-only peers (clients)

	ln   net.Listener
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	connMu sync.Mutex
	conns  []net.Conn // every accepted connection (closed on shutdown)
}

type peer struct {
	id    types.NodeID
	addr  string
	queue chan frame

	mu   sync.Mutex
	conn net.Conn
}

func (p *peer) setConn(c net.Conn) {
	p.mu.Lock()
	if p.conn != nil && p.conn != c {
		p.conn.Close()
	}
	p.conn = c
	p.mu.Unlock()
}

// New creates a transport endpoint; call Start to listen and dial.
func New(cfg Config) *TCP {
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 250 * time.Millisecond
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8192
	}
	return &TCP{
		cfg:      cfg,
		dialed:   make(map[types.NodeID]*peer),
		accepted: make(map[types.NodeID]*peer),
		done:     make(chan struct{}),
	}
}

// Register implements runtime.Transport.
func (t *TCP) Register(id types.NodeID, recv func(from types.NodeID, msg types.Message)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = recv
}

// SetIngress installs (or replaces) the ingress screening pipeline — the
// protocol's check classifier and the verifier executing its checks. Call
// before Start; deployments whose protocol is constructed after the
// transport (the usual order) wire it here.
func (t *TCP) SetIngress(iv protocol.IngressVerifier, v crypto.Verifier) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Ingress = iv
	t.cfg.Verifier = v
}

// screen applies the declared ingress checks for one inbound message; it
// runs on a connection reader goroutine, after the frame's MAC verified.
func (t *TCP) screen(from types.NodeID, msg types.Message) bool {
	t.mu.RLock()
	iv, v := t.cfg.Ingress, t.cfg.Verifier
	t.mu.RUnlock()
	if iv == nil {
		return true
	}
	job, needed := iv.IngressJob(from, msg)
	if !needed {
		return true
	}
	if v == nil {
		return crypto.VerifyChecks(t.cfg.Crypto, job.Checks, job.Quorum)
	}
	return v.VerifyBatch(job.Checks, job.Quorum)
}

// Start listens (if configured) and dials all peers.
func (t *TCP) Start() error {
	if t.cfg.Listen != "" {
		ln, err := net.Listen("tcp", t.cfg.Listen)
		if err != nil {
			return fmt.Errorf("transport: listen %s: %w", t.cfg.Listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	for id, addr := range t.cfg.Peers {
		if id == t.cfg.ID {
			continue
		}
		p := &peer{id: id, addr: addr, queue: make(chan frame, t.cfg.QueueDepth)}
		t.dialed[id] = p
		t.wg.Add(1)
		go t.dialLoop(p)
	}
	return nil
}

// DialPeers dials additional peers after Start — used when the address map
// is only known once every listener is bound (ephemeral ports).
func (t *TCP) DialPeers(peers map[types.NodeID]string) error {
	for id, addr := range peers {
		if id == t.cfg.ID {
			continue
		}
		t.mu.Lock()
		if _, ok := t.dialed[id]; ok {
			t.mu.Unlock()
			continue
		}
		p := &peer{id: id, addr: addr, queue: make(chan frame, t.cfg.QueueDepth)}
		t.dialed[id] = p
		t.mu.Unlock()
		t.wg.Add(1)
		go t.dialLoop(p)
	}
	return nil
}

// Addr returns the bound listen address (for ephemeral ports in tests).
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Close shuts the transport down.
func (t *TCP) Close() {
	t.once.Do(func() {
		close(t.done)
		if t.ln != nil {
			t.ln.Close()
		}
		t.mu.Lock()
		for _, p := range t.dialed {
			p.setConn(nil)
		}
		for _, p := range t.accepted {
			p.setConn(nil)
		}
		t.mu.Unlock()
		t.connMu.Lock()
		for _, c := range t.conns {
			c.Close()
		}
		t.connMu.Unlock()
	})
	t.wg.Wait()
}

// Send implements runtime.Transport.
func (t *TCP) Send(from, to types.NodeID, msg types.Message) {
	t.mu.RLock()
	p := t.dialed[to]
	if p == nil {
		p = t.accepted[to]
	}
	t.mu.RUnlock()
	if p == nil {
		return // destination unknown (e.g. client not connected yet)
	}
	payload, err := Encode(msg)
	if err != nil {
		return
	}
	f := frame{From: from, Payload: payload, MAC: t.cfg.Crypto.MAC(to, payload)}
	select {
	case p.queue <- f:
	default:
		// Queue overflow: shed, per the asynchronous network model (§2).
	}
}

// dialLoop maintains an outbound connection to one peer: it writes queued
// frames and reads replies over the same socket.
func (t *TCP) dialLoop(p *peer) {
	defer t.wg.Done()
	for {
		select {
		case <-t.done:
			return
		default:
		}
		conn, err := net.Dial("tcp", p.addr)
		if err != nil {
			select {
			case <-time.After(t.cfg.DialRetry):
				continue
			case <-t.done:
				return
			}
		}
		p.setConn(conn)
		w := bufio.NewWriterSize(conn, 128<<10)
		enc := gob.NewEncoder(w)
		if err := enc.Encode(hello{ID: t.cfg.ID}); err != nil || w.Flush() != nil {
			conn.Close()
			continue
		}
		// Read replies concurrently (the replica answers clients over the
		// client's own connection).
		t.wg.Add(1)
		go func(c net.Conn) {
			defer t.wg.Done()
			t.readFrames(c, p.id)
		}(conn)
		t.writeFrames(conn, w, enc, p)
		conn.Close()
	}
}

// writeFrames drains the peer queue until the connection breaks.
func (t *TCP) writeFrames(conn net.Conn, w *bufio.Writer, enc *gob.Encoder, p *peer) {
	for {
		select {
		case <-t.done:
			return
		case f := <-p.queue:
			if err := enc.Encode(&f); err != nil {
				return
			}
			// Coalesce writes while the queue has backlog (§6.1 buffering).
			if len(p.queue) == 0 || w.Buffered() > 96<<10 {
				if err := w.Flush(); err != nil {
					return
				}
			}
		}
	}
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		t.connMu.Lock()
		t.conns = append(t.conns, conn)
		t.connMu.Unlock()
		t.wg.Add(1)
		go func(c net.Conn) {
			defer t.wg.Done()
			t.serveInbound(c)
		}(conn)
	}
}

// serveInbound handles one accepted connection: learn the owner, spawn a
// writer for replies, and read frames.
func (t *TCP) serveInbound(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 128<<10)
	dec := gob.NewDecoder(r)
	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	t.mu.Lock()
	p := t.accepted[h.ID]
	if _, isDialed := t.dialed[h.ID]; !isDialed {
		if p == nil {
			p = &peer{id: h.ID, queue: make(chan frame, t.cfg.QueueDepth)}
			t.accepted[h.ID] = p
		}
		p.setConn(conn)
		w := bufio.NewWriterSize(conn, 128<<10)
		enc := gob.NewEncoder(w)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.writeFrames(conn, w, enc, p)
		}()
	}
	t.mu.Unlock()
	t.readDecoded(dec, h.ID)
}

// readFrames decodes frames from an established connection.
func (t *TCP) readFrames(conn net.Conn, owner types.NodeID) {
	r := bufio.NewReaderSize(conn, 128<<10)
	dec := gob.NewDecoder(r)
	t.readDecoded(dec, owner)
}

func (t *TCP) readDecoded(dec *gob.Decoder, owner types.NodeID) {
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			if !errors.Is(err, io.EOF) {
				select {
				case <-t.done:
				default:
				}
			}
			return
		}
		if f.From != owner {
			continue // connections speak only for their owner
		}
		// MAC verification stays on this reader goroutine: the per-frame
		// HMAC (the §2 MAC channel) never touches the node's event loop.
		if err := t.cfg.Crypto.VerifyMAC(f.From, f.Payload, f.MAC); err != nil {
			continue
		}
		msg, err := Decode(f.Payload)
		if err != nil {
			continue
		}
		// Declared signature checks run on the shared verification pool;
		// failing messages are dropped before the event loop sees them.
		if !t.screen(f.From, msg) {
			continue
		}
		t.mu.RLock()
		recv := t.recv
		t.mu.RUnlock()
		if recv != nil {
			recv(f.From, msg)
		}
	}
}
