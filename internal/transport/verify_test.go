package transport_test

import (
	"testing"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/transport"
	"spotless/internal/types"
)

// voteScreener declares the signature check of HSVote messages (a stand-in
// for a protocol's IngressJob).
type voteScreener struct{}

func (voteScreener) IngressJob(from types.NodeID, msg types.Message) (protocol.VerifyJob, bool) {
	m, ok := msg.(*types.HSVote)
	if !ok {
		return protocol.VerifyJob{}, false
	}
	return protocol.VerifyJob{
		Checks: []crypto.Check{{Sig: m.Sig, Msg: m.Block[:]}},
		Quorum: 1,
	}, true
}

// TestTCPIngressScreening: inbound messages whose declared signature checks
// fail are dropped on the receive path (MAC on the reader goroutine, then
// signature checks on the verifier) and never reach the registered
// receiver.
func TestTCPIngressScreening(t *testing.T) {
	ring := crypto.NewKeyring([]byte("tcp-ingress"), []types.NodeID{0, 1})
	p0, _ := ring.Provider(0)
	p1, _ := ring.Provider(1)

	recv := transport.New(transport.Config{ID: 1, Listen: "127.0.0.1:0", Crypto: p1})
	pool := crypto.NewPoolVerifier(p1, 2)
	defer pool.Close()
	recv.SetIngress(voteScreener{}, pool)
	got := make(chan types.Message, 16)
	recv.Register(1, func(from types.NodeID, msg types.Message) { got <- msg })
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	send := transport.New(transport.Config{ID: 0, Peers: map[types.NodeID]string{1: recv.Addr()}, Crypto: p0})
	if err := send.Start(); err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	d := types.Digest{7}
	send.Send(0, 1, &types.HSVote{View: 1, Block: d, Sig: types.Signature{Signer: 0, Bytes: []byte("junk")}})
	send.Send(0, 1, &types.HSVote{View: 1, Block: d, Sig: p0.Sign(d[:])})
	send.Send(0, 1, &types.Ask{Instance: 3}) // undeclared: passes untouched

	var delivered []types.Message
	deadline := time.After(5 * time.Second)
	for len(delivered) < 2 {
		select {
		case m := <-got:
			delivered = append(delivered, m)
		case <-deadline:
			t.Fatalf("only %d messages delivered, want 2", len(delivered))
		}
	}
	select {
	case m := <-got:
		t.Fatalf("unexpected third delivery %T (forged vote must be dropped)", m)
	case <-time.After(200 * time.Millisecond):
	}
	if v, ok := delivered[0].(*types.HSVote); !ok || v.Sig.Bytes == nil || string(v.Sig.Bytes) == "junk" {
		t.Fatalf("first delivery %+v, want the validly signed vote", delivered[0])
	}
	if _, ok := delivered[1].(*types.Ask); !ok {
		t.Fatalf("second delivery %T, want the undeclared Ask", delivered[1])
	}
}
