package transport_test

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/transport"
	"spotless/internal/types"
)

// The gob baseline reproduces the seed wire codec exactly: a fresh encoder
// and decoder per message (connections came and went, and the seed's
// transport.Encode/Decode were per-call), so every frame re-transmitted gob
// type descriptors and paid reflection on both ends. It exists only as the
// benchmark baseline.

func init() {
	for _, m := range codecMessages() {
		gob.Register(m)
	}
}

type gobEnvelope struct {
	Msg types.Message
}

func gobEncode(msg types.Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobEnvelope{Msg: msg}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(payload []byte) (types.Message, error) {
	var env gobEnvelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return nil, err
	}
	return env.Msg, nil
}

// benchBatch builds a 100-txn batch (the paper's ResilientDB batch size,
// §6.1) so Propose/PrePrepare/Request benchmarks carry realistic payloads.
func benchBatch() *types.Batch {
	txns := make([]types.Transaction, 100)
	for i := range txns {
		txns[i] = types.Transaction{
			Client: types.ClientIDBase, Seq: uint64(i), Op: types.OpWrite,
			Key: uint64(i * 7), Value: []byte("value-0123456789-0123456789-0123456"),
		}
	}
	return &types.Batch{ID: types.ComputeBatchID(txns), Txns: txns, Submitted: 12345}
}

// benchCodecMessages is the representative hot-path set: the Propose and
// Sync fast path (the acceptance targets), the Ask recovery message, a
// certificate-heavy HSProposal, a state-transfer chunk, and the client
// reply.
func benchCodecMessages() []types.Message {
	sig := func(i int32) types.Signature {
		return types.Signature{Signer: types.NodeID(i), Bytes: bytes.Repeat([]byte{byte(i + 1)}, 64)}
	}
	sigs := func(k int) []types.Signature {
		out := make([]types.Signature, k)
		for i := range out {
			out[i] = sig(int32(i))
		}
		return out
	}
	return []types.Message{
		&types.Propose{Instance: 2, View: 77, Batch: benchBatch(),
			Parent: types.Justification{Kind: types.JustCert, ParentView: 76,
				ParentDigest: types.Digest{1, 2, 3}, Cert: sigs(11)},
			Sig: sig(3)},
		&types.Sync{Instance: 2, View: 77, Claim: types.Claim{View: 77, Digest: types.Digest{4, 5}},
			CP:  []types.CPEntry{{View: 76, Digest: types.Digest{6}}, {View: 75, Digest: types.Digest{7}}},
			Sig: sig(1)},
		&types.Ask{Instance: 2, View: 77, Claim: types.Claim{View: 77, Digest: types.Digest{4, 5}}},
		&types.HSProposal{View: 77, Block: types.Digest{8}, Parent: types.Digest{9},
			Batch: benchBatch(), Justify: types.QC{View: 76, Block: types.Digest{9}, Sigs: sigs(11)}},
		&types.StateChunk{
			Cert:     types.CheckpointCert{Height: 640, StateHash: types.Digest{10}, Sigs: sigs(11)},
			ExecHash: types.Digest{11}, LedgerResume: types.Digest{12},
			Anchors: []types.Anchor{{View: 630, Digest: types.Digest{13}}},
			Blocks: func() []types.BlockRecord {
				out := make([]types.BlockRecord, 64)
				for i := range out {
					out[i] = types.BlockRecord{Height: uint64(640 + i), Instance: 2, View: types.View(630 + i)}
				}
				return out
			}(),
		},
		&types.Inform{Replica: 2, BatchID: types.Digest{14}, Results: types.Digest{15}},
	}
}

// BenchmarkCodec measures one encode+decode round trip per op, binary codec
// vs the seed's gob baseline, for the hot-path message set. The CI smoke
// step runs it with -benchtime=1x so a codec arm that breaks (or a message
// that stops round-tripping) surfaces there too. Acceptance floor for this
// refactor: ≥5x faster and ≥10x fewer allocations than gob for Propose and
// Sync.
func BenchmarkCodec(b *testing.B) {
	for _, m := range benchCodecMessages() {
		name := reflect.TypeOf(m).Elem().Name()
		b.Run("binary/"+name, func(b *testing.B) {
			var buf []byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = types.AppendMessage(buf[:0], m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := types.DecodeMessage(buf); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(buf)))
		})
		b.Run("gob/"+name, func(b *testing.B) {
			var n int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				payload, err := gobEncode(m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := gobDecode(payload); err != nil {
					b.Fatal(err)
				}
				n = len(payload)
			}
			b.SetBytes(int64(n))
		})
	}
}

// BenchmarkTCPLoopback is the end-to-end throughput drill: b.N Sync
// messages through the full wire path — pooled serialization, per-peer
// HMAC, length-delimited framing, write coalescing, MAC verification and
// decode on the reader — over a real loopback socket.
func BenchmarkTCPLoopback(b *testing.B) {
	ring := crypto.NewKeyring([]byte("bench-loopback"), []types.NodeID{0, 1})
	p0, _ := ring.Provider(0)
	p1, _ := ring.Provider(1)

	var received atomic.Int64
	recv := transport.New(transport.Config{ID: 1, Listen: "127.0.0.1:0", Crypto: p1, QueueDepth: 1 << 14})
	recv.Register(1, func(from types.NodeID, msg types.Message) { received.Add(1) })
	if err := recv.Start(); err != nil {
		b.Fatal(err)
	}
	defer recv.Close()

	send := transport.New(transport.Config{ID: 0, Peers: map[types.NodeID]string{1: recv.Addr()}, Crypto: p0, QueueDepth: 1 << 14})
	if err := send.Start(); err != nil {
		b.Fatal(err)
	}
	defer send.Close()

	msg := &types.Sync{Instance: 0, View: 1, Claim: types.Claim{View: 1, Digest: types.Digest{1}},
		CP:  []types.CPEntry{{View: 1, Digest: types.Digest{2}}},
		Sig: types.Signature{Signer: 0, Bytes: bytes.Repeat([]byte{3}, 64)}}
	payload, _ := transport.Encode(msg)
	b.SetBytes(int64(len(payload)))

	// Wait for the dial to land so the first sends are not shed.
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() == 0 {
		send.Send(0, 1, msg)
		if time.Now().After(deadline) {
			b.Fatal("loopback connection never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	warm := received.Load()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send.Send(0, 1, msg)
		if i%4096 == 4095 {
			// Backpressure: stay within the queue depth so the asynchronous
			// shed path doesn't turn the benchmark lossy.
			for received.Load()-warm < int64(i)-8192 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	for received.Load()-warm < int64(b.N) {
		if sheds := send.Stats().QueueSheds; sheds > 0 {
			b.Fatalf("benchmark shed %d frames (raise QueueDepth)", sheds)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	if st := send.Stats(); st.Encodes < uint64(b.N) {
		b.Fatalf("expected ≥%d serializations, saw %d", b.N, st.Encodes)
	}
}
