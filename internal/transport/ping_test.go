package transport_test

import (
	"testing"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/transport"
	"spotless/internal/types"
)

// TestPingPong verifies bidirectional frame flow between two endpoints.
func TestPingPong(t *testing.T) {
	ring := crypto.NewKeyring([]byte("ping"), []types.NodeID{0, 1})
	p0, _ := ring.Provider(0)
	p1, _ := ring.Provider(1)

	a := transport.New(transport.Config{ID: 0, Listen: "127.0.0.1:0", Crypto: p0})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b := transport.New(transport.Config{ID: 1, Listen: "127.0.0.1:0", Crypto: p1})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	addrs := map[types.NodeID]string{0: a.Addr(), 1: b.Addr()}
	if err := a.DialPeers(addrs); err != nil {
		t.Fatal(err)
	}
	if err := b.DialPeers(addrs); err != nil {
		t.Fatal(err)
	}

	gotA := make(chan types.Message, 1)
	gotB := make(chan types.Message, 1)
	a.Register(0, func(from types.NodeID, m types.Message) { gotA <- m })
	b.Register(1, func(from types.NodeID, m types.Message) { gotB <- m })

	deadline := time.After(10 * time.Second)
	// Retry until the dial completes.
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		a.Send(0, 1, &types.Ask{Instance: 7})
		select {
		case m := <-gotB:
			if m.(*types.Ask).Instance != 7 {
				t.Fatalf("wrong message: %+v", m)
			}
			b.Send(1, 0, &types.Ask{Instance: 9})
			select {
			case m2 := <-gotA:
				if m2.(*types.Ask).Instance != 9 {
					t.Fatalf("wrong reply: %+v", m2)
				}
				return
			case <-deadline:
				t.Fatal("no reply received")
			}
		case <-tick.C:
		case <-deadline:
			t.Fatal("no message received")
		}
	}
}
