package transport_test

import (
	"reflect"
	"testing"
	"time"

	"spotless/internal/core"
	"spotless/internal/crypto"
	"spotless/internal/ledger"
	"spotless/internal/runtime"
	"spotless/internal/transport"
	"spotless/internal/types"
	"spotless/internal/ycsb"
)

// TestEncodeDecodeRoundTrip covers the wire codec for representative
// messages of every protocol.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	batch := &types.Batch{ID: types.Digest{1}, Txns: []types.Transaction{{Client: 5, Seq: 9, Op: types.OpWrite, Key: 7, Value: []byte("v")}}}
	msgs := []types.Message{
		&types.Propose{Instance: 1, View: 2, Batch: batch, Parent: types.Justification{Kind: types.JustCert, ParentView: 1, Cert: []types.Signature{{Signer: 3, Bytes: []byte("s")}}}},
		&types.Sync{Instance: 1, View: 2, Claim: types.Claim{View: 2, Digest: types.Digest{9}}, CP: []types.CPEntry{{View: 1, Digest: types.Digest{8}}}, Retransmit: true},
		&types.Ask{Instance: 0, View: 3, Claim: types.Claim{View: 3, Empty: true}},
		&types.PrePrepare{Instance: 2, Seq: 11, Batch: batch},
		&types.HSProposal{View: 4, Block: types.Digest{2}, Justify: types.QC{View: 3, Sigs: []types.Signature{{Signer: 1, Bytes: []byte("q")}}}},
		&types.Inform{Replica: 2, BatchID: types.Digest{1}},
	}
	for _, m := range msgs {
		payload, err := transport.Encode(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		back, err := transport.Decode(payload)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(back, m) {
			t.Errorf("round-trip mismatch for %T:\n got %+v\nwant %+v", m, back, m)
		}
	}
}

// TestMACRejection: frames with tampered payloads are dropped.
func TestMACRejection(t *testing.T) {
	ring := crypto.NewKeyring([]byte("mac-test"), []types.NodeID{0, 1})
	p0, _ := ring.Provider(0)
	p1, _ := ring.Provider(1)
	payload, _ := transport.Encode(&types.Ask{Instance: 1})
	mac := p0.MAC(1, payload)
	if err := p1.VerifyMAC(0, payload, mac); err != nil {
		t.Fatalf("valid MAC rejected: %v", err)
	}
	payload[0] ^= 0xff
	if err := p1.VerifyMAC(0, payload, mac); err == nil {
		t.Fatal("tampered payload accepted")
	}
}

type sliceSource struct{ batches []*types.Batch }

func (s *sliceSource) Next(instance int32, now time.Duration) *types.Batch {
	if len(s.batches) == 0 {
		return nil
	}
	b := s.batches[0]
	s.batches = s.batches[1:]
	return b
}

// TestTCPClusterCommits runs a full 4-replica SpotLess cluster over
// loopback TCP with real crypto, YCSB execution, and ledgers; a TCP client
// collects the f+1 Informs.
func TestTCPClusterCommits(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network integration test")
	}
	const n = 4
	f := (n - 1) / 3
	ids := []types.NodeID{0, 1, 2, 3, types.ClientIDBase}
	ring := crypto.NewKeyring([]byte("tcp-test"), ids)

	// Bind listeners on ephemeral ports first to learn the address map.
	trs := make([]*transport.TCP, n)
	addrs := make(map[types.NodeID]string, n)
	for i := 0; i < n; i++ {
		prov, _ := ring.Provider(types.NodeID(i))
		tr := transport.New(transport.Config{ID: types.NodeID(i), Listen: "127.0.0.1:0", Crypto: prov})
		if err := tr.Start(); err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		addrs[types.NodeID(i)] = tr.Addr()
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()

	// Dialer endpoints share the listener transports via DialPeers.
	for i := 0; i < n; i++ {
		if err := trs[i].DialPeers(addrs); err != nil {
			t.Fatal(err)
		}
	}

	wl := ycsb.NewWorkload(3, types.ClientIDBase, 1000, 16)
	var batches []*types.Batch
	for j := 0; j < 50; j++ {
		batches = append(batches, wl.NextBatch(5))
	}
	src := runtime.NewSafeSource(&sliceSource{batches: batches})

	nodes := make([]*runtime.Node, n)
	for i := 0; i < n; i++ {
		prov, _ := ring.Provider(types.NodeID(i))
		exec := runtime.NewReplicaExecutor(types.NodeID(i), ycsb.NewStore(1000, 16), ledger.New(), trs[i], types.ClientIDBase)
		node := runtime.NewNode(runtime.NodeConfig{
			ID: types.NodeID(i), N: n, F: f, Transport: trs[i], Crypto: prov, Source: src, Executor: exec,
		})
		cfg := core.DefaultConfig(n, 1)
		cfg.InitialRecordingTimeout = 150 * time.Millisecond
		cfg.InitialCertifyTimeout = 150 * time.Millisecond
		cfg.MinTimeout = 20 * time.Millisecond
		node.SetProtocol(core.New(node, cfg))
		nodes[i] = node
	}

	done := make(chan struct{}, 256)
	client := runtime.NewClient(f, func(types.Digest) { done <- struct{}{} })
	cprov, _ := ring.Provider(types.ClientIDBase)
	ctr := transport.New(transport.Config{ID: types.ClientIDBase, Peers: addrs, Crypto: cprov})
	ctr.Register(types.ClientIDBase, client.Receive)
	if err := ctr.Start(); err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()

	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	deadline := time.After(30 * time.Second)
	completed := 0
	for completed < 5 {
		select {
		case <-done:
			completed++
		case <-deadline:
			t.Fatalf("only %d batches completed over TCP before deadline", completed)
		}
	}
}
