package simnet

import (
	"testing"
	"time"

	"spotless/internal/protocol"
	"spotless/internal/types"
)

// TestAdversaryTargetedDropAndDelay: rules match on (pair, instance, view,
// kind); a dropped Sync never arrives, a delayed one arrives after its
// configured extra delay, and untargeted traffic is untouched.
func TestAdversaryTargetedDropAndDelay(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Jitter = 0
	cfg.BufferDelay = 50 * time.Microsecond
	cfg.BaseHandlerCost = 0
	sim := New(cfg)
	adv := NewAdversary(1,
		AdvRule{From: 0, To: 1, Instance: 0, ViewLo: 5, ViewHi: 5, Classes: ClassSync, Drop: true},
		AdvRule{From: 0, To: 2, Instance: -1, ViewLo: 6, ViewHi: 6, Classes: ClassSync, Delay: 10 * time.Millisecond},
	)
	sim.SetAdversary(adv)

	sender := &starter{}
	sender.ctx = sim.Context(0)
	sender.run = func(ctx protocol.Context) {
		ctx.Send(1, &types.Sync{Instance: 0, View: 5}) // dropped
		ctx.Send(1, &types.Sync{Instance: 0, View: 6}) // passes (To mismatch)
		ctx.Send(1, &types.Sync{Instance: 1, View: 5}) // passes (instance mismatch)
		ctx.Send(2, &types.Sync{Instance: 0, View: 6}) // delayed 10 ms
	}
	r1 := &echoProto{ctx: sim.Context(1)}
	r2 := &echoProto{ctx: sim.Context(2)}
	sim.SetProtocol(0, sender)
	sim.SetProtocol(1, r1)
	sim.SetProtocol(2, r2)
	sim.Start()
	sim.Run(time.Second)

	if len(r1.got) != 2 {
		t.Fatalf("replica 1 got %d messages, want 2 (one dropped)", len(r1.got))
	}
	for _, m := range r1.got {
		s := m.(*types.Sync)
		if s.Instance == 0 && s.View == 5 {
			t.Fatal("the targeted (instance 0, view 5) Sync was delivered")
		}
	}
	if len(r2.got) != 1 {
		t.Fatalf("replica 2 got %d messages, want 1", len(r2.got))
	}
	if at := r2.gotAt[0]; at < 10*time.Millisecond {
		t.Fatalf("delayed Sync arrived at %v, want ≥ 10ms", at)
	}
	if adv.Dropped != 1 || adv.Delayed != 1 {
		t.Fatalf("counters: dropped=%d delayed=%d, want 1/1", adv.Dropped, adv.Delayed)
	}
}

// TestRandomAdversaryDeterministic: the same seed derives the same rule set
// and the same per-message coin flips — the foundation of the seeded drill.
func TestRandomAdversaryDeterministic(t *testing.T) {
	a := RandomAdversary(42, 4, 4)
	b := RandomAdversary(42, 4, 4)
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(a.Rules), len(b.Rules))
	}
	for i := range a.Rules {
		if a.Rules[i] != b.Rules[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, a.Rules[i], b.Rules[i])
		}
	}
	msg := &types.Sync{Instance: 0, View: a.Rules[0].ViewLo}
	for i := 0; i < 100; i++ {
		d1, del1 := a.verdict(0, 1, msg)
		d2, del2 := b.verdict(0, 1, msg)
		if d1 != d2 || del1 != del2 {
			t.Fatalf("verdict %d diverged", i)
		}
	}
	if c := RandomAdversary(43, 4, 4); len(c.Rules) == len(a.Rules) {
		same := true
		for i := range c.Rules {
			if c.Rules[i] != a.Rules[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds derived identical profiles")
		}
	}
}
