// Package simnet is a deterministic discrete-event simulator for BFT
// protocol evaluation. It substitutes the paper's 128-machine Oracle-Cloud
// testbed (see docs/ARCHITECTURE.md) while preserving every resource that
// shapes the evaluation:
//
//   - per-replica egress bandwidth with FIFO serialization,
//   - per-region-pair propagation delay (geo-scale experiments),
//   - ResilientDB-style message buffering (§6.1) to batch small messages,
//   - a C-core CPU model: a handler's latency is its full service time
//     while the node's aggregate capacity is cores × time (an approximation
//     of ResilientDB's multi-threaded pipeline),
//   - a single-threaded sequential execution resource (340 ktxn/s, §6.1),
//   - calibrated CPU costs for MACs, signatures, and message handling.
//
// Protocols exchange their real messages; only the clock and resource costs
// are virtual, so message-complexity effects (Figure 1) emerge rather than
// being assumed.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Config parameterizes a simulation.
type Config struct {
	N     int   // number of replicas
	Seed  int64 // RNG seed (deterministic runs)
	Cores int   // CPU cores per replica (paper: 16)

	// InstanceWorkers ≥ 1 switches replicas hosting a
	// protocol.ShardedProtocol to the instance-parallel execution model:
	// events are routed to per-shard lanes (instance i on lane i mod
	// workers, the ordering stage on its own lane), each lane is one
	// dedicated modelled core executing its handlers serially, and lanes
	// run concurrently — so the modelled-cores charger reflects true
	// instance parallelism, mirroring runtime.NodeConfig.Workers. Clamped
	// to Cores. InstanceWorkers == 1 models the classic single event loop:
	// every handler, ordering included, serializes on one core. The
	// default (0) keeps the calibrated aggregate-capacity model: handlers
	// pipeline at work/Cores regardless of instance.
	InstanceWorkers int

	BandwidthMbps       float64 // egress bandwidth per replica
	ClientBandwidthMbps float64 // egress bandwidth of the aggregate client node

	Regions       []int       // region of each replica (nil: all in region 0)
	RegionDelayMs [][]float64 // one-way inter-region propagation (ms)
	LocalDelay    time.Duration
	Jitter        time.Duration

	ExecRate        float64       // sequential execution rate, txn/s (paper: 340k)
	PerTxnCPU       time.Duration // per-transaction bookkeeping on the core pool
	BaseHandlerCost time.Duration // per-message non-crypto processing cost

	BufferBytes int           // flush threshold of the message buffer
	BufferDelay time.Duration // max buffering delay

	LossRate float64 // per-packet loss probability (testing)

	Costs crypto.CostModel

	Debug bool
}

// DefaultConfig returns parameters calibrated against §6.1 for n replicas.
func DefaultConfig(n int) Config {
	return Config{
		N:                   n,
		Seed:                1,
		Cores:               16,
		BandwidthMbps:       2400,
		ClientBandwidthMbps: 400000,
		LocalDelay:          250 * time.Microsecond,
		Jitter:              50 * time.Microsecond,
		ExecRate:            340000,
		PerTxnCPU:           2 * time.Microsecond,
		BaseHandlerCost:     15 * time.Microsecond,
		BufferBytes:         16 << 10,
		BufferDelay:         150 * time.Microsecond,
		Costs: crypto.CostModel{
			Sign:      60 * time.Microsecond,
			Verify:    130 * time.Microsecond, // secp256k1-class (§6.2)
			MAC:       700 * time.Nanosecond,
			HashPerKB: 500 * time.Nanosecond,
		},
	}
}

// ClientNode is the identifier of the aggregate client node hosted by the
// simulation (metrics collection and Inform routing).
const ClientNode = types.ClientIDBase

// Stats aggregates counters over a simulation run.
type Stats struct {
	MessagesSent   uint64 // protocol messages (not packets)
	PacketsSent    uint64 // buffered packets on the wire
	BytesSent      uint64
	EventsRun      uint64
	TimersFired    uint64
	MessagesByKind map[string]uint64
	// NodeBytesSent is per-sender egress volume (modelled wire bytes,
	// self-sends excluded), indexed by node — replica ids first, then the
	// client node. Per-node attribution is what the dissemination-egress
	// experiments compare (origin push vs peer serving load).
	NodeBytesSent []uint64
}

// event kinds
const (
	evDeliver = iota
	evTimer
	evFlush
	evFn
	evVerified // VerifyAsync completion
	evShardFn  // cross-shard post of a sharded protocol (dest = target lane)
)

type event struct {
	at   time.Duration
	seq  uint64
	kind uint8
	node int32 // target node index
	from types.NodeID
	msgs []types.Message
	tag  protocol.TimerTag
	dest int32
	gen  uint64
	ok   bool // evVerified verdict
	fn   func()
}

// outBuffer batches messages destined to one receiver (§6.1 buffering).
type outBuffer struct {
	msgs      []types.Message
	bytes     int
	gen       uint64
	scheduled bool
}

type simNode struct {
	idx      int32
	id       types.NodeID
	proto    protocol.Protocol
	ctx      *nodeCtx
	crypto   crypto.Provider
	verifier crypto.Verifier // batch verifier (modelled multi-core)
	region   int
	cores    int
	bwBps    float64 // bytes/sec
	execCost time.Duration

	cpuBusyUntil time.Duration
	egressFreeAt time.Duration
	execFreeAt   time.Duration

	// Instance-parallel model (Config.InstanceWorkers > 1 and a sharded
	// protocol): per-lane busy clocks — workers instance lanes plus the
	// ordering lane (last). Each lane is one dedicated modelled core
	// running its handlers serially; nil selects the aggregate model.
	lanes []time.Duration
	sp    protocol.ShardedProtocol

	buffers []outBuffer // indexed by destination node index
	down    bool
	// timerSkew models a drifting local clock (chaos profiles): every timer
	// the node arms is stretched by (1+skew) at schedule time. Positive =
	// slow clock (timers fire late, the node under-reacts to stalls);
	// negative = fast clock (premature claim(∅) spam). Message timing is
	// unaffected — only the node's own timer base drifts.
	timerSkew float64
	// gen counts protocol incarnations (Restart): timers and verification
	// completions scheduled by a previous incarnation are discarded at
	// dispatch, modelling that a crash loses all pending timers.
	gen uint64
}

// Simulation is a deterministic discrete-event run.
type Simulation struct {
	cfg   Config
	now   time.Duration
	seq   uint64
	heap  []event
	nodes []*simNode // n replicas + 1 client node
	rng   *rand.Rand
	src   BatchSource
	stats Stats

	blocked map[[2]int32]bool // partitioned directed links

	// adv is the deterministic adversary layer (see adversary.go): seeded
	// per-(pair, instance, view, kind) drop/delay rules applied to
	// replica-to-replica traffic before the network model. nil = inert.
	adv *Adversary

	// deliverHook observes every Deliver upcall (testing: total-order
	// consistency assertions across replicas).
	deliverHook func(node types.NodeID, c types.Commit)

	// handler scratch state
	cur          *simNode
	handlerStart time.Duration
	charge       time.Duration // critical-path latency of the handler
	work         time.Duration // aggregate CPU work (≥ charge on parallel stages)
	pendingSends []pendingSend
	pendingTimer []pendingTimer
	pendingDeliv []types.Commit
	pendingVerif []pendingVerified
	pendingPosts []pendingPost
}

type pendingSend struct {
	to  types.NodeID
	msg types.Message
}

type pendingTimer struct {
	d   time.Duration
	tag protocol.TimerTag
}

type pendingVerified struct {
	tag protocol.TimerTag
	ok  bool
}

type pendingPost struct {
	lane int
	fn   func()
}

// BatchSource supplies client batches to proposing primaries (§5). The
// harness implements closed-loop load control with it.
type BatchSource interface {
	Next(instance int32, now time.Duration) *types.Batch
}

// New creates a simulation with the given config. Protocols are attached
// with SetProtocol before Run.
func New(cfg Config) *Simulation {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.ExecRate <= 0 {
		cfg.ExecRate = 340000
	}
	// The verification pipeline defaults to the node's full core count; set
	// Costs.Cores = 1 to reproduce the serial (pre-pipeline) model.
	if cfg.Costs.Cores == 0 {
		cfg.Costs.Cores = cfg.Cores
	}
	s := &Simulation{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		blocked: make(map[[2]int32]bool),
	}
	s.stats.MessagesByKind = make(map[string]uint64)
	s.stats.NodeBytesSent = make([]uint64, cfg.N+1)
	total := cfg.N + 1 // replicas + client node
	s.nodes = make([]*simNode, total)
	for i := 0; i < total; i++ {
		n := &simNode{
			idx:      int32(i),
			id:       types.NodeID(i),
			cores:    cfg.Cores,
			bwBps:    cfg.BandwidthMbps * 1e6 / 8,
			execCost: time.Duration(float64(time.Second) / cfg.ExecRate),
			buffers:  make([]outBuffer, total),
		}
		if i < cfg.N && cfg.Regions != nil {
			n.region = cfg.Regions[i]
		}
		if i == cfg.N { // client node
			n.id = ClientNode
			n.cores = 1 << 10
			n.bwBps = cfg.ClientBandwidthMbps * 1e6 / 8
			n.execCost = 0
		}
		n.ctx = &nodeCtx{s: s, n: n}
		prov := crypto.NewSimProvider(n.id, cfg.Costs, n.ctx)
		n.crypto = prov
		n.verifier = prov
		s.nodes[i] = n
	}
	return s
}

// SetProtocol attaches the protocol instance hosted by replica i (or the
// client node when id == ClientNode).
func (s *Simulation) SetProtocol(id types.NodeID, p protocol.Protocol) {
	s.attach(s.node(id), p)
}

// attach installs a protocol on a node and, when the instance-parallel
// model is enabled and the protocol shards, sets up the per-shard lanes and
// binds the cross-shard poster (mirroring runtime.Node.SetProtocol).
func (s *Simulation) attach(n *simNode, p protocol.Protocol) {
	n.proto = p
	n.lanes, n.sp = nil, nil
	if s.cfg.InstanceWorkers > 0 {
		if sp, ok := p.(protocol.ShardedProtocol); ok {
			w := s.cfg.InstanceWorkers
			if sp.ShardCount() < w {
				w = sp.ShardCount()
			}
			// A lane is one dedicated modelled core, and the ordering lane
			// is one more — instance lanes + ordering must fit in Cores.
			if n.cores-1 < w {
				w = n.cores - 1
			}
			n.sp = sp
			if w <= 1 {
				// The single-event-loop model: one lane carries every
				// handler, the ordering stage included.
				n.lanes = make([]time.Duration, 1)
			} else {
				n.lanes = make([]time.Duration, w+1) // last = ordering lane
			}
			sp.BindShards(n.ctx)
		}
	}
}

// laneOf maps a shard id to the node's lane index.
func (n *simNode) laneOf(shard int32) int {
	w := len(n.lanes) - 1
	if w == 0 {
		return 0 // single-loop model: everything on one lane
	}
	if shard < 0 {
		return w
	}
	return int(shard) % w
}

// orderingLane is where protocol lifecycle handlers (Start) run.
func (n *simNode) orderingLane() int {
	if n.lanes == nil {
		return 0
	}
	return len(n.lanes) - 1
}

// msgLane routes one inbound message to its lane.
func (n *simNode) msgLane(msg types.Message) int {
	if n.sp == nil {
		return 0
	}
	return n.laneOf(n.sp.InstanceOf(msg))
}

// tagLane routes a timer or verification completion to its lane.
func (n *simNode) tagLane(tag protocol.TimerTag) int {
	if n.sp == nil {
		return 0
	}
	return n.laneOf(tag.Instance)
}

// SetBatchSource wires the client-load source used by NextBatch.
func (s *Simulation) SetBatchSource(src BatchSource) { s.src = src }

// Context returns the protocol.Context of a node, used by harnesses to
// construct protocol instances.
func (s *Simulation) Context(id types.NodeID) protocol.Context { return s.node(id).ctx }

func (s *Simulation) node(id types.NodeID) *simNode {
	if id == ClientNode {
		return s.nodes[s.cfg.N]
	}
	return s.nodes[int(id)]
}

// Now returns the virtual clock.
func (s *Simulation) Now() time.Duration { return s.now }

// Stats returns a copy of the run counters (the per-node slice included, so
// snapshots taken at different virtual times diff correctly).
func (s *Simulation) Stats() Stats {
	st := s.stats
	st.NodeBytesSent = append([]uint64(nil), s.stats.NodeBytesSent...)
	return st
}

// SetDown marks a replica non-responsive (attack A1) from the current
// virtual time onward: it drops all input and produces no output.
func (s *Simulation) SetDown(id types.NodeID, down bool) { s.node(id).down = down }

// Restart models a crash-recovery: the replica comes back up with a fresh
// protocol instance (all in-memory consensus state lost) built by the given
// constructor, and its Start runs under the CPU model at the current
// virtual time. Timers and verification completions scheduled by the
// previous incarnation are discarded (a crash loses its pending timers —
// without this, an untagged heartbeat like TimerRetransmit would re-arm in
// the new incarnation and double its retransmission chain forever);
// recovery then proceeds through the protocol's own state-transfer path.
// Call from a Schedule'd hook.
func (s *Simulation) Restart(id types.NodeID, build func(ctx protocol.Context) protocol.Protocol) {
	n := s.node(id)
	n.down = false
	n.gen++
	p := build(n.ctx)
	s.attach(n, p)
	s.runHandler(n, n.orderingLane(), func() { p.Start() })
}

// SetTimerSkew sets a replica's clock-drift factor (see simNode.timerSkew):
// every timer it arms from now on is stretched to (1+skew)·d, clamped at 0.
// skew 0 restores an exact clock. Call from a Schedule'd hook.
func (s *Simulation) SetTimerSkew(id types.NodeID, skew float64) {
	if skew < -0.95 {
		skew = -0.95 // keep timers strictly forward-moving
	}
	s.node(id).timerSkew = skew
}

func (n *simNode) skewTimer(d time.Duration) time.Duration {
	if n.timerSkew == 0 {
		return d
	}
	sd := time.Duration(float64(d) * (1 + n.timerSkew))
	if sd < 0 {
		return 0
	}
	return sd
}

// BlockLink drops all traffic from a to b (network partition injection).
func (s *Simulation) BlockLink(a, b types.NodeID, blocked bool) {
	key := [2]int32{s.node(a).idx, s.node(b).idx}
	if blocked {
		s.blocked[key] = true
	} else {
		delete(s.blocked, key)
	}
}

// SetDeliverHook registers an observer for every execution-layer delivery.
func (s *Simulation) SetDeliverHook(fn func(node types.NodeID, c types.Commit)) {
	s.deliverHook = fn
}

// Schedule runs fn at virtual time at (harness hooks: failure injection,
// periodic sampling).
func (s *Simulation) Schedule(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.push(event{at: at, kind: evFn, fn: fn})
}

// Start invokes Protocol.Start on every attached protocol at time zero.
func (s *Simulation) Start() {
	for _, n := range s.nodes {
		if n.proto == nil {
			continue
		}
		node := n
		s.push(event{at: 0, kind: evFn, fn: func() {
			s.runHandler(node, node.orderingLane(), func() { node.proto.Start() })
		}})
	}
}

// Run processes events until the virtual clock reaches until (exclusive) or
// the event queue drains.
func (s *Simulation) Run(until time.Duration) {
	for len(s.heap) > 0 {
		ev := s.heap[0]
		if ev.at >= until {
			s.now = until
			return
		}
		s.pop()
		s.now = ev.at
		s.stats.EventsRun++
		s.dispatch(ev)
	}
	if s.now < until {
		s.now = until
	}
}

func (s *Simulation) dispatch(ev event) {
	switch ev.kind {
	case evFn:
		ev.fn()
	case evTimer:
		n := s.nodes[ev.node]
		if n.down || n.proto == nil || ev.gen != n.gen {
			return
		}
		s.stats.TimersFired++
		tag := ev.tag
		s.runHandler(n, n.tagLane(tag), func() { n.proto.HandleTimer(tag) })
	case evDeliver:
		n := s.nodes[ev.node]
		if n.down || n.proto == nil {
			return
		}
		from := ev.from
		for _, m := range ev.msgs {
			msg := m
			s.runHandler(n, n.msgLane(msg), func() {
				// Ingress verification stage: MAC plus any declared
				// signature checks, charged as parallel CPU work ahead of
				// the protocol handler (see screen). Failing messages are
				// dropped before the state machine sees them.
				if from != n.id && !s.screen(n, from, msg) {
					return
				}
				n.proto.HandleMessage(from, msg)
			})
			if n.down { // a handler may down the node (tests)
				break
			}
		}
	case evVerified:
		n := s.nodes[ev.node]
		if n.down || n.proto == nil || ev.gen != n.gen {
			return
		}
		vc, ok := n.proto.(protocol.VerifyConsumer)
		if !ok {
			return
		}
		tag, verdict := ev.tag, ev.ok
		s.runHandler(n, n.tagLane(tag), func() { vc.HandleVerified(tag, verdict) })
	case evShardFn:
		n := s.nodes[ev.node]
		if n.down || n.proto == nil || ev.gen != n.gen {
			return
		}
		s.runHandler(n, int(ev.dest), ev.fn)
	case evFlush:
		n := s.nodes[ev.node]
		buf := &n.buffers[ev.dest]
		buf.scheduled = false
		if buf.gen == ev.gen && len(buf.msgs) > 0 {
			s.flush(n, ev.dest, s.now)
		}
	}
}

// screen runs the ingress verification stage for one inbound message: the
// transport-level MAC check plus whatever signature checks the protocol
// declared for the message (protocol.IngressVerifier). Signature batches
// are charged as parallel work across the node's verification cores
// (CostModel.Cores) instead of serializing on the event loop — the
// simulated counterpart of the runtime's worker pool. Must run inside
// runHandler. Reports whether the message may enter the state machine.
func (s *Simulation) screen(n *simNode, from types.NodeID, msg types.Message) bool {
	n.ctx.ChargeCPU(s.cfg.Costs.MAC) // pairwise MAC on every delivery (§2)
	iv, ok := n.proto.(protocol.IngressVerifier)
	if !ok {
		return true
	}
	job, needed := iv.IngressJob(from, msg)
	if !needed {
		return true
	}
	return n.verifier.VerifyBatch(job.Checks, job.Quorum)
}

// runHandler executes one protocol event handler under the CPU model and
// applies its buffered effects at the handler's finish time. The handler's
// latency is its critical-path service time (s.charge); its capacity
// consumption is its aggregate work (s.work), which exceeds the latency
// when verification batches ran on parallel virtual cores.
//
// Under the aggregate model (lanes == nil) handlers queue behind the
// node-wide capacity clock and pipeline at work/cores. Under the
// instance-parallel model each lane is one dedicated modelled core: the
// handler queues behind its own lane only and occupies it for its full
// critical path, so lanes — instances — run concurrently exactly like the
// runtime's per-shard goroutines.
func (s *Simulation) runHandler(n *simNode, lane int, fn func()) {
	start := s.now
	if n.lanes != nil {
		if n.lanes[lane] > start {
			start = n.lanes[lane]
		}
	} else if n.cpuBusyUntil > start {
		start = n.cpuBusyUntil
	}
	s.cur = n
	s.handlerStart = start
	s.charge = s.cfg.BaseHandlerCost
	s.work = s.cfg.BaseHandlerCost
	s.pendingSends = s.pendingSends[:0]
	s.pendingTimer = s.pendingTimer[:0]
	s.pendingDeliv = s.pendingDeliv[:0]
	s.pendingVerif = s.pendingVerif[:0]
	s.pendingPosts = s.pendingPosts[:0]

	fn()

	finish := start + s.charge // latency: full critical-path service time
	if n.lanes != nil {
		n.lanes[lane] = finish
	} else {
		n.cpuBusyUntil = start + s.work/time.Duration(n.cores)
	}
	s.cur = nil

	for _, d := range s.pendingDeliv {
		s.execute(n, d, finish)
	}
	for _, t := range s.pendingTimer {
		s.push(event{at: finish + n.skewTimer(t.d), kind: evTimer, node: n.idx, tag: t.tag, gen: n.gen})
	}
	for _, v := range s.pendingVerif {
		s.push(event{at: finish, kind: evVerified, node: n.idx, tag: v.tag, ok: v.ok, gen: n.gen})
	}
	for _, p := range s.pendingPosts {
		s.push(event{at: finish, kind: evShardFn, node: n.idx, dest: int32(p.lane), gen: n.gen, fn: p.fn})
	}
	for _, snd := range s.pendingSends {
		s.enqueueSend(n, snd.to, snd.msg, finish)
	}
}

// execute models sequential execution of a committed batch and the Inform
// reply to the client (§5, §6.1).
func (s *Simulation) execute(n *simNode, c types.Commit, at time.Duration) {
	if s.deliverHook != nil {
		s.deliverHook(n.id, c)
	}
	txns := 0
	if c.Batch != nil && !c.Batch.NoOp {
		txns = len(c.Batch.Txns)
	}
	startExec := at
	if n.execFreeAt > startExec {
		startExec = n.execFreeAt
	}
	done := startExec + time.Duration(txns)*n.execCost
	n.execFreeAt = done
	if txns == 0 {
		return // no-ops are not executed nor reported (§5)
	}
	inform := &types.Inform{Replica: n.id, BatchID: c.Batch.ID}
	// Charge the per-transaction bookkeeping to the core pool (aggregate
	// model) or to the ordering lane's dedicated core (lane model — the
	// ordering stage is what hands batches to execution).
	if n.lanes != nil {
		n.lanes[len(n.lanes)-1] += time.Duration(txns) * s.cfg.PerTxnCPU
	} else {
		n.cpuBusyUntil += time.Duration(txns) * s.cfg.PerTxnCPU / time.Duration(n.cores)
	}
	s.enqueueSendSized(n, ClientNode, inform, types.InformWireSize(txns), done)
}

// enqueueSend buffers msg for destination with its modelled wire size.
func (s *Simulation) enqueueSend(n *simNode, to types.NodeID, msg types.Message, at time.Duration) {
	s.enqueueSendSized(n, to, msg, msg.WireSize(), at)
}

func (s *Simulation) enqueueSendSized(n *simNode, to types.NodeID, msg types.Message, size int, at time.Duration) {
	dest := s.node(to)
	s.stats.MessagesSent++
	s.stats.BytesSent += uint64(size)
	if s.cfg.Debug {
		s.stats.MessagesByKind[fmt.Sprintf("%T", msg)]++
	}
	if dest.idx == n.idx { // self-send: direct delivery, no network
		s.push(event{at: at, kind: evDeliver, node: n.idx, from: n.id, msgs: []types.Message{msg}})
		return
	}
	if int(n.idx) < len(s.stats.NodeBytesSent) {
		s.stats.NodeBytesSent[n.idx] += uint64(size)
	}
	// Adversary layer: targeted drop or delay of replica-to-replica
	// messages (drills). Delayed messages bypass the egress buffer — the
	// point is to move one message's arrival, not to reshape batching —
	// but never the network model's own gates: a downed sender, an
	// injected partition, and packet loss still apply (evaluated here, at
	// enqueue time, where flush would evaluate them one buffer delay
	// later).
	if s.adv != nil && int(n.idx) < s.cfg.N && int(dest.idx) < s.cfg.N {
		drop, delay := s.adv.verdict(n.id, dest.id, msg)
		if drop {
			return
		}
		if delay > 0 {
			if n.down || s.blocked[[2]int32{n.idx, dest.idx}] {
				return
			}
			if s.cfg.LossRate > 0 && s.rng.Float64() < s.cfg.LossRate {
				return
			}
			s.push(event{at: at + delay + s.propDelay(n, dest), kind: evDeliver,
				node: dest.idx, from: n.id, msgs: []types.Message{msg}})
			return
		}
	}
	buf := &n.buffers[dest.idx]
	buf.msgs = append(buf.msgs, msg)
	buf.bytes += size
	if buf.bytes >= s.cfg.BufferBytes {
		s.flush(n, dest.idx, at)
		return
	}
	if !buf.scheduled {
		buf.scheduled = true
		s.push(event{at: at + s.cfg.BufferDelay, kind: evFlush, node: n.idx, dest: dest.idx, gen: buf.gen})
	}
}

// flush serializes one buffered packet onto the sender's egress link.
func (s *Simulation) flush(n *simNode, destIdx int32, at time.Duration) {
	buf := &n.buffers[destIdx]
	msgs := buf.msgs
	size := buf.bytes
	buf.msgs = nil
	buf.bytes = 0
	buf.gen++
	buf.scheduled = false
	if n.down {
		return
	}
	if s.blocked[[2]int32{n.idx, destIdx}] {
		return
	}
	if s.cfg.LossRate > 0 && s.rng.Float64() < s.cfg.LossRate {
		return
	}
	txStart := at
	if n.egressFreeAt > txStart {
		txStart = n.egressFreeAt
	}
	txEnd := txStart + time.Duration(float64(size)/n.bwBps*float64(time.Second))
	n.egressFreeAt = txEnd
	arrival := txEnd + s.propDelay(n, s.nodes[destIdx])
	if s.cfg.Jitter > 0 {
		arrival += time.Duration(s.rng.Int63n(int64(s.cfg.Jitter)))
	}
	s.stats.PacketsSent++
	s.push(event{at: arrival, kind: evDeliver, node: destIdx, from: n.id, msgs: msgs})
}

func (s *Simulation) propDelay(a, b *simNode) time.Duration {
	if a.region == b.region || s.cfg.RegionDelayMs == nil {
		return s.cfg.LocalDelay
	}
	ms := s.cfg.RegionDelayMs[a.region][b.region]
	return time.Duration(ms * float64(time.Millisecond))
}

// --- event heap (manual binary heap, stable via seq) ---

func (s *Simulation) push(ev event) {
	ev.seq = s.seq
	s.seq++
	s.heap = append(s.heap, ev)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(s.heap[i], s.heap[p]) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *Simulation) pop() {
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < last && less(s.heap[l], s.heap[sm]) {
			sm = l
		}
		if r < last && less(s.heap[r], s.heap[sm]) {
			sm = r
		}
		if sm == i {
			break
		}
		s.heap[i], s.heap[sm] = s.heap[sm], s.heap[i]
		i = sm
	}
}

func less(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// --- per-node protocol.Context ---

type nodeCtx struct {
	s *Simulation
	n *simNode
}

var _ protocol.Context = (*nodeCtx)(nil)
var _ crypto.ParallelCharger = (*nodeCtx)(nil)
var _ protocol.ShardPoster = (*nodeCtx)(nil)

// PostShard implements protocol.ShardPoster for the instance-parallel
// model: the posted function runs as its own event on the target shard's
// lane at the posting handler's finish time — the virtual-time counterpart
// of the runtime's cross-shard mailbox post. FIFO per (source, target) is
// preserved by the event heap's stable sequence numbers.
func (c *nodeCtx) PostShard(shard int32, fn func()) {
	lane := c.n.laneOf(shard)
	if c.inHandler() {
		c.s.pendingPosts = append(c.s.pendingPosts, pendingPost{lane: lane, fn: fn})
		return
	}
	c.s.push(event{at: c.s.now, kind: evShardFn, node: c.n.idx, dest: int32(lane), gen: c.n.gen, fn: fn})
}

func (c *nodeCtx) ID() types.NodeID { return c.n.id }
func (c *nodeCtx) N() int           { return c.s.cfg.N }
func (c *nodeCtx) F() int           { return (c.s.cfg.N - 1) / 3 }

func (c *nodeCtx) Now() time.Duration {
	if c.s.cur == c.n {
		return c.s.handlerStart
	}
	return c.s.now
}

func (c *nodeCtx) ChargeCPU(d time.Duration) {
	if c.s.cur == c.n {
		c.s.charge += d
		c.s.work += d
	} else {
		c.n.cpuBusyUntil += d / time.Duration(c.n.cores)
	}
}

// ChargeCPUParallel implements crypto.ParallelCharger: a verification batch
// adds only its critical-path latency to the handler's service time while
// its full aggregate work drains the node's core capacity.
func (c *nodeCtx) ChargeCPUParallel(total, critical time.Duration) {
	if c.s.cur == c.n {
		c.s.charge += critical
		c.s.work += total
	} else {
		c.n.cpuBusyUntil += total / time.Duration(c.n.cores)
	}
}

// inHandler reports whether the context's node is currently executing a
// protocol handler; effects outside handlers (harness hooks) apply at once.
func (c *nodeCtx) inHandler() bool { return c.s.cur == c.n }

func (c *nodeCtx) Send(to types.NodeID, msg types.Message) {
	if c.inHandler() {
		c.s.pendingSends = append(c.s.pendingSends, pendingSend{to: to, msg: msg})
		return
	}
	c.s.enqueueSend(c.n, to, msg, c.s.now)
}

func (c *nodeCtx) Broadcast(msg types.Message) {
	for i := 0; i < c.s.cfg.N; i++ {
		if int32(i) == c.n.idx {
			continue
		}
		c.Send(types.NodeID(i), msg)
	}
}

func (c *nodeCtx) SetTimer(d time.Duration, tag protocol.TimerTag) {
	if c.inHandler() {
		c.s.pendingTimer = append(c.s.pendingTimer, pendingTimer{d: d, tag: tag})
		return
	}
	c.s.push(event{at: c.s.now + c.n.skewTimer(d), kind: evTimer, node: c.n.idx, tag: tag, gen: c.n.gen})
}

func (c *nodeCtx) Crypto() crypto.Provider { return c.n.crypto }

// VerifyAsync implements protocol.Context. The batch is charged to the
// issuing handler as a parallel verification stage (its verdict is computed
// deterministically right away), and the completion is delivered as its own
// event at the handler's finish time — never reentrantly.
func (c *nodeCtx) VerifyAsync(job protocol.VerifyJob) {
	ok := c.n.verifier.VerifyBatch(job.Checks, job.Quorum)
	if c.inHandler() {
		c.s.pendingVerif = append(c.s.pendingVerif, pendingVerified{tag: job.Tag, ok: ok})
		return
	}
	c.s.push(event{at: c.s.now, kind: evVerified, node: c.n.idx, tag: job.Tag, ok: ok, gen: c.n.gen})
}

func (c *nodeCtx) Deliver(commit types.Commit) {
	if c.inHandler() {
		c.s.pendingDeliv = append(c.s.pendingDeliv, commit)
		return
	}
	c.s.execute(c.n, commit, c.s.now)
}

func (c *nodeCtx) NextBatch(instance int32) *types.Batch {
	if c.s.src == nil {
		return nil
	}
	return c.s.src.Next(instance, c.Now())
}

func (c *nodeCtx) Logf(format string, args ...any) {
	if c.s.cfg.Debug {
		fmt.Printf("[%8.3fms n%d] %s\n", float64(c.Now())/float64(time.Millisecond), c.n.id, fmt.Sprintf(format, args...))
	}
}
