package simnet

import (
	"testing"
	"time"

	"spotless/internal/types"
)

func chaosCfg(profile string, seed int64) ChaosConfig {
	return ChaosConfig{
		Profile: profile,
		Seed:    seed,
		N:       4,
		Start:   200 * time.Millisecond,
		End:     2 * time.Second,
		Restart: func(types.NodeID) {}, // satisfies ProfileCrash validation
	}
}

// TestChaosPlanDeterministic: the episode plan is a pure function of
// (profile, seed) — same inputs, identical records.
func TestChaosPlanDeterministic(t *testing.T) {
	for _, profile := range ChaosProfiles {
		a, err := New(DefaultConfig(4)).InstallChaos(chaosCfg(profile, 7))
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(DefaultConfig(4)).InstallChaos(chaosCfg(profile, 7))
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: plan lengths differ: %d vs %d", profile, len(a), len(b))
		}
		for i := range a {
			if a[i].Kind != b[i].Kind || a[i].At != b[i].At || a[i].Heal != b[i].Heal || len(a[i].Victims) != len(b[i].Victims) {
				t.Fatalf("%s: episode %d differs: %+v vs %+v", profile, i, a[i], b[i])
			}
		}
	}
}

// TestChaosPlanShape: every profile plans non-overlapping episodes inside
// the injection window, with victims drawn within the fault bound.
func TestChaosPlanShape(t *testing.T) {
	cfg := DefaultConfig(4)
	f := (4 - 1) / 3
	for _, profile := range ChaosProfiles {
		for seed := int64(1); seed <= 5; seed++ {
			ccfg := chaosCfg(profile, seed)
			plan, err := New(cfg).InstallChaos(ccfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(plan) == 0 {
				t.Fatalf("%s seed %d: empty plan over a %v window", profile, seed, ccfg.End-ccfg.Start)
			}
			prevHeal := time.Duration(0)
			for i, rec := range plan {
				if rec.At < ccfg.Start || rec.Heal > ccfg.End {
					t.Fatalf("%s seed %d: episode %d [%v, %v] outside window [%v, %v]", profile, seed, i, rec.At, rec.Heal, ccfg.Start, ccfg.End)
				}
				if rec.Heal <= rec.At {
					t.Fatalf("%s seed %d: episode %d heals before it starts", profile, seed, i)
				}
				if rec.At < prevHeal {
					t.Fatalf("%s seed %d: episode %d overlaps the previous one", profile, seed, i)
				}
				prevHeal = rec.Heal
				if len(rec.Victims) == 0 {
					t.Fatalf("%s seed %d: episode %d has no victims", profile, seed, i)
				}
				if rec.Kind == ProfilePartitions && len(rec.Victims) > f {
					t.Fatalf("%s seed %d: episode %d partitions %d > f victims", profile, seed, i, len(rec.Victims))
				}
				if profile != ProfileMixed && rec.Kind != profile {
					t.Fatalf("%s seed %d: episode %d has kind %s", profile, seed, i, rec.Kind)
				}
			}
		}
	}
}

// TestChaosUnknownProfile: a typo'd profile errors instead of silently
// running a fault-free soak.
func TestChaosUnknownProfile(t *testing.T) {
	if _, err := New(DefaultConfig(4)).InstallChaos(chaosCfg("partition", 1)); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestChaosCrashRequiresRestart: a crash plan without a rebuild callback is
// a configuration error — healing a kill-9 victim needs the harness's
// protocol constructor, and silently never restarting it would turn the
// soak into a permanent-failure run.
func TestChaosCrashRequiresRestart(t *testing.T) {
	cfg := chaosCfg(ProfileCrash, 1)
	cfg.Restart = nil
	if _, err := New(DefaultConfig(4)).InstallChaos(cfg); err == nil {
		t.Fatal("crash profile accepted without a Restart callback")
	}
}

// TestChaosCrashDownsAndRestarts: crash episodes actually take the victim
// dark at the fault point and hand exactly that victim to the Restart
// callback at the heal point, in plan order.
func TestChaosCrashDownsAndRestarts(t *testing.T) {
	s := New(DefaultConfig(4))
	cfg := chaosCfg(ProfileCrash, 3)
	var restarted []types.NodeID
	cfg.Restart = func(id types.NodeID) {
		if !s.node(id).down {
			t.Errorf("restart callback for node %d fired while it was still up", id)
		}
		s.node(id).down = false
		restarted = append(restarted, id)
	}
	plan, err := s.InstallChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(cfg.End + 100*time.Millisecond)
	if len(restarted) != len(plan) {
		t.Fatalf("restarted %d victims, plan has %d crash episodes", len(restarted), len(plan))
	}
	for i, rec := range plan {
		if rec.Kind != ProfileCrash || len(rec.Victims) != 1 {
			t.Fatalf("episode %d is %+v, want a single-victim crash", i, rec)
		}
		if restarted[i] != rec.Victims[0] {
			t.Fatalf("episode %d restarted %d, plan names %d", i, restarted[i], rec.Victims[0])
		}
	}
	for i := 0; i < 4; i++ {
		if s.node(types.NodeID(i)).down {
			t.Fatalf("node %d left dark after the final heal", i)
		}
	}
}

// TestTimerSkewStretchesTimers: a skewed node's timers fire late by the
// configured factor; resetting the skew restores exact timing.
func TestTimerSkewStretchesTimers(t *testing.T) {
	s := New(DefaultConfig(4))
	s.SetTimerSkew(1, 1.0) // 2× slow clock
	n := s.node(1)
	if got := n.skewTimer(10 * time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("skew 1.0: got %v want 20ms", got)
	}
	s.SetTimerSkew(1, -0.5)
	if got := n.skewTimer(10 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("skew -0.5: got %v want 5ms", got)
	}
	s.SetTimerSkew(1, -2)
	if got := n.skewTimer(10 * time.Millisecond); got <= 0 {
		t.Fatalf("extreme negative skew must clamp above zero, got %v", got)
	}
	s.SetTimerSkew(1, 0)
	if got := n.skewTimer(10 * time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("cleared skew: got %v want 10ms", got)
	}
}
