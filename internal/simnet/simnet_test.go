package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"spotless/internal/protocol"
	"spotless/internal/types"
)

// echoProto records receptions and can reply.
type echoProto struct {
	ctx      protocol.Context
	got      []types.Message
	gotAt    []time.Duration
	timers   []protocol.TimerTag
	timersAt []time.Duration
}

func (p *echoProto) Start() {}
func (p *echoProto) HandleMessage(from types.NodeID, m types.Message) {
	p.got = append(p.got, m)
	p.gotAt = append(p.gotAt, p.ctx.Now())
}
func (p *echoProto) HandleTimer(tag protocol.TimerTag) {
	p.timers = append(p.timers, tag)
	p.timersAt = append(p.timersAt, p.ctx.Now())
}

type starter struct {
	echoProto
	run func(ctx protocol.Context)
}

func (s *starter) Start() { s.run(s.ctx) }

// TestDeliveryLatencyModel: a single message experiences propagation +
// serialization + buffering delay.
func TestDeliveryLatencyModel(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Jitter = 0
	cfg.BufferDelay = 100 * time.Microsecond
	cfg.LocalDelay = 250 * time.Microsecond
	cfg.BaseHandlerCost = 0
	sim := New(cfg)
	sender := &starter{}
	sender.ctx = sim.Context(0)
	sender.run = func(ctx protocol.Context) { ctx.Send(1, &types.Ask{}) }
	recv := &echoProto{ctx: sim.Context(1)}
	sim.SetProtocol(0, sender)
	sim.SetProtocol(1, recv)
	sim.Start()
	sim.Run(10 * time.Millisecond)
	if len(recv.got) != 1 {
		t.Fatalf("got %d messages, want 1", len(recv.got))
	}
	at := recv.gotAt[0]
	ser := time.Duration(float64(types.ControlMsgSize) / (cfg.BandwidthMbps * 1e6 / 8) * float64(time.Second))
	min := cfg.BufferDelay + cfg.LocalDelay
	max := min + ser + 200*time.Microsecond
	if at < min || at > max {
		t.Fatalf("delivery at %v, want within [%v, %v]", at, min, max)
	}
}

// TestBandwidthSerialization: back-to-back large messages queue on the
// sender's egress link, spacing arrivals by size/bandwidth.
func TestBandwidthSerialization(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Jitter = 0
	cfg.BandwidthMbps = 8 // 1 MB/s → 1 ms per KB
	cfg.BufferBytes = 1   // no coalescing
	cfg.BaseHandlerCost = 0
	sim := New(cfg)
	big := &types.Request{Batch: &types.Batch{Txns: make([]types.Transaction, 60)}} // ≈1332 B
	sender := &starter{}
	sender.ctx = sim.Context(0)
	sender.run = func(ctx protocol.Context) {
		ctx.Send(1, big)
		ctx.Send(1, big)
	}
	recv := &echoProto{ctx: sim.Context(1)}
	sim.SetProtocol(0, sender)
	sim.SetProtocol(1, recv)
	sim.Start()
	sim.Run(100 * time.Millisecond)
	if len(recv.got) != 2 {
		t.Fatalf("got %d messages, want 2", len(recv.got))
	}
	gap := recv.gotAt[1] - recv.gotAt[0]
	wantGap := time.Duration(float64(big.WireSize()) / (1 << 20) * float64(time.Second))
	if gap < wantGap*8/10 || gap > wantGap*12/10 {
		t.Fatalf("serialization gap %v, want ≈%v", gap, wantGap)
	}
}

// TestMessageBufferingCoalesces: many small messages sent together ride one
// packet.
func TestMessageBufferingCoalesces(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.BufferBytes = 1 << 20
	cfg.BufferDelay = time.Millisecond
	sim := New(cfg)
	sender := &starter{}
	sender.ctx = sim.Context(0)
	sender.run = func(ctx protocol.Context) {
		for i := 0; i < 10; i++ {
			ctx.Send(1, &types.Ask{Instance: int32(i)})
		}
	}
	recv := &echoProto{ctx: sim.Context(1)}
	sim.SetProtocol(0, sender)
	sim.SetProtocol(1, recv)
	sim.Start()
	sim.Run(50 * time.Millisecond)
	st := sim.Stats()
	if st.PacketsSent != 1 {
		t.Fatalf("packets: got %d want 1 (buffering)", st.PacketsSent)
	}
	if len(recv.got) != 10 {
		t.Fatalf("messages: got %d want 10", len(recv.got))
	}
}

// TestTimerOrdering: timers fire in order at their deadlines.
func TestTimerOrdering(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.BaseHandlerCost = 0
	sim := New(cfg)
	p := &starter{}
	p.ctx = sim.Context(0)
	p.run = func(ctx protocol.Context) {
		ctx.SetTimer(5*time.Millisecond, protocol.TimerTag{Kind: 2})
		ctx.SetTimer(1*time.Millisecond, protocol.TimerTag{Kind: 1})
		ctx.SetTimer(9*time.Millisecond, protocol.TimerTag{Kind: 3})
	}
	sim.SetProtocol(0, p)
	sim.Start()
	sim.Run(20 * time.Millisecond)
	if len(p.timers) != 3 {
		t.Fatalf("timers fired: %d, want 3", len(p.timers))
	}
	for i, want := range []int{1, 2, 3} {
		if p.timers[i].Kind != want {
			t.Fatalf("timer order: got %v", p.timers)
		}
	}
	if p.timersAt[0] < time.Millisecond || p.timersAt[2] < 9*time.Millisecond {
		t.Fatalf("timer deadlines violated: %v", p.timersAt)
	}
}

// TestDownNodeDropsEverything: a downed node neither receives nor sends.
func TestDownNodeDropsEverything(t *testing.T) {
	cfg := DefaultConfig(2)
	sim := New(cfg)
	sender := &starter{}
	sender.ctx = sim.Context(0)
	sender.run = func(ctx protocol.Context) { ctx.Send(1, &types.Ask{}) }
	recv := &echoProto{ctx: sim.Context(1)}
	sim.SetProtocol(0, sender)
	sim.SetProtocol(1, recv)
	sim.SetDown(1, true)
	sim.Start()
	sim.Run(10 * time.Millisecond)
	if len(recv.got) != 0 {
		t.Fatal("downed node processed a message")
	}
}

// TestBlockedLinkAndHeal: partitions drop traffic until unblocked.
func TestBlockedLinkAndHeal(t *testing.T) {
	cfg := DefaultConfig(2)
	sim := New(cfg)
	sender := &starter{}
	sender.ctx = sim.Context(0)
	sender.run = func(ctx protocol.Context) { ctx.Send(1, &types.Ask{Instance: 1}) }
	recv := &echoProto{ctx: sim.Context(1)}
	sim.SetProtocol(0, sender)
	sim.SetProtocol(1, recv)
	sim.BlockLink(0, 1, true)
	sim.Start()
	sim.Run(5 * time.Millisecond)
	if len(recv.got) != 0 {
		t.Fatal("blocked link delivered")
	}
	sim.BlockLink(0, 1, false)
	sim.Schedule(sim.Now(), func() {
		sim.node(0).ctx.Send(1, &types.Ask{Instance: 2})
	})
	sim.Run(20 * time.Millisecond)
	// The first message was dropped permanently; only the second arrives.
	if len(recv.got) != 1 {
		t.Fatalf("after heal: got %d messages, want 1", len(recv.got))
	}
}

// TestDeterminism: identical configs and seeds produce identical event
// counts and stats (property-based over seeds).
func TestDeterminism(t *testing.T) {
	runOnce := func(seed int64) Stats {
		cfg := DefaultConfig(3)
		cfg.Seed = seed
		cfg.Jitter = 100 * time.Microsecond
		sim := New(cfg)
		p := &starter{}
		p.ctx = sim.Context(0)
		p.run = func(ctx protocol.Context) {
			for i := 0; i < 50; i++ {
				ctx.Broadcast(&types.Ask{Instance: int32(i)})
				ctx.SetTimer(time.Duration(i)*100*time.Microsecond, protocol.TimerTag{Kind: i})
			}
		}
		sim.SetProtocol(0, p)
		sim.SetProtocol(1, &echoProto{ctx: sim.Context(1)})
		sim.SetProtocol(2, &echoProto{ctx: sim.Context(2)})
		sim.Start()
		sim.Run(100 * time.Millisecond)
		s := sim.Stats()
		s.MessagesByKind = nil
		return s
	}
	prop := func(seed int64) bool {
		a, b := runOnce(seed), runOnce(seed)
		return a.MessagesSent == b.MessagesSent && a.PacketsSent == b.PacketsSent &&
			a.BytesSent == b.BytesSent && a.EventsRun == b.EventsRun && a.TimersFired == b.TimersFired
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestRegionDelays: cross-region delivery honors the delay matrix.
func TestRegionDelays(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Jitter = 0
	cfg.BufferDelay = 0
	cfg.Regions = []int{0, 1}
	cfg.RegionDelayMs = [][]float64{{0.1, 30}, {30, 0.1}}
	sim := New(cfg)
	sender := &starter{}
	sender.ctx = sim.Context(0)
	sender.run = func(ctx protocol.Context) { ctx.Send(1, &types.Ask{}) }
	recv := &echoProto{ctx: sim.Context(1)}
	sim.SetProtocol(0, sender)
	sim.SetProtocol(1, recv)
	sim.Start()
	sim.Run(100 * time.Millisecond)
	if len(recv.got) != 1 {
		t.Fatal("no delivery")
	}
	if recv.gotAt[0] < 30*time.Millisecond {
		t.Fatalf("cross-region delivery at %v, want ≥ 30ms", recv.gotAt[0])
	}
}

// TestCPUQueueing: expensive handlers delay subsequent processing
// (latency = full cost; capacity = cores × time).
func TestCPUQueueing(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Cores = 2
	cfg.BaseHandlerCost = 10 * time.Millisecond
	cfg.BufferBytes = 1
	cfg.Jitter = 0
	sim := New(cfg)
	sender := &starter{}
	sender.ctx = sim.Context(0)
	sender.run = func(ctx protocol.Context) {
		for i := 0; i < 4; i++ {
			ctx.Send(1, &types.Ask{Instance: int32(i)})
		}
	}
	recv := &echoProto{ctx: sim.Context(1)}
	sim.SetProtocol(0, sender)
	sim.SetProtocol(1, recv)
	sim.Start()
	sim.Run(200 * time.Millisecond)
	if len(recv.got) != 4 {
		t.Fatalf("got %d messages", len(recv.got))
	}
	// With 2 cores and 10 ms per handler, the 4th message starts ≥ 15 ms
	// after the 1st (10ms/2 per accumulated slot).
	spread := recv.gotAt[3] - recv.gotAt[0]
	if spread < 10*time.Millisecond {
		t.Fatalf("CPU queueing spread %v, want ≥ 10ms", spread)
	}
}

// shardedEcho is a minimal protocol.ShardedProtocol: Sync messages route by
// their Instance field, receptions record their handling start time, and
// every reception posts a completion onto the ordering shard.
type shardedEcho struct {
	echoProto
	m     int
	post  protocol.ShardPoster
	onOrd []time.Duration // ordering-shard post execution times
}

func (p *shardedEcho) ShardCount() int { return p.m }
func (p *shardedEcho) InstanceOf(msg types.Message) int32 {
	if s, ok := msg.(*types.Sync); ok {
		return s.Instance
	}
	return protocol.OrderingShard
}
func (p *shardedEcho) BindShards(post protocol.ShardPoster) { p.post = post }
func (p *shardedEcho) HandleMessage(from types.NodeID, m types.Message) {
	p.echoProto.HandleMessage(from, m)
	if p.post != nil {
		p.post.PostShard(protocol.OrderingShard, func() {
			p.onOrd = append(p.onOrd, p.ctx.Now())
		})
	}
}

// TestInstanceLanesRunConcurrently: under the instance-parallel model,
// handlers of different instances do not queue behind each other while
// handlers of one instance stay serialized — and cross-shard posts all
// execute, serialized, on the ordering lane.
func TestInstanceLanesRunConcurrently(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Jitter = 0
	cfg.BufferBytes = 1 // flush every message as its own packet
	cfg.BufferDelay = 0
	cfg.BaseHandlerCost = time.Millisecond
	cfg.InstanceWorkers = 2
	sim := New(cfg)

	sender := &starter{}
	sender.ctx = sim.Context(0)
	sender.run = func(ctx protocol.Context) {
		for i := 0; i < 2; i++ {
			ctx.Send(1, &types.Sync{Instance: 0})
			ctx.Send(1, &types.Sync{Instance: 1})
		}
	}
	recv := &shardedEcho{m: 2}
	recv.ctx = sim.Context(1)
	sim.SetProtocol(0, sender)
	sim.SetProtocol(1, recv)
	if recv.post == nil {
		t.Fatal("sharded protocol was not bound to the lane poster")
	}
	sim.Start()
	sim.Run(100 * time.Millisecond)

	if len(recv.got) != 4 {
		t.Fatalf("got %d messages, want 4", len(recv.got))
	}
	// Two lanes: the first message of each instance starts immediately, the
	// second queues behind its lane's 1 ms handler — so exactly two handlers
	// start within the first half millisecond. A serial loop would start
	// only one; the aggregate model would pipeline all four.
	first, latest := recv.gotAt[0], recv.gotAt[0]
	for _, at := range recv.gotAt {
		if at < first {
			first = at
		}
		if at > latest {
			latest = at
		}
	}
	early := 0
	for _, at := range recv.gotAt {
		if at < first+500*time.Microsecond {
			early++
		}
	}
	if early != 2 {
		t.Fatalf("%d handlers started within 0.5 ms of the first, want 2 (one per lane); times: %v", early, recv.gotAt)
	}
	if latest > first+1500*time.Microsecond {
		t.Fatalf("lanes serialized too much: handlers spanned %v", latest-first)
	}
	if len(recv.onOrd) != 4 {
		t.Fatalf("ordering lane executed %d posts, want 4", len(recv.onOrd))
	}
}
