package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"spotless/internal/types"
)

// This file grows the seeded adversary into a soak/chaos subsystem: named
// long-running fault profiles — churning partitions, gray failures that
// drop a fraction of one replica's links, clock/timer skew — compiled from
// a seed into an explicit episode plan and installed as Schedule'd hooks.
// The plan is returned to the harness, so per-fault instrumentation
// (time-to-resync, commits-lost-per-fault; see bench.RunSoak) measures
// against the exact fault windows the simulation will execute: the same
// (profile, seed) pair replays the same chaos bit-for-bit on any host.

// Chaos profile names (see ChaosProfiles).
const (
	// ProfilePartitions churns minority partitions: up to f replicas are
	// repeatedly cut off from the rest and healed.
	ProfilePartitions = "partitions"
	// ProfileGray injects gray failures: one replica keeps a fraction of
	// its links silently dropping a fraction of messages — alive enough to
	// count toward quorums, broken enough to stall them.
	ProfileGray = "gray"
	// ProfileSkew drifts one replica's timer clock by ±25–75%, making it
	// under- or over-react to stalls relative to the rest of the cluster.
	ProfileSkew = "skew"
	// ProfileMixed rotates among the three fault kinds episode by episode.
	ProfileMixed = "mixed"
	// ProfileCrash kill-9s one replica per episode — it goes fully dark at
	// the fault (all in-memory consensus state lost) and is rebuilt at the
	// heal through ChaosConfig.Restart, rejoining via state transfer.
	ProfileCrash = "crash"
)

// ChaosProfiles lists the built-in soak profiles in display order. Crash is
// listed last: ProfileMixed draws episode kinds from the first three, so
// appending keeps every existing (profile, seed) plan bit-identical.
var ChaosProfiles = []string{ProfilePartitions, ProfileGray, ProfileSkew, ProfileMixed, ProfileCrash}

// ChaosConfig parameterizes one seeded chaos plan.
type ChaosConfig struct {
	Profile string
	Seed    int64
	N       int // replica count (victims are drawn from [0, N))
	// Fault episodes are planned inside [Start, End): the first fault
	// lands at or after Start, every heal lands before End, so the run
	// tail past End measures the last resync.
	Start, End time.Duration
	// MeanFault/MeanGap set the average episode length and inter-episode
	// gap; each is jittered ±50% per episode. Defaults: 120ms / 150ms.
	MeanFault time.Duration
	MeanGap   time.Duration
	// Restart rebuilds a crashed replica at a crash episode's heal point —
	// required by ProfileCrash, which otherwise fails InstallChaos. The
	// callback runs inside the simulation loop and should call
	// Simulation.Restart with the same protocol constructor used at setup
	// (the amnesiac-rejoin model: all in-memory state lost, recovery through
	// state transfer).
	Restart func(types.NodeID)
}

// FaultRecord is one planned fault episode: the harness measures
// time-to-resync from Heal and commit loss across [At, Heal].
type FaultRecord struct {
	Kind    string
	Victims []types.NodeID
	At      time.Duration
	Heal    time.Duration
}

// InstallChaos compiles the seeded episode plan for cfg and schedules its
// inject/heal hooks on the simulation. Call once, before Run; the returned
// plan is sorted by At and never mutated afterwards.
func (s *Simulation) InstallChaos(cfg ChaosConfig) ([]FaultRecord, error) {
	valid := false
	for _, p := range ChaosProfiles {
		if p == cfg.Profile {
			valid = true
		}
	}
	if !valid {
		return nil, fmt.Errorf("unknown chaos profile %q (have %v)", cfg.Profile, ChaosProfiles)
	}
	if cfg.Profile == ProfileCrash && cfg.Restart == nil {
		return nil, fmt.Errorf("chaos profile %q requires a Restart callback", ProfileCrash)
	}
	if cfg.N <= 0 {
		cfg.N = s.cfg.N
	}
	if cfg.MeanFault <= 0 {
		cfg.MeanFault = 120 * time.Millisecond
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = 150 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := (cfg.N - 1) / 3

	var plan []FaultRecord
	kind := cfg.Profile
	at := cfg.Start + jitter(rng, cfg.MeanGap)/2
	for {
		dur := jitter(rng, cfg.MeanFault)
		if at+dur >= cfg.End {
			break
		}
		if cfg.Profile == ProfileMixed {
			kind = ChaosProfiles[rng.Intn(3)]
		}
		rec := FaultRecord{Kind: kind, At: at, Heal: at + dur}
		switch kind {
		case ProfilePartitions:
			k := 1
			if f > 1 {
				k += rng.Intn(f)
			}
			rec.Victims = pickVictims(rng, cfg.N, k)
			s.schedulePartition(rec.Victims, cfg.N, rec.At, rec.Heal)
		case ProfileGray:
			rec.Victims = pickVictims(rng, cfg.N, 1)
			s.scheduleGray(rng, rec.Victims[0], cfg.N, rec.At, rec.Heal)
		case ProfileSkew:
			rec.Victims = pickVictims(rng, cfg.N, 1)
			skew := 0.25 + 0.5*rng.Float64()
			if rng.Intn(2) == 0 {
				skew = -skew
			}
			s.scheduleSkew(rec.Victims[0], skew, rec.At, rec.Heal)
		case ProfileCrash:
			rec.Victims = pickVictims(rng, cfg.N, 1)
			s.scheduleCrash(rec.Victims[0], cfg.Restart, rec.At, rec.Heal)
		}
		plan = append(plan, rec)
		at = rec.Heal + jitter(rng, cfg.MeanGap)
	}
	return plan, nil
}

// jitter draws a duration uniformly from [0.5·mean, 1.5·mean).
func jitter(rng *rand.Rand, mean time.Duration) time.Duration {
	return mean/2 + time.Duration(rng.Int63n(int64(mean)))
}

// pickVictims draws k distinct replica ids.
func pickVictims(rng *rand.Rand, n, k int) []types.NodeID {
	perm := rng.Perm(n)
	v := make([]types.NodeID, k)
	for i := range v {
		v[i] = types.NodeID(perm[i])
	}
	return v
}

// schedulePartition cuts every link between the victim set and the rest
// (both directions) at `at` and restores them at `heal`. Victims stay
// connected to each other — a genuine two-component partition.
func (s *Simulation) schedulePartition(victims []types.NodeID, n int, at, heal time.Duration) {
	inSet := make(map[types.NodeID]bool, len(victims))
	for _, v := range victims {
		inSet[v] = true
	}
	set := func(blocked bool) {
		for _, v := range victims {
			for o := 0; o < n; o++ {
				if oid := types.NodeID(o); !inSet[oid] {
					s.BlockLink(v, oid, blocked)
					s.BlockLink(oid, v, blocked)
				}
			}
		}
	}
	s.Schedule(at, func() { set(true) })
	s.Schedule(heal, func() { set(false) })
}

// scheduleGray installs probabilistic drop rules on a random non-empty
// subset of the victim's links (each affected link drops a fraction
// p ∈ [0.3, 0.9) of messages, both directions) and uninstalls them at heal.
// The victim stays partially reachable — the classic gray failure that
// never trips a liveness alarm outright.
func (s *Simulation) scheduleGray(rng *rand.Rand, victim types.NodeID, n int, at, heal time.Duration) {
	if s.adv == nil {
		s.adv = NewAdversary(rng.Int63())
	}
	p := 0.3 + 0.6*rng.Float64()
	var peers []int
	for o := 0; o < n; o++ {
		if types.NodeID(o) != victim && rng.Intn(2) == 0 {
			peers = append(peers, o)
		}
	}
	if len(peers) == 0 {
		peers = append(peers, (int(victim)+1)%n)
	}
	var rules []AdvRule
	for _, o := range peers {
		rules = append(rules,
			AdvRule{From: int(victim), To: o, Instance: -1, Drop: true, Prob: p},
			AdvRule{From: o, To: int(victim), Instance: -1, Drop: true, Prob: p})
	}
	var tokens []uint64
	s.Schedule(at, func() {
		for _, r := range rules {
			tokens = append(tokens, s.adv.Install(r))
		}
	})
	s.Schedule(heal, func() {
		for _, t := range tokens {
			s.adv.Uninstall(t)
		}
	})
}

// scheduleCrash kill-9s the victim at `at` (fully dark: drops all input,
// produces nothing, loses every pending timer when rebuilt) and hands it to
// the harness's Restart callback at `heal` — the amnesiac-rejoin model,
// where recovery runs through the protocol's own state-transfer path.
func (s *Simulation) scheduleCrash(victim types.NodeID, restart func(types.NodeID), at, heal time.Duration) {
	s.Schedule(at, func() { s.SetDown(victim, true) })
	s.Schedule(heal, func() { restart(victim) })
}

// scheduleSkew drifts the victim's timer clock by the given factor over
// [at, heal).
func (s *Simulation) scheduleSkew(victim types.NodeID, skew float64, at, heal time.Duration) {
	s.Schedule(at, func() { s.SetTimerSkew(victim, skew) })
	s.Schedule(heal, func() { s.SetTimerSkew(victim, 0) })
}
