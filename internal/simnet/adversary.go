package simnet

import (
	"math/rand"
	"time"

	"spotless/internal/types"
)

// This file is the deterministic adversary layer: seeded, targeted control
// of the message schedule — per-(sender, receiver, instance, view, kind)
// delay, drop, and partition rules applied before a message enters the
// network model. Together with the simulator's virtual clock it turns
// real-time scheduling accidents (the PR 4 divergence recipe was a ~1-in-10
// `-race` flake) into seeded, always-reproducible drills: the same seed
// replays the same schedule bit-for-bit, on any host.
//
// The adversary shapes only the schedule; Byzantine *content* (equivocating
// proposals and claims, withheld votes) is the protocol-level Behavior
// configuration (internal/protocol.Behavior), which the safety drill
// composes with scheduler rules per seed.

// MsgClass selects protocol message kinds in adversary rules (bitmask).
type MsgClass uint8

const (
	ClassPropose MsgClass = 1 << iota
	ClassSync
	ClassAsk
	ClassOther // checkpoint, state transfer, informs, …

	ClassAny MsgClass = 0 // zero value: match every kind
)

// classify extracts the targeting key of one message: its class and, for
// the per-instance consensus messages, the (instance, view) it belongs to.
func classify(msg types.Message) (class MsgClass, instance int32, view types.View) {
	switch m := msg.(type) {
	case *types.Propose:
		return ClassPropose, m.Instance, m.View
	case *types.Sync:
		return ClassSync, m.Instance, m.View
	case *types.Ask:
		return ClassAsk, m.Instance, m.View
	default:
		return ClassOther, -1, 0
	}
}

// AdvRule is one targeting rule. Zero values are wildcards (From/To/Instance
// use −1 for "any" since 0 is a valid id); the first matching rule decides.
type AdvRule struct {
	From, To int   // replica ids, −1 = any
	Instance int32 // −1 = any
	// View window (inclusive). ViewLo == ViewHi == 0 matches any view;
	// ViewHi == 0 with ViewLo > 0 is unbounded above.
	ViewLo, ViewHi types.View
	Classes        MsgClass // bitmask; ClassAny (0) = every kind

	// Prob applies the action with this probability per message, drawn from
	// the adversary's own seeded stream (≤ 0 or ≥ 1: always).
	Prob float64

	Drop  bool          // drop the message (targeted loss / partition)
	Delay time.Duration // extra delivery delay, bypassing the egress buffer
}

func (r *AdvRule) matches(from, to types.NodeID, class MsgClass, instance int32, view types.View) bool {
	if r.From >= 0 && types.NodeID(r.From) != from {
		return false
	}
	if r.To >= 0 && types.NodeID(r.To) != to {
		return false
	}
	if r.Instance >= 0 && r.Instance != instance {
		return false
	}
	if r.Classes != ClassAny && r.Classes&class == 0 {
		return false
	}
	if r.ViewLo != 0 || r.ViewHi != 0 {
		if view < r.ViewLo {
			return false
		}
		if r.ViewHi != 0 && view > r.ViewHi {
			return false
		}
	}
	return true
}

// Adversary applies a rule list to every replica-to-replica message. It
// draws coin flips from its own seeded RNG, independent of the simulation's
// network RNG, so a drill's schedule is a pure function of (sim seed,
// adversary seed, rules).
type Adversary struct {
	rng   *rand.Rand
	Rules []AdvRule

	// dynamic holds rules installed mid-run by the chaos layer (see
	// chaos.go), evaluated after the static Rules. Install/Uninstall pair
	// through opaque tokens so overlapping fault episodes tear down only
	// their own rules.
	dynamic []advEntry
	nextID  uint64

	// Counters for drill reports.
	Dropped, Delayed uint64
}

type advEntry struct {
	id   uint64
	rule AdvRule
}

// Install appends a rule mid-run and returns its removal token.
func (a *Adversary) Install(rule AdvRule) uint64 {
	a.nextID++
	a.dynamic = append(a.dynamic, advEntry{id: a.nextID, rule: rule})
	return a.nextID
}

// Uninstall removes a rule installed with Install; unknown tokens no-op.
func (a *Adversary) Uninstall(token uint64) {
	for i := range a.dynamic {
		if a.dynamic[i].id == token {
			a.dynamic = append(a.dynamic[:i], a.dynamic[i+1:]...)
			return
		}
	}
}

// NewAdversary builds an adversary with an explicit rule list.
func NewAdversary(seed int64, rules ...AdvRule) *Adversary {
	return &Adversary{rng: rand.New(rand.NewSource(seed)), Rules: rules}
}

// verdict decides the fate of one message: the first matching rule —
// static rules first, then chaos-installed dynamic ones — wins, even when
// its probability coin comes up pass.
func (a *Adversary) verdict(from, to types.NodeID, msg types.Message) (drop bool, delay time.Duration) {
	class, instance, view := classify(msg)
	for i := range a.Rules {
		if r := &a.Rules[i]; r.matches(from, to, class, instance, view) {
			return a.apply(r)
		}
	}
	for i := range a.dynamic {
		if r := &a.dynamic[i].rule; r.matches(from, to, class, instance, view) {
			return a.apply(r)
		}
	}
	return false, 0
}

func (a *Adversary) apply(r *AdvRule) (drop bool, delay time.Duration) {
	if r.Prob > 0 && r.Prob < 1 && a.rng.Float64() >= r.Prob {
		return false, 0
	}
	if r.Drop {
		a.Dropped++
		return true, 0
	}
	if r.Delay > 0 {
		a.Delayed++
		return false, r.Delay
	}
	return false, 0
}

// RandomAdversary derives a targeted schedule profile from a seed: a few
// delay/drop/partition rules aimed at the consensus fast path — splitting
// claim propagation across view windows is exactly the shape that drove the
// A3 fork (one replica certifies a chain the rest never see complete).
// n and m bound the replica ids and instances the rules target.
func RandomAdversary(seed int64, n, m int) *Adversary {
	rng := rand.New(rand.NewSource(seed))
	k := 2 + rng.Intn(4)
	rules := make([]AdvRule, 0, k)
	for i := 0; i < k; i++ {
		r := AdvRule{From: -1, To: -1, Instance: -1}
		// Bias toward Sync traffic: claims are what resolution hangs off.
		switch rng.Intn(10) {
		case 0, 1, 2:
			r.Classes = ClassPropose
		case 3, 4, 5, 6, 7:
			r.Classes = ClassSync
		default:
			r.Classes = ClassPropose | ClassSync
		}
		// Half the rules pin a sender, half a receiver; a quarter both —
		// directed-link partitions and one-sided delivery gaps.
		if rng.Intn(2) == 0 {
			r.From = rng.Intn(n)
		}
		if rng.Intn(2) == 0 {
			r.To = rng.Intn(n)
		}
		if rng.Intn(2) == 0 && m > 1 {
			r.Instance = int32(rng.Intn(m))
		}
		lo := 2 + rng.Intn(30)
		r.ViewLo = types.View(lo)
		r.ViewHi = types.View(lo + 1 + rng.Intn(8))
		if rng.Intn(5) < 2 {
			r.Drop = true
		} else {
			r.Delay = time.Duration(3+rng.Intn(60)) * time.Millisecond
		}
		if rng.Intn(4) == 0 {
			r.Prob = 0.5
		}
		rules = append(rules, r)
	}
	return &Adversary{rng: rng, Rules: rules}
}

// SetAdversary installs (or clears) the adversary shaping replica-to-replica
// traffic. The client node's traffic is never shaped: drills target the
// consensus schedule, not the load loop.
func (s *Simulation) SetAdversary(a *Adversary) { s.adv = a }
