package ycsb

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"spotless/internal/types"
)

// populated builds a store with a spread of applied writes so snapshots have
// real content to round-trip.
func populated(t *testing.T) *Store {
	t.Helper()
	s := NewStore(200, 16)
	wl := NewWorkload(7, types.ClientIDBase, 200, 16)
	for i := 0; i < 8; i++ {
		s.Apply(wl.NextBatch(25))
	}
	return s
}

// TestSnapshotRoundTrip: encode → decode → restore reproduces the table
// exactly, binding and counters included.
func TestSnapshotRoundTrip(t *testing.T) {
	s := populated(t)
	exec := types.Digest{1, 2, 3}
	data := s.Snapshot(640, exec)

	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Height != 640 || snap.ExecHash != exec {
		t.Fatalf("binding: height=%d exec=%x", snap.Height, snap.ExecHash[:4])
	}
	if snap.Applied != s.Applied() {
		t.Fatalf("applied: %d != %d", snap.Applied, s.Applied())
	}

	fresh := NewStore(200, 16)
	fresh.Restore(snap)
	if fresh.Fingerprint() != s.Fingerprint() {
		t.Fatal("restored table fingerprint diverges from the source")
	}
	if fresh.Applied() != s.Applied() {
		t.Fatal("restored applied counter diverges")
	}
	for k, want := range s.Dump() {
		if got := fresh.Read(k); !bytes.Equal(got, want) {
			t.Fatalf("key %d: restored %q, want %q", k, got, want)
		}
	}
}

// TestSnapshotDeterministic: two stores that executed the same batches emit
// byte-identical snapshots (map iteration order must not leak in).
func TestSnapshotDeterministic(t *testing.T) {
	a, b := populated(t), populated(t)
	exec := types.Digest{9}
	if !bytes.Equal(a.Snapshot(64, exec), b.Snapshot(64, exec)) {
		t.Fatal("identical stores encoded different snapshots")
	}
}

// TestSnapshotEncodeIdentity: Encode(Decode(x)) == x for a real snapshot.
func TestSnapshotEncodeIdentity(t *testing.T) {
	s := populated(t)
	data := s.Snapshot(128, types.Digest{5})
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(snap.Encode(), data) {
		t.Fatal("decode/re-encode is not the identity")
	}
}

// TestSnapshotRejectsCorruption: every class of envelope damage is refused —
// no partial decode ever escapes.
func TestSnapshotRejectsCorruption(t *testing.T) {
	s := populated(t)
	good := s.Snapshot(64, types.Digest{3})

	mutate := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		if b = f(b); b == nil {
			return
		}
		if _, err := DecodeSnapshot(b); err == nil {
			t.Errorf("%s: corrupt snapshot decoded cleanly", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("bad version", func(b []byte) []byte { b[4] = 99; return b })
	mutate("flipped bit mid-record", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b })
	mutate("flipped CRC", func(b []byte) []byte { b[len(b)-1] ^= 1; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-9] })
	mutate("trailing garbage", func(b []byte) []byte { return append(b, 0xAB) })
	mutate("empty", func(b []byte) []byte { return nil })

	if _, err := DecodeSnapshot(nil); err == nil {
		t.Error("nil input decoded cleanly")
	}
	if _, err := DecodeSnapshot([]byte("SPLT")); err == nil {
		t.Error("bare magic decoded cleanly")
	}
}

// TestSnapshotRejectsNonCanonical: a well-CRC'd envelope with out-of-order
// keys is refused, so encode(decode(x)) == x holds on everything accepted.
func TestSnapshotRejectsNonCanonical(t *testing.T) {
	s := NewStore(4, 4)
	b := &types.Batch{Txns: []types.Transaction{
		{Op: types.OpWrite, Key: 1, Value: []byte("aa")},
		{Op: types.OpWrite, Key: 2, Value: []byte("bb")},
	}}
	b.ID = types.ComputeBatchID(b.Txns)
	s.Apply(b)
	data := s.Snapshot(1, types.Digest{})

	// Swap the two records in place (same sizes) and re-seal the CRC: the
	// envelope is now internally consistent but non-canonical.
	rec := data[snapHeaderSize : len(data)-4]
	recLen := 8 + 4 + 2
	if len(rec) < 2*recLen {
		t.Fatalf("unexpected record section size %d", len(rec))
	}
	tmp := append([]byte(nil), rec[:recLen]...)
	copy(rec[:recLen], rec[recLen:2*recLen])
	copy(rec[recLen:2*recLen], tmp)
	body := data[:len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(body, snapCRC))

	if _, err := DecodeSnapshot(data); err == nil {
		t.Fatal("out-of-order keys decoded cleanly")
	}
}

// TestRestoreReplacesStaleState: restoring over a diverged table discards
// every stale record, including keys the snapshot does not mention.
func TestRestoreReplacesStaleState(t *testing.T) {
	src := NewStore(10, 4)
	w := &types.Batch{Txns: []types.Transaction{{Op: types.OpWrite, Key: 2, Value: []byte("good")}}}
	w.ID = types.ComputeBatchID(w.Txns)
	src.Apply(w)
	snap, err := DecodeSnapshot(src.Snapshot(1, types.Digest{}))
	if err != nil {
		t.Fatal(err)
	}

	dst := NewStore(10, 4)
	stale := &types.Batch{Txns: []types.Transaction{
		{Op: types.OpWrite, Key: 2, Value: []byte("BAD!")},
		{Op: types.OpWrite, Key: 7, Value: []byte("BAD!")},
	}}
	stale.ID = types.ComputeBatchID(stale.Txns)
	dst.Apply(stale)
	dst.Restore(snap)

	if got := string(dst.Read(2)); got != "good" {
		t.Fatalf("key 2 after restore: %q", got)
	}
	if got := string(dst.Read(7)); got == "BAD!" {
		t.Fatal("stale write to key 7 survived the restore")
	}
	if dst.Fingerprint() != src.Fingerprint() {
		t.Fatal("restored fingerprint diverges")
	}
}

// TestFingerprintSeesColdKeys: the fingerprint covers the whole table, so a
// single cold-key divergence (a key never touched after restore) flips it.
func TestFingerprintSeesColdKeys(t *testing.T) {
	a := NewStore(100, 8)
	b := NewStore(100, 8)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical initial tables fingerprint differently")
	}
	w := &types.Batch{Txns: []types.Transaction{{Op: types.OpWrite, Key: 99, Value: []byte("x")}}}
	w.ID = types.ComputeBatchID(w.Txns)
	b.Apply(w)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("one-key divergence invisible to the fingerprint")
	}
}

// FuzzSnapshotDecode: DecodeSnapshot never panics, and every input it
// accepts re-encodes to the identical bytes (canonical-form oracle, the same
// discipline the wire codec fuzzer enforces).
func FuzzSnapshotDecode(f *testing.F) {
	s := NewStore(50, 8)
	wl := NewWorkload(3, types.ClientIDBase, 50, 8)
	s.Apply(wl.NextBatch(30))
	good := s.Snapshot(32, types.Digest{7})
	f.Add(good)
	f.Add(good[:len(good)-5])
	f.Add([]byte("SPLT"))
	f.Add([]byte{})
	empty := NewStore(0, 8)
	f.Add(empty.Snapshot(0, types.Digest{}))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if !bytes.Equal(snap.Encode(), data) {
			t.Fatalf("accepted non-canonical encoding (%d bytes)", len(data))
		}
	})
}
