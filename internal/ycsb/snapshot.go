package ycsb

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sort"

	"spotless/internal/types"
)

// This file implements durable execution snapshots: a deterministic,
// CRC32C-enveloped encoding of the whole table, bound to the checkpoint cut
// it was taken at. The envelope keys the snapshot by (height, exec hash) —
// the same rolling execution hash the checkpoint certificate attests through
// its state-hash preimage — so a restart (or a state-transfer install) can
// prove the restored table is exactly the one the quorum hashed before
// serving a single read from it.
//
// Envelope layout (all integers little-endian):
//
//	[0:4]    magic "SPLT"
//	[4:8]    version (1)
//	[8:16]   height   — the checkpoint cut (globally delivered batches)
//	[16:48]  execHash — rolling execution hash at the cut
//	[48:56]  applied  — executed-transaction counter at the cut
//	[56:64]  record count
//	[64:]    records: (key u64, valueLen u32, value bytes), keys strictly
//	         ascending — the canonical order, so encode(decode(x)) == x
//	[len-4:] CRC32C (Castagnoli) over everything before it
//
// internal/wal mirrors the header layout (wal/snapshot.go) to select and
// verify snapshot files at recovery without importing this package;
// TestWalEnvelopeCompat pins the two against each other.

// Snapshot envelope framing constants. Keep in sync with internal/wal's
// mirror (snapHeaderSize and friends).
const (
	snapMagic      = "SPLT"
	snapVersion    = 1
	snapHeaderSize = 4 + 4 + 8 + 32 + 8 + 8
	snapMinSize    = snapHeaderSize + 4
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrSnapshotCorrupt reports a snapshot blob that fails envelope validation:
// bad magic or version, truncated, CRC mismatch, forged lengths, or a
// non-canonical record order.
var ErrSnapshotCorrupt = errors.New("ycsb: corrupt snapshot")

// TableSnapshot is a decoded execution snapshot: the table content at a
// checkpoint cut plus the binding that ties it to the attested state.
type TableSnapshot struct {
	Height   uint64       // checkpoint cut the table was captured at
	ExecHash types.Digest // rolling execution hash at the cut
	Applied  uint64       // executed-transaction counter at the cut
	Records  map[uint64][]byte
}

// Snapshot encodes the current table into a snapshot envelope bound to
// (height, execHash). The caller captures it at the checkpoint cut — on the
// ordering stage, where the table reflects exactly the first height globally
// delivered batches — and hands it to the WAL (or a state-transfer chunk)
// unchanged. Encoding is deterministic: records are emitted in ascending key
// order, so correct replicas capturing the same cut produce identical bytes.
func (s *Store) Snapshot(height uint64, execHash types.Digest) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]uint64, 0, len(s.records))
	size := snapMinSize
	for k, v := range s.records {
		keys = append(keys, k)
		size += 8 + 4 + len(v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	out := make([]byte, 0, size)
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint32(out, snapVersion)
	out = binary.LittleEndian.AppendUint64(out, height)
	out = append(out, execHash[:]...)
	out = binary.LittleEndian.AppendUint64(out, s.applied)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(keys)))
	for _, k := range keys {
		v := s.records[k]
		out = binary.LittleEndian.AppendUint64(out, k)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(v)))
		out = append(out, v...)
	}
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, snapCRC))
}

// DecodeSnapshot validates a snapshot envelope end to end — magic, version,
// CRC over the full blob, record framing, canonical key order, exact length
// consumption — and returns the decoded snapshot. It never installs anything
// and never panics on adversarial input (FuzzSnapshotDecode enforces both);
// callers check the returned Height/ExecHash against the attested checkpoint
// before calling Restore.
func DecodeSnapshot(data []byte) (*TableSnapshot, error) {
	if len(data) < snapMinSize || string(data[:4]) != snapMagic {
		return nil, ErrSnapshotCorrupt
	}
	if binary.LittleEndian.Uint32(data[4:]) != snapVersion {
		return nil, ErrSnapshotCorrupt
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, snapCRC) != binary.LittleEndian.Uint32(tail) {
		return nil, ErrSnapshotCorrupt
	}
	snap := &TableSnapshot{
		Height:  binary.LittleEndian.Uint64(data[8:]),
		Applied: binary.LittleEndian.Uint64(data[48:]),
		Records: make(map[uint64][]byte),
	}
	copy(snap.ExecHash[:], data[16:48])
	count := binary.LittleEndian.Uint64(data[56:64])
	rest := body[snapHeaderSize:]
	// Each record is at least 12 bytes, so a forged count cannot force a
	// large allocation past this bound.
	if count > uint64(len(rest))/12 {
		return nil, ErrSnapshotCorrupt
	}
	var prev uint64
	for i := uint64(0); i < count; i++ {
		if len(rest) < 12 {
			return nil, ErrSnapshotCorrupt
		}
		key := binary.LittleEndian.Uint64(rest)
		vlen := binary.LittleEndian.Uint32(rest[8:])
		rest = rest[12:]
		if uint64(len(rest)) < uint64(vlen) {
			return nil, ErrSnapshotCorrupt
		}
		if i > 0 && key <= prev {
			return nil, ErrSnapshotCorrupt // non-canonical: keys must ascend
		}
		prev = key
		val := make([]byte, vlen)
		copy(val, rest[:vlen])
		snap.Records[key] = val
		rest = rest[vlen:]
	}
	if len(rest) != 0 {
		return nil, ErrSnapshotCorrupt // trailing bytes
	}
	return snap, nil
}

// Encode re-emits the canonical envelope for a decoded snapshot. For any
// blob DecodeSnapshot accepts, snap.Encode() reproduces it byte-for-byte
// (the decode/re-encode identity FuzzSnapshotDecode checks).
func (t *TableSnapshot) Encode() []byte {
	tmp := &Store{records: t.Records, applied: t.Applied}
	return tmp.Snapshot(t.Height, t.ExecHash)
}

// Restore replaces the table with a decoded snapshot: the records become the
// table content and the executed-transaction counter rewinds to the cut.
// Callers must have verified the snapshot's (Height, ExecHash) binding
// against the attested checkpoint first — Restore itself trusts its input.
func (s *Store) Restore(t *TableSnapshot) {
	records := make(map[uint64][]byte, len(t.Records))
	for k, v := range t.Records {
		records[k] = v
	}
	s.mu.Lock()
	s.records = records
	s.applied = t.Applied
	s.mu.Unlock()
}

// Fingerprint hashes the table content deterministically (sorted keys,
// key+value). Two stores holding byte-identical tables — cold keys included —
// produce equal fingerprints; the crash-chaos soak compares restarted
// replicas against a never-crashed control with it.
func (s *Store) Fingerprint() types.Digest {
	data := s.Snapshot(0, types.Digest{})
	// The envelope binds (height, execHash, applied); zero them out of the
	// comparison by hashing only the record section.
	return sha256.Sum256(data[snapHeaderSize : len(data)-4])
}

// Dump copies the table: key → value. Drills use it to capture a replica's
// state at an instant (e.g. the healthy control at kill time) and diff it
// later; values are copied, so the dump is stable under further writes.
func (s *Store) Dump() map[uint64][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[uint64][]byte, len(s.records))
	for k, v := range s.records {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// SnapshotBinding reads just the envelope binding (height, exec hash) after
// full validation — what a caller needs to decide whether a blob matches an
// attested checkpoint without materializing the table.
func SnapshotBinding(data []byte) (height uint64, execHash types.Digest, err error) {
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return 0, types.Digest{}, err
	}
	return snap.Height, snap.ExecHash, nil
}
