package ycsb

import (
	"testing"
	"testing/quick"

	"spotless/internal/types"
)

// TestStoreApplyDeterministic: applying the same batch to two identically
// initialized stores yields the same result digest and state.
func TestStoreApplyDeterministic(t *testing.T) {
	wl := NewWorkload(11, types.ClientIDBase, 1000, 16)
	batch := wl.NextBatch(50)
	s1 := NewStore(1000, 16)
	s2 := NewStore(1000, 16)
	d1 := s1.Apply(batch)
	d2 := s2.Apply(batch)
	if d1 != d2 {
		t.Fatal("result digests diverged on identical stores")
	}
	if s1.Applied() != 50 || s2.Applied() != 50 {
		t.Fatalf("applied counts: %d, %d", s1.Applied(), s2.Applied())
	}
}

// TestStoreWriteThenRead: writes are visible to subsequent reads.
func TestStoreWriteThenRead(t *testing.T) {
	s := NewStore(10, 8)
	b := &types.Batch{Txns: []types.Transaction{
		{Op: types.OpWrite, Key: 3, Value: []byte("xyz")},
	}}
	b.ID = types.ComputeBatchID(b.Txns)
	s.Apply(b)
	if got := string(s.Read(3)); got != "xyz" {
		t.Fatalf("read after write: %q", got)
	}
}

// TestStoreNoOpSkipped: no-op batches change nothing.
func TestStoreNoOpSkipped(t *testing.T) {
	s := NewStore(10, 8)
	before := s.Applied()
	s.Apply(&types.Batch{NoOp: true})
	s.Apply(nil)
	if s.Applied() != before {
		t.Fatal("no-op batch was executed")
	}
}

// TestOrderSensitivity: execution order changes the final state digest
// (why a total order is required at all).
func TestOrderSensitivity(t *testing.T) {
	mk := func(v string) *types.Batch {
		b := &types.Batch{Txns: []types.Transaction{{Op: types.OpWrite, Key: 1, Value: []byte(v)}}}
		b.ID = types.ComputeBatchID(b.Txns)
		return b
	}
	a, b := mk("aaa"), mk("bbb")
	s1 := NewStore(10, 8)
	s1.Apply(a)
	s1.Apply(b)
	s2 := NewStore(10, 8)
	s2.Apply(b)
	s2.Apply(a)
	if string(s1.Read(1)) == string(s2.Read(1)) {
		t.Fatal("different orders converged — test is vacuous")
	}
}

// TestZipfSkew: the Zipfian chooser is actually skewed — the most popular
// 10% of keys draw well over 10% of accesses.
func TestZipfSkew(t *testing.T) {
	z := NewZipf(5, 1000, Theta(0.99))
	counts := make(map[uint64]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	hot := 0
	for k, c := range counts {
		if k < 100 {
			hot += c
		}
	}
	if float64(hot)/draws < 0.5 {
		t.Fatalf("top-10%% keys drew only %.1f%% of accesses — not Zipfian", 100*float64(hot)/draws)
	}
}

// TestZipfBounds: keys stay within [0, n) (property-based).
func TestZipfBounds(t *testing.T) {
	prop := func(seed int64) bool {
		z := NewZipf(seed, 100, Theta(0.99))
		for i := 0; i < 100; i++ {
			if z.Next() >= 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadMix: the operation mix tracks the configured write ratio.
func TestWorkloadMix(t *testing.T) {
	wl := NewWorkload(9, types.ClientIDBase, 1000, 16)
	writes := 0
	const total = 5000
	for i := 0; i < total; i++ {
		if wl.NextTxn().Op == types.OpWrite {
			writes++
		}
	}
	ratio := float64(writes) / total
	if ratio < 0.85 || ratio > 0.95 {
		t.Fatalf("write ratio %.3f, want ≈0.90 (§6)", ratio)
	}
}

// TestWorkloadSeqMonotonic: client sequence numbers increase strictly.
func TestWorkloadSeqMonotonic(t *testing.T) {
	wl := NewWorkload(1, types.ClientIDBase, 100, 8)
	last := uint64(0)
	for i := 0; i < 100; i++ {
		txn := wl.NextTxn()
		if txn.Seq <= last {
			t.Fatalf("sequence not monotonic: %d after %d", txn.Seq, last)
		}
		last = txn.Seq
	}
}
