// Package ycsb provides the workload substrate of the evaluation (§6): a
// YCSB-style record table (500k active records, 90% write transactions) with
// a Zipfian key chooser, and a deterministic execution engine producing
// result digests that correct replicas can compare.
package ycsb

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"math/rand"
	"sync"

	"spotless/internal/types"
)

// DefaultRecords matches the paper's table size (§6).
const DefaultRecords = 500000

// Store is the replicated YCSB table. It is safe for concurrent readers
// with one writer (the execution loop), matching ResilientDB's sequential
// execution model.
type Store struct {
	mu      sync.RWMutex
	records map[uint64][]byte
	applied uint64 // transactions executed
}

// NewStore initializes a table with n records holding deterministic
// payloads, as the paper initializes each replica with an identical copy.
func NewStore(n uint64, recordSize int) *Store {
	s := &Store{records: make(map[uint64][]byte, n)}
	payload := make([]byte, recordSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := uint64(0); i < n; i++ {
		s.records[i] = payload
	}
	return s
}

// Read returns the value of a record (nil if absent).
func (s *Store) Read(key uint64) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.records[key]
}

// Applied returns the number of executed transactions.
func (s *Store) Applied() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// Apply executes a batch sequentially and returns the digest of the
// results, which all correct replicas reproduce identically (the client
// compares f+1 Informs, §5).
//
// The digest covers the batch's writes (key and value) — fully determined
// by the batch content, so a replica that rejoined via checkpoint state
// transfer and replays the post-checkpoint batches reproduces it exactly.
// Read values are executed but not folded in: they can depend on
// pre-checkpoint writes a rejoiner only holds once the checkpoint's
// execution snapshot is installed (shipped inside state chunks and
// restored from the WAL; see docs/ARCHITECTURE.md), and attesting them
// would make checkpoint attestations depend on when each replica's
// snapshot arrived rather than on the agreed batch sequence.
func (s *Store) Apply(b *types.Batch) types.Digest {
	if b == nil || b.NoOp {
		return types.Digest{}
	}
	h := sha256.New()
	var kb [8]byte
	s.mu.Lock()
	for i := range b.Txns {
		t := &b.Txns[i]
		switch t.Op {
		case types.OpWrite:
			s.records[t.Key] = t.Value
			binary.LittleEndian.PutUint64(kb[:], t.Key)
			h.Write(kb[:])
			h.Write(t.Value)
		case types.OpRead:
			_ = s.records[t.Key] // served locally; not attested (see above)
		}
		s.applied++
	}
	s.mu.Unlock()
	var out types.Digest
	h.Sum(out[:0])
	return out
}

// Zipf generates keys with the YCSB Zipfian distribution (constant 0.99 by
// default), the access pattern of the Blockbench macro benchmark (§6).
type Zipf struct {
	rng *rand.Rand
	z   *rand.Zipf
	n   uint64
}

// NewZipf creates a Zipfian chooser over [0, n) with exponent s > 1.
func NewZipf(seed int64, n uint64, s float64) *Zipf {
	if s <= 1 {
		s = 1.01
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{rng: rng, z: rand.NewZipf(rng, s, 1, n-1), n: n}
}

// Next returns the next key.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// Theta converts the YCSB zipfian-constant θ into the exponent s used by
// math/rand (s = 1/(1-θ) approximates the YCSB skew for θ < 1).
func Theta(theta float64) float64 {
	if theta >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - theta)
}

// Workload ties the pieces together: a transaction generator with the
// paper's operation mix.
type Workload struct {
	WriteRatio float64
	ValueSize  int
	keys       *Zipf
	rng        *rand.Rand
	client     types.NodeID
	seq        uint64
}

// NewWorkload creates the §6 workload: 90% writes over n records.
func NewWorkload(seed int64, client types.NodeID, records uint64, valueSize int) *Workload {
	return &Workload{
		WriteRatio: 0.9,
		ValueSize:  valueSize,
		keys:       NewZipf(seed, records, Theta(0.99)),
		rng:        rand.New(rand.NewSource(seed ^ 0x5f5f)),
		client:     client,
	}
}

// NextTxn generates one transaction.
func (w *Workload) NextTxn() types.Transaction {
	w.seq++
	t := types.Transaction{Client: w.client, Seq: w.seq, Key: w.keys.Next()}
	if w.rng.Float64() < w.WriteRatio {
		t.Op = types.OpWrite
		t.Value = make([]byte, w.ValueSize)
	} else {
		t.Op = types.OpRead
	}
	return t
}

// NextBatch generates a batch of size txns.
func (w *Workload) NextBatch(size int) *types.Batch {
	txns := make([]types.Transaction, size)
	for i := range txns {
		txns[i] = w.NextTxn()
	}
	return &types.Batch{ID: types.ComputeBatchID(txns), Txns: txns}
}
