// Package types defines the fundamental vocabulary shared by every layer of
// the SpotLess stack: replica identifiers, views, digests, transactions,
// batches, the wire messages of all implemented consensus protocols
// (messages.go), and the checkpoint / state-transfer messages and ledger
// block record (checkpoint.go).
//
// The package is deliberately dependency-free so that the crypto substrate,
// the discrete-event simulator, the real runtimes, and every protocol can
// share one set of message definitions.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"
)

// NodeID identifies a replica. Replicas are numbered 0..n-1; clients use
// identifiers ≥ ClientIDBase.
type NodeID int32

// ClientIDBase is the first identifier used for clients. Replica identifiers
// are always below this value.
const ClientIDBase NodeID = 1 << 20

// IsClient reports whether the identifier denotes a client.
func (id NodeID) IsClient() bool { return id >= ClientIDBase }

// View numbers the rounds of a chained consensus instance. View 0 is
// reserved for the genesis proposal; the first real view is 1.
type View uint64

// Digest is a cryptographic hash identifying proposals, batches, and
// transactions.
type Digest [32]byte

// IsZero reports whether the digest is the all-zero value (used by the
// genesis proposal).
func (d Digest) IsZero() bool { return d == Digest{} }

// Short renders an abbreviated hex form for logs.
func (d Digest) Short() string { return fmt.Sprintf("%x", d[:4]) }

// Operation kinds for YCSB-style transactions.
const (
	OpRead  byte = iota // read a record
	OpWrite             // write/modify a record
	OpNoOp              // no-op filler proposed by idle primaries (§5)
)

// Transaction is a single client request against the replicated YCSB table.
type Transaction struct {
	Client NodeID // issuing client (requests are client-signed; see crypto)
	Seq    uint64 // client-local sequence number
	Op     byte   // OpRead, OpWrite, or OpNoOp
	Key    uint64 // record key in the YCSB table
	Value  []byte // written payload (nil for reads)
}

// Digest returns the transaction digest used for instance assignment (§5:
// instance i may only propose transactions with digest d where
// i ≡ d mod m) and for reply matching.
func (t *Transaction) Digest() Digest {
	var buf [29]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(t.Client))
	binary.LittleEndian.PutUint64(buf[4:], t.Seq)
	buf[12] = t.Op
	binary.LittleEndian.PutUint64(buf[13:], t.Key)
	binary.LittleEndian.PutUint64(buf[21:], uint64(len(t.Value)))
	return sha256.Sum256(buf[:])
}

// Batch groups client transactions into one proposal payload (§6.1:
// ResilientDB batches, typically 100 txn/batch).
type Batch struct {
	ID        Digest        // digest over the contained transactions
	Txns      []Transaction // the batched requests
	Submitted time.Duration // submission timestamp (runtime clock) for latency accounting
	NoOp      bool          // true for the no-op filler batches of §5
}

// ComputeBatchID derives the batch digest from the contained transactions.
func ComputeBatchID(txns []Transaction) Digest {
	h := sha256.New()
	var buf [8]byte
	for i := range txns {
		d := txns[i].Digest()
		h.Write(d[:])
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(len(txns)))
	h.Write(buf[:])
	var out Digest
	h.Sum(out[:0])
	return out
}

// Signature is a digital signature attributable to a replica or client.
// The concrete byte format depends on the crypto provider in use.
type Signature struct {
	Signer NodeID
	Bytes  []byte
}

// Commit is the upcall a consensus protocol makes when a batch has been
// decided. Instance and View give the position in the global order
// (proposals are ordered by view first, then instance; §4.1). For
// non-concurrent protocols Instance is 0 and View is the sequence number.
type Commit struct {
	Instance int32
	View     View
	Batch    *Batch
	Proposal Digest // digest of the deciding proposal (ledger linkage)
}

// Message is implemented by every wire message of every protocol.
// WireSize returns the modelled serialized size in bytes, matching the
// constants reported in §6.1 (432 B control messages, 5400 B proposals at
// 100 txn/batch, 1748 B client replies).
type Message interface {
	WireSize() int
}

// Baseline wire-size constants calibrated against §6.1.
const (
	// ControlMsgSize is the size of replica-to-replica control messages
	// (Sync, Prepare, Commit, votes): 432 B per the paper.
	ControlMsgSize = 432
	// TxnOverhead is the per-transaction wire overhead inside a proposal.
	// 432 + 100 txn × (TxnOverhead + ~35 B payload) ≈ 5400 B.
	TxnOverhead = 15
	// ReplyPerTxn is the per-transaction share of a client reply:
	// 432 + 100 × 13.16 ≈ 1748 B.
	ReplyPerTxn = 13
	// SignatureSize models one digital signature on the wire.
	SignatureSize = 64
)

// BatchWireSize is the serialized size of a batch inside a proposal.
func BatchWireSize(b *Batch) int {
	if b == nil {
		return 0
	}
	s := 0
	for i := range b.Txns {
		s += TxnOverhead + len(b.Txns[i].Value)
	}
	return s
}
