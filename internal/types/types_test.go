package types

import (
	"testing"
	"testing/quick"
)

// TestTransactionDigestDeterminism: equal transactions hash equal; any
// field change alters the digest.
func TestTransactionDigestDeterminism(t *testing.T) {
	base := Transaction{Client: 1, Seq: 2, Op: OpWrite, Key: 3, Value: []byte("abc")}
	same := base
	if base.Digest() != same.Digest() {
		t.Fatal("identical transactions produced different digests")
	}
	for name, mut := range map[string]Transaction{
		"client": {Client: 2, Seq: 2, Op: OpWrite, Key: 3, Value: []byte("abc")},
		"seq":    {Client: 1, Seq: 3, Op: OpWrite, Key: 3, Value: []byte("abc")},
		"op":     {Client: 1, Seq: 2, Op: OpRead, Key: 3, Value: []byte("abc")},
		"key":    {Client: 1, Seq: 2, Op: OpWrite, Key: 4, Value: []byte("abc")},
	} {
		if mut.Digest() == base.Digest() {
			t.Errorf("mutating %s did not change the digest", name)
		}
	}
}

// TestBatchIDProperty: batch ids are stable under recomputation and
// sensitive to transaction order (property-based).
func TestBatchIDProperty(t *testing.T) {
	prop := func(keys []uint64) bool {
		if len(keys) < 2 {
			return true
		}
		txns := make([]Transaction, len(keys))
		for i, k := range keys {
			txns[i] = Transaction{Client: ClientIDBase, Seq: uint64(i), Op: OpWrite, Key: k}
		}
		id1 := ComputeBatchID(txns)
		id2 := ComputeBatchID(txns)
		if id1 != id2 {
			return false
		}
		// Swapping two distinct transactions changes the id.
		txns[0], txns[1] = txns[1], txns[0]
		id3 := ComputeBatchID(txns)
		if txns[0].Digest() != txns[1].Digest() && id3 == id1 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestProposalDigestBindsAllFields: the proposal digest commits to
// instance, view, batch, and parent.
func TestProposalDigestBindsAllFields(t *testing.T) {
	var b1, b2 Digest
	b2[0] = 1
	base := ProposalDigest(1, 2, b1, 1, b2)
	if ProposalDigest(2, 2, b1, 1, b2) == base {
		t.Error("instance not bound")
	}
	if ProposalDigest(1, 3, b1, 1, b2) == base {
		t.Error("view not bound")
	}
	if ProposalDigest(1, 2, b2, 1, b2) == base {
		t.Error("batch not bound")
	}
	if ProposalDigest(1, 2, b1, 2, b2) == base {
		t.Error("parent view not bound")
	}
	if ProposalDigest(1, 2, b1, 1, b1) == base {
		t.Error("parent digest not bound")
	}
}

// TestWireSizesMatchPaper: the modelled sizes reproduce §6.1's constants:
// proposals ≈ 5400 B at 100 txn/batch, control messages 432 B, replies
// ≈ 1748 B for 100 txns.
func TestWireSizesMatchPaper(t *testing.T) {
	txns := make([]Transaction, 100)
	for i := range txns {
		txns[i] = Transaction{Op: OpWrite, Value: make([]byte, 35)}
	}
	batch := &Batch{ID: ComputeBatchID(txns), Txns: txns}
	p := &Propose{Batch: batch}
	if got := p.WireSize(); got < 5200 || got > 5600 {
		t.Errorf("proposal size %d, want ≈5400 (§6.1)", got)
	}
	s := &Sync{}
	if got := s.WireSize(); got != ControlMsgSize {
		t.Errorf("sync size %d, want %d", got, ControlMsgSize)
	}
	if got := InformWireSize(100); got < 1600 || got > 1900 {
		t.Errorf("reply size %d, want ≈1748 (§6.1)", got)
	}
}

// TestClientIDs: replica ids are below ClientIDBase; client detection works.
func TestClientIDs(t *testing.T) {
	if NodeID(127).IsClient() {
		t.Error("replica id classified as client")
	}
	if !ClientIDBase.IsClient() {
		t.Error("client base not classified as client")
	}
}

// TestMessageSizesPositive: every message type models a positive wire size.
func TestMessageSizesPositive(t *testing.T) {
	batch := &Batch{Txns: []Transaction{{Value: []byte("x")}}}
	msgs := []Message{
		&Propose{Batch: batch}, &Sync{}, &Ask{},
		&PrePrepare{Batch: batch}, &Prepare{}, &PbftCommit{}, &ViewChange{}, &NewPView{}, &Complaint{},
		&HSProposal{Batch: batch}, &HSVote{}, &HSNewView{},
		&NarwhalBatch{Batch: batch}, &NarwhalAck{}, &NarwhalCert{},
		&Request{Batch: batch}, &Inform{},
	}
	for _, m := range msgs {
		if m.WireSize() <= 0 {
			t.Errorf("%T has non-positive wire size", m)
		}
	}
}
