package types

import (
	"crypto/sha256"
	"encoding/binary"
)

// ---------------------------------------------------------------------------
// Checkpointing & state transfer
//
// SpotLess's Rapid View Synchronization recovers a replica that missed one
// view from the matching Sync/Ask exchange (§3.4), but it gives no way to
// bound the per-view state kept to serve those exchanges, nor to rejoin a
// replica that fell behind further than the retained window. The messages
// below add both: periodic signed checkpoints every K committed heights,
// quorum-assembled into a stable frontier behind which replicas may garbage-
// collect, and a fetch/chunk exchange by which a lagging replica adopts the
// stable checkpoint and re-enters the rotation.
// ---------------------------------------------------------------------------

// Anchor names the last globally delivered proposal of one instance at a
// checkpoint cut: the point from which a rejoining replica resumes that
// instance's chain.
type Anchor struct {
	View   View
	Digest Digest
}

// BlockRecord is the wire form of one ledger block (see internal/ledger,
// which aliases it): the hash-chained record of one executed batch. It lives
// in types so state-transfer chunks can carry ledger segments without the
// ledger package depending on the wire layer or vice versa.
type BlockRecord struct {
	Height   uint64
	Prev     Digest // hash of the previous block (chain-resume hash for the first retained block)
	Instance int32
	View     View
	BatchID  Digest
	Proposal Digest // digest of the committing proposal (the proof ref)
	Results  Digest // execution-result digest
	Hash     Digest
}

// BlockRecordWireSize models one serialized ledger block inside a state
// chunk: height + five digests + instance + view.
const BlockRecordWireSize = 8 + 5*32 + 4 + 8

// Checkpoint is a replica's signed attestation that its replicated state
// after Height globally delivered batches has digest StateHash. Replicas
// broadcast one every K heights; n−f matching attestations form a
// CheckpointCert and make the checkpoint stable.
type Checkpoint struct {
	Height    uint64
	StateHash Digest
	Sig       Signature // over CheckpointBytes(Height, StateHash)
}

// WireSize implements Message.
func (m *Checkpoint) WireSize() int { return ControlMsgSize + SignatureSize }

// CheckpointCert proves a checkpoint stable: n−f signatures by distinct
// replicas over the same (height, state hash) attestation.
type CheckpointCert struct {
	Height    uint64
	StateHash Digest
	Sigs      []Signature
}

// CheckpointBytes is the byte string replicas sign when attesting a
// checkpoint; certificates aggregate these signatures.
func CheckpointBytes(height uint64, stateHash Digest) []byte {
	var buf [8 + 32]byte
	binary.LittleEndian.PutUint64(buf[0:], height)
	copy(buf[8:], stateHash[:])
	return buf[:]
}

// CheckpointStateHash derives the attested state digest from the components
// a checkpoint covers: the rolling execution hash over the globally ordered
// deliveries, the durable-state digest supplied by the execution layer (the
// ledger's chain-resume hash; zero on substrates without one), and the
// per-instance anchors of the cut. A rejoining replica recomputes it from a
// StateChunk and compares against the certificate before installing.
func CheckpointStateHash(height uint64, execHash, stateDigest Digest, anchors []Anchor) Digest {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], height)
	h.Write(buf[:])
	h.Write(execHash[:])
	h.Write(stateDigest[:])
	for _, a := range anchors {
		binary.LittleEndian.PutUint64(buf[:], uint64(a.View))
		h.Write(buf[:])
		h.Write(a.Digest[:])
	}
	var out Digest
	h.Sum(out[:0])
	return out
}

// FetchState asks a peer for the stable checkpoint and the ledger segment
// above the requester's current height. Sent by a replica that learned of a
// stable checkpoint beyond its own progress.
type FetchState struct {
	Have uint64 // requester's delivered height
	// Head and HeadHash describe the requester's retained ledger tail: the
	// next height its ledger would append and the hash of the block below it.
	// A server whose retained chain contains that block serves only the
	// suffix from Head — a crash-restarted replica that replayed its WAL
	// re-fetches O(missing suffix) bytes, not the whole retained segment.
	// Head 0 (no verifiable local tail) requests a full transfer.
	Head     uint64
	HeadHash Digest
	// WantSnapshot asks the server to include its stable execution snapshot
	// in the chunk. Set by requesters that execute application state (the
	// runtime); pure-ordering substrates (the simulator) leave it false and
	// skip the table bytes.
	WantSnapshot bool
}

// WireSize implements Message.
func (m *FetchState) WireSize() int { return ControlMsgSize }

// StateChunk answers a FetchState: the stable checkpoint certificate, the
// preimage components of its state hash (execution hash, ledger resume hash,
// per-instance anchors), and a bounded segment of ledger blocks from the
// checkpoint height onward. Blocks beyond the sender's per-chunk cap are
// omitted; the requester rebuilds them through ordinary consensus
// re-delivery, which garbage collection keeps possible above the stable
// frontier.
type StateChunk struct {
	Cert         CheckpointCert
	ExecHash     Digest
	LedgerResume Digest // hash of the last pruned block (chain-resume hash)
	Anchors      []Anchor
	Blocks       []BlockRecord
	// Snapshot is the server's execution snapshot at the checkpoint cut
	// (ycsb envelope bytes), present only when the requester asked for one
	// and the server retains it. Its embedded (height, exec hash) binding
	// must match the certificate above — the requester verifies before
	// installing. Empty means absent: the requester falls back to
	// forward-replay semantics for the table.
	Snapshot []byte
}

// WireSize implements Message.
func (m *StateChunk) WireSize() int {
	return ControlMsgSize + len(m.Cert.Sigs)*SignatureSize +
		len(m.Anchors)*(8+32) + len(m.Blocks)*BlockRecordWireSize +
		len(m.Snapshot)
}
