package types

import (
	"errors"
	"fmt"
	"time"

	"encoding/binary"
)

// ---------------------------------------------------------------------------
// Binary wire codec
//
// Every registered wire message has a hand-rolled fixed-layout binary
// encoding: a one-byte WireKind tag followed by the message body, all
// integers little-endian, byte strings and slices length-prefixed with a
// u32. Encoders append into caller-supplied buffers (AppendBinary /
// AppendMessage) so the transport can serialize into pooled frame buffers
// without per-message allocation; decoding is strict — truncated frames,
// trailing bytes, forged lengths, non-canonical booleans, and unknown tags
// all return ErrMalformed and never panic (FuzzDecode in
// internal/transport enforces this).
//
// The layout replaces the seed's per-frame gob encoding, which re-sent gob
// type descriptors and paid reflection on every frame; §6.1 of the paper
// assumes lean 432 B control messages, and BenchmarkCodec (transport)
// tracks the encode+decode advantage over the gob baseline.
//
// Wire compatibility: kind tags are append-only. Never renumber or reuse a
// WireKind; add new messages at the end.
// ---------------------------------------------------------------------------

// WireKind tags a message type on the wire (the first payload byte).
type WireKind uint8

// Wire kind tags, one per registered message type. Append-only.
const (
	KindInvalid WireKind = iota
	KindPropose
	KindSync
	KindAsk
	KindPrePrepare
	KindPrepare
	KindPbftCommit
	KindViewChange
	KindNewPView
	KindComplaint
	KindHSProposal
	KindHSVote
	KindHSNewView
	KindNarwhalBatch
	KindNarwhalAck
	KindNarwhalCert
	KindCheckpoint
	KindFetchState
	KindStateChunk
	KindRequest
	KindInform
	KindBatchDigest
	KindBatchAck
	KindBatchCert
	KindBatchChunk

	kindEnd // one past the last valid tag
)

// ErrMalformed reports a wire payload that cannot be decoded: truncated,
// trailing garbage, forged length, or an unknown kind tag.
var ErrMalformed = errors.New("types: malformed wire message")

// MessageKind returns the wire tag of a message, or KindInvalid for a type
// not registered with the codec.
func MessageKind(m Message) WireKind {
	switch m.(type) {
	case *Propose:
		return KindPropose
	case *Sync:
		return KindSync
	case *Ask:
		return KindAsk
	case *PrePrepare:
		return KindPrePrepare
	case *Prepare:
		return KindPrepare
	case *PbftCommit:
		return KindPbftCommit
	case *ViewChange:
		return KindViewChange
	case *NewPView:
		return KindNewPView
	case *Complaint:
		return KindComplaint
	case *HSProposal:
		return KindHSProposal
	case *HSVote:
		return KindHSVote
	case *HSNewView:
		return KindHSNewView
	case *NarwhalBatch:
		return KindNarwhalBatch
	case *NarwhalAck:
		return KindNarwhalAck
	case *NarwhalCert:
		return KindNarwhalCert
	case *Checkpoint:
		return KindCheckpoint
	case *FetchState:
		return KindFetchState
	case *StateChunk:
		return KindStateChunk
	case *Request:
		return KindRequest
	case *Inform:
		return KindInform
	case *BatchDigest:
		return KindBatchDigest
	case *BatchAck:
		return KindBatchAck
	case *BatchCert:
		return KindBatchCert
	case *BatchChunk:
		return KindBatchChunk
	}
	return KindInvalid
}

// AppendMessage appends the wire encoding of m — kind tag plus binary body —
// to buf and returns the extended buffer. It is the encoder behind
// transport.Encode and the encode-once broadcast path.
func AppendMessage(buf []byte, m Message) ([]byte, error) {
	switch v := m.(type) {
	case *Propose:
		return v.AppendBinary(append(buf, byte(KindPropose))), nil
	case *Sync:
		return v.AppendBinary(append(buf, byte(KindSync))), nil
	case *Ask:
		return v.AppendBinary(append(buf, byte(KindAsk))), nil
	case *PrePrepare:
		return v.AppendBinary(append(buf, byte(KindPrePrepare))), nil
	case *Prepare:
		return v.AppendBinary(append(buf, byte(KindPrepare))), nil
	case *PbftCommit:
		return v.AppendBinary(append(buf, byte(KindPbftCommit))), nil
	case *ViewChange:
		return v.AppendBinary(append(buf, byte(KindViewChange))), nil
	case *NewPView:
		return v.AppendBinary(append(buf, byte(KindNewPView))), nil
	case *Complaint:
		return v.AppendBinary(append(buf, byte(KindComplaint))), nil
	case *HSProposal:
		return v.AppendBinary(append(buf, byte(KindHSProposal))), nil
	case *HSVote:
		return v.AppendBinary(append(buf, byte(KindHSVote))), nil
	case *HSNewView:
		return v.AppendBinary(append(buf, byte(KindHSNewView))), nil
	case *NarwhalBatch:
		return v.AppendBinary(append(buf, byte(KindNarwhalBatch))), nil
	case *NarwhalAck:
		return v.AppendBinary(append(buf, byte(KindNarwhalAck))), nil
	case *NarwhalCert:
		return v.AppendBinary(append(buf, byte(KindNarwhalCert))), nil
	case *Checkpoint:
		return v.AppendBinary(append(buf, byte(KindCheckpoint))), nil
	case *FetchState:
		return v.AppendBinary(append(buf, byte(KindFetchState))), nil
	case *StateChunk:
		return v.AppendBinary(append(buf, byte(KindStateChunk))), nil
	case *Request:
		return v.AppendBinary(append(buf, byte(KindRequest))), nil
	case *Inform:
		return v.AppendBinary(append(buf, byte(KindInform))), nil
	case *BatchDigest:
		return v.AppendBinary(append(buf, byte(KindBatchDigest))), nil
	case *BatchAck:
		return v.AppendBinary(append(buf, byte(KindBatchAck))), nil
	case *BatchCert:
		return v.AppendBinary(append(buf, byte(KindBatchCert))), nil
	case *BatchChunk:
		return v.AppendBinary(append(buf, byte(KindBatchChunk))), nil
	}
	return buf, fmt.Errorf("types: message %T not registered with the wire codec", m)
}

// DecodeMessage decodes one wire payload produced by AppendMessage. The
// whole buffer must be consumed; any violation returns ErrMalformed.
func DecodeMessage(buf []byte) (Message, error) {
	if len(buf) == 0 {
		return nil, ErrMalformed
	}
	r := wireReader{buf: buf[1:]}
	var m Message
	switch WireKind(buf[0]) {
	case KindPropose:
		m = decodePropose(&r)
	case KindSync:
		m = decodeSync(&r)
	case KindAsk:
		m = decodeAsk(&r)
	case KindPrePrepare:
		m = decodePrePrepare(&r)
	case KindPrepare:
		m = decodePrepare(&r)
	case KindPbftCommit:
		m = decodePbftCommit(&r)
	case KindViewChange:
		m = decodeViewChange(&r)
	case KindNewPView:
		m = decodeNewPView(&r)
	case KindComplaint:
		m = decodeComplaint(&r)
	case KindHSProposal:
		m = decodeHSProposal(&r)
	case KindHSVote:
		m = decodeHSVote(&r)
	case KindHSNewView:
		m = decodeHSNewView(&r)
	case KindNarwhalBatch:
		m = decodeNarwhalBatch(&r)
	case KindNarwhalAck:
		m = decodeNarwhalAck(&r)
	case KindNarwhalCert:
		m = decodeNarwhalCert(&r)
	case KindCheckpoint:
		m = decodeCheckpoint(&r)
	case KindFetchState:
		m = decodeFetchState(&r)
	case KindStateChunk:
		m = decodeStateChunk(&r)
	case KindRequest:
		m = decodeRequest(&r)
	case KindInform:
		m = decodeInform(&r)
	case KindBatchDigest:
		m = decodeBatchDigest(&r)
	case KindBatchAck:
		m = decodeBatchAck(&r)
	case KindBatchCert:
		m = decodeBatchCert(&r)
	case KindBatchChunk:
		m = decodeBatchChunk(&r)
	default:
		return nil, ErrMalformed
	}
	if r.bad || len(r.buf) != 0 {
		return nil, ErrMalformed
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Append helpers (encoding)
// ---------------------------------------------------------------------------

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendBytes(b []byte, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

func appendSig(b []byte, s Signature) []byte {
	b = appendU32(b, uint32(s.Signer))
	return appendBytes(b, s.Bytes)
}

func appendSigs(b []byte, sigs []Signature) []byte {
	b = appendU32(b, uint32(len(sigs)))
	for i := range sigs {
		b = appendSig(b, sigs[i])
	}
	return b
}

func appendClaim(b []byte, c Claim) []byte {
	b = appendU64(b, uint64(c.View))
	b = append(b, c.Digest[:]...)
	return appendBool(b, c.Empty)
}

func appendBatch(b []byte, batch *Batch) []byte {
	if batch == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = append(b, batch.ID[:]...)
	b = appendU64(b, uint64(batch.Submitted))
	b = appendBool(b, batch.NoOp)
	b = appendU32(b, uint32(len(batch.Txns)))
	for i := range batch.Txns {
		t := &batch.Txns[i]
		b = appendU32(b, uint32(t.Client))
		b = appendU64(b, t.Seq)
		b = append(b, t.Op)
		b = appendU64(b, t.Key)
		b = appendBytes(b, t.Value)
	}
	return b
}

func appendQC(b []byte, qc *QC) []byte {
	b = appendU64(b, uint64(qc.View))
	b = append(b, qc.Block[:]...)
	b = appendSigs(b, qc.Sigs)
	return appendBool(b, qc.Genesis)
}

// ---------------------------------------------------------------------------
// Reader (decoding)
// ---------------------------------------------------------------------------

// wireReader consumes a wire payload front to back. The first violation
// (short buffer, forged count, non-canonical boolean) latches bad; all
// subsequent reads return zero values, and DecodeMessage maps the latched
// state to ErrMalformed.
type wireReader struct {
	buf   []byte
	arena []byte // shared backing for decoded variable-length fields
	bad   bool
}

// alloc carves n bytes out of the reader's arena, so a message's many
// variable-length fields (a batch's 100 transaction values, a certificate's
// n−f signatures) cost one backing allocation instead of one each. The
// arena is sized by the remaining payload, which upper-bounds every
// variable byte still to decode; the rare second arena strands the old
// one's tail, but earlier slices stay valid.
func (r *wireReader) alloc(n int) []byte {
	if n > len(r.arena) {
		r.arena = make([]byte, n+len(r.buf))
	}
	out := r.arena[:n:n]
	r.arena = r.arena[n:]
	return out
}

func (r *wireReader) take(n int) []byte {
	if r.bad || n < 0 || len(r.buf) < n {
		r.bad = true
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *wireReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.bad = true // non-canonical encoding
		return false
	}
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *wireReader) digest() Digest {
	var d Digest
	copy(d[:], r.take(32))
	return d
}

// count reads a u32 element count and bounds it by the bytes remaining:
// each element occupies at least elemMin bytes, so a forged count can never
// force an allocation larger than the (already length-capped) frame.
func (r *wireReader) count(elemMin int) int {
	n := int(r.u32())
	if r.bad {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n < 0 || n > len(r.buf)/elemMin {
		r.bad = true
		return 0
	}
	return n
}

// bytes reads a u32-length-prefixed byte string into an arena-backed copy
// (the source buffer is transport-owned and reused across frames). Zero
// length decodes as nil.
func (r *wireReader) bytes() []byte {
	n := r.count(1)
	if n == 0 {
		return nil
	}
	src := r.take(n)
	if src == nil {
		return nil
	}
	dst := r.alloc(n)
	copy(dst, src)
	return dst
}

func (r *wireReader) sig() Signature {
	return Signature{Signer: NodeID(r.u32()), Bytes: r.bytes()}
}

// sigMinWire is the minimum wire footprint of one Signature (signer + empty
// byte string), bounding forged signature counts.
const sigMinWire = 4 + 4

func (r *wireReader) sigs() []Signature {
	n := r.count(sigMinWire)
	if n == 0 {
		return nil
	}
	out := make([]Signature, n)
	for i := range out {
		out[i] = r.sig()
	}
	return out
}

func (r *wireReader) claim() Claim {
	return Claim{View: View(r.u64()), Digest: r.digest(), Empty: r.boolean()}
}

// txnMinWire is the minimum wire footprint of one Transaction.
const txnMinWire = 4 + 8 + 1 + 8 + 4

func (r *wireReader) batch() *Batch {
	switch r.u8() {
	case 0:
		return nil
	case 1:
	default:
		r.bad = true
		return nil
	}
	b := &Batch{
		ID:        r.digest(),
		Submitted: time.Duration(r.u64()),
		NoOp:      r.boolean(),
	}
	n := r.count(txnMinWire)
	if n > 0 {
		b.Txns = make([]Transaction, n)
		for i := range b.Txns {
			t := &b.Txns[i]
			t.Client = NodeID(r.u32())
			t.Seq = r.u64()
			t.Op = r.u8()
			t.Key = r.u64()
			t.Value = r.bytes()
		}
	}
	if r.bad {
		return nil
	}
	return b
}

func (r *wireReader) qc() QC {
	return QC{View: View(r.u64()), Block: r.digest(), Sigs: r.sigs(), Genesis: r.boolean()}
}

// ---------------------------------------------------------------------------
// SpotLess messages
// ---------------------------------------------------------------------------

// AppendBinary appends the fixed-layout wire body to b.
func (p *Propose) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(p.Instance))
	b = appendU64(b, uint64(p.View))
	b = appendBatch(b, p.Batch)
	b = append(b, byte(p.Parent.Kind))
	b = appendU64(b, uint64(p.Parent.ParentView))
	b = append(b, p.Parent.ParentDigest[:]...)
	b = appendSigs(b, p.Parent.Cert)
	return appendSig(b, p.Sig)
}

func decodePropose(r *wireReader) Message {
	p := &Propose{
		Instance: int32(r.u32()),
		View:     View(r.u64()),
		Batch:    r.batch(),
	}
	p.Parent.Kind = JustKind(r.u8())
	if p.Parent.Kind > JustClaim {
		r.bad = true
	}
	p.Parent.ParentView = View(r.u64())
	p.Parent.ParentDigest = r.digest()
	p.Parent.Cert = r.sigs()
	p.Sig = r.sig()
	return p
}

// AppendBinary appends the fixed-layout wire body to b.
func (s *Sync) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(s.Instance))
	b = appendU64(b, uint64(s.View))
	b = appendClaim(b, s.Claim)
	b = appendU32(b, uint32(len(s.CP)))
	for i := range s.CP {
		b = appendU64(b, uint64(s.CP[i].View))
		b = append(b, s.CP[i].Digest[:]...)
	}
	b = appendBool(b, s.Retransmit)
	return appendSig(b, s.Sig)
}

func decodeSync(r *wireReader) Message {
	s := &Sync{
		Instance: int32(r.u32()),
		View:     View(r.u64()),
		Claim:    r.claim(),
	}
	if n := r.count(8 + 32); n > 0 {
		s.CP = make([]CPEntry, n)
		for i := range s.CP {
			s.CP[i] = CPEntry{View: View(r.u64()), Digest: r.digest()}
		}
	}
	s.Retransmit = r.boolean()
	s.Sig = r.sig()
	return s
}

// AppendBinary appends the fixed-layout wire body to b.
func (a *Ask) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(a.Instance))
	b = appendU64(b, uint64(a.View))
	return appendClaim(b, a.Claim)
}

func decodeAsk(r *wireReader) Message {
	return &Ask{Instance: int32(r.u32()), View: View(r.u64()), Claim: r.claim()}
}

// ---------------------------------------------------------------------------
// Pbft / RCC messages
// ---------------------------------------------------------------------------

// AppendBinary appends the fixed-layout wire body to b.
func (m *PrePrepare) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Instance))
	b = appendU64(b, uint64(m.PView))
	b = appendU64(b, m.Seq)
	return appendBatch(b, m.Batch)
}

func decodePrePrepare(r *wireReader) Message {
	return &PrePrepare{Instance: int32(r.u32()), PView: View(r.u64()), Seq: r.u64(), Batch: r.batch()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *Prepare) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Instance))
	b = appendU64(b, uint64(m.PView))
	b = appendU64(b, m.Seq)
	return append(b, m.Digest[:]...)
}

func decodePrepare(r *wireReader) Message {
	return &Prepare{Instance: int32(r.u32()), PView: View(r.u64()), Seq: r.u64(), Digest: r.digest()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *PbftCommit) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Instance))
	b = appendU64(b, uint64(m.PView))
	b = appendU64(b, m.Seq)
	return append(b, m.Digest[:]...)
}

func decodePbftCommit(r *wireReader) Message {
	return &PbftCommit{Instance: int32(r.u32()), PView: View(r.u64()), Seq: r.u64(), Digest: r.digest()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *ViewChange) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Instance))
	b = appendU64(b, uint64(m.NewPView))
	return appendU64(b, m.LastSeq)
}

func decodeViewChange(r *wireReader) Message {
	return &ViewChange{Instance: int32(r.u32()), NewPView: View(r.u64()), LastSeq: r.u64()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *NewPView) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Instance))
	b = appendU64(b, uint64(m.PView))
	return appendU64(b, m.StartSeq)
}

func decodeNewPView(r *wireReader) Message {
	return &NewPView{Instance: int32(r.u32()), PView: View(r.u64()), StartSeq: r.u64()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *Complaint) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Instance))
	return appendU64(b, m.Round)
}

func decodeComplaint(r *wireReader) Message {
	return &Complaint{Instance: int32(r.u32()), Round: r.u64()}
}

// ---------------------------------------------------------------------------
// HotStuff / Narwhal-HS messages
// ---------------------------------------------------------------------------

// AppendBinary appends the fixed-layout wire body to b.
func (m *HSProposal) AppendBinary(b []byte) []byte {
	b = appendU64(b, uint64(m.View))
	b = append(b, m.Block[:]...)
	b = append(b, m.Parent[:]...)
	b = appendBatch(b, m.Batch)
	b = appendU32(b, uint32(len(m.Refs)))
	for i := range m.Refs {
		b = append(b, m.Refs[i][:]...)
	}
	return appendQC(b, &m.Justify)
}

func decodeHSProposal(r *wireReader) Message {
	m := &HSProposal{
		View:   View(r.u64()),
		Block:  r.digest(),
		Parent: r.digest(),
		Batch:  r.batch(),
	}
	if n := r.count(32); n > 0 {
		m.Refs = make([]Digest, n)
		for i := range m.Refs {
			m.Refs[i] = r.digest()
		}
	}
	m.Justify = r.qc()
	return m
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *HSVote) AppendBinary(b []byte) []byte {
	b = appendU64(b, uint64(m.View))
	b = append(b, m.Block[:]...)
	return appendSig(b, m.Sig)
}

func decodeHSVote(r *wireReader) Message {
	return &HSVote{View: View(r.u64()), Block: r.digest(), Sig: r.sig()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *HSNewView) AppendBinary(b []byte) []byte {
	b = appendU64(b, uint64(m.View))
	return appendQC(b, &m.Justify)
}

func decodeHSNewView(r *wireReader) Message {
	return &HSNewView{View: View(r.u64()), Justify: r.qc()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *NarwhalBatch) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Origin))
	return appendBatch(b, m.Batch)
}

func decodeNarwhalBatch(r *wireReader) Message {
	return &NarwhalBatch{Origin: NodeID(r.u32()), Batch: r.batch()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *NarwhalAck) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Origin))
	b = append(b, m.BatchID[:]...)
	return appendSig(b, m.Sig)
}

func decodeNarwhalAck(r *wireReader) Message {
	return &NarwhalAck{Origin: NodeID(r.u32()), BatchID: r.digest(), Sig: r.sig()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *NarwhalCert) AppendBinary(b []byte) []byte {
	b = append(b, m.BatchID[:]...)
	return appendSigs(b, m.Sigs)
}

func decodeNarwhalCert(r *wireReader) Message {
	return &NarwhalCert{BatchID: r.digest(), Sigs: r.sigs()}
}

// ---------------------------------------------------------------------------
// SpotLess batch dissemination
// ---------------------------------------------------------------------------

// AppendBinary appends the fixed-layout wire body to b.
func (m *BatchDigest) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Origin))
	b = appendBatch(b, m.Batch)
	return appendBool(b, m.Pull)
}

func decodeBatchDigest(r *wireReader) Message {
	return &BatchDigest{Origin: NodeID(r.u32()), Batch: r.batch(), Pull: r.boolean()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *BatchAck) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Origin))
	b = append(b, m.BatchID[:]...)
	return appendSig(b, m.Sig)
}

func decodeBatchAck(r *wireReader) Message {
	return &BatchAck{Origin: NodeID(r.u32()), BatchID: r.digest(), Sig: r.sig()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *BatchCert) AppendBinary(b []byte) []byte {
	b = append(b, m.BatchID[:]...)
	return appendSigs(b, m.Sigs)
}

func decodeBatchCert(r *wireReader) Message {
	return &BatchCert{BatchID: r.digest(), Sigs: r.sigs()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *BatchChunk) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Origin))
	b = append(b, m.BatchID[:]...)
	b = appendU32(b, m.K)
	b = appendU32(b, m.DataLen)
	b = appendU32(b, uint32(len(m.Hashes)))
	for i := range m.Hashes {
		b = append(b, m.Hashes[i][:]...)
	}
	b = appendU32(b, m.Index)
	b = appendBytes(b, m.Data)
	b = appendBool(b, m.Pull)
	return appendSigs(b, m.Sigs)
}

func decodeBatchChunk(r *wireReader) Message {
	m := &BatchChunk{
		Origin:  NodeID(r.u32()),
		BatchID: r.digest(),
		K:       r.u32(),
		DataLen: r.u32(),
	}
	if n := r.count(32); n > 0 {
		m.Hashes = make([]Digest, n)
		for i := range m.Hashes {
			m.Hashes[i] = r.digest()
		}
	}
	m.Index = r.u32()
	m.Data = r.bytes()
	m.Pull = r.boolean()
	m.Sigs = r.sigs()
	return m
}

// EncodeBatchPayload serializes a batch with the wire codec's batch layout —
// the byte string the erasure codec splits into chunks. Deterministic and
// canonical: DecodeBatchPayload(EncodeBatchPayload(b)) round-trips exactly.
func EncodeBatchPayload(b *Batch) []byte {
	return appendBatch(nil, b)
}

// DecodeBatchPayload parses a payload produced by EncodeBatchPayload,
// applying the same strict canonical-decoding rules as DecodeMessage (a
// reconstructed payload that is not a canonical batch encoding returns
// ErrMalformed, never panics).
func DecodeBatchPayload(data []byte) (*Batch, error) {
	r := wireReader{buf: data}
	b := r.batch()
	if r.bad || len(r.buf) != 0 || b == nil {
		return nil, ErrMalformed
	}
	return b, nil
}

// ---------------------------------------------------------------------------
// Checkpointing & state transfer
// ---------------------------------------------------------------------------

// AppendBinary appends the fixed-layout wire body to b.
func (m *Checkpoint) AppendBinary(b []byte) []byte {
	b = appendU64(b, m.Height)
	b = append(b, m.StateHash[:]...)
	return appendSig(b, m.Sig)
}

func decodeCheckpoint(r *wireReader) Message {
	return &Checkpoint{Height: r.u64(), StateHash: r.digest(), Sig: r.sig()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *FetchState) AppendBinary(b []byte) []byte {
	b = appendU64(b, m.Have)
	b = appendU64(b, m.Head)
	b = append(b, m.HeadHash[:]...)
	return appendBool(b, m.WantSnapshot)
}

func decodeFetchState(r *wireReader) Message {
	return &FetchState{Have: r.u64(), Head: r.u64(), HeadHash: r.digest(), WantSnapshot: r.boolean()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *StateChunk) AppendBinary(b []byte) []byte {
	b = appendU64(b, m.Cert.Height)
	b = append(b, m.Cert.StateHash[:]...)
	b = appendSigs(b, m.Cert.Sigs)
	b = append(b, m.ExecHash[:]...)
	b = append(b, m.LedgerResume[:]...)
	b = appendU32(b, uint32(len(m.Anchors)))
	for i := range m.Anchors {
		b = appendU64(b, uint64(m.Anchors[i].View))
		b = append(b, m.Anchors[i].Digest[:]...)
	}
	b = appendU32(b, uint32(len(m.Blocks)))
	for i := range m.Blocks {
		blk := &m.Blocks[i]
		b = appendU64(b, blk.Height)
		b = append(b, blk.Prev[:]...)
		b = appendU32(b, uint32(blk.Instance))
		b = appendU64(b, uint64(blk.View))
		b = append(b, blk.BatchID[:]...)
		b = append(b, blk.Proposal[:]...)
		b = append(b, blk.Results[:]...)
		b = append(b, blk.Hash[:]...)
	}
	return appendBytes(b, m.Snapshot)
}

// blockRecordWire is the exact wire footprint of one BlockRecord.
const blockRecordWire = 8 + 32 + 4 + 8 + 32 + 32 + 32 + 32

func decodeStateChunk(r *wireReader) Message {
	m := &StateChunk{}
	m.Cert.Height = r.u64()
	m.Cert.StateHash = r.digest()
	m.Cert.Sigs = r.sigs()
	m.ExecHash = r.digest()
	m.LedgerResume = r.digest()
	if n := r.count(8 + 32); n > 0 {
		m.Anchors = make([]Anchor, n)
		for i := range m.Anchors {
			m.Anchors[i] = Anchor{View: View(r.u64()), Digest: r.digest()}
		}
	}
	if n := r.count(blockRecordWire); n > 0 {
		m.Blocks = make([]BlockRecord, n)
		for i := range m.Blocks {
			blk := &m.Blocks[i]
			blk.Height = r.u64()
			blk.Prev = r.digest()
			blk.Instance = int32(r.u32())
			blk.View = View(r.u64())
			blk.BatchID = r.digest()
			blk.Proposal = r.digest()
			blk.Results = r.digest()
			blk.Hash = r.digest()
		}
	}
	m.Snapshot = r.bytes()
	return m
}

// ---------------------------------------------------------------------------
// Client traffic
// ---------------------------------------------------------------------------

// AppendBinary appends the fixed-layout wire body to b.
func (m *Request) AppendBinary(b []byte) []byte {
	return appendBatch(b, m.Batch)
}

func decodeRequest(r *wireReader) Message {
	return &Request{Batch: r.batch()}
}

// AppendBinary appends the fixed-layout wire body to b.
func (m *Inform) AppendBinary(b []byte) []byte {
	b = appendU32(b, uint32(m.Replica))
	b = append(b, m.BatchID[:]...)
	return append(b, m.Results[:]...)
}

func decodeInform(r *wireReader) Message {
	return &Inform{Replica: NodeID(r.u32()), BatchID: r.digest(), Results: r.digest()}
}
