package types

import (
	"crypto/sha256"
	"encoding/binary"
)

// ---------------------------------------------------------------------------
// SpotLess messages (§3.1–§3.4)
// ---------------------------------------------------------------------------

// Claim asserts which proposal (if any) a replica received in a view
// (claim(P) or claim(∅), §3.1).
type Claim struct {
	View   View
	Digest Digest // digest of the claimed proposal
	Empty  bool   // claim(∅): no valid proposal received in View
}

// CPEntry is one element of the CP set carried by Sync messages: the view
// and digest of a conditionally prepared proposal with view ≥ v_lock (§3.3).
type CPEntry struct {
	View   View
	Digest Digest
}

// Justification names the parent a proposal extends and proves it is
// extendable: either a certificate of n−f signed Sync claims (rule E1) or a
// bare claim reference whose backing is the receiver's own Sync record
// (rule E2).
type Justification struct {
	Kind         JustKind
	ParentView   View
	ParentDigest Digest
	// Cert carries n−f signatures over the parent's Sync claim when
	// Kind == JustCert. Empty for JustClaim and JustGenesis.
	Cert []Signature
}

// JustKind discriminates proposal justifications.
type JustKind uint8

const (
	// JustGenesis marks proposals extending the genesis proposal.
	JustGenesis JustKind = iota
	// JustCert: the primary holds cert(P′) — n−f signed Sync claims (E1).
	JustCert
	// JustClaim: the primary saw n−f Syncs with P′ in their CP sets (E2).
	JustClaim
)

// Propose is the primary's proposal for a view of one SpotLess instance
// (message P := Propose(v, τ, cert(P′)) of §3.1).
type Propose struct {
	Instance int32
	View     View
	Batch    *Batch
	Parent   Justification
	Sig      Signature // primary signature over ProposalDigest
}

// ProposalDigest identifies a proposal: hash over (instance, view, batch id,
// parent view, parent digest).
func ProposalDigest(instance int32, view View, batchID Digest, parentView View, parentDigest Digest) Digest {
	var buf [4 + 8 + 32 + 8 + 32]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(instance))
	binary.LittleEndian.PutUint64(buf[4:], uint64(view))
	copy(buf[12:], batchID[:])
	binary.LittleEndian.PutUint64(buf[44:], uint64(parentView))
	copy(buf[52:], parentDigest[:])
	return sha256.Sum256(buf[:])
}

// Digest returns the proposal's identifying digest.
func (p *Propose) Digest() Digest {
	return ProposalDigest(p.Instance, p.View, p.Batch.ID, p.Parent.ParentView, p.Parent.ParentDigest)
}

// WireSize models the serialized proposal size: control overhead + batch
// payload + any embedded certificate signatures.
func (p *Propose) WireSize() int {
	return ControlMsgSize + BatchWireSize(p.Batch) + len(p.Parent.Cert)*SignatureSize
}

// ClaimBytes is the byte string a replica signs when issuing a Sync claim;
// certificates aggregate these signatures.
func ClaimBytes(instance int32, c Claim) []byte {
	var buf [4 + 8 + 32 + 1]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(instance))
	binary.LittleEndian.PutUint64(buf[4:], uint64(c.View))
	copy(buf[12:], c.Digest[:])
	if c.Empty {
		buf[44] = 1
	}
	return buf[:]
}

// Sync is the all-to-all vote/synchronization message of §3.1 and §3.4:
// ms_R := Sync(v, claim(P), CP) with the optional Υ retransmission flag.
type Sync struct {
	Instance   int32
	View       View
	Claim      Claim
	CP         []CPEntry
	Retransmit bool      // Υ: ask receivers to retransmit their view-v Syncs
	Sig        Signature // signature over ClaimBytes (MACs are transport-level)
}

// WireSize models the Sync size; the 432 B figure of §6.1 covers the claim,
// a small CP set, MAC and signature.
func (s *Sync) WireSize() int { return ControlMsgSize + len(s.CP)*8 }

// Ask requests the full proposal behind a claim from replicas that recorded
// it (the Ask-recovery mechanism of §3.3).
type Ask struct {
	Instance int32
	View     View
	Claim    Claim
}

// WireSize implements Message.
func (a *Ask) WireSize() int { return ControlMsgSize }

// ---------------------------------------------------------------------------
// Pbft / RCC messages (§6.2 baselines)
// ---------------------------------------------------------------------------

// PrePrepare is the Pbft primary's proposal for a sequence slot. RCC reuses
// it per instance.
type PrePrepare struct {
	Instance int32
	PView    View // Pbft view (primary epoch), not a SpotLess view
	Seq      uint64
	Batch    *Batch
}

// WireSize implements Message.
func (m *PrePrepare) WireSize() int { return ControlMsgSize + BatchWireSize(m.Batch) }

// Prepare is the Pbft backup echo (MAC-authenticated).
type Prepare struct {
	Instance int32
	PView    View
	Seq      uint64
	Digest   Digest
}

// WireSize implements Message.
func (m *Prepare) WireSize() int { return ControlMsgSize }

// PbftCommit is the Pbft commit vote (named to avoid clashing with Commit).
type PbftCommit struct {
	Instance int32
	PView    View
	Seq      uint64
	Digest   Digest
}

// WireSize implements Message.
func (m *PbftCommit) WireSize() int { return ControlMsgSize }

// ViewChange triggers a Pbft primary change after a timeout; the simplified
// baseline carries only the highest committed sequence.
type ViewChange struct {
	Instance int32
	NewPView View
	LastSeq  uint64
}

// WireSize implements Message.
func (m *ViewChange) WireSize() int { return ControlMsgSize }

// NewPView installs a new Pbft view once 2f+1 ViewChange messages arrived.
type NewPView struct {
	Instance int32
	PView    View
	StartSeq uint64
}

// WireSize implements Message.
func (m *NewPView) WireSize() int { return ControlMsgSize }

// Complaint is RCC's per-instance failure complaint; 2f+1 complaints suspend
// the instance for an exponentially growing number of rounds.
type Complaint struct {
	Instance int32
	Round    uint64
}

// WireSize implements Message.
func (m *Complaint) WireSize() int { return ControlMsgSize }

// ---------------------------------------------------------------------------
// HotStuff / Narwhal-HS messages (§6.2 baselines)
// ---------------------------------------------------------------------------

// QC is a quorum certificate: the paper's HotStuff implementation represents
// threshold signatures as lists of n−f individual signatures (§6.2), which
// is what we model (and what drives its verification cost).
type QC struct {
	View    View
	Block   Digest
	Sigs    []Signature
	Genesis bool
}

// HSProposal is the chained-HotStuff leader proposal for a view. Narwhal-HS
// blocks carry digest references to separately disseminated batches instead
// of inline payloads.
type HSProposal struct {
	View    View
	Block   Digest
	Parent  Digest
	Batch   *Batch
	Refs    []Digest // Narwhal-HS: certified-batch references
	Justify QC
}

// WireSize implements Message.
func (m *HSProposal) WireSize() int {
	return ControlMsgSize + BatchWireSize(m.Batch) + len(m.Refs)*32 +
		len(m.Justify.Sigs)*SignatureSize
}

// HSVote is a replica's signed vote sent to the next leader.
type HSVote struct {
	View  View
	Block Digest
	Sig   Signature
}

// WireSize implements Message.
func (m *HSVote) WireSize() int { return ControlMsgSize + SignatureSize }

// HSNewView carries the highest QC to the next leader on timeout.
type HSNewView struct {
	View    View
	Justify QC
}

// WireSize implements Message.
func (m *HSNewView) WireSize() int {
	return ControlMsgSize + len(m.Justify.Sigs)*SignatureSize
}

// NarwhalBatch is the Narwhal worker broadcast: the actual batch content
// disseminated by its originating replica before ordering.
type NarwhalBatch struct {
	Origin NodeID
	Batch  *Batch
}

// WireSize implements Message.
func (m *NarwhalBatch) WireSize() int { return ControlMsgSize + BatchWireSize(m.Batch) }

// NarwhalAck is a signed availability acknowledgement for a broadcast batch.
type NarwhalAck struct {
	Origin  NodeID
	BatchID Digest
	Sig     Signature
}

// WireSize implements Message.
func (m *NarwhalAck) WireSize() int { return ControlMsgSize + SignatureSize }

// NarwhalCert is the availability certificate for one batch: 2f+1 signed
// acknowledgements every replica verifies (the CPU bottleneck of §6.4).
type NarwhalCert struct {
	BatchID Digest
	Sigs    []Signature
}

// WireSize implements Message.
func (m *NarwhalCert) WireSize() int { return ControlMsgSize + len(m.Sigs)*SignatureSize }

// ---------------------------------------------------------------------------
// SpotLess batch dissemination (internal/dissem)
// ---------------------------------------------------------------------------

// BatchDigest is the dissemination broadcast of one client batch: the
// origin replica sends the payload once, ahead of consensus, and proposals
// later reference only the batch digest. With Pull set the message is a
// backfill request instead: Batch carries only the ID and the receiver
// answers with a push (plus the certificate, if it holds one).
type BatchDigest struct {
	Origin NodeID
	Batch  *Batch
	Pull   bool
}

// WireSize implements Message; a Pull request carries no transactions and
// costs a control message.
func (m *BatchDigest) WireSize() int { return ControlMsgSize + BatchWireSize(m.Batch) }

// BatchAck is a replica's signed availability acknowledgement: it stored
// the pushed payload and vouches to serve it. Sent to the origin only.
type BatchAck struct {
	Origin  NodeID
	BatchID Digest
	Sig     Signature
}

// WireSize implements Message.
func (m *BatchAck) WireSize() int { return ControlMsgSize + SignatureSize }

// BatchCert is the availability certificate the origin assembles from n−f
// distinct signed acks and broadcasts: once held, a digest-referencing
// proposal may be claimed, because at least n−2f ≥ f+1 correct replicas
// store the payload and any replica can backfill it.
type BatchCert struct {
	BatchID Digest
	Sigs    []Signature
}

// WireSize implements Message.
func (m *BatchCert) WireSize() int { return ControlMsgSize + len(m.Sigs)*SignatureSize }

// AckBytes is the byte string a replica signs when acknowledging a
// disseminated batch; availability certificates aggregate these signatures.
func AckBytes(id Digest) []byte {
	buf := make([]byte, 0, 37)
	buf = append(buf, "ack:"...)
	return append(buf, id[:]...)
}

// ChunkAny is the Index value of a BatchChunk pull that asks the receiver
// for whichever chunk it holds — used when the puller learned the digest
// from consensus without ever seeing the origin's push, so it cannot map
// chunk indices to their assigned holders.
const ChunkAny = ^uint32(0)

// BatchChunk is the coded-dissemination unit (dissem.Config.CodeK > 0): the
// origin splits a batch payload into k data + (n−1−k) parity chunks under
// the internal/rs codec, binds them with the chunk-hash commitment
// (K, DataLen, Hashes — see crypto.ChunkCommitRoot), and sends each peer
// exactly one chunk instead of the full payload. With Pull set the message
// is a chunk backfill request instead: Data is empty, Index names the wanted
// chunk (or ChunkAny), and the receiver answers with a chunk it holds.
// Backfill responses carry the availability certificate inline (Sigs over
// CodedAckBytes) so a replica that missed both push and certificate recovers
// the commitment and the certificate from any single response.
type BatchChunk struct {
	Origin  NodeID
	BatchID Digest
	K       uint32      // data-chunk count of the commitment
	DataLen uint32      // unpadded payload byte length
	Hashes  []Digest    // ordered per-chunk hashes (the commitment preimage)
	Index   uint32      // which chunk Data carries (or the requested chunk on Pull)
	Data    []byte      // chunk bytes; empty on Pull
	Pull    bool        // backfill request
	Sigs    []Signature // optional inline availability certificate
}

// WireSize implements Message.
func (m *BatchChunk) WireSize() int {
	return ControlMsgSize + len(m.Data) + len(m.Hashes)*32 + len(m.Sigs)*SignatureSize
}

// CodedAckBytes is the byte string a replica signs when acknowledging
// custody of a coded chunk: unlike the full-payload AckBytes it binds the
// commitment root, so at most one commitment per batch id can ever gather
// an n−f certificate (correct replicas ack only the first commitment they
// see, and two certificates would need f+1 common correct signers).
func CodedAckBytes(id, root Digest) []byte {
	buf := make([]byte, 0, 69)
	buf = append(buf, "cack:"...)
	buf = append(buf, id[:]...)
	return append(buf, root[:]...)
}

// ---------------------------------------------------------------------------
// Client traffic
// ---------------------------------------------------------------------------

// Request carries a batch of client transactions to a replica.
type Request struct {
	Batch *Batch
}

// WireSize implements Message.
func (m *Request) WireSize() int { return ControlMsgSize + BatchWireSize(m.Batch) }

// Inform is the post-execution reply to the client (§5); clients await f+1
// identical Informs.
type Inform struct {
	Replica NodeID
	BatchID Digest
	Results Digest // digest of execution results (identical across correct replicas)
}

// WireSize models the 1748 B reply for a 100-txn batch (§6.1).
func (m *Inform) WireSize() int { return ControlMsgSize } // per-batch share; harness scales by ReplyPerTxn

// InformWireSize returns the modelled reply size for a batch of β txns.
func InformWireSize(batchSize int) int { return ControlMsgSize + ReplyPerTxn*batchSize }
