// Package rs is a dependency-free systematic Reed-Solomon erasure codec
// over GF(2^8), sized for the dissemination layer's chunked batch spreading
// (internal/dissem): a batch payload splits into k data shards plus m−k
// parity shards, any k of the m shards reconstruct the payload, and the
// whole codeword is recomputable from any k shards — which is what lets a
// receiver re-encode after decoding and check every shard hash against the
// origin's commitment (the AVID-style consistency check).
//
// The field is GF(2^8) with the usual 0x11d reduction polynomial,
// implemented with exp/log tables. The encoding matrix is the systematic
// transform of a Vandermonde matrix (the top k×k block is inverted and
// multiplied through, leaving an identity over the data shards), so data
// shards are verbatim payload slices and decoding the failure-free case is
// a copy.
package rs

import (
	"errors"
	"fmt"
	"sync"
)

// Codec errors.
var (
	ErrInvalidParams = errors.New("rs: invalid coding parameters")
	ErrTooFewShards  = errors.New("rs: too few shards to reconstruct")
	ErrShardSize     = errors.New("rs: inconsistent shard sizes")
)

// ---------------------------------------------------------------------------
// GF(2^8) arithmetic
// ---------------------------------------------------------------------------

// genPoly is the reduction polynomial x^8+x^4+x^3+x^2+1.
const genPoly = 0x11d

var (
	// expTbl[i] = α^i for i in [0, 510): doubled so mul can skip the mod-255
	// reduction of the exponent sum.
	expTbl [510]byte
	logTbl [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTbl[i] = byte(x)
		logTbl[x] = byte(i)
		x <<= 1
		if x >= 256 {
			x ^= genPoly
		}
	}
	for i := 255; i < len(expTbl); i++ {
		expTbl[i] = expTbl[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTbl[int(logTbl[a])+int(logTbl[b])]
}

// gfInv returns the multiplicative inverse of a ≠ 0.
func gfInv(a byte) byte { return expTbl[255-int(logTbl[a])] }

// gfPow returns a^e for e ≥ 0.
func gfPow(a byte, e int) byte {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTbl[(int(logTbl[a])*e)%255]
}

// mulAdd computes dst[i] ^= coef·src[i] — the inner loop of both encoding
// and reconstruction.
func mulAdd(dst, src []byte, coef byte) {
	if coef == 0 {
		return
	}
	lc := int(logTbl[coef])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTbl[lc+int(logTbl[s])]
		}
	}
}

// ---------------------------------------------------------------------------
// Matrices over GF(2^8)
// ---------------------------------------------------------------------------

type matrix [][]byte

func newMatrix(rows, cols int) matrix {
	m := make(matrix, rows)
	backing := make([]byte, rows*cols)
	for r := range m {
		m[r] = backing[r*cols : (r+1)*cols : (r+1)*cols]
	}
	return m
}

// vandermonde builds the rows×cols matrix v[r][c] = r^c; any cols distinct
// rows are linearly independent, which is what makes every k-subset of
// shards decodable.
func vandermonde(rows, cols int) matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m[r][c] = gfPow(byte(r), c)
		}
	}
	return m
}

// times returns a·b.
func (a matrix) times(b matrix) matrix {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for i := 0; i < inner; i++ {
			if coef := a[r][i]; coef != 0 {
				mulAdd(out[r], b[i], coef)
			}
		}
	}
	return out
}

// inverted returns a⁻¹ by Gauss-Jordan elimination on [a | I].
func (a matrix) inverted() (matrix, error) {
	n := len(a)
	work := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(work[r], a[r])
		work[r][n+r] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("rs: singular matrix at column %d", col)
		}
		work[col], work[pivot] = work[pivot], work[col]
		if p := work[col][col]; p != 1 {
			scale := gfInv(p)
			for c := range work[col] {
				work[col][c] = gfMul(work[col][c], scale)
			}
		}
		for r := 0; r < n; r++ {
			if r != col && work[r][col] != 0 {
				mulAdd(work[r], work[col], work[r][col])
			}
		}
	}
	inv := newMatrix(n, n)
	for r := 0; r < n; r++ {
		copy(inv[r], work[r][n:])
	}
	return inv, nil
}

// ---------------------------------------------------------------------------
// Systematic encoding matrix cache
// ---------------------------------------------------------------------------

type codecKey struct{ k, m int }

var (
	codecMu  sync.Mutex
	codecTbl = map[codecKey]matrix{}
)

// codingMatrix returns the m×k systematic encoding matrix for (k, m): the
// top k rows are the identity (data shards are payload slices), the bottom
// m−k rows generate parity. Cached — a deployment uses one (k, m) forever.
func codingMatrix(k, m int) (matrix, error) {
	if k < 1 || m < k || m > 256 {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrInvalidParams, k, m)
	}
	key := codecKey{k, m}
	codecMu.Lock()
	defer codecMu.Unlock()
	if e, ok := codecTbl[key]; ok {
		return e, nil
	}
	v := vandermonde(m, k)
	topInv, err := v[:k].inverted()
	if err != nil {
		return nil, err
	}
	e := v.times(topInv)
	codecTbl[key] = e
	return e, nil
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

// ShardLen is the per-shard byte length for a payload of dataLen bytes split
// k ways: ceil(dataLen/k), at least 1 so empty payloads still produce
// hashable shards.
func ShardLen(k, dataLen int) int {
	if k < 1 {
		return 0
	}
	n := (dataLen + k - 1) / k
	if n == 0 {
		n = 1
	}
	return n
}

// Encode splits data into k data shards (zero-padded to equal length) and
// appends m−k parity shards, returning all m shards. data is copied; the
// shards share one backing allocation.
func Encode(k, m int, data []byte) ([][]byte, error) {
	enc, err := codingMatrix(k, m)
	if err != nil {
		return nil, err
	}
	sl := ShardLen(k, len(data))
	backing := make([]byte, m*sl)
	shards := make([][]byte, m)
	for i := range shards {
		shards[i] = backing[i*sl : (i+1)*sl : (i+1)*sl]
	}
	for i := 0; i < k; i++ {
		lo := i * sl
		if lo < len(data) {
			hi := lo + sl
			if hi > len(data) {
				hi = len(data)
			}
			copy(shards[i], data[lo:hi])
		}
	}
	for r := k; r < m; r++ {
		for j := 0; j < k; j++ {
			mulAdd(shards[r], shards[j], enc[r][j])
		}
	}
	return shards, nil
}

// Reconstruct fills every nil shard of a partial codeword in place. shards
// must have length m (the codeword width); at least k entries must be
// non-nil and of equal length. After a successful return all m shards are
// present — including parity — so the caller can re-hash the full codeword
// against a commitment.
func Reconstruct(k int, shards [][]byte) error {
	m := len(shards)
	enc, err := codingMatrix(k, m)
	if err != nil {
		return err
	}
	sl := -1
	have := make([]int, 0, k)
	for i, s := range shards {
		if s == nil {
			continue
		}
		if sl < 0 {
			sl = len(s)
		} else if len(s) != sl {
			return ErrShardSize
		}
		if len(have) < k {
			have = append(have, i)
		}
	}
	if len(have) < k {
		return fmt.Errorf("%w: need %d, have %d", ErrTooFewShards, k, len(have))
	}
	// Decode the k data shards from the first k present rows (identity
	// decode when they are already the data rows).
	data := make([][]byte, k)
	trivial := true
	for j, idx := range have {
		if idx != j {
			trivial = false
			break
		}
	}
	if trivial {
		for j := 0; j < k; j++ {
			data[j] = shards[j]
		}
	} else {
		sub := newMatrix(k, k)
		for r, idx := range have {
			copy(sub[r], enc[idx])
		}
		dec, err := sub.inverted()
		if err != nil {
			return err
		}
		backing := make([]byte, k*sl)
		for j := 0; j < k; j++ {
			data[j] = backing[j*sl : (j+1)*sl : (j+1)*sl]
			for i, idx := range have {
				mulAdd(data[j], shards[idx], dec[j][i])
			}
		}
	}
	// Re-encode every missing shard (data and parity alike) from the
	// decoded data shards.
	for i, s := range shards {
		if s != nil {
			continue
		}
		out := make([]byte, sl)
		if i < k {
			copy(out, data[i])
		} else {
			for j := 0; j < k; j++ {
				mulAdd(out, data[j], enc[i][j])
			}
		}
		shards[i] = out
	}
	return nil
}

// Join concatenates the k data shards and trims to dataLen (the unpadded
// payload length recorded in the commitment).
func Join(k int, shards [][]byte, dataLen int) ([]byte, error) {
	if k < 1 || len(shards) < k {
		return nil, ErrInvalidParams
	}
	out := make([]byte, 0, dataLen)
	for i := 0; i < k; i++ {
		if shards[i] == nil {
			return nil, ErrTooFewShards
		}
		out = append(out, shards[i]...)
	}
	if dataLen < 0 || dataLen > len(out) {
		return nil, ErrShardSize
	}
	return out[:dataLen:dataLen], nil
}
