package rs

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
)

// subsets enumerates all size-r subsets of [0, m) and calls fn with each.
func subsets(m, r int, fn func(drop []int)) {
	idx := make([]int, r)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == r {
			fn(idx)
			return
		}
		for i := start; i < m; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

// TestReconstructFromAnyKSubset is the codec's core property: for every
// (k, m) in the deployment range and every way of dropping m−k shards, the
// survivors reconstruct the identical payload AND the identical full
// codeword (which is what the dissemination layer's commitment check relies
// on).
func TestReconstructFromAnyKSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []struct{ k, m int }{{1, 3}, {2, 3}, {2, 5}, {3, 5}, {4, 7}, {4, 15}} {
		for _, dataLen := range []int{1, 5, 64, 257} {
			data := make([]byte, dataLen)
			rng.Read(data)
			orig, err := Encode(p.k, p.m, data)
			if err != nil {
				t.Fatalf("Encode(k=%d,m=%d): %v", p.k, p.m, err)
			}
			subsets(p.m, p.m-p.k, func(drop []int) {
				shards := make([][]byte, p.m)
				for i := range shards {
					shards[i] = append([]byte(nil), orig[i]...)
				}
				for _, d := range drop {
					shards[d] = nil
				}
				if err := Reconstruct(p.k, shards); err != nil {
					t.Fatalf("Reconstruct(k=%d,m=%d,drop=%v): %v", p.k, p.m, drop, err)
				}
				for i := range shards {
					if !bytes.Equal(shards[i], orig[i]) {
						t.Fatalf("k=%d m=%d drop=%v: shard %d diverged after reconstruction", p.k, p.m, drop, i)
					}
				}
				got, err := Join(p.k, shards, dataLen)
				if err != nil {
					t.Fatalf("Join: %v", err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("k=%d m=%d drop=%v: payload diverged", p.k, p.m, drop)
				}
			})
		}
	}
}

// TestCorruptedShardDetectedByCommitment models the dissemination layer's
// commitment rule: per-shard hashes are taken at encode time, a shard is
// corrupted, and reconstruction from a set including the corrupt shard must
// produce a codeword whose re-hash mismatches the commitment — corruption
// is detected, never silently decoded.
func TestCorruptedShardDetectedByCommitment(t *testing.T) {
	const k, m = 3, 5
	data := []byte("the availability certificate proves n-2f correct chunk holders")
	orig, err := Encode(k, m, data)
	if err != nil {
		t.Fatal(err)
	}
	commit := make([][32]byte, m)
	for i := range orig {
		commit[i] = sha256.Sum256(orig[i])
	}
	for corrupt := 0; corrupt < m; corrupt++ {
		shards := make([][]byte, m)
		// Keep exactly k shards, the corrupted one among them.
		kept := 0
		for i := 0; i < m && kept < k; i++ {
			if i != corrupt {
				shards[i] = append([]byte(nil), orig[i]...)
				kept++
			}
		}
		shards[corrupt] = append([]byte(nil), orig[corrupt]...)
		shards[corrupt][0] ^= 0xff
		// Drop one honest shard so the corrupt one participates in decoding.
		for i := range shards {
			if i != corrupt && shards[i] != nil {
				shards[i] = nil
				break
			}
		}
		if err := Reconstruct(k, shards); err != nil {
			t.Fatalf("corrupt=%d: %v", corrupt, err)
		}
		mismatch := false
		for i := range shards {
			if sha256.Sum256(shards[i]) != commit[i] {
				mismatch = true
				break
			}
		}
		if !mismatch {
			t.Fatalf("corrupt=%d: corrupted shard decoded to a codeword matching the commitment", corrupt)
		}
	}
}

// TestEncodeParamValidation: out-of-range parameters error cleanly.
func TestEncodeParamValidation(t *testing.T) {
	if _, err := Encode(0, 3, []byte("x")); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Encode(4, 3, []byte("x")); err == nil {
		t.Fatal("k>m accepted")
	}
	if _, err := Encode(2, 300, []byte("x")); err == nil {
		t.Fatal("m>256 accepted")
	}
	if err := Reconstruct(2, make([][]byte, 5)); err == nil {
		t.Fatal("reconstruct with zero shards accepted")
	}
	mixed := [][]byte{{1, 2}, {3}, nil, nil, nil}
	if err := Reconstruct(2, mixed); err == nil {
		t.Fatal("mismatched shard lengths accepted")
	}
}

// TestEmptyPayload: zero-length payloads still produce hashable shards and
// round-trip.
func TestEmptyPayload(t *testing.T) {
	shards, err := Encode(2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shards {
		if len(s) != 1 {
			t.Fatalf("shard %d has length %d, want 1", i, len(s))
		}
	}
	shards[0], shards[1] = nil, nil
	if err := Reconstruct(2, shards); err != nil {
		t.Fatal(err)
	}
	got, err := Join(2, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty payload decoded to %d bytes", len(got))
	}
}
