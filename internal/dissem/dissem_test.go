package dissem

import (
	"testing"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// fakeCtx is a minimal protocol.Context recording sends and serving one
// batch queue.
type fakeCtx struct {
	id      types.NodeID
	now     time.Duration
	prov    crypto.Provider
	sent    []types.Message
	sends   []sendRec // point-to-point sends with their recipient
	pending []*types.Batch
}

type sendRec struct {
	to  types.NodeID
	msg types.Message
}

func newFakeCtx(id types.NodeID) *fakeCtx {
	return &fakeCtx{id: id, prov: crypto.NewSimProvider(id, crypto.CostModel{}, nil)}
}

func (c *fakeCtx) ID() types.NodeID   { return c.id }
func (c *fakeCtx) N() int             { return 4 }
func (c *fakeCtx) F() int             { return 1 }
func (c *fakeCtx) Now() time.Duration { return c.now }
func (c *fakeCtx) Send(to types.NodeID, m types.Message) {
	c.sent = append(c.sent, m)
	c.sends = append(c.sends, sendRec{to: to, msg: m})
}
func (c *fakeCtx) Broadcast(m types.Message)                 { c.sent = append(c.sent, m) }
func (c *fakeCtx) SetTimer(time.Duration, protocol.TimerTag) {}
func (c *fakeCtx) VerifyAsync(protocol.VerifyJob)            {}
func (c *fakeCtx) Crypto() crypto.Provider                   { return c.prov }
func (c *fakeCtx) Deliver(types.Commit)                      {}
func (c *fakeCtx) Logf(string, ...any)                       {}
func (c *fakeCtx) NextBatch(int32) *types.Batch {
	if len(c.pending) == 0 {
		return nil
	}
	b := c.pending[0]
	c.pending = c.pending[1:]
	return b
}

func testBatch(seq uint64) *types.Batch {
	b := &types.Batch{
		Txns:      []types.Transaction{{Client: types.ClientIDBase, Seq: seq, Op: types.OpWrite, Key: seq, Value: []byte("v")}},
		Submitted: 1,
	}
	b.ID = types.ComputeBatchID(b.Txns)
	return b
}

func ackFrom(id types.NodeID, batchID types.Digest) *types.BatchAck {
	prov := crypto.NewSimProvider(id, crypto.CostModel{}, nil)
	return &types.BatchAck{Origin: 0, BatchID: batchID, Sig: prov.Sign(types.AckBytes(batchID))}
}

func newTestLayer(id types.NodeID) (*Layer, *fakeCtx, *[]types.Digest) {
	ctx := newFakeCtx(id)
	l := New(Config{N: 4, F: 1})
	var notified []types.Digest
	l.Bind(ctx, func(d types.Digest) { notified = append(notified, d) })
	return l, ctx, &notified
}

// TestOriginCertifiesAtQuorum: the origin broadcasts its batch once,
// assembles the availability certificate at n−f distinct acks (its own
// included), broadcasts the certificate, and hands the batch to the
// proposal queue exactly once.
func TestOriginCertifiesAtQuorum(t *testing.T) {
	l, ctx, notified := newTestLayer(0)
	b := testBatch(1)
	ctx.pending = append(ctx.pending, b)
	l.Pump()

	var pushes int
	for _, m := range ctx.sent {
		if d, ok := m.(*types.BatchDigest); ok && !d.Pull {
			pushes++
		}
	}
	if pushes != 1 {
		t.Fatalf("payload broadcast %d times, want exactly once", pushes)
	}
	if l.Certified(b.ID) {
		t.Fatal("certified with only the self-ack")
	}
	l.OnMessage(1, ackFrom(1, b.ID)) // 2 of 3
	if l.Certified(b.ID) {
		t.Fatal("certified below the n−f quorum")
	}
	l.OnMessage(2, ackFrom(2, b.ID)) // 3 of 3
	if !l.Certified(b.ID) {
		t.Fatal("not certified at n−f acks")
	}
	var certs int
	for _, m := range ctx.sent {
		if c, ok := m.(*types.BatchCert); ok {
			if len(c.Sigs) != 3 {
				t.Fatalf("certificate carries %d signatures, want 3", len(c.Sigs))
			}
			certs++
		}
	}
	if certs != 1 {
		t.Fatalf("certificate broadcast %d times, want exactly once", certs)
	}
	if len(*notified) == 0 {
		t.Fatal("notify did not fire on certification")
	}
	if got := l.NextCertified(); got == nil || got.ID != b.ID {
		t.Fatalf("NextCertified = %v, want the certified batch", got)
	}
	if again := l.NextCertified(); again != nil {
		t.Fatalf("NextCertified handed the batch out twice: %v", again)
	}
	// A duplicate ack after certification changes nothing.
	l.OnMessage(3, ackFrom(3, b.ID))
}

// TestReceiverAcksValidPayloadOnly: a receiving replica stores a pushed
// payload and acks the origin once; a payload that does not hash to its
// claimed ID is dropped without an ack.
func TestReceiverAcksValidPayloadOnly(t *testing.T) {
	l, ctx, _ := newTestLayer(1)
	b := testBatch(2)
	l.OnMessage(0, &types.BatchDigest{Origin: 0, Batch: b})
	l.OnMessage(0, &types.BatchDigest{Origin: 0, Batch: b}) // duplicate push
	var acks int
	for _, m := range ctx.sent {
		if _, ok := m.(*types.BatchAck); ok {
			acks++
		}
	}
	if acks != 1 {
		t.Fatalf("receiver sent %d acks, want exactly 1", acks)
	}
	if l.Payload(b.ID) == nil {
		t.Fatal("payload not stored")
	}

	forged := testBatch(3)
	forged.ID = types.Digest{0xba, 0xdd}
	before := len(ctx.sent)
	l.OnMessage(0, &types.BatchDigest{Origin: 0, Batch: forged})
	if len(ctx.sent) != before {
		t.Fatal("receiver acked a payload that does not hash to its ID")
	}
	if l.Payload(forged.ID) != nil {
		t.Fatal("forged payload stored")
	}
}

// TestBackfillFirstAskAndRateLimit: the very first backfill of a digest
// goes out immediately — even at virtual time zero, where a fresh entry's
// zero-valued rate-limit clock used to look like a recent ask — and
// repeats within BackfillInterval are suppressed.
func TestBackfillFirstAskAndRateLimit(t *testing.T) {
	l, ctx, _ := newTestLayer(0)
	id := types.Digest{7}
	l.Backfill(id, 1)
	var pulls int
	for _, m := range ctx.sent {
		if d, ok := m.(*types.BatchDigest); ok && d.Pull {
			pulls++
		}
	}
	if pulls < 2 { // hint + min(2f+1, n−1) fallback peers, minus overlaps
		t.Fatalf("first backfill sent %d pulls, want the hint plus the fallback window", pulls)
	}
	before := len(ctx.sent)
	ctx.now = 10 * time.Millisecond // < BackfillInterval
	l.Backfill(id, 1)
	if len(ctx.sent) != before {
		t.Fatal("backfill not rate-limited within BackfillInterval")
	}
	ctx.now = 100 * time.Millisecond
	l.Backfill(id, 1)
	if len(ctx.sent) == before {
		t.Fatal("backfill suppressed after BackfillInterval elapsed")
	}
}

// pullTargets collects the distinct recipients of pull requests sent after
// offset in the send log.
func pullTargets(ctx *fakeCtx, offset int) map[types.NodeID]bool {
	got := make(map[types.NodeID]bool)
	for _, s := range ctx.sends[offset:] {
		if d, ok := s.msg.(*types.BatchDigest); ok && d.Pull {
			got[s.to] = true
		}
	}
	return got
}

// TestBackfillAsksWidelyAndRotates: a certificate only proves n−f ackers —
// up to 2f−1 of the other replicas can be unhelpful (f faulty plus f−1
// correct non-holders) — so one backfill round must reach min(2f+1, n−1)
// distinct peers, and successive retries must rotate the window so every
// peer is eventually asked even when pulls are lost.
func TestBackfillAsksWidelyAndRotates(t *testing.T) {
	ctx := newFakeCtx(0)
	l := New(Config{N: 7, F: 2})
	l.Bind(ctx, nil)

	id := types.Digest{1}
	l.Backfill(id, -1)
	first := pullTargets(ctx, 0)
	if len(first) != 5 { // min(2f+1, n−1) = 5
		t.Fatalf("first backfill asked %d peers, want 2f+1 = 5", len(first))
	}
	union := make(map[types.NodeID]bool)
	for p := range first {
		union[p] = true
	}
	for round := 1; round <= 6; round++ {
		mark := len(ctx.sends)
		ctx.now += time.Second // past the rate limit
		l.Backfill(id, -1)
		got := pullTargets(ctx, mark)
		if len(got) != 5 {
			t.Fatalf("round %d asked %d peers, want 5", round, len(got))
		}
		for p := range got {
			if p == 0 {
				t.Fatal("backfill asked self")
			}
			union[p] = true
		}
	}
	if len(union) != 6 { // every other replica reached across rounds
		t.Fatalf("rotation reached %d distinct peers over 7 rounds, want all 6", len(union))
	}
}

// TestUnorderedStoreBounded: stored-but-unordered foreign entries are
// FIFO-bounded by MaxUnordered — a Byzantine peer pushing valid-hash
// garbage that never commits cannot grow the store without limit.
func TestUnorderedStoreBounded(t *testing.T) {
	ctx := newFakeCtx(1)
	l := New(Config{N: 4, F: 1, MaxUnordered: 4})
	l.Bind(ctx, nil)

	for seq := uint64(0); seq < 10; seq++ {
		l.OnMessage(0, &types.BatchDigest{Origin: 0, Batch: testBatch(seq + 100)})
	}
	l.mu.Lock()
	stored := len(l.entries)
	l.mu.Unlock()
	if stored > 4 {
		t.Fatalf("store holds %d unordered foreign entries, want ≤ MaxUnordered = 4", stored)
	}
}

// TestDeliveredTombstoneRefusesResurrection: once a delivered entry leaves
// the retention window, a replayed certificate or push must not re-create
// it — the digest stays Ordered (so the claim gate refuses it) and is
// neither re-certified, re-stored, nor re-acked.
func TestDeliveredTombstoneRefusesResurrection(t *testing.T) {
	ctx := newFakeCtx(1)
	l := New(Config{N: 4, F: 1, RetainOrdered: 1})
	l.Bind(ctx, nil)

	old, fresh := testBatch(201), testBatch(202)
	ack := func(b *types.Batch) []types.Signature {
		return []types.Signature{
			ackFrom(1, b.ID).Sig, ackFrom(2, b.ID).Sig, ackFrom(3, b.ID).Sig,
		}
	}
	for _, b := range []*types.Batch{old, fresh} {
		l.OnMessage(0, &types.BatchDigest{Origin: 0, Batch: b})
		l.OnMessage(0, &types.BatchCert{BatchID: b.ID, Sigs: ack(b)})
		l.Delivered(b.ID, 1)
	}
	// RetainOrdered=1: delivering fresh evicted old into a tombstone.
	if l.Payload(old.ID) != nil {
		t.Fatal("evicted payload still stored")
	}
	if !l.Ordered(old.ID) {
		t.Fatal("evicted delivered digest not tombstoned")
	}

	before := len(ctx.sent)
	l.OnMessage(0, &types.BatchCert{BatchID: old.ID, Sigs: ack(old)})
	if l.Certified(old.ID) {
		t.Fatal("replayed certificate resurrected a delivered digest")
	}
	l.OnMessage(0, &types.BatchDigest{Origin: 0, Batch: old})
	if l.Payload(old.ID) != nil {
		t.Fatal("replayed push re-stored a delivered payload")
	}
	if len(ctx.sent) != before {
		t.Fatal("replica acked or re-requested a tombstoned digest")
	}
	l.Backfill(old.ID, 0)
	if len(ctx.sent) != before {
		t.Fatal("backfill requested a tombstoned digest")
	}
	if !l.Ordered(old.ID) || !l.Ordered(fresh.ID) {
		t.Fatal("Ordered lost track of delivered digests")
	}
}

// TestIngressJobScreensSignatures: acks and certificates declare their
// signature checks for the substrate's verification pool; pushes verify by
// payload hash in the handler instead.
func TestIngressJobScreensSignatures(t *testing.T) {
	l, _, _ := newTestLayer(0)
	b := testBatch(4)

	job, ok := l.IngressJob(1, ackFrom(1, b.ID))
	if !ok || len(job.Checks) == 0 {
		t.Fatal("ack signature not screened at ingress")
	}
	cert := &types.BatchCert{BatchID: b.ID, Sigs: []types.Signature{
		ackFrom(1, b.ID).Sig, ackFrom(2, b.ID).Sig, ackFrom(3, b.ID).Sig,
	}}
	job, ok = l.IngressJob(1, cert)
	if !ok || len(job.Checks) != 3 || job.Quorum != 3 {
		t.Fatalf("certificate screening: ok=%v checks=%d quorum=%d, want 3 checks at quorum 3", ok, len(job.Checks), job.Quorum)
	}
	// A push carries no signatures: "no checks, deliver" per the substrate
	// contract (ok=false), the handler validates the payload hash.
	if job, ok = l.IngressJob(1, &types.BatchDigest{Origin: 1, Batch: b}); ok || len(job.Checks) != 0 {
		t.Fatal("push must declare no signature checks")
	}
}
