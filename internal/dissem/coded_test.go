package dissem

import (
	"testing"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/rs"
	"spotless/internal/types"
)

// newCodedLayer builds a coded-mode layer at n=4, f=1, k=2 (the maximum
// the availability certificate guarantees at this size: n−2f = 2).
func newCodedLayer(id types.NodeID) (*Layer, *fakeCtx, *[]types.Digest) {
	ctx := newFakeCtx(id)
	l := New(Config{N: 4, F: 1, CodeK: 2})
	var notified []types.Digest
	l.Bind(ctx, func(d types.Digest) { notified = append(notified, d) })
	return l, ctx, &notified
}

// encodeChunks erasure-codes a payload the way an origin does and returns
// the shards, the per-chunk hashes, and the commitment root.
func encodeChunks(t *testing.T, k, m int, payload []byte) ([][]byte, []types.Digest, types.Digest) {
	t.Helper()
	shards, err := rs.Encode(k, m, payload)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	hashes := make([]types.Digest, m)
	for i := range shards {
		hashes[i] = crypto.ChunkHash(shards[i])
	}
	return shards, hashes, crypto.ChunkCommitRoot(uint32(k), uint32(len(payload)), hashes)
}

// chunkMsg builds one valid chunk push for the given layout.
func chunkMsg(origin types.NodeID, id types.Digest, k, dataLen, idx int, shards [][]byte, hashes []types.Digest) *types.BatchChunk {
	return &types.BatchChunk{
		Origin: origin, BatchID: id,
		K: uint32(k), DataLen: uint32(dataLen), Hashes: hashes,
		Index: uint32(idx), Data: shards[idx],
	}
}

func codedAckFrom(id types.NodeID, batchID, root types.Digest) *types.BatchAck {
	prov := crypto.NewSimProvider(id, crypto.CostModel{}, nil)
	return &types.BatchAck{Origin: 0, BatchID: batchID, Sig: prov.Sign(types.CodedAckBytes(batchID, root))}
}

// sentChunks collects the chunk pushes (non-pull) recorded by the context.
func sentChunks(ctx *fakeCtx) []sendRec {
	var out []sendRec
	for _, s := range ctx.sends {
		if c, ok := s.msg.(*types.BatchChunk); ok && !c.Pull {
			out = append(out, s)
		}
	}
	return out
}

func countAcks(ctx *fakeCtx) int {
	n := 0
	for _, m := range ctx.sent {
		if _, ok := m.(*types.BatchAck); ok {
			n++
		}
	}
	return n
}

// TestCodedOriginSendsOneChunkPerPeerAndCertifies: in coded mode the origin
// sends each peer exactly ONE chunk (its assigned index, with the full
// commitment attached) instead of the whole payload — the egress cut under
// test — and still assembles the unchanged BatchCert at n−f coded acks.
func TestCodedOriginSendsOneChunkPerPeerAndCertifies(t *testing.T) {
	l, ctx, _ := newCodedLayer(0)
	// A payload big enough that the per-chunk commitment overhead (m hashes
	// per message) does not swamp the coding gain — the regime coding targets.
	txns := make([]types.Transaction, 64)
	for i := range txns {
		txns[i] = types.Transaction{Client: types.ClientIDBase, Seq: uint64(i), Op: types.OpWrite, Key: uint64(i), Value: []byte("value-payload-bytes")}
	}
	b := &types.Batch{Txns: txns, Submitted: 1}
	b.ID = types.ComputeBatchID(b.Txns)
	ctx.pending = append(ctx.pending, b)
	l.Pump()

	chunks := sentChunks(ctx)
	if len(chunks) != 3 {
		t.Fatalf("origin sent %d chunks, want one per peer = 3", len(chunks))
	}
	payload := types.EncodeBatchPayload(b)
	seen := make(map[types.NodeID]bool)
	var root types.Digest
	for _, s := range chunks {
		c := s.msg.(*types.BatchChunk)
		if seen[s.to] {
			t.Fatalf("peer %d pushed twice", s.to)
		}
		seen[s.to] = true
		if int(c.Index) != peerIdx(0, s.to) {
			t.Fatalf("peer %d got chunk %d, want its assigned %d", s.to, c.Index, peerIdx(0, s.to))
		}
		if len(c.Hashes) != 3 || int(c.K) != 2 || int(c.DataLen) != len(payload) {
			t.Fatalf("chunk commitment malformed: k=%d m=%d dataLen=%d", c.K, len(c.Hashes), c.DataLen)
		}
		if len(c.Data) != rs.ShardLen(2, len(payload)) {
			t.Fatalf("chunk data %d bytes, want shard length %d", len(c.Data), rs.ShardLen(2, len(payload)))
		}
		root = crypto.ChunkCommitRoot(c.K, c.DataLen, c.Hashes)
	}

	if l.Certified(b.ID) {
		t.Fatal("certified with only the self-ack")
	}
	l.OnMessage(1, codedAckFrom(1, b.ID, root))
	if l.Certified(b.ID) {
		t.Fatal("certified below the n−f quorum")
	}
	l.OnMessage(2, codedAckFrom(2, b.ID, root))
	if !l.Certified(b.ID) {
		t.Fatal("not certified at n−f coded acks")
	}
	if got := l.NextCertified(); got == nil || got.ID != b.ID {
		t.Fatalf("NextCertified = %v, want the certified batch", got)
	}

	st := l.Stats()
	if st.ChunksSent != 3 || st.PushedBytes == 0 {
		t.Fatalf("stats: ChunksSent=%d PushedBytes=%d, want 3 chunks and nonzero egress", st.ChunksSent, st.PushedBytes)
	}
	// The headline claim in miniature: coded egress must undercut what the
	// full push would have billed for the same batch.
	fullPush := uint64(3 * (&types.BatchDigest{Origin: 0, Batch: b}).WireSize())
	if st.PushedBytes >= fullPush {
		t.Fatalf("coded egress %d ≥ full-push egress %d", st.PushedBytes, fullPush)
	}
}

// TestCodedReceiverAcksOnlyValidAssignedChunk: a replica signs custody only
// after verifying its ASSIGNED chunk against the commitment — a corrupted
// chunk is rejected without an ack, and another peer's chunk is stored but
// never attested (the availability count needs distinct chunks per signer).
func TestCodedReceiverAcksOnlyValidAssignedChunk(t *testing.T) {
	l, ctx, _ := newCodedLayer(1)
	b := testBatch(2)
	payload := types.EncodeBatchPayload(b)
	shards, hashes, _ := encodeChunks(t, 2, 3, payload)

	// Another peer's chunk (index 1 belongs to replica 2): stored, no ack.
	l.OnMessage(0, chunkMsg(0, b.ID, 2, len(payload), 1, shards, hashes))
	if countAcks(ctx) != 0 {
		t.Fatal("receiver attested custody of a chunk that is not its assigned one")
	}

	// Our assigned chunk (index 0) with corrupted bytes: rejected, no ack.
	bad := chunkMsg(0, b.ID, 2, len(payload), 0, shards, hashes)
	bad.Data = append([]byte(nil), bad.Data...)
	bad.Data[0] ^= 0xFF
	l.OnMessage(0, bad)
	if countAcks(ctx) != 0 {
		t.Fatal("receiver acked a chunk whose hash does not match the commitment")
	}
	if l.Stats().ChunkRejects == 0 {
		t.Fatal("corrupted chunk not counted as rejected")
	}

	// The genuine assigned chunk: exactly one ack, to the origin, over the
	// coded preimage.
	l.OnMessage(0, chunkMsg(0, b.ID, 2, len(payload), 0, shards, hashes))
	l.OnMessage(0, chunkMsg(0, b.ID, 2, len(payload), 0, shards, hashes)) // duplicate
	if countAcks(ctx) != 1 {
		t.Fatalf("receiver sent %d acks, want exactly 1", countAcks(ctx))
	}
}

// TestCodedReconstructionAtExactlyK: any k verified chunks suffice — the
// receiver decodes the payload the moment the k-th distinct chunk lands —
// but delivery resolution stays gated until the layout's certificate
// arrives (an uncertified reconstruction must never deliver, or a
// Byzantine origin could split delivery between a fed victim and the
// poisoned rest of the cluster).
func TestCodedReconstructionAtExactlyK(t *testing.T) {
	l, _, _ := newCodedLayer(3)
	b := testBatch(3)
	payload := types.EncodeBatchPayload(b)
	shards, hashes, root := encodeChunks(t, 2, 3, payload)

	// One parity + one data chunk: an arbitrary k-subset, not the data prefix.
	l.OnMessage(0, chunkMsg(0, b.ID, 2, len(payload), 2, shards, hashes))
	if l.Payload(b.ID) != nil {
		t.Fatal("payload materialized below k chunks")
	}
	l.OnMessage(0, chunkMsg(0, b.ID, 2, len(payload), 1, shards, hashes))
	st := l.Stats()
	if st.Reconstructions != 1 || st.ReconstructFails != 0 {
		t.Fatalf("stats: Reconstructions=%d ReconstructFails=%d, want 1/0", st.Reconstructions, st.ReconstructFails)
	}
	if l.Payload(b.ID) != nil {
		t.Fatal("uncertified reconstruction resolved for delivery")
	}

	// The certificate lands (ingress verified it against our adopted root):
	// the already-reconstructed batch resolves, bit-for-bit the original.
	l.OnMessage(0, &types.BatchCert{BatchID: b.ID, Sigs: []types.Signature{
		codedAckFrom(0, b.ID, root).Sig,
		codedAckFrom(1, b.ID, root).Sig,
		codedAckFrom(2, b.ID, root).Sig,
	}})
	got := l.Payload(b.ID)
	if got == nil {
		t.Fatal("certified reconstruction did not resolve")
	}
	if got.ID != b.ID || types.ComputeBatchID(got.Txns) != types.ComputeBatchID(b.Txns) {
		t.Fatal("reconstructed batch differs from the original")
	}
}

// chunkPullTargets collects distinct recipients of chunk pulls after offset.
func chunkPullTargets(ctx *fakeCtx, offset int) map[types.NodeID]bool {
	got := make(map[types.NodeID]bool)
	for _, s := range ctx.sends[offset:] {
		if c, ok := s.msg.(*types.BatchChunk); ok && c.Pull {
			got[s.to] = true
		}
	}
	return got
}

// TestCodedBackfillRotatesAcrossPeers: with the layout unknown (digest
// learned from consensus, push never seen) one backfill round asks k+1
// distinct peers blind (ChunkAny — each responds with its own assigned
// chunk), and retries widen and rotate the window until every peer has
// been reached, mirroring the full-push 2f+1 rotation guarantee.
func TestCodedBackfillRotatesAcrossPeers(t *testing.T) {
	ctx := newFakeCtx(0)
	l := New(Config{N: 7, F: 2, CodeK: 3})
	l.Bind(ctx, nil)

	id := types.Digest{1}
	l.Backfill(id, -1)
	first := chunkPullTargets(ctx, 0)
	if len(first) != 4 { // k+1 = 4
		t.Fatalf("first round asked %d peers, want k+1 = 4", len(first))
	}
	union := make(map[types.NodeID]bool)
	for p := range first {
		union[p] = true
	}
	for round := 1; round <= 5; round++ {
		mark := len(ctx.sends)
		ctx.now += time.Second
		l.Backfill(id, -1)
		for p := range chunkPullTargets(ctx, mark) {
			if p == 0 {
				t.Fatal("backfill asked self")
			}
			union[p] = true
		}
	}
	if len(union) != 6 {
		t.Fatalf("rotation reached %d distinct peers, want all 6", len(union))
	}
}

// TestCodedBackfillAsksAssignedHolders: once the layout is known, backfill
// asks the assigned holders of the chunks still missing — targeted pulls,
// not the blind window — and escalates to the origin on retry.
func TestCodedBackfillAsksAssignedHolders(t *testing.T) {
	l, ctx, _ := newCodedLayer(1)
	b := testBatch(4)
	payload := types.EncodeBatchPayload(b)
	shards, hashes, _ := encodeChunks(t, 2, 3, payload)

	// Our assigned chunk only: layout adopted, chunks 1 and 2 missing.
	l.OnMessage(0, chunkMsg(0, b.ID, 2, len(payload), 0, shards, hashes))
	mark := len(ctx.sends)
	l.Backfill(b.ID, -1)
	for _, s := range ctx.sends[mark:] {
		c, ok := s.msg.(*types.BatchChunk)
		if !ok || !c.Pull {
			continue
		}
		if c.Index == types.ChunkAny {
			t.Fatal("known layout asked blind; want a targeted chunk index")
		}
		if want := chunkHolder(0, int(c.Index)); s.to != want {
			t.Fatalf("chunk %d pulled from %d, want its assigned holder %d", c.Index, s.to, want)
		}
	}

	// Retry: wider round, origin now included.
	mark = len(ctx.sends)
	ctx.now += time.Second
	l.Backfill(b.ID, -1)
	if !chunkPullTargets(ctx, mark)[0] {
		t.Fatal("retry did not escalate to the origin")
	}
}

// TestCodedEquivocatingOriginSingleAttestation: a correct replica attests
// custody for the FIRST commitment it sees per batch id and never again —
// so an equivocating origin cannot gather certificates for two layouts —
// yet it still adopts a conflicting layout when a verified certificate
// arrives inline, because that one provably won.
func TestCodedEquivocatingOriginSingleAttestation(t *testing.T) {
	l, ctx, _ := newCodedLayer(1)
	b := testBatch(5)
	payload := types.EncodeBatchPayload(b)
	goodShards, goodHashes, goodRoot := encodeChunks(t, 2, 3, payload)

	// The equivocator's branch: a different payload presented under the same
	// batch id, chunk hashes internally consistent.
	other := types.EncodeBatchPayload(testBatch(99))
	badShards, badHashes, _ := encodeChunks(t, 2, 3, other)

	// Branch A lands first; we attest it (our one ack for this id).
	l.OnMessage(0, chunkMsg(0, b.ID, 2, len(other), 0, badShards, badHashes))
	if countAcks(ctx) != 1 {
		t.Fatalf("assigned chunk of the first-seen layout drew %d acks, want 1", countAcks(ctx))
	}

	// Branch B without a certificate: no better attested than ours — dropped.
	rejectsBefore := l.Stats().ChunkRejects
	l.OnMessage(2, chunkMsg(0, b.ID, 2, len(payload), 1, goodShards, goodHashes))
	if l.Stats().ChunkRejects != rejectsBefore+1 {
		t.Fatal("conflicting uncertified layout not rejected")
	}

	// Branch B with a verified inline certificate: adopt, but do NOT attest —
	// the ack budget for this id is spent.
	cert := chunkMsg(0, b.ID, 2, len(payload), 1, goodShards, goodHashes)
	cert.Sigs = []types.Signature{
		codedAckFrom(1, b.ID, goodRoot).Sig,
		codedAckFrom(2, b.ID, goodRoot).Sig,
		codedAckFrom(3, b.ID, goodRoot).Sig,
	}
	l.OnMessage(2, cert)
	if !l.Certified(b.ID) {
		t.Fatal("inline certificate not adopted")
	}
	if countAcks(ctx) != 1 {
		t.Fatalf("replica attested a second layout for the same id (%d acks)", countAcks(ctx))
	}

	// Collect the certified layout to k and reconstruct the real payload.
	l.OnMessage(3, chunkMsg(0, b.ID, 2, len(payload), 2, goodShards, goodHashes))
	if got := l.Payload(b.ID); got == nil || got.ID != b.ID || len(got.Txns) != len(b.Txns) {
		t.Fatal("certified layout did not reconstruct the committed payload")
	}
}

// TestCodedCertifiedGarbagePoisonsDeterministically: a certified layout
// whose decoded payload does not hash to the ordered digest fails the same
// way on every correct replica — the entry delivers the canonical empty
// batch instead of diverging or stalling.
func TestCodedCertifiedGarbagePoisonsDeterministically(t *testing.T) {
	l, _, _ := newCodedLayer(1)
	id := types.Digest{0xde, 0xad, 0xbe, 0xef} // no payload hashes to this
	other := types.EncodeBatchPayload(testBatch(50))
	shards, hashes, root := encodeChunks(t, 2, 3, other)

	mk := func(idx int) *types.BatchChunk {
		c := chunkMsg(0, id, 2, len(other), idx, shards, hashes)
		c.Sigs = []types.Signature{
			codedAckFrom(1, id, root).Sig,
			codedAckFrom(2, id, root).Sig,
			codedAckFrom(3, id, root).Sig,
		}
		return c
	}
	l.OnMessage(0, mk(0))
	l.OnMessage(2, mk(1))

	got := l.Payload(id)
	if got == nil || got.ID != id || len(got.Txns) != 0 {
		t.Fatalf("poisoned entry delivered %v, want the canonical empty batch", got)
	}
	st := l.Stats()
	if st.ReconstructFails != 1 {
		t.Fatalf("ReconstructFails=%d, want 1", st.ReconstructFails)
	}
	if !l.Certified(id) {
		t.Fatal("poisoned entry lost its certificate — delivery would stall instead of proceeding empty")
	}
}

// TestCodedUncertifiedGarbageDiscarded: the same garbage WITHOUT a
// certificate must not poison — the layout is dropped so backfill can
// recover the certified one, which then reconstructs normally.
func TestCodedUncertifiedGarbageDiscarded(t *testing.T) {
	l, _, _ := newCodedLayer(1)
	b := testBatch(6)
	payload := types.EncodeBatchPayload(b)

	garbage := types.EncodeBatchPayload(testBatch(77))
	gShards, gHashes, _ := encodeChunks(t, 2, 3, garbage)
	l.OnMessage(0, chunkMsg(0, b.ID, 2, len(garbage), 0, gShards, gHashes))
	l.OnMessage(2, chunkMsg(0, b.ID, 2, len(garbage), 1, gShards, gHashes))

	if l.Payload(b.ID) != nil {
		t.Fatal("uncertified garbage delivered a payload")
	}
	if st := l.Stats(); st.ReconstructFails != 0 {
		t.Fatalf("uncertified failure counted as a poison (%d)", st.ReconstructFails)
	}

	// The real layout arrives via backfill responses, certificate inline:
	// adopted fresh, reconstructed, and resolvable — the entry was not
	// wedged.
	shards, hashes, root := encodeChunks(t, 2, 3, payload)
	sigs := []types.Signature{
		codedAckFrom(1, b.ID, root).Sig,
		codedAckFrom(2, b.ID, root).Sig,
		codedAckFrom(3, b.ID, root).Sig,
	}
	c0 := chunkMsg(0, b.ID, 2, len(payload), 0, shards, hashes)
	c0.Sigs = sigs
	c1 := chunkMsg(0, b.ID, 2, len(payload), 1, shards, hashes)
	c1.Sigs = sigs
	l.OnMessage(0, c0)
	l.OnMessage(2, c1)
	if got := l.Payload(b.ID); got == nil || got.ID != b.ID {
		t.Fatal("entry wedged: certified-recoverable layout no longer reconstructs")
	}
}

// TestCodedChunkPullServesDistinctIndices: a responder prefers the exact
// requested index, then its OWN assigned chunk for blind pulls — so
// concurrent blind pulls to different peers return different chunks.
func TestCodedChunkPullServesDistinctIndices(t *testing.T) {
	l, ctx, _ := newCodedLayer(1)
	b := testBatch(7)
	payload := types.EncodeBatchPayload(b)
	shards, hashes, _ := encodeChunks(t, 2, 3, payload)
	// Full codeword held (reconstruction stores it back).
	l.OnMessage(0, chunkMsg(0, b.ID, 2, len(payload), 0, shards, hashes))
	l.OnMessage(2, chunkMsg(0, b.ID, 2, len(payload), 1, shards, hashes))

	mark := len(ctx.sends)
	l.OnMessage(3, &types.BatchChunk{BatchID: b.ID, Index: 2, Pull: true})
	l.OnMessage(3, &types.BatchChunk{BatchID: b.ID, Index: types.ChunkAny, Pull: true})
	var served []uint32
	for _, s := range ctx.sends[mark:] {
		if c, ok := s.msg.(*types.BatchChunk); ok && !c.Pull {
			served = append(served, c.Index)
		}
	}
	if len(served) != 2 || served[0] != 2 || served[1] != 0 {
		t.Fatalf("served indices %v, want [2 0] (requested exactly, then own assigned)", served)
	}
}

// TestCodedIngressScreening: coded acks and inline-certified chunk
// responses declare their signature checks over the CODED preimage at
// ingress; pulls and bare chunk pushes declare none (the handler verifies
// by chunk hash).
func TestCodedIngressScreening(t *testing.T) {
	l, ctx, _ := newCodedLayer(0)
	b := testBatch(8)
	ctx.pending = append(ctx.pending, b)
	l.Pump() // adopt our own layout so the ack preimage is resolvable

	root, ok := l.commitRoot(b.ID)
	if !ok {
		t.Fatal("origin has no commitment for its own batch")
	}
	job, ok := l.IngressJob(1, codedAckFrom(1, b.ID, root))
	if !ok || len(job.Checks) != 1 {
		t.Fatal("coded ack not screened at ingress")
	}
	if string(job.Checks[0].Msg) != string(types.CodedAckBytes(b.ID, root)) {
		t.Fatal("coded ack screened over the wrong preimage")
	}

	// An ack for a batch with no adopted layout: infeasible, dropped.
	job, ok = l.IngressJob(1, codedAckFrom(1, types.Digest{0x77}, root))
	if !ok || len(job.Checks) != 0 {
		t.Fatal("ack without a resolvable commitment must be an infeasible job")
	}

	payload := types.EncodeBatchPayload(b)
	shards, hashes, _ := encodeChunks(t, 2, 3, payload)
	push := chunkMsg(0, b.ID, 2, len(payload), 0, shards, hashes)
	if job, ok = l.IngressJob(1, push); ok || len(job.Checks) != 0 {
		t.Fatal("bare chunk push must declare no signature checks")
	}
	if job, ok = l.IngressJob(1, &types.BatchChunk{BatchID: b.ID, Index: types.ChunkAny, Pull: true}); ok || len(job.Checks) != 0 {
		t.Fatal("chunk pull must declare no signature checks")
	}

	certified := chunkMsg(0, b.ID, 2, len(payload), 0, shards, hashes)
	certified.Sigs = []types.Signature{
		codedAckFrom(1, b.ID, root).Sig,
		codedAckFrom(2, b.ID, root).Sig,
		codedAckFrom(3, b.ID, root).Sig,
	}
	job, ok = l.IngressJob(1, certified)
	if !ok || len(job.Checks) != 3 || job.Quorum != 3 {
		t.Fatalf("inline-certified chunk screening: ok=%v checks=%d quorum=%d, want 3 checks at quorum 3", ok, len(job.Checks), job.Quorum)
	}
	wantRoot := crypto.ChunkCommitRoot(certified.K, certified.DataLen, certified.Hashes)
	if string(job.Checks[0].Msg) != string(types.CodedAckBytes(b.ID, wantRoot)) {
		t.Fatal("inline certificate screened over a preimage not derived from the message's own commitment")
	}
}

// TestCodedFullPayloadPushRejected: in coded mode the full-payload
// BatchDigest path is dead — a push stores nothing, draws no ack (plain or
// coded), and resolves nothing, and a full-payload pull is never served.
// The gate is the safety half of the certified-layout rule: a Byzantine
// origin must not be able to hand one victim the genuine batch through an
// ungated side channel while the certified chunk layout poisons everyone
// else.
func TestCodedFullPayloadPushRejected(t *testing.T) {
	l, ctx, notified := newCodedLayer(1)
	b := testBatch(10)
	l.OnMessage(0, &types.BatchDigest{Origin: 0, Batch: b})
	if len(ctx.sent) != 0 {
		t.Fatalf("coded layer reacted to a full-payload push (%d messages)", len(ctx.sent))
	}
	if l.Payload(b.ID) != nil {
		t.Fatal("full-payload push resolved a batch in coded mode")
	}
	if len(*notified) != 0 {
		t.Fatal("full-payload push fired notify in coded mode")
	}

	// Serving side: even a replica that holds the payload (its own batch)
	// never answers a full-payload pull in coded mode.
	srv, sctx, _ := newCodedLayer(0)
	own := testBatch(11)
	sctx.pending = append(sctx.pending, own)
	srv.Pump()
	mark := len(sctx.sent)
	srv.OnMessage(2, &types.BatchDigest{Origin: 2, Batch: &types.Batch{ID: own.ID}, Pull: true})
	if len(sctx.sent) != mark {
		t.Fatal("coded layer served a full-payload pull")
	}
}

// TestCodedSpoofedCommitmentRejected: a chunk-layout commitment is adopted
// only from its claimed origin or with a verified inline certificate. A
// faulty THIRD PARTY racing a spoofed (internally consistent) layout for a
// correct origin's batch id must not burn the one-time ack budget —
// otherwise the genuine chunks would fail the root check and the batch
// could never certify (censorship of a correct origin).
func TestCodedSpoofedCommitmentRejected(t *testing.T) {
	l, ctx, _ := newCodedLayer(1)
	b := testBatch(12)
	payload := types.EncodeBatchPayload(b)
	goodShards, goodHashes, _ := encodeChunks(t, 2, 3, payload)

	// Peer 2 races a spoofed layout claiming origin 0, no certificate:
	// valid per-chunk hashes, but nothing attests the layout. Dropped —
	// no adoption, no ack spent.
	spoof := types.EncodeBatchPayload(testBatch(66))
	sShards, sHashes, _ := encodeChunks(t, 2, 3, spoof)
	l.OnMessage(2, chunkMsg(0, b.ID, 2, len(spoof), 0, sShards, sHashes))
	if countAcks(ctx) != 0 {
		t.Fatal("spoofed commitment from a non-origin spent the ack budget")
	}
	if l.Stats().ChunkRejects != 1 {
		t.Fatalf("ChunkRejects=%d, want 1 (spoofed layout dropped)", l.Stats().ChunkRejects)
	}

	// The genuine push from the origin still adopts and attests: the
	// censorship attempt bought the spoofer nothing.
	l.OnMessage(0, chunkMsg(0, b.ID, 2, len(payload), 0, goodShards, goodHashes))
	if countAcks(ctx) != 1 {
		t.Fatalf("genuine origin push drew %d acks, want 1", countAcks(ctx))
	}
}

// TestFullPushIgnoresChunks: with CodeK=0 the layer is bit-for-bit the
// full-push layer — chunk traffic is dropped on the floor, no coded state,
// no acks.
func TestFullPushIgnoresChunks(t *testing.T) {
	l, ctx, _ := newTestLayer(1)
	b := testBatch(9)
	payload := types.EncodeBatchPayload(b)
	shards, hashes, _ := encodeChunks(t, 2, 3, payload)
	l.OnMessage(0, chunkMsg(0, b.ID, 2, len(payload), 0, shards, hashes))
	if len(ctx.sent) != 0 {
		t.Fatal("full-push layer reacted to a chunk message")
	}
	if l.Payload(b.ID) != nil {
		t.Fatal("full-push layer stored coded state")
	}
	if st := l.Stats(); st.ChunksReceived != 0 {
		t.Fatal("full-push layer counted coded traffic")
	}
}
