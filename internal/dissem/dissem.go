// Package dissem is the batch-dissemination layer that decouples payload
// fan-out from consensus (the Mandator/Narwhal split): the replica that
// receives a client batch broadcasts the payload ONCE (BatchDigest), every
// replica that stores it answers with a signed availability ack (BatchAck),
// and at n−f distinct acks the origin assembles and broadcasts an
// availability certificate (BatchCert). From then on consensus carries only
// the constant-size batch digest: proposals reference certified digests,
// and the delivery path resolves a digest back to its payload — with a
// rate-limited pull/backfill fallback for replicas that missed the push.
//
// The certificate rule is what keeps digest ordering safe: n−f acks imply
// at least n−2f ≥ f+1 CORRECT replicas hold the payload, so any replica
// can always backfill a certified digest, and a digest without a
// certificate is never claimed (core folds this check into the strict
// resolution rules) and therefore can never commit.
//
// The layer is deliberately substrate-neutral (it speaks only
// protocol.Context) and internally mutex-guarded: core calls it from
// instance shards (NextCertified, Certified, Backfill), from the ordering
// shard (message handling, delivery resolution), and from ingress
// goroutines (IngressJob), so every entry point locks.
package dissem

import (
	"sort"
	"sync"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// TimerKind tags the layer's periodic pump/requeue timer. Core routes
// tags of this kind back into the layer; the tag's Instance is always
// protocol.OrderingShard so sharded substrates serialize it there.
const TimerKind = 101

// Config parameterizes the layer.
type Config struct {
	N, F int

	// CodeK enables erasure-coded dissemination (see coded.go): own batches
	// are split into CodeK data chunks plus n−1−CodeK parity chunks and each
	// peer receives exactly one, cutting origin egress from (n−1)·|B| to
	// roughly (n−1)/k·|B|. Bounded by n−2f so the availability certificate
	// still guarantees reconstruction (clamped in New). 0 (the default)
	// keeps the classic full-payload push.
	CodeK int

	// Window bounds this replica's own batches in flight: pulled from the
	// batch source and disseminated but not yet delivered. The closed-loop
	// client usually binds first; the window is the safety net that stops
	// an unordered backlog from growing without bound. Default 64.
	Window int
	// PumpInterval paces the periodic source pull (and the requeue sweep).
	// Default 5ms.
	PumpInterval time.Duration
	// BackfillInterval rate-limits pull requests per missing digest.
	// Default 50ms.
	BackfillInterval time.Duration
	// RequeueAfter re-queues an own certified batch whose referencing
	// proposal never delivered (a failed view dropped it). Default 1s.
	RequeueAfter time.Duration
	// RetainOrdered bounds delivered entries kept for peers' backfills.
	// Default 4096 (mirrors the executor's reply cache; must cover the
	// delivery lag of the slowest replica, which checkpoint/state transfer
	// bounds in turn).
	RetainOrdered int
	// MaxUnordered bounds stored entries that are neither our own nor yet
	// delivered. Without it a single Byzantine peer could grow the store
	// without limit — pushing valid-hash garbage batches that never commit,
	// or certifying batches it never proposes. Oldest entries evict first;
	// a certified entry evicted early is re-backfillable from its other
	// holders. Default 8192.
	MaxUnordered int
	// RetainDelivered bounds the delivered-digest tombstones kept after an
	// entry leaves the RetainOrdered window. Tombstones let the claim gate
	// refuse replayed certificates of long-delivered digests (whose
	// payloads every correct replica may have evicted — committing one
	// would wedge delivery on an impossible backfill) long after the
	// payload itself is gone. Digest-sized, so the window can be much
	// larger than the payload store. Default 65536.
	RetainDelivered int
	// Lane selects the batch-source stream this replica pulls. Negative
	// (the default) selects the replica's own id: with dissemination the
	// source is partitioned per ORIGIN, not per consensus instance.
	Lane int32
}

// entry tracks one disseminated batch.
type entry struct {
	batch  *types.Batch // payload (nil until pushed/backfilled)
	origin types.NodeID
	cert   []types.Signature // availability certificate (nil until assembled/received)

	acks map[types.NodeID]types.Signature // origin only: collected acks

	// Coded mode only (Config.CodeK > 0):
	commit   *chunkCommit // adopted chunk-layout commitment
	chunks   [][]byte     // chunk store, indexed by chunk index
	have     int          // non-nil chunks stored
	poisoned bool         // certified layout proven inconsistent: canonical empty delivery

	mine       bool
	acked      bool          // we already sent our ack for this payload
	inReady    bool          // queued for proposing (own batches only)
	proposedAt time.Duration // last NextCertified hand-out (requeue clock)
	ordered    bool
	asked      bool          // at least one backfill went out
	lastAsk    time.Duration // backfill rate limit
	tries      int           // backfills sent (rotates the fallback peer window)
}

// Stats are the layer's monotonic counters (read via Layer.Stats).
type Stats struct {
	Disseminated uint64 // own batches broadcast
	CertsBuilt   uint64 // availability certificates assembled from acks
	CertsSeen    uint64 // certificates received from peers
	Backfills    uint64 // pull requests sent
	Served       uint64 // pull requests answered with a payload or chunk
	Requeued     uint64 // own batches re-queued after a lost proposal

	// Egress accounting (wire bytes of dissemination payload traffic, both
	// modes — the substrate-independent basis for the coded-vs-full egress
	// comparison).
	PushedBytes uint64 // origin push egress (full payloads or chunks)
	ServedBytes uint64 // backfill-serving egress

	// Coded mode only:
	ChunksSent       uint64 // chunks pushed by origin or served to pullers
	ChunksReceived   uint64 // valid chunks stored
	ChunkRejects     uint64 // chunks dropped: bad shape/hash, conflicting or inconsistent layout
	ChunkPulls       uint64 // chunk backfill requests sent
	Reconstructions  uint64 // payloads decoded from k chunks
	ReconstructFails uint64 // certified layouts proven inconsistent (poisoned deliveries)
}

// Layer is one replica's dissemination state. Construct with New, then
// core.New binds it to the replica's protocol context; one Layer serves
// exactly one replica.
type Layer struct {
	mu     sync.Mutex
	cfg    Config
	ctx    protocol.Context
	self   types.NodeID
	lane   int32
	notify func(types.Digest) // fired (outside the lock) when a digest gains a cert or payload

	entries map[types.Digest]*entry
	ready   []*types.Batch // own certified batches awaiting proposal, FIFO
	infly   int            // own batches pulled and not yet delivered

	orderedQ   []orderedRef   // FIFO of delivered entries with their delivery heights
	unorderedQ []types.Digest // FIFO of foreign entries, for the MaxUnordered bound

	tombs map[types.Digest]struct{} // delivered digests evicted from entries
	tombQ []types.Digest            // FIFO over tombs, for the RetainDelivered bound

	stats Stats
}

// New creates an unbound layer.
func New(cfg Config) *Layer {
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.PumpInterval <= 0 {
		cfg.PumpInterval = 5 * time.Millisecond
	}
	if cfg.BackfillInterval <= 0 {
		cfg.BackfillInterval = 50 * time.Millisecond
	}
	if cfg.RequeueAfter <= 0 {
		cfg.RequeueAfter = time.Second
	}
	if cfg.RetainOrdered <= 0 {
		cfg.RetainOrdered = 4096
	}
	if cfg.MaxUnordered <= 0 {
		cfg.MaxUnordered = 8192
	}
	if cfg.RetainDelivered <= 0 {
		cfg.RetainDelivered = 1 << 16
	}
	if cfg.CodeK > 0 {
		// Clamp k so any availability certificate still guarantees
		// reconstruction: n−f acks imply ≥ n−2f correct holders of distinct
		// chunks (see coded.go).
		if max := maxCodeK(cfg.N, cfg.F); cfg.CodeK > max {
			cfg.CodeK = max
		}
	}
	return &Layer{
		cfg:     cfg,
		entries: make(map[types.Digest]*entry),
		tombs:   make(map[types.Digest]struct{}),
	}
}

// getOrCreateLocked returns the entry for id, creating and bounding it when
// missing: foreign entries enter the unordered FIFO, and beyond MaxUnordered
// the oldest stored-but-unordered foreign entries are evicted (own and
// delivered entries are accounted by the window and RetainOrdered bounds
// instead). Certified entries evict like any other — a crashed or Byzantine
// origin can certify batches it never proposes, so protecting them would
// re-open the unbounded-store hole; an evicted certified payload is
// re-backfillable from its remaining holders.
func (l *Layer) getOrCreateLocked(id types.Digest) *entry {
	e := l.entries[id]
	if e != nil {
		return e
	}
	e = &entry{}
	l.entries[id] = e
	l.unorderedQ = append(l.unorderedQ, id)
	for len(l.unorderedQ) > l.cfg.MaxUnordered {
		drop := l.unorderedQ[0]
		l.unorderedQ = l.unorderedQ[1:]
		if de := l.entries[drop]; de != nil && !de.mine && !de.ordered {
			delete(l.entries, drop)
		}
	}
	return e
}

// Bind attaches the layer to its replica's substrate context. notify fires
// whenever a digest gains its certificate or its payload — core uses it to
// retry claim-gated proposals and to resume a parked delivery. Called by
// core.New, before Start and before any message can arrive.
func (l *Layer) Bind(ctx protocol.Context, notify func(types.Digest)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ctx = ctx
	l.self = ctx.ID()
	l.lane = l.cfg.Lane
	if l.lane < 0 {
		l.lane = int32(l.self)
	}
	l.notify = notify
}

// Start begins disseminating: first pull plus the periodic pump timer.
func (l *Layer) Start() {
	l.Pump()
	l.ctx.SetTimer(l.cfg.PumpInterval, protocol.TimerTag{Kind: TimerKind, Instance: protocol.OrderingShard})
}

// OnTimer handles the periodic pump/requeue tick.
func (l *Layer) OnTimer() {
	l.requeueLost()
	l.Pump()
	l.ctx.SetTimer(l.cfg.PumpInterval, protocol.TimerTag{Kind: TimerKind, Instance: protocol.OrderingShard})
}

// Pump pulls client batches from the source (the replica's own lane) and
// disseminates them, up to the flow-control window.
func (l *Layer) Pump() {
	for {
		l.mu.Lock()
		if l.infly >= l.cfg.Window {
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()
		b := l.ctx.NextBatch(l.lane)
		if b == nil {
			return
		}
		l.disseminate(b)
	}
}

// disseminate broadcasts one own batch and records the self-ack.
func (l *Layer) disseminate(b *types.Batch) {
	if l.cfg.CodeK > 0 {
		l.disseminateCoded(b)
		return
	}
	sig := l.ctx.Crypto().Sign(types.AckBytes(b.ID))
	l.mu.Lock()
	e := l.entries[b.ID]
	if e == nil {
		e = &entry{}
		l.entries[b.ID] = e
	}
	if e.mine { // duplicate pull (source retransmission): already in flight
		l.mu.Unlock()
		return
	}
	l.infly++
	e.mine = true
	e.origin = l.self
	e.batch = b
	if e.acks == nil {
		e.acks = make(map[types.NodeID]types.Signature, protocol.Quorum(l.cfg.N, l.cfg.F))
	}
	e.acks[l.self] = sig
	l.stats.Disseminated++
	push := &types.BatchDigest{Origin: l.self, Batch: b}
	l.stats.PushedBytes += uint64((l.cfg.N - 1) * push.WireSize())
	fire := l.maybeCertifyLocked(b.ID, e)
	l.mu.Unlock()
	l.ctx.Broadcast(push)
	if fire != nil {
		fire()
	}
}

// OnMessage handles one pre-verified dissemination message (BatchDigest
// payload hashes are validated here; BatchAck and BatchCert signatures were
// screened at ingress, see IngressJob).
func (l *Layer) OnMessage(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *types.BatchDigest:
		if l.cfg.CodeK > 0 {
			// Coded mode: payloads travel ONLY as chunks bound to a layout
			// commitment. Accepting a full-payload push here would let a
			// Byzantine origin certify a garbage layout yet feed one victim
			// the genuine batch — the victim delivers real transactions while
			// every other correct replica poisons to the canonical empty
			// batch, splitting honest ledgers. Full pulls are refused for the
			// same reason: no correct peer sends them in coded mode.
			return
		}
		if m.Pull {
			l.onPull(from, m)
		} else {
			l.onPush(m)
		}
	case *types.BatchAck:
		l.onAck(from, m)
	case *types.BatchCert:
		l.onCert(m)
	case *types.BatchChunk:
		if l.cfg.CodeK > 0 {
			l.onChunk(from, m)
		}
	}
}

// onPush stores a disseminated payload and acks its availability to the
// origin. The payload must hash to its claimed ID — acks attest that the
// CORRECT payload is retrievable, which is what makes delivery-time
// resolution sound.
func (l *Layer) onPush(m *types.BatchDigest) {
	b := m.Batch
	if b == nil || types.ComputeBatchID(b.Txns) != b.ID {
		return
	}
	var ack *types.BatchAck
	l.mu.Lock()
	if _, done := l.tombs[b.ID]; done {
		// Delivered and evicted: don't resurrect the entry, and don't ack —
		// we no longer hold the payload, so an ack would attest falsely.
		l.mu.Unlock()
		return
	}
	e := l.getOrCreateLocked(b.ID)
	var fire func()
	if e.batch == nil {
		e.batch = b
		e.origin = m.Origin
		fire = l.notifyLocked(b.ID)
	}
	if !e.acked && !e.mine {
		e.acked = true
		ack = &types.BatchAck{Origin: m.Origin, BatchID: b.ID,
			Sig: l.ctx.Crypto().Sign(types.AckBytes(b.ID))}
	}
	l.mu.Unlock()
	if ack != nil {
		if m.Origin == l.self {
			l.onAck(l.self, ack) // served backfill of our own batch
		} else {
			l.ctx.Send(m.Origin, ack)
		}
	}
	if fire != nil {
		fire()
	}
}

// onPull serves a backfill request from our store.
func (l *Layer) onPull(from types.NodeID, m *types.BatchDigest) {
	if m.Batch == nil || from == l.self {
		return
	}
	id := m.Batch.ID
	l.mu.Lock()
	e := l.entries[id]
	var payload *types.Batch
	var cert []types.Signature
	var origin types.NodeID
	var resp *types.BatchDigest
	if e != nil && e.batch != nil {
		payload, cert, origin = e.batch, e.cert, e.origin
		resp = &types.BatchDigest{Origin: origin, Batch: payload}
		l.stats.Served++
		l.stats.ServedBytes += uint64(resp.WireSize())
	}
	l.mu.Unlock()
	if payload == nil {
		return
	}
	l.ctx.Send(from, resp)
	if cert != nil {
		l.ctx.Send(from, &types.BatchCert{BatchID: id, Sigs: cert})
	}
}

// onAck tallies one availability ack for an own batch; n−f distinct acks
// assemble the certificate.
func (l *Layer) onAck(from types.NodeID, m *types.BatchAck) {
	if m.Origin != l.self || m.Sig.Signer != from {
		return // misrouted or mis-attributed (ingress already screens these)
	}
	l.mu.Lock()
	e := l.entries[m.BatchID]
	if e == nil || !e.mine || e.cert != nil {
		l.mu.Unlock()
		return
	}
	if _, dup := e.acks[from]; dup {
		l.mu.Unlock()
		return
	}
	e.acks[from] = m.Sig
	fire := l.maybeCertifyLocked(m.BatchID, e)
	l.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// maybeCertifyLocked assembles and broadcasts the availability certificate
// once n−f distinct acks are in. Returns the deferred notify (run it after
// unlocking).
func (l *Layer) maybeCertifyLocked(id types.Digest, e *entry) func() {
	if e.cert != nil || len(e.acks) < protocol.Quorum(l.cfg.N, l.cfg.F) {
		return nil
	}
	sigs := make([]types.Signature, 0, len(e.acks))
	for _, s := range e.acks {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].Signer < sigs[j].Signer })
	e.cert = sigs
	l.stats.CertsBuilt++
	if !e.inReady && !e.ordered {
		e.inReady = true
		l.ready = append(l.ready, e.batch)
	}
	l.ctx.Broadcast(&types.BatchCert{BatchID: id, Sigs: sigs})
	return l.notifyLocked(id)
}

// onCert stores a received availability certificate (ingress verified n−f
// distinct signatures over the ack bytes). A certificate for a delivered
// digest is dropped: replaying an old cert must not re-create an entry (and
// thereby a claimable digest) whose payload the cluster already evicted.
func (l *Layer) onCert(m *types.BatchCert) {
	l.mu.Lock()
	if _, done := l.tombs[m.BatchID]; done {
		l.mu.Unlock()
		return
	}
	e := l.getOrCreateLocked(m.BatchID)
	var fire func()
	var prefetch bool
	if e.cert == nil {
		e.cert = m.Sigs
		l.stats.CertsSeen++
		fire = l.notifyLocked(m.BatchID)
		// Coded mode: a fresh certificate means this digest will likely be
		// ordered soon, yet we hold only our own pushed chunk. Start pulling
		// the other k−1 chunks NOW so reconstruction overlaps consensus
		// instead of parking the delivery drain for a pull round-trip.
		prefetch = l.cfg.CodeK > 0 && e.batch == nil
	}
	l.mu.Unlock()
	if prefetch {
		l.backfillChunks(m.BatchID, -1)
	}
	if fire != nil {
		fire()
	}
}

// notifyLocked snapshots the notify callback for the caller to fire after
// unlocking (the callback posts into core's shard mailboxes).
func (l *Layer) notifyLocked(id types.Digest) func() {
	if l.notify == nil {
		return nil
	}
	cb := l.notify
	return func() { cb(id) }
}

// NextCertified pops the next own certified batch for proposing, pulling
// more client load opportunistically. Returns nil when nothing is
// certified yet — the caller falls back to its idle pacing.
func (l *Layer) NextCertified() *types.Batch {
	l.mu.Lock()
	var b *types.Batch
	if len(l.ready) > 0 {
		b = l.ready[0]
		l.ready = l.ready[1:]
		if e := l.entries[b.ID]; e != nil {
			e.inReady = false
			e.proposedAt = l.ctx.Now()
		}
	}
	l.mu.Unlock()
	if b == nil {
		l.Pump() // keep the dissemination pipeline ahead of the proposer
	}
	return b
}

// Certified reports whether the digest has an availability certificate —
// the claim gate of digest-referencing proposals.
func (l *Layer) Certified(id types.Digest) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entries[id]
	return e != nil && e.cert != nil
}

// Payload resolves a digest to its stored payload, or nil.
//
// Coded mode adds a certification gate: a batch resolves only under the
// CERTIFIED chunk layout (or for our own batches, whose layout we built).
// Reconstruction under an uncertified layout may already have produced the
// content-addressed batch, but delivering it early would let a Byzantine
// origin hand one victim the genuine payload while the certified layout
// poisons everyone else to the canonical empty batch. Holding the batch
// until the certificate lands keeps every correct replica on the same
// resolution rule: e.cert is always the certificate over e.commit.root
// (onChunk resets the batch whenever a certified layout displaces an
// uncertified one, and a certified layout is never displaced), so a
// cert-gated batch is exactly one resolved under the certified layout.
func (l *Layer) Payload(id types.Digest) *types.Batch {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entries[id]
	if e == nil {
		return nil
	}
	if l.cfg.CodeK > 0 && !e.mine && e.cert == nil {
		return nil
	}
	return e.batch
}

// Backfill requests the payload (and certificate) of a digest we are
// missing: from the hinted replica (the proposal's primary) plus 2f+1
// digest-derived fallback peers. The width matters: a certificate proves
// n−f ackers, i.e. at least n−2f correct HOLDERS among the other n−1
// replicas — so up to 2f−1 of them can be unhelpful (f faulty plus up to
// f−1 correct replicas that never acked), and any 2f+1 distinct peers
// always include a correct holder. The window additionally rotates by the
// per-digest retry count, so pulls lost to the network re-target fresh
// peers instead of re-asking the same fixed set forever. Rate-limited per
// digest.
func (l *Layer) Backfill(id types.Digest, hint types.NodeID) {
	if l.cfg.CodeK > 0 {
		l.backfillChunks(id, hint)
		return
	}
	now := l.ctx.Now()
	l.mu.Lock()
	if _, done := l.tombs[id]; done {
		l.mu.Unlock()
		return // delivered and evicted: nothing left to fetch
	}
	e := l.getOrCreateLocked(id)
	if e.ordered || (e.batch != nil && e.cert != nil) ||
		(e.asked && now-e.lastAsk < l.cfg.BackfillInterval) {
		l.mu.Unlock()
		return
	}
	e.asked = true
	e.lastAsk = now
	try := e.tries
	e.tries++
	l.stats.Backfills++
	l.mu.Unlock()

	req := &types.BatchDigest{Origin: l.self, Batch: &types.Batch{ID: id}, Pull: true}
	width := 2*l.cfg.F + 1
	if width > l.cfg.N-1 {
		width = l.cfg.N - 1
	}
	targets := make(map[types.NodeID]bool, width+2)
	if hint >= 0 && int(hint) < l.cfg.N && hint != l.self {
		targets[hint] = true
	}
	for i, added := 0, 0; added < width && i < l.cfg.N; i++ {
		p := types.NodeID((int(id[0]) + try + i) % l.cfg.N)
		if p == l.self || targets[p] {
			continue
		}
		targets[p] = true
		added++
	}
	for p := range targets {
		l.ctx.Send(p, req)
	}
}

// orderedRef remembers at which global delivery height a digest was
// ordered, so eviction can follow the checkpoint frontier.
type orderedRef struct {
	id     types.Digest
	height uint64
}

// Delivered marks a digest ordered and delivered at the given global
// delivery height: own in-flight credit is returned (opening the window for
// the next pull). Retention of the delivered payload is frontier-driven —
// GCToFrontier evicts everything at or below the stable checkpoint, where
// re-proposal and backfill are impossible by construction — with the
// RetainOrdered count as a fallback cap for checkpoint-less deployments.
func (l *Layer) Delivered(id types.Digest, height uint64) {
	l.mu.Lock()
	e := l.entries[id]
	if e == nil || e.ordered {
		l.mu.Unlock()
		return
	}
	e.ordered = true
	if e.mine {
		l.infly--
	}
	if e.inReady { // delivered via another replica's re-proposal
		e.inReady = false
		for i, b := range l.ready {
			if b.ID == id {
				l.ready = append(l.ready[:i], l.ready[i+1:]...)
				break
			}
		}
	}
	l.orderedQ = append(l.orderedQ, orderedRef{id: id, height: height})
	for len(l.orderedQ) > l.cfg.RetainOrdered {
		l.evictOrderedLocked()
	}
	l.mu.Unlock()
	l.Pump()
}

// evictOrderedLocked drops the oldest delivered entry, leaving a
// digest-sized tombstone well past payload eviction so a replayed
// certificate cannot resurrect the delivered digest.
func (l *Layer) evictOrderedLocked() {
	drop := l.orderedQ[0].id
	l.orderedQ = l.orderedQ[1:]
	delete(l.entries, drop)
	l.tombs[drop] = struct{}{}
	l.tombQ = append(l.tombQ, drop)
	for len(l.tombQ) > l.cfg.RetainDelivered {
		t := l.tombQ[0]
		l.tombQ = l.tombQ[1:]
		delete(l.tombs, t)
	}
}

// GCToFrontier evicts delivered payloads at or below the stable checkpoint
// height. Behind the stable frontier consensus state is garbage-collected
// cluster-wide: no correct replica will re-propose such a digest, and
// rejoiners recover the region via state transfer rather than backfill —
// so holding the payloads serves no one. Eviction keyed to the frontier
// (instead of the fixed RetainOrdered count) makes the payload store track
// exactly what consensus can still reference. Called from the ordering
// stage at every stabilization and state install.
func (l *Layer) GCToFrontier(stable uint64) {
	l.mu.Lock()
	for len(l.orderedQ) > 0 && l.orderedQ[0].height <= stable {
		l.evictOrderedLocked()
	}
	l.mu.Unlock()
}

// Ordered reports whether the digest is known delivered — a retained
// ordered entry or a tombstone kept after its eviction. The claim gate
// refuses ordered digests outright: a proposal re-referencing one is either
// a Byzantine certificate replay (whose payload every correct replica may
// already have evicted, so committing it would wedge delivery on an
// impossible backfill) or a lost-requeue race, and in both cases the view
// safely resolves without it.
func (l *Layer) Ordered(id types.Digest) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, done := l.tombs[id]; done {
		return true
	}
	e := l.entries[id]
	return e != nil && e.ordered
}

// requeueLost returns own certified-but-undelivered batches to the ready
// queue when their referencing proposal must have been lost (the view
// resolved empty or the proposal never certified).
func (l *Layer) requeueLost() {
	now := l.ctx.Now()
	l.mu.Lock()
	for _, e := range l.entries {
		if e.mine && e.cert != nil && !e.ordered && !e.inReady &&
			e.proposedAt > 0 && now-e.proposedAt > l.cfg.RequeueAfter {
			e.inReady = true
			e.proposedAt = 0
			l.ready = append(l.ready, e.batch)
			l.stats.Requeued++
		}
	}
	l.mu.Unlock()
}

// IngressJob declares the signature checks of inbound dissemination
// messages (stateless; invoked concurrently with the event loop):
//
//   - BatchAck: one signature over the ack bytes, sender-bound (an ack not
//     signed by its sender, or not addressed to us, drops unverified at the
//     handler) — so a faulty replica cannot spend our verification budget
//     on forged third-party acks;
//   - BatchCert: n−f distinct signers structurally, then the full batch
//     verified at quorum n−f;
//   - BatchDigest: carries no signatures — the handler validates the
//     payload hash instead;
//   - BatchChunk (coded mode): pulls and bare chunks carry no signatures
//     (the handler validates the chunk hash against the commitment); a
//     chunk with an INLINE certificate is verified here against the
//     commitment root derived from the message's own fields, so the handler
//     may trust a non-empty Sigs field as a proven certificate.
//
// In coded mode the ack/cert preimage binds the chunk-layout commitment
// (types.CodedAckBytes), so verifying a BatchAck or BatchCert requires the
// locally adopted commitment root — looked up under the layer lock, which
// is safe concurrently with the event loop (the layer is internally
// mutex-guarded by design, see the package comment). A certificate arriving
// before any chunk of its batch drops at ingress; the chunk backfill path
// recovers it, since chunk responses carry the certificate inline.
//
// The bool result follows the substrate contract: false means "no checks
// needed, deliver" (the handler re-screens structurally).
func (l *Layer) IngressJob(from types.NodeID, msg types.Message) (protocol.VerifyJob, bool) {
	switch m := msg.(type) {
	case *types.BatchAck:
		if m.Origin != l.self || m.Sig.Signer != from {
			return protocol.VerifyJob{}, false // onAck drops these unread
		}
		ackMsg := types.AckBytes(m.BatchID)
		if l.cfg.CodeK > 0 {
			root, ok := l.commitRoot(m.BatchID)
			if !ok {
				return protocol.VerifyJob{Quorum: 1}, true // no layout of ours: infeasible, drop
			}
			ackMsg = types.CodedAckBytes(m.BatchID, root)
		}
		return protocol.VerifyJob{
			Checks: []crypto.Check{{Sig: m.Sig, Msg: ackMsg}},
			Quorum: 1,
		}, true
	case *types.BatchCert:
		q := protocol.Quorum(l.cfg.N, l.cfg.F)
		if crypto.DistinctSigners(m.Sigs) < q {
			return protocol.VerifyJob{Quorum: q}, true // infeasible: drop at ingress
		}
		ackMsg := types.AckBytes(m.BatchID)
		if l.cfg.CodeK > 0 {
			root, ok := l.commitRoot(m.BatchID)
			if !ok {
				return protocol.VerifyJob{Quorum: q}, true // layout unknown: drop, recover via chunk pull
			}
			ackMsg = types.CodedAckBytes(m.BatchID, root)
		}
		checks := make([]crypto.Check, len(m.Sigs))
		for i, sig := range m.Sigs {
			checks[i] = crypto.Check{Sig: sig, Msg: ackMsg}
		}
		return protocol.VerifyJob{Checks: checks, Quorum: q}, true
	case *types.BatchChunk:
		if l.cfg.CodeK <= 0 || m.Pull || len(m.Sigs) == 0 {
			return protocol.VerifyJob{}, false // no signatures to check
		}
		q := protocol.Quorum(l.cfg.N, l.cfg.F)
		if crypto.DistinctSigners(m.Sigs) < q {
			return protocol.VerifyJob{Quorum: q}, true // claimed cert is infeasible: drop
		}
		root := crypto.ChunkCommitRoot(m.K, m.DataLen, m.Hashes)
		ackMsg := types.CodedAckBytes(m.BatchID, root)
		checks := make([]crypto.Check, len(m.Sigs))
		for i, sig := range m.Sigs {
			checks[i] = crypto.Check{Sig: sig, Msg: ackMsg}
		}
		return protocol.VerifyJob{Checks: checks, Quorum: q}, true
	}
	return protocol.VerifyJob{}, false
}

// commitRoot returns the adopted chunk-layout commitment root for id.
func (l *Layer) commitRoot(id types.Digest) (types.Digest, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entries[id]
	if e == nil || e.commit == nil {
		return types.Digest{}, false
	}
	return e.commit.root, true
}

// Stats returns a snapshot of the layer's counters.
func (l *Layer) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}
