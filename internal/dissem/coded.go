package dissem

import (
	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/rs"
	"spotless/internal/types"
)

// Coded dissemination (Config.CodeK = k > 0): instead of pushing the full
// payload to all n−1 peers, the origin erasure-codes the batch into
// m = n−1 chunks (k data + m−k parity, internal/rs), commits to the chunk
// layout with the ordered chunk-hash list (crypto.ChunkCommitRoot), and
// sends each peer exactly ONE chunk — cutting origin egress from
// (n−1)·|B| to ~(n−1)/k·|B| plus the commitment overhead.
//
// Acks attest chunk custody AGAINST the commitment: a replica signs
// types.CodedAckBytes(id, root) only after verifying its assigned chunk's
// hash, and only for the FIRST commitment it sees per batch id — so two
// different commitments for one id can never both gather n−f acks (the
// certificates would share f+1 correct signers). Because that ack budget
// is one-time, a commitment is ADOPTED only from the origin itself or
// with a verified inline certificate — a third party cannot race a
// spoofed layout that would burn the ack and censor the genuine batch.
// The availability certificate is unchanged on the wire
// (BatchCert{BatchID, Sigs}) but now proves ≥ n−2f correct chunk holders
// with DISTINCT chunks, so any replica reconstructs from any k ≤ n−2f
// chunks.
//
// Coded mode carries payloads ONLY as chunks: full-payload BatchDigest
// pushes and pulls are refused outright (dissem.OnMessage), and delivery
// resolution is certification-gated (Layer.Payload returns a foreign
// batch only once the entry holds the certificate over its adopted
// layout). Together these close the split where a Byzantine origin
// certifies a garbage layout, lets every correct replica poison to the
// canonical empty batch, yet feeds ONE victim the genuine payload through
// an ungated side channel — the victim would deliver real transactions
// the rest of the cluster never sees.
//
// Reconstruction is AVID-style deterministic: decode from any k verified
// chunks, re-encode the whole codeword, and check every chunk hash against
// the commitment plus the decoded batch against its consensus-ordered
// digest. If the CERTIFIED commitment fails this check, every correct
// replica fails it identically (chunks that hash-match the commitment are
// byte-identical across replicas, and if any k-subset decodes to a
// hash-matching codeword then all subsets do), so all correct replicas
// deliver the same canonical empty batch — counted as a reconstruction
// failure, never a divergence. An UNCERTIFIED commitment that fails is
// simply discarded; the certified layout is recoverable from any backfill
// response, which carries commitment and certificate inline.

// chunkCommit is an adopted chunk-layout commitment for one batch.
type chunkCommit struct {
	k       int
	dataLen int
	hashes  []types.Digest
	root    types.Digest
}

// chunkCount is the codeword width: one chunk per non-origin peer.
func (l *Layer) chunkCount() int { return l.cfg.N - 1 }

// maxCodeK bounds the data-chunk count so a certificate still guarantees
// retrievability: n−f acks imply ≥ n−2f correct holders of distinct chunks
// even when the origin itself is faulty.
func maxCodeK(n, f int) int {
	k := n - 2*f
	if m := n - 1; k > m {
		k = m
	}
	if k < 1 {
		k = 1
	}
	return k
}

// peerIdx maps a non-origin peer to its assigned chunk index, -1 for the
// origin itself (which holds the whole codeword).
func peerIdx(origin, p types.NodeID) int {
	if p == origin {
		return -1
	}
	if p < origin {
		return int(p)
	}
	return int(p) - 1
}

// chunkHolder maps a chunk index back to its assigned peer.
func chunkHolder(origin types.NodeID, idx int) types.NodeID {
	if idx < int(origin) {
		return types.NodeID(idx)
	}
	return types.NodeID(idx + 1)
}

// disseminateCoded encodes and spreads one own batch: one chunk per peer,
// every chunk message carrying the full commitment so receivers verify
// custody before acking.
func (l *Layer) disseminateCoded(b *types.Batch) {
	k, m := l.cfg.CodeK, l.chunkCount()
	payload := types.EncodeBatchPayload(b)
	shards, err := rs.Encode(k, m, payload)
	if err != nil {
		l.ctx.Logf("dissem: coded encode failed (k=%d m=%d): %v", k, m, err)
		return
	}
	hashes := make([]types.Digest, m)
	for i := range shards {
		hashes[i] = crypto.ChunkHash(shards[i])
	}
	root := crypto.ChunkCommitRoot(uint32(k), uint32(len(payload)), hashes)
	sig := l.ctx.Crypto().Sign(types.CodedAckBytes(b.ID, root))

	// Wire cost of one chunk push, identical for every peer.
	perPeer := types.ControlMsgSize + len(shards[0]) + m*32

	l.mu.Lock()
	e := l.entries[b.ID]
	if e == nil {
		e = &entry{}
		l.entries[b.ID] = e
	}
	if e.mine { // duplicate pull (source retransmission): already in flight
		l.mu.Unlock()
		return
	}
	l.infly++
	e.mine = true
	e.origin = l.self
	e.batch = b
	e.commit = &chunkCommit{k: k, dataLen: len(payload), hashes: hashes, root: root}
	e.chunks = shards
	e.have = m
	if e.acks == nil {
		e.acks = make(map[types.NodeID]types.Signature, protocol.Quorum(l.cfg.N, l.cfg.F))
	}
	e.acks[l.self] = sig
	l.stats.Disseminated++
	l.stats.ChunksSent += uint64(m)
	l.stats.PushedBytes += uint64(m * perPeer)
	fire := l.maybeCertifyLocked(b.ID, e)
	l.mu.Unlock()

	for p := 0; p < l.cfg.N; p++ {
		pid := types.NodeID(p)
		idx := peerIdx(l.self, pid)
		if idx < 0 {
			continue
		}
		l.ctx.Send(pid, &types.BatchChunk{
			Origin: l.self, BatchID: b.ID,
			K: uint32(k), DataLen: uint32(len(payload)), Hashes: hashes,
			Index: uint32(idx), Data: shards[idx],
		})
	}
	if fire != nil {
		fire()
	}
}

// validChunkShape screens a chunk message's geometry against this cluster's
// coding parameters before any hashing happens.
func (l *Layer) validChunkShape(m *types.BatchChunk) bool {
	k := int(m.K)
	if k < 1 || k > maxCodeK(l.cfg.N, l.cfg.F) {
		return false
	}
	if len(m.Hashes) != l.chunkCount() || int(m.Index) >= len(m.Hashes) {
		return false
	}
	return len(m.Data) == rs.ShardLen(k, int(m.DataLen))
}

// onChunk handles one coded chunk (push or backfill response). Inline
// certificates (Sigs) were verified at ingress against the commitment root
// derived from this very message, so a non-empty Sigs field is a proven
// availability certificate for this chunk layout.
func (l *Layer) onChunk(from types.NodeID, m *types.BatchChunk) {
	if m.Pull {
		l.onChunkPull(from, m)
		return
	}
	if !l.validChunkShape(m) || crypto.ChunkHash(m.Data) != m.Hashes[m.Index] {
		l.mu.Lock()
		l.stats.ChunkRejects++
		l.mu.Unlock()
		return
	}
	root := crypto.ChunkCommitRoot(m.K, m.DataLen, m.Hashes)
	hasCert := len(m.Sigs) > 0
	id := m.BatchID

	var ack *types.BatchAck
	l.mu.Lock()
	if _, done := l.tombs[id]; done {
		l.mu.Unlock()
		return
	}
	e := l.getOrCreateLocked(id)
	if e.mine || e.poisoned {
		l.mu.Unlock()
		return
	}
	switch {
	case e.commit == nil:
		if !hasCert && from != m.Origin {
			// An unattested commitment relayed by a third party. Adopting it
			// — and spending the one-time ack on it — would let a faulty
			// peer race a spoofed layout for a correct origin's batch id:
			// the genuine chunks would then fail the root check and the
			// batch could never gather n−f acks. Only the origin itself, or
			// a verified inline certificate, introduces a layout.
			l.stats.ChunkRejects++
			l.mu.Unlock()
			return
		}
		e.commit = &chunkCommit{k: int(m.K), dataLen: int(m.DataLen), hashes: m.Hashes, root: root}
		e.origin = m.Origin
		e.chunks = make([][]byte, len(m.Hashes))
	case e.commit.root != root:
		if e.cert != nil || !hasCert {
			// Ours is certified (a conflicting certified layout is
			// impossible), or the newcomer is no better attested than what
			// we hold: an equivocating origin's second layout, dropped.
			l.stats.ChunkRejects++
			l.mu.Unlock()
			return
		}
		// The incoming layout carries a verified certificate and ours does
		// not: ours was the equivocator's dead branch. Adopt the certified
		// layout and restart chunk collection under it. The ack budget for
		// this id stays spent — custody of the first-seen layout is all a
		// correct replica ever attests.
		e.commit = &chunkCommit{k: int(m.K), dataLen: int(m.DataLen), hashes: m.Hashes, root: root}
		e.origin = m.Origin
		e.chunks = make([][]byte, len(m.Hashes))
		e.have = 0
		e.batch = nil
	}
	var fire func()
	if hasCert && e.cert == nil {
		e.cert = m.Sigs
		l.stats.CertsSeen++
		fire = l.notifyLocked(id)
	}
	idx := int(m.Index)
	if e.chunks[idx] == nil {
		e.chunks[idx] = m.Data
		e.have++
		l.stats.ChunksReceived++
	}
	// Ack custody once per id, and only for our ASSIGNED chunk: the
	// availability argument counts distinct chunks across distinct correct
	// ackers, so acking someone else's chunk would overstate coverage.
	if !e.acked && idx == peerIdx(m.Origin, l.self) {
		e.acked = true
		ack = &types.BatchAck{Origin: m.Origin, BatchID: id,
			Sig: l.ctx.Crypto().Sign(types.CodedAckBytes(id, root))}
	}
	var fire2 func()
	if e.batch == nil && e.have >= e.commit.k {
		fire2 = l.reconstructLocked(id, e)
	}
	l.mu.Unlock()
	if ack != nil {
		if m.Origin == l.self {
			l.onAck(l.self, ack)
		} else {
			l.ctx.Send(m.Origin, ack)
		}
	}
	if fire != nil {
		fire()
	}
	if fire2 != nil {
		fire2()
	}
}

// reconstructLocked decodes the payload from the collected chunks and
// verifies the FULL re-encoded codeword against the commitment plus the
// decoded batch against its digest. Returns the deferred notify.
//
// Outcomes:
//   - success: e.batch is the decoded payload (content-addressed by the
//     consensus-ordered digest, so correct regardless of which chunks fed
//     the decoder);
//   - certified commitment fails: deterministic poison — every correct
//     replica computes the same failure, delivers the same canonical empty
//     batch (see the package comment's consistency argument);
//   - uncertified commitment fails: discard the layout entirely and let
//     backfill recover the certified one.
func (l *Layer) reconstructLocked(id types.Digest, e *entry) func() {
	c := e.commit
	shards := make([][]byte, len(e.chunks))
	copy(shards, e.chunks)
	ok := rs.Reconstruct(c.k, shards) == nil
	if ok {
		for i := range shards {
			if crypto.ChunkHash(shards[i]) != c.hashes[i] {
				ok = false
				break
			}
		}
	}
	var batch *types.Batch
	if ok {
		data, err := rs.Join(c.k, shards, c.dataLen)
		if err == nil {
			if b, derr := types.DecodeBatchPayload(data); derr == nil &&
				b.ID == id && types.ComputeBatchID(b.Txns) == id {
				batch = b
			}
		}
	}
	if batch != nil {
		e.batch = batch
		e.chunks = shards // full codeword: serve any index to pullers
		e.have = len(shards)
		l.stats.Reconstructions++
		return l.notifyLocked(id)
	}
	if e.cert != nil {
		// The certified layout is provably garbage — identically so on
		// every correct replica. Deliver the canonical empty batch.
		e.poisoned = true
		e.batch = &types.Batch{ID: id}
		l.stats.ReconstructFails++
		return l.notifyLocked(id)
	}
	// Uncertified garbage: drop the layout, keep the entry, re-backfill.
	e.commit = nil
	e.chunks = nil
	e.have = 0
	l.stats.ChunkRejects++
	return nil
}

// onChunkPull serves a chunk backfill request from our store. The response
// carries the commitment and the certificate inline, so one response is
// enough for the puller to recover both even if it missed push and cert.
//
// Preference order keeps concurrently-asked responders DISTINCT: a specific
// requested index first, then the responder's own assigned chunk (each
// peer's is different), then anything held.
func (l *Layer) onChunkPull(from types.NodeID, m *types.BatchChunk) {
	if from == l.self {
		return
	}
	l.mu.Lock()
	e := l.entries[m.BatchID]
	if e == nil || e.commit == nil || e.poisoned {
		l.mu.Unlock()
		return
	}
	idx := -1
	if m.Index != types.ChunkAny && int(m.Index) < len(e.chunks) && e.chunks[m.Index] != nil {
		idx = int(m.Index)
	} else if ai := peerIdx(e.origin, l.self); ai >= 0 && ai < len(e.chunks) && e.chunks[ai] != nil {
		idx = ai
	} else {
		for i, c := range e.chunks {
			if c != nil {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		l.mu.Unlock()
		return
	}
	resp := &types.BatchChunk{
		Origin: e.origin, BatchID: m.BatchID,
		K: uint32(e.commit.k), DataLen: uint32(e.commit.dataLen), Hashes: e.commit.hashes,
		Index: uint32(idx), Data: e.chunks[idx],
		Sigs: e.cert,
	}
	l.stats.Served++
	l.stats.ChunksSent++
	l.stats.ServedBytes += uint64(resp.WireSize())
	l.mu.Unlock()
	l.ctx.Send(from, resp)
}

// backfillChunks is the coded replacement for the single-peer full-payload
// pull: one round asks SEVERAL peers in parallel, each for a distinct chunk
// — the parked drain pulls k small chunks concurrently instead of one big
// payload. The round width grows with the retry count and the window
// rotates (like the full-push 2f+1 fallback set), so lost pulls and
// unhelpful peers are routed around. Rate-limited per digest.
func (l *Layer) backfillChunks(id types.Digest, hint types.NodeID) {
	now := l.ctx.Now()
	l.mu.Lock()
	if _, done := l.tombs[id]; done {
		l.mu.Unlock()
		return
	}
	e := l.getOrCreateLocked(id)
	if e.ordered || (e.batch != nil && e.cert != nil) ||
		(e.asked && now-e.lastAsk < l.cfg.BackfillInterval) {
		l.mu.Unlock()
		return
	}
	e.asked = true
	e.lastAsk = now
	try := e.tries
	e.tries++
	l.stats.Backfills++

	type ask struct {
		idx uint32
		to  types.NodeID
	}
	var asks []ask
	mtot := l.chunkCount()
	if e.commit != nil {
		// Known layout: ask the assigned holders of missing chunks,
		// rotating the starting chunk so retries and concurrent pullers
		// spread over different holders.
		var missing []int
		for i, c := range e.chunks {
			if c == nil {
				missing = append(missing, i)
			}
		}
		need := e.commit.k - e.have
		if need < 1 {
			need = 1 // payload reconstructed or nearly so: pull for the cert
		}
		width := need + try
		if width > len(missing) {
			width = len(missing)
		}
		if width == 0 && e.batch == nil {
			// Everything stored yet no payload: impossible layout state;
			// nothing to ask for.
			l.mu.Unlock()
			return
		}
		start := int(id[0]) + int(l.self) + try
		for i := 0; i < width; i++ {
			idx := missing[(start+i)%len(missing)]
			to := chunkHolder(e.origin, idx)
			if to == l.self {
				// Our own assigned chunk is missing (we joined via backfill):
				// only the origin holds the full codeword to serve it.
				to = e.origin
			}
			asks = append(asks, ask{idx: uint32(idx), to: to})
		}
		if len(missing) == 0 {
			// Cert-only pull: any responder's chunk response carries it.
			asks = append(asks, ask{idx: types.ChunkAny, to: chunkHolder(e.origin, (start)%mtot)})
		}
		// Retries escalate to the origin, which holds the whole codeword.
		if try > 0 && e.origin != l.self {
			want := types.ChunkAny
			if len(missing) > 0 {
				want = uint32(missing[start%len(missing)])
			}
			asks = append(asks, ask{idx: want, to: e.origin})
		}
	} else {
		// Layout unknown (digest learned from consensus, push never seen):
		// ask a rotated window of peers for whatever chunk they hold —
		// responders answer with their own assigned chunk, so distinct
		// peers return distinct chunks, and every response carries the
		// commitment and certificate.
		width := l.cfg.CodeK + 1 + try
		if width > l.cfg.N-1 {
			width = l.cfg.N - 1
		}
		if hint >= 0 && int(hint) < l.cfg.N && hint != l.self {
			asks = append(asks, ask{idx: types.ChunkAny, to: hint})
		}
		for i, added := 0, 0; added < width && i < l.cfg.N; i++ {
			p := types.NodeID((int(id[0]) + try + i) % l.cfg.N)
			if p == l.self || (len(asks) > 0 && p == hint) {
				continue
			}
			asks = append(asks, ask{idx: types.ChunkAny, to: p})
			added++
		}
	}
	l.stats.ChunkPulls += uint64(len(asks))
	l.mu.Unlock()

	for _, a := range asks {
		l.ctx.Send(a.to, &types.BatchChunk{BatchID: id, Index: a.idx, Pull: true})
	}
}
