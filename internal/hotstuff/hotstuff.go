// Package hotstuff implements the chained HotStuff baseline of §6.2: a
// rotational, pipelined BFT protocol committing on three-chains. Following
// the paper's port, threshold signatures are represented as lists of n−f
// individual signatures, whose verification cost dominates the protocol's
// critical path (and explains its low throughput in Figures 7 and 15).
//
// The block payload is pluggable so internal/narwhal can reuse the ordering
// core with digest-only blocks.
package hotstuff

import (
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

// Config parameterizes a HotStuff replica.
type Config struct {
	N, F int
	// ViewTimeout is the pacemaker's initial timeout (adaptive: doubles on
	// consecutive timeouts, halves on fast progress).
	ViewTimeout time.Duration
	MinTimeout  time.Duration
	MaxTimeout  time.Duration
	// Payload supplies the block content for a proposing leader; nil uses
	// NextBatch(0). Narwhal-HS injects certified-batch references instead.
	Payload func(v types.View) (*types.Batch, []types.Digest)
	// OnCommit overrides delivery; nil delivers the block batch directly.
	OnCommit func(c types.Commit, refs []types.Digest)
	// SkipQCVerify disables backup-side QC verification (ablation knob for
	// the signature-cost experiments).
	SkipQCVerify bool
	// Behavior configures Byzantine deviation for the attack experiments
	// (Figure 15).
	Behavior protocol.Behavior
}

// DefaultConfig returns the tuned baseline configuration. The pacemaker
// floor tracks the QC-verification latency (n−f signature checks sit on the
// view critical path, §6.2), or large clusters churn on spurious timeouts.
func DefaultConfig(n int) Config {
	f := (n - 1) / 3
	return Config{
		N:           n,
		F:           f,
		ViewTimeout: 300 * time.Millisecond,
		MinTimeout:  20*time.Millisecond + time.Duration(n-f)*300*time.Microsecond,
		MaxTimeout:  5 * time.Second,
	}
}

type block struct {
	digest  types.Digest
	view    types.View
	parent  types.Digest
	batch   *types.Batch
	refs    []types.Digest
	justify types.QC

	committed bool
	height    uint64
}

// Replica is one chained-HotStuff replica.
type Replica struct {
	ctx protocol.Context
	cfg Config

	view    types.View
	blocks  map[types.Digest]*block
	genesis *block

	highQC   types.QC
	lockView types.View // view of the locked (one-chain) block

	votes map[types.View]map[types.NodeID]types.Signature
	nvQC  map[types.View]map[types.NodeID]bool

	lastExec   *block
	timeout    time.Duration
	lastTOView types.View
	viewStart  time.Duration

	// Delivered counts committed blocks (testing).
	Delivered uint64
}

// New creates a HotStuff replica.
func New(ctx protocol.Context, cfg Config) *Replica {
	g := &block{committed: true}
	r := &Replica{
		ctx:      ctx,
		cfg:      cfg,
		blocks:   map[types.Digest]*block{g.digest: g},
		genesis:  g,
		votes:    make(map[types.View]map[types.NodeID]types.Signature),
		nvQC:     make(map[types.View]map[types.NodeID]bool),
		lastExec: g,
		timeout:  cfg.ViewTimeout,
		highQC:   types.QC{Genesis: true},
		// Sentinel: a first timeout at view 1 is not "consecutive".
		lastTOView: ^types.View(0) - 1,
	}
	return r
}

func (r *Replica) quorum() int { return r.cfg.N - r.cfg.F }

func (r *Replica) leader(v types.View) types.NodeID {
	return types.NodeID(uint64(v) % uint64(r.cfg.N))
}

// Start implements protocol.Protocol.
func (r *Replica) Start() {
	r.view = 1
	r.viewStart = r.ctx.Now()
	r.armPacemaker()
	if r.leader(1) == r.ctx.ID() {
		r.propose(1)
	}
}

func (r *Replica) armPacemaker() {
	r.ctx.SetTimer(r.timeout, protocol.TimerTag{Kind: protocol.TimerPacemaker, View: r.view})
}

// propose builds and broadcasts the block for view v extending highQC.
func (r *Replica) propose(v types.View) {
	var batch *types.Batch
	var refs []types.Digest
	if r.cfg.Payload != nil {
		batch, refs = r.cfg.Payload(v)
	} else {
		batch = r.ctx.NextBatch(0)
	}
	if batch == nil && refs == nil {
		// No payload available: retry shortly (the chain must keep moving
		// only when there is work).
		r.ctx.SetTimer(2*time.Millisecond, protocol.TimerTag{Kind: protocol.TimerPropose, View: v})
		return
	}
	parent := r.highQC.Block
	var batchID types.Digest
	if batch != nil {
		batchID = batch.ID
	}
	digest := types.ProposalDigest(0, v, batchID, r.highQC.View, parent)
	msg := &types.HSProposal{View: v, Block: digest, Parent: parent, Batch: batch, Justify: r.highQC, Refs: refs}
	switch r.cfg.Behavior.Mode {
	case protocol.AttackDark:
		// A2: withhold the proposal from the victim set.
		for i := 0; i < r.cfg.N; i++ {
			id := types.NodeID(i)
			if id == r.ctx.ID() || r.cfg.Behavior.Victims[id] {
				continue
			}
			r.ctx.Send(id, msg)
		}
	case protocol.AttackEquivocate:
		// A3: conflicting blocks to disjoint halves.
		altDigest := types.ProposalDigest(1, v, batchID, r.highQC.View, parent)
		alt := &types.HSProposal{View: v, Block: altDigest, Parent: parent, Batch: batch, Justify: r.highQC, Refs: refs}
		for i := 0; i < r.cfg.N; i++ {
			id := types.NodeID(i)
			if id == r.ctx.ID() {
				continue
			}
			if r.cfg.Behavior.Victims[id] {
				r.ctx.Send(id, alt)
			} else {
				r.ctx.Send(id, msg)
			}
		}
	default:
		r.ctx.Broadcast(msg)
	}
	r.onProposal(r.ctx.ID(), msg)
}

// HandleMessage implements protocol.Protocol.
func (r *Replica) HandleMessage(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *types.HSProposal:
		r.onProposal(from, m)
	case *types.HSVote:
		r.onVote(from, m)
	case *types.HSNewView:
		r.onNewView(from, m)
	}
}

// IngressJob implements protocol.IngressVerifier, declaring the protocol's
// signature work up front so substrates verify it off the event loop: the
// n−f QC signatures carried by proposals and NewViews — the dominant cost
// of the protocol's critical path (§6.2) — fan out as one batch job, and
// each vote signature is checked before it reaches the leader's loop. The
// state machine below consumes only pre-verified messages.
//
// Every stateless guard the loop applies anyway (leadership, vote routing,
// structural QC quorum) runs here *before* any checks are declared, so a
// flood of junk messages is discarded by the loop for free instead of
// burning verification capacity.
func (r *Replica) IngressJob(from types.NodeID, msg types.Message) (protocol.VerifyJob, bool) {
	switch m := msg.(type) {
	case *types.HSProposal:
		if from != r.leader(m.View) {
			return protocol.VerifyJob{}, false // onProposal drops it unread
		}
		return r.qcJob(m.Justify)
	case *types.HSNewView:
		return r.qcJob(m.Justify)
	case *types.HSVote:
		// Votes must be signed by their sender: a replayed third-party
		// signature would verify but poison the leader's QC with a
		// duplicate signer, so it is dropped before costing a check.
		if r.leader(m.View+1) != r.ctx.ID() || m.Sig.Signer != from {
			return protocol.VerifyJob{}, false // onVote drops it unread
		}
		return protocol.VerifyJob{
			Checks: []crypto.Check{{Sig: m.Sig, Msg: m.Block[:]}},
			Quorum: 1,
		}, true
	}
	return protocol.VerifyJob{}, false
}

// qcJob declares the batch verification of one quorum certificate.
// Structurally short QCs (too few distinct signers) declare no checks —
// qcComplete rejects them on the loop at map-count cost.
func (r *Replica) qcJob(qc types.QC) (protocol.VerifyJob, bool) {
	if qc.Genesis || r.cfg.SkipQCVerify || crypto.DistinctSigners(qc.Sigs) < r.quorum() {
		return protocol.VerifyJob{}, false
	}
	checks := make([]crypto.Check, len(qc.Sigs))
	for i, sig := range qc.Sigs {
		checks[i] = crypto.Check{Sig: sig, Msg: qc.Block[:]}
	}
	return protocol.VerifyJob{Checks: checks, Quorum: r.quorum()}, true
}

// qcComplete is the structural remnant of QC validation on the event loop:
// the signatures themselves were verified by the ingress pipeline, so only
// the distinct-signer quorum count is (re)checked here — it also covers
// QCs assembled locally or injected by tests.
func qcComplete(qc types.QC, quorum int) bool {
	return qc.Genesis || crypto.DistinctSigners(qc.Sigs) >= quorum
}

var (
	_ protocol.Protocol        = (*Replica)(nil)
	_ protocol.IngressVerifier = (*Replica)(nil)
)

func (r *Replica) onProposal(from types.NodeID, m *types.HSProposal) {
	if m.View < r.view || from != r.leader(m.View) {
		return
	}
	// The justification's n−f signatures (§6.2) were verified by the
	// ingress pipeline; only the structural quorum check remains here.
	if !qcComplete(m.Justify, r.quorum()) {
		return
	}
	parent, ok := r.blocks[m.Parent]
	if !ok && !m.Justify.Genesis {
		return // unknown ancestry; pacemaker recovers
	}
	if !ok {
		parent = r.genesis
	}
	b := &block{
		digest: m.Block, view: m.View, parent: m.Parent,
		batch: m.Batch, refs: m.Refs, justify: m.Justify,
		height: parent.height + 1,
	}
	r.blocks[b.digest] = b
	r.updateHighQC(m.Justify)

	// Safety: vote when the block extends the locked branch or carries a
	// newer justification (chained-HotStuff safety/liveness rules).
	if m.Justify.View < r.lockView && !m.Justify.Genesis {
		return
	}
	// Two-chain lock and three-chain commit over consecutive views.
	r.advanceChain(b)

	// A4: subvert non-faulty leaders by withholding votes.
	if r.cfg.Behavior.Mode == protocol.AttackSubvert && !r.cfg.Behavior.Accomplices[from] {
		if m.View >= r.view {
			r.enterView(m.View + 1)
		}
		return
	}
	// Vote to the next leader and move on.
	sig := r.ctx.Crypto().Sign(m.Block[:])
	vote := &types.HSVote{View: m.View, Block: m.Block, Sig: sig}
	next := r.leader(m.View + 1)
	if next == r.ctx.ID() {
		r.onVote(r.ctx.ID(), vote)
	} else {
		r.ctx.Send(next, vote)
	}
	if m.View >= r.view {
		r.enterView(m.View + 1)
	}
}

// advanceChain applies the chained commit rule: lock on the one-chain head,
// commit the tail of a three-chain with consecutive views.
func (r *Replica) advanceChain(b *block) {
	b1, ok1 := r.blocks[b.justify.Block] // one-chain (lock candidate)
	if !ok1 {
		return
	}
	if b1.view > r.lockView {
		r.lockView = b1.view
	}
	b2, ok2 := r.blocks[b1.justify.Block]
	if !ok2 {
		return
	}
	if b.view == b1.view+1 && b1.view == b2.view+1 {
		r.commit(b2)
	}
}

func (r *Replica) commit(b *block) {
	if b.committed {
		return
	}
	var chain []*block
	for q := b; q != nil && !q.committed; {
		chain = append(chain, q)
		q = r.blocks[q.parent]
	}
	for i := len(chain) - 1; i >= 0; i-- {
		blk := chain[i]
		blk.committed = true
		r.Delivered++
		c := types.Commit{View: blk.view, Batch: blk.batch, Proposal: blk.digest}
		if r.cfg.OnCommit != nil {
			r.cfg.OnCommit(c, blk.refs)
		} else if blk.batch != nil {
			r.ctx.Deliver(c)
		}
	}
}

func (r *Replica) updateHighQC(qc types.QC) {
	if qc.Genesis {
		return
	}
	if r.highQC.Genesis || qc.View > r.highQC.View {
		r.highQC = qc
	}
}

func (r *Replica) onVote(from types.NodeID, m *types.HSVote) {
	if r.leader(m.View+1) != r.ctx.ID() || m.View+1 < r.view {
		return
	}
	set := r.votes[m.View]
	if set == nil {
		set = make(map[types.NodeID]types.Signature)
		r.votes[m.View] = set
	}
	if _, dup := set[from]; dup {
		return
	}
	// Vote signatures are verified by the ingress pipeline on arrival
	// (§6.2); the loop only tallies pre-verified votes, re-asserting the
	// sender binding so an assembled QC always has distinct signers.
	if m.Sig.Signer != from {
		return
	}
	set[from] = m.Sig
	if len(set) != r.quorum() {
		return
	}
	sigs := make([]types.Signature, 0, len(set))
	for _, s := range set {
		sigs = append(sigs, s)
	}
	qc := types.QC{View: m.View, Block: m.Block, Sigs: sigs}
	r.updateHighQC(qc)
	delete(r.votes, m.View)
	if r.view <= m.View+1 {
		r.enterView(m.View + 1)
		r.propose(m.View + 1)
	}
}

func (r *Replica) onNewView(from types.NodeID, m *types.HSNewView) {
	if qcComplete(m.Justify, r.quorum()) {
		r.updateHighQC(m.Justify)
	}
	// View synchronization: adopt higher views and echo our own NewView to
	// that view's leader, so drifting pacemakers converge on a quorum for
	// one common view (the liveness gap of black-box pacemakers the paper
	// discusses; this is the standard fix).
	if m.View > r.view {
		r.enterView(m.View)
		if next := r.leader(m.View); next != r.ctx.ID() && from != r.ctx.ID() {
			r.ctx.Send(next, &types.HSNewView{View: m.View, Justify: r.highQC})
		}
	}
	if r.leader(m.View) != r.ctx.ID() {
		return
	}
	set := r.nvQC[m.View]
	if set == nil {
		set = make(map[types.NodeID]bool)
		r.nvQC[m.View] = set
	}
	set[from] = true
	if len(set) == r.quorum() && r.view <= m.View {
		delete(r.nvQC, m.View)
		r.propose(m.View)
	}
}

func (r *Replica) enterView(v types.View) {
	if v <= r.view {
		return
	}
	// Fast progress halves the pacemaker timeout back toward the floor.
	if r.ctx.Now()-r.viewStart < r.timeout/2 && r.timeout > r.cfg.MinTimeout {
		r.timeout = max(r.timeout/2, r.cfg.MinTimeout)
	}
	r.view = v
	r.viewStart = r.ctx.Now()
	r.armPacemaker()
}

// HandleTimer implements protocol.Protocol.
func (r *Replica) HandleTimer(tag protocol.TimerTag) {
	switch tag.Kind {
	case protocol.TimerPropose:
		if tag.View == r.view && r.leader(r.view) == r.ctx.ID() {
			r.propose(r.view)
		}
	case protocol.TimerPacemaker:
		if tag.View != r.view {
			return
		}
		// Pacemaker timeout: advance the view and hand the next leader our
		// highQC.
		if r.lastTOView+1 == r.view {
			r.timeout = min(r.timeout*2, r.cfg.MaxTimeout)
		}
		r.lastTOView = r.view
		v := r.view + 1
		r.view = v
		r.viewStart = r.ctx.Now()
		r.armPacemaker()
		// Broadcast so every replica observes the view advance (view
		// synchronization; see onNewView).
		nv := &types.HSNewView{View: v, Justify: r.highQC}
		r.ctx.Broadcast(nv)
		r.onNewView(r.ctx.ID(), nv)
	}
}

// View exposes the current pacemaker view (testing/probes).
func (r *Replica) View() types.View { return r.view }
