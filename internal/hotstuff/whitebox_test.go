package hotstuff

import (
	"testing"
	"time"

	"spotless/internal/crypto"
	"spotless/internal/protocol"
	"spotless/internal/types"
)

type fakeCtx struct {
	id      types.NodeID
	n, f    int
	now     time.Duration
	sent    []sentMsg
	commits []types.Commit
	batches []*types.Batch
	prov    crypto.Provider
}

type sentMsg struct {
	to  types.NodeID
	msg types.Message
}

func newFakeCtx(id types.NodeID, n int) *fakeCtx {
	return &fakeCtx{id: id, n: n, f: (n - 1) / 3,
		prov: crypto.NewSimProvider(id, crypto.CostModel{}, nil)}
}

func (c *fakeCtx) ID() types.NodeID   { return c.id }
func (c *fakeCtx) N() int             { return c.n }
func (c *fakeCtx) F() int             { return c.f }
func (c *fakeCtx) Now() time.Duration { return c.now }
func (c *fakeCtx) Send(to types.NodeID, m types.Message) {
	c.sent = append(c.sent, sentMsg{to, m})
}
func (c *fakeCtx) Broadcast(m types.Message)                 { c.sent = append(c.sent, sentMsg{-1, m}) }
func (c *fakeCtx) SetTimer(time.Duration, protocol.TimerTag) {}
func (c *fakeCtx) VerifyAsync(protocol.VerifyJob)            {}
func (c *fakeCtx) Crypto() crypto.Provider                   { return c.prov }
func (c *fakeCtx) Deliver(cm types.Commit)                   { c.commits = append(c.commits, cm) }
func (c *fakeCtx) Logf(string, ...any)                       {}
func (c *fakeCtx) NextBatch(int32) *types.Batch {
	if len(c.batches) == 0 {
		return nil
	}
	b := c.batches[0]
	c.batches = c.batches[1:]
	return b
}

func prov(id types.NodeID) crypto.Provider {
	return crypto.NewSimProvider(id, crypto.CostModel{}, nil)
}

// deliver routes a message the way substrates do: the declared ingress
// checks run first (off-loop in production) and failing messages never
// reach the state machine.
func deliver(r *Replica, from types.NodeID, msg types.Message) {
	if job, needed := r.IngressJob(from, msg); needed {
		if !crypto.VerifyChecks(prov(from), job.Checks, job.Quorum) {
			return
		}
	}
	r.HandleMessage(from, msg)
}

func mkBatch(tag byte) *types.Batch {
	txns := []types.Transaction{{Client: types.ClientIDBase, Seq: uint64(tag), Op: types.OpWrite, Key: uint64(tag)}}
	return &types.Batch{ID: types.ComputeBatchID(txns), Txns: txns}
}

// qcFor builds a quorum certificate with n−f valid signatures.
func qcFor(view types.View, block types.Digest, n, f int) types.QC {
	qc := types.QC{View: view, Block: block}
	for i := 0; i < n-f; i++ {
		qc.Sigs = append(qc.Sigs, prov(types.NodeID(i)).Sign(block[:]))
	}
	return qc
}

// proposalChain builds the blocks for views start..start+k−1 where each
// block carries a QC for its predecessor.
func feedChain(r *Replica, n, f int, count int) []types.Digest {
	var digests []types.Digest
	justify := types.QC{Genesis: true}
	parent := types.Digest{}
	for v := types.View(1); v <= types.View(count); v++ {
		batch := mkBatch(byte(v))
		d := types.ProposalDigest(0, v, batch.ID, justify.View, parent)
		msg := &types.HSProposal{View: v, Block: d, Parent: parent, Batch: batch, Justify: justify}
		deliver(r, r.leader(v), msg)
		digests = append(digests, d)
		justify = qcFor(v, d, n, f)
		parent = d
	}
	return digests
}

// TestHotStuffThreeChainCommit: block k commits when blocks k+1 and k+2 of
// consecutive views justify it.
func TestHotStuffThreeChainCommit(t *testing.T) {
	ctx := newFakeCtx(3, 4) // replica 3 never leads views 1..4
	r := New(ctx, DefaultConfig(4))
	r.Start()
	feedChain(r, 4, 1, 4)
	// Views 1..4 processed: blocks of views 1 and 2 must be committed.
	if len(ctx.commits) != 2 {
		t.Fatalf("commits: %d, want 2", len(ctx.commits))
	}
	if ctx.commits[0].View != 1 || ctx.commits[1].View != 2 {
		t.Fatalf("commit order: %+v", ctx.commits)
	}
}

// TestHotStuffVoteRouting: backups vote to the next view's leader.
func TestHotStuffVoteRouting(t *testing.T) {
	ctx := newFakeCtx(3, 4)
	r := New(ctx, DefaultConfig(4))
	r.Start()
	feedChain(r, 4, 1, 2)
	votes := 0
	for _, s := range ctx.sent {
		if v, ok := s.msg.(*types.HSVote); ok {
			votes++
			if s.to != r.leader(v.View+1) {
				t.Fatalf("vote for view %d sent to %d, want %d", v.View, s.to, r.leader(v.View+1))
			}
		}
	}
	// The view-2 vote routes to replica 3 itself (leader of view 3) and is
	// consumed internally, so exactly one vote crosses the network.
	if votes != 1 {
		t.Fatalf("votes sent: %d, want 1", votes)
	}
}

// TestHotStuffRejectsBadQC: a proposal whose QC lacks valid signatures is
// ignored.
func TestHotStuffRejectsBadQC(t *testing.T) {
	ctx := newFakeCtx(3, 4)
	r := New(ctx, DefaultConfig(4))
	r.Start()
	batch := mkBatch(1)
	d1 := types.ProposalDigest(0, 1, batch.ID, 0, types.Digest{})
	deliver(r, 1, &types.HSProposal{View: 1, Block: d1, Batch: batch, Justify: types.QC{Genesis: true}})
	// Forged QC: one signature repeated — dropped by the ingress pipeline
	// (distinct-signer quorum infeasible).
	sig := prov(1).Sign(d1[:])
	bad := types.QC{View: 1, Block: d1, Sigs: []types.Signature{sig, sig, sig}}
	batch2 := mkBatch(2)
	d2 := types.ProposalDigest(0, 2, batch2.ID, 1, d1)
	deliver(r, 2, &types.HSProposal{View: 2, Block: d2, Parent: d1, Batch: batch2, Justify: bad})
	// A structurally complete QC of invalid signatures is dropped too.
	forged := types.QC{View: 1, Block: d1, Sigs: []types.Signature{
		{Signer: 0, Bytes: []byte("junk0")},
		{Signer: 1, Bytes: []byte("junk1")},
		{Signer: 2, Bytes: []byte("junk2")},
	}}
	deliver(r, 2, &types.HSProposal{View: 2, Block: d2, Parent: d1, Batch: batch2, Justify: forged})
	votedFor2 := false
	for _, s := range ctx.sent {
		if v, ok := s.msg.(*types.HSVote); ok && v.View == 2 {
			votedFor2 = true
		}
	}
	if votedFor2 {
		t.Fatal("replica voted on a proposal with an invalid QC")
	}
}

// TestHotStuffLeaderFormsQCAtQuorum: the next leader proposes once n−f
// votes for the previous view arrive.
func TestHotStuffLeaderFormsQCAtQuorum(t *testing.T) {
	ctx := newFakeCtx(2, 4) // leader of view 2
	ctx.batches = []*types.Batch{mkBatch(7)}
	r := New(ctx, DefaultConfig(4))
	r.Start()
	batch := mkBatch(1)
	d1 := types.ProposalDigest(0, 1, batch.ID, 0, types.Digest{})
	deliver(r, 1, &types.HSProposal{View: 1, Block: d1, Batch: batch, Justify: types.QC{Genesis: true}})
	// Two external votes + own vote = n−f = 3; a forged vote must not
	// survive ingress screening or count toward the quorum.
	deliver(r, 0, &types.HSVote{View: 1, Block: d1, Sig: types.Signature{Signer: 0, Bytes: []byte("junk")}})
	for _, from := range []types.NodeID{0, 3} {
		deliver(r, from, &types.HSVote{View: 1, Block: d1, Sig: prov(from).Sign(d1[:])})
	}
	proposed := false
	for _, s := range ctx.sent {
		if p, ok := s.msg.(*types.HSProposal); ok && p.View == 2 {
			proposed = true
			if p.Justify.View != 1 || p.Justify.Block != d1 || len(p.Justify.Sigs) < 3 {
				t.Fatalf("bad justify: %+v", p.Justify)
			}
		}
	}
	if !proposed {
		t.Fatal("leader did not propose after vote quorum")
	}
}

// TestHotStuffPacemakerTimeoutAdvances: a timeout advances the view and
// routes a NewView with the high QC.
func TestHotStuffPacemakerTimeoutAdvances(t *testing.T) {
	ctx := newFakeCtx(3, 4)
	r := New(ctx, DefaultConfig(4))
	r.Start()
	r.HandleTimer(protocol.TimerTag{Kind: protocol.TimerPacemaker, View: 1})
	if r.View() != 2 {
		t.Fatalf("view after timeout: %d", r.View())
	}
	sentNV := false
	for _, s := range ctx.sent {
		if nv, ok := s.msg.(*types.HSNewView); ok && nv.View == 2 {
			sentNV = true
		}
	}
	if !sentNV {
		t.Fatal("no NewView after pacemaker timeout")
	}
}

// TestHotStuffNewViewAdoption: a NewView for a higher view pulls a lagging
// replica forward (the view-synchronization fix).
func TestHotStuffNewViewAdoption(t *testing.T) {
	ctx := newFakeCtx(3, 4)
	r := New(ctx, DefaultConfig(4))
	r.Start()
	deliver(r, 1, &types.HSNewView{View: 7, Justify: types.QC{Genesis: true}})
	if r.View() != 7 {
		t.Fatalf("view after NewView adoption: %d", r.View())
	}
}
