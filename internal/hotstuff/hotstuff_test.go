package hotstuff_test

import (
	"testing"
	"time"

	"spotless/internal/hotstuff"
	"spotless/internal/loadgen"
	"spotless/internal/simnet"
	"spotless/internal/types"
)

func newCluster(t testing.TB, n int) (*simnet.Simulation, []*hotstuff.Replica, *loadgen.Collector) {
	t.Helper()
	scfg := simnet.DefaultConfig(n)
	scfg.BaseHandlerCost = time.Microsecond
	sim := simnet.New(scfg)
	src := loadgen.NewSource(1, 16, loadgen.DefaultWorkload(10))
	sim.SetBatchSource(src)
	col := loadgen.NewCollector(sim.Context(simnet.ClientNode), src, (n-1)/3, 0)
	sim.SetProtocol(simnet.ClientNode, col)
	var reps []*hotstuff.Replica
	for i := 0; i < n; i++ {
		r := hotstuff.New(sim.Context(types.NodeID(i)), hotstuff.DefaultConfig(n))
		reps = append(reps, r)
		sim.SetProtocol(types.NodeID(i), r)
	}
	sim.Start()
	return sim, reps, col
}

// TestHotStuffNormalCase: the chain commits blocks under rotation.
func TestHotStuffNormalCase(t *testing.T) {
	sim, reps, col := newCluster(t, 4)
	sim.Run(2 * time.Second)
	if col.TxnsDone == 0 {
		t.Fatalf("no transactions completed")
	}
	for i, r := range reps {
		if r.Delivered == 0 {
			t.Errorf("replica %d committed no blocks", i)
		}
	}
}

// TestHotStuffLeaderFailure: the pacemaker rotates past a crashed leader.
func TestHotStuffLeaderFailure(t *testing.T) {
	sim, _, col := newCluster(t, 4)
	sim.Run(time.Second)
	before := col.TxnsDone
	if before == 0 {
		t.Fatalf("no progress before failure")
	}
	sim.SetDown(2, true)
	sim.Run(5 * time.Second)
	if col.TxnsDone <= before {
		t.Fatalf("no progress after leader failure: before=%d after=%d", before, col.TxnsDone)
	}
}
