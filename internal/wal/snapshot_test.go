package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"spotless/internal/ledger"
	"spotless/internal/types"
	"spotless/internal/ycsb"
)

// Execution-snapshot fault matrix. Every row of the recovery dispatch in
// recoverSnapshots is pinned here against the real ycsb envelope: clean
// round trip, torn write, bit flip, fsync failure, stale snapshot under a
// newer manifest, lost snapshot with an intact manifest, a snapshot above
// the manifest, and an orphan with no checkpoint at all. The invariants
// under test: recovery never hands back an unverified blob, corruption is
// quarantined (renamed aside, never deleted) and counted, and loss
// degrades to a loud forward-replay fallback — never a wrong answer.

// execBlob builds a genuine ycsb table snapshot bound to (height, exec).
func execBlob(height uint64, exec types.Digest) []byte {
	store := ycsb.NewStore(32, 16)
	w := ycsb.NewWorkload(int64(height)+3, 0, 32, 16)
	for i := 0; i < 4; i++ {
		store.Apply(w.NextBatch(8))
	}
	return store.Snapshot(height, exec)
}

// ckptAt persists a (unverified-by-wal) checkpoint manifest at height.
func ckptAt(t *testing.T, st *Store, height uint64, exec types.Digest) {
	t.Helper()
	cert := types.CheckpointCert{Height: height, StateHash: types.Digest{0xC, byte(height)},
		Sigs: []types.Signature{{Signer: 1, Bytes: []byte{1}}, {Signer: 2, Bytes: []byte{2}}}}
	if err := st.SetCheckpoint(cert, exec, types.Digest{0xAB}, nil); err != nil {
		t.Fatalf("set checkpoint: %v", err)
	}
}

func snapPath(height uint64) string { return filepath.Join(testDir, snapshotFile(height)) }

// TestSnapshotSaveRecoverRoundTrip: the happy path — manifest then snapshot,
// kill -9, reopen; recovery returns the exact blob and counts nothing as a
// fault.
func TestSnapshotSaveRecoverRoundTrip(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	exec := types.Digest{0xE1}
	blob := execBlob(64, exec)
	ckptAt(t, st, 64, exec)
	if err := st.SaveSnapshot(64, blob); err != nil {
		t.Fatalf("save snapshot: %v", err)
	}
	if got := st.Stats(); got.SnapshotsWritten != 1 || got.SnapshotBytes != int64(len(blob)) {
		t.Fatalf("stats after save = %+v", got)
	}
	fsys.Crash() // no Close: snapshot save syncs unconditionally

	st2, rec := openTest(t, fsys, FsyncPerCommit)
	if string(rec.ExecSnapshot) != string(blob) {
		t.Fatalf("recovered snapshot differs (%d bytes, want %d)", len(rec.ExecSnapshot), len(blob))
	}
	if rec.SnapshotFallback || rec.SnapshotQuarantined != 0 {
		t.Fatalf("clean round trip flagged faults: %+v", rec)
	}
	snap, err := ycsb.DecodeSnapshot(rec.ExecSnapshot)
	if err != nil || snap.Height != 64 || snap.ExecHash != exec {
		t.Fatalf("recovered blob does not decode to the saved table: %v %+v", err, snap)
	}
	if got := st2.Stats(); got.RestoreFallbacks != 0 || got.SnapshotsQuarantined != 0 {
		t.Fatalf("stats after clean recovery = %+v", got)
	}
}

// TestSnapshotGCSuperseded: a newer snapshot replaces the old one on disk
// only after the new file is durable; recovery sees exactly the newest.
func TestSnapshotGCSuperseded(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	e64, e128 := types.Digest{0x64}, types.Digest{0x28}
	ckptAt(t, st, 64, e64)
	if err := st.SaveSnapshot(64, execBlob(64, e64)); err != nil {
		t.Fatal(err)
	}
	ckptAt(t, st, 128, e128)
	blob := execBlob(128, e128)
	if err := st.SaveSnapshot(128, blob); err != nil {
		t.Fatal(err)
	}
	if fsys.Size(snapPath(64)) != -1 {
		t.Fatal("superseded snapshot not garbage-collected")
	}
	fsys.Crash()

	_, rec := openTest(t, fsys, FsyncPerCommit)
	if string(rec.ExecSnapshot) != string(blob) || rec.SnapshotFallback {
		t.Fatalf("recovery after GC = %d bytes, fallback=%v", len(rec.ExecSnapshot), rec.SnapshotFallback)
	}
}

// TestSnapshotTornWrite: the write itself tears (short write + I/O error).
// The save reports failure, leaves no temp debris, and recovery falls back
// loudly — the manifest survives untouched.
func TestSnapshotTornWrite(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	exec := types.Digest{0x71}
	ckptAt(t, st, 64, exec)
	fsys.ShortWrite(10)
	if err := st.SaveSnapshot(64, execBlob(64, exec)); err == nil {
		t.Fatal("torn snapshot write reported success")
	}
	if got := st.Stats(); got.SnapshotsWritten != 0 {
		t.Fatalf("torn write still counted as written: %+v", got)
	}
	if fsys.Size(filepath.Join(testDir, snapTmp)) != -1 {
		t.Fatal("temp file left behind after failed save")
	}

	st2, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ExecSnapshot != nil || !rec.SnapshotFallback {
		t.Fatalf("recovery after torn write = %+v, want loud fallback", rec)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Cert.Height != 64 {
		t.Fatal("manifest checkpoint lost alongside the snapshot")
	}
	if got := st2.Stats(); got.RestoreFallbacks != 1 {
		t.Fatalf("fallback not counted: %+v", got)
	}
}

// TestSnapshotCrashMidSave: power cut after the temp file is written but
// before rename — recovery sweeps the temp file and falls back.
func TestSnapshotCrashMidSave(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	exec := types.Digest{0x44}
	ckptAt(t, st, 64, exec)
	fsys.FailNextRename(errors.New("injected: power cut at rename"))
	if err := st.SaveSnapshot(64, execBlob(64, exec)); err == nil {
		t.Fatal("failed rename reported success")
	}
	// Simulate the temp file actually surviving the crash.
	f, err := fsys.OpenFile(filepath.Join(testDir, snapTmp), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("partial"))
	f.Close()

	_, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ExecSnapshot != nil || !rec.SnapshotFallback {
		t.Fatalf("recovery = %+v, want fallback", rec)
	}
	if fsys.Size(filepath.Join(testDir, snapTmp)) != -1 {
		t.Fatal("interrupted temp file not swept at recovery")
	}
}

// TestSnapshotBitFlip: silent media corruption in the snapshot body. The
// file is quarantined — renamed aside, never deleted — and counted.
func TestSnapshotBitFlip(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	exec := types.Digest{0x0F}
	blob := execBlob(64, exec)
	ckptAt(t, st, 64, exec)
	if err := st.SaveSnapshot(64, blob); err != nil {
		t.Fatal(err)
	}
	if !fsys.FlipBit(snapPath(64), int64(len(blob)/2), 3) {
		t.Fatal("bit-flip fault failed")
	}

	st2, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ExecSnapshot != nil || !rec.SnapshotFallback || rec.SnapshotQuarantined != 1 {
		t.Fatalf("recovery after bit flip = %+v, want quarantine + fallback", rec)
	}
	if fsys.Size(snapPath(64)) != -1 {
		t.Fatal("corrupt snapshot still at its live name")
	}
	if fsys.Size(filepath.Join(testDir, "quarantine-"+snapshotFile(64))) != int64(len(blob)) {
		t.Fatal("corrupt snapshot was deleted, not quarantined")
	}
	if got := st2.Stats(); got.SnapshotsQuarantined != 1 || got.RestoreFallbacks != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

// TestSnapshotTornTail: the file tears at rest (truncated tail). Same
// quarantine row as the bit flip — the CRC frame refuses it.
func TestSnapshotTornTail(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	exec := types.Digest{0x55}
	blob := execBlob(64, exec)
	ckptAt(t, st, 64, exec)
	if err := st.SaveSnapshot(64, blob); err != nil {
		t.Fatal(err)
	}
	if !fsys.TruncateFile(snapPath(64), int64(len(blob))-9) {
		t.Fatal("truncate fault failed")
	}
	_, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ExecSnapshot != nil || rec.SnapshotQuarantined != 1 {
		t.Fatalf("recovery after torn tail = %+v, want quarantine", rec)
	}
}

// TestSnapshotFsyncError: the disk rejects the sync. The save fails without
// poisoning the store — the ledger keeps appending, and only the snapshot
// arm degrades.
func TestSnapshotFsyncError(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	exec := types.Digest{0x99}
	ckptAt(t, st, 64, exec)
	fsys.FailSyncs(errors.New("injected: EIO on fsync"))
	if err := st.SaveSnapshot(64, execBlob(64, exec)); err == nil {
		t.Fatal("failed fsync reported success")
	}
	fsys.FailSyncs(nil)
	// Best-effort means NOT sticky: the store still takes ledger appends and
	// manifest updates afterwards.
	ckptAt(t, st, 128, types.Digest{0x9A})
	if err := st.SaveSnapshot(128, execBlob(128, types.Digest{0x9A})); err != nil {
		t.Fatalf("store poisoned by earlier snapshot fsync failure: %v", err)
	}
}

// TestSnapshotStaleUnderNewerManifest: crash in the persistence window —
// manifest advanced to 128, snapshot still at 64. The stale file completes
// its interrupted GC (deleted, not quarantined) and recovery falls back.
func TestSnapshotStaleUnderNewerManifest(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	e64 := types.Digest{0x64}
	ckptAt(t, st, 64, e64)
	if err := st.SaveSnapshot(64, execBlob(64, e64)); err != nil {
		t.Fatal(err)
	}
	ckptAt(t, st, 128, types.Digest{0x28}) // crash before SaveSnapshot(128, ...)
	fsys.Crash()

	_, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ExecSnapshot != nil || !rec.SnapshotFallback {
		t.Fatalf("recovery = %+v, want fallback from stale snapshot", rec)
	}
	if rec.SnapshotQuarantined != 0 {
		t.Fatal("stale snapshot quarantined; it should complete the interrupted GC")
	}
	if fsys.Size(snapPath(64)) != -1 {
		t.Fatal("stale snapshot survived recovery")
	}
}

// TestSnapshotLostWithIntactManifest: the snapshot file vanishes outright.
// Loud, counted fallback — distinct from the silent cold start below.
func TestSnapshotLostWithIntactManifest(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	exec := types.Digest{0x31}
	ckptAt(t, st, 64, exec)
	if err := st.SaveSnapshot(64, execBlob(64, exec)); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(snapPath(64)); err != nil {
		t.Fatal(err)
	}
	st2, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ExecSnapshot != nil || !rec.SnapshotFallback || rec.SnapshotQuarantined != 0 {
		t.Fatalf("recovery = %+v, want counted fallback with no quarantine", rec)
	}
	if got := st2.Stats(); got.RestoreFallbacks != 1 {
		t.Fatalf("fallback not counted: %+v", got)
	}
}

// TestSnapshotColdStartSilent: no checkpoint has ever been persisted. No
// snapshot is expected, so nothing is counted — satellite distinction
// between "nothing yet" and "something was rejected".
func TestSnapshotColdStartSilent(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	_ = st.Close()
	st2, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ExecSnapshot != nil || rec.SnapshotFallback || rec.SnapshotQuarantined != 0 {
		t.Fatalf("cold start flagged snapshot faults: %+v", rec)
	}
	if got := st2.Stats(); got.RestoreFallbacks != 0 {
		t.Fatalf("cold start counted a fallback: %+v", got)
	}
}

// TestSnapshotAboveManifest: a snapshot file newer than the manifest can
// only exist if the persistence order was violated — quarantine it.
func TestSnapshotAboveManifest(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	ckptAt(t, st, 64, types.Digest{0x64})
	if err := st.SaveSnapshot(128, execBlob(128, types.Digest{0x28})); err != nil {
		t.Fatal(err)
	}
	_, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ExecSnapshot != nil || rec.SnapshotQuarantined != 1 {
		t.Fatalf("recovery = %+v, want quarantine of above-manifest snapshot", rec)
	}
	if fsys.Size(filepath.Join(testDir, "quarantine-"+snapshotFile(128))) < 0 {
		t.Fatal("above-manifest snapshot not renamed aside")
	}
}

// TestSnapshotOrphanNoCheckpoint: a snapshot with no manifest at all has
// nothing vouching for it — quarantined, never served.
func TestSnapshotOrphanNoCheckpoint(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	if err := st.SaveSnapshot(64, execBlob(64, types.Digest{0x13})); err != nil {
		t.Fatal(err)
	}
	_, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ExecSnapshot != nil || rec.SnapshotQuarantined != 1 {
		t.Fatalf("recovery = %+v, want orphan quarantined", rec)
	}
}

// TestSnapshotBindingMismatch: intact frame, wrong content — the embedded
// exec hash disagrees with the manifest. Quarantined, not served.
func TestSnapshotBindingMismatch(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	ckptAt(t, st, 64, types.Digest{0xAA})
	if err := st.SaveSnapshot(64, execBlob(64, types.Digest{0xBB})); err != nil {
		t.Fatal(err)
	}
	_, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ExecSnapshot != nil || rec.SnapshotQuarantined != 1 || !rec.SnapshotFallback {
		t.Fatalf("recovery = %+v, want quarantine + fallback on binding mismatch", rec)
	}
}

// TestQuarantineSnapshotRename: the execution layer rejecting a blob after
// recovery (canonical-decode failure) renames the file aside and counts
// both a quarantine and a fallback.
func TestQuarantineSnapshotRename(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	exec := types.Digest{0x77}
	blob := execBlob(64, exec)
	ckptAt(t, st, 64, exec)
	if err := st.SaveSnapshot(64, blob); err != nil {
		t.Fatal(err)
	}
	st.QuarantineSnapshot(64)
	if got := st.Stats(); got.SnapshotsQuarantined != 1 || got.RestoreFallbacks != 1 {
		t.Fatalf("stats after quarantine = %+v", got)
	}
	if fsys.Size(snapPath(64)) != -1 {
		t.Fatal("quarantined snapshot still at its live name")
	}
	if fsys.Size(filepath.Join(testDir, "quarantine-"+snapshotFile(64))) != int64(len(blob)) {
		t.Fatal("quarantined snapshot content lost")
	}
}

// TestSnapshotResetRemoves: Reset (chain re-root at a transferred
// checkpoint) drops local snapshots along with segments.
func TestSnapshotResetRemoves(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	exec := types.Digest{0x21}
	ckptAt(t, st, 64, exec)
	if err := st.SaveSnapshot(64, execBlob(64, exec)); err != nil {
		t.Fatal(err)
	}
	if err := st.Reset(ledger.Snapshot{Height: 200, Resume: types.Digest{0x5E}}); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if fsys.Size(snapPath(64)) != -1 {
		t.Fatal("reset left a stale snapshot behind")
	}
}

// TestWalEnvelopeCompat pins wal's mirrored frame constants against the
// envelope internal/ycsb actually emits: the blob verifies, and the
// binding wal extracts matches the one ycsb embeds.
func TestWalEnvelopeCompat(t *testing.T) {
	exec := types.Digest{0xC0, 0xFF, 0xEE}
	blob := execBlob(4096, exec)
	h, e, ok := verifySnapshotBlob(blob)
	if !ok {
		t.Fatal("wal frame check rejects a genuine ycsb snapshot")
	}
	if h != 4096 || e != exec {
		t.Fatalf("wal extracted binding (%d, %x), want (4096, %x)", h, e[:4], exec[:4])
	}
	wh, we, err := ycsb.SnapshotBinding(blob)
	if err != nil || wh != h || we != e {
		t.Fatalf("ycsb and wal disagree on the binding: %v (%d vs %d)", err, wh, h)
	}
	if len(blob) < snapMinSize {
		t.Fatal("genuine snapshot smaller than wal's minimum frame")
	}
	// A single flipped bit anywhere must fail the frame check.
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/3] ^= 0x10
	if _, _, ok := verifySnapshotBlob(flipped); ok {
		t.Fatal("wal frame check accepted a bit-flipped blob")
	}
}
