// Package wal persists a replica's hash-chained ledger to append-only
// segment files so a crashed replica restarts from its own disk and fetches
// only the missing suffix over the network (O(suffix) rejoin instead of the
// O(chain) full state transfer an amnesiac replica needs).
//
// Layout of a data directory:
//
//	MANIFEST              crash-consistent snapshot + stable checkpoint cert
//	seg-<base16>.wal      append-only block records from height <base>
//
// Segments are aligned to checkpoint cuts: Truncate seals the active
// segment and rolls a new one, so GC to the stable frontier is whole-file
// deletion. Every record is CRC32C-framed; recovery truncates the torn
// tail at the first corrupt record instead of refusing to start.
package wal

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the narrow filesystem surface the store needs. The production
// implementation is the OS; tests drive the store through MemFS, whose
// crash and fault knobs make every corruption class deterministic.
type FS interface {
	// OpenFile opens name with os-style flags (O_RDWR|O_CREATE|O_APPEND...).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newname with oldname (the manifest commit).
	Rename(oldname, newname string) error
	Remove(name string) error
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	MkdirAll(dir string) error
}

// File is the per-file surface: sequential reads for recovery, appends for
// the hot path, Truncate for torn tails and rollbacks, Sync for durability.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// osFS is the production FS.
type osFS struct{}

// OSFS returns the real filesystem.
func OSFS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }
func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// --- MemFS: in-memory FS with crash semantics and fault injection ---

// memFile models a file as bytes plus a durable watermark: Sync promotes
// everything written so far; Crash discards the unsynced tail. That is the
// worst-case (and deterministic) power-cut model — anything not fsynced is
// gone.
type memFile struct {
	data   []byte
	synced int // durable length
}

type memHandle struct {
	fs     *MemFS
	name   string
	f      *memFile
	off    int // read offset (handles are either scanned or appended, never both interleaved)
	append bool
	closed bool
}

// MemFS is a deterministic in-memory FS for recovery drills. The fault
// knobs cover the injected-fault matrix: short writes, fsync errors,
// bit flips, dropped files, failed renames, and whole-FS crashes.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile

	// fault knobs (all one-shot unless noted)
	shortWrite  int   // >0: next Write persists only this many bytes, then errors
	failSync    error // non-nil: every Sync fails with this (sticky until cleared)
	failRename  error // non-nil: next Rename fails (file stays at old name)
	failedSyncs int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memFile)} }

func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		f = &memFile{}
		m.files[name] = f
	}
	if flag&os.O_TRUNC != 0 {
		f.data = f.data[:0]
		f.synced = 0
	}
	return &memHandle{fs: m, name: name, f: f, append: flag&os.O_APPEND != 0}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failRename != nil {
		err := m.failRename
		m.failRename = nil
		return err
	}
	f, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.files, oldname)
	// Renames are modelled as immediately durable (journaled-metadata FS);
	// payload durability still requires the temp file to have been synced.
	m.files[newname] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) MkdirAll(dir string) error { return nil }

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := filepath.Clean(dir) + string(filepath.Separator)
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == filepath.Clean(dir) {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Crash simulates a power cut: every file loses its unsynced tail. The
// store must be reopened (via Open) to observe the result; handles from
// before the crash are poisoned.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.data = f.data[:f.synced]
	}
}

// ShortWrite arranges for the next Write to persist only n bytes of its
// payload and report an I/O error — the classic torn record.
func (m *MemFS) ShortWrite(n int) {
	m.mu.Lock()
	m.shortWrite = n
	m.mu.Unlock()
}

// FailSyncs makes every subsequent Sync fail with err (nil clears).
func (m *MemFS) FailSyncs(err error) {
	m.mu.Lock()
	m.failSync = err
	m.mu.Unlock()
}

// FailNextRename makes the next Rename fail with err (the manifest commit
// that never lands).
func (m *MemFS) FailNextRename(err error) {
	m.mu.Lock()
	m.failRename = err
	m.mu.Unlock()
}

// FlipBit XORs one bit in the named file — silent media corruption.
func (m *MemFS) FlipBit(name string, off int64, bit uint) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok || off < 0 || off >= int64(len(f.data)) {
		return false
	}
	f.data[off] ^= 1 << (bit % 8)
	return true
}

// TruncateFile chops the named file to size — a torn tail without a crash.
func (m *MemFS) TruncateFile(name string, size int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok || size < 0 || size > int64(len(f.data)) {
		return false
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return true
}

// Size reports the named file's length (-1 if absent).
func (m *MemFS) Size(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return int64(len(f.data))
	}
	return -1
}

// FailedSyncs counts Syncs rejected by FailSyncs.
func (m *MemFS) FailedSyncs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failedSyncs
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.fs.shortWrite > 0 && h.fs.shortWrite < len(p) {
		n := h.fs.shortWrite
		h.fs.shortWrite = 0
		h.f.data = append(h.f.data, p[:n]...)
		return n, io.ErrShortWrite
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.failSync != nil {
		h.fs.failedSyncs++
		return h.fs.failSync
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if size < 0 || size > int64(len(h.f.data)) {
		return fs.ErrInvalid
	}
	h.f.data = h.f.data[:size]
	if h.f.synced > int(size) {
		h.f.synced = int(size)
	}
	if h.off > int(size) {
		h.off = int(size)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	h.closed = true
	h.fs.mu.Unlock()
	return nil
}
