package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"spotless/internal/ledger"
	"spotless/internal/types"
)

// FsyncPolicy selects when appended records are forced to stable media.
type FsyncPolicy int

const (
	// FsyncPerCommit syncs after every appended block: a power cut loses at
	// most the record being written. The default.
	FsyncPerCommit FsyncPolicy = iota
	// FsyncBatched syncs at most once per BatchInterval (and at every
	// segment seal): bounded loss, amortized latency.
	FsyncBatched
	// FsyncOff never syncs data records (the OS flushes eventually): a
	// benchmark/throwaway mode — a power cut can lose everything since the
	// last segment seal. The manifest commit is still synced.
	FsyncOff
)

// ParseFsyncPolicy maps the operator spelling ("percommit", "batched",
// "off"; empty = percommit) to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "percommit", "per-commit":
		return FsyncPerCommit, nil
	case "batched":
		return FsyncBatched, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want percommit, batched, off)", s)
}

// Config parameterizes Open.
type Config struct {
	FS            FS            // nil = the real filesystem
	Fsync         FsyncPolicy   // default FsyncPerCommit
	BatchInterval time.Duration // FsyncBatched cadence (default 2ms)
	Logf          func(format string, args ...any)
}

// Recovery reports what Open reconstructed from disk: the retained-chain
// snapshot, the replayed block records (framing- and height-validated;
// hash-chain validation happens in ledger.Restore), and the persisted
// stable-checkpoint metadata, if any survived.
type Recovery struct {
	Snapshot   ledger.Snapshot
	Blocks     []types.BlockRecord
	Checkpoint *Checkpoint

	// ExecSnapshot is the raw execution-snapshot blob whose embedded
	// (height, exec hash) binding matches Checkpoint — nil when none
	// survived. The execution layer decodes and restores it (and verifies
	// again end to end through core.VerifyResume) before serving reads.
	ExecSnapshot []byte

	ReplayedBlocks      int
	Truncations         int  // torn-tail cuts + quarantined segment files
	ManifestMissing     bool // no (readable) manifest on disk
	Quarantined         bool // chain was unusable without it; started empty
	SnapshotQuarantined int  // snapshot files set aside this recovery
	// SnapshotFallback: a checkpoint exists but no usable snapshot does —
	// the corruption/loss signature, distinct from a pre-first-checkpoint
	// cold start (Checkpoint == nil, silent).
	SnapshotFallback bool
}

type segInfo struct {
	base, end uint64
	name      string
	size      int64
}

// Store is a durable backing for one replica's ledger. It implements
// ledger.Store; all mutators are called under the ledger's lock on the
// ordering stage, so internal locking only guards the metrics readers.
type Store struct {
	mu   sync.Mutex
	fs   FS
	dir  string
	cfg  Config
	open bool

	snapshot ledger.Snapshot // manifest snapshot (retained base)
	ckpt     *Checkpoint     // manifest stable-checkpoint metadata

	head       uint64 // next height to append
	lastHash   types.Digest
	active     File
	activeName string
	activeBase uint64
	activeSize int64
	offsets    []int64 // byte offset of record for height activeBase+i
	sealed     []segInfo

	dirty       bool
	lastSyncAt  time.Time
	lastSync    time.Duration
	syncs       uint64
	appended    uint64
	truncations int
	replayed    int
	err         error

	snapsWritten    uint64
	snapBytes       int64 // size of the last snapshot written or restored
	snapRestored    uint64
	snapQuarantined int
	snapFallbacks   int

	scratch []byte
}

// Stats is a point-in-time durability snapshot for /metrics.
type Stats struct {
	Segments    int
	BytesOnDisk int64
	Head        uint64
	Appended    uint64
	Syncs       uint64
	LastFsync   time.Duration
	Replayed    int // blocks replayed at last Open
	Truncations int // recovery truncation events (lifetime of this Open)
	Failed      bool

	SnapshotsWritten     uint64
	SnapshotBytes        int64 // last execution snapshot written or restored
	SnapshotsRestored    uint64
	SnapshotsQuarantined int
	RestoreFallbacks     int // recoveries that had a checkpoint but no usable snapshot
}

// Open mounts (creating if needed) the data directory and recovers its
// contents: manifest first, then every segment in base order, truncating
// the torn tail at the first corrupt record and quarantining anything
// unreachable past it. It never refuses to start over recoverable damage —
// and never returns records it cannot vouch for.
func Open(dir string, cfg Config) (*Store, *Recovery, error) {
	if cfg.FS == nil {
		cfg.FS = OSFS()
	}
	if cfg.BatchInterval <= 0 {
		cfg.BatchInterval = 2 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := cfg.FS.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	s := &Store{fs: cfg.FS, dir: dir, cfg: cfg, open: true, scratch: make([]byte, 0, recordSize)}
	rec, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	return s, rec, nil
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// quarantine renames a damaged or unreachable segment aside instead of
// deleting it: recovery must never destroy the only copy of evidence.
func (s *Store) quarantine(name string, rec *Recovery) {
	if err := s.fs.Rename(s.path(name), s.path("quarantine-"+name)); err != nil {
		_ = s.fs.Remove(s.path(name)) // fall back: unreachable data must not resurrect
	}
	rec.Truncations++
	s.cfg.Logf("wal: quarantined segment %s", name)
}

func (s *Store) recover() (*Recovery, error) {
	rec := &Recovery{}
	snap, ckpt, err := readManifest(s.fs, s.dir)
	switch err {
	case nil:
	case errNoManifest:
		rec.ManifestMissing = true
	default:
		// Unreadable counts as missing — but loudly, and the old file is
		// kept aside for post-mortem.
		s.cfg.Logf("wal: manifest unreadable (%v); treating as missing", err)
		_ = s.fs.Rename(s.path(manifestName), s.path("quarantine-"+manifestName))
		rec.ManifestMissing = true
		rec.Truncations++
	}
	_ = s.fs.Remove(s.path(manifestTmp)) // leftover of an interrupted commit

	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, name := range names {
		if base, ok := parseSegmentFile(name); ok {
			segs = append(segs, segInfo{base: base, name: name})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })

	// A manifest-less store is only rootable at genesis: with segments
	// starting above height 0 there is nothing tying the chain to a
	// snapshot, so fail loudly and start empty (the replica rejoins via
	// network state transfer — a corrupt root must never be served).
	if rec.ManifestMissing && len(segs) > 0 && segs[0].base > 0 {
		s.cfg.Logf("wal: manifest lost with segments based at %d — quarantining chain, starting empty", segs[0].base)
		for _, sg := range segs {
			s.quarantine(sg.name, rec)
		}
		rec.Quarantined = true
		segs = nil
	}

	s.snapshot, s.ckpt = snap, ckpt
	s.head = snap.Height
	s.lastHash = snap.Resume
	expected := snap.Height
	stopped := false
	for _, sg := range segs {
		if stopped {
			s.quarantine(sg.name, rec)
			continue
		}
		data, err := s.readFile(sg.name)
		if err != nil {
			s.quarantine(sg.name, rec)
			stopped = true
			continue
		}
		base, _, blocks, good, scanErr := scanSegment(data)
		if scanErr != nil && good == 0 {
			// Header damage: nothing in this file is trustworthy.
			s.quarantine(sg.name, rec)
			stopped = true
			continue
		}
		end := base + uint64(len(blocks))
		if end <= expected {
			if scanErr == nil {
				// Wholly behind the retained chain: GC leftover from an
				// interrupted truncate. Deleting it completes that truncate.
				_ = s.fs.Remove(s.path(sg.name))
			} else {
				s.quarantine(sg.name, rec)
				stopped = true
			}
			continue
		}
		if base > expected {
			// A hole in the chain: everything from here is unreachable.
			s.cfg.Logf("wal: segment %s starts at %d, chain ends at %d — quarantining", sg.name, base, expected)
			s.quarantine(sg.name, rec)
			stopped = true
			continue
		}
		if scanErr != nil {
			// Torn tail or mid-file corruption: truncate at the last valid
			// record and drop everything past it (including later segments).
			s.cfg.Logf("wal: segment %s damaged (%v); truncating at %d bytes (%d records kept)",
				sg.name, scanErr, good, len(blocks))
			rec.Truncations++
			stopped = true
		}
		for _, b := range blocks {
			if b.Height >= expected {
				rec.Blocks = append(rec.Blocks, b)
			}
		}
		expected = end
		s.sealed = append(s.sealed, segInfo{base: base, end: end, name: sg.name, size: int64(good)})
	}
	s.head = expected
	if len(rec.Blocks) > 0 {
		s.lastHash = rec.Blocks[len(rec.Blocks)-1].Hash
	}

	// Reopen the last surviving segment for appends (truncating any torn
	// tail in place); with none, start a fresh segment at the head.
	if len(s.sealed) > 0 {
		last := s.sealed[len(s.sealed)-1]
		s.sealed = s.sealed[:len(s.sealed)-1]
		if err := s.openForAppend(last.name, last.size); err != nil {
			return nil, err
		}
	} else if err := s.rollNew(); err != nil {
		return nil, err
	}

	s.recoverSnapshots(rec)

	rec.Snapshot = s.snapshot
	rec.Checkpoint = s.ckpt
	rec.ReplayedBlocks = len(rec.Blocks)
	s.replayed = len(rec.Blocks)
	s.truncations = rec.Truncations
	return rec, nil
}

func (s *Store) readFile(name string) ([]byte, error) {
	f, err := s.fs.OpenFile(s.path(name), os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// openForAppend re-mounts an existing segment as the active one, chopping
// it to size (the last valid offset) and rebuilding the record index.
func (s *Store) openForAppend(name string, size int64) error {
	f, err := s.fs.OpenFile(s.path(name), os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	base, ok := parseSegmentFile(name)
	if !ok {
		f.Close()
		return fmt.Errorf("wal: bad segment name %s", name)
	}
	s.active, s.activeName, s.activeBase, s.activeSize = f, name, base, size
	s.offsets = s.offsets[:0]
	for off := int64(segHeaderSize); off < size; off += recordSize {
		s.offsets = append(s.offsets, off)
	}
	return nil
}

// rollNew starts a fresh active segment at the current head.
func (s *Store) rollNew() error {
	name := segmentFile(s.head)
	f, err := s.fs.OpenFile(s.path(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	hdr := encodeSegHeader(s.scratch[:0], s.head, s.lastHash)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if s.cfg.Fsync != FsyncOff {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	s.active, s.activeName, s.activeBase, s.activeSize = f, name, s.head, segHeaderSize
	s.offsets = s.offsets[:0]
	return nil
}

func (s *Store) fail(err error) error {
	if s.err == nil {
		s.err = err
		s.cfg.Logf("wal: store failed, persistence stopped: %v", err)
	}
	return s.err
}

func (s *Store) syncLocked() error {
	start := time.Now()
	err := s.active.Sync()
	s.lastSync = time.Since(start)
	s.lastSyncAt = start
	s.syncs++
	if err != nil {
		return s.fail(err)
	}
	s.dirty = false
	return nil
}

// AppendBlock implements ledger.Store: frame, append, and sync per policy.
func (s *Store) AppendBlock(b types.BlockRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if b.Height != s.head {
		return s.fail(fmt.Errorf("wal: append height %d, head is %d", b.Height, s.head))
	}
	buf := appendFramedRecord(s.scratch[:0], &b)
	off := s.activeSize
	if _, err := s.active.Write(buf); err != nil {
		// Chop the torn record so the on-disk tail stays clean, then stop
		// persisting: a gap mid-chain would poison every later record.
		_ = s.active.Truncate(off)
		return s.fail(err)
	}
	s.offsets = append(s.offsets, off)
	s.activeSize += int64(len(buf))
	s.head++
	s.lastHash = b.Hash
	s.appended++
	s.dirty = true
	switch s.cfg.Fsync {
	case FsyncPerCommit:
		return s.syncLocked()
	case FsyncBatched:
		if time.Since(s.lastSyncAt) >= s.cfg.BatchInterval {
			return s.syncLocked()
		}
	}
	return nil
}

// Truncate implements ledger.Store: commit the new retained base to the
// manifest, seal the active segment at the checkpoint cut, and delete
// segments wholly behind it (GC is whole-file by construction).
func (s *Store) Truncate(below uint64, resume types.Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if below <= s.snapshot.Height {
		return nil
	}
	s.snapshot = ledger.Snapshot{Height: below, Resume: resume}
	if err := writeManifest(s.fs, s.dir, s.snapshot, s.ckpt); err != nil {
		return s.fail(err)
	}
	if err := s.sealAndRollLocked(); err != nil {
		return err
	}
	// Whole-file GC: a straddling segment survives until a later cut
	// clears its end (bounded by one checkpoint interval of extra disk).
	kept := s.sealed[:0]
	for _, sg := range s.sealed {
		if sg.end <= below {
			_ = s.fs.Remove(s.path(sg.name))
		} else {
			kept = append(kept, sg)
		}
	}
	s.sealed = kept
	return nil
}

func (s *Store) sealAndRollLocked() error {
	if s.activeSize == segHeaderSize && s.activeBase == s.head {
		return nil // empty active segment already sits at the head
	}
	if s.dirty || s.cfg.Fsync != FsyncOff {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if err := s.active.Close(); err != nil {
		return s.fail(err)
	}
	s.sealed = append(s.sealed, segInfo{base: s.activeBase, end: s.head, name: s.activeName, size: s.activeSize})
	if err := s.rollNew(); err != nil {
		return s.fail(err)
	}
	return nil
}

// Rollback implements ledger.Store: rewind the on-disk tail so heights
// ≥ from are gone — whole segments by deletion, the straddler by truncation.
func (s *Store) Rollback(from uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if from >= s.head {
		return nil
	}
	if from < s.snapshot.Height {
		return s.fail(fmt.Errorf("wal: rollback to %d below retained base %d", from, s.snapshot.Height))
	}
	// Drop whole segments rooted at/above the rollback point, promoting the
	// newest survivor back to active. Sealed segments tile the retained
	// range contiguously, so the survivor (if any) straddles `from`.
	for s.activeBase >= from {
		_ = s.active.Close()
		_ = s.fs.Remove(s.path(s.activeName))
		if len(s.sealed) == 0 {
			// Nothing retained below: re-root at the snapshot base.
			s.head = from
			s.lastHash = s.snapshot.Resume
			if err := s.rollNew(); err != nil {
				return s.fail(err)
			}
			return nil
		}
		last := s.sealed[len(s.sealed)-1]
		s.sealed = s.sealed[:len(s.sealed)-1]
		if err := s.openForAppend(last.name, last.size); err != nil {
			return s.fail(err)
		}
	}
	// Truncate within the (now) active segment.
	if idx := from - s.activeBase; idx < uint64(len(s.offsets)) {
		off := s.offsets[idx]
		if err := s.active.Truncate(off); err != nil {
			return s.fail(err)
		}
		s.offsets = s.offsets[:idx]
		s.activeSize = off
		if s.cfg.Fsync != FsyncOff {
			if err := s.syncLocked(); err != nil {
				return err
			}
		}
	}
	// The pre-rollback chain hash is unknown without a rescan; the segment
	// header's resume digest is informational, so zero is acceptable.
	s.head = from
	s.lastHash = types.Digest{} // unknown until the next append re-chains
	return nil
}

// Reset implements ledger.Store: discard every segment and re-root at the
// snapshot (the full state-transfer install path). The persisted checkpoint
// metadata is cleared — the caller re-persists the new certificate via
// SetCheckpoint immediately after; a crash in between quarantines cleanly.
func (s *Store) Reset(snap ledger.Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	_ = s.active.Close()
	_ = s.fs.Remove(s.path(s.activeName))
	for _, sg := range s.sealed {
		_ = s.fs.Remove(s.path(sg.name))
	}
	s.sealed = s.sealed[:0]
	s.removeSnapshotsLocked() // local snapshots no longer match the new root
	s.snapshot, s.ckpt = snap, nil
	s.head, s.lastHash = snap.Height, snap.Resume
	if err := writeManifest(s.fs, s.dir, s.snapshot, nil); err != nil {
		return s.fail(err)
	}
	if err := s.rollNew(); err != nil {
		return s.fail(err)
	}
	return nil
}

// SetCheckpoint persists stable-checkpoint metadata into the manifest: the
// certificate, state-hash preimage parts, and per-instance anchors a
// restarted replica resumes consensus from.
func (s *Store) SetCheckpoint(cert types.CheckpointCert, execHash, resume types.Digest, anchors []types.Anchor) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.ckpt = &Checkpoint{Cert: cert, ExecHash: execHash, Resume: resume,
		Anchors: append([]types.Anchor(nil), anchors...)}
	if err := writeManifest(s.fs, s.dir, s.snapshot, s.ckpt); err != nil {
		return s.fail(err)
	}
	return nil
}

// Sync forces any batched appends to media.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.dirty {
		return s.syncLocked()
	}
	return nil
}

// Close syncs (regardless of policy — clean shutdown is durable) and
// releases the active segment. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.open {
		return nil
	}
	s.open = false
	var err error
	if s.err == nil && s.dirty {
		err = s.syncLocked()
	}
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// Err reports the sticky store failure, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Head reports the next height the store would persist.
func (s *Store) Head() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.head
}

// Stats snapshots durability telemetry for /metrics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments:    len(s.sealed) + 1,
		BytesOnDisk: s.activeSize,
		Head:        s.head,
		Appended:    s.appended,
		Syncs:       s.syncs,
		LastFsync:   s.lastSync,
		Replayed:    s.replayed,
		Truncations: s.truncations,
		Failed:      s.err != nil,

		SnapshotsWritten:     s.snapsWritten,
		SnapshotBytes:        s.snapBytes,
		SnapshotsRestored:    s.snapRestored,
		SnapshotsQuarantined: s.snapQuarantined,
		RestoreFallbacks:     s.snapFallbacks,
	}
	for _, sg := range s.sealed {
		st.BytesOnDisk += sg.size
	}
	return st
}
