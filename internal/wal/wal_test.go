package wal

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"spotless/internal/ledger"
	"spotless/internal/types"
)

const testDir = "data"

func openTest(t *testing.T, fsys *MemFS, pol FsyncPolicy) (*Store, *Recovery) {
	t.Helper()
	st, rec, err := Open(testDir, Config{FS: fsys, Fsync: pol})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return st, rec
}

// appendChain grows lg by n blocks (mirrored into any bound store).
func appendChain(lg *ledger.Ledger, n int) {
	for i := 0; i < n; i++ {
		h := lg.Height()
		lg.Append(types.Commit{Instance: 0, View: types.View(h + 1), Proposal: types.Digest{byte(h + 1)}},
			types.Digest{0xEE, byte(h)})
	}
}

func mustRestore(t *testing.T, rec *Recovery, st *Store) *ledger.Ledger {
	t.Helper()
	lg, _, err := ledger.Restore(rec.Snapshot, rec.Blocks, st)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := lg.Verify(); err != nil {
		t.Fatalf("restored chain does not verify: %v", err)
	}
	return lg
}

func seg(base uint64) string { return filepath.Join(testDir, segmentFile(base)) }

// TestRoundTripRestart: a cleanly closed store replays its whole chain, the
// restored ledger verifies, and appending continues seamlessly.
func TestRoundTripRestart(t *testing.T) {
	fsys := NewMemFS()
	st, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ReplayedBlocks != 0 || rec.Quarantined {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	lg := ledger.New()
	lg.Bind(st)
	appendChain(lg, 10)
	wantHead, wantHash := lg.Head()
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, rec2 := openTest(t, fsys, FsyncPerCommit)
	if rec2.ReplayedBlocks != 10 || rec2.Truncations != 0 {
		t.Fatalf("recovery = %+v, want 10 clean blocks", rec2)
	}
	if !rec2.ManifestMissing {
		t.Fatal("no truncate or checkpoint ran; manifest should not exist yet")
	}
	lg2 := mustRestore(t, rec2, st2)
	if h, hash := lg2.Head(); h != wantHead || hash != wantHash {
		t.Fatalf("restored head (%d,%x), want (%d,%x)", h, hash[:4], wantHead, wantHash[:4])
	}
	appendChain(lg2, 1)
	if err := lg2.StoreErr(); err != nil {
		t.Fatalf("append after restart failed to persist: %v", err)
	}
	if st2.Head() != wantHead+1 {
		t.Fatalf("store head %d, want %d", st2.Head(), wantHead+1)
	}
}

// TestTornTailTruncated: a record cut mid-frame (torn write at power-cut)
// is dropped; everything before it survives and appends continue.
func TestTornTailTruncated(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	lg := ledger.New()
	lg.Bind(st)
	appendChain(lg, 10)
	_ = st.Close()
	if !fsys.TruncateFile(seg(0), fsys.Size(seg(0))-37) {
		t.Fatal("truncate fault failed")
	}

	st2, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ReplayedBlocks != 9 || rec.Truncations != 1 {
		t.Fatalf("recovery = %+v, want 9 blocks and 1 truncation", rec)
	}
	lg2 := mustRestore(t, rec, st2)
	if lg2.Height() != 9 {
		t.Fatalf("restored height %d, want 9", lg2.Height())
	}
	appendChain(lg2, 2)
	if err := lg2.StoreErr(); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	if st2.Head() != 11 {
		t.Fatalf("store head %d, want 11", st2.Head())
	}
}

// TestBitFlipTruncatesAndQuarantines: silent media corruption mid-segment
// cuts the replay at the last valid record; the unreachable later segment
// is quarantined — renamed aside, never deleted, never served.
func TestBitFlipTruncatesAndQuarantines(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	lg := ledger.New()
	lg.Bind(st)
	appendChain(lg, 10)
	if err := lg.Truncate(4); err != nil { // manifest base 4; seals [0,10), rolls seg-10
		t.Fatal(err)
	}
	appendChain(lg, 5) // seg-10 holds [10,15)
	_ = st.Close()
	// Flip a payload bit in record 6 of the first segment.
	off := int64(segHeaderSize + 6*recordSize + recordHdrSize + 3)
	if !fsys.FlipBit(seg(0), off, 2) {
		t.Fatal("bit-flip fault failed")
	}

	st2, rec := openTest(t, fsys, FsyncPerCommit)
	// Heights 4,5 survive (6 is corrupt, everything past it unreachable).
	if rec.ReplayedBlocks != 2 {
		t.Fatalf("replayed %d blocks, want 2 (got %+v)", rec.ReplayedBlocks, rec)
	}
	if rec.Truncations != 2 { // the corrupt cut + the quarantined successor
		t.Fatalf("truncations = %d, want 2", rec.Truncations)
	}
	if fsys.Size(seg(10)) != -1 {
		t.Fatal("unreachable segment still at its original name")
	}
	if fsys.Size(filepath.Join(testDir, "quarantine-"+segmentFile(10))) < 0 {
		t.Fatal("unreachable segment was deleted, not quarantined")
	}
	lg2 := mustRestore(t, rec, st2)
	if lg2.Height() != 6 {
		t.Fatalf("restored height %d, want 6", lg2.Height())
	}
	appendChain(lg2, 1)
	if err := lg2.StoreErr(); err != nil {
		t.Fatalf("append after corruption recovery: %v", err)
	}
}

// TestShortWriteStopsPersistence: a short write fails the store loudly and
// stickily; the on-disk prefix stays clean and replays in full.
func TestShortWriteStopsPersistence(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	lg := ledger.New()
	lg.Bind(st)
	appendChain(lg, 5)
	fsys.ShortWrite(50)
	appendChain(lg, 1)
	if lg.StoreErr() == nil || st.Err() == nil {
		t.Fatal("short write did not fail the store")
	}
	appendChain(lg, 2) // in-memory chain keeps going; store must stay failed
	if !st.Stats().Failed {
		t.Fatal("stats do not report the failure")
	}
	_ = st.Close()

	st2, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ReplayedBlocks != 5 || rec.Truncations != 0 {
		t.Fatalf("recovery = %+v, want exactly the 5 pre-fault blocks", rec)
	}
	mustRestore(t, rec, st2)
}

// TestFsyncErrorFailsSticky: an fsync error stops persistence permanently
// (clearing the fault does not resurrect the store), and a power-cut after
// the failure loses only the unsynced tail.
func TestFsyncErrorFailsSticky(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	lg := ledger.New()
	lg.Bind(st)
	appendChain(lg, 3)
	fsys.FailSyncs(errors.New("injected: EIO"))
	appendChain(lg, 1)
	if st.Err() == nil || lg.StoreErr() == nil {
		t.Fatal("fsync error did not fail the store")
	}
	if fsys.FailedSyncs() == 0 {
		t.Fatal("fault never fired")
	}
	fsys.FailSyncs(nil)
	appendChain(lg, 1) // store is dead; clearing the fault must not revive it
	if st.Head() != 4 {
		t.Fatalf("store head %d; the failed store accepted appends past the unsynced record", st.Head())
	}
	fsys.Crash() // drop the record whose fsync failed

	_, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.ReplayedBlocks != 3 || rec.Truncations != 0 {
		t.Fatalf("recovery = %+v, want the 3 synced blocks", rec)
	}
}

// TestLostManifestQuarantinesChain: segments based above genesis with no
// manifest cannot prove their snapshot; recovery quarantines them and
// starts empty (fails loudly) instead of serving an unrooted chain.
func TestLostManifestQuarantinesChain(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	lg := ledger.New()
	lg.Bind(st)
	appendChain(lg, 10)
	if err := lg.Truncate(10); err != nil { // GCs [0,10) wholly; chain now based at 10
		t.Fatal(err)
	}
	appendChain(lg, 5)
	_ = st.Close()
	if err := fsys.Remove(filepath.Join(testDir, manifestName)); err != nil {
		t.Fatal(err)
	}

	st2, rec := openTest(t, fsys, FsyncPerCommit)
	if !rec.ManifestMissing || !rec.Quarantined {
		t.Fatalf("recovery = %+v, want manifest-missing + quarantined", rec)
	}
	if rec.ReplayedBlocks != 0 || rec.Snapshot.Height != 0 {
		t.Fatalf("recovery served %d blocks at base %d from an unrooted chain",
			rec.ReplayedBlocks, rec.Snapshot.Height)
	}
	if fsys.Size(filepath.Join(testDir, "quarantine-"+segmentFile(10))) < 0 {
		t.Fatal("unrooted segment was deleted, not quarantined")
	}
	lg2 := mustRestore(t, rec, st2)
	appendChain(lg2, 3) // fresh genesis chain works
	if err := lg2.StoreErr(); err != nil {
		t.Fatal(err)
	}
}

// TestMissingManifestGenesisChain: a chain still rooted at height 0 needs
// no manifest to prove its snapshot — it replays in full.
func TestMissingManifestGenesisChain(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	lg := ledger.New()
	lg.Bind(st)
	appendChain(lg, 7)
	_ = st.Close()

	_, rec := openTest(t, fsys, FsyncPerCommit)
	if !rec.ManifestMissing || rec.Quarantined || rec.ReplayedBlocks != 7 {
		t.Fatalf("recovery = %+v, want 7 blocks from a manifest-less genesis chain", rec)
	}
}

// TestManifestRenameFailure: a manifest commit whose rename never lands
// fails the store; the previous manifest (and its checkpoint) survive.
func TestManifestRenameFailure(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	lg := ledger.New()
	lg.Bind(st)
	appendChain(lg, 8)
	cert := types.CheckpointCert{Height: 4, StateHash: types.Digest{9},
		Sigs: []types.Signature{{Signer: 1, Bytes: []byte{1, 2}}, {Signer: 2, Bytes: []byte{3}}}}
	b3, _ := lg.Block(3)
	if err := st.SetCheckpoint(cert, types.Digest{7}, b3.Hash,
		[]types.Anchor{{View: 5, Digest: types.Digest{1}}}); err != nil {
		t.Fatal(err)
	}
	fsys.FailNextRename(errors.New("injected: rename EIO"))
	if err := lg.Truncate(8); lg.StoreErr() == nil && err == nil {
		t.Fatal("failed manifest commit did not surface")
	}
	_ = st.Close()

	_, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.Snapshot.Height != 0 {
		t.Fatalf("snapshot base %d, want 0 (old manifest)", rec.Snapshot.Height)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Cert.Height != 4 {
		t.Fatalf("checkpoint lost: %+v", rec.Checkpoint)
	}
	if len(rec.Checkpoint.Cert.Sigs) != 2 || rec.Checkpoint.Cert.Sigs[0].Signer != 1 {
		t.Fatalf("certificate signatures did not round-trip: %+v", rec.Checkpoint.Cert.Sigs)
	}
	if rec.Checkpoint.Resume != b3.Hash || len(rec.Checkpoint.Anchors) != 1 {
		t.Fatalf("checkpoint preimage did not round-trip: %+v", rec.Checkpoint)
	}
	if rec.ReplayedBlocks != 8 {
		t.Fatalf("replayed %d, want 8", rec.ReplayedBlocks)
	}
}

// TestCrashPolicyMatrix: what a power-cut preserves is exactly what the
// fsync policy promised — everything (percommit), the last synced batch
// (batched), or possibly nothing (off).
func TestCrashPolicyMatrix(t *testing.T) {
	t.Run("percommit", func(t *testing.T) {
		fsys := NewMemFS()
		st, _ := openTest(t, fsys, FsyncPerCommit)
		lg := ledger.New()
		lg.Bind(st)
		appendChain(lg, 10)
		fsys.Crash() // no Close: kill -9
		_, rec := openTest(t, fsys, FsyncPerCommit)
		if rec.ReplayedBlocks != 10 {
			t.Fatalf("percommit lost blocks: %+v", rec)
		}
	})
	t.Run("batched", func(t *testing.T) {
		fsys := NewMemFS()
		st, _, err := Open(testDir, Config{FS: fsys, Fsync: FsyncBatched, BatchInterval: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		lg := ledger.New()
		lg.Bind(st)
		appendChain(lg, 10) // only the first append syncs within the hour
		fsys.Crash()
		_, rec := openTest(t, fsys, FsyncPerCommit)
		if rec.ReplayedBlocks != 1 || rec.Truncations != 0 {
			t.Fatalf("batched crash recovered %+v, want exactly the 1 synced block", rec)
		}
	})
	t.Run("off", func(t *testing.T) {
		fsys := NewMemFS()
		st, _ := openTest(t, fsys, FsyncOff)
		lg := ledger.New()
		lg.Bind(st)
		appendChain(lg, 10)
		fsys.Crash() // nothing was ever synced
		_, rec := openTest(t, fsys, FsyncPerCommit)
		if rec.ReplayedBlocks != 0 {
			t.Fatalf("fsync=off crash still recovered %d blocks", rec.ReplayedBlocks)
		}
	})
	t.Run("close-is-durable-regardless", func(t *testing.T) {
		fsys := NewMemFS()
		st, _ := openTest(t, fsys, FsyncOff)
		lg := ledger.New()
		lg.Bind(st)
		appendChain(lg, 10)
		_ = st.Close() // clean shutdown syncs even with fsync=off
		fsys.Crash()
		_, rec := openTest(t, fsys, FsyncPerCommit)
		if rec.ReplayedBlocks != 10 {
			t.Fatalf("clean close lost blocks: %+v", rec)
		}
	})
}

// TestRollbackRewindsDiskTail: ledger.Rollback mirrored through the store
// rewinds the persisted tail — across segment boundaries — so a restart
// replays exactly the post-rollback chain.
func TestRollbackRewindsDiskTail(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	lg := ledger.New()
	lg.Bind(st)
	appendChain(lg, 10)
	if err := lg.Truncate(10); err != nil {
		t.Fatal(err)
	}
	appendChain(lg, 5) // seg-10 holds [10,15)
	if err := lg.Truncate(12); err != nil {
		t.Fatal(err) // seals [10,15) (straddles the cut), rolls seg-15
	}
	appendChain(lg, 3) // seg-15 holds [15,18)
	// Roll back to 13: drops seg-15 wholly, truncates seg-10 within.
	if err := lg.Rollback(13); err != nil {
		t.Fatal(err)
	}
	if st.Head() != 13 {
		t.Fatalf("store head %d after rollback, want 13", st.Head())
	}
	appendChain(lg, 2) // re-chain different blocks over the rewound tail
	want := lg.Blocks(12, 0)
	_ = st.Close()

	st2, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.Snapshot.Height != 12 {
		t.Fatalf("snapshot base %d, want 12", rec.Snapshot.Height)
	}
	lg2 := mustRestore(t, rec, st2)
	got := lg2.Blocks(12, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d blocks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block %d diverges after rollback+restart", want[i].Height)
		}
	}
}

// TestResetReRoots: ledger.Reset (the full state-transfer install) drops
// every segment and restarts the store at the new snapshot.
func TestResetReRoots(t *testing.T) {
	fsys := NewMemFS()
	st, _ := openTest(t, fsys, FsyncPerCommit)
	lg := ledger.New()
	lg.Bind(st)
	appendChain(lg, 6)
	resume := types.Digest{0xAB}
	lg.Reset(ledger.Snapshot{Height: 100, Resume: resume})
	if fsys.Size(seg(0)) != -1 {
		t.Fatal("pre-reset segment survived")
	}
	_ = st.Close()

	_, rec := openTest(t, fsys, FsyncPerCommit)
	if rec.Snapshot != (ledger.Snapshot{Height: 100, Resume: resume}) {
		t.Fatalf("snapshot %+v after reset", rec.Snapshot)
	}
	if rec.ReplayedBlocks != 0 || rec.Checkpoint != nil {
		t.Fatalf("reset did not clear state: %+v", rec)
	}
}

// FuzzSegmentDecode: the record decoder and segment scanner must never
// panic on arbitrary bytes — only ever return ErrCorrupt, a clean torn-tail
// cut, or a valid decode that re-encodes identically.
func FuzzSegmentDecode(f *testing.F) {
	valid := appendFramedRecord(nil, &types.BlockRecord{Height: 3, Instance: 1, View: 9,
		Prev: types.Digest{1}, Hash: types.Digest{2}})
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:10])
	full := encodeSegHeader(nil, 3, types.Digest{5})
	full = appendFramedRecord(full, &types.BlockRecord{Height: 3})
	f.Add(full)
	f.Fuzz(func(t *testing.T, data []byte) {
		b, n, err := decodeFramedRecord(data)
		switch {
		case err == nil:
			if n != recordSize {
				t.Fatalf("consumed %d bytes, want %d", n, recordSize)
			}
			if re := appendFramedRecord(nil, &b); string(re) != string(data[:n]) {
				t.Fatal("valid record does not re-encode identically")
			}
		case errors.Is(err, ErrCorrupt) || errors.Is(err, errShortRecord):
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
		base, _, blocks, good, scanErr := scanSegment(data)
		if scanErr == nil || errors.Is(scanErr, ErrCorrupt) || errors.Is(scanErr, errShortRecord) {
			if good > len(data) {
				t.Fatalf("truncation point %d beyond input %d", good, len(data))
			}
			for i, blk := range blocks {
				if blk.Height != base+uint64(i) {
					t.Fatal("scan returned non-contiguous heights")
				}
			}
		} else {
			t.Fatalf("unexpected scan error class: %v", scanErr)
		}
	})
}
