package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"spotless/internal/types"
)

// Segment file layout:
//
//	header:  magic "SPLW" | u16 version | u16 reserved | u64 base | resume[32]
//	records: u32 payloadLen | u32 crc32c(payload) | payload
//
// The payload is one types.BlockRecord in the exact StateChunk wire layout
// (180 bytes), so a segment is byte-auditable against network transfers.
// Record i of a segment holds height base+i; the header's resume digest is
// the hash the first record chains from (informational — authoritative
// chain verification happens in ledger.Restore against the manifest).
const (
	segMagic      = "SPLW"
	segVersion    = 1
	segHeaderSize = 4 + 2 + 2 + 8 + 32
	recordHdrSize = 4 + 4
	recordSize    = recordHdrSize + types.BlockRecordWireSize
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a framed record whose checksum, length, or payload is
// invalid — as opposed to a cleanly torn tail (fewer bytes than one frame),
// which recovery truncates silently.
var ErrCorrupt = errors.New("wal: corrupt record")

// errShortRecord: the buffer ends mid-frame — a torn tail, not corruption.
var errShortRecord = errors.New("wal: short record")

func segmentFile(base uint64) string { return fmt.Sprintf("seg-%016x.wal", base) }

func parseSegmentFile(name string) (uint64, bool) {
	if len(name) != len("seg-")+16+len(".wal") ||
		!strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	base, err := strconv.ParseUint(name[4:20], 16, 64)
	return base, err == nil
}

func encodeSegHeader(b []byte, base uint64, resume types.Digest) []byte {
	b = append(b, segMagic...)
	b = binary.LittleEndian.AppendUint16(b, segVersion)
	b = binary.LittleEndian.AppendUint16(b, 0)
	b = binary.LittleEndian.AppendUint64(b, base)
	return append(b, resume[:]...)
}

func decodeSegHeader(b []byte) (base uint64, resume types.Digest, err error) {
	if len(b) < segHeaderSize {
		return 0, resume, errShortRecord
	}
	if string(b[:4]) != segMagic || binary.LittleEndian.Uint16(b[4:]) != segVersion {
		return 0, resume, ErrCorrupt
	}
	base = binary.LittleEndian.Uint64(b[8:])
	copy(resume[:], b[16:48])
	return base, resume, nil
}

// encodeBlock appends the 180-byte wire form of b (StateChunk field order).
func encodeBlock(buf []byte, b *types.BlockRecord) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, b.Height)
	buf = append(buf, b.Prev[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Instance))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.View))
	buf = append(buf, b.BatchID[:]...)
	buf = append(buf, b.Proposal[:]...)
	buf = append(buf, b.Results[:]...)
	return append(buf, b.Hash[:]...)
}

func decodeBlock(p []byte) types.BlockRecord {
	var b types.BlockRecord
	b.Height = binary.LittleEndian.Uint64(p)
	copy(b.Prev[:], p[8:40])
	b.Instance = int32(binary.LittleEndian.Uint32(p[40:]))
	b.View = types.View(binary.LittleEndian.Uint64(p[44:]))
	copy(b.BatchID[:], p[52:84])
	copy(b.Proposal[:], p[84:116])
	copy(b.Results[:], p[116:148])
	copy(b.Hash[:], p[148:180])
	return b
}

// appendFramedRecord appends [len|crc|payload] for one block.
func appendFramedRecord(buf []byte, b *types.BlockRecord) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, types.BlockRecordWireSize)
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // crc placeholder
	payloadStart := len(buf)
	buf = encodeBlock(buf, b)
	crc := crc32.Checksum(buf[payloadStart:], crcTable)
	binary.LittleEndian.PutUint32(buf[start:], crc)
	return buf
}

// decodeFramedRecord parses one framed record from the head of p. It
// returns the decoded block and the bytes consumed; err is errShortRecord
// when p ends mid-frame (clean torn tail) or ErrCorrupt when the frame is
// structurally invalid or fails its checksum. It never panics on arbitrary
// input — the fuzz target's contract.
func decodeFramedRecord(p []byte) (types.BlockRecord, int, error) {
	if len(p) < recordHdrSize {
		return types.BlockRecord{}, 0, errShortRecord
	}
	plen := binary.LittleEndian.Uint32(p)
	if plen != types.BlockRecordWireSize {
		return types.BlockRecord{}, 0, ErrCorrupt
	}
	if len(p) < recordSize {
		return types.BlockRecord{}, 0, errShortRecord
	}
	crc := binary.LittleEndian.Uint32(p[4:])
	payload := p[recordHdrSize:recordSize]
	if crc32.Checksum(payload, crcTable) != crc {
		return types.BlockRecord{}, 0, ErrCorrupt
	}
	return decodeBlock(payload), recordSize, nil
}

// scanSegment walks a full segment image. It returns the header fields, the
// decoded records (heights base, base+1, ...), the byte offset just past
// the last valid record — the truncation point for a torn tail — and the
// error that stopped the scan: nil (clean end), errShortRecord (torn tail),
// or ErrCorrupt (checksum/length/height violation).
func scanSegment(data []byte) (base uint64, resume types.Digest, blocks []types.BlockRecord, good int, scanErr error) {
	base, resume, err := decodeSegHeader(data)
	if err != nil {
		return 0, resume, nil, 0, err
	}
	good = segHeaderSize
	for off := segHeaderSize; off < len(data); {
		blk, n, err := decodeFramedRecord(data[off:])
		if err != nil {
			return base, resume, blocks, good, err
		}
		if blk.Height != base+uint64(len(blocks)) {
			return base, resume, blocks, good, ErrCorrupt
		}
		blocks = append(blocks, blk)
		off += n
		good = off
	}
	return base, resume, blocks, good, nil
}
