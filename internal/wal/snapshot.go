package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"

	"spotless/internal/types"
)

// Execution-snapshot persistence. At every stabilized checkpoint the
// execution layer hands the store an opaque snapshot blob (the ycsb table
// envelope) captured at the cut; the store persists it with the manifest's
// discipline — temp file + fsync + rename — and garbage-collects superseded
// snapshots. On recovery the store returns the newest snapshot whose
// embedded (height, exec hash) binding matches the persisted checkpoint;
// anything torn, corrupt, or inexplicable is quarantined (never deleted),
// and the replica falls back loudly to forward-replay. Persistence order is
// manifest first, snapshot second: a crash in the window leaves an intact
// manifest with a stale-or-missing snapshot, which recovery handles as a
// fallback, never the reverse (a snapshot newer than the manifest is
// evidence of tampering and is quarantined).
//
// The envelope header layout is mirrored from internal/ycsb (which owns the
// format) so this package can select and verify snapshot files without
// importing the execution layer; ycsb's snapshot_test pins the two against
// each other.
const (
	snapMagic      = "SPLT"
	snapHeaderSize = 4 + 4 + 8 + 32 + 8 + 8
	snapMinSize    = snapHeaderSize + 4
	snapPrefix     = "snap-"
	snapTmp        = "snap.tmp"
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// snapshotFile names the snapshot anchored at a checkpoint height.
func snapshotFile(height uint64) string {
	return fmt.Sprintf("%s%016x", snapPrefix, height)
}

// parseSnapshotFile inverts snapshotFile.
func parseSnapshotFile(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, snapPrefix)
	if !ok || len(rest) != 16 {
		return 0, false
	}
	h, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return 0, false
	}
	return h, true
}

// verifySnapshotBlob checks the envelope frame — magic, size, whole-blob
// CRC32C — and extracts the (height, exec hash) binding. Record-level
// canonicality is the execution layer's concern at decode time; the frame
// check here is what recovery needs to refuse torn or bit-flipped files.
func verifySnapshotBlob(data []byte) (height uint64, execHash types.Digest, ok bool) {
	if len(data) < snapMinSize || string(data[:4]) != snapMagic {
		return 0, types.Digest{}, false
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, snapCRC) != binary.LittleEndian.Uint32(tail) {
		return 0, types.Digest{}, false
	}
	height = binary.LittleEndian.Uint64(data[8:])
	copy(execHash[:], data[16:48])
	return height, execHash, true
}

// SaveSnapshot atomically persists the execution snapshot for a checkpoint
// height (temp file + fsync + rename, the manifest's discipline) and then
// removes superseded snapshot files — new state lands on disk before old
// state is given up. Snapshot persistence is best-effort: a failure here is
// logged and reported but does NOT fail the store, because ledger safety
// never depends on a snapshot existing (recovery falls back to
// forward-replay). Callers persist the manifest (SetCheckpoint) first.
func (s *Store) SaveSnapshot(height uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.saveSnapshotLocked(height, data); err != nil {
		s.cfg.Logf("wal: snapshot at %d not persisted (%v); recovery will forward-replay", height, err)
		return err
	}
	s.snapsWritten++
	s.snapBytes = int64(len(data))
	return nil
}

func (s *Store) saveSnapshotLocked(height uint64, data []byte) error {
	f, err := s.fs.OpenFile(s.path(snapTmp), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = s.fs.Remove(s.path(snapTmp))
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = s.fs.Remove(s.path(snapTmp))
		return err
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(s.path(snapTmp))
		return err
	}
	if err := s.fs.Rename(s.path(snapTmp), s.path(snapshotFile(height))); err != nil {
		_ = s.fs.Remove(s.path(snapTmp))
		return err
	}
	// GC superseded snapshots only after the replacement is durable.
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil // the new snapshot is safe; GC retries at the next save
	}
	for _, name := range names {
		if h, ok := parseSnapshotFile(name); ok && h < height {
			_ = s.fs.Remove(s.path(name))
		}
	}
	return nil
}

// QuarantineSnapshot renames the snapshot file for a height aside after a
// higher layer rejected its content (e.g. the execution layer's canonical
// decode failed despite an intact frame). Counted as both a quarantine and
// a restore fallback — the operator-visible signature of corruption, as
// opposed to the silent absence of a pre-first-checkpoint cold start.
func (s *Store) QuarantineSnapshot(height uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := snapshotFile(height)
	if err := s.fs.Rename(s.path(name), s.path("quarantine-"+name)); err != nil {
		_ = s.fs.Remove(s.path(name))
	}
	s.snapQuarantined++
	s.snapFallbacks++
	s.cfg.Logf("wal: execution snapshot at %d rejected by decoder — quarantined, falling back to forward-replay", height)
}

// recoverSnapshots scans the data directory for snapshot files and selects
// the one the persisted checkpoint vouches for. Every outcome of the fault
// matrix lands here:
//
//	stale snapshot, newer manifest  → deleted (completes an interrupted GC;
//	                                  the blocks below it are gone anyway)
//	snapshot above the manifest     → quarantined (persistence order makes
//	                                  this impossible short of tampering)
//	torn / bit-flipped / bad frame  → quarantined, fallback
//	manifest lost, snapshot intact  → quarantined (nothing vouches for it)
//	lost snapshot, intact manifest  → fallback (loud, counted)
//	no checkpoint yet               → nothing to restore; silent cold start
func (s *Store) recoverSnapshots(rec *Recovery) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	_ = s.fs.Remove(s.path(snapTmp)) // leftover of an interrupted save
	for _, name := range names {
		h, ok := parseSnapshotFile(name)
		if !ok {
			continue
		}
		if s.ckpt == nil {
			s.cfg.Logf("wal: snapshot %s present with no persisted checkpoint — quarantining", name)
			s.quarantineSnapshotFile(name)
			continue
		}
		want := s.ckpt.Cert.Height
		switch {
		case h < want:
			_ = s.fs.Remove(s.path(name))
		case h > want:
			s.cfg.Logf("wal: snapshot %s is above the manifest checkpoint %d — quarantining", name, want)
			s.quarantineSnapshotFile(name)
		default:
			data, err := s.readFile(name)
			if err != nil {
				s.quarantineSnapshotFile(name)
				continue
			}
			gotH, gotExec, ok := verifySnapshotBlob(data)
			if !ok || gotH != want || gotExec != s.ckpt.ExecHash {
				s.cfg.Logf("wal: snapshot %s fails verification against the checkpoint manifest — quarantining", name)
				s.quarantineSnapshotFile(name)
				continue
			}
			rec.ExecSnapshot = data
		}
	}
	if s.ckpt != nil && rec.ExecSnapshot == nil {
		// A checkpoint exists but no snapshot survived for it: the table
		// rebuilds by forward-replay from the cut, serving initial values
		// for cold keys until state transfer or fresh writes cover them.
		// Loud and counted — this is the corruption/loss signature, distinct
		// from the silent pre-first-checkpoint cold start above.
		s.snapFallbacks++
		rec.SnapshotFallback = true
		s.cfg.Logf("wal: no usable execution snapshot for checkpoint %d — falling back to forward-replay", s.ckpt.Cert.Height)
	}
	rec.SnapshotQuarantined = s.snapQuarantined
}

func (s *Store) quarantineSnapshotFile(name string) {
	if err := s.fs.Rename(s.path(name), s.path("quarantine-"+name)); err != nil {
		_ = s.fs.Remove(s.path(name))
	}
	s.snapQuarantined++
}

// NoteSnapshotRestored records that the execution layer successfully decoded
// and installed the recovered snapshot into its table — the /metrics
// "restored" row counts tables actually served from a snapshot, not blobs
// merely found on disk.
func (s *Store) NoteSnapshotRestored(bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapRestored++
	s.snapBytes = int64(bytes)
}

// NoteRestoreFallback records that the execution layer jumped its delivery
// frontier without a usable snapshot (e.g. a state-transfer install whose
// chunk carried no table) — the replica's cold keys serve initial values
// until overwritten, and the operator should see that.
func (s *Store) NoteRestoreFallback() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapFallbacks++
}

// removeSnapshotsLocked deletes every snapshot file — the Reset path, where
// the chain re-roots at a transferred checkpoint and local snapshots no
// longer correspond to anything the manifest vouches for.
func (s *Store) removeSnapshotsLocked() {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	_ = s.fs.Remove(s.path(snapTmp))
	for _, name := range names {
		if _, ok := parseSnapshotFile(name); ok {
			_ = s.fs.Remove(s.path(name))
		}
	}
}

// readSnapshotFile is a test hook: the raw on-disk snapshot for a height.
func (s *Store) readSnapshotFile(height uint64) ([]byte, error) {
	f, err := s.fs.OpenFile(s.path(snapshotFile(height)), os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
