package wal

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"spotless/internal/ledger"
	"spotless/internal/types"
)

// The manifest is the store's commit point: a small file naming the ledger
// snapshot (retained base + chain-resume hash) and the stable checkpoint
// certificate the chain was last attested under. It is replaced atomically
// (write temp, fsync, rename), so a crash leaves either the old or the new
// manifest — never a half-written one. The payload is checksummed JSON:
// debuggable with cat, and a partial or flipped file reads as corrupt
// instead of as a different snapshot.
const (
	manifestName = "MANIFEST"
	manifestTmp  = "MANIFEST.tmp"
	manifestMag  = "SPLM"
)

var errNoManifest = errors.New("wal: no manifest")

// Checkpoint is the stable-checkpoint metadata persisted in the manifest:
// everything a restarted replica needs to resume consensus without a full
// state transfer — the quorum certificate, the state-hash preimage parts,
// and the per-instance anchors of the cut.
type Checkpoint struct {
	Cert     types.CheckpointCert
	ExecHash types.Digest
	Resume   types.Digest // chain-resume hash at the certified height
	Anchors  []types.Anchor
}

type manifestJSON struct {
	Version  int             `json:"version"`
	Height   uint64          `json:"height"` // retained ledger base
	Resume   string          `json:"resume"` // chain-resume hash at Height
	Cert     *manifestCert   `json:"cert,omitempty"`
	ExecHash string          `json:"exec_hash,omitempty"`
	CkptRes  string          `json:"ckpt_resume,omitempty"`
	Anchors  []manifestAnchr `json:"anchors,omitempty"`
}

type manifestCert struct {
	Height    uint64        `json:"height"`
	StateHash string        `json:"state_hash"`
	Sigs      []manifestSig `json:"sigs"`
}

type manifestSig struct {
	Signer uint32 `json:"signer"`
	Bytes  string `json:"bytes"`
}

type manifestAnchr struct {
	View   uint64 `json:"view"`
	Digest string `json:"digest"`
}

func hexDigest(d types.Digest) string { return hex.EncodeToString(d[:]) }

func unhexDigest(s string) (types.Digest, error) {
	var d types.Digest
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(d) {
		return d, ErrCorrupt
	}
	copy(d[:], b)
	return d, nil
}

func encodeManifest(snap ledger.Snapshot, ckpt *Checkpoint) ([]byte, error) {
	m := manifestJSON{Version: 1, Height: snap.Height, Resume: hexDigest(snap.Resume)}
	if ckpt != nil {
		c := &manifestCert{Height: ckpt.Cert.Height, StateHash: hexDigest(ckpt.Cert.StateHash)}
		for _, s := range ckpt.Cert.Sigs {
			c.Sigs = append(c.Sigs, manifestSig{Signer: uint32(s.Signer), Bytes: hex.EncodeToString(s.Bytes)})
		}
		m.Cert = c
		m.ExecHash = hexDigest(ckpt.ExecHash)
		m.CkptRes = hexDigest(ckpt.Resume)
		for _, a := range ckpt.Anchors {
			m.Anchors = append(m.Anchors, manifestAnchr{View: uint64(a.View), Digest: hexDigest(a.Digest)})
		}
	}
	payload, err := json.Marshal(&m)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 12+len(payload))
	out = append(out, manifestMag...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...), nil
}

func decodeManifest(data []byte) (ledger.Snapshot, *Checkpoint, error) {
	var snap ledger.Snapshot
	if len(data) < 12 || string(data[:4]) != manifestMag {
		return snap, nil, ErrCorrupt
	}
	plen := binary.LittleEndian.Uint32(data[4:])
	crc := binary.LittleEndian.Uint32(data[8:])
	if int(plen) != len(data)-12 {
		return snap, nil, ErrCorrupt
	}
	payload := data[12:]
	if crc32.Checksum(payload, crcTable) != crc {
		return snap, nil, ErrCorrupt
	}
	var m manifestJSON
	if err := json.Unmarshal(payload, &m); err != nil || m.Version != 1 {
		return snap, nil, ErrCorrupt
	}
	snap.Height = m.Height
	var err error
	if snap.Resume, err = unhexDigest(m.Resume); err != nil {
		return snap, nil, err
	}
	if m.Cert == nil {
		return snap, nil, nil
	}
	ckpt := &Checkpoint{Cert: types.CheckpointCert{Height: m.Cert.Height}}
	if ckpt.Cert.StateHash, err = unhexDigest(m.Cert.StateHash); err != nil {
		return snap, nil, err
	}
	for _, s := range m.Cert.Sigs {
		raw, err := hex.DecodeString(s.Bytes)
		if err != nil {
			return snap, nil, ErrCorrupt
		}
		ckpt.Cert.Sigs = append(ckpt.Cert.Sigs, types.Signature{Signer: types.NodeID(s.Signer), Bytes: raw})
	}
	if ckpt.ExecHash, err = unhexDigest(m.ExecHash); err != nil {
		return snap, nil, err
	}
	if ckpt.Resume, err = unhexDigest(m.CkptRes); err != nil {
		return snap, nil, err
	}
	for _, a := range m.Anchors {
		d, err := unhexDigest(a.Digest)
		if err != nil {
			return snap, nil, err
		}
		ckpt.Anchors = append(ckpt.Anchors, types.Anchor{View: types.View(a.View), Digest: d})
	}
	return snap, ckpt, nil
}

// readManifest loads and validates the manifest; errNoManifest when absent,
// ErrCorrupt when present but unreadable.
func readManifest(fsys FS, dir string) (ledger.Snapshot, *Checkpoint, error) {
	f, err := fsys.OpenFile(filepath.Join(dir, manifestName), os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return ledger.Snapshot{}, nil, errNoManifest
		}
		return ledger.Snapshot{}, nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return ledger.Snapshot{}, nil, err
	}
	return decodeManifest(data)
}

// writeManifest commits a new manifest atomically: temp file, fsync, rename.
func writeManifest(fsys FS, dir string, snap ledger.Snapshot, ckpt *Checkpoint) error {
	data, err := encodeManifest(snap, ckpt)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestTmp)
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, filepath.Join(dir, manifestName))
}
