package crypto

import (
	"crypto/sha256"
	"encoding/binary"

	"spotless/internal/types"
)

// Chunk hashing for coded dissemination (internal/dissem with CodeK > 0):
// the origin hashes every erasure-coded chunk, the ordered hash list plus
// the coding geometry forms the commitment, and acks sign the commitment
// root (types.CodedAckBytes). Receivers verify each chunk against its
// committed hash before storing or acking it, and re-verify the WHOLE
// re-encoded codeword after reconstruction — if any k-subset of committed
// chunks decodes to a codeword matching every committed hash, all subsets
// decode identically, so delivery stays deterministic even under a
// Byzantine origin that commits to inconsistent chunks.

// chunkDomain separates chunk hashes from transaction/batch digests.
var chunkDomain = []byte("chunk:")

// ChunkHash hashes one erasure-coded chunk for the commitment.
func ChunkHash(data []byte) types.Digest {
	h := sha256.New()
	h.Write(chunkDomain)
	h.Write(data)
	var out types.Digest
	h.Sum(out[:0])
	return out
}

// ChunkCommitRoot derives the commitment root over a coded batch's chunk
// layout: the data-chunk count k, the unpadded payload length, and the
// ordered per-chunk hashes. The root is what coded acks sign, binding the
// availability certificate to exactly one chunk layout per batch id.
func ChunkCommitRoot(k, dataLen uint32, hashes []types.Digest) types.Digest {
	h := sha256.New()
	h.Write([]byte("chunkroot:"))
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[0:], k)
	binary.LittleEndian.PutUint32(buf[4:], dataLen)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(hashes)))
	h.Write(buf[:])
	for i := range hashes {
		h.Write(hashes[i][:])
	}
	var out types.Digest
	h.Sum(out[:0])
	return out
}
