// Package crypto provides the authentication substrate of §2: message
// digests, message authentication codes (MACs) for non-forwarded messages,
// and digital signatures (DSs) for forwarded ones.
//
// Two providers implement the same Provider interface:
//
//   - Ed25519Provider — real cryptography (SHA-256, HMAC-SHA256, ed25519)
//     for the in-process runtime, the TCP transport, and the examples.
//   - SimProvider — constant-time tags plus a calibrated CPU cost model for
//     the discrete-event simulator, where cryptographic cost (not secrecy)
//     is what shapes the evaluation (e.g. Narwhal-HS being CPU-bound on
//     signature verification, §6.4).
//
// Key distribution is a deployment concern the paper assumes away; both
// providers derive per-replica keys deterministically from a cluster secret,
// standing in for the usual PKI (documented in docs/ARCHITECTURE.md).
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"spotless/internal/types"
)

// Digest hashes a byte string with the cluster hash function (SHA-256).
func Digest(b []byte) types.Digest { return sha256.Sum256(b) }

// Errors returned by verification.
var (
	ErrBadSignature = errors.New("crypto: invalid signature")
	ErrBadMAC       = errors.New("crypto: invalid MAC")
	ErrUnknownNode  = errors.New("crypto: unknown node")
)

// Provider is the per-node cryptographic interface used by all protocols.
// Sign/Verify are digital signatures (forwardable); MAC/VerifyMAC are
// pairwise message authentication codes (cheaper, non-forwardable).
type Provider interface {
	// ID returns the node this provider signs for.
	ID() types.NodeID
	// Sign produces a digital signature by this node over msg.
	Sign(msg []byte) types.Signature
	// Verify checks a digital signature allegedly from signer over msg.
	Verify(sig types.Signature, msg []byte) error
	// MAC authenticates msg for the given receiver.
	MAC(to types.NodeID, msg []byte) []byte
	// VerifyMAC checks a MAC from the given sender over msg.
	VerifyMAC(from types.NodeID, msg, mac []byte) error
}

// CostModel gives the CPU time charged per cryptographic operation in the
// simulator. Defaults are calibrated to a ~3.4 GHz EPYC core (§6):
// signature verification dominates, MACs are cheap — the asymmetry that
// separates SpotLess/Pbft (MAC-based) from HotStuff/Narwhal-HS (DS-based).
type CostModel struct {
	Sign      time.Duration // produce one digital signature
	Verify    time.Duration // verify one digital signature
	MAC       time.Duration // compute or verify one MAC
	HashPerKB time.Duration // hash cost per KiB of payload
	// Cores is the number of virtual cores the verification pipeline may
	// use for one batch (the simulated analogue of the real runtime's
	// worker pool; see Verifier). 0 or 1 serializes verification — the
	// pre-pipeline behaviour.
	Cores int
}

// DefaultCostModel returns the calibrated defaults (ed25519-class signing,
// secp256k1-class verification as used by the paper's HotStuff port).
func DefaultCostModel() CostModel {
	return CostModel{
		Sign:      22 * time.Microsecond,
		Verify:    55 * time.Microsecond,
		MAC:       700 * time.Nanosecond,
		HashPerKB: 500 * time.Nanosecond,
	}
}

// Charger accumulates modelled CPU time; the simulator's node context
// implements it.
type Charger interface {
	ChargeCPU(d time.Duration)
}

// nopCharger discards charges (used by the real providers).
type nopCharger struct{}

func (nopCharger) ChargeCPU(time.Duration) {}

// ---------------------------------------------------------------------------
// Real provider: ed25519 + HMAC-SHA256
// ---------------------------------------------------------------------------

// Keyring holds the deterministic key material of a cluster.
type Keyring struct {
	secret []byte
	pubs   map[types.NodeID]ed25519.PublicKey
	privs  map[types.NodeID]ed25519.PrivateKey
}

// NewKeyring derives ed25519 keypairs for the given node ids from a cluster
// secret. All replicas of a deployment construct the same ring, emulating a
// pre-distributed PKI.
func NewKeyring(secret []byte, ids []types.NodeID) *Keyring {
	kr := &Keyring{
		secret: append([]byte(nil), secret...),
		pubs:   make(map[types.NodeID]ed25519.PublicKey, len(ids)),
		privs:  make(map[types.NodeID]ed25519.PrivateKey, len(ids)),
	}
	for _, id := range ids {
		seed := kr.deriveSeed(id)
		priv := ed25519.NewKeyFromSeed(seed)
		kr.privs[id] = priv
		kr.pubs[id] = priv.Public().(ed25519.PublicKey)
	}
	return kr
}

func (kr *Keyring) deriveSeed(id types.NodeID) []byte {
	h := hmac.New(sha256.New, kr.secret)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(uint32(id)))
	h.Write([]byte("seed"))
	h.Write(b[:])
	return h.Sum(nil)
}

func (kr *Keyring) pairKey(a, b types.NodeID) []byte {
	if a > b {
		a, b = b, a
	}
	h := hmac.New(sha256.New, kr.secret)
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(uint32(a)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(uint32(b)))
	h.Write([]byte("pair"))
	h.Write(buf[:])
	return h.Sum(nil)
}

// Ed25519Provider is the real-cryptography provider for one node.
type Ed25519Provider struct {
	id   types.NodeID
	ring *Keyring
}

// Provider returns the real provider for node id. The id must be in the
// ring.
func (kr *Keyring) Provider(id types.NodeID) (*Ed25519Provider, error) {
	if _, ok := kr.privs[id]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return &Ed25519Provider{id: id, ring: kr}, nil
}

// ID implements Provider.
func (p *Ed25519Provider) ID() types.NodeID { return p.id }

// Sign implements Provider.
func (p *Ed25519Provider) Sign(msg []byte) types.Signature {
	return types.Signature{Signer: p.id, Bytes: ed25519.Sign(p.ring.privs[p.id], msg)}
}

// Verify implements Provider.
func (p *Ed25519Provider) Verify(sig types.Signature, msg []byte) error {
	pub, ok := p.ring.pubs[sig.Signer]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, sig.Signer)
	}
	if !ed25519.Verify(pub, msg, sig.Bytes) {
		return ErrBadSignature
	}
	return nil
}

// MAC implements Provider.
func (p *Ed25519Provider) MAC(to types.NodeID, msg []byte) []byte {
	h := hmac.New(sha256.New, p.ring.pairKey(p.id, to))
	h.Write(msg)
	return h.Sum(nil)
}

// VerifyMAC implements Provider.
func (p *Ed25519Provider) VerifyMAC(from types.NodeID, msg, mac []byte) error {
	h := hmac.New(sha256.New, p.ring.pairKey(p.id, from))
	h.Write(msg)
	if !hmac.Equal(h.Sum(nil), mac) {
		return ErrBadMAC
	}
	return nil
}

// ---------------------------------------------------------------------------
// Simulation provider: constant tags + CPU cost charging
// ---------------------------------------------------------------------------

// SimProvider produces cheap deterministic tags and charges the node's CPU
// meter per the cost model. Tags are verifiable by recomputation; Byzantine
// behaviour in the simulator is expressed through protocol drivers, never
// through tag forgery, preserving the paper's authentication assumption
// ("replicas cannot impersonate non-faulty replicas", §2).
type SimProvider struct {
	id      types.NodeID
	costs   CostModel
	charger Charger
}

// NewSimProvider creates a simulation provider for a node. charger may be
// nil (no cost accounting).
func NewSimProvider(id types.NodeID, costs CostModel, charger Charger) *SimProvider {
	if charger == nil {
		charger = nopCharger{}
	}
	return &SimProvider{id: id, costs: costs, charger: charger}
}

// ID implements Provider.
func (p *SimProvider) ID() types.NodeID { return p.id }

func simTag(signer types.NodeID, msg []byte) []byte {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(uint32(signer)))
	h.Write(b[:])
	h.Write(msg)
	return h.Sum(nil)[:16]
}

// Sign implements Provider, charging the signing cost.
func (p *SimProvider) Sign(msg []byte) types.Signature {
	p.charger.ChargeCPU(p.costs.Sign + p.hashCost(msg))
	return types.Signature{Signer: p.id, Bytes: simTag(p.id, msg)}
}

// Verify implements Provider, charging the verification cost.
func (p *SimProvider) Verify(sig types.Signature, msg []byte) error {
	p.charger.ChargeCPU(p.costs.Verify + p.hashCost(msg))
	if !hmac.Equal(sig.Bytes, simTag(sig.Signer, msg)) {
		return ErrBadSignature
	}
	return nil
}

// MAC implements Provider, charging the MAC cost.
func (p *SimProvider) MAC(to types.NodeID, msg []byte) []byte {
	p.charger.ChargeCPU(p.costs.MAC + p.hashCost(msg))
	return simTag(p.id, msg)[:8]
}

// VerifyMAC implements Provider, charging the MAC cost.
func (p *SimProvider) VerifyMAC(from types.NodeID, msg, mac []byte) error {
	p.charger.ChargeCPU(p.costs.MAC + p.hashCost(msg))
	if !hmac.Equal(mac, simTag(from, msg)[:8]) {
		return ErrBadMAC
	}
	return nil
}

func (p *SimProvider) hashCost(msg []byte) time.Duration {
	return p.costs.HashPerKB * time.Duration(len(msg)/1024)
}

var (
	_ Provider = (*Ed25519Provider)(nil)
	_ Provider = (*SimProvider)(nil)
)
