package crypto

import (
	"crypto/hmac"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spotless/internal/types"
)

// This file is the verification pipeline of the crypto layer: signature
// checking declared as data (Check), executed in batches (Verifier), and
// taken off protocol event loops — by a worker pool for the real provider
// and by a modelled multi-core charge for the simulated one. Protocols
// declare their checks up front (see protocol.IngressVerifier) and the
// substrates run them here, so the single-threaded state machines only ever
// consume pre-verified messages.

// Check is one signature-verification work item: a signature and the bytes
// it allegedly covers.
type Check struct {
	Sig types.Signature
	Msg []byte
}

// Verifier verifies batches of signature checks, possibly in parallel.
//
// A batch passes when at least quorum *distinct* signers verify; duplicate
// signers are counted once (the certificate rule of §3.4 and §6.2). A
// quorum ≤ 0 requires every check to pass, which a batch containing
// duplicate signers can never satisfy.
type Verifier interface {
	VerifyBatch(checks []Check, quorum int) bool
}

// DistinctSigners counts the distinct signers among sigs. It is the
// structural half of certificate validation kept on protocol event loops —
// the cryptographic half having already run in the verification pipeline.
func DistinctSigners(sigs []types.Signature) int {
	seen := make(map[types.NodeID]bool, len(sigs))
	for _, sig := range sigs {
		seen[sig.Signer] = true
	}
	return len(seen)
}

// dedupChecks drops duplicate signers, keeping each signer's first check.
// It returns the input slice unchanged when there are no duplicates (the
// common case) to avoid allocating on the fast path.
func dedupChecks(checks []Check) []Check {
	seen := make(map[types.NodeID]bool, len(checks))
	dup := false
	for _, c := range checks {
		if seen[c.Sig.Signer] {
			dup = true
			break
		}
		seen[c.Sig.Signer] = true
	}
	if !dup {
		return checks
	}
	out := make([]Check, 0, len(checks))
	clear(seen)
	for _, c := range checks {
		if seen[c.Sig.Signer] {
			continue
		}
		seen[c.Sig.Signer] = true
		out = append(out, c)
	}
	return out
}

// normalizeQuorum resolves the quorum convention shared by all Verifier
// implementations; the boolean is false when the batch structurally cannot
// reach quorum. An empty batch never passes — no signatures is no
// evidence, whatever the quorum.
func normalizeQuorum(checks, deduped []Check, quorum int) (int, bool) {
	if quorum <= 0 {
		quorum = len(checks) // "all must pass"; duplicates can never satisfy it
	}
	return quorum, len(deduped) > 0 && len(deduped) >= quorum
}

// VerifyChecks is the serial reference implementation of the batch rule; it
// early-outs once quorum distinct signers verified.
func VerifyChecks(p Provider, checks []Check, quorum int) bool {
	deduped := dedupChecks(checks)
	quorum, feasible := normalizeQuorum(checks, deduped, quorum)
	if !feasible {
		return false
	}
	valid := 0
	for i, c := range deduped {
		if p.Verify(c.Sig, c.Msg) == nil {
			valid++
			if valid >= quorum {
				return true
			}
		}
		if valid+len(deduped)-i-1 < quorum {
			return false // remaining checks cannot reach quorum
		}
	}
	return false
}

// SerialVerifier adapts a Provider to Verifier with in-place execution. It
// is the fallback where no pool is wired (tests, trivial deployments).
type SerialVerifier struct{ P Provider }

// VerifyBatch implements Verifier.
func (v SerialVerifier) VerifyBatch(checks []Check, quorum int) bool {
	return VerifyChecks(v.P, checks, quorum)
}

// ---------------------------------------------------------------------------
// PoolVerifier: bounded worker pool for real (CPU-bound) providers
// ---------------------------------------------------------------------------

// PoolVerifier fans signature checks out to a bounded worker pool. One pool
// serves a whole replica: the runtime node's ingress screening, the TCP
// transport's reader goroutines, and VerifyAsync completions all share it,
// so an n−f-signature certificate is verified by up to n−f cores instead of
// serializing on the protocol event loop.
//
// Submission never blocks the caller beyond the verification itself: when
// the pool's queue is full (or the pool is closed), the check runs inline
// on the submitting goroutine.
type PoolVerifier struct {
	p       Provider
	workers int

	mu     sync.RWMutex // guards tasks against Close
	closed bool
	tasks  chan func()
	wg     sync.WaitGroup
}

// NewPoolVerifier creates a pool with the given number of workers
// (≤ 0 selects GOMAXPROCS). Close releases the workers.
func NewPoolVerifier(p Provider, workers int) *PoolVerifier {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	v := &PoolVerifier{p: p, workers: workers, tasks: make(chan func(), workers*64)}
	v.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer v.wg.Done()
			for fn := range v.tasks {
				fn()
			}
		}()
	}
	return v
}

// Workers reports the pool width.
func (v *PoolVerifier) Workers() int { return v.workers }

// Close stops the workers after draining queued checks. Checks submitted
// after Close run inline on their caller.
func (v *PoolVerifier) Close() {
	v.mu.Lock()
	if !v.closed {
		v.closed = true
		close(v.tasks)
	}
	v.mu.Unlock()
	v.wg.Wait()
}

// submit enqueues fn, or runs it inline when the pool is saturated/closed.
func (v *PoolVerifier) submit(fn func()) {
	v.mu.RLock()
	if !v.closed {
		select {
		case v.tasks <- fn:
			v.mu.RUnlock()
			return
		default:
		}
	}
	v.mu.RUnlock()
	fn()
}

// batchState collects one batch's verdict across workers. The verdict is
// decided early — at quorum valid signatures, or as soon as quorum becomes
// unreachable — recovering the early-out of the serial loops this pool
// replaced; checks of an already-decided batch are skipped.
type batchState struct {
	valid   atomic.Int32
	failed  atomic.Int32
	decided atomic.Bool
	quorum  int32
	total   int32
	done    func(bool)
}

// finish delivers the verdict exactly once.
func (st *batchState) finish(ok bool) {
	if st.decided.CompareAndSwap(false, true) {
		st.done(ok)
	}
}

// VerifyBatchAsync verifies the batch on the pool and invokes done(ok)
// exactly once when the verdict is known. done may run on a worker
// goroutine or synchronously on the caller; it must be non-blocking and
// thread-safe (typically it posts an event to the node loop).
func (v *PoolVerifier) VerifyBatchAsync(checks []Check, quorum int, done func(ok bool)) {
	deduped := dedupChecks(checks)
	quorum, feasible := normalizeQuorum(checks, deduped, quorum)
	if !feasible {
		done(false)
		return
	}
	st := &batchState{quorum: int32(quorum), total: int32(len(deduped)), done: done}
	for i := range deduped {
		c := deduped[i]
		v.submit(func() {
			if st.decided.Load() {
				return // verdict already delivered; skip the work
			}
			if v.p.Verify(c.Sig, c.Msg) == nil {
				if st.valid.Add(1) >= st.quorum {
					st.finish(true)
				}
			} else if st.failed.Add(1) > st.total-st.quorum {
				st.finish(false)
			}
		})
	}
}

// VerifyBatch implements Verifier, blocking the caller until the verdict.
// Intended for goroutines that are themselves off the event loop (transport
// readers); event loops use VerifyBatchAsync via their substrate.
func (v *PoolVerifier) VerifyBatch(checks []Check, quorum int) bool {
	ch := make(chan bool, 1)
	v.VerifyBatchAsync(checks, quorum, func(ok bool) { ch <- ok })
	return <-ch
}

// ---------------------------------------------------------------------------
// Simulated multi-core verification
// ---------------------------------------------------------------------------

// ParallelCharger is implemented by simulation node contexts that can model
// parallel CPU work: total is the aggregate CPU time consumed across cores,
// critical the wall-clock (critical-path) latency of the parallel stage.
// Chargers that only see serial work receive ChargeCPU(total).
type ParallelCharger interface {
	Charger
	// ChargeCPUParallel charges total CPU work whose parallel execution
	// completes after critical wall-clock time (critical ≤ total).
	ChargeCPUParallel(total, critical time.Duration)
}

// VerifyBatch implements Verifier for the simulation provider: the batch is
// charged as one parallel stage over min(len(batch), CostModel.Cores)
// virtual cores, modelling the worker-pool verifier of the real runtime.
// Checks are indivisible, so the critical path is whole verification
// rounds — ceil(len/cores) × the mean per-check cost — not a fractional
// total/cores. With Cores ≤ 1 verification serializes on the handler as in
// the pre-pipeline model (absolute figures still differ from the seed:
// ingress MAC charges are new, and batches no longer early-out at quorum).
func (p *SimProvider) VerifyBatch(checks []Check, quorum int) bool {
	deduped := dedupChecks(checks)
	var total time.Duration
	for _, c := range deduped {
		total += p.costs.Verify + p.hashCost(c.Msg)
	}
	critical := total
	if n := len(deduped); n > 0 {
		cores := p.costs.Cores
		if cores < 1 {
			cores = 1
		}
		rounds := (n + cores - 1) / cores
		critical = total / time.Duration(n) * time.Duration(rounds)
	}
	if pc, ok := p.charger.(ParallelCharger); ok {
		pc.ChargeCPUParallel(total, critical)
	} else {
		p.charger.ChargeCPU(total)
	}
	quorum, feasible := normalizeQuorum(checks, deduped, quorum)
	if !feasible {
		return false
	}
	valid := 0
	for _, c := range deduped {
		if hmac.Equal(c.Sig.Bytes, simTag(c.Sig.Signer, c.Msg)) {
			valid++
		}
	}
	return valid >= quorum
}

var (
	_ Verifier = SerialVerifier{}
	_ Verifier = (*PoolVerifier)(nil)
	_ Verifier = (*SimProvider)(nil)
)
