package crypto

import (
	"testing"
	"testing/quick"
	"time"

	"spotless/internal/types"
)

func testRing() *Keyring {
	return NewKeyring([]byte("unit-test-secret"), []types.NodeID{0, 1, 2, 3, types.ClientIDBase})
}

// TestEd25519SignVerify: valid signatures verify; wrong signer, tampered
// message, and unknown signer are rejected.
func TestEd25519SignVerify(t *testing.T) {
	ring := testRing()
	p0, err := ring.Provider(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := ring.Provider(1)
	msg := []byte("the quick brown fox")
	sig := p0.Sign(msg)
	if sig.Signer != 0 {
		t.Fatalf("signer: got %d want 0", sig.Signer)
	}
	if err := p1.Verify(sig, msg); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := p1.Verify(sig, []byte("tampered")); err == nil {
		t.Fatal("tampered message accepted")
	}
	forged := sig
	forged.Signer = 2
	if err := p1.Verify(forged, msg); err == nil {
		t.Fatal("reattributed signature accepted")
	}
	unknown := types.Signature{Signer: 99, Bytes: sig.Bytes}
	if err := p1.Verify(unknown, msg); err == nil {
		t.Fatal("unknown signer accepted")
	}
}

// TestMACPairwise: MACs verify between the pair and fail for other parties
// or altered content.
func TestMACPairwise(t *testing.T) {
	ring := testRing()
	p0, _ := ring.Provider(0)
	p1, _ := ring.Provider(1)
	p2, _ := ring.Provider(2)
	msg := []byte("hello")
	mac := p0.MAC(1, msg)
	if err := p1.VerifyMAC(0, msg, mac); err != nil {
		t.Fatalf("pairwise MAC rejected: %v", err)
	}
	if err := p2.VerifyMAC(0, msg, mac); err == nil {
		t.Fatal("third party verified a pairwise MAC")
	}
	if err := p1.VerifyMAC(0, []byte("hellO"), mac); err == nil {
		t.Fatal("altered message accepted")
	}
}

// TestProviderUnknownNode: requesting a provider for an unknown id fails.
func TestProviderUnknownNode(t *testing.T) {
	if _, err := testRing().Provider(42); err == nil {
		t.Fatal("provider for unknown node succeeded")
	}
}

// TestKeyringDeterminism: two rings from one secret interoperate (the
// deterministic PKI substitution).
func TestKeyringDeterminism(t *testing.T) {
	a := NewKeyring([]byte("s"), []types.NodeID{0, 1})
	b := NewKeyring([]byte("s"), []types.NodeID{0, 1})
	pa, _ := a.Provider(0)
	pb, _ := b.Provider(1)
	msg := []byte("cross-ring")
	if err := pb.Verify(pa.Sign(msg), msg); err != nil {
		t.Fatalf("cross-ring verification failed: %v", err)
	}
	c := NewKeyring([]byte("different"), []types.NodeID{0, 1})
	pc, _ := c.Provider(1)
	if err := pc.Verify(pa.Sign(msg), msg); err == nil {
		t.Fatal("signature verified across different cluster secrets")
	}
}

// TestSimProviderProperty: simulated signatures verify iff signer and
// message match (property-based).
func TestSimProviderProperty(t *testing.T) {
	prop := func(msg []byte, signer uint8, wrong uint8) bool {
		p := NewSimProvider(types.NodeID(signer), CostModel{}, nil)
		v := NewSimProvider(types.NodeID(wrong), CostModel{}, nil)
		sig := p.Sign(msg)
		if v.Verify(sig, msg) != nil {
			return false
		}
		if signer != wrong {
			re := sig
			re.Signer = types.NodeID(wrong)
			if v.Verify(re, msg) == nil && len(msg) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// chargeRecorder verifies cost accounting.
type chargeRecorder struct{ total time.Duration }

func (c *chargeRecorder) ChargeCPU(d time.Duration) { c.total += d }

// TestSimProviderCharges: every operation charges the modelled CPU cost.
func TestSimProviderCharges(t *testing.T) {
	rec := &chargeRecorder{}
	costs := CostModel{Sign: 10 * time.Microsecond, Verify: 20 * time.Microsecond, MAC: time.Microsecond}
	p := NewSimProvider(1, costs, rec)
	msg := []byte("m")
	sig := p.Sign(msg)
	if rec.total != 10*time.Microsecond {
		t.Fatalf("sign charge: %v", rec.total)
	}
	_ = p.Verify(sig, msg)
	if rec.total != 30*time.Microsecond {
		t.Fatalf("verify charge: %v", rec.total)
	}
	mac := p.MAC(2, msg)
	_ = p.VerifyMAC(2, msg, mac)
	if rec.total != 32*time.Microsecond {
		t.Fatalf("mac charges: %v", rec.total)
	}
}

// TestDigest: SHA-256 of known input.
func TestDigest(t *testing.T) {
	d1 := Digest([]byte("abc"))
	d2 := Digest([]byte("abc"))
	if d1 != d2 {
		t.Fatal("digest not deterministic")
	}
	if d1 == Digest([]byte("abd")) {
		t.Fatal("distinct inputs collided")
	}
}
