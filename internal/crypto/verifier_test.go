package crypto

import (
	"sync"
	"testing"
	"time"

	"spotless/internal/types"
)

func checksFor(ring *Keyring, msg []byte, ids ...types.NodeID) []Check {
	out := make([]Check, 0, len(ids))
	for _, id := range ids {
		p, _ := ring.Provider(id)
		out = append(out, Check{Sig: p.Sign(msg), Msg: msg})
	}
	return out
}

// TestVerifyChecksQuorum: the serial reference applies the shared batch
// rule — distinct-signer quorum, duplicates counted once, quorum ≤ 0
// meaning all-must-pass.
func TestVerifyChecksQuorum(t *testing.T) {
	ring := testRing()
	p0, _ := ring.Provider(0)
	msg := []byte("batch rule")
	good := checksFor(ring, msg, 0, 1, 2)
	forged := Check{Sig: types.Signature{Signer: 3, Bytes: []byte("junk")}, Msg: msg}

	if !VerifyChecks(p0, good, 3) {
		t.Fatal("three valid distinct signers rejected at quorum 3")
	}
	if !VerifyChecks(p0, append(good[:2:2], forged), 2) {
		t.Fatal("two valid + one forged rejected at quorum 2")
	}
	if VerifyChecks(p0, append(good[:2:2], forged), 3) {
		t.Fatal("two valid + one forged accepted at quorum 3")
	}
	dup := []Check{good[0], good[0], good[0]}
	if VerifyChecks(p0, dup, 2) {
		t.Fatal("duplicate signers counted more than once")
	}
	if VerifyChecks(p0, append(good[:2:2], forged), 0) {
		t.Fatal("quorum 0 (all must pass) accepted a forged check")
	}
	if !VerifyChecks(p0, good, 0) {
		t.Fatal("quorum 0 rejected an all-valid batch")
	}
	// An empty batch is never evidence, whatever the quorum — and the
	// async path must still complete exactly once.
	if VerifyChecks(p0, nil, 0) || VerifyChecks(p0, nil, 1) {
		t.Fatal("empty batch accepted")
	}
	sim := NewSimProvider(0, CostModel{}, nil)
	if sim.VerifyBatch(nil, 0) {
		t.Fatal("sim verifier accepted an empty batch")
	}
	pool := NewPoolVerifier(p0, 1)
	defer pool.Close()
	done := make(chan bool, 1)
	pool.VerifyBatchAsync(nil, 0, func(ok bool) { done <- ok })
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pool verifier accepted an empty batch")
		}
	case <-time.After(time.Second):
		t.Fatal("empty-batch job never completed")
	}
}

// TestPoolVerifierMatchesSerial: the pooled verdict equals the serial one
// across mixtures of valid, forged, and duplicate checks, also under
// concurrent batches from many goroutines.
func TestPoolVerifierMatchesSerial(t *testing.T) {
	ring := testRing()
	p0, _ := ring.Provider(0)
	pool := NewPoolVerifier(p0, 4)
	defer pool.Close()
	msg := []byte("pool vs serial")
	good := checksFor(ring, msg, 0, 1, 2, 3)
	forged := Check{Sig: types.Signature{Signer: 2, Bytes: []byte("junk")}, Msg: msg}

	cases := []struct {
		checks []Check
		quorum int
	}{
		{good, 4}, {good, 2}, {good[:1], 1}, {good[:1], 0},
		{append(good[:3:3], forged), 4},
		{append(good[:3:3], forged), 3},
		{[]Check{good[0], good[0]}, 2},
		{[]Check{forged}, 1},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, tc := range cases {
				want := VerifyChecks(p0, tc.checks, tc.quorum)
				if got := pool.VerifyBatch(tc.checks, tc.quorum); got != want {
					t.Errorf("pool verdict %v, serial %v (quorum %d)", got, want, tc.quorum)
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolVerifierAsync: done fires exactly once per job with the right
// verdict, and a closed pool still verifies (inline on the caller).
func TestPoolVerifierAsync(t *testing.T) {
	ring := testRing()
	p0, _ := ring.Provider(0)
	pool := NewPoolVerifier(p0, 2)
	msg := []byte("async")
	good := checksFor(ring, msg, 0, 1, 2)

	results := make(chan bool, 2)
	pool.VerifyBatchAsync(good, 3, func(ok bool) { results <- ok })
	pool.VerifyBatchAsync([]Check{{Sig: types.Signature{Signer: 1, Bytes: []byte("junk")}, Msg: msg}}, 1,
		func(ok bool) { results <- ok })
	got := map[bool]int{}
	for i := 0; i < 2; i++ {
		select {
		case ok := <-results:
			got[ok]++
		case <-time.After(5 * time.Second):
			t.Fatal("async verification did not complete")
		}
	}
	if got[true] != 1 || got[false] != 1 {
		t.Fatalf("verdicts: %v, want one true and one false", got)
	}

	pool.Close()
	if !pool.VerifyBatch(good, 3) { // inline fallback after Close
		t.Fatal("closed pool rejected a valid batch")
	}
}

// parallelRecorder captures parallel charges.
type parallelRecorder struct {
	total    time.Duration
	critical time.Duration
	serial   time.Duration
}

func (r *parallelRecorder) ChargeCPU(d time.Duration) { r.serial += d }
func (r *parallelRecorder) ChargeCPUParallel(total, critical time.Duration) {
	r.total += total
	r.critical += critical
}

// TestSimVerifyBatchParallelCharge: the simulated verifier charges the full
// aggregate work while the critical path shrinks by min(batch, Cores) — and
// Cores ≤ 1 degenerates to the serial charge.
func TestSimVerifyBatchParallelCharge(t *testing.T) {
	msg := []byte("m")
	var checks []Check
	for i := 0; i < 8; i++ {
		p := NewSimProvider(types.NodeID(i), CostModel{}, nil)
		checks = append(checks, Check{Sig: p.Sign(msg), Msg: msg})
	}
	costs := CostModel{Verify: 100 * time.Microsecond, Cores: 4}
	rec := &parallelRecorder{}
	v := NewSimProvider(0, costs, rec)
	if !v.VerifyBatch(checks, len(checks)) {
		t.Fatal("valid batch rejected")
	}
	if want := 800 * time.Microsecond; rec.total != want {
		t.Fatalf("aggregate work %v, want %v", rec.total, want)
	}
	if want := 200 * time.Microsecond; rec.critical != want {
		t.Fatalf("critical path %v, want %v (8 checks on 4 cores)", rec.critical, want)
	}

	// Serial model: Cores=1 charges critical == total.
	rec1 := &parallelRecorder{}
	v1 := NewSimProvider(0, CostModel{Verify: 100 * time.Microsecond, Cores: 1}, rec1)
	v1.VerifyBatch(checks, len(checks))
	if rec1.critical != rec1.total || rec1.total != 800*time.Microsecond {
		t.Fatalf("serial charge: critical %v total %v, want both 800µs", rec1.critical, rec1.total)
	}

	// A small batch cannot use more cores than it has checks.
	rec2 := &parallelRecorder{}
	v2 := NewSimProvider(0, CostModel{Verify: 100 * time.Microsecond, Cores: 16}, rec2)
	v2.VerifyBatch(checks[:2], 2)
	if want := 100 * time.Microsecond; rec2.critical != want {
		t.Fatalf("critical path %v, want %v (width capped at batch size)", rec2.critical, want)
	}
}
