package runtime_test

import (
	"sync"
	"testing"
	"time"

	"spotless/internal/runtime"
	"spotless/internal/types"
	"spotless/internal/ycsb"
)

// queueSource is a simple thread-unsafe FIFO source for cluster tests
// (wrapped by SafeSource inside the cluster).
type queueSource struct {
	mu     sync.Mutex
	queues map[int32][]*types.Batch
}

func newQueueSource(m, batches, size int) *queueSource {
	s := &queueSource{queues: make(map[int32][]*types.Batch)}
	for i := 0; i < m; i++ {
		// One client identity per stream: streams sharing Client and Seq
		// spaces generate byte-identical batches under the Zipf key skew
		// (same seqs, same hot key, zero-filled values), which alias in the
		// delivery dedup window — harmless but thoroughly confusing in
		// divergence dumps (ROADMAP PR 4 side observation).
		wl := ycsb.NewWorkload(int64(i+1), types.ClientIDBase+types.NodeID(i), 1000, 16)
		for j := 0; j < batches; j++ {
			s.queues[int32(i)] = append(s.queues[int32(i)], wl.NextBatch(size))
		}
	}
	return s
}

// TestQueueSourceStreamsNeverAlias: workload streams must carry distinct
// client identities — otherwise the Zipf skew makes byte-identical batches
// across streams (identical seq runs on the same hot key) that collapse to
// one delivery in the dedup window.
func TestQueueSourceStreamsNeverAlias(t *testing.T) {
	src := newQueueSource(4, 20, 5)
	seen := make(map[types.Digest]int32)
	for inst, q := range src.queues {
		for _, b := range q {
			if prev, dup := seen[b.ID]; dup {
				t.Fatalf("streams %d and %d generated the same batch %x", prev, inst, b.ID[:6])
			}
			seen[b.ID] = inst
		}
	}
	// The aliasing hazard is real: identical client identities do collide.
	a := ycsb.NewWorkload(1, types.ClientIDBase, 1000, 16).NextBatch(5)
	b := ycsb.NewWorkload(2, types.ClientIDBase, 1000, 16).NextBatch(5)
	if a.ID != b.ID {
		t.Log("note: distinct seeds happened to differ — the guard above still protects the skewed case")
	}
}

func (s *queueSource) Next(instance int32, now time.Duration) *types.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[instance]
	if len(q) == 0 {
		return nil
	}
	b := q[0]
	s.queues[instance] = q[1:]
	return b
}

// TestClusterCommitsRealCrypto: a 4-replica in-process cluster with ed25519
// signatures and YCSB execution completes client batches and all ledgers
// verify.
func TestClusterCommitsRealCrypto(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time integration test")
	}
	src := newQueueSource(2, 30, 5)
	done := make(chan struct{}, 128)
	cl, err := runtime.NewCluster(runtime.ClusterConfig{
		N: 4, Instances: 2, Source: src,
		OnDone: func(types.Digest) { done <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	deadline := time.After(20 * time.Second)
	completed := 0
	for completed < 10 {
		select {
		case <-done:
			completed++
		case <-deadline:
			t.Fatalf("only %d batches completed before deadline", completed)
		}
	}
	for i, ex := range cl.Execs {
		if err := ex.Ledger().Verify(); err != nil {
			t.Errorf("replica %d ledger: %v", i, err)
		}
	}
	if cl.Execs[0].Store().Applied() == 0 {
		t.Error("no transactions applied to the YCSB table")
	}
}

// TestClusterSurvivesPartition: a temporarily isolated replica catches up
// through RVS (f+1 Sync skip + Υ retransmission) after the partition heals.
func TestClusterSurvivesPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time integration test")
	}
	src := newQueueSource(1, 200, 5)
	done := make(chan struct{}, 1024)
	cl, err := runtime.NewCluster(runtime.ClusterConfig{
		N: 4, Instances: 1, Source: src,
		OnDone: func(types.Digest) { done <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	// Isolate replica 3 in both directions.
	for i := 0; i < 3; i++ {
		cl.Transport.SetDrop(types.NodeID(i), 3, true)
		cl.Transport.SetDrop(3, types.NodeID(i), true)
	}
	waitN := func(k int, d time.Duration) int {
		completed := 0
		deadline := time.After(d)
		for completed < k {
			select {
			case <-done:
				completed++
			case <-deadline:
				return completed
			}
		}
		return completed
	}
	if got := waitN(5, 20*time.Second); got < 5 {
		t.Fatalf("no progress during partition: %d", got)
	}
	// Heal and require further progress (including replica 3's recovery).
	for i := 0; i < 3; i++ {
		cl.Transport.SetDrop(types.NodeID(i), 3, false)
		cl.Transport.SetDrop(3, types.NodeID(i), false)
	}
	if got := waitN(10, 20*time.Second); got < 10 {
		t.Fatalf("insufficient progress after heal: %d", got)
	}
	time.Sleep(time.Second)
	if v := cl.Replicas[3].Instance(0).CurrentView(); v < 5 {
		t.Errorf("replica 3 did not catch up: view=%d", v)
	}
}
