package runtime_test

import (
	"testing"
	"time"

	"spotless/internal/ledger"
	"spotless/internal/runtime"
	"spotless/internal/types"
)

// TestClusterCommitsSharded: the instance-parallel core (per-instance
// mailboxes + goroutines behind the serialized ordering stage) completes
// client batches across m instances, every replica's ledger verifies, and
// all ledgers agree on the committed prefix — the total order survives the
// sharding. Run under -race this is the primary concurrency workout for
// the sharded dispatch path.
func TestClusterCommitsSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time integration test")
	}
	const m = 4
	src := newQueueSource(m, 40, 5)
	done := make(chan struct{}, 256)
	cl, err := runtime.NewCluster(runtime.ClusterConfig{
		N: 4, Instances: m, InstanceWorkers: m, Source: src,
		OnDone: func(types.Digest) { done <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	deadline := time.After(30 * time.Second)
	completed := 0
	for completed < 20 {
		select {
		case <-done:
			completed++
		case <-deadline:
			t.Fatalf("only %d batches completed before deadline (sharded)", completed)
		}
	}
	if got := cl.Replicas[0].DeliveredCount(); got == 0 {
		t.Error("DeliveredCount reports zero on a committing replica")
	}
	cl.Stop() // quiesce all shards before inspecting ledgers

	for i, ex := range cl.Execs {
		if err := ex.Ledger().Verify(); err != nil {
			t.Errorf("replica %d ledger: %v", i, err)
		}
	}
	// Cross-replica consistency: strict block-for-block prefix equality.
	// PR 4 had to weaken this check to slot integrity + shared-slot order
	// because the pre-refactor protocol admitted transient real-batch forks
	// under real-time scheduling (one replica committed a view another
	// resolved as ∅ — the ROADMAP PR 4 discovery). The safe-view-resolution
	// refactor (core/resolution.go: certified-triple commits, strengthened
	// A3, commit propagation across healed chain links) closed that path —
	// the seeded adversary drill proves it across schedules — so every
	// replica's ledger must again be an exact prefix of the longest.
	type slot struct {
		inst  int32
		view  types.View
		batch types.Digest
	}
	seqs := make([][]slot, len(cl.Execs))
	for i, ex := range cl.Execs {
		lg := ex.Ledger()
		for h := uint64(0); h < lg.Height(); h++ {
			b, ok := lg.Block(h)
			if !ok {
				t.Fatalf("replica %d: missing block at height %d (no truncation configured)", i, h)
			}
			seqs[i] = append(seqs[i], slot{inst: b.Instance, view: b.View, batch: b.BatchID})
		}
	}
	for i := 1; i < len(cl.Execs); i++ {
		n := len(seqs[0])
		if len(seqs[i]) < n {
			n = len(seqs[i])
		}
		for h := 0; h < n; h++ {
			if seqs[i][h] != seqs[0][h] {
				t.Fatalf("ledger divergence at height %d: replica 0 holds (inst=%d view=%d batch=%x), replica %d holds (inst=%d view=%d batch=%x)",
					h, seqs[0][h].inst, seqs[0][h].view, seqs[0][h].batch[:6],
					i, seqs[i][h].inst, seqs[i][h].view, seqs[i][h].batch[:6])
			}
		}
	}
}

// TestClusterShardedKillAndRejoin: checkpoint/state-transfer rejoin keeps
// working when the survivors and the rejoiner run the instance-parallel
// core — the cross-shard posts (gcToAnchor, installAnchor) must not wedge
// or desync recovery.
func TestClusterShardedKillAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time integration test")
	}
	const m = 2
	src := newQueueSource(m, 400, 5)
	done := make(chan struct{}, 1024)
	cl, err := runtime.NewCluster(runtime.ClusterConfig{
		N: 4, Instances: m, InstanceWorkers: 2, Source: src,
		CheckpointInterval: 8,
		OnDone:             func(types.Digest) { done <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	wait := func(k int, d time.Duration) int {
		completed := 0
		deadline := time.After(d)
		for completed < k {
			select {
			case <-done:
				completed++
			case <-deadline:
				return completed
			}
		}
		return completed
	}
	if got := wait(24, 30*time.Second); got < 24 {
		t.Fatalf("only %d batches completed before the kill", got)
	}
	cl.Kill(3)
	if got := wait(24, 30*time.Second); got < 24 {
		t.Fatalf("only %d batches completed while replica 3 was down", got)
	}
	if err := cl.Restart(3); err != nil {
		t.Fatal(err)
	}
	// The rejoiner must install a checkpoint and resume delivering.
	recovered := false
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cl.Replicas[3].StableHeight() > 0 && cl.Replicas[3].DeliveredCount() > 0 {
			recovered = true
			break
		}
		wait(1, 500*time.Millisecond)
	}
	if !recovered {
		t.Fatalf("rejoined replica never recovered: stable=%d delivered=%d",
			cl.Replicas[3].StableHeight(), cl.Replicas[3].DeliveredCount())
	}

	// Strict block-for-block equality over the heights both ledgers retain.
	// PR 4 could not assert this — the pre-refactor fork path meant a
	// rejoiner's chain could legitimately disagree; with safe view
	// resolution any mismatch is a real regression. The freshly installed
	// checkpoint can sit below the veterans' advancing GC frontier, so
	// first wait until the retained windows actually overlap (ledger reads
	// are RLock-safe against the live delivery path).
	veteran, rejoined := cl.Execs[0].Ledger(), cl.Execs[3].Ledger()
	compare := func() int {
		hi := veteran.Height()
		if rj := rejoined.Height(); rj < hi {
			hi = rj
		}
		compared := 0
		for h := uint64(0); h < hi; h++ {
			vb, vok := veteran.Block(h)
			rb, rok := rejoined.Block(h)
			if !vok || !rok {
				continue // outside one ledger's retained window
			}
			compared++
			if vb.Instance != rb.Instance || vb.View != rb.View || vb.BatchID != rb.BatchID {
				t.Fatalf("rejoiner diverges at height %d: veteran (inst=%d view=%d batch=%x) vs rejoiner (inst=%d view=%d batch=%x)",
					h, vb.Instance, vb.View, vb.BatchID[:6], rb.Instance, rb.View, rb.BatchID[:6])
			}
		}
		return compared
	}
	verified := 0
	for time.Now().Before(deadline) {
		if c := compare(); c > 0 {
			verified = c
			break
		}
		wait(1, 500*time.Millisecond)
	}
	cl.Stop()
	// Re-check on the quiesced state too — but a checkpoint stabilized
	// during shutdown can truncate one ledger past the other's head and
	// empty the overlap, so the live verification above stands on its own.
	if c := compare(); c > verified {
		verified = c
	}
	if verified == 0 {
		lowest := func(lg *ledger.Ledger) uint64 {
			for h := uint64(0); h < lg.Height(); h++ {
				if _, ok := lg.Block(h); ok {
					return h
				}
			}
			return lg.Height()
		}
		t.Fatalf("retained ledger windows never overlapped — veteran [%d,%d) rejoiner [%d,%d), stable %d/%d",
			lowest(veteran), veteran.Height(), lowest(rejoined), rejoined.Height(),
			cl.Replicas[0].StableHeight(), cl.Replicas[3].StableHeight())
	}
}
