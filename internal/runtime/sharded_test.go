package runtime_test

import (
	"testing"
	"time"

	"spotless/internal/runtime"
	"spotless/internal/types"
)

// TestClusterCommitsSharded: the instance-parallel core (per-instance
// mailboxes + goroutines behind the serialized ordering stage) completes
// client batches across m instances, every replica's ledger verifies, and
// all ledgers agree on the committed prefix — the total order survives the
// sharding. Run under -race this is the primary concurrency workout for
// the sharded dispatch path.
func TestClusterCommitsSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time integration test")
	}
	const m = 4
	src := newQueueSource(m, 40, 5)
	done := make(chan struct{}, 256)
	cl, err := runtime.NewCluster(runtime.ClusterConfig{
		N: 4, Instances: m, InstanceWorkers: m, Source: src,
		OnDone: func(types.Digest) { done <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	deadline := time.After(30 * time.Second)
	completed := 0
	for completed < 20 {
		select {
		case <-done:
			completed++
		case <-deadline:
			t.Fatalf("only %d batches completed before deadline (sharded)", completed)
		}
	}
	if got := cl.Replicas[0].DeliveredCount(); got == 0 {
		t.Error("DeliveredCount reports zero on a committing replica")
	}
	cl.Stop() // quiesce all shards before inspecting ledgers

	for i, ex := range cl.Execs {
		if err := ex.Ledger().Verify(); err != nil {
			t.Errorf("replica %d ledger: %v", i, err)
		}
	}
	// Cross-replica consistency. The seed protocol admits transient
	// real-batch forks under real-time scheduling (a view can commit a
	// proposal on one replica and resolve ∅ on another — pre-existing; see
	// the ROADMAP PR 4 discovery and TestCommitRequiresTipClaimQuorum for
	// the path PR 4 closed), so strict block-for-block prefix equality
	// flakes even on the unsharded seed. What the sharded dispatch must
	// not regress is slot integrity and merge order: every (instance,
	// view) slot present on two replicas carries the same batch (a
	// cross-shard handoff mislabel or reorder would violate this), and
	// the slots two replicas share appear in the same relative order (the
	// (view, instance) merge is deterministic).
	type slot struct {
		inst int32
		view types.View
	}
	ledgers := make([]map[slot]types.Digest, len(cl.Execs))
	orders := make([][]slot, len(cl.Execs))
	for i, ex := range cl.Execs {
		ledgers[i] = make(map[slot]types.Digest)
		lg := ex.Ledger()
		for h := uint64(0); h < lg.Height(); h++ {
			b, ok := lg.Block(h)
			if !ok {
				continue
			}
			s := slot{inst: b.Instance, view: b.View}
			ledgers[i][s] = b.BatchID
			orders[i] = append(orders[i], s)
		}
	}
	for i := 1; i < len(cl.Execs); i++ {
		for s, id := range ledgers[0] {
			if other, ok := ledgers[i][s]; ok && other != id {
				t.Fatalf("slot (inst=%d, view=%d) holds different batches on replica 0 and %d", s.inst, s.view, i)
			}
		}
		// Common slots must appear in the same relative order.
		common := make([]slot, 0, len(orders[0]))
		for _, s := range orders[0] {
			if _, ok := ledgers[i][s]; ok {
				common = append(common, s)
			}
		}
		j := 0
		for _, s := range orders[i] {
			if j < len(common) && s == common[j] {
				j++
			}
		}
		if j != len(common) {
			t.Fatalf("replica %d delivered shared slots out of order (matched %d of %d)", i, j, len(common))
		}
	}
}

// TestClusterShardedKillAndRejoin: checkpoint/state-transfer rejoin keeps
// working when the survivors and the rejoiner run the instance-parallel
// core — the cross-shard posts (gcToAnchor, installAnchor) must not wedge
// or desync recovery.
func TestClusterShardedKillAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time integration test")
	}
	const m = 2
	src := newQueueSource(m, 400, 5)
	done := make(chan struct{}, 1024)
	cl, err := runtime.NewCluster(runtime.ClusterConfig{
		N: 4, Instances: m, InstanceWorkers: 2, Source: src,
		CheckpointInterval: 8,
		OnDone:             func(types.Digest) { done <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	wait := func(k int, d time.Duration) int {
		completed := 0
		deadline := time.After(d)
		for completed < k {
			select {
			case <-done:
				completed++
			case <-deadline:
				return completed
			}
		}
		return completed
	}
	if got := wait(24, 30*time.Second); got < 24 {
		t.Fatalf("only %d batches completed before the kill", got)
	}
	cl.Kill(3)
	if got := wait(24, 30*time.Second); got < 24 {
		t.Fatalf("only %d batches completed while replica 3 was down", got)
	}
	if err := cl.Restart(3); err != nil {
		t.Fatal(err)
	}
	// The rejoiner must install a checkpoint and resume delivering.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cl.Replicas[3].StableHeight() > 0 && cl.Replicas[3].DeliveredCount() > 0 {
			return
		}
		wait(1, 500*time.Millisecond)
	}
	t.Fatalf("rejoined replica never recovered: stable=%d delivered=%d",
		cl.Replicas[3].StableHeight(), cl.Replicas[3].DeliveredCount())
}
